// Package croesus is the public API of the Croesus reproduction: a
// multi-stage edge-cloud video-analytics pipeline with multi-stage
// transactions (MS-SR and MS-IA), after "Croesus: Multi-Stage Processing
// and Transactions for Video-Analytics in Edge-Cloud Systems" (ICDE 2022).
//
// The quickest way in:
//
//	clk := croesus.NewSimClock()
//	sys := croesus.NewSystem(clk)
//	p, err := croesus.NewPipeline(croesus.Config{
//		Clock:      clk,
//		EdgeModel:  croesus.TinyYOLOSim(42),
//		CloudModel: croesus.YOLOv3Sim(croesus.YOLO416, 42),
//		ThetaL:     0.40, ThetaU: 0.62,
//		Source:     croesus.NewWorkloadSource(1000, 7),
//		CC:         sys.MSIA(),
//		Mgr:        sys.Manager,
//	})
//	outs := p.ProcessVideo(croesus.NewVideoGenerator(croesus.ParkDog(), 11).Generate(100))
//
// See examples/ for runnable programs and internal/experiments for the
// harnesses that regenerate every table and figure of the paper.
package croesus

import (
	"io"

	"croesus/internal/bank"
	"croesus/internal/cluster"
	"croesus/internal/core"
	"croesus/internal/detect"
	"croesus/internal/experiments"
	"croesus/internal/faults"
	"croesus/internal/lock"
	"croesus/internal/netsim"
	"croesus/internal/node"
	"croesus/internal/obs"
	"croesus/internal/scenario"
	"croesus/internal/smoothing"
	"croesus/internal/store"
	"croesus/internal/threshold"
	"croesus/internal/transport"
	"croesus/internal/twopc"
	"croesus/internal/txn"
	"croesus/internal/vclock"
	"croesus/internal/video"
)

// ---------------------------------------------------------------------------
// Clocks

type (
	// Clock abstracts time: a deterministic virtual scheduler for
	// experiments or the wall clock for deployments.
	Clock = vclock.Clock
	// SimClock is the virtual-time scheduler.
	SimClock = vclock.Sim
	// Gate is a one-shot wakeup primitive tied to a Clock.
	Gate = vclock.Gate
	// Semaphore is a FIFO counted resource on a Clock.
	Semaphore = vclock.Semaphore
)

// NewSimClock returns a fresh virtual-time scheduler.
func NewSimClock() *SimClock { return vclock.NewSim() }

// NewRealClock returns a wall-clock Clock.
func NewRealClock() Clock { return vclock.NewReal() }

// NewSemaphore returns a counted resource on clk.
func NewSemaphore(clk Clock, capacity int) *Semaphore {
	return vclock.NewSemaphore(clk, capacity)
}

// ---------------------------------------------------------------------------
// Video and detection

type (
	// VideoProfile describes a synthetic video workload.
	VideoProfile = video.Profile
	// VideoGenerator produces frames deterministically from a seed.
	VideoGenerator = video.Generator
	// Frame is one video frame with ground-truth objects.
	Frame = video.Frame
	// Rect is a normalized bounding box.
	Rect = video.Rect
	// Object is a ground-truth object in a frame.
	Object = video.Object
	// ClassFreq weights one object class in a video profile.
	ClassFreq = video.ClassFreq

	// Model is a detection model.
	Model = detect.Model
	// Detection is one detected object: label, confidence, box.
	Detection = detect.Detection
	// SimModel is the simulated CNN used for both edge and cloud models.
	SimModel = detect.SimModel
	// YOLOSize selects a cloud model variant (320, 416, 608).
	YOLOSize = detect.YOLOSize
	// Oracle is a perfect zero-latency detector for tests.
	Oracle = detect.Oracle
)

// Cloud model sizes (Table 2).
const (
	YOLO320 = detect.YOLO320
	YOLO416 = detect.YOLO416
	YOLO608 = detect.YOLO608
)

// NewVideoGenerator returns a deterministic generator for the profile.
func NewVideoGenerator(p VideoProfile, seed int64) *VideoGenerator {
	return video.NewGenerator(p, seed)
}

// The five evaluation videos of §5.1.
func ParkDog() VideoProfile           { return video.ParkDog() }
func StreetVehicles() VideoProfile    { return video.StreetVehicles() }
func AirportRunway() VideoProfile     { return video.AirportRunway() }
func MallSurveillance() VideoProfile  { return video.MallSurveillance() }
func StreetPedestrians() VideoProfile { return video.StreetPedestrians() }

// Videos returns all evaluation profiles in paper order.
func Videos() []VideoProfile { return video.AllProfiles() }

// TinyYOLOSim returns the compact edge model.
func TinyYOLOSim(seed int64) *SimModel { return detect.TinyYOLOSim(seed) }

// YOLOv3Sim returns a full cloud model of the given size.
func YOLOv3Sim(size YOLOSize, seed int64) *SimModel { return detect.YOLOv3Sim(size, seed) }

// ---------------------------------------------------------------------------
// Store, locks, transactions

type (
	// Store is the edge node's versioned key-value store.
	Store = store.Store
	// Value is a stored payload.
	Value = store.Value
	// LockManager provides shared/exclusive key locks.
	LockManager = lock.Manager

	// Txn is a multi-stage transaction template.
	Txn = txn.Txn
	// TxnCtx is the database handle passed to section bodies.
	TxnCtx = txn.Ctx
	// TxnInstance is one execution of a template.
	TxnInstance = txn.Instance
	// TxnManager owns the store, locks, and dependency tracking.
	TxnManager = txn.Manager
	// RWSet declares a section's read and write keys.
	RWSet = txn.RWSet
	// CC is a multi-stage concurrency-control protocol.
	CC = txn.CC
	// MSSR is multi-stage serializability via Two Stage 2PL.
	MSSR = txn.MSSR
	// MSIA is multi-stage invariant confluence with apologies.
	MSIA = txn.MSIA
	// Sequencer orders batches so conflicting transactions don't overlap.
	Sequencer = txn.Sequencer
	// Apology records a user-visible correction.
	Apology = txn.Apology
	// Stage names a transaction section.
	Stage = txn.Stage
	// SectionSpec declares one section of an N-section transaction:
	// its name, placement tier, lock footprint, and body.
	SectionSpec = txn.SectionSpec
	// Tier is a section's placement: edge, peer, or cloud.
	Tier = txn.Tier

	// GraphSpec declares an inference graph — the ordered node list a
	// scenario's "graph" block decodes into; node k hosts transaction
	// section k.
	GraphSpec = node.GraphSpec
	// GraphNodeSpec declares one graph node: tier, model, speed,
	// optional confidence switch.
	GraphNodeSpec = node.GraphNodeSpec
	// SwitchBranchSpec routes to a later node (or "done") when the
	// routing confidence falls inside [Lo, Hi].
	SwitchBranchSpec = node.SwitchBranchSpec
)

// Section stages and MS-SR lock policies.
const (
	StageInitial = txn.StageInitial
	StageFinal   = txn.StageFinal
	PolicyWait   = txn.Wait
	PolicyNoWait = txn.NoWait
)

// Section placement tiers and graph model names.
const (
	TierEdge  = txn.TierEdge
	TierPeer  = txn.TierPeer
	TierCloud = txn.TierCloud

	ModelTinyYOLO = node.ModelTinyYOLO
	ModelYOLO320  = node.ModelYOLO320
	ModelYOLO416  = node.ModelYOLO416
	ModelYOLO608  = node.ModelYOLO608
)

// Multi-stage protocol errors.
var (
	ErrAborted   = txn.ErrAborted
	ErrRetracted = txn.ErrRetracted
)

// System bundles the storage stack one edge node needs.
type System struct {
	Clock   Clock
	Store   *Store
	Locks   *LockManager
	Manager *TxnManager
}

// NewSystem builds a store, lock manager, and transaction manager on clk.
func NewSystem(clk Clock) *System {
	st := store.New()
	locks := lock.NewManager(clk)
	return &System{
		Clock:   clk,
		Store:   st,
		Locks:   locks,
		Manager: txn.NewManager(clk, st, locks),
	}
}

// MSIA returns the invariant-confluence protocol bound to this system.
func (s *System) MSIA() CC { return &txn.MSIA{M: s.Manager} }

// MSSRWait returns MS-SR with blocking (wait-die) acquisition.
func (s *System) MSSRWait() CC { return &txn.MSSR{M: s.Manager, Policy: txn.Wait} }

// MSSRNoWait returns MS-SR with abort-on-conflict acquisition.
func (s *System) MSSRNoWait() CC { return &txn.MSSR{M: s.Manager, Policy: txn.NoWait} }

// ---------------------------------------------------------------------------
// Transactions bank

type (
	// Bank is the transactions bank mapping label classes (and auxiliary
	// inputs) to transactions.
	Bank = bank.Bank
	// Registration is one bank row.
	Registration = bank.Registration
	// Trigger describes when a registration fires.
	Trigger = bank.Trigger
	// AuxEvent is an auxiliary-device input (e.g., a controller click).
	AuxEvent = bank.AuxEvent
	// Invocation is a transaction the bank decided to trigger.
	Invocation = bank.Invocation
)

// NewBank returns an empty transactions bank.
func NewBank() *Bank { return bank.New() }

// ---------------------------------------------------------------------------
// Correction feedback (smoothing)

type (
	// Smoother feeds cloud corrections back into the edge path.
	Smoother = core.Smoother
	// Corrector is the per-track label smoother of the paper's §2.1
	// footnote: cloud-settled tracks stop re-validating.
	Corrector = smoothing.Corrector
)

// NewCorrector returns a Corrector with default TTL, boost, and hit gates.
func NewCorrector() *Corrector { return smoothing.New() }

// ---------------------------------------------------------------------------
// Network

type (
	// Link is a one-way network path with delay, bandwidth, and traffic
	// accounting.
	Link = netsim.Link
	// Preprocessor shrinks frames before the edge→cloud hop.
	Preprocessor = netsim.Preprocessor
	// Compression is a re-encoding preprocessor.
	Compression = netsim.Compression
	// DiffComm is a frame-differencing preprocessor.
	DiffComm = netsim.DiffComm
	// PreprocessorChain composes preprocessors.
	PreprocessorChain = netsim.Chain
)

// Link presets for the paper's deployment.
func ClientEdgeLink() *Link           { return netsim.ClientEdgeLink() }
func EdgeCloudCrossCountry() *Link    { return netsim.EdgeCloudCrossCountry() }
func EdgeCloudSameSite() *Link        { return netsim.EdgeCloudSameSite() }
func EdgeEdgeLink() *Link             { return netsim.EdgeEdgeLink() }
func DefaultCompression() Compression { return netsim.DefaultCompression() }
func DefaultDiffComm() DiffComm       { return netsim.DefaultDiffComm() }

// ---------------------------------------------------------------------------
// Pipeline (the paper's §3)

type (
	// Config assembles a pipeline.
	Config = core.Config
	// Pipeline executes frames through the multi-stage system.
	Pipeline = core.Pipeline
	// Mode selects Croesus or one of the baselines.
	Mode = core.Mode
	// FrameOutcome is the client-observable result of one frame.
	FrameOutcome = core.FrameOutcome
	// Summary aggregates a run.
	Summary = core.Summary
	// Breakdown decomposes latency into the Figure 2 components.
	Breakdown = core.Breakdown
	// InitialInput is what initial sections receive.
	InitialInput = core.InitialInput
	// FinalInput is what final sections receive.
	FinalInput = core.FinalInput
	// MatchCase classifies an edge label against the cloud labels.
	MatchCase = core.MatchCase
	// LabelMatch pairs an edge label with its correction.
	LabelMatch = core.LabelMatch
	// TxnSource supplies per-detection transactions.
	TxnSource = core.TxnSource
	// TxnSourceFunc adapts a function to TxnSource.
	TxnSourceFunc = core.TxnSourceFunc
	// WorkloadSource is the paper's YCSB-A-style transaction source.
	WorkloadSource = core.WorkloadSource
	// Chain is the generalized m-stage pipeline of §3.5.
	Chain = core.Chain
	// ChainStage is one stage of a Chain.
	ChainStage = core.ChainStage
	// ChainOutcome is a frame's progress through a Chain.
	ChainOutcome = core.ChainOutcome

	// Validator is the injectable cloud validation path: the seam
	// between a pipeline's edge side and whatever answers for the cloud.
	Validator = core.Validator
	// ValidationRequest carries one validate-interval frame to a
	// Validator.
	ValidationRequest = core.ValidationRequest
	// ValidationResult is a Validator's reply.
	ValidationResult = core.ValidationResult
	// ValidationStatus classifies a validation outcome.
	ValidationStatus = core.ValidationStatus
	// DirectValidator is the unbatched single-edge cloud path.
	DirectValidator = core.DirectValidator
)

// Pipeline modes.
const (
	ModeCroesus   = core.ModeCroesus
	ModeEdgeOnly  = core.ModeEdgeOnly
	ModeCloudOnly = core.ModeCloudOnly
)

// Validation outcomes.
const (
	Validated      = core.Validated
	ValidationShed = core.ValidationShed
	ValidationLost = core.ValidationLost
)

// Label-match cases (§3.3).
const (
	MatchCorrect   = core.MatchCorrect
	MatchCorrected = core.MatchCorrected
	MatchErroneous = core.MatchErroneous
	MatchNew       = core.MatchNew
	MatchAssumed   = core.MatchAssumed
)

// NewPipeline validates cfg and builds a pipeline.
func NewPipeline(cfg Config) (*Pipeline, error) { return core.New(cfg) }

// NewChain builds a generalized m-stage pipeline.
func NewChain(clk Clock, client *Link, stages []ChainStage) (*Chain, error) {
	return core.NewChain(clk, client, stages)
}

// NewWorkloadSource returns the paper's per-detection transaction source.
func NewWorkloadSource(nKeys int, seed int64) *WorkloadSource {
	return core.NewWorkloadSource(nKeys, seed)
}

// MatchLabels classifies edge labels against cloud labels (§3.3).
func MatchLabels(edge, cloud []Detection, minIoU float64) []LabelMatch {
	return core.MatchLabels(edge, cloud, minIoU)
}

// Summarize scores outcomes against ground truth for a query class.
func Summarize(videoName string, mode Mode, queryClass string, outs []FrameOutcome, truth func(int) []Detection, overlapMin float64) Summary {
	return core.Summarize(videoName, mode, queryClass, outs, truth, overlapMin)
}

// TruthFromModel precomputes per-frame reference detections.
func TruthFromModel(m Model, frames []*Frame) func(int) []Detection {
	return core.TruthFromModel(m, frames)
}

// ---------------------------------------------------------------------------
// Bandwidth thresholding (§3.4)

type (
	// ThresholdEvaluator scores (θL, θU) pairs over one video.
	ThresholdEvaluator = threshold.Evaluator
	// ThresholdResult is a solver's chosen operating point.
	ThresholdResult = threshold.Result
	// HeatmapCell is one Figure 5 heatmap entry.
	HeatmapCell = threshold.Cell
)

// NewThresholdEvaluator precomputes detections for threshold search.
func NewThresholdEvaluator(frames []*Frame, edge, cloud Model, queryClass string, overlapMin float64) *ThresholdEvaluator {
	return threshold.NewEvaluator(frames, edge, cloud, queryClass, overlapMin)
}

// BruteForceThresholds scans the full grid for the optimum under µ.
func BruteForceThresholds(e *ThresholdEvaluator, mu, step float64) ThresholdResult {
	return threshold.BruteForce(e, mu, step)
}

// GradientThresholds solves the same problem with far fewer evaluations.
func GradientThresholds(e *ThresholdEvaluator, mu float64) ThresholdResult {
	return threshold.GradientStep(e, mu)
}

// ThresholdHeatmap evaluates the full grid for heatmap rendering.
func ThresholdHeatmap(e *ThresholdEvaluator, step float64) []HeatmapCell {
	return threshold.Heatmap(e, step)
}

// ---------------------------------------------------------------------------
// Multi-partition operations (§4.5)

type (
	// PartitionNode is one edge shard in a multi-partition deployment.
	PartitionNode = twopc.Partition
	// DistCoordinator drives distributed multi-stage transactions.
	DistCoordinator = twopc.Coordinator
	// DistTxn is a distributed multi-stage transaction.
	DistTxn = twopc.DistTxn
	// DistCtx is the distributed section context.
	DistCtx = twopc.Ctx
	// ShardedCC is the pipeline-facing distributed protocol: a txn.CC
	// that routes each transaction's RW-set through the partitions owning
	// its keys, locking remotely and committing with 2PC.
	ShardedCC = twopc.ShardedCC
	// ShardedStore routes key-value operations to the owning partition.
	ShardedStore = twopc.ShardedStore
	// DistCounters counts a sharded fleet's distributed-commit events.
	DistCounters = twopc.DistCounters
	// DistStats is the shared concurrency-safe counter block.
	DistStats = twopc.DistStats
)

// NewPartition returns an empty partition shard.
func NewPartition(id int, clk Clock, link *Link) *PartitionNode {
	if link == nil {
		// A nil *Link must stay a nil transport.Path — a typed nil would
		// defeat the coordinator's "local partition" check.
		return twopc.NewPartition(id, clk, nil)
	}
	return twopc.NewPartition(id, clk, link)
}

// NewPartitionOver returns a partition wrapping an existing store and lock
// manager.
func NewPartitionOver(id int, st *Store, locks *LockManager) *PartitionNode {
	return twopc.NewPartitionOver(id, st, locks)
}

// NewDistCoordinator returns a coordinator over the partitions.
func NewDistCoordinator(clk Clock, parts []*PartitionNode, proto twopc.Protocol) *DistCoordinator {
	return twopc.NewCoordinator(clk, parts, proto)
}

// Distributed protocols.
const (
	DistMSSR = twopc.MSSR
	DistMSIA = twopc.MSIA
)

// ---------------------------------------------------------------------------
// Cluster: multi-camera edge fleets with batched cloud validation

type (
	// Cluster runs N camera streams across M edge nodes sharing one
	// SLO-aware batched cloud validator.
	Cluster = cluster.Cluster
	// ClusterConfig assembles a cluster.
	ClusterConfig = cluster.Config
	// ClusterReport aggregates a fleet run: per-camera summaries plus
	// fleet throughput, latency percentiles, and shedding.
	ClusterReport = cluster.ClusterReport
	// CameraReport is one camera's share of a ClusterReport.
	CameraReport = cluster.CameraReport
	// CameraSpec declares one camera stream.
	CameraSpec = cluster.CameraSpec
	// EdgeSpec declares one edge node.
	EdgeSpec = cluster.EdgeSpec
	// EdgeNode is a provisioned edge: storage stack, model, and links.
	EdgeNode = cluster.EdgeNode
	// Placement assigns cameras to edge nodes.
	Placement = cluster.Placement
	// RoundRobin cycles cameras across edges.
	RoundRobin = cluster.RoundRobin
	// LeastLoaded places each camera on the least-loaded edge.
	LeastLoaded = cluster.LeastLoaded
	// ValidationBatcher is the cloud-side SLO-aware batcher (a
	// Validator).
	ValidationBatcher = cluster.Batcher
	// BatcherConfig configures a ValidationBatcher.
	BatcherConfig = cluster.BatcherConfig
	// BatcherStats summarizes a batcher's lifetime activity.
	BatcherStats = cluster.BatcherStats
	// EdgeUplink adapts one edge's uplink to a shared batcher.
	EdgeUplink = cluster.EdgeUplink
	// ClusterTxnProtocol selects MS-IA or MS-SR for a fleet's
	// transactions (sharded and unsharded).
	ClusterTxnProtocol = cluster.TxnProtocol
)

// Fleet transaction protocols.
const (
	TxnMSIA = cluster.TxnMSIA
	TxnMSSR = cluster.TxnMSSR
)

// ---------------------------------------------------------------------------
// Fault injection and recovery

type (
	// FaultPlan schedules scripted, deterministic failures against a
	// sharded fleet: fail-stop edge crashes with WAL-backed recovery,
	// crashes at chosen 2PC points, and inter-edge link partitions. Set
	// it on ClusterConfig.Faults (implies Sharded).
	FaultPlan = faults.Plan
	// EdgeCrash fail-stops an edge at a virtual time and recovers it
	// from its write-ahead log after RestartAfter.
	EdgeCrash = faults.EdgeCrash
	// TwoPCCrash fail-stops an edge at a scripted instant inside an
	// atomic-commitment round.
	TwoPCCrash = faults.TwoPCCrash
	// LinkFault partitions (and later heals) a peer link between edges.
	LinkFault = faults.LinkFault
	// FaultReport summarizes a run's injected faults and recovery work.
	FaultReport = faults.Report
	// FaultInjector executes a FaultPlan; Cluster.Injector exposes it for
	// post-run inspection (e.g. VerifyDurability).
	FaultInjector = faults.Injector
	// TwoPCPoint names the scripted instants inside a 2PC round.
	TwoPCPoint = twopc.TwoPCPoint
)

// The scripted 2PC crash points: a participant right after its yes vote,
// the coordinator after collecting votes but before its decision is
// durable (participants presume abort), and the coordinator after the
// durable decision but before delivery (participants learn the commit from
// its log).
const (
	PointParticipantPrepared = twopc.PointParticipantPrepared
	PointAfterPrepare        = twopc.PointAfterPrepare
	PointAfterDecision       = twopc.PointAfterDecision
)

// NewCluster validates cfg, provisions edges and the shared batcher,
// and places every camera.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// RunCluster builds and runs a cluster in one call.
func RunCluster(cfg ClusterConfig) (*ClusterReport, error) { return cluster.Run(cfg) }

// ---------------------------------------------------------------------------
// Scenarios: declarative topology + event timeline
//
// A Scenario is the preferred way to describe a deployment: the topology
// (edges, cameras, shards, protocol, batcher) plus a clock-ordered
// timeline of runtime events — cameras joining/leaving, a camera and its
// shard migrating between edges, workload shifts, scripted faults, WAL
// checkpoints. Assembling a ClusterConfig by hand remains supported as the
// static subset (see the README's deprecation mapping).

type (
	// Scenario is a declarative fleet deployment: topology + timeline.
	Scenario = scenario.Scenario
	// ScenarioTopology declares the fleet at time zero.
	ScenarioTopology = scenario.Topology
	// ScenarioEdge declares one edge node.
	ScenarioEdge = scenario.Edge
	// ScenarioCamera declares one camera stream.
	ScenarioCamera = scenario.Camera
	// ScenarioBatcher configures the shared cloud validator.
	ScenarioBatcher = scenario.Batcher
	// ScenarioEvent is one timeline entry.
	ScenarioEvent = scenario.Event
	// ScenarioDuration is a JSON-friendly duration ("80ms").
	ScenarioDuration = scenario.Duration
	// ScenarioRuntime is a compiled scenario bound to a cluster.
	ScenarioRuntime = scenario.Runtime
	// ScenarioOptions select the deployment a scenario runs on: the
	// simulated fleet or the loopback-TCP fleet, plus the wall-clock
	// compression for the latter.
	ScenarioOptions = scenario.Options

	// Transport is the fleet's network seam: every frame delivery,
	// validation transfer, and 2PC message crosses it, and network-level
	// faults act through it. See NewSimTransport and NewTCPTransport.
	Transport = transport.Transport
	// TransportPath is one directed fleet network path.
	TransportPath = transport.Path
	// TransportReport is a non-simulated transport's section of a fleet
	// report (traffic carried over sockets, drops while severed,
	// teardowns).
	TransportReport = cluster.TransportReport

	// DynamicReport tallies a run's fleet churn (joins, leaves,
	// migrations, outages, dropped frames).
	DynamicReport = cluster.DynamicReport
	// PhaseReport is one timeline-bounded slice of a run.
	PhaseReport = cluster.PhaseReport
	// ShardMap is the sharded fleet's mutable shard→edge routing table.
	ShardMap = twopc.ShardMap
)

// Scenario event kinds and 2PC crash points (Event.Do / Event.Point).
const (
	EventCameraJoin    = scenario.KindCameraJoin
	EventCameraLeave   = scenario.KindCameraLeave
	EventMigrateCamera = scenario.KindMigrateCamera
	EventWorkloadShift = scenario.KindWorkloadShift
	EventEdgeCrash     = scenario.KindEdgeCrash
	EventEdgeRetire    = scenario.KindEdgeRetire
	EventTwoPCCrash    = scenario.KindTwoPCCrash
	EventLinkFault     = scenario.KindLinkFault
	EventCheckpoint    = scenario.KindCheckpoint

	// TransportSim and TransportTCP name the two deployments a scenario
	// (or flag-built fleet) can run on.
	TransportSim = scenario.TransportSim
	TransportTCP = scenario.TransportTCP

	ScenarioPointParticipantPrepared = scenario.PointParticipantPrepared
	ScenarioPointAfterPrepare        = scenario.PointAfterPrepare
	ScenarioPointAfterDecision       = scenario.PointAfterDecision
)

// LoadScenario reads, decodes, and validates a scenario file (version-1
// JSON).
func LoadScenario(path string) (*Scenario, error) { return scenario.Load(path) }

// DecodeScenario parses and validates a scenario document.
func DecodeScenario(data []byte) (*Scenario, error) { return scenario.Decode(data) }

// RunScenario plays a scenario on a fresh virtual clock and returns the
// fleet report. Same scenario, same seed ⇒ byte-identical report.
func RunScenario(s *Scenario) (*ClusterReport, error) { return scenario.Run(s) }

// RunScenarioWith plays a scenario on the selected deployment: the
// simulated fleet (byte-identical replay) or the same fleet over loopback
// TCP sockets on the wall clock, where timeline faults tear real
// connections down. One scenario JSON, two transports.
func RunScenarioWith(s *Scenario, o ScenarioOptions) (*ClusterReport, error) {
	return scenario.RunWith(s, o)
}

// ---------------------------------------------------------------------------
// Observability: deterministic tracing + fleet metrics (internal/obs)

type (
	// Obs bundles a span tracer and a metrics registry; set it on
	// ClusterConfig.Obs or ScenarioOptions.Obs to thread observability
	// through a fleet. Nil disables all instrumentation.
	Obs = obs.Obs
	// ObsSpan is one traced interval on the run's clock.
	ObsSpan = obs.Span
	// ObsTracer collects spans into a bounded in-memory buffer.
	ObsTracer = obs.Tracer
	// ObsRegistry holds tagged counters, gauges, and latency histograms.
	ObsRegistry = obs.Registry
	// ClusterCriticalPath decomposes a fleet's final latency into
	// compute / queue / lock / 2PC / network components at p50 and p99.
	ClusterCriticalPath = cluster.CriticalPath
)

// NewObs returns an observability layer with a fresh tracer and registry.
func NewObs() *Obs { return obs.New() }

// WriteTraceFile writes a trace: JSONL when name ends in ".jsonl", a
// Chrome trace_event JSON file (openable in Perfetto / chrome://tracing)
// otherwise. Spans are sorted, so a deterministic run's file is
// byte-identical across replays.
func WriteTraceFile(w io.Writer, name string, spans []ObsSpan) error {
	return obs.WriteTraceFile(w, name, spans)
}

// ServeDebug serves /metrics (Prometheus text), /debug/vars (expvar), and
// /debug/pprof on addr in the background, returning the bound address.
func ServeDebug(addr string, reg *ObsRegistry) (string, error) {
	return obs.ServeDebug(addr, reg)
}

// NewSimTransport returns the simulated fleet transport (netsim links on
// the fleet clock) — the default when ClusterConfig.Transport is nil.
func NewSimTransport() Transport { return transport.NewSim() }

// NewTCPTransport returns the loopback-TCP fleet transport: every fleet
// hop ships real bytes over sockets, and faults tear connections down.
// Pair it with NewScaledRealClock in a ClusterConfig.
func NewTCPTransport() Transport { return transport.NewTCP() }

// NewScaledRealClock returns a wall clock whose modeled time runs
// 1/scale faster than real time — how a TCP fleet compresses modeled
// inference latencies and the event timeline. Scale 0 or 1 is real time.
func NewScaledRealClock(scale float64) Clock { return vclock.NewScaledReal(scale) }

// NewScenarioRuntime compiles a scenario onto the caller's clock for
// callers that need post-run access to the cluster (durability checks,
// shard map, outcomes). Close the runtime's Cluster when done.
func NewScenarioRuntime(s *Scenario, clk Clock) (*ScenarioRuntime, error) {
	return scenario.New(s, clk)
}

// NewValidationBatcher returns the SLO-aware cloud validation batcher.
// Clock and Model are required here (unlike inside a ClusterConfig,
// which fills them in).
func NewValidationBatcher(cfg BatcherConfig) (*ValidationBatcher, error) {
	return cluster.NewBatcher(cfg)
}

// ---------------------------------------------------------------------------
// Experiments

type (
	// ExperimentTable is a reproduced paper table/figure.
	ExperimentTable = experiments.Table
	// ExperimentOpts scales the experiment harnesses.
	ExperimentOpts = experiments.Opts
)

// RunExperiment regenerates one paper table/figure by ID (see
// ExperimentIDs).
func RunExperiment(id string, opts ExperimentOpts) (ExperimentTable, bool) {
	return experiments.ByID(id, opts)
}

// RunAllExperiments regenerates every table and figure.
func RunAllExperiments(opts ExperimentOpts) []ExperimentTable {
	return experiments.All(opts)
}

// ExperimentIDs lists the available experiment IDs.
func ExperimentIDs() []string { return experiments.IDs() }
