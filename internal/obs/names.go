package obs

// Span names, one per stage boundary in a frame's or transaction's life.
// The taxonomy is documented in the README's Observability section; keep
// the two in sync.
const (
	SpanFrameRoot     = "frame.root"      // per-frame root on the node running the pipeline (its ID anchors the frame's tree)
	SpanClientFrame   = "client.frame"    // client-side root: submit → final reply received
	SpanRPCCloud      = "rpc.cloud"       // edge-side cloud round trip (request out → response in)
	SpanCloudRequest  = "cloud.request"   // cloud-side handling of one validation request (tag section=<k>)
	SpanNetHop        = "net.hop"         // one traced transport payload's socket round trip (tag path=<name>)
	SpanFrameIngest   = "frame.ingest"    // client→edge transfer of one frame
	SpanPoolWait      = "edge.pool.wait"  // waiting for an edge inference slot
	SpanEdgeDetect    = "edge.detect"     // compact-model inference
	SpanInitialTxn    = "txn.initial"     // initial section (edge answer commit)
	SpanFinalTxn      = "txn.final"       // final section (cloud correction commit)
	SpanSectionTxn    = "txn.section"     // one graph section's boundary commit (tag section=<k>)
	SpanNodeDetect    = "node.detect"     // a graph node's model inference (tag section=<k>)
	SpanLockWait      = "lock.wait"       // lock acquisition incl. wait-die waits
	SpanLockAbort     = "lock.abort"      // wait-die abort during acquisition
	SpanUplink        = "uplink.transfer" // edge→cloud frame shipment
	SpanBatchQueue    = "batch.queue"     // batcher enqueue→dispatch wait
	SpanBatchRun      = "batch.run"       // batched cloud inference
	SpanBatchShed     = "batch.shed"      // admission-control shed
	SpanCloudValidate = "cloud.validate"  // full validation incl. return link
	SpanTwoPC         = "twopc.commit"    // prepare/commit fan-out rounds
	SpanWALReplay     = "wal.replay"      // crash-recovery WAL replay
	SpanRetraction    = "retract.cascade" // dependency-ordered retraction
	SpanQuiesce       = "migrate.quiesce" // shard migration: draining intents
	SpanCutover       = "migrate.cutover" // shard migration: frozen copy+flip
)

// Metric names. Tags are drawn from {edge, camera, protocol, component,
// transport, section}; every name is prefixed croesus_ so scrapes are
// greppable. The section tag carries the graph-section index ("0", "1", …)
// on the per-section span and metric families below.
const (
	MetricFrames         = "croesus_frames_total"
	MetricFramesShed     = "croesus_frames_shed_total"
	MetricFramesLost     = "croesus_frames_lost_total"
	MetricFramesValid    = "croesus_frames_validated_total"
	MetricTxns           = "croesus_txns_total"
	MetricApologies      = "croesus_apologies_total"
	MetricEdgeQueueDepth = "croesus_edge_queue_depth"    // gauge: frames waiting for an inference slot, per edge
	MetricBatcherDepth   = "croesus_batcher_queue_depth" // gauge: validations queued at the cloud batcher
	MetricBatcherInfl    = "croesus_batcher_inflight"    // gauge: batches currently running
	MetricBatches        = "croesus_batches_total"       // counter: batches dispatched
	MetricInitialLatency = "croesus_initial_latency_seconds"
	MetricFinalLatency   = "croesus_final_latency_seconds"
	MetricSectionLatency = "croesus_section_latency_seconds"   // histogram, tag section=<index> (graph executor)
	MetricSectionCommit  = "croesus_section_commits_total"     // counter, tag section=<index> (graph executor)
	MetricComponent      = "croesus_latency_component_seconds" // histogram, component=compute|queue|lock|twopc|network
	MetricTwoPCRounds    = "croesus_twopc_rounds_total"
	MetricPrepareRPCs    = "croesus_twopc_prepare_rpcs_total"
	MetricCommitRPCs     = "croesus_twopc_commit_rpcs_total"
	MetricLockRPCs       = "croesus_twopc_lock_rpcs_total"
	MetricTxnAborts      = "croesus_txn_aborts_total"
	MetricMapRetries     = "croesus_shardmap_retries_total"
	MetricCommitsLocal   = "croesus_commits_local_total"
	MetricCommitsCross   = "croesus_commits_cross_edge_total"
	MetricCommitsRemote  = "croesus_commits_remote_total"
	MetricTransportMsgs  = "croesus_transport_messages_total" // tag transport=sim|tcp
	MetricTransportBytes = "croesus_transport_bytes_total"
	MetricFaultCrashes   = "croesus_fault_crashes_total"
	MetricFaultRecover   = "croesus_fault_recoveries_total"
	MetricWALAppends     = "croesus_wal_appends_total"
	MetricWALReplayed    = "croesus_wal_records_replayed_total"
	MetricMigrations     = "croesus_shard_migrations_total"
	// MetricDroppedSeries counts metric series the registry refused to
	// create past the per-metric cardinality cap (Registry.SetMaxSeries).
	MetricDroppedSeries = "croesus_obs_dropped_series_total"
	// MetricWatchdogIncidents counts incidents raised by the streaming
	// SLO/invariant watchdog, tagged kind=<incident kind>.
	MetricWatchdogIncidents = "croesus_watchdog_incidents_total"
)
