package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// SortSpans orders spans by (Start, End, Name, Tags) with the identity
// fields (Trace, ID, Parent, Proc) as final tiebreaks. Concurrent
// emitters append in a racy order, but under the deterministic scheduler
// the span multiset — and every sort key — is fixed by scenario + seed,
// so sorting makes the exported bytes reproducible.
func SortSpans(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.End != b.End {
			return a.End < b.End
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Tags != b.Tags {
			return a.Tags < b.Tags
		}
		if a.Trace != b.Trace {
			return a.Trace < b.Trace
		}
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		if a.Parent != b.Parent {
			return a.Parent < b.Parent
		}
		return a.Proc < b.Proc
	})
}

// WriteJSONL writes one span per line as JSON, sorted. Timestamps are
// integer nanoseconds, so identical span multisets produce identical
// bytes.
func WriteJSONL(w io.Writer, spans []Span) error {
	sorted := make([]Span, len(spans))
	copy(sorted, spans)
	SortSpans(sorted)
	for _, s := range sorted {
		b, err := json.Marshal(s)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one complete ("ph":"X") event in the Chrome trace_event
// format that Perfetto and chrome://tracing load.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeMeta struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// WriteChromeTrace writes the spans as a Chrome trace_event JSON object
// (the format Perfetto opens directly). Each distinct tag set becomes a
// named track (tid), assigned in sorted-tag order so the file is
// deterministic.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	sorted := make([]Span, len(spans))
	copy(sorted, spans)
	SortSpans(sorted)

	tagSet := make(map[string]bool)
	for _, s := range sorted {
		tagSet[s.Tags] = true
	}
	allTags := make([]string, 0, len(tagSet))
	for t := range tagSet {
		allTags = append(allTags, t)
	}
	sort.Strings(allTags)
	tid := make(map[string]int, len(allTags))
	for i, t := range allTags {
		tid[t] = i + 1
	}

	events := make([]any, 0, len(sorted)+len(allTags))
	for i, t := range allTags {
		name := t
		if name == "" {
			name = "fleet"
		}
		events = append(events, chromeMeta{
			Name: "thread_name", Ph: "M", PID: 1, TID: i + 1,
			Args: map[string]any{"name": name},
		})
	}
	for _, s := range sorted {
		ev := chromeEvent{
			Name: s.Name,
			Ph:   "X",
			TS:   float64(s.Start) / 1e3,
			Dur:  float64(s.End-s.Start) / 1e3,
			PID:  1,
			TID:  tid[s.Tags],
		}
		if s.Tags != "" {
			args := make(map[string]string)
			for _, pair := range strings.Split(s.Tags, ",") {
				k, v, _ := strings.Cut(pair, "=")
				args[k] = v
			}
			ev.Args = args
		}
		events = append(events, ev)
	}

	b, err := json.Marshal(map[string]any{"traceEvents": events})
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// WriteTraceFile writes spans to w in the format implied by the file
// name: ".jsonl" gets the line-oriented export, anything else the Chrome
// trace_event JSON.
func WriteTraceFile(w io.Writer, name string, spans []Span) error {
	if strings.HasSuffix(name, ".jsonl") {
		return WriteJSONL(w, spans)
	}
	return WriteChromeTrace(w, spans)
}

// DescribeTrace summarizes a trace for log lines: span count and
// distinct names.
func DescribeTrace(spans []Span) string {
	names := make(map[string]bool)
	for _, s := range spans {
		names[s.Name] = true
	}
	return fmt.Sprintf("%d spans, %d span kinds", len(spans), len(names))
}
