package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTagsCanonical(t *testing.T) {
	if got := Tags("edge", "e1", "camera", "c0"); got != "camera=c0,edge=e1" {
		t.Fatalf("Tags not sorted: %q", got)
	}
	if got := Tags(); got != "" {
		t.Fatalf("empty Tags = %q", got)
	}
	if Tags("a", "1") != Tags("a", "1") {
		t.Fatal("Tags not stable")
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{0.010, 0.100, 1})
	// Exactly on a bound lands in that bucket (le semantics).
	h.Observe(10 * time.Millisecond)
	// Just above a bound spills to the next bucket.
	h.Observe(10*time.Millisecond + time.Nanosecond)
	// Past the last bound lands in +Inf.
	h.Observe(2 * time.Second)

	got := h.Buckets()
	want := []int64{1, 2, 2, 3} // cumulative: le=0.01, le=0.1, le=1, +Inf
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	wantSum := 10*time.Millisecond + 10*time.Millisecond + time.Nanosecond + 2*time.Second
	if h.Sum() != wantSum {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]float64{0.01, 0.1})
	b := NewHistogram([]float64{0.01, 0.1})
	a.Observe(5 * time.Millisecond)
	b.Observe(50 * time.Millisecond)
	b.Observe(5 * time.Second)
	if err := a.Merge(b); err != nil {
		t.Fatalf("merge: %v", err)
	}
	got := a.Buckets()
	want := []int64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged bucket %d = %d, want %d", i, got[i], want[i])
		}
	}
	if a.Count() != 3 {
		t.Fatalf("merged count = %d", a.Count())
	}

	c := NewHistogram([]float64{0.5})
	if err := a.Merge(c); err == nil {
		t.Fatal("merge of mismatched layouts succeeded")
	}

	// Per-section series stay distinct: a registry resolves one histogram
	// per section tag, and merging the same section across two edges'
	// registries folds counts without bleeding into a neighboring section.
	west, east := NewRegistry(), NewRegistry()
	for _, r := range []*Registry{west, east} {
		r.Histogram(MetricSectionLatency, Tags("edge", "e0", "section", "1")).Observe(8 * time.Millisecond)
		r.Histogram(MetricSectionLatency, Tags("edge", "e0", "section", "2")).Observe(80 * time.Millisecond)
	}
	for _, sec := range []string{"1", "2"} {
		tag := Tags("edge", "e0", "section", sec)
		if err := west.Histogram(MetricSectionLatency, tag).Merge(east.Histogram(MetricSectionLatency, tag)); err != nil {
			t.Fatalf("section %s merge: %v", sec, err)
		}
		if n := west.Histogram(MetricSectionLatency, tag).Count(); n != 2 {
			t.Fatalf("section %s merged count = %d, want 2 (one per fleet half)", sec, n)
		}
	}
}

func TestRegistryPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Counter(MetricFrames, Tags("edge", "e0")).Add(3)
	r.Gauge(MetricEdgeQueueDepth, Tags("edge", "e0")).Set(2)
	r.Histogram(MetricFinalLatency, Tags("edge", "e0")).Observe(42 * time.Millisecond)
	r.Histogram(MetricSectionLatency, Tags("edge", "e0", "section", "0")).Observe(9 * time.Millisecond)
	r.Histogram(MetricSectionLatency, Tags("edge", "e0", "section", "1")).Observe(33 * time.Millisecond)
	r.Counter(MetricSectionCommit, Tags("edge", "e0", "section", "1")).Inc()
	r.RegisterCollector(func(reg *Registry) {
		reg.Counter("croesus_collected_total", "").Add(1)
	})

	out := r.PrometheusText()
	for _, want := range []string{
		`croesus_frames_total{edge="e0"} 3`,
		`croesus_edge_queue_depth{edge="e0"} 2`,
		`croesus_final_latency_seconds_bucket{edge="e0",le="0.05"} 1`,
		`croesus_final_latency_seconds_bucket{edge="e0",le="+Inf"} 1`,
		`croesus_final_latency_seconds_count{edge="e0"} 1`,
		`croesus_section_latency_seconds_bucket{edge="e0",section="0",le="0.01"} 1`,
		`croesus_section_latency_seconds_count{edge="e0",section="1"} 1`,
		`croesus_section_commits_total{edge="e0",section="1"} 1`,
		"# TYPE croesus_frames_total counter",
		"# TYPE croesus_edge_queue_depth gauge",
		"# TYPE croesus_final_latency_seconds histogram",
		"# TYPE croesus_section_latency_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("scrape missing %q:\n%s", want, out)
		}
	}
	// Collector counters must not accumulate across scrapes beyond their
	// own semantics, and two scrapes of identical state are identical
	// except for the collector's own increment; check determinism with a
	// collector-free registry.
	r2 := NewRegistry()
	r2.Counter("a_total", Tags("x", "1")).Inc()
	r2.Histogram("lat_seconds", "").Observe(time.Millisecond)
	if r2.PrometheusText() != r2.PrometheusText() {
		t.Fatal("scrape output not deterministic")
	}
}

func TestNilSafety(t *testing.T) {
	var o *Obs
	o.Span("x", "", 0, 1)
	o.Counter("c", "").Inc()
	o.Gauge("g", "").Add(2)
	o.Histogram("h", "").Observe(time.Second)
	var tr *Tracer
	tr.Emit("x", "", 0, 1)
	if tr.Spans() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer returned data")
	}
	var r *Registry
	if r.PrometheusText() != "" || r.Counter("c", "") != nil {
		t.Fatal("nil registry not inert")
	}
	var h *Histogram
	h.Observe(time.Second)
	if err := h.Merge(NewHistogram(nil)); err != nil {
		t.Fatalf("nil merge: %v", err)
	}
}

func TestTracerCapDrops(t *testing.T) {
	tr := NewTracerCap(2)
	tr.Emit("a", "", 0, 1)
	tr.Emit("b", "", 1, 2)
	tr.Emit("c", "", 2, 3)
	if n := len(tr.Spans()); n != 2 {
		t.Fatalf("spans = %d, want 2", n)
	}
	if tr.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", tr.Dropped())
	}
}

func TestWriteJSONLDeterministic(t *testing.T) {
	spans := []Span{
		{Name: "b", Tags: "edge=e1", Start: 5, End: 9},
		{Name: "a", Tags: "edge=e0", Start: 5, End: 9},
		{Name: "a", Tags: "edge=e0", Start: 1, End: 2},
	}
	// Reversed emission order must produce identical bytes.
	rev := []Span{spans[2], spans[1], spans[0]}
	var b1, b2 bytes.Buffer
	if err := WriteJSONL(&b1, spans); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&b2, rev); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("JSONL not order-independent:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	first, _, _ := strings.Cut(b1.String(), "\n")
	if !strings.Contains(first, `"start":1`) {
		t.Fatalf("not sorted by start: %s", first)
	}
}

func TestWriteChromeTraceValid(t *testing.T) {
	spans := []Span{
		{Name: SpanEdgeDetect, Tags: Tags("edge", "e0", "camera", "c0"), Start: time.Millisecond, End: 3 * time.Millisecond},
		{Name: SpanTwoPC, Tags: Tags("edge", "e1"), Start: 2 * time.Millisecond, End: 8 * time.Millisecond},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	var complete int
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			complete++
			if _, ok := ev["ts"].(float64); !ok {
				t.Fatalf("event missing ts: %v", ev)
			}
		}
	}
	if complete != len(spans) {
		t.Fatalf("complete events = %d, want %d", complete, len(spans))
	}
}
