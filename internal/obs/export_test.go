package obs

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
	"time"
)

func decodeChrome(t *testing.T, b []byte) []map[string]any {
	t.Helper()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, b)
	}
	return doc.TraceEvents
}

func TestChromeTraceEscapesNamesAndTags(t *testing.T) {
	spans := []Span{
		{Name: `weird "name" \ with <tags>`, Tags: Tags("camera", `cam"0\`), Start: 0, End: time.Millisecond},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	events := decodeChrome(t, buf.Bytes())
	found := false
	for _, ev := range events {
		if ev["ph"] != "X" {
			continue
		}
		found = true
		if got := ev["name"]; got != `weird "name" \ with <tags>` {
			t.Errorf("name round trip = %q", got)
		}
		args := ev["args"].(map[string]any)
		if got := args["camera"]; got != `cam"0\` {
			t.Errorf("tag value round trip = %q", got)
		}
	}
	if !found {
		t.Fatal("no span event in output")
	}
}

func TestChromeTraceEventOrdering(t *testing.T) {
	// Emitted deliberately out of order; the export must sort by start
	// time so identical multisets are byte-identical.
	spans := []Span{
		{Name: "late", Start: 30 * time.Millisecond, End: 40 * time.Millisecond},
		{Name: "early", Start: 10 * time.Millisecond, End: 20 * time.Millisecond},
		{Name: "middle", Start: 20 * time.Millisecond, End: 30 * time.Millisecond},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var names []string
	var lastTS float64 = -1
	for _, ev := range decodeChrome(t, buf.Bytes()) {
		if ev["ph"] != "X" {
			continue
		}
		ts := ev["ts"].(float64)
		if ts < lastTS {
			t.Errorf("event %q at ts=%v out of order", ev["name"], ts)
		}
		lastTS = ts
		names = append(names, ev["name"].(string))
	}
	if want := []string{"early", "middle", "late"}; strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("event order = %v, want %v", names, want)
	}

	// Timestamps are microseconds.
	events := decodeChrome(t, buf.Bytes())
	for _, ev := range events {
		if ev["name"] == "early" {
			if ev["ts"].(float64) != 10000 || ev["dur"].(float64) != 10000 {
				t.Errorf("early ts/dur = %v/%v µs, want 10000/10000", ev["ts"], ev["dur"])
			}
		}
	}
}

func TestChromeTraceTIDMapping(t *testing.T) {
	spans := []Span{
		{Name: "a", Tags: Tags("edge", "e1"), Start: 0, End: time.Millisecond},
		{Name: "b", Tags: Tags("edge", "e0"), Start: 0, End: time.Millisecond},
		{Name: "c", Tags: "", Start: 0, End: time.Millisecond},
		{Name: "d", Tags: Tags("edge", "e0"), Start: time.Millisecond, End: 2 * time.Millisecond},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	events := decodeChrome(t, buf.Bytes())

	// Track names registered via thread_name metadata, in sorted-tag
	// order: "" (shown as fleet) < edge=e0 < edge=e1.
	trackName := map[int]string{}
	for _, ev := range events {
		if ev["ph"] == "M" && ev["name"] == "thread_name" {
			args := ev["args"].(map[string]any)
			trackName[int(ev["tid"].(float64))] = args["name"].(string)
		}
	}
	if trackName[1] != "fleet" || trackName[2] != "edge=e0" || trackName[3] != "edge=e1" {
		t.Fatalf("track mapping = %v", trackName)
	}
	// Spans land on the track matching their tags; same tags share a tid,
	// and every event stays in the single simulated process (pid 1).
	spanTID := map[string]int{}
	for _, ev := range events {
		if ev["ph"] != "X" {
			continue
		}
		if pid := int(ev["pid"].(float64)); pid != 1 {
			t.Errorf("span %q pid = %d, want 1", ev["name"], pid)
		}
		spanTID[ev["name"].(string)] = int(ev["tid"].(float64))
	}
	if spanTID["b"] != spanTID["d"] {
		t.Errorf("same tag set split across tids: %v", spanTID)
	}
	if spanTID["c"] != 1 || spanTID["b"] != 2 || spanTID["a"] != 3 {
		t.Errorf("span→tid mapping = %v", spanTID)
	}
}

func TestRegistryCardinalityCap(t *testing.T) {
	r := NewRegistry()
	r.SetMaxSeries(3)

	var admitted int
	for i := 0; i < 10; i++ {
		c := r.Counter("croesus_test_total", Tags("camera", "cam"+strconv.Itoa(i)))
		if c != nil {
			admitted++
		}
		c.Inc() // nil-safe either way
	}
	if admitted != 3 {
		t.Errorf("admitted %d series, want 3", admitted)
	}
	if got := r.DroppedSeries(); got != 7 {
		t.Errorf("DroppedSeries = %d, want 7", got)
	}
	// The cap is per metric name: a different metric still admits series,
	// and re-resolving an existing series never counts as a drop.
	if g := r.Gauge("croesus_other_depth", Tags("edge", "e0")); g == nil {
		t.Error("different metric refused below its own cap")
	}
	if c := r.Counter("croesus_test_total", Tags("camera", "cam0")); c == nil {
		t.Error("existing series refused after cap reached")
	}
	if got := r.DroppedSeries(); got != 7 {
		t.Errorf("DroppedSeries moved to %d on non-drops", got)
	}
	// Histograms share the same guard.
	r.SetMaxSeries(1)
	if h := r.Histogram("croesus_lat_seconds", Tags("a", "1")); h == nil {
		t.Error("first histogram series refused")
	}
	if h := r.Histogram("croesus_lat_seconds", Tags("a", "2")); h != nil {
		t.Error("histogram series admitted past the cap")
	}
	// The drop counter itself is visible in scrapes.
	if !strings.Contains(r.PrometheusText(), MetricDroppedSeries) {
		t.Error("dropped-series counter missing from scrape")
	}
}

func TestRegistryDroppedSeriesExemptFromCap(t *testing.T) {
	r := NewRegistry()
	r.SetMaxSeries(1)
	r.Counter("croesus_test_total", Tags("k", "a"))
	r.Counter("croesus_test_total", Tags("k", "b")) // dropped
	// The overflow counter must always be resolvable, even at cap 1 with
	// other metrics saturated — otherwise the guard hides its own signal.
	c := r.Counter(MetricDroppedSeries, "")
	if c == nil {
		t.Fatal("dropped-series counter refused by the cap")
	}
	if c.Value() != 1 {
		t.Errorf("dropped-series counter = %d, want 1", c.Value())
	}
	if got := r.DroppedSeries(); got != 1 {
		t.Errorf("DroppedSeries = %d, want 1", got)
	}
}
