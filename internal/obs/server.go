package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// ServeDebug starts the introspection HTTP endpoint on addr and returns
// the bound address. The mux serves:
//
//	/metrics      Prometheus text exposition of the registry
//	/debug/vars   expvar JSON (includes the registry snapshot)
//	/debug/pprof  the standard pprof handlers
//
// The server runs on plain goroutines outside any vclock scheduler, so it
// is safe under both the simulated and the wall clock; it lives until the
// process exits (debug endpoints have no graceful-shutdown needs).
func ServeDebug(addr string, reg *Registry) (string, error) {
	PublishExpvar(reg)

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(reg.PrometheusText()))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		srv := &http.Server{Handler: mux}
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), nil
}
