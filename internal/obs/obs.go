// Package obs is the fleet's observability layer: deterministic
// per-transaction spans, a tagged metrics registry, and the exporters and
// HTTP surfacing that make both visible (JSONL / Chrome trace_event files
// for the simulator, Prometheus-text + expvar + pprof endpoints for the
// TCP deployment).
//
// Instrumentation must never perturb the virtual-time schedule: every
// recording call here takes timestamps the caller already read from its
// vclock.Clock (Now is a plain mutex-guarded read on the simulator) and
// touches only package-local mutexes and atomics. Nothing in this package
// calls Sleep, waits on a Gate, or otherwise interacts with the scheduler,
// so a scenario run with tracing enabled produces byte-identical reports
// to one without.
//
// Every entry point is nil-safe: a nil *Obs, *Tracer, *Registry, *Counter,
// *Gauge, or *Histogram is a no-op, so call sites do not branch on whether
// observability is enabled.
package obs

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one traced interval: a stage of a frame's or transaction's life,
// bounded by two timestamps from the run's Clock. Tags is a pre-rendered,
// canonical "k=v,k=v" string (keys sorted — see Tags) so spans compare and
// sort bytewise.
type Span struct {
	Name  string        `json:"name"`
	Tags  string        `json:"tags,omitempty"`
	Start time.Duration `json:"start"`
	End   time.Duration `json:"end"`
}

// Tags renders key/value pairs into the canonical sorted "k=v,k=v" form
// used by both spans and metrics. Arguments are alternating key, value;
// an odd trailing key is ignored.
func Tags(kv ...string) string {
	n := len(kv) / 2
	if n == 0 {
		return ""
	}
	pairs := make([]string, 0, n)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, kv[i]+"="+kv[i+1])
	}
	sort.Strings(pairs)
	return strings.Join(pairs, ",")
}

// DefaultTracerCap bounds the in-memory span ring. A 20-second, 16-camera
// scenario emits a few hundred thousand spans; one million leaves headroom
// while capping memory at tens of MB.
const DefaultTracerCap = 1 << 20

// Tracer collects spans into a bounded in-memory buffer. Spans past the
// cap are dropped and counted — the only way a trace can lose determinism,
// and Dropped exposes it so tests can assert zero.
type Tracer struct {
	mu      sync.Mutex
	spans   []Span
	cap     int
	dropped int64
}

// NewTracer returns a Tracer with the default capacity.
func NewTracer() *Tracer { return &Tracer{cap: DefaultTracerCap} }

// NewTracerCap returns a Tracer holding at most n spans (n ≤ 0 means the
// default).
func NewTracerCap(n int) *Tracer {
	if n <= 0 {
		n = DefaultTracerCap
	}
	return &Tracer{cap: n}
}

// Emit records one span. Nil-safe; concurrent-safe. Arrival order is racy
// under concurrency — exporters sort before writing, so the trace bytes
// depend only on the span multiset, which the deterministic scheduler
// fixes.
func (t *Tracer) Emit(name, tags string, start, end time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.spans) >= t.cap {
		t.dropped++
		t.mu.Unlock()
		return
	}
	t.spans = append(t.spans, Span{Name: name, Tags: tags, Start: start, End: end})
	t.mu.Unlock()
}

// Spans returns a copy of the collected spans (unsorted).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Dropped reports how many spans were discarded at the capacity limit.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Obs bundles the two halves of the observability layer so one optional
// pointer threads through configs. A nil *Obs disables everything.
type Obs struct {
	Trace *Tracer
	Reg   *Registry
}

// New returns an Obs with a fresh tracer and registry.
func New() *Obs { return &Obs{Trace: NewTracer(), Reg: NewRegistry()} }

// Span records a span on the bundled tracer. Nil-safe.
func (o *Obs) Span(name, tags string, start, end time.Duration) {
	if o == nil {
		return
	}
	o.Trace.Emit(name, tags, start, end)
}

// Tracer returns the bundled tracer (nil when disabled).
func (o *Obs) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.Trace
}

// Registry returns the bundled registry (nil when disabled).
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Reg
}

// Counter resolves a counter on the bundled registry. Nil-safe: returns a
// nil *Counter whose methods are no-ops.
func (o *Obs) Counter(name, tags string) *Counter {
	if o == nil {
		return nil
	}
	return o.Reg.Counter(name, tags)
}

// Gauge resolves a gauge on the bundled registry. Nil-safe.
func (o *Obs) Gauge(name, tags string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Reg.Gauge(name, tags)
}

// Histogram resolves a latency histogram on the bundled registry with the
// default buckets. Nil-safe.
func (o *Obs) Histogram(name, tags string) *Histogram {
	if o == nil {
		return nil
	}
	return o.Reg.Histogram(name, tags)
}
