// Package obs is the fleet's observability layer: deterministic
// per-transaction spans, a tagged metrics registry, and the exporters and
// HTTP surfacing that make both visible (JSONL / Chrome trace_event files
// for the simulator, Prometheus-text + expvar + pprof endpoints for the
// TCP deployment).
//
// Instrumentation must never perturb the virtual-time schedule: every
// recording call here takes timestamps the caller already read from its
// vclock.Clock (Now is a plain mutex-guarded read on the simulator) and
// touches only package-local mutexes and atomics. Nothing in this package
// calls Sleep, waits on a Gate, or otherwise interacts with the scheduler,
// so a scenario run with tracing enabled produces byte-identical reports
// to one without.
//
// Every entry point is nil-safe: a nil *Obs, *Tracer, *Registry, *Counter,
// *Gauge, or *Histogram is a no-op, so call sites do not branch on whether
// observability is enabled.
package obs

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// TraceSchemaVersion is the version of the JSONL span schema written by
// WriteJSONL and read by internal/obs/collect — bump it when a field
// changes meaning. v1 was the PR-6 schema (name, tags, start, end); v2
// adds the optional identity fields (trace, span, parent, proc) that link
// spans across process boundaries.
const TraceSchemaVersion = 2

// Span is one traced interval: a stage of a frame's or transaction's life,
// bounded by two timestamps from the run's Clock. Tags is a pre-rendered,
// canonical "k=v,k=v" string (keys sorted — see Tags) so spans compare and
// sort bytewise.
//
// The identity fields are optional (schema v2). Trace groups every span of
// one frame's end-to-end life, across processes; ID names this span so
// children may reference it; Parent is the causal parent's ID (0 = a trace
// root); Proc names the emitting process, whose clock the timestamps were
// read from. Spans without identity (all four zero-valued) still export
// and merge — they just don't join a tree.
type Span struct {
	Name  string        `json:"name"`
	Tags  string        `json:"tags,omitempty"`
	Start time.Duration `json:"start"`
	End   time.Duration `json:"end"`

	Trace  uint64 `json:"trace,omitempty"`
	ID     uint64 `json:"span,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
	Proc   string `json:"proc,omitempty"`
}

// SpanContext is the compact trace context propagated along a frame's
// execution: the trace it belongs to, the enclosing span's ID (children
// emit with Parent = Span), and that span's own parent. The zero value
// means "no context" and every consumer treats it as a no-op.
type SpanContext struct {
	Trace  uint64
	Span   uint64
	Parent uint64
}

// Valid reports whether the context carries a trace.
func (c SpanContext) Valid() bool { return c.Trace != 0 }

// Child returns a context whose children will parent to span id.
func (c SpanContext) Child(id uint64) SpanContext {
	return SpanContext{Trace: c.Trace, Span: id, Parent: c.Span}
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// HashID derives a deterministic non-zero 64-bit identifier from its parts
// (FNV-1a with a separator byte between parts). Trace and span IDs are
// hashed — never drawn from a counter — so the simulator's concurrent
// emitters produce byte-identical traces run over run, and two processes
// of a real deployment never need to coordinate an ID space.
func HashID(parts ...string) uint64 {
	h := uint64(fnvOffset64)
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= fnvPrime64
		}
		h ^= 0xff
		h *= fnvPrime64
	}
	if h == 0 {
		h = 1
	}
	return h
}

// U64 formats an id for use as a HashID part or a tag value.
func U64(v uint64) string { return strconv.FormatUint(v, 10) }

// Tags renders key/value pairs into the canonical sorted "k=v,k=v" form
// used by both spans and metrics. Arguments are alternating key, value;
// an odd trailing key is ignored.
func Tags(kv ...string) string {
	n := len(kv) / 2
	if n == 0 {
		return ""
	}
	pairs := make([]string, 0, n)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, kv[i]+"="+kv[i+1])
	}
	sort.Strings(pairs)
	return strings.Join(pairs, ",")
}

// DefaultTracerCap bounds the in-memory span ring. A 20-second, 16-camera
// scenario emits a few hundred thousand spans; one million leaves headroom
// while capping memory at tens of MB.
const DefaultTracerCap = 1 << 20

// Tracer collects spans into a bounded in-memory buffer. Spans past the
// cap are dropped and counted — the only way a trace can lose determinism,
// and Dropped exposes it so tests can assert zero.
type Tracer struct {
	mu      sync.Mutex
	spans   []Span
	cap     int
	dropped int64
	proc    string
}

// NewTracer returns a Tracer with the default capacity.
func NewTracer() *Tracer { return &Tracer{cap: DefaultTracerCap} }

// NewTracerCap returns a Tracer holding at most n spans (n ≤ 0 means the
// default).
func NewTracerCap(n int) *Tracer {
	if n <= 0 {
		n = DefaultTracerCap
	}
	return &Tracer{cap: n}
}

// SetProc names the emitting process; every span recorded after the call
// carries it (unless the span names its own). The simulator leaves this
// unset — a single-process trace needs no process column, and setting it
// would change the exported bytes.
func (t *Tracer) SetProc(proc string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.proc = proc
	t.mu.Unlock()
}

// Emit records one span. Nil-safe; concurrent-safe. Arrival order is racy
// under concurrency — exporters sort before writing, so the trace bytes
// depend only on the span multiset, which the deterministic scheduler
// fixes.
func (t *Tracer) Emit(name, tags string, start, end time.Duration) {
	t.EmitSpan(Span{Name: name, Tags: tags, Start: start, End: end})
}

// EmitCtx records one span as a child of ctx. When ctx is invalid the
// span is recorded untraced, so callers thread contexts unconditionally.
func (t *Tracer) EmitCtx(ctx SpanContext, name, tags string, start, end time.Duration) {
	if !ctx.Valid() {
		t.Emit(name, tags, start, end)
		return
	}
	t.EmitSpan(Span{Name: name, Tags: tags, Start: start, End: end, Trace: ctx.Trace, Parent: ctx.Span})
}

// EmitSpan records one fully-specified span (identity fields included).
// Nil-safe; concurrent-safe. The tracer's process name is stamped on
// spans that don't carry their own.
func (t *Tracer) EmitSpan(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.spans) >= t.cap {
		t.dropped++
		t.mu.Unlock()
		return
	}
	if s.Proc == "" {
		s.Proc = t.proc
	}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Spans returns a copy of the collected spans (unsorted).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Dropped reports how many spans were discarded at the capacity limit.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Obs bundles the two halves of the observability layer so one optional
// pointer threads through configs. A nil *Obs disables everything.
type Obs struct {
	Trace *Tracer
	Reg   *Registry
}

// New returns an Obs with a fresh tracer and registry.
func New() *Obs { return &Obs{Trace: NewTracer(), Reg: NewRegistry()} }

// Span records a span on the bundled tracer. Nil-safe.
func (o *Obs) Span(name, tags string, start, end time.Duration) {
	if o == nil {
		return
	}
	o.Trace.Emit(name, tags, start, end)
}

// EmitSpan records a fully-specified span on the bundled tracer. Nil-safe.
func (o *Obs) EmitSpan(s Span) {
	if o == nil {
		return
	}
	o.Trace.EmitSpan(s)
}

// SpanCtx records a span that belongs to ctx: its trace ID and (as Parent)
// the enclosing span. When ctx is invalid this degrades to Span — the
// uncontextualized PR-6 form — so call sites don't branch. Nil-safe.
func (o *Obs) SpanCtx(ctx SpanContext, name, tags string, start, end time.Duration) {
	if o == nil {
		return
	}
	o.Trace.EmitCtx(ctx, name, tags, start, end)
}

// Tracer returns the bundled tracer (nil when disabled).
func (o *Obs) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.Trace
}

// Registry returns the bundled registry (nil when disabled).
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Reg
}

// Counter resolves a counter on the bundled registry. Nil-safe: returns a
// nil *Counter whose methods are no-ops.
func (o *Obs) Counter(name, tags string) *Counter {
	if o == nil {
		return nil
	}
	return o.Reg.Counter(name, tags)
}

// Gauge resolves a gauge on the bundled registry. Nil-safe.
func (o *Obs) Gauge(name, tags string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Reg.Gauge(name, tags)
}

// Histogram resolves a latency histogram on the bundled registry with the
// default buckets. Nil-safe.
func (o *Obs) Histogram(name, tags string) *Histogram {
	if o == nil {
		return nil
	}
	return o.Reg.Histogram(name, tags)
}
