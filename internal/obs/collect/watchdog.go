package collect

import (
	"fmt"
	"sort"
	"time"

	"croesus/internal/obs"
)

// Incident kinds. Causality kinds (parent_missing, child_before_parent,
// span_leak) indicate a broken trace — croesus-trace -check treats them
// as hard failures; SLO kinds report service degradation.
const (
	IncidentParentMissing     = "parent_missing"
	IncidentChildBeforeParent = "child_before_parent"
	IncidentSpanLeak          = "span_leak"
	IncidentQueueStuck        = "queue_stuck"
	IncidentSLOMissRate       = "slo_miss_rate"
	IncidentShedBudget        = "shed_budget"
)

// CausalityKinds lists the incident kinds that indicate a structurally
// broken trace rather than degraded service.
var CausalityKinds = map[string]bool{
	IncidentParentMissing:     true,
	IncidentChildBeforeParent: true,
	IncidentSpanLeak:          true,
}

// Incident is one structured watchdog event.
type Incident struct {
	Kind   string        `json:"kind"`
	Proc   string        `json:"proc,omitempty"`
	Trace  uint64        `json:"trace,omitempty"`
	Span   uint64        `json:"span,omitempty"`
	At     time.Duration `json:"at"`
	Detail string        `json:"detail"`
}

// String renders the incident as one log line.
func (i Incident) String() string {
	s := i.Kind
	if i.Proc != "" {
		s += " proc=" + i.Proc
	}
	if i.Span != 0 {
		s += fmt.Sprintf(" span=%d", i.Span)
	}
	return fmt.Sprintf("%s at=%s: %s", s, i.At, i.Detail)
}

// WatchdogConfig configures the streaming watchdog.
type WatchdogConfig struct {
	// SLO is the per-frame deadline judged against each trace's root
	// span (client.frame, else frame.root). Zero disables SLO windows.
	SLO time.Duration
	// Window is the number of root spans per compliance window
	// (default 32).
	Window int
	// MaxMissRate is the tolerated fraction of deadline misses per
	// window (default 0.1); MaxShedRate the tolerated fraction of shed
	// validations per window (default 0.25).
	MaxMissRate float64
	MaxShedRate float64
	// QueueStuckLen flags a queue as stuck after this many consecutive
	// queue-wait spans with non-decreasing duration, the last at least
	// QueueStuckMin long (defaults 8 and 10ms).
	QueueStuckLen int
	QueueStuckMin time.Duration
	// Tolerance is the causality slack for child-before-parent (default
	// DefaultTolerance). Feed aligned spans — raw per-process clocks
	// make the check meaningless.
	Tolerance time.Duration
	// Registry, when set, counts incidents into
	// obs.MetricWatchdogIncidents tagged by kind.
	Registry *obs.Registry
}

// Watchdog consumes a span stream (aligned, in any order) and maintains
// standing invariants and per-window SLO compliance. Feed spans as they
// arrive; Finish flushes end-of-stream checks (unresolved parents, open
// windows, leaked traces) and returns the full incident list.
type Watchdog struct {
	cfg WatchdogConfig

	seen      map[uint64]obs.Span   // span ID → span
	orphans   map[uint64][]obs.Span // parent ID → children waiting for it
	rooted    map[uint64]bool       // trace → has a root span (Parent == 0)
	traceLast map[uint64]obs.Span   // trace → latest span observed (for leak reporting)

	queueRun   int
	queueLast  time.Duration
	queueProc  string
	queueStuck bool

	windowRoots int
	windowMiss  int
	windowShed  int
	windowEnd   time.Duration

	incidents []Incident
}

// NewWatchdog builds a watchdog; zero-value config fields take defaults.
func NewWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.Window <= 0 {
		cfg.Window = 32
	}
	if cfg.MaxMissRate <= 0 {
		cfg.MaxMissRate = 0.1
	}
	if cfg.MaxShedRate <= 0 {
		cfg.MaxShedRate = 0.25
	}
	if cfg.QueueStuckLen <= 0 {
		cfg.QueueStuckLen = 8
	}
	if cfg.QueueStuckMin <= 0 {
		cfg.QueueStuckMin = 10 * time.Millisecond
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = DefaultTolerance
	}
	return &Watchdog{
		cfg:       cfg,
		seen:      make(map[uint64]obs.Span),
		orphans:   make(map[uint64][]obs.Span),
		rooted:    make(map[uint64]bool),
		traceLast: make(map[uint64]obs.Span),
	}
}

func (w *Watchdog) report(in Incident) {
	w.incidents = append(w.incidents, in)
	if w.cfg.Registry != nil {
		w.cfg.Registry.Counter(obs.MetricWatchdogIncidents, obs.Tags("kind", in.Kind)).Inc()
	}
}

// Feed consumes one span. Order-independent for the causality checks;
// SLO windows and queue-run detection assume roughly time-ordered input
// (feed a merged, sorted stream for exact window accounting).
func (w *Watchdog) Feed(s obs.Span) {
	if s.Trace != 0 {
		if s.Parent == 0 {
			w.rooted[s.Trace] = true
		}
		if last, ok := w.traceLast[s.Trace]; !ok || s.End > last.End {
			w.traceLast[s.Trace] = s
		}
	}
	if s.ID != 0 {
		w.seen[s.ID] = s
		for _, child := range w.orphans[s.ID] {
			w.checkOrder(child, s)
		}
		delete(w.orphans, s.ID)
	}
	if s.Parent != 0 {
		if parent, ok := w.seen[s.Parent]; ok {
			w.checkOrder(s, parent)
		} else {
			w.orphans[s.Parent] = append(w.orphans[s.Parent], s)
		}
	}
	w.feedQueue(s)
	w.feedSLO(s)
}

// checkOrder verifies a child does not start before its parent (minus
// tolerance) once both sides are known.
func (w *Watchdog) checkOrder(child, parent obs.Span) {
	if child.Start+w.cfg.Tolerance < parent.Start {
		w.report(Incident{
			Kind: IncidentChildBeforeParent, Proc: child.Proc,
			Trace: child.Trace, Span: child.ID, At: child.Start,
			Detail: fmt.Sprintf("%s starts %v before parent %s (after alignment)", child.Name, parent.Start-child.Start, parent.Name),
		})
	}
}

// feedQueue tracks consecutive queue-wait spans whose waits never shrink.
func (w *Watchdog) feedQueue(s obs.Span) {
	if s.Name != obs.SpanBatchQueue && s.Name != obs.SpanPoolWait {
		return
	}
	dur := s.End - s.Start
	if w.queueRun > 0 && dur >= w.queueLast {
		w.queueRun++
	} else {
		w.queueRun = 1
		w.queueStuck = false
	}
	w.queueLast = dur
	w.queueProc = s.Proc
	if !w.queueStuck && w.queueRun >= w.cfg.QueueStuckLen && dur >= w.cfg.QueueStuckMin {
		w.queueStuck = true // report once per run
		w.report(Incident{
			Kind: IncidentQueueStuck, Proc: s.Proc, Trace: s.Trace, At: s.End,
			Detail: fmt.Sprintf("%d consecutive non-decreasing queue waits, latest %v", w.queueRun, dur),
		})
	}
}

// feedSLO maintains the per-window deadline and shed-budget compliance.
func (w *Watchdog) feedSLO(s obs.Span) {
	if w.cfg.SLO <= 0 {
		return
	}
	switch s.Name {
	case obs.SpanBatchShed:
		w.windowShed++
	case obs.SpanClientFrame, obs.SpanFrameRoot:
		// When a client traced the frame both roots exist; count only
		// the outermost to keep the window denominator one-per-frame.
		if s.Name == obs.SpanFrameRoot && s.Parent != 0 {
			return
		}
		w.windowRoots++
		if s.End-s.Start > w.cfg.SLO {
			w.windowMiss++
		}
		if s.End > w.windowEnd {
			w.windowEnd = s.End
		}
		if w.windowRoots >= w.cfg.Window {
			w.flushWindow()
		}
	}
}

func (w *Watchdog) flushWindow() {
	if w.windowRoots == 0 {
		return
	}
	miss := float64(w.windowMiss) / float64(w.windowRoots)
	shed := float64(w.windowShed) / float64(w.windowRoots)
	if miss > w.cfg.MaxMissRate {
		w.report(Incident{
			Kind: IncidentSLOMissRate, At: w.windowEnd,
			Detail: fmt.Sprintf("deadline hit-rate %.0f%% < required %.0f%% (%d/%d misses over window)", (1-miss)*100, (1-w.cfg.MaxMissRate)*100, w.windowMiss, w.windowRoots),
		})
	}
	if shed > w.cfg.MaxShedRate {
		w.report(Incident{
			Kind: IncidentShedBudget, At: w.windowEnd,
			Detail: fmt.Sprintf("shed rate %.0f%% exceeds budget %.0f%% (%d sheds over %d frames)", shed*100, w.cfg.MaxShedRate*100, w.windowShed, w.windowRoots),
		})
	}
	w.windowRoots, w.windowMiss, w.windowShed = 0, 0, 0
}

// Finish flushes end-of-stream state — unresolved parent references,
// traces that never rooted, the open SLO window — and returns every
// incident, ordered by time then kind.
func (w *Watchdog) Finish() []Incident {
	for parentID, children := range w.orphans {
		for _, c := range children {
			w.report(Incident{
				Kind: IncidentParentMissing, Proc: c.Proc,
				Trace: c.Trace, Span: c.ID, At: c.Start,
				Detail: fmt.Sprintf("%s references parent span %d, never observed", c.Name, parentID),
			})
		}
	}
	for trace, last := range w.traceLast {
		if w.rooted[trace] {
			continue
		}
		w.report(Incident{
			Kind: IncidentSpanLeak, Proc: last.Proc, Trace: trace, At: last.End,
			Detail: fmt.Sprintf("trace has %s spans but no root — emitter shut down mid-frame", last.Name),
		})
	}
	w.flushWindow()
	sort.SliceStable(w.incidents, func(i, j int) bool {
		a, b := w.incidents[i], w.incidents[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Trace != b.Trace {
			return a.Trace < b.Trace
		}
		if a.Span != b.Span {
			return a.Span < b.Span
		}
		return a.Detail < b.Detail
	})
	return w.incidents
}

// Incidents returns the incidents reported so far (without the Finish
// flush).
func (w *Watchdog) Incidents() []Incident { return w.incidents }
