package collect

import (
	"testing"

	"croesus/internal/obs"
)

// A SIGKILLed process loses its span tail; the spans on other processes
// that referenced it must prune away, transitively, while intact trees
// survive untouched.
func TestPruneOrphans(t *testing.T) {
	spans := []obs.Span{
		{ID: 1, Name: "client.frame", Proc: "client"},
		{ID: 2, Parent: 1, Name: "frame.root", Proc: "edge"},
		{ID: 3, Parent: 2, Name: "rpc.cloud", Proc: "edge"},
		{ID: 4, Parent: 3, Name: "cloud.request", Proc: "cloud"},
		// The crashed edge's spans (IDs 10, 11) never flushed; the cloud
		// kept its children.
		{ID: 20, Parent: 10, Name: "cloud.request", Proc: "cloud"},
		{ID: 21, Parent: 20, Name: "cloud.detect", Proc: "cloud"},
		// An anonymous child of a missing parent prunes too.
		{Parent: 11, Name: "cloud.detect", Proc: "cloud"},
	}
	kept, pruned := PruneOrphans(spans)
	if pruned != 3 {
		t.Fatalf("pruned %d spans, want 3", pruned)
	}
	if len(kept) != 4 {
		t.Fatalf("kept %d spans, want 4", len(kept))
	}
	for _, s := range kept {
		if s.ID == 20 || s.ID == 21 || (s.ID == 0 && s.Parent == 11) {
			t.Errorf("orphan survived: %+v", s)
		}
	}
	// The intact tree is untouched and in order.
	for i, want := range []uint64{1, 2, 3, 4} {
		if kept[i].ID != want {
			t.Errorf("kept[%d].ID = %d, want %d", i, kept[i].ID, want)
		}
	}

	// No orphans: nothing pruned, order preserved.
	kept2, pruned2 := PruneOrphans(kept)
	if pruned2 != 0 || len(kept2) != len(kept) {
		t.Errorf("clean stream pruned %d spans", pruned2)
	}
}
