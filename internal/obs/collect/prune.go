package collect

import "croesus/internal/obs"

// PruneOrphans drops spans whose parent chain is broken: a span (other
// than a root, Parent == 0) whose parent span is missing from the
// stream, transitively. A fleet crash produces exactly this shape — a
// SIGKILLed process never flushes its span buffer, so its children on
// other processes (a cloud request whose edge-side rpc.cloud span died
// with the edge) reference parents that no longer exist, and every
// causality or critical-path pass downstream would trip over them.
// Returns the surviving spans (input order preserved) and the count
// removed.
func PruneOrphans(spans []obs.Span) ([]obs.Span, int) {
	ids := make(map[uint64]bool, len(spans))
	for _, s := range spans {
		if s.ID != 0 {
			ids[s.ID] = true
		}
	}
	// Iterate to a fixpoint: removing an orphan can orphan its children.
	// Anonymous spans (ID == 0) cannot be referenced, so their removal
	// never cascades and the keep pass below handles them directly.
	removed := map[uint64]bool{}
	for {
		changed := false
		for _, s := range spans {
			if s.ID == 0 || removed[s.ID] || s.Parent == 0 {
				continue
			}
			if !ids[s.Parent] || removed[s.Parent] {
				removed[s.ID] = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	kept := spans[:0:0]
	pruned := 0
	for _, s := range spans {
		orphan := s.Parent != 0 && (!ids[s.Parent] || removed[s.Parent])
		if !orphan && s.ID != 0 && removed[s.ID] {
			orphan = true
		}
		if orphan {
			pruned++
			continue
		}
		kept = append(kept, s)
	}
	return kept, pruned
}
