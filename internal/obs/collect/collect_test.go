package collect

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"croesus/internal/obs"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// twoProcStreams builds an edge stream and a cloud stream whose clocks
// differ by a known offset: the cloud's clock reads `skew` LESS than the
// edge's at the same instant, so alignment must ADD skew to cloud spans.
// Each frame contributes a frame.root, an rpc.cloud envelope on the edge,
// and a symmetric cloud.request child on the cloud clock.
func twoProcStreams(skew time.Duration, frames int) []Stream {
	var edge, cloud []obs.Span
	for i := 0; i < frames; i++ {
		trace := uint64(100 + i)
		base := time.Duration(i) * time.Second
		rootID := uint64(1000 + i)
		rpcID := uint64(2000 + i)
		cloudID := uint64(3000 + i)
		edge = append(edge,
			obs.Span{Name: obs.SpanFrameRoot, Start: base, End: base + ms(400), Trace: trace, ID: rootID},
			obs.Span{Name: obs.SpanEdgeDetect, Start: base + ms(10), End: base + ms(60), Trace: trace, Parent: rootID},
			obs.Span{Name: obs.SpanRPCCloud, Start: base + ms(100), End: base + ms(300), Trace: trace, ID: rpcID, Parent: rootID},
		)
		// The cloud handles the request in edge-time [base+140, base+260]
		// — symmetric inside the RPC envelope — but records it on its own
		// clock, which reads skew less.
		cloud = append(cloud,
			obs.Span{Name: obs.SpanCloudRequest, Start: base + ms(140) - skew, End: base + ms(260) - skew, Trace: trace, ID: cloudID, Parent: rpcID},
			obs.Span{Name: obs.SpanBatchRun, Start: base + ms(160) - skew, End: base + ms(240) - skew, Trace: trace, Parent: cloudID},
		)
	}
	return []Stream{{Proc: "edge", Spans: edge}, {Proc: "cloud", Spans: cloud}}
}

func TestMergeRecoversKnownClockOffset(t *testing.T) {
	const skew = 7 * time.Second
	m, err := Merge(twoProcStreams(skew, 3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The edge stream is larger, so it becomes the reference.
	if m.Reference != "edge" {
		t.Fatalf("reference = %q, want edge", m.Reference)
	}
	if got := m.Offsets["cloud"]; got != skew {
		t.Fatalf("cloud offset = %v, want %v", got, skew)
	}
	if m.Offsets["edge"] != 0 {
		t.Fatalf("reference offset = %v, want 0", m.Offsets["edge"])
	}
	if len(m.Unaligned) != 0 {
		t.Fatalf("unaligned = %v, want none", m.Unaligned)
	}
	if m.Pairs["cloud→edge"] != 3 {
		t.Fatalf("pairs = %v, want 3 cloud→edge samples", m.Pairs)
	}
	// After alignment the cloud.request spans sit back inside their RPC
	// envelopes on the edge timeline.
	for _, s := range m.Spans {
		if s.Name == obs.SpanCloudRequest {
			off := (s.Start - ms(140)) % time.Second
			if off != 0 {
				t.Errorf("cloud.request start %v not shifted onto the edge clock", s.Start)
			}
		}
	}
	// And the watchdog sees a causally clean trace.
	wd := NewWatchdog(WatchdogConfig{Tolerance: m.Tolerance()})
	for _, s := range m.Spans {
		wd.Feed(s)
	}
	for _, in := range wd.Finish() {
		if CausalityKinds[in.Kind] {
			t.Errorf("unexpected causality incident after alignment: %+v", in)
		}
	}
}

func TestMergeExplicitReference(t *testing.T) {
	const skew = 2 * time.Second
	m, err := Merge(twoProcStreams(skew, 2), Options{Reference: "cloud"})
	if err != nil {
		t.Fatal(err)
	}
	if m.Reference != "cloud" {
		t.Fatalf("reference = %q, want cloud", m.Reference)
	}
	// Composing the other direction: edge spans shift DOWN by skew.
	if got := m.Offsets["edge"]; got != -skew {
		t.Fatalf("edge offset = %v, want %v", got, -skew)
	}
	if _, err := Merge(twoProcStreams(skew, 2), Options{Reference: "nosuch"}); err == nil {
		t.Fatal("merge with unknown reference succeeded")
	}
}

func TestMergeDeterministicUnderInputOrder(t *testing.T) {
	render := func(streams []Stream) ([]byte, []byte) {
		m, err := Merge(streams, Options{})
		if err != nil {
			t.Fatal(err)
		}
		wd := NewWatchdog(WatchdogConfig{SLO: ms(350), Window: 2, Tolerance: m.Tolerance()})
		for _, s := range m.Spans {
			wd.Feed(s)
		}
		incidents := wd.Finish()
		var jsonl, chrome bytes.Buffer
		if err := obs.WriteJSONL(&jsonl, m.Spans); err != nil {
			t.Fatal(err)
		}
		if err := m.WriteChrome(&chrome, incidents); err != nil {
			t.Fatal(err)
		}
		return jsonl.Bytes(), chrome.Bytes()
	}

	a := twoProcStreams(3*time.Second, 4)
	j1, c1 := render(a)

	// Same span multiset, streams reversed and spans within each reversed.
	b := twoProcStreams(3*time.Second, 4)
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	for _, st := range b {
		for i, j := 0, len(st.Spans)-1; i < j; i, j = i+1, j-1 {
			st.Spans[i], st.Spans[j] = st.Spans[j], st.Spans[i]
		}
	}
	j2, c2 := render(b)

	if !bytes.Equal(j1, j2) {
		t.Error("merged JSONL differs under input reordering")
	}
	if !bytes.Equal(c1, c2) {
		t.Error("merged Chrome trace differs under input reordering")
	}
}

func TestMergeSingleStreamIsIdentity(t *testing.T) {
	spans := []obs.Span{
		{Name: "a", Start: ms(1), End: ms(2), Trace: 1, ID: 10},
		{Name: "b", Start: ms(2), End: ms(3), Trace: 1, Parent: 10},
	}
	m, err := Merge([]Stream{{Proc: "sim", Spans: spans}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range m.Spans {
		if s.Start != spans[i].Start || s.End != spans[i].End {
			t.Errorf("span %d shifted: %+v", i, s)
		}
	}
	if _, err := Merge(nil, Options{}); err == nil {
		t.Error("merge of zero streams succeeded")
	}
}

func TestReadJSONLRoundTrip(t *testing.T) {
	spans := []obs.Span{
		{Name: "edge.detect", Tags: "edge=e0", Start: ms(5), End: ms(9), Trace: 3, ID: 7, Parent: 2, Proc: "edge"},
		{Name: "frame.root", Start: 0, End: ms(20), Trace: 3, ID: 2},
	}
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, spans); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]obs.Span, len(spans))
	copy(want, spans)
	obs.SortSpans(want)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}

	if _, err := ReadJSONL(bytes.NewReader([]byte("{not json}\n"))); err == nil {
		t.Error("malformed line accepted")
	}
}

func TestReadFileProcFallsBackToName(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "edge.jsonl")
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, []obs.Span{{Name: "a", End: ms(1)}}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Proc != "edge" {
		t.Errorf("proc = %q, want edge (from file name)", st.Proc)
	}
}

func TestWatchdogParentMissing(t *testing.T) {
	wd := NewWatchdog(WatchdogConfig{})
	wd.Feed(obs.Span{Name: "frame.root", Trace: 1, ID: 1, Start: 0, End: ms(10)})
	wd.Feed(obs.Span{Name: "edge.detect", Trace: 1, ID: 2, Parent: 999, Start: ms(1), End: ms(2), Proc: "edge"})
	incidents := wd.Finish()
	if len(incidents) != 1 || incidents[0].Kind != IncidentParentMissing {
		t.Fatalf("incidents = %+v, want one parent_missing", incidents)
	}
	if incidents[0].Span != 2 || incidents[0].Proc != "edge" {
		t.Errorf("incident attribution wrong: %+v", incidents[0])
	}
}

func TestWatchdogChildBeforeParentOrderIndependent(t *testing.T) {
	child := obs.Span{Name: "edge.detect", Trace: 1, ID: 2, Parent: 1, Start: ms(0), End: ms(5)}
	parent := obs.Span{Name: "frame.root", Trace: 1, ID: 1, Start: ms(100), End: ms(200)}

	for name, order := range map[string][]obs.Span{
		"parent-first": {parent, child},
		"child-first":  {child, parent},
	} {
		wd := NewWatchdog(WatchdogConfig{Tolerance: ms(5)})
		for _, s := range order {
			wd.Feed(s)
		}
		incidents := wd.Finish()
		if len(incidents) != 1 || incidents[0].Kind != IncidentChildBeforeParent {
			t.Errorf("%s: incidents = %+v, want one child_before_parent", name, incidents)
		}
	}

	// Within tolerance: no incident.
	wd := NewWatchdog(WatchdogConfig{Tolerance: ms(5)})
	wd.Feed(obs.Span{Name: "frame.root", Trace: 1, ID: 1, Start: ms(3), End: ms(20)})
	wd.Feed(obs.Span{Name: "edge.detect", Trace: 1, ID: 2, Parent: 1, Start: ms(0), End: ms(5)})
	if incidents := wd.Finish(); len(incidents) != 0 {
		t.Errorf("slack violated: %+v", incidents)
	}
}

func TestWatchdogSpanLeak(t *testing.T) {
	wd := NewWatchdog(WatchdogConfig{})
	// An untraced parent plus a traced child whose trace never roots: the
	// emitter shut down before the frame's root span closed.
	wd.Feed(obs.Span{Name: "batch.run", ID: 2, Start: 0, End: ms(10)})
	wd.Feed(obs.Span{Name: "batch.queue", Trace: 5, ID: 3, Parent: 2, Start: ms(1), End: ms(2), Proc: "cloud"})
	incidents := wd.Finish()
	if len(incidents) != 1 || incidents[0].Kind != IncidentSpanLeak {
		t.Fatalf("incidents = %+v, want one span_leak", incidents)
	}
	if incidents[0].Trace != 5 {
		t.Errorf("leak attributed to trace %d, want 5", incidents[0].Trace)
	}
}

func TestWatchdogQueueStuck(t *testing.T) {
	wd := NewWatchdog(WatchdogConfig{QueueStuckLen: 4, QueueStuckMin: ms(10)})
	at := time.Duration(0)
	feedQueue := func(dur time.Duration) {
		wd.Feed(obs.Span{Name: obs.SpanBatchQueue, Start: at, End: at + dur})
		at += dur
	}
	// Growing run of 6 ≥ len 4 — exactly one incident for the whole run.
	for i := 0; i < 6; i++ {
		feedQueue(ms(10 + i))
	}
	// Shrinking wait resets the run; a short second run stays silent.
	feedQueue(ms(1))
	feedQueue(ms(2))
	incidents := wd.Finish()
	if len(incidents) != 1 || incidents[0].Kind != IncidentQueueStuck {
		t.Fatalf("incidents = %+v, want one queue_stuck", incidents)
	}
}

func TestWatchdogSLOWindow(t *testing.T) {
	reg := obs.NewRegistry()
	wd := NewWatchdog(WatchdogConfig{
		SLO: ms(100), Window: 4, MaxMissRate: 0.25, MaxShedRate: 0.25,
		Registry: reg,
	})
	at := time.Duration(0)
	root := func(dur time.Duration) {
		wd.Feed(obs.Span{Name: obs.SpanClientFrame, Trace: uint64(at) + 1, Start: at, End: at + dur})
		at += time.Second
	}
	// Window 1: 2/4 misses (50% > 25%) and 2 sheds (50% > 25%).
	wd.Feed(obs.Span{Name: obs.SpanBatchShed, Start: at, End: at})
	wd.Feed(obs.Span{Name: obs.SpanBatchShed, Start: at, End: at})
	root(ms(50))
	root(ms(200))
	root(ms(300))
	root(ms(50))
	// Window 2 (flushed by Finish): all within deadline, no sheds.
	root(ms(10))
	root(ms(20))
	incidents := wd.Finish()
	kinds := map[string]int{}
	for _, in := range incidents {
		kinds[in.Kind]++
	}
	if kinds[IncidentSLOMissRate] != 1 || kinds[IncidentShedBudget] != 1 || len(incidents) != 2 {
		t.Fatalf("incidents = %+v, want one slo_miss_rate + one shed_budget", incidents)
	}
	if got := reg.Counter(obs.MetricWatchdogIncidents, obs.Tags("kind", IncidentSLOMissRate)).Value(); got != 1 {
		t.Errorf("registry incident counter = %d, want 1", got)
	}
	// A nested frame.root under a client.frame must not double-count the
	// window denominator.
	wd2 := NewWatchdog(WatchdogConfig{SLO: ms(100), Window: 2, MaxMissRate: 0.4})
	wd2.Feed(obs.Span{Name: obs.SpanClientFrame, Trace: 1, ID: 1, Start: 0, End: ms(200)})
	wd2.Feed(obs.Span{Name: obs.SpanFrameRoot, Trace: 1, ID: 2, Parent: 1, Start: ms(1), End: ms(199)})
	wd2.Feed(obs.Span{Name: obs.SpanClientFrame, Trace: 2, ID: 3, Start: time.Second, End: time.Second + ms(10)})
	incidents = wd2.Finish()
	if len(incidents) != 1 || incidents[0].Kind != IncidentSLOMissRate {
		t.Fatalf("incidents = %+v, want one slo_miss_rate over a 2-frame window", incidents)
	}
}

func TestCriticalPathDecomposition(t *testing.T) {
	spans := []obs.Span{
		{Name: obs.SpanFrameRoot, Trace: 1, ID: 1, Start: 0, End: ms(100)},
		{Name: obs.SpanEdgeDetect, Trace: 1, Parent: 1, Start: ms(10), End: ms(30)},
		{Name: obs.SpanRPCCloud, Trace: 1, ID: 2, Parent: 1, Start: ms(30), End: ms(90)},
		{Name: obs.SpanCloudRequest, Trace: 1, ID: 3, Parent: 2, Start: ms(40), End: ms(80)},
		{Name: obs.SpanBatchQueue, Trace: 1, Parent: 3, Start: ms(45), End: ms(55)},
		{Name: obs.SpanBatchRun, Trace: 1, Parent: 3, Start: ms(55), End: ms(75)},
	}
	m, err := Merge([]Stream{{Proc: "sim", Spans: spans}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	paths := m.CriticalPaths()
	if len(paths) != 1 {
		t.Fatalf("got %d breakdowns, want 1", len(paths))
	}
	p := paths[0]
	want := map[string]time.Duration{
		CompCompute: ms(40), // edge.detect 20 + batch.run 20
		CompQueue:   ms(10), // batch.queue
		// rpc.cloud self time (60−40) + cloud.request self time (40−30).
		CompNetwork: ms(30),
		CompOther:   ms(20), // 100 − 80 accounted
	}
	if p.Total != ms(100) || p.Root != obs.SpanFrameRoot {
		t.Errorf("root/total = %q/%v, want frame.root/100ms", p.Root, p.Total)
	}
	if !reflect.DeepEqual(p.Components, want) {
		t.Errorf("components = %v, want %v", p.Components, want)
	}

	sum := Summarize(paths)
	if sum.Traces != 1 || sum.P50 != ms(100) || sum.Max != ms(100) {
		t.Errorf("summary = %+v", sum)
	}
	if FormatSummary(sum) == "" {
		t.Error("empty summary text")
	}

	// A rootless trace is skipped (the watchdog reports it as a leak).
	m2, err := Merge([]Stream{{Proc: "sim", Spans: []obs.Span{
		{Name: obs.SpanEdgeDetect, Trace: 9, Start: 0, End: ms(5)},
	}}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.CriticalPaths(); len(got) != 0 {
		t.Errorf("rootless trace produced a breakdown: %+v", got)
	}
}

func TestWriteChromeMergedShape(t *testing.T) {
	m, err := Merge(twoProcStreams(time.Second, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	inc := []Incident{{Kind: IncidentSpanLeak, Proc: "edge", Trace: 100, At: ms(1), Detail: "x"}}
	if err := m.WriteChrome(&buf, inc); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("merged Chrome trace is not valid JSON: %v", err)
	}
	procNames := map[string]bool{}
	var instants int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			if ev["name"] == "process_name" {
				args := ev["args"].(map[string]any)
				procNames[args["name"].(string)] = true
			}
		case "i":
			instants++
		}
	}
	if !procNames["edge"] || !procNames["cloud"] {
		t.Errorf("process_name metadata missing: %v", procNames)
	}
	if instants != 1 {
		t.Errorf("got %d instant events, want 1 incident marker", instants)
	}
}
