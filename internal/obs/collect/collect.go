// Package collect merges per-process span streams into one causally
// ordered distributed trace. Each Croesus process (client, edge, cloud)
// records spans against its own clock — the simulator's virtual clock
// shares one epoch across the whole fleet, but real processes each start
// their scaled wall clock at their own launch instant, so raw timestamps
// from two processes are not comparable. The collector estimates one
// offset per process from the cross-process RPC pairs the trace already
// contains (an edge's rpc.cloud span encloses the cloud's cloud.request
// span; the client's client.frame span encloses the edge's frame.root),
// using the interval-midpoint method: assuming the outbound and return
// halves of an RPC cost about the same, the midpoints of the two spans
// name the same instant, so their difference is the clock offset. Offsets
// compose over the process graph by BFS from a reference process, and
// every span is shifted into the reference clock before sorting.
//
// The midpoint assumption fails in proportion to network asymmetry, so
// merged causality checks carry a tolerance; and clocks scaled by
// different -timescale factors are not alignable at all (documented in
// the README — run every process at the same scale when tracing).
package collect

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"croesus/internal/obs"
)

// Stream is one process's span stream.
type Stream struct {
	// Proc names the process. Spans carrying their own Proc keep it;
	// unnamed spans inherit the stream's.
	Proc  string
	Spans []obs.Span
}

// ReadJSONL decodes a v1/v2 JSONL span stream (one span per line; blank
// lines ignored).
func ReadJSONL(r io.Reader) ([]obs.Span, error) {
	var spans []obs.Span
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var s obs.Span
		if err := json.Unmarshal([]byte(text), &s); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		spans = append(spans, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return spans, nil
}

// ReadFile reads one process's JSONL span file. The stream's process name
// comes from the spans themselves when they carry one, else from the file
// name ("edge.jsonl" → "edge").
func ReadFile(path string) (Stream, error) {
	f, err := os.Open(path)
	if err != nil {
		return Stream{}, err
	}
	defer f.Close()
	spans, err := ReadJSONL(f)
	if err != nil {
		return Stream{}, fmt.Errorf("%s: %w", path, err)
	}
	st := Stream{Spans: spans}
	for _, s := range spans {
		if s.Proc != "" {
			st.Proc = s.Proc
			break
		}
	}
	if st.Proc == "" {
		st.Proc = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	}
	return st, nil
}

// DefaultTolerance is the causality slack allowed after alignment — the
// residual error budget of the midpoint method on a loopback network.
const DefaultTolerance = 5 * time.Millisecond

// Options configures Merge.
type Options struct {
	// Reference names the process whose clock becomes the merged
	// timeline (offset 0). Default: the stream with the most spans.
	Reference string
	// Tolerance is the causality slack used by Check (default
	// DefaultTolerance).
	Tolerance time.Duration
}

// Merged is the aligned union of the input streams.
type Merged struct {
	// Spans is every input span with timestamps shifted into the
	// reference clock, sorted (obs.SortSpans order).
	Spans []obs.Span
	// Offsets maps each process to the duration ADDED to its timestamps;
	// the reference process maps to 0. Processes with no RPC pair linking
	// them (directly or transitively) to the reference keep offset 0 and
	// are listed in Unaligned.
	Offsets map[string]time.Duration
	// Procs lists every process, sorted.
	Procs []string
	// Reference is the process chosen as the timeline.
	Reference string
	// Unaligned lists processes that could not be linked to the
	// reference (no cross-process span pair).
	Unaligned []string
	// Pairs counts the RPC span pairs used per ordered process pair
	// ("a→b"), for reporting.
	Pairs map[string]int

	tolerance time.Duration
}

// Merge aligns the streams onto one clock. A single stream (or one whose
// spans carry no identity) merges without any shift, so a simulator trace
// round-trips byte-identically.
func Merge(streams []Stream, opt Options) (*Merged, error) {
	if len(streams) == 0 {
		return nil, fmt.Errorf("collect: no streams")
	}
	if opt.Tolerance <= 0 {
		opt.Tolerance = DefaultTolerance
	}

	// Stamp stream proc onto unnamed spans and index the union.
	procSpans := make(map[string][]obs.Span)
	var all []obs.Span
	for _, st := range streams {
		for _, s := range st.Spans {
			if s.Proc == "" {
				s.Proc = st.Proc
			}
			procSpans[s.Proc] = append(procSpans[s.Proc], s)
			all = append(all, s)
		}
	}
	procs := make([]string, 0, len(procSpans))
	for p := range procSpans {
		procs = append(procs, p)
	}
	sort.Strings(procs)

	ref := opt.Reference
	if ref == "" {
		for _, p := range procs {
			if ref == "" || len(procSpans[p]) > len(procSpans[ref]) {
				ref = p
			}
		}
	} else if _, ok := procSpans[ref]; !ok {
		return nil, fmt.Errorf("collect: reference process %q has no spans", ref)
	}

	offsets, unaligned, pairs := alignOffsets(all, procs, ref)

	merged := make([]obs.Span, len(all))
	copy(merged, all)
	for i := range merged {
		if off := offsets[merged[i].Proc]; off != 0 {
			merged[i].Start += off
			merged[i].End += off
		}
	}
	obs.SortSpans(merged)
	return &Merged{
		Spans:     merged,
		Offsets:   offsets,
		Procs:     procs,
		Reference: ref,
		Unaligned: unaligned,
		Pairs:     pairs,
		tolerance: opt.Tolerance,
	}, nil
}

// Tolerance returns the causality slack the merge was configured with.
func (m *Merged) Tolerance() time.Duration { return m.tolerance }

// alignOffsets estimates one clock offset per process. For every
// cross-process parent/child span pair it records a sample
// offset(child→parent) = midpoint(parent) − midpoint(child), takes the
// median per ordered process pair, and composes medians by BFS from the
// reference.
func alignOffsets(all []obs.Span, procs []string, ref string) (map[string]time.Duration, []string, map[string]int) {
	byID := make(map[uint64]obs.Span)
	for _, s := range all {
		if s.ID != 0 {
			byID[s.ID] = s
		}
	}
	type edge struct{ a, b string }
	samples := make(map[edge][]time.Duration)
	for _, child := range all {
		if child.Parent == 0 {
			continue
		}
		parent, ok := byID[child.Parent]
		if !ok || parent.Proc == child.Proc {
			continue
		}
		mp := parent.Start + (parent.End-parent.Start)/2
		mc := child.Start + (child.End-child.Start)/2
		// Offset added to the child proc's clock to land on the parent
		// proc's clock.
		samples[edge{child.Proc, parent.Proc}] = append(samples[edge{child.Proc, parent.Proc}], mp-mc)
	}

	pairs := make(map[string]int, len(samples))
	med := make(map[edge]time.Duration, len(samples))
	for e, ss := range samples {
		sort.Slice(ss, func(i, j int) bool { return ss[i] < ss[j] })
		med[e] = ss[len(ss)/2]
		pairs[e.a+"→"+e.b] = len(ss)
	}

	// BFS from the reference, composing offsets either direction.
	offsets := map[string]time.Duration{ref: 0}
	queue := []string{ref}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for e, off := range med {
			// e.a's clock + off = e.b's clock.
			if e.a == cur {
				if _, ok := offsets[e.b]; !ok {
					offsets[e.b] = offsets[cur] - off
					queue = append(queue, e.b)
				}
			}
			if e.b == cur {
				if _, ok := offsets[e.a]; !ok {
					offsets[e.a] = offsets[cur] + off
					queue = append(queue, e.a)
				}
			}
		}
	}
	var unaligned []string
	for _, p := range procs {
		if _, ok := offsets[p]; !ok {
			offsets[p] = 0
			if p != ref {
				unaligned = append(unaligned, p)
			}
		}
	}
	return offsets, unaligned, pairs
}
