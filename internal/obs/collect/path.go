package collect

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"croesus/internal/obs"
)

// Component names for the latency decomposition.
const (
	CompCompute = "compute"
	CompQueue   = "queue"
	CompLock    = "lock"
	CompTwoPC   = "twopc"
	CompNetwork = "network"
	CompOther   = "other"
)

// Components lists the decomposition buckets in reporting order.
var Components = []string{CompCompute, CompQueue, CompLock, CompTwoPC, CompNetwork, CompOther}

// componentOf buckets a span name; "" means the span is structural (a
// root or an RPC envelope) and is not summed directly.
func componentOf(name string) string {
	switch name {
	case obs.SpanEdgeDetect, obs.SpanNodeDetect, obs.SpanCloudValidate, obs.SpanBatchRun, obs.SpanFrameIngest:
		return CompCompute
	case obs.SpanPoolWait, obs.SpanBatchQueue:
		return CompQueue
	case obs.SpanLockWait, obs.SpanLockAbort:
		return CompLock
	case obs.SpanTwoPC:
		return CompTwoPC
	case obs.SpanNetHop, obs.SpanUplink:
		return CompNetwork
	default:
		return ""
	}
}

// PathBreakdown decomposes one trace's end-to-end latency.
type PathBreakdown struct {
	Trace uint64
	Root  string // root span name (client.frame when a client traced it)
	Total time.Duration
	// Components maps component name → time attributed to it. The
	// network bucket includes the true per-hop segment of each
	// cross-process RPC: the parent rpc.cloud (or client.frame) interval
	// minus the remote child's interval — wire time plus kernel/socket
	// overhead, measured without any modeled link.
	Components map[string]time.Duration
}

// CriticalPaths decomposes every trace in the merged set. Spans are
// attributed by name (componentOf); RPC envelope spans contribute their
// duration minus their remote children as network; the residual under
// the root is "other". Sibling overlap within a component is not
// de-duplicated — the decomposition reports where time was spent, summed
// per bucket, not a strict wall-clock partition.
func (m *Merged) CriticalPaths() []PathBreakdown {
	byTrace := make(map[uint64][]obs.Span)
	for _, s := range m.Spans {
		if s.Trace != 0 {
			byTrace[s.Trace] = append(byTrace[s.Trace], s)
		}
	}
	traces := make([]uint64, 0, len(byTrace))
	for t := range byTrace {
		traces = append(traces, t)
	}
	sort.Slice(traces, func(i, j int) bool { return traces[i] < traces[j] })

	out := make([]PathBreakdown, 0, len(traces))
	for _, t := range traces {
		spans := byTrace[t]
		// Children grouped by parent for RPC-gap computation.
		childDur := make(map[uint64]time.Duration)
		for _, s := range spans {
			if s.Parent != 0 {
				childDur[s.Parent] += s.End - s.Start
			}
		}
		pb := PathBreakdown{Trace: t, Components: make(map[string]time.Duration, len(Components))}
		var root obs.Span
		for _, s := range spans {
			dur := s.End - s.Start
			switch {
			case s.Name == obs.SpanClientFrame:
				root = s
			case s.Name == obs.SpanFrameRoot:
				if root.Name == "" {
					root = s
				}
			case s.Name == obs.SpanRPCCloud || s.Name == obs.SpanCloudRequest:
				// RPC envelopes: self time (minus remote/queued children)
				// is the hop's true network + dispatch segment.
				gap := dur - childDur[s.ID]
				if gap < 0 {
					gap = 0
				}
				pb.Components[CompNetwork] += gap
			default:
				if c := componentOf(s.Name); c != "" {
					pb.Components[c] += dur
				}
			}
		}
		if root.Name == "" {
			continue // no root span — watchdog reports it as a leak
		}
		pb.Root = root.Name
		pb.Total = root.End - root.Start
		var known time.Duration
		for _, v := range pb.Components {
			known += v
		}
		if rest := pb.Total - known; rest > 0 {
			pb.Components[CompOther] = rest
		}
		out = append(out, pb)
	}
	return out
}

// PathSummary aggregates breakdowns: per-component totals plus latency
// percentiles over trace totals.
type PathSummary struct {
	Traces             int
	Components         map[string]time.Duration
	P50, P90, P99, Max time.Duration
}

// Summarize aggregates the per-trace breakdowns.
func Summarize(paths []PathBreakdown) PathSummary {
	sum := PathSummary{Traces: len(paths), Components: make(map[string]time.Duration)}
	if len(paths) == 0 {
		return sum
	}
	totals := make([]time.Duration, 0, len(paths))
	for _, p := range paths {
		totals = append(totals, p.Total)
		for k, v := range p.Components {
			sum.Components[k] += v
		}
	}
	sort.Slice(totals, func(i, j int) bool { return totals[i] < totals[j] })
	pct := func(q float64) time.Duration {
		i := int(q * float64(len(totals)-1))
		return totals[i]
	}
	sum.P50, sum.P90, sum.P99, sum.Max = pct(0.50), pct(0.90), pct(0.99), totals[len(totals)-1]
	return sum
}

// FormatSummary renders the summary for terminal output.
func FormatSummary(s PathSummary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d traces  p50=%v p90=%v p99=%v max=%v\n", s.Traces, s.P50, s.P90, s.P99, s.Max)
	for _, c := range Components {
		if v, ok := s.Components[c]; ok {
			fmt.Fprintf(&b, "  %-8s %v\n", c, v)
		}
	}
	return b.String()
}

// chromeEvent mirrors the trace_event "X"/"i" shapes.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	S    string            `json:"s,omitempty"` // instant scope
	Args map[string]string `json:"args,omitempty"`
}

type chromeMeta struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// WriteChrome writes the merged trace in Chrome trace_event format with
// one pid per process (named via process_name metadata) and one tid per
// tag set within it. Incidents become global instant events. Output is
// deterministic for a fixed merged span multiset.
func (m *Merged) WriteChrome(w io.Writer, incidents []Incident) error {
	pid := make(map[string]int, len(m.Procs))
	for i, p := range m.Procs {
		pid[p] = i + 1
	}
	// tid per (proc, tags), deterministic order.
	type track struct{ proc, tags string }
	seen := make(map[track]bool)
	var tracks []track
	for _, s := range m.Spans {
		tr := track{s.Proc, s.Tags}
		if !seen[tr] {
			seen[tr] = true
			tracks = append(tracks, tr)
		}
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i].proc != tracks[j].proc {
			return tracks[i].proc < tracks[j].proc
		}
		return tracks[i].tags < tracks[j].tags
	})
	tid := make(map[track]int, len(tracks))
	next := make(map[string]int, len(m.Procs))
	events := make([]any, 0, len(m.Spans)+len(tracks)+len(m.Procs)+len(incidents))
	for _, p := range m.Procs {
		name := p
		if name == "" {
			name = "sim"
		}
		events = append(events, chromeMeta{
			Name: "process_name", Ph: "M", PID: pid[p], TID: 0,
			Args: map[string]any{"name": name},
		})
	}
	for _, tr := range tracks {
		next[tr.proc]++
		tid[tr] = next[tr.proc]
		name := tr.tags
		if name == "" {
			name = "fleet"
		}
		events = append(events, chromeMeta{
			Name: "thread_name", Ph: "M", PID: pid[tr.proc], TID: tid[tr],
			Args: map[string]any{"name": name},
		})
	}
	for _, s := range m.Spans {
		ev := chromeEvent{
			Name: s.Name, Ph: "X",
			TS:  float64(s.Start) / 1e3,
			Dur: float64(s.End-s.Start) / 1e3,
			PID: pid[s.Proc], TID: tid[track{s.Proc, s.Tags}],
		}
		args := make(map[string]string)
		if s.Tags != "" {
			for _, pair := range strings.Split(s.Tags, ",") {
				k, v, _ := strings.Cut(pair, "=")
				args[k] = v
			}
		}
		if s.Trace != 0 {
			args["trace"] = obs.U64(s.Trace)
		}
		if len(args) > 0 {
			ev.Args = args
		}
		events = append(events, ev)
	}
	for _, in := range incidents {
		ev := chromeEvent{
			Name: "incident:" + in.Kind, Ph: "i",
			TS: float64(in.At) / 1e3, PID: pid[in.Proc], S: "g",
			Args: map[string]string{"detail": in.Detail},
		}
		if in.Trace != 0 {
			ev.Args["trace"] = obs.U64(in.Trace)
		}
		events = append(events, ev)
	}
	b, err := json.Marshal(map[string]any{"traceEvents": events})
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}
