package obs

import (
	"expvar"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The nil counter is a
// no-op, so call sites resolved through a disabled registry cost one
// branch.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (negative deltas are ignored).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a set-or-adjust metric (queue depths, in-flight work).
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value reports the current gauge reading.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultLatencyBuckets are the fixed histogram bounds, in seconds,
// used for every latency histogram in the fleet: 1ms to 10s in a
// 1-2.5-5 ladder, wide enough for both the simulator's modeled
// latencies and the scaled TCP deployment.
var DefaultLatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram. Bounds are upper bucket
// edges in seconds; an observation lands in the first bucket whose bound
// is ≥ the value (Prometheus "le" semantics), or the implicit +Inf
// bucket. Counts and the nanosecond sum are atomics, so Observe is safe
// from any goroutine and never blocks.
type Histogram struct {
	bounds []float64 // upper edges, seconds, strictly increasing
	counts []atomic.Int64
	inf    atomic.Int64
	sumNS  atomic.Int64
	n      atomic.Int64
}

// NewHistogram returns a histogram with the given upper bounds in
// seconds (nil means DefaultLatencyBuckets). Bounds must be strictly
// increasing.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	h := &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds))}
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	sec := d.Seconds()
	for i, b := range h.bounds {
		if sec <= b {
			h.counts[i].Add(1)
			h.sumNS.Add(int64(d))
			h.n.Add(1)
			return
		}
	}
	h.inf.Add(1)
	h.sumNS.Add(int64(d))
	h.n.Add(1)
}

// Count reports the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum reports the sum of all observations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sumNS.Load())
}

// Buckets returns the cumulative bucket counts in "le" order, one per
// bound plus the final +Inf bucket.
func (h *Histogram) Buckets() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.bounds)+1)
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	out[len(h.bounds)] = cum + h.inf.Load()
	return out
}

// Merge folds other's observations into h. Bucket layouts must match;
// mismatched layouts are reported as an error so callers cannot silently
// corrupt a histogram.
func (h *Histogram) Merge(other *Histogram) error {
	if h == nil || other == nil {
		return nil
	}
	if len(h.bounds) != len(other.bounds) {
		return fmt.Errorf("obs: merge of mismatched histograms (%d vs %d buckets)", len(h.bounds), len(other.bounds))
	}
	for i := range h.bounds {
		if h.bounds[i] != other.bounds[i] {
			return fmt.Errorf("obs: merge of mismatched histograms (bound %d: %v vs %v)", i, h.bounds[i], other.bounds[i])
		}
	}
	for i := range other.counts {
		h.counts[i].Add(other.counts[i].Load())
	}
	h.inf.Add(other.inf.Load())
	h.sumNS.Add(other.sumNS.Load())
	h.n.Add(other.n.Load())
	return nil
}

// Registry holds the fleet's metrics, keyed by name plus canonical tag
// string. Resolution (Counter/Gauge/Histogram) takes a mutex and is meant
// for setup paths; the returned handles are lock-free and should be kept
// by hot paths. Collectors registered with RegisterCollector run at
// scrape time to pull values from subsystems that keep their own
// counters (transport stats, fault counters).
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	collectors []func(*Registry)
	maxSeries  int
	series     map[string]int // distinct tag combinations per metric name
	dropped    *Counter       // MetricDroppedSeries, exempt from the cap
}

// DefaultMaxSeries is the per-metric cardinality cap: at most this many
// distinct tag combinations are materialized per metric name. A
// 1024-camera fleet tags latency histograms {edge, camera, protocol}, so
// the cap has to clear a few thousand legitimate series while still
// stopping an unbounded tag (frame index, trace ID) from eating the heap.
const DefaultMaxSeries = 4096

// NewRegistry returns an empty registry with the default cardinality cap.
func NewRegistry() *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		hists:     make(map[string]*Histogram),
		maxSeries: DefaultMaxSeries,
		series:    make(map[string]int),
	}
}

// SetMaxSeries adjusts the per-metric cardinality cap (n ≤ 0 restores the
// default). Existing series are never evicted; the cap only stops new
// ones.
func (r *Registry) SetMaxSeries(n int) {
	if r == nil {
		return
	}
	if n <= 0 {
		n = DefaultMaxSeries
	}
	r.mu.Lock()
	r.maxSeries = n
	r.mu.Unlock()
}

// DroppedSeries reports how many series resolutions the cardinality cap
// refused.
func (r *Registry) DroppedSeries() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped.Value()
}

// admit enforces the cardinality cap for a new series of metric name.
// Callers hold r.mu. When the metric is at its cap the drop is counted in
// MetricDroppedSeries and admit reports false — the caller returns a nil
// handle, whose methods are no-ops, instead of growing unbounded.
func (r *Registry) admit(name string) bool {
	if name == MetricDroppedSeries {
		return true
	}
	if r.series[name] >= r.maxSeries {
		if r.dropped == nil {
			r.dropped = &Counter{}
			r.counters[MetricDroppedSeries] = r.dropped
		}
		r.dropped.Add(1)
		return false
	}
	r.series[name]++
	return true
}

func key(name, tags string) string {
	if tags == "" {
		return name
	}
	return name + "{" + tags + "}"
}

// Counter returns (creating if needed) the counter for name+tags.
// Nil-safe: a nil registry returns a nil, no-op counter.
func (r *Registry) Counter(name, tags string) *Counter {
	if r == nil {
		return nil
	}
	k := key(name, tags)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[k]
	if !ok {
		if !r.admit(name) {
			return nil
		}
		c = &Counter{}
		r.counters[k] = c
		if name == MetricDroppedSeries && tags == "" {
			r.dropped = c
		}
	}
	return c
}

// Gauge returns (creating if needed) the gauge for name+tags. Nil-safe.
func (r *Registry) Gauge(name, tags string) *Gauge {
	if r == nil {
		return nil
	}
	k := key(name, tags)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[k]
	if !ok {
		if !r.admit(name) {
			return nil
		}
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns (creating if needed) the default-bucket latency
// histogram for name+tags. Nil-safe.
func (r *Registry) Histogram(name, tags string) *Histogram {
	if r == nil {
		return nil
	}
	k := key(name, tags)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[k]
	if !ok {
		if !r.admit(name) {
			return nil
		}
		h = NewHistogram(nil)
		r.hists[k] = h
	}
	return h
}

// RegisterCollector adds a pull hook invoked (in registration order) at
// the start of every scrape, letting subsystems that keep their own
// counters publish current values without per-operation mirroring.
func (r *Registry) RegisterCollector(fn func(*Registry)) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

func (r *Registry) runCollectors() {
	r.mu.Lock()
	fns := make([]func(*Registry), len(r.collectors))
	copy(fns, r.collectors)
	r.mu.Unlock()
	for _, fn := range fns {
		fn(r)
	}
}

// promLabels renders the canonical tag string as a Prometheus label set,
// optionally appending an le label (histogram buckets).
func promLabels(tags, le string) string {
	if tags == "" && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	if tags != "" {
		for _, pair := range strings.Split(tags, ",") {
			k, v, _ := strings.Cut(pair, "=")
			if !first {
				b.WriteByte(',')
			}
			first = false
			b.WriteString(k)
			b.WriteString(`="`)
			b.WriteString(v)
			b.WriteString(`"`)
		}
	}
	if le != "" {
		if !first {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func splitKey(k string) (name, tags string) {
	if i := strings.IndexByte(k, '{'); i >= 0 {
		return k[:i], strings.TrimSuffix(k[i+1:], "}")
	}
	return k, ""
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// PrometheusText runs the registered collectors and renders the whole
// registry in the Prometheus text exposition format. Output is sorted by
// metric name and label set, so two scrapes of identical state are
// byte-identical.
func (r *Registry) PrometheusText() string {
	if r == nil {
		return ""
	}
	r.runCollectors()

	type family struct {
		typ   string
		lines []string
	}
	fams := make(map[string]*family)
	fam := func(name, typ string) *family {
		f, ok := fams[name]
		if !ok {
			f = &family{typ: typ}
			fams[name] = f
		}
		return f
	}

	r.mu.Lock()
	for k, c := range r.counters {
		name, tags := splitKey(k)
		f := fam(name, "counter")
		f.lines = append(f.lines, name+promLabels(tags, "")+" "+strconv.FormatInt(c.Value(), 10))
	}
	for k, g := range r.gauges {
		name, tags := splitKey(k)
		f := fam(name, "gauge")
		f.lines = append(f.lines, name+promLabels(tags, "")+" "+strconv.FormatInt(g.Value(), 10))
	}
	for k, h := range r.hists {
		name, tags := splitKey(k)
		f := fam(name, "histogram")
		cum := h.Buckets()
		for i, b := range h.bounds {
			f.lines = append(f.lines, name+"_bucket"+promLabels(tags, formatFloat(b))+" "+strconv.FormatInt(cum[i], 10))
		}
		f.lines = append(f.lines, name+"_bucket"+promLabels(tags, "+Inf")+" "+strconv.FormatInt(cum[len(cum)-1], 10))
		f.lines = append(f.lines, name+"_sum"+promLabels(tags, "")+" "+formatFloat(h.Sum().Seconds()))
		f.lines = append(f.lines, name+"_count"+promLabels(tags, "")+" "+strconv.FormatInt(h.Count(), 10))
	}
	r.mu.Unlock()

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		f := fams[name]
		b.WriteString("# TYPE " + name + " " + f.typ + "\n")
		sort.Strings(f.lines)
		for _, l := range f.lines {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Snapshot returns a flat map of every counter and gauge value plus
// histogram counts, keyed by name{tags}. Used by the expvar publication.
func (r *Registry) Snapshot() map[string]int64 {
	if r == nil {
		return nil
	}
	r.runCollectors()
	out := make(map[string]int64)
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, c := range r.counters {
		out[k] = c.Value()
	}
	for k, g := range r.gauges {
		out[k] = g.Value()
	}
	for k, h := range r.hists {
		out[k+"_count"] = h.Count()
		out[k+"_sum_ns"] = int64(h.Sum())
	}
	return out
}

var expvarOnce sync.Once

// PublishExpvar exposes the registry under the "croesus" expvar key.
// Safe to call more than once and from multiple registries — the last
// registry published wins, and the expvar name is only registered once
// (expvar panics on duplicate Publish).
func PublishExpvar(r *Registry) {
	current.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("croesus", expvar.Func(func() any {
			reg, _ := current.Load().(*Registry)
			return reg.Snapshot()
		}))
	})
}

var current atomic.Value // *Registry
