package txn

import (
	"fmt"

	"croesus/internal/lock"
	"croesus/internal/obs"
)

// CC is a multi-stage concurrency-control protocol. The pipeline wraps the
// initial section in RunInitial (triggered by edge labels) and the final
// section in RunFinal (triggered by corrected cloud labels) — the CC.initial
// and CC.final blocks of §3.3.
type CC interface {
	Name() string
	// RunInitial executes the initial section under the protocol's rules.
	// It returns ErrAborted when locks could not be acquired (no-wait
	// policy) or the error returned by the section body; on nil the
	// instance has initially committed.
	RunInitial(in *Instance) error
	// RunFinal executes the final section. The instance must have
	// initially committed; on nil it has finally committed.
	RunFinal(in *Instance) error
}

// The methods below are the seam for CC implementations living outside this
// package (twopc.ShardedCC drives fleet-sharded transactions through them):
// they expose exactly the section-execution and lifecycle transitions the
// in-package protocols use, so an external protocol keeps undo logging,
// dependency tracking, stats, and the commit history consistent with MSSR
// and MSIA.

// ExecSection runs the stage's body with a fresh section context. It
// performs no locking and no state transition — the caller is the protocol.
func (m *Manager) ExecSection(in *Instance, stage Stage) error {
	ctx := &Ctx{inst: in, stage: stage}
	if stage == StageInitial {
		return in.T.Initial(ctx)
	}
	return in.T.Final(ctx)
}

// MarkInitialCommitted moves a pending instance to initial-committed and
// records the commit.
func (m *Manager) MarkInitialCommitted(in *Instance) {
	in.setState(StateInitialCommitted)
	m.recordCommit(in, StageInitial)
}

// MarkAborted moves the instance to aborted and records the abort.
func (m *Manager) MarkAborted(in *Instance) {
	in.setState(StateAborted)
	m.recordAbort()
}

// MarkFinalCommitted moves an initially-committed instance to
// final-committed (retraction is sticky) and records the commit. It reports
// whether the instance ended retracted.
func (m *Manager) MarkFinalCommitted(in *Instance) (retracted bool) {
	retracted = in.finishFinal()
	m.recordCommit(in, StageFinal)
	return retracted
}

// Policy selects how MS-SR acquires initial-section locks.
type Policy int

// Lock acquisition policies.
const (
	// Wait blocks until locks are granted, under the wait-die discipline:
	// because MS-SR holds locks from the initial commit to the final
	// commit (across the cloud round trip), plain blocking acquisition
	// could deadlock with concurrently arriving transactions; wait-die
	// lets older transactions wait and aborts younger ones instead. The
	// union of both sections' locks is acquired up front — permissible
	// because Algorithm 1 requires every final-section lock before the
	// initial commit anyway, so the initial commit point is unchanged.
	Wait Policy = iota
	// NoWait aborts the section when any lock is unavailable — the abort
	// behaviour measured in Figure 6(b). Acquisition follows Algorithm 1
	// literally: initial locks, execute, then final locks.
	NoWait
)

// MSSR implements multi-stage serializability with Two Stage 2PL
// (Algorithm 1): the initial section acquires its own locks, executes, then
// acquires the final section's locks before the initial commit; every lock
// is held until the final commit. This guarantees:
//
//	(a) for conflicting tk, tj with si_k <h si_j: si_k <h sf_k <h sf_j, and
//	(b) if sf_k conflicts with si_j, then sf_k <h si_j,
//
// at the cost of holding locks across the edge→cloud round trip.
type MSSR struct {
	M      *Manager
	Policy Policy
}

// Name returns the protocol name.
func (p *MSSR) Name() string { return "MS-SR/TSPL" }

// RunInitial performs the first half of Algorithm 1 and leaves every lock
// held for RunFinal.
func (p *MSSR) RunInitial(in *Instance) error {
	if s := in.State(); s != StatePending {
		return fmt.Errorf("txn %d: RunInitial in state %s", in.ID, s)
	}
	owner := lock.Owner(in.ID)
	// Keys needed by both sections are taken at the stronger mode from
	// the start, so the final-lock step never needs an in-place upgrade.
	initReqs := strengthen(in.T.InitialRW.Requests(), in.T.FinalRW.Requests())
	extraReqs := newKeys(initReqs, in.T.FinalRW.Requests())
	allReqs := lock.Normalize(append(append([]lock.Request{}, initReqs...), extraReqs...))

	tAcq := p.M.now()
	if p.Policy == Wait {
		if !p.M.Locks.AcquireAllWaitDie(owner, allReqs) {
			now := p.M.now()
			in.AddLockWait(now - tAcq)
			p.M.Tracer.Emit(obs.SpanLockAbort, p.M.TraceTags, tAcq, now)
			in.setState(StateAborted)
			p.M.recordAbort()
			return ErrAborted
		}
	} else {
		if !p.M.Locks.TryAcquireAll(owner, initReqs) {
			in.AddLockWait(p.M.now() - tAcq)
			in.setState(StateAborted)
			p.M.recordAbort()
			return ErrAborted
		}
	}
	in.AddLockWait(p.M.now() - tAcq)

	ctx := &Ctx{inst: in, stage: StageInitial}
	if err := in.T.Initial(ctx); err != nil {
		if p.Policy == Wait {
			p.M.Locks.ReleaseAll(owner, allReqs)
		} else {
			p.M.Locks.ReleaseAll(owner, initReqs)
		}
		in.setState(StateAborted)
		p.M.recordAbort()
		return err
	}

	if p.Policy == NoWait {
		// Algorithm 1: the final section's locks must be acquired before
		// the initial commit, guaranteeing the final section will commit.
		tExtra := p.M.now()
		if !p.M.Locks.TryAcquireAll(owner, extraReqs) {
			in.AddLockWait(p.M.now() - tExtra)
			p.M.Locks.ReleaseAll(owner, initReqs)
			in.setState(StateAborted)
			p.M.recordAbort()
			return ErrAborted
		}
		in.AddLockWait(p.M.now() - tExtra)
	}

	in.mu.Lock()
	in.heldReqs = allReqs
	in.mu.Unlock()
	in.setState(StateInitialCommitted)
	p.M.recordCommit(in, StageInitial)
	return nil
}

// RunFinal executes the final section, final-commits, and releases every
// lock held since the initial section.
func (p *MSSR) RunFinal(in *Instance) error {
	releaseHeld := func() {
		in.mu.Lock()
		held := in.heldReqs
		in.heldReqs = nil
		in.mu.Unlock()
		p.M.Locks.ReleaseAll(lock.Owner(in.ID), held)
	}
	switch s := in.State(); s {
	case StateInitialCommitted:
	case StateRetracted:
		releaseHeld() // a cascade got here first; don't leak the 2PL locks
		return ErrRetracted
	default:
		return fmt.Errorf("txn %d: RunFinal in state %s", in.ID, s)
	}
	ctx := &Ctx{inst: in, stage: StageFinal}
	err := in.T.Final(ctx)
	// The multi-stage contract: an initially-committed transaction must
	// finally commit. A section error here is the programmer's apology
	// logic failing, not a concurrency abort; state still advances
	// (unless the section retracted the transaction, which is terminal).
	retracted := in.finishFinal()
	p.M.recordCommit(in, StageFinal)
	releaseHeld()
	if err == nil && retracted {
		return ErrRetracted
	}
	return err
}

// strengthen returns init with each request upgraded to Exclusive when the
// final section writes the same key.
func strengthen(init, final []lock.Request) []lock.Request {
	finalMode := make(map[string]lock.Mode, len(final))
	for _, r := range final {
		finalMode[r.Key] = r.Mode
	}
	out := make([]lock.Request, len(init))
	for i, r := range init {
		if m, ok := finalMode[r.Key]; ok && m == lock.Exclusive {
			r.Mode = lock.Exclusive
		}
		out[i] = r
	}
	return lock.Normalize(out)
}

// newKeys returns the requests in want whose keys are absent from held.
func newKeys(held, want []lock.Request) []lock.Request {
	heldKeys := make(map[string]bool, len(held))
	for _, r := range held {
		heldKeys[r.Key] = true
	}
	var out []lock.Request
	for _, r := range want {
		if !heldKeys[r.Key] {
			out = append(out, r)
		}
	}
	return lock.Normalize(out)
}

// MSIA implements multi-stage invariant confluence with apologies
// (Algorithm 2): each section acquires only its own locks and releases them
// at its own commit, so the initial commit never waits on the cloud and
// lock hold times stay in the order of the section execution itself —
// the contrast measured in Figure 6(a).
type MSIA struct {
	M *Manager
}

// Name returns the protocol name.
func (p *MSIA) Name() string { return "MS-IA" }

// RunInitial locks the initial set, executes, initial-commits, releases.
func (p *MSIA) RunInitial(in *Instance) error {
	if s := in.State(); s != StatePending {
		return fmt.Errorf("txn %d: RunInitial in state %s", in.ID, s)
	}
	owner := lock.Owner(in.ID)
	reqs := in.T.InitialRW.Requests()
	tAcq := p.M.now()
	p.M.Locks.AcquireAll(owner, reqs)
	in.AddLockWait(p.M.now() - tAcq)
	ctx := &Ctx{inst: in, stage: StageInitial}
	err := in.T.Initial(ctx)
	if err != nil {
		p.M.Locks.ReleaseAll(owner, reqs)
		in.setState(StateAborted)
		p.M.recordAbort()
		return err
	}
	in.setState(StateInitialCommitted)
	p.M.recordCommit(in, StageInitial)
	p.M.Locks.ReleaseAll(owner, reqs)
	return nil
}

// RunFinal locks the final set, executes the apology/merge logic,
// final-commits, releases. Blocking acquisition means the final section
// always commits, preserving the multi-stage guarantee.
func (p *MSIA) RunFinal(in *Instance) error {
	switch s := in.State(); s {
	case StateInitialCommitted:
	case StateRetracted:
		return ErrRetracted
	default:
		return fmt.Errorf("txn %d: RunFinal in state %s", in.ID, s)
	}
	owner := lock.Owner(in.ID)
	reqs := in.T.FinalRW.Requests()
	tAcq := p.M.now()
	p.M.Locks.AcquireAll(owner, reqs)
	in.AddLockWait(p.M.now() - tAcq)
	ctx := &Ctx{inst: in, stage: StageFinal}
	err := in.T.Final(ctx)
	retracted := in.finishFinal()
	p.M.recordCommit(in, StageFinal)
	p.M.Locks.ReleaseAll(owner, reqs)
	if err == nil && retracted {
		return ErrRetracted
	}
	return err
}
