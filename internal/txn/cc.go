package txn

import (
	"croesus/internal/lock"
)

// CC is a multi-stage concurrency-control protocol. The pipeline wraps the
// initial section in RunInitial (triggered by edge labels) and the final
// section in RunFinal (triggered by corrected cloud labels) — the CC.initial
// and CC.final blocks of §3.3. The graph executor instead drives every
// boundary through RunSection; RunInitial and RunFinal are exactly
// RunSection(in, 0) and RunSection(in, last).
type CC interface {
	Name() string
	// RunInitial executes the initial section under the protocol's rules.
	// It returns ErrAborted when locks could not be acquired (no-wait
	// policy) or the error returned by the section body; on nil the
	// instance has initially committed.
	RunInitial(in *Instance) error
	// RunFinal executes the final section. The instance must have
	// initially committed; on nil it has finally committed.
	RunFinal(in *Instance) error
	// RunSection executes section k of an N-section transaction. Section 0
	// follows RunInitial's rules; the last section follows RunFinal's;
	// middle sections commit a boundary each under the protocol's locking
	// discipline (MS-SR: under the locks held since section 0; MS-IA: with
	// their own locks, commit, release).
	RunSection(in *Instance, k int) error
}

// The methods below are the seam for CC implementations living outside this
// package (twopc.ShardedCC drives fleet-sharded transactions through them):
// they expose exactly the section-execution and lifecycle transitions the
// in-package protocols use, so an external protocol keeps undo logging,
// dependency tracking, stats, and the commit history consistent with MSSR
// and MSIA.

// ExecSection runs the stage's body with a fresh section context. It
// performs no locking and no state transition — the caller is the protocol.
func (m *Manager) ExecSection(in *Instance, stage Stage) error {
	return in.T.SectionAt(int(stage)).Body(in.sectionCtx(stage))
}

// MarkInitialCommitted moves a pending instance to initial-committed and
// records the commit — the first-boundary hook (MarkSectionCommitted(0)).
func (m *Manager) MarkInitialCommitted(in *Instance) {
	m.MarkSectionCommitted(in, 0)
}

// MarkAborted moves the instance to aborted and records the abort.
func (m *Manager) MarkAborted(in *Instance) {
	in.setState(StateAborted)
	m.recordAbort()
}

// MarkFinalCommitted moves an initially-committed instance to
// final-committed (retraction is sticky) and records the commit — the
// last-boundary hook. It reports whether the instance ended retracted.
func (m *Manager) MarkFinalCommitted(in *Instance) (retracted bool) {
	return m.MarkSectionCommitted(in, in.T.LastSection())
}

// Policy selects how MS-SR acquires initial-section locks.
type Policy int

// Lock acquisition policies.
const (
	// Wait blocks until locks are granted, under the wait-die discipline:
	// because MS-SR holds locks from the initial commit to the final
	// commit (across the cloud round trip), plain blocking acquisition
	// could deadlock with concurrently arriving transactions; wait-die
	// lets older transactions wait and aborts younger ones instead. The
	// union of both sections' locks is acquired up front — permissible
	// because Algorithm 1 requires every final-section lock before the
	// initial commit anyway, so the initial commit point is unchanged.
	Wait Policy = iota
	// NoWait aborts the section when any lock is unavailable — the abort
	// behaviour measured in Figure 6(b). Acquisition follows Algorithm 1
	// literally: initial locks, execute, then final locks.
	NoWait
)

// MSSR implements multi-stage serializability with Two Stage 2PL
// (Algorithm 1): the initial section acquires its own locks, executes, then
// acquires the final section's locks before the initial commit; every lock
// is held until the final commit. This guarantees:
//
//	(a) for conflicting tk, tj with si_k <h si_j: si_k <h sf_k <h sf_j, and
//	(b) if sf_k conflicts with si_j, then sf_k <h si_j,
//
// at the cost of holding locks across the edge→cloud round trip.
type MSSR struct {
	M      *Manager
	Policy Policy
}

// Name returns the protocol name.
func (p *MSSR) Name() string { return "MS-SR/TSPL" }

// RunInitial performs the first half of Algorithm 1 and leaves every lock
// held for RunFinal.
func (p *MSSR) RunInitial(in *Instance) error { return p.RunSection(in, 0) }

// RunFinal executes the final section, final-commits, and releases every
// lock held since the initial section.
func (p *MSSR) RunFinal(in *Instance) error { return p.RunSection(in, in.T.LastSection()) }

// strengthen returns init with each request upgraded to Exclusive when the
// final section writes the same key.
func strengthen(init, final []lock.Request) []lock.Request {
	finalMode := make(map[string]lock.Mode, len(final))
	for _, r := range final {
		finalMode[r.Key] = r.Mode
	}
	out := make([]lock.Request, len(init))
	for i, r := range init {
		if m, ok := finalMode[r.Key]; ok && m == lock.Exclusive {
			r.Mode = lock.Exclusive
		}
		out[i] = r
	}
	return lock.Normalize(out)
}

// newKeys returns the requests in want whose keys are absent from held.
func newKeys(held, want []lock.Request) []lock.Request {
	heldKeys := make(map[string]bool, len(held))
	for _, r := range held {
		heldKeys[r.Key] = true
	}
	var out []lock.Request
	for _, r := range want {
		if !heldKeys[r.Key] {
			out = append(out, r)
		}
	}
	return lock.Normalize(out)
}

// MSIA implements multi-stage invariant confluence with apologies
// (Algorithm 2): each section acquires only its own locks and releases them
// at its own commit, so the initial commit never waits on the cloud and
// lock hold times stay in the order of the section execution itself —
// the contrast measured in Figure 6(a).
type MSIA struct {
	M *Manager
}

// Name returns the protocol name.
func (p *MSIA) Name() string { return "MS-IA" }

// RunInitial locks the initial set, executes, initial-commits, releases.
func (p *MSIA) RunInitial(in *Instance) error { return p.RunSection(in, 0) }

// RunFinal locks the final set, executes the apology/merge logic,
// final-commits, releases. Blocking acquisition means the final section
// always commits, preserving the multi-stage guarantee.
func (p *MSIA) RunFinal(in *Instance) error { return p.RunSection(in, in.T.LastSection()) }
