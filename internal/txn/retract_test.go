package txn

import (
	"errors"
	"strings"
	"testing"

	"croesus/internal/lock"
	"croesus/internal/store"
	"croesus/internal/vclock"
)

// transferTxn moves tokens between players in the initial section; the
// final section receives the corrected recipient and fixes errors — the AR
// game of §4.4.
func transferTxn(from, to string, amount int64, correctTo *string) *Txn {
	keys := []string{"tok:A", "tok:B", "tok:C", "tok:D"}
	return &Txn{
		Name:      "transfer-" + from + "-" + to,
		InitialRW: RWSet{Writes: keys},
		FinalRW:   RWSet{Writes: keys},
		Initial: func(c *Ctx) error {
			fv, _ := c.Get("tok:" + from)
			tv, _ := c.Get("tok:" + to)
			c.Put("tok:"+from, store.Int64Value(store.AsInt64(fv)-amount))
			c.Put("tok:"+to, store.Int64Value(store.AsInt64(tv)+amount))
			return nil
		},
		Final: func(c *Ctx) error {
			if correctTo == nil || *correctTo == to {
				return nil // guess was right
			}
			// Erroneous recipient: retract this transfer and its
			// dependents, then replay toward the right player.
			c.Retract("recipient was " + to + ", should be " + *correctTo)
			fv, _ := c.Get("tok:" + from)
			tv, _ := c.Get("tok:" + *correctTo)
			c.Put("tok:"+from, store.Int64Value(store.AsInt64(fv)-amount))
			c.Put("tok:"+*correctTo, store.Int64Value(store.AsInt64(tv)+amount))
			return nil
		},
	}
}

func seedTokens(m *Manager) {
	m.Store.Put("tok:A", store.Int64Value(50))
	m.Store.Put("tok:B", store.Int64Value(10))
	m.Store.Put("tok:C", store.Int64Value(0))
	m.Store.Put("tok:D", store.Int64Value(0))
}

func balance(m *Manager, p string) int64 {
	v, _ := m.Store.Get("tok:" + p)
	return store.AsInt64(v)
}

// TestRetractionCascade replays the paper's token scenario: t1 transfers
// A→B (50), then t2 B→C (10) and t3 B→C (50) depend on it. t1's final
// section learns the true recipient was D: retracting t1 must also retract
// t2 and t3, then replay A→D.
func TestRetractionCascade(t *testing.T) {
	s := vclock.NewSim()
	m := newTestManager(s)
	cc := &MSIA{M: m}
	seedTokens(m)

	correctD := "D"
	t1 := m.NewInstance(transferTxn("A", "B", 50, &correctD), nil)
	t2 := m.NewInstance(transferTxn("B", "C", 10, nil), nil)
	t3 := m.NewInstance(transferTxn("B", "C", 50, nil), nil)

	s.Run(func() {
		mustRun(t, cc, t1, t2, t3) // initial sections in order
		// Finals of t2 and t3 commit first (their inputs were correct).
		if err := cc.RunFinal(t2); err != nil {
			t.Fatalf("t2 final: %v", err)
		}
		if err := cc.RunFinal(t3); err != nil {
			t.Fatalf("t3 final: %v", err)
		}
		// t1's final discovers the error and retracts; ErrRetracted is the
		// expected terminal outcome.
		if err := cc.RunFinal(t1); err != nil && !errors.Is(err, ErrRetracted) {
			t.Fatalf("t1 final: %v", err)
		}
	})

	if got := balance(m, "A"); got != 0 {
		t.Errorf("A = %d, want 0", got)
	}
	if got := balance(m, "B"); got != 10 {
		t.Errorf("B = %d, want 10 (original balance restored)", got)
	}
	if got := balance(m, "C"); got != 0 {
		t.Errorf("C = %d, want 0 (dependent transfers retracted)", got)
	}
	if got := balance(m, "D"); got != 50 {
		t.Errorf("D = %d, want 50 (replayed to correct recipient)", got)
	}
	if t2.State() != StateRetracted || t3.State() != StateRetracted {
		t.Errorf("dependents not retracted: t2=%v t3=%v", t2.State(), t3.State())
	}
	st := m.Stats()
	if st.Retractions != 3 {
		t.Errorf("retractions = %d, want 3", st.Retractions)
	}
	found := false
	for _, a := range t3.Apologies() {
		if strings.Contains(a.Reason, "cascaded") {
			found = true
		}
	}
	if !found {
		t.Error("t3 missing cascade apology")
	}
}

func mustRun(t *testing.T, cc CC, insts ...*Instance) {
	t.Helper()
	for _, in := range insts {
		if err := cc.RunInitial(in); err != nil {
			t.Fatalf("initial of %s: %v", in.T.Name, err)
		}
	}
}

// TestRetractionExactRollback: retracting a lone transaction restores the
// precise before-state even with interleaved writes to other keys.
func TestRetractionExactRollback(t *testing.T) {
	s := vclock.NewSim()
	m := newTestManager(s)
	cc := &MSIA{M: m}
	m.Store.Put("a", store.Int64Value(1))
	m.Store.Put("b", store.Int64Value(2))
	snapshotA, snapshotB := balanceKey(m, "a"), balanceKey(m, "b")

	tx := &Txn{
		Name:      "writer",
		InitialRW: RWSet{Writes: []string{"a", "b", "c"}},
		FinalRW:   RWSet{},
		Initial: func(c *Ctx) error {
			c.Put("a", store.Int64Value(100))
			c.Put("b", store.Int64Value(200))
			c.Put("c", store.Int64Value(300)) // created key
			c.Put("a", store.Int64Value(101)) // double write
			c.Delete("b")
			return nil
		},
		Final: func(c *Ctx) error { c.Retract("erroneous trigger"); return nil },
	}
	inst := m.NewInstance(tx, nil)
	s.Run(func() {
		if err := cc.RunInitial(inst); err != nil {
			t.Fatalf("initial: %v", err)
		}
		if err := cc.RunFinal(inst); !errors.Is(err, ErrRetracted) {
			t.Fatalf("final = %v, want ErrRetracted", err)
		}
	})
	if got := balanceKey(m, "a"); got != snapshotA {
		t.Errorf("a = %d, want %d", got, snapshotA)
	}
	if got := balanceKey(m, "b"); got != snapshotB {
		t.Errorf("b = %d, want %d", got, snapshotB)
	}
	if _, ok := m.Store.Get("c"); ok {
		t.Error("created key c survived retraction")
	}
	if inst.State() != StateRetracted {
		t.Errorf("state = %v", inst.State())
	}
}

func balanceKey(m *Manager, k string) int64 {
	v, _ := m.Store.Get(k)
	return store.AsInt64(v)
}

// TestRetractionSkipsIndependents: transactions that did not touch the
// retracted transaction's keys must be unaffected.
func TestRetractionSkipsIndependents(t *testing.T) {
	s := vclock.NewSim()
	m := newTestManager(s)
	cc := &MSIA{M: m}

	victim := m.NewInstance(&Txn{
		Name:      "victim",
		InitialRW: RWSet{Writes: []string{"v"}},
		FinalRW:   RWSet{},
		Initial:   func(c *Ctx) error { c.Put("v", store.Int64Value(1)); return nil },
		Final:     func(c *Ctx) error { c.Retract("bad input"); return nil },
	}, nil)
	bystander := m.NewInstance(&Txn{
		Name:      "bystander",
		InitialRW: RWSet{Writes: []string{"w"}},
		FinalRW:   RWSet{},
		Initial:   func(c *Ctx) error { c.Put("w", store.Int64Value(7)); return nil },
		Final:     func(c *Ctx) error { return nil },
	}, nil)
	s.Run(func() {
		mustRun(t, cc, victim, bystander)
		cc.RunFinal(bystander)
		cc.RunFinal(victim)
	})
	if _, ok := m.Store.Get("v"); ok {
		t.Error("v survived retraction")
	}
	if got := balanceKey(m, "w"); got != 7 {
		t.Errorf("bystander write lost: w = %d", got)
	}
	if bystander.State() != StateFinalCommitted {
		t.Errorf("bystander state = %v", bystander.State())
	}
}

// TestReadOnlyDependentGetsApologyWithoutUndo: a reader of tainted data is
// retracted (apology) but has nothing to undo.
func TestReadOnlyDependentGetsApologyWithoutUndo(t *testing.T) {
	s := vclock.NewSim()
	m := newTestManager(s)
	cc := &MSIA{M: m}

	writer := m.NewInstance(&Txn{
		Name:      "writer",
		InitialRW: RWSet{Writes: []string{"k"}},
		FinalRW:   RWSet{},
		Initial:   func(c *Ctx) error { c.Put("k", store.Int64Value(13)); return nil },
		Final:     func(c *Ctx) error { c.Retract("wrong label"); return nil },
	}, nil)
	var observed int64
	reader := m.NewInstance(&Txn{
		Name:      "reader",
		InitialRW: RWSet{Reads: []string{"k"}},
		FinalRW:   RWSet{},
		Initial: func(c *Ctx) error {
			v, _ := c.Get("k")
			observed = store.AsInt64(v)
			return nil
		},
		Final: func(c *Ctx) error { return nil },
	}, nil)
	s.Run(func() {
		mustRun(t, cc, writer, reader)
		cc.RunFinal(reader)
		cc.RunFinal(writer)
	})
	if observed != 13 {
		t.Fatalf("reader observed %d", observed)
	}
	if reader.State() != StateRetracted {
		t.Errorf("reader state = %v, want retracted (it consumed tainted data)", reader.State())
	}
	if len(reader.Apologies()) == 0 {
		t.Error("reader received no apology")
	}
}

func TestApologizeCountsStats(t *testing.T) {
	s := vclock.NewSim()
	m := newTestManager(s)
	cc := &MSIA{M: m}
	inst := m.NewInstance(&Txn{
		Name:      "apologizer",
		InitialRW: RWSet{},
		FinalRW:   RWSet{},
		Initial:   func(c *Ctx) error { return nil },
		Final:     func(c *Ctx) error { c.Apologize("sorry"); return nil },
	}, nil)
	s.Run(func() {
		cc.RunInitial(inst)
		cc.RunFinal(inst)
	})
	if st := m.Stats(); st.Apologies != 1 {
		t.Errorf("apologies = %d", st.Apologies)
	}
	if a := inst.Apologies(); len(a) != 1 || a[0].Reason != "sorry" {
		t.Errorf("apologies = %v", a)
	}
	if got := a0String(inst); !strings.Contains(got, "apologizer") {
		t.Errorf("apology string = %q", got)
	}
}

func a0String(in *Instance) string { return in.Apologies()[0].String() }

func TestLockLeakFreedomAfterWorkload(t *testing.T) {
	// After a mix of commits, aborts and retractions, every lock must be
	// released: a fresh owner can grab any touched key immediately.
	s := vclock.NewSim()
	m := newTestManager(s)
	msia := &MSIA{M: m}
	mssr := &MSSR{M: m, Policy: NoWait}
	keys := []string{"a", "b", "c", "d"}
	s.Run(func() {
		for i := 0; i < 30; i++ {
			tx := &Txn{
				Name:      "mix",
				InitialRW: RWSet{Writes: []string{keys[i%4], keys[(i+1)%4]}},
				FinalRW:   RWSet{Writes: []string{keys[(i+2)%4]}},
				Initial:   func(c *Ctx) error { return nil },
				Final:     func(c *Ctx) error { return nil },
			}
			inst := m.NewInstance(tx, nil)
			var cc CC = msia
			if i%2 == 0 {
				cc = mssr
			}
			if err := cc.RunInitial(inst); err == nil {
				cc.RunFinal(inst)
				if i%5 == 0 {
					m.Retract(inst, "test retraction")
				}
			}
		}
	})
	for _, k := range keys {
		if !m.Locks.TryAcquire(77777, k, lock.Exclusive) {
			t.Errorf("lock %q leaked", k)
		} else {
			m.Locks.Release(77777, k)
		}
	}
}
