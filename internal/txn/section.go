package txn

import (
	"fmt"

	"croesus/internal/lock"
	"croesus/internal/obs"
)

// This file generalizes the two-stage transaction of §4 to N sections over
// an inference graph. A Txn may declare an ordered []SectionSpec instead of
// the classic Initial/Final pair; every protocol then runs the transaction
// through RunSection boundaries:
//
//   - MS-SR acquires the union of every section's locks before the first
//     commit and holds them to the last — the Two Stage 2PL guarantee
//     stretched over the whole graph.
//   - MS-IA locks, executes, and commits each section independently; a
//     retraction at section k undoes the visible effects of sections 1..k
//     (the undo log spans all sections, so Manager.Retract needs no change).
//
// A Txn with no Sections is exactly the classic two-section transaction:
// section 0 is the initial section on the edge tier, section 1 the final
// section on the cloud tier, and every RunSection path reduces to the same
// lock, clock, and commit operations the two-stage code performed.

// Tier names the placement of one section's trigger in the fleet: the edge
// that ingested the frame, a peer edge reached over the inter-edge mesh, or
// the cloud validator.
type Tier int

// Placement tiers.
const (
	TierEdge Tier = iota
	TierPeer
	TierCloud
)

func (t Tier) String() string {
	switch t {
	case TierEdge:
		return "edge"
	case TierPeer:
		return "peer"
	case TierCloud:
		return "cloud"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// ParseTier parses "edge", "peer", or "cloud".
func ParseTier(s string) (Tier, error) {
	switch s {
	case "edge":
		return TierEdge, nil
	case "peer":
		return TierPeer, nil
	case "cloud":
		return TierCloud, nil
	default:
		return 0, fmt.Errorf("txn: unknown tier %q (want edge, peer, or cloud)", s)
	}
}

// SectionSpec declares one section of an N-section transaction: a name for
// reports, the tier whose model output triggers it, its declared read/write
// set, and its body.
type SectionSpec struct {
	Name string
	Tier Tier
	RW   RWSet
	Body Section
}

// NumSections returns how many sections the transaction has (2 for a
// classic Initial/Final transaction).
func (t *Txn) NumSections() int {
	if len(t.Sections) > 0 {
		return len(t.Sections)
	}
	return 2
}

// LastSection returns the index of the transaction's last section.
func (t *Txn) LastSection() int { return t.NumSections() - 1 }

// SectionAt returns section k's spec. For a classic transaction it
// synthesizes the canonical pair: the initial section on the edge, the
// final section on the cloud.
func (t *Txn) SectionAt(k int) SectionSpec {
	if len(t.Sections) > 0 {
		return t.Sections[k]
	}
	if k == 0 {
		return SectionSpec{Name: "initial", Tier: TierEdge, RW: t.InitialRW, Body: t.Initial}
	}
	return SectionSpec{Name: "final", Tier: TierCloud, RW: t.FinalRW, Body: t.Final}
}

// AllRW unions every section's declared set — what MS-SR locks up front.
func (t *Txn) AllRW() RWSet {
	if len(t.Sections) == 0 {
		return t.InitialRW.Union(t.FinalRW)
	}
	out := t.Sections[0].RW
	for _, s := range t.Sections[1:] {
		out = out.Union(s.RW)
	}
	return out
}

// laterRequests returns the normalized union of the lock requests of
// sections from..last — the locks MS-SR must add before the first commit.
func (t *Txn) laterRequests(from int) []lock.Request {
	if from == t.LastSection() {
		return t.SectionAt(from).RW.Requests()
	}
	var all []lock.Request
	for k := from; k < t.NumSections(); k++ {
		all = append(all, t.SectionAt(k).RW.Requests()...)
	}
	return lock.Normalize(all)
}

// SetSectionIn installs section k's input before the section runs (the
// graph executor's per-node labels). Sections 0 and last alias the classic
// InitialIn and FinalIn fields.
func (in *Instance) SetSectionIn(k int, v any) {
	last := in.T.LastSection()
	switch {
	case k == 0:
		in.InitialIn = v
	case k == last:
		in.FinalIn = v
	default:
		in.mu.Lock()
		if in.sectionIn == nil {
			in.sectionIn = make(map[int]any)
		}
		in.sectionIn[k] = v
		in.mu.Unlock()
	}
}

// sectionInput returns section k's input.
func (in *Instance) sectionInput(k int) any {
	switch {
	case k == 0:
		return in.InitialIn
	case k == in.T.LastSection():
		return in.FinalIn
	default:
		in.mu.Lock()
		defer in.mu.Unlock()
		return in.sectionIn[k]
	}
}

// CommittedSections reports how many section boundaries have committed.
func (in *Instance) CommittedSections() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.committed
}

// MarkSectionCommitted records section k's boundary commit: the first
// boundary moves the instance to initial-committed, the last to
// final-committed (retraction is sticky), middle boundaries record the
// commit without a state change. It reports whether the instance is
// (terminally) retracted at this boundary. This is the per-boundary seam
// external protocols (twopc.ShardedCC) drive.
func (m *Manager) MarkSectionCommitted(in *Instance, k int) (retracted bool) {
	last := in.T.LastSection()
	if k == 0 && k < last {
		in.setState(StateInitialCommitted)
	}
	if k == last {
		if k == 0 {
			// Single-section transaction: the one boundary is both commits.
			in.mu.Lock()
			if in.state == StatePending {
				in.state = StateInitialCommitted
			}
			in.mu.Unlock()
		}
		retracted = in.finishFinal()
	} else {
		retracted = in.State() == StateRetracted
	}
	in.mu.Lock()
	in.committed = k + 1
	in.mu.Unlock()
	m.recordSectionCommit(in, k, last)
	return retracted
}

// recordSectionCommit appends the history entry and bumps the stats for
// one boundary commit.
func (m *Manager) recordSectionCommit(in *Instance, k, last int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.history = append(m.history, HistoryEntry{Txn: in.ID, Stage: Stage(k)})
	if k == 0 {
		m.stats.InitialCommits++
	}
	if k == last {
		m.stats.FinalCommits++
	} else if k > 0 {
		m.stats.SectionCommits++
	}
}

// RunSection executes section k of an N-section transaction under MS-SR:
// section 0 acquires the union of every section's locks (wait-die or
// no-wait per the policy) and every later section runs under those held
// locks until the last boundary releases them.
func (p *MSSR) RunSection(in *Instance, k int) error {
	last := in.T.LastSection()
	if k == 0 {
		return p.runFirst(in)
	}
	releaseHeld := func() {
		in.mu.Lock()
		held := in.heldReqs
		in.heldReqs = nil
		in.mu.Unlock()
		p.M.Locks.ReleaseAll(lock.Owner(in.ID), held)
	}
	switch s := in.State(); s {
	case StateInitialCommitted:
	case StateRetracted:
		releaseHeld() // a cascade got here first; don't leak the 2PL locks
		return ErrRetracted
	default:
		return fmt.Errorf("txn %d: RunSection(%d) in state %s", in.ID, k, s)
	}
	if err := sectionInOrder(in, k); err != nil {
		return err
	}
	ctx := in.sectionCtx(Stage(k))
	err := in.T.SectionAt(k).Body(ctx)
	// The multi-stage contract: an initially-committed transaction commits
	// every remaining boundary. A section error here is the programmer's
	// apology logic failing, not a concurrency abort; the boundary still
	// commits (unless the section retracted the transaction, terminally).
	retracted := p.M.MarkSectionCommitted(in, k)
	if k == last {
		releaseHeld()
	} else if retracted {
		releaseHeld()
	}
	if err == nil && retracted {
		return ErrRetracted
	}
	return err
}

// runFirst is MS-SR's section 0: acquire everything, execute, commit the
// first boundary with every lock still held (a single-section transaction
// releases immediately — there is nothing left to protect).
func (p *MSSR) runFirst(in *Instance) error {
	if s := in.State(); s != StatePending {
		return fmt.Errorf("txn %d: RunInitial in state %s", in.ID, s)
	}
	owner := lock.Owner(in.ID)
	// Keys needed by later sections are taken at the stronger mode from
	// the start, so the later-lock step never needs an in-place upgrade.
	later := in.T.laterRequests(1)
	initReqs := strengthen(in.T.SectionAt(0).RW.Requests(), later)
	extraReqs := newKeys(initReqs, later)
	allReqs := lock.Normalize(append(append([]lock.Request{}, initReqs...), extraReqs...))

	tAcq := p.M.now()
	if p.Policy == Wait {
		if !p.M.Locks.AcquireAllWaitDie(owner, allReqs) {
			now := p.M.now()
			in.AddLockWait(now - tAcq)
			p.M.Tracer.EmitCtx(in.Trace, obs.SpanLockAbort, p.M.TraceTags, tAcq, now)
			in.setState(StateAborted)
			p.M.recordAbort()
			return ErrAborted
		}
	} else {
		if !p.M.Locks.TryAcquireAll(owner, initReqs) {
			in.AddLockWait(p.M.now() - tAcq)
			in.setState(StateAborted)
			p.M.recordAbort()
			return ErrAborted
		}
	}
	in.AddLockWait(p.M.now() - tAcq)

	ctx := in.sectionCtx(StageInitial)
	if err := in.T.SectionAt(0).Body(ctx); err != nil {
		if p.Policy == Wait {
			p.M.Locks.ReleaseAll(owner, allReqs)
		} else {
			p.M.Locks.ReleaseAll(owner, initReqs)
		}
		in.setState(StateAborted)
		p.M.recordAbort()
		return err
	}

	if p.Policy == NoWait {
		// Algorithm 1: every later section's locks must be acquired before
		// the first commit, guaranteeing the remaining sections will commit.
		tExtra := p.M.now()
		if !p.M.Locks.TryAcquireAll(owner, extraReqs) {
			in.AddLockWait(p.M.now() - tExtra)
			p.M.Locks.ReleaseAll(owner, initReqs)
			in.setState(StateAborted)
			p.M.recordAbort()
			return ErrAborted
		}
		in.AddLockWait(p.M.now() - tExtra)
	}

	if in.T.LastSection() == 0 {
		retracted := p.M.MarkSectionCommitted(in, 0)
		p.M.Locks.ReleaseAll(owner, allReqs)
		if retracted {
			return ErrRetracted
		}
		return nil
	}
	in.mu.Lock()
	in.heldReqs = allReqs
	in.mu.Unlock()
	p.M.MarkSectionCommitted(in, 0)
	return nil
}

// RunSection executes section k under MS-IA: acquire section k's own
// locks (blocking), execute, commit the boundary, release — every boundary
// is independent, which is what lets a later retraction cascade back
// through the already-visible earlier boundaries.
func (p *MSIA) RunSection(in *Instance, k int) error {
	if k == 0 {
		return p.runFirst(in)
	}
	switch s := in.State(); s {
	case StateInitialCommitted:
	case StateRetracted:
		return ErrRetracted
	default:
		return fmt.Errorf("txn %d: RunSection(%d) in state %s", in.ID, k, s)
	}
	if err := sectionInOrder(in, k); err != nil {
		return err
	}
	owner := lock.Owner(in.ID)
	reqs := in.T.SectionAt(k).RW.Requests()
	tAcq := p.M.now()
	p.M.Locks.AcquireAll(owner, reqs)
	in.AddLockWait(p.M.now() - tAcq)
	ctx := in.sectionCtx(Stage(k))
	err := in.T.SectionAt(k).Body(ctx)
	retracted := p.M.MarkSectionCommitted(in, k)
	p.M.Locks.ReleaseAll(owner, reqs)
	if err == nil && retracted {
		return ErrRetracted
	}
	return err
}

// runFirst is MS-IA's section 0: lock, execute, commit, release.
func (p *MSIA) runFirst(in *Instance) error {
	if s := in.State(); s != StatePending {
		return fmt.Errorf("txn %d: RunInitial in state %s", in.ID, s)
	}
	owner := lock.Owner(in.ID)
	reqs := in.T.SectionAt(0).RW.Requests()
	tAcq := p.M.now()
	p.M.Locks.AcquireAll(owner, reqs)
	in.AddLockWait(p.M.now() - tAcq)
	ctx := in.sectionCtx(StageInitial)
	err := in.T.SectionAt(0).Body(ctx)
	if err != nil {
		p.M.Locks.ReleaseAll(owner, reqs)
		in.setState(StateAborted)
		p.M.recordAbort()
		return err
	}
	retracted := p.M.MarkSectionCommitted(in, 0)
	p.M.Locks.ReleaseAll(owner, reqs)
	if retracted {
		return ErrRetracted
	}
	return nil
}

// sectionInOrder rejects an out-of-order boundary on an explicitly
// N-section transaction (classic two-section transactions are already
// fully ordered by the state machine).
func sectionInOrder(in *Instance, k int) error {
	if len(in.T.Sections) == 0 {
		return nil
	}
	if got := in.CommittedSections(); got != k {
		return fmt.Errorf("txn %d: section %d out of order (%d boundaries committed)", in.ID, k, got)
	}
	return nil
}
