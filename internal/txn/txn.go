// Package txn implements the paper's multi-stage transaction model (§4).
//
// A multi-stage transaction consists of an initial section, triggered by the
// edge model's labels and committed immediately ("initial commit"), and a
// final section, triggered by the corrected cloud labels, that fixes any
// errors and commits the transaction ("final commit"). Once a transaction
// initially commits, its final section is guaranteed to commit.
//
// Two concurrency-control protocols are provided:
//
//   - MSSR — multi-stage serializability via Two Stage 2PL (Algorithm 1):
//     the initial section also acquires the final section's locks before the
//     initial commit, and every lock is held until the final commit.
//   - MSIA — multi-stage invariant confluence with apologies (Algorithm 2):
//     each section locks only its own read/write set and releases at its own
//     commit; the final section is programmed as an invariant-restoring
//     merge/apology and may retract the initial section's effects.
//
// The Manager tracks, per key, the last committed writer, so a retraction
// cascades to dependent transactions (the token-transfer scenario of §4.4)
// and emits Apology records.
package txn

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"croesus/internal/lock"
	"croesus/internal/obs"
	"croesus/internal/store"
	"croesus/internal/vclock"
)

// ID identifies a transaction instance.
type ID uint64

// Stage is a transaction section's index. The classic two-stage model uses
// exactly StageInitial and StageFinal; an N-section transaction (see
// SectionSpec) numbers its sections 0..N-1 and Stage(k) names the k-th.
type Stage int

// The two stages of the classic two-stage model.
const (
	StageInitial Stage = iota
	StageFinal
)

func (s Stage) String() string {
	switch s {
	case StageInitial:
		return "initial"
	case StageFinal:
		return "final"
	default:
		return fmt.Sprintf("section-%d", int(s))
	}
}

// State is an instance's lifecycle state.
type State int

// Instance states.
const (
	StatePending State = iota
	StateInitialCommitted
	StateFinalCommitted
	StateAborted
	StateRetracted
)

func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateInitialCommitted:
		return "initial-committed"
	case StateFinalCommitted:
		return "final-committed"
	case StateAborted:
		return "aborted"
	case StateRetracted:
		return "retracted"
	default:
		return "unknown"
	}
}

// ErrAborted is returned when a protocol aborts a section (no-wait lock
// acquisition failed).
var ErrAborted = errors.New("txn: aborted")

// ErrRetracted is returned by RunFinal when the instance was retracted (by
// its own apology logic or by a cascade from another transaction) before or
// during its final section; callers should treat the transaction as
// terminally undone.
var ErrRetracted = errors.New("txn: retracted")

// RWSet declares the keys a section may read and write. Declared sets are
// what the paper's algorithms call get_rwsets(t); they allow ordered,
// deadlock-free lock acquisition.
type RWSet struct {
	Reads  []string
	Writes []string

	// norm, when non-nil, caches the normalized lock requests (see
	// Precompute). Copies of the set share the cache, so a template
	// built once per trigger pays for normalization once, not once per
	// section run.
	norm []lock.Request
}

// Precompute builds and caches the normalized lock requests. Call it after
// the Reads/Writes slices are final; later mutation of the set is not
// reflected in Requests.
func (s *RWSet) Precompute() {
	s.norm = s.buildRequests()
}

// Requests converts the declared set to lock requests (reads shared, writes
// exclusive; a key in both is exclusive). With a Precompute'd set this is a
// cache read and allocates nothing.
func (s RWSet) Requests() []lock.Request {
	if s.norm != nil {
		return s.norm
	}
	return s.buildRequests()
}

func (s RWSet) buildRequests() []lock.Request {
	reqs := make([]lock.Request, 0, len(s.Reads)+len(s.Writes))
	for _, k := range s.Reads {
		reqs = append(reqs, lock.Request{Key: k, Mode: lock.Shared})
	}
	for _, k := range s.Writes {
		reqs = append(reqs, lock.Request{Key: k, Mode: lock.Exclusive})
	}
	return lock.NormalizeInPlace(reqs)
}

// Union merges two sets.
func (s RWSet) Union(o RWSet) RWSet {
	return RWSet{
		Reads:  append(append([]string{}, s.Reads...), o.Reads...),
		Writes: append(append([]string{}, s.Writes...), o.Writes...),
	}
}

func (s RWSet) canRead(key string) bool {
	for _, k := range s.Reads {
		if k == key {
			return true
		}
	}
	return s.canWrite(key)
}

func (s RWSet) canWrite(key string) bool {
	for _, k := range s.Writes {
		if k == key {
			return true
		}
	}
	return false
}

// Section is the programmer-supplied body of one stage.
type Section func(ctx *Ctx) error

// Txn is a multi-stage transaction template: declared read/write sets plus
// the section bodies. Templates are instantiated per trigger.
//
// The classic two-stage form fills InitialRW/Initial and FinalRW/Final. An
// N-section transaction instead fills Sections with its ordered section
// specs; the classic fields are then ignored (SectionAt is the accessor
// every protocol reads through, and it synthesizes the canonical pair for
// a Txn with no Sections).
type Txn struct {
	Name      string
	InitialRW RWSet
	FinalRW   RWSet
	Initial   Section
	Final     Section
	// Sections, when non-empty, declares an N-section transaction over an
	// inference graph (one section per graph node, in graph order).
	Sections []SectionSpec
}

// Apology records a user-visible correction issued by a final section, per
// the guesses-and-apologies pattern the model adapts.
type Apology struct {
	TxnID   ID
	TxnName string
	Reason  string
}

func (a Apology) String() string {
	return fmt.Sprintf("apology(txn %d %s): %s", a.TxnID, a.TxnName, a.Reason)
}

// undoRec captures one write's before-image for retraction.
type undoRec struct {
	seq     uint64 // global write order
	key     string
	prev    store.Value
	existed bool
}

// Instance is one execution of a Txn template.
type Instance struct {
	ID  ID
	T   *Txn
	mgr *Manager

	// InitialIn and FinalIn carry the section inputs (e.g., detected
	// labels); the pipeline sets them before running each section.
	InitialIn any
	FinalIn   any

	// Trace is the frame's span context, set by the pipeline when tracing
	// is enabled so the CC protocol's lock and 2PC spans — and the trace
	// contexts its wire messages carry — join the frame's tree. The zero
	// value disables per-instance tracing.
	Trace obs.SpanContext

	mu         sync.Mutex
	state      State
	undo       []undoRec    // all writes, every section, in write order
	dependents []*Instance  // instances that read/overwrote our writes
	depArr     [4]*Instance // inline backing for the first few dependents
	apologies  []Apology
	heldReqs   []lock.Request // MS-SR: locks held from the first to the last commit
	sectionIn  map[int]any    // middle-section inputs (0 and last alias InitialIn/FinalIn)
	committed  int            // section boundaries committed so far

	// sctx is the reusable section context handed to section bodies: an
	// instance's sections run strictly one after another, so a single
	// scratch Ctx serves them all without a per-section allocation.
	sctx Ctx

	// lockWait and twoPC accumulate instrumented time spent inside this
	// instance's sections waiting for locks and in 2PC fan-out rounds.
	// Protocols add as they run; the pipeline harvests per frame with
	// TakeTiming to attribute the time in the frame's Breakdown.
	lockWait time.Duration
	twoPC    time.Duration
}

// AddLockWait accumulates time this instance spent acquiring locks
// (including wait-die waits that ended in an abort).
func (in *Instance) AddLockWait(d time.Duration) {
	if d <= 0 {
		return
	}
	in.mu.Lock()
	in.lockWait += d
	in.mu.Unlock()
}

// AddTwoPC accumulates time this instance spent in distributed
// prepare/commit fan-out rounds.
func (in *Instance) AddTwoPC(d time.Duration) {
	if d <= 0 {
		return
	}
	in.mu.Lock()
	in.twoPC += d
	in.mu.Unlock()
}

// TakeTiming returns and zeroes the accumulated lock-wait and 2PC time,
// so a caller that harvests after each section charges each interval to
// exactly one breakdown bucket.
func (in *Instance) TakeTiming() (lockWait, twoPC time.Duration) {
	in.mu.Lock()
	lockWait, twoPC = in.lockWait, in.twoPC
	in.lockWait, in.twoPC = 0, 0
	in.mu.Unlock()
	return lockWait, twoPC
}

// State returns the instance's lifecycle state.
func (in *Instance) State() State {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.state
}

// Apologies returns the apologies issued so far by this instance.
func (in *Instance) Apologies() []Apology {
	in.mu.Lock()
	defer in.mu.Unlock()
	if len(in.apologies) == 0 {
		return nil
	}
	return append([]Apology{}, in.apologies...)
}

// TakeApologies returns the apologies issued so far and clears them from
// the instance, avoiding the defensive copy of Apologies. For callers that
// harvest each instance exactly once (the classic pipeline's final stage).
func (in *Instance) TakeApologies() []Apology {
	in.mu.Lock()
	defer in.mu.Unlock()
	a := in.apologies
	in.apologies = nil
	return a
}

func (in *Instance) setState(s State) {
	in.mu.Lock()
	in.state = s
	in.mu.Unlock()
}

// sectionCtx returns the instance's reusable section context, retargeted
// at stage. Sections of one instance never run concurrently (the protocols
// commit boundaries in order), so reuse is safe.
func (in *Instance) sectionCtx(stage Stage) *Ctx {
	in.sctx.inst = in
	in.sctx.stage = stage
	return &in.sctx
}

// finishFinal moves an initially-committed instance to final-committed.
// Retraction is sticky: an instance retracted during its own final section
// stays retracted. It reports whether the instance ended retracted.
func (in *Instance) finishFinal() (retracted bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.state == StateRetracted {
		return true
	}
	in.state = StateFinalCommitted
	return false
}

// Stats counts protocol events.
type Stats struct {
	InitialCommits int64
	FinalCommits   int64
	// SectionCommits counts middle-section boundary commits of N-section
	// transactions (a classic two-stage transaction has none).
	SectionCommits int64
	Aborts         int64
	Retractions    int64
	Apologies      int64
}

// Backend is the key-value storage a Manager writes through. The local
// single-edge deployment uses the embedded *store.Store directly; a
// distributed concurrency-control implementation (twopc.ShardedCC) installs
// a router that forwards each operation to the partition owning the key, so
// undo logging, dependency tracking, and retraction cascades work unchanged
// over a keyspace sharded across edge nodes.
type Backend interface {
	Get(key string) (store.Value, bool)
	Put(key string, v store.Value) uint64
	Delete(key string) bool
}

// Manager owns the store, the lock manager, and the dependency index shared
// by all protocol implementations.
type Manager struct {
	Clk   vclock.Clock
	Store *store.Store
	Locks *lock.Manager
	// DB, when set, replaces Store as the storage backend (Store may then
	// be nil). Every section read/write and every retraction restore goes
	// through it.
	DB Backend
	// RestoreDB, when set, is the backend retraction restores go through
	// instead of DB. A durable sharded fleet points it at a journaling
	// wrapper so the before-images a cascade re-installs reach each
	// partition's write-ahead log — otherwise a recovered edge would
	// resurrect the retracted writes.
	RestoreDB Backend
	Strict    bool // enforce declared read/write sets in Ctx (default on)
	// Tracer, when set, records retraction-cascade spans (timestamps from
	// Clk — a schedule-neutral read); TraceTags is the canonical tag
	// string stamped on them.
	Tracer    *obs.Tracer
	TraceTags string

	mu         sync.Mutex
	nextID     ID
	nextSeq    uint64
	lastWriter map[string]*Instance
	stats      Stats
	history    []HistoryEntry
}

// HistoryEntry records one section commit, for verifying the ordering
// guarantees of MS-SR and MS-IA in tests.
type HistoryEntry struct {
	Txn   ID
	Stage Stage
}

// NewManager returns a Manager over the given clock, store, and locks.
func NewManager(clk vclock.Clock, st *store.Store, locks *lock.Manager) *Manager {
	return &Manager{
		Clk:        clk,
		Store:      st,
		Locks:      locks,
		Strict:     true,
		lastWriter: make(map[string]*Instance),
	}
}

// db returns the effective storage backend.
func (m *Manager) db() Backend {
	if m.DB != nil {
		return m.DB
	}
	return m.Store
}

// restoreDB returns the backend retraction restores write through.
func (m *Manager) restoreDB() Backend {
	if m.RestoreDB != nil {
		return m.RestoreDB
	}
	return m.db()
}

// now reads the manager's clock for instrumentation; 0 when no clock is
// configured (unit tests that construct a Manager without one).
func (m *Manager) now() time.Duration {
	if m.Clk == nil {
		return 0
	}
	return m.Clk.Now()
}

// NewInstance instantiates a template with the given initial-section input.
func (m *Manager) NewInstance(t *Txn, initialIn any) *Instance {
	m.mu.Lock()
	m.nextID++
	id := m.nextID
	m.mu.Unlock()
	return &Instance{ID: id, T: t, mgr: m, InitialIn: initialIn}
}

// Stats returns a snapshot of the protocol counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// History returns the section-commit history.
func (m *Manager) History() []HistoryEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]HistoryEntry{}, m.history...)
}

func (m *Manager) recordAbort() {
	m.mu.Lock()
	m.stats.Aborts++
	m.mu.Unlock()
}

// Ctx is the handle a section body uses to access the database. All writes
// are undo-logged on the instance, and reads/writes of keys last written by
// another instance record a dependency edge for cascading retraction.
type Ctx struct {
	inst  *Instance
	stage Stage
}

// Stage reports which section is executing.
func (c *Ctx) Stage() Stage { return c.stage }

// In returns the section's input (InitialIn, FinalIn, or a middle
// section's input installed with SetSectionIn).
func (c *Ctx) In() any {
	return c.inst.sectionInput(int(c.stage))
}

// ID returns the executing instance's ID.
func (c *Ctx) ID() ID { return c.inst.ID }

func (c *Ctx) rwset() RWSet {
	return c.inst.T.SectionAt(int(c.stage)).RW
}

// Get reads a key within the declared set.
func (c *Ctx) Get(key string) (store.Value, bool) {
	m := c.inst.mgr
	if m.Strict && !c.rwset().canRead(key) {
		panic(fmt.Sprintf("txn %q %s section read of undeclared key %q", c.inst.T.Name, c.stage, key))
	}
	m.noteAccess(c.inst, key)
	return m.db().Get(key)
}

// Put writes a key within the declared set, undo-logging the before-image.
func (c *Ctx) Put(key string, v store.Value) {
	m := c.inst.mgr
	if m.Strict && !c.rwset().canWrite(key) {
		panic(fmt.Sprintf("txn %q %s section write of undeclared key %q", c.inst.T.Name, c.stage, key))
	}
	m.writeWithUndo(c.inst, key, v, false)
}

// Delete removes a key within the declared set, undo-logging it.
func (c *Ctx) Delete(key string) {
	m := c.inst.mgr
	if m.Strict && !c.rwset().canWrite(key) {
		panic(fmt.Sprintf("txn %q %s section delete of undeclared key %q", c.inst.T.Name, c.stage, key))
	}
	m.writeWithUndo(c.inst, key, nil, true)
}

// Apologize records an apology on the instance without undoing anything —
// the lightweight end of the apology spectrum (e.g., a corrected render plus
// a free game item).
func (c *Ctx) Apologize(reason string) {
	c.inst.mu.Lock()
	c.inst.apologies = append(c.inst.apologies, Apology{TxnID: c.inst.ID, TxnName: c.inst.T.Name, Reason: reason})
	c.inst.mu.Unlock()
	m := c.inst.mgr
	m.mu.Lock()
	m.stats.Apologies++
	m.mu.Unlock()
}

// Retract undoes every write of this instance's sections and, transitively,
// of all dependent instances, restoring before-images in reverse write
// order. Each retracted instance yields an apology. It is called from a
// final section when the initial section's trigger or input turns out to be
// erroneous and its effects cannot be merged.
func (c *Ctx) Retract(reason string) []Apology {
	return c.inst.mgr.Retract(c.inst, reason)
}

// noteAccess records a dependency edge from the last writer of key to inst.
func (m *Manager) noteAccess(inst *Instance, key string) {
	m.mu.Lock()
	last := m.lastWriter[key]
	m.mu.Unlock()
	if last == nil || last == inst {
		return
	}
	last.mu.Lock()
	for _, d := range last.dependents {
		if d == inst {
			last.mu.Unlock()
			return
		}
	}
	if last.dependents == nil {
		last.dependents = last.depArr[:0]
	}
	last.dependents = append(last.dependents, inst)
	last.mu.Unlock()
}

func (m *Manager) writeWithUndo(inst *Instance, key string, v store.Value, del bool) {
	m.noteAccess(inst, key)
	db := m.db()
	prev, existed := db.Get(key)
	m.mu.Lock()
	m.nextSeq++
	seq := m.nextSeq
	m.lastWriter[key] = inst
	m.mu.Unlock()

	inst.mu.Lock()
	if inst.undo == nil {
		inst.undo = make([]undoRec, 0, 8)
	}
	inst.undo = append(inst.undo, undoRec{seq: seq, key: key, prev: prev, existed: existed})
	inst.mu.Unlock()

	if del {
		db.Delete(key)
	} else {
		db.Put(key, v)
	}
}
