package txn

import (
	"croesus/internal/vclock"
)

// Sequencer orders transactions in batches so that conflicting transactions
// never overlap — the paper's MS-IA implementation detail that yields a 0%
// abort rate in Figure 6(b) ("our implementation uses a single-threaded
// sequencer to order transactions in batches so that conflicting
// transactions do not overlap").
//
// A batch is partitioned greedily into waves: within a wave no two
// instances conflict (on the given stage's declared sets), so a wave runs
// concurrently; waves run one after another. Conflict is the §4.1
// definition: a shared key with at least one writer.
type Sequencer struct {
	CC  CC
	Clk vclock.Clock
}

type footprint struct {
	reads, writes map[string]bool
}

func newFootprint() footprint {
	return footprint{reads: map[string]bool{}, writes: map[string]bool{}}
}

func footprintOf(in *Instance, stage Stage) footprint {
	set := in.T.InitialRW
	if stage == StageFinal {
		set = in.T.FinalRW
	}
	fp := newFootprint()
	for _, k := range set.Reads {
		fp.reads[k] = true
	}
	for _, k := range set.Writes {
		fp.writes[k] = true
	}
	return fp
}

func (a footprint) conflicts(b footprint) bool {
	for k := range a.writes {
		if b.writes[k] || b.reads[k] {
			return true
		}
	}
	for k := range b.writes {
		if a.reads[k] {
			return true
		}
	}
	return false
}

func (a footprint) absorb(b footprint) {
	for k := range b.reads {
		a.reads[k] = true
	}
	for k := range b.writes {
		a.writes[k] = true
	}
}

// Waves partitions instances into conflict-free groups, preserving batch
// order within each group. Exported for tests and ablation benches.
func Waves(instances []*Instance, stage Stage) [][]*Instance {
	var waves [][]*Instance
	var waveFPs []footprint
	for _, in := range instances {
		fp := footprintOf(in, stage)
		placed := false
		for w := range waves {
			if !waveFPs[w].conflicts(fp) {
				waves[w] = append(waves[w], in)
				waveFPs[w].absorb(fp)
				placed = true
				break
			}
		}
		if !placed {
			waves = append(waves, []*Instance{in})
			merged := newFootprint()
			merged.absorb(fp)
			waveFPs = append(waveFPs, merged)
		}
	}
	return waves
}

// RunInitialBatch executes the initial sections of a batch wave by wave.
// Within a wave no transactions conflict, so no lock acquisition can fail
// and the batch completes without aborts even under a NoWait-configured CC.
// Errors are reported per instance, index-aligned with the input.
func (s *Sequencer) RunInitialBatch(instances []*Instance) []error {
	return s.runBatch(instances, StageInitial)
}

// RunFinalBatch executes the final sections of a batch wave by wave.
func (s *Sequencer) RunFinalBatch(instances []*Instance) []error {
	return s.runBatch(instances, StageFinal)
}

func (s *Sequencer) runBatch(instances []*Instance, stage Stage) []error {
	errs := make([]error, len(instances))
	index := make(map[*Instance]int, len(instances))
	for i, in := range instances {
		index[in] = i
	}
	for _, wave := range Waves(instances, stage) {
		// Wave members run as clock participants so section bodies may
		// sleep and block on gates; the caller joins on per-member gates.
		gates := make([]vclock.Gate, len(wave))
		for i, in := range wave {
			i, in := i, in
			gates[i] = s.Clk.NewGate()
			s.Clk.Go(func() {
				defer gates[i].Fire()
				var err error
				if stage == StageInitial {
					err = s.CC.RunInitial(in)
				} else {
					err = s.CC.RunFinal(in)
				}
				errs[index[in]] = err
			})
		}
		for _, g := range gates {
			g.Wait()
		}
	}
	return errs
}
