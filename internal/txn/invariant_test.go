package txn

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"croesus/internal/store"
	"croesus/internal/vclock"
)

// TestMSIATokenConservationProperty is the invariant-confluence analogue of
// the serializability test: random batches of token transfers run under
// MS-IA with random cloud gaps; a random subset turns out to have had
// erroneous recipients and their final sections retract-and-replay toward
// the corrected player (§4.4). Whatever the interleaving and cascade
// pattern, the application invariant must hold at the end: token supply is
// conserved.
func TestMSIATokenConservationProperty(t *testing.T) {
	const nPlayers = 6
	players := make([]string, nPlayers)
	for i := range players {
		players[i] = string(rune('A' + i))
	}
	keys := make([]string, nPlayers)
	for i, p := range players {
		keys[i] = "tok:" + p
	}

	mkTransfer := func(clk vclock.Clock, from, to, correctTo string, amount int64) *Txn {
		move := func(c *Ctx, src, dst string) {
			sv, _ := c.Get("tok:" + src)
			dv, _ := c.Get("tok:" + dst)
			c.Put("tok:"+src, store.Int64Value(store.AsInt64(sv)-amount))
			c.Put("tok:"+dst, store.Int64Value(store.AsInt64(dv)+amount))
		}
		return &Txn{
			Name:      fmt.Sprintf("xfer-%s-%s", from, to),
			InitialRW: RWSet{Writes: keys},
			FinalRW:   RWSet{Writes: keys},
			Initial: func(c *Ctx) error {
				clk.Sleep(time.Millisecond)
				move(c, from, to)
				return nil
			},
			Final: func(c *Ctx) error {
				if correctTo == to {
					return nil
				}
				c.Retract("recipient should have been " + correctTo)
				move(c, from, correctTo)
				return nil
			},
		}
	}

	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)*104729 + 1))
		clk := vclock.NewSim()
		m := newTestManager(clk)
		cc := &MSIA{M: m}

		const perPlayer = 100
		for _, k := range keys {
			m.Store.Put(k, store.Int64Value(perPlayer))
		}
		supply := int64(nPlayers * perPlayer)

		n := 4 + rng.Intn(8)
		type job struct {
			txn *Txn
			gap time.Duration
		}
		// A transfer's endpoints are distinct players (a self-transfer is
		// not a transfer), and so is the corrected recipient.
		otherThan := func(p string) string {
			for {
				q := players[rng.Intn(nPlayers)]
				if q != p {
					return q
				}
			}
		}
		jobs := make([]job, n)
		for i := range jobs {
			from := players[rng.Intn(nPlayers)]
			to := otherThan(from)
			correct := to
			if rng.Float64() < 0.4 { // erroneous edge detection
				correct = otherThan(from)
			}
			jobs[i] = job{
				txn: mkTransfer(clk, from, to, correct, int64(1+rng.Intn(20))),
				gap: time.Duration(5+rng.Intn(50)) * time.Millisecond,
			}
		}
		for _, j := range jobs {
			j := j
			clk.Go(func() {
				inst := m.NewInstance(j.txn, nil)
				if err := cc.RunInitial(inst); err != nil {
					t.Errorf("trial %d: initial: %v", trial, err)
					return
				}
				clk.Sleep(j.gap)
				if err := cc.RunFinal(inst); err != nil && !errors.Is(err, ErrRetracted) {
					t.Errorf("trial %d: final: %v", trial, err)
				}
			})
		}
		clk.Wait()

		var total int64
		for _, k := range keys {
			v, _ := m.Store.Get(k)
			total += store.AsInt64(v)
		}
		if total != supply {
			t.Errorf("trial %d: token supply = %d, want %d (conservation violated)", trial, total, supply)
		}
	}
}
