package txn

import (
	"errors"
	"strings"
	"testing"

	"croesus/internal/store"
	"croesus/internal/vclock"
)

// threeSectionTxn writes a distinct key per boundary — s0 at the edge, s1
// at the peer, nothing at the cloud — and retracts at the last section
// when retract is set, so a test can watch the cascade reach back through
// every already-committed boundary.
func threeSectionTxn(retract bool) *Txn {
	return &Txn{
		Name: "three",
		Sections: []SectionSpec{
			{Name: "detect", Tier: TierEdge, RW: RWSet{Writes: []string{"s0"}}, Body: func(c *Ctx) error {
				c.Put("s0", store.Int64Value(1))
				return nil
			}},
			{Name: "classify", Tier: TierPeer, RW: RWSet{Writes: []string{"s1"}}, Body: func(c *Ctx) error {
				c.Put("s1", store.Int64Value(2))
				return nil
			}},
			{Name: "verify", Tier: TierCloud, RW: RWSet{Writes: []string{"s0", "s1"}}, Body: func(c *Ctx) error {
				if retract {
					c.Retract("erroneous detection removed at the last boundary")
				}
				return nil
			}},
		},
	}
}

// TestThreeSectionCommit drives a 3-section transaction through MS-IA
// boundary by boundary: each section's write becomes visible at its own
// commit (the per-boundary contract), and the instance ends
// final-committed with all three boundaries recorded.
func TestThreeSectionCommit(t *testing.T) {
	s := vclock.NewSim()
	m := newTestManager(s)
	cc := &MSIA{M: m}
	in := m.NewInstance(threeSectionTxn(false), nil)

	s.Run(func() {
		if err := cc.RunSection(in, 0); err != nil {
			t.Fatalf("section 0: %v", err)
		}
		if v, ok := m.Store.Get("s0"); !ok || store.AsInt64(v) != 1 {
			t.Errorf("s0 not visible after boundary 0")
		}
		if _, ok := m.Store.Get("s1"); ok {
			t.Errorf("s1 visible before its boundary")
		}
		if err := cc.RunSection(in, 1); err != nil {
			t.Fatalf("section 1: %v", err)
		}
		if v, ok := m.Store.Get("s1"); !ok || store.AsInt64(v) != 2 {
			t.Errorf("s1 not visible after boundary 1")
		}
		if err := cc.RunSection(in, 2); err != nil {
			t.Fatalf("section 2: %v", err)
		}
	})
	if got := in.State(); got != StateFinalCommitted {
		t.Errorf("state = %v, want final-committed", got)
	}
	if got := in.CommittedSections(); got != 3 {
		t.Errorf("committed boundaries = %d, want 3", got)
	}
	st := m.Stats()
	if st.InitialCommits != 1 || st.SectionCommits != 1 || st.FinalCommits != 1 {
		t.Errorf("stats = %+v, want one commit per boundary kind", st)
	}
}

// TestThreeSectionCascadingRetraction is the §4.4 retraction stretched
// over three boundaries: sections 0 and 1 commit and are visible, a
// dependent transaction reads boundary 1's write, and the retraction at
// section 2 must undo both earlier boundaries AND cascade to the
// dependent.
func TestThreeSectionCascadingRetraction(t *testing.T) {
	s := vclock.NewSim()
	m := newTestManager(s)
	cc := &MSIA{M: m}
	m.Store.Put("s0", store.Int64Value(100))
	m.Store.Put("s1", store.Int64Value(200))

	in := m.NewInstance(threeSectionTxn(true), nil)
	dep := m.NewInstance(&Txn{
		Name:      "dependent",
		InitialRW: RWSet{Reads: []string{"s1"}, Writes: []string{"d0"}},
		FinalRW:   RWSet{Writes: []string{"d0"}},
		Initial: func(c *Ctx) error {
			v, _ := c.Get("s1")
			c.Put("d0", store.Int64Value(store.AsInt64(v)+1))
			return nil
		},
		Final: func(c *Ctx) error { return nil },
	}, nil)

	s.Run(func() {
		if err := cc.RunSection(in, 0); err != nil {
			t.Fatalf("section 0: %v", err)
		}
		if err := cc.RunSection(in, 1); err != nil {
			t.Fatalf("section 1: %v", err)
		}
		// The dependent commits fully between boundaries 1 and 2, reading
		// the middle section's write.
		if err := cc.RunInitial(dep); err != nil {
			t.Fatalf("dependent initial: %v", err)
		}
		if err := cc.RunFinal(dep); err != nil {
			t.Fatalf("dependent final: %v", err)
		}
		// Boundary 2 retracts: sections 1..2 (and the initial) roll back.
		if err := cc.RunSection(in, 2); !errors.Is(err, ErrRetracted) {
			t.Fatalf("section 2 = %v, want ErrRetracted", err)
		}
	})

	if v, _ := m.Store.Get("s0"); store.AsInt64(v) != 100 {
		t.Errorf("s0 = %d, want 100 (boundary-0 write retracted)", store.AsInt64(v))
	}
	if v, _ := m.Store.Get("s1"); store.AsInt64(v) != 200 {
		t.Errorf("s1 = %d, want 200 (boundary-1 write retracted)", store.AsInt64(v))
	}
	if _, ok := m.Store.Get("d0"); ok {
		t.Error("dependent's write survived the cascade")
	}
	if in.State() != StateRetracted || dep.State() != StateRetracted {
		t.Errorf("states = %v/%v, want both retracted", in.State(), dep.State())
	}
	found := false
	for _, a := range dep.Apologies() {
		if strings.Contains(a.Reason, "cascaded") {
			found = true
		}
	}
	if !found {
		t.Error("dependent missing its cascade apology")
	}
}

// TestMSSRHoldsLocksAcrossAllSections pins the stretched Two Stage 2PL
// guarantee: MS-SR acquires the union of every section's locks at section
// 0 and holds them to the last boundary — so a conflicting no-wait
// transaction aborts anywhere in the window and succeeds after it.
func TestMSSRHoldsLocksAcrossAllSections(t *testing.T) {
	s := vclock.NewSim()
	m := newTestManager(s)
	cc := &MSSR{M: m, Policy: Wait}
	rival := &MSSR{M: m, Policy: NoWait}

	conflicting := func() *Instance {
		return m.NewInstance(&Txn{
			Name:      "rival",
			InitialRW: RWSet{Writes: []string{"s1"}}, // the MIDDLE section's key
			FinalRW:   RWSet{Writes: []string{"s1"}},
			Initial:   func(c *Ctx) error { return nil },
			Final:     func(c *Ctx) error { return nil },
		}, nil)
	}

	in := m.NewInstance(threeSectionTxn(false), nil)
	s.Run(func() {
		if err := cc.RunSection(in, 0); err != nil {
			t.Fatalf("section 0: %v", err)
		}
		// Between boundaries 0 and 1 — before the middle section has even
		// run — its key is already locked.
		if err := rival.RunInitial(conflicting()); !errors.Is(err, ErrAborted) {
			t.Fatalf("rival between boundaries 0-1 = %v, want ErrAborted", err)
		}
		if err := cc.RunSection(in, 1); err != nil {
			t.Fatalf("section 1: %v", err)
		}
		// Between boundaries 1 and 2 the middle section's lock is STILL
		// held (MS-IA would have released it at its own commit).
		if err := rival.RunInitial(conflicting()); !errors.Is(err, ErrAborted) {
			t.Fatalf("rival between boundaries 1-2 = %v, want ErrAborted", err)
		}
		if err := cc.RunSection(in, 2); err != nil {
			t.Fatalf("section 2: %v", err)
		}
		// Every lock released at the last boundary.
		r := conflicting()
		if err := rival.RunInitial(r); err != nil {
			t.Fatalf("rival after final boundary: %v", err)
		}
		if err := rival.RunFinal(r); err != nil {
			t.Fatalf("rival final: %v", err)
		}
	})
	if n := m.Locks.Outstanding(); n != 0 {
		t.Errorf("%d locks leaked", n)
	}
}

// TestMSIAReleasesLocksPerBoundary is the contrast: under MS-IA the middle
// section's key is free both before and after its own boundary.
func TestMSIAReleasesLocksPerBoundary(t *testing.T) {
	s := vclock.NewSim()
	m := newTestManager(s)
	cc := &MSIA{M: m}
	rival := &MSSR{M: m, Policy: NoWait}

	in := m.NewInstance(threeSectionTxn(false), nil)
	s.Run(func() {
		if err := cc.RunSection(in, 0); err != nil {
			t.Fatalf("section 0: %v", err)
		}
		r := m.NewInstance(&Txn{
			Name:      "rival",
			InitialRW: RWSet{Writes: []string{"s1"}},
			FinalRW:   RWSet{Writes: []string{"s1"}},
			Initial:   func(c *Ctx) error { return nil },
			Final:     func(c *Ctx) error { return nil },
		}, nil)
		if err := rival.RunInitial(r); err != nil {
			t.Fatalf("rival under MS-IA gap: %v (the middle key must be free between boundaries)", err)
		}
		if err := rival.RunFinal(r); err != nil {
			t.Fatalf("rival final: %v", err)
		}
		for k := 1; k <= 2; k++ {
			if err := cc.RunSection(in, k); err != nil {
				t.Fatalf("section %d: %v", k, err)
			}
		}
	})
	if n := m.Locks.Outstanding(); n != 0 {
		t.Errorf("%d locks leaked", n)
	}
}

// TestSectionOutOfOrder: an explicitly N-section transaction must commit
// its boundaries in order; skipping one is a programming error, reported,
// not silently absorbed.
func TestSectionOutOfOrder(t *testing.T) {
	s := vclock.NewSim()
	m := newTestManager(s)
	cc := &MSIA{M: m}
	in := m.NewInstance(threeSectionTxn(false), nil)
	s.Run(func() {
		if err := cc.RunSection(in, 0); err != nil {
			t.Fatalf("section 0: %v", err)
		}
		err := cc.RunSection(in, 2)
		if err == nil || !strings.Contains(err.Error(), "out of order") {
			t.Fatalf("skipping section 1 = %v, want out-of-order error", err)
		}
	})
}

// TestClassicTxnIsTwoSections: a Txn with no Sections keeps the canonical
// shape — two sections, edge then cloud — so every pre-graph call site
// behaves identically.
func TestClassicTxnIsTwoSections(t *testing.T) {
	tx := &Txn{
		Name:    "classic",
		Initial: func(c *Ctx) error { return nil },
		Final:   func(c *Ctx) error { return nil },
	}
	if got := tx.NumSections(); got != 2 {
		t.Fatalf("NumSections = %d, want 2", got)
	}
	if s := tx.SectionAt(0); s.Name != "initial" || s.Tier != TierEdge {
		t.Errorf("section 0 = %q/%v, want initial/edge", s.Name, s.Tier)
	}
	if s := tx.SectionAt(1); s.Name != "final" || s.Tier != TierCloud {
		t.Errorf("section 1 = %q/%v, want final/cloud", s.Name, s.Tier)
	}
}
