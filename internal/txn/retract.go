package txn

import (
	"fmt"
	"sort"

	"croesus/internal/obs"
)

// Retract undoes the writes of inst and of every transitively dependent
// instance, restoring before-images in reverse global write order so the
// store returns to the exact state it would have had without them. Each
// affected instance is marked retracted and contributes an apology.
//
// Retraction is the mechanical fallback of the MS-IA apology pattern: the
// paper's §4.4 example retracts an erroneous 50-token transfer and the
// dependent transfers it enabled, while merge-able effects are retained by
// programmer logic instead of calling Retract.
func (m *Manager) Retract(inst *Instance, reason string) []Apology {
	tStart := m.now()
	// Collect the affected set: inst plus transitive dependents.
	affected := []*Instance{}
	seen := map[ID]bool{}
	var visit func(*Instance)
	visit = func(in *Instance) {
		if seen[in.ID] {
			return
		}
		seen[in.ID] = true
		affected = append(affected, in)
		in.mu.Lock()
		deps := append([]*Instance{}, in.dependents...)
		in.mu.Unlock()
		for _, d := range deps {
			visit(d)
		}
	}
	visit(inst)

	// Gather every undo record and restore in reverse write order.
	type rec struct {
		r  undoRec
		in *Instance
	}
	var recs []rec
	for _, in := range affected {
		in.mu.Lock()
		for _, r := range in.undo {
			recs = append(recs, rec{r: r, in: in})
		}
		in.undo = nil
		in.mu.Unlock()
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].r.seq > recs[j].r.seq })
	db := m.restoreDB()
	for _, rc := range recs {
		if rc.r.existed {
			db.Put(rc.r.key, rc.r.prev)
		} else {
			db.Delete(rc.r.key)
		}
	}

	// The retracted instances deliberately REMAIN the recorded last
	// writers of the keys they touched: the restored values are the
	// retraction's doing, and any future writer of those keys must still
	// pick up a dependency edge so that a later cascade from an ancestor
	// of this retraction reaches it too. (Dropping the entries here would
	// let an ancestor's undo clobber an innocent later write — observed
	// as a token-conservation violation by the MS-IA property test.)
	m.mu.Lock()
	m.stats.Retractions += int64(len(affected))
	m.stats.Apologies += int64(len(affected))
	m.mu.Unlock()

	apologies := make([]Apology, 0, len(affected))
	for _, in := range affected {
		in.setState(StateRetracted)
		why := reason
		if in != inst {
			why = fmt.Sprintf("cascaded from %s (txn %d): %s", inst.T.Name, inst.ID, reason)
		}
		a := Apology{TxnID: in.ID, TxnName: in.T.Name, Reason: why}
		in.mu.Lock()
		in.apologies = append(in.apologies, a)
		in.mu.Unlock()
		apologies = append(apologies, a)
	}
	m.Tracer.EmitCtx(inst.Trace, obs.SpanRetraction, m.TraceTags, tStart, m.now())
	return apologies
}
