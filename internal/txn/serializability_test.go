package txn

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"croesus/internal/store"
	"croesus/internal/vclock"
)

// rmwSpec describes a read-modify-write transaction: the initial section
// reads every key, the final section writes back values derived from ALL
// reads, so any lost update or reordering is observable in the final state.
type rmwSpec struct {
	id     int
	keys   []string // read set == write set
	addend int64
}

func (s rmwSpec) txn() *Txn {
	captured := make([]int64, len(s.keys))
	return &Txn{
		Name:      fmt.Sprintf("rmw-%d", s.id),
		InitialRW: RWSet{Reads: s.keys},
		FinalRW:   RWSet{Writes: s.keys},
		Initial: func(c *Ctx) error {
			for i, k := range s.keys {
				v, _ := c.Get(k)
				captured[i] = store.AsInt64(v)
			}
			return nil
		},
		Final: func(c *Ctx) error {
			var sum int64
			for _, v := range captured {
				sum += v
			}
			for i, k := range s.keys {
				c.Put(k, store.Int64Value(captured[i]+sum%7+s.addend))
			}
			return nil
		},
	}
}

// serialApply replays the specs one at a time, in order, on a fresh store.
func serialApply(order []rmwSpec) map[string]int64 {
	clk := vclock.NewSim()
	m := newTestManager(clk)
	cc := &MSSR{M: m, Policy: Wait}
	clk.Run(func() {
		for _, s := range order {
			inst := m.NewInstance(s.txn(), nil)
			if err := cc.RunInitial(inst); err != nil {
				panic(err)
			}
			if err := cc.RunFinal(inst); err != nil {
				panic(err)
			}
		}
	})
	out := map[string]int64{}
	for _, k := range m.Store.Keys("") {
		v, _ := m.Store.Get(k)
		out[k] = store.AsInt64(v)
	}
	return out
}

// TestMSSRSerializabilityProperty runs random batches of conflicting
// read-modify-write transactions concurrently under MS-SR (wait-die with
// restart) and checks that the final database state equals a SERIAL replay
// of the committed transactions in their initial-commit order — the
// definition of multi-stage serializability: both sections of a
// transaction behave as one atomic unit ordered at its initial commit.
func TestMSSRSerializabilityProperty(t *testing.T) {
	keyPool := []string{"a", "b", "c", "d", "e"}
	for trial := 0; trial < 12; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 7919))
		n := 3 + rng.Intn(6)
		specs := make([]rmwSpec, n)
		for i := range specs {
			nk := 1 + rng.Intn(3)
			perm := rng.Perm(len(keyPool))[:nk]
			keys := make([]string, nk)
			for j, p := range perm {
				keys[j] = keyPool[p]
			}
			specs[i] = rmwSpec{id: i, keys: keys, addend: int64(rng.Intn(50))}
		}
		gaps := make([]time.Duration, n)
		for i := range gaps {
			gaps[i] = time.Duration(10+rng.Intn(70)) * time.Millisecond
		}

		clk := vclock.NewSim()
		m := newTestManager(clk)
		cc := &MSSR{M: m, Policy: Wait}
		var mu sync.Mutex
		bySuccessID := map[ID]rmwSpec{}
		for i := range specs {
			spec := specs[i]
			gap := gaps[i]
			clk.Go(func() {
				for {
					inst := m.NewInstance(spec.txn(), nil)
					err := cc.RunInitial(inst)
					if errors.Is(err, ErrAborted) {
						clk.Sleep(time.Duration(1+int(inst.ID)%7) * time.Millisecond)
						continue // wait-die restart with a fresh timestamp
					}
					if err != nil {
						t.Errorf("trial %d: initial: %v", trial, err)
						return
					}
					mu.Lock()
					bySuccessID[inst.ID] = spec
					mu.Unlock()
					clk.Sleep(gap) // the cloud round trip
					if err := cc.RunFinal(inst); err != nil {
						t.Errorf("trial %d: final: %v", trial, err)
					}
					return
				}
			})
		}
		clk.Wait()

		// Initial-commit order of the committed instances.
		var order []rmwSpec
		for _, h := range m.History() {
			if h.Stage != StageInitial {
				continue
			}
			if spec, ok := bySuccessID[h.Txn]; ok {
				order = append(order, spec)
			}
		}
		if len(order) != n {
			t.Fatalf("trial %d: %d of %d transactions committed", trial, len(order), n)
		}

		want := serialApply(order)
		for _, k := range keyPool {
			v, _ := m.Store.Get(k)
			got := store.AsInt64(v)
			if got != want[k] {
				t.Errorf("trial %d: key %q = %d, serial replay gives %d (order %v)",
					trial, k, got, want[k], ids(order))
			}
		}
	}
}

func ids(specs []rmwSpec) []int {
	out := make([]int, len(specs))
	for i, s := range specs {
		out[i] = s.id
	}
	return out
}
