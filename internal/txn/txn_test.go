package txn

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"croesus/internal/lock"
	"croesus/internal/store"
	"croesus/internal/vclock"
)

func newTestManager(clk vclock.Clock) *Manager {
	return NewManager(clk, store.New(), lock.NewManager(clk))
}

// incrementTxn reads x in the initial section and writes x+1 in the final
// section — the §4.2 anomaly scenario.
func incrementTxn(captured *int64) *Txn {
	return &Txn{
		Name:      "increment",
		InitialRW: RWSet{Reads: []string{"x"}},
		FinalRW:   RWSet{Writes: []string{"x"}},
		Initial: func(c *Ctx) error {
			v, _ := c.Get("x")
			*captured = store.AsInt64(v)
			return nil
		},
		Final: func(c *Ctx) error {
			c.Put("x", store.Int64Value(*captured+1))
			return nil
		},
	}
}

func TestMSIASingleTransactionLifecycle(t *testing.T) {
	s := vclock.NewSim()
	m := newTestManager(s)
	cc := &MSIA{M: m}
	var captured int64
	inst := m.NewInstance(incrementTxn(&captured), nil)
	s.Run(func() {
		if err := cc.RunInitial(inst); err != nil {
			t.Errorf("RunInitial: %v", err)
		}
		if got := inst.State(); got != StateInitialCommitted {
			t.Errorf("state after initial = %v", got)
		}
		if err := cc.RunFinal(inst); err != nil {
			t.Errorf("RunFinal: %v", err)
		}
	})
	if got := inst.State(); got != StateFinalCommitted {
		t.Errorf("state after final = %v", got)
	}
	v, _ := m.Store.Get("x")
	if store.AsInt64(v) != 1 {
		t.Errorf("x = %d, want 1", store.AsInt64(v))
	}
	st := m.Stats()
	if st.InitialCommits != 1 || st.FinalCommits != 1 || st.Aborts != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFinalBeforeInitialRejected(t *testing.T) {
	for _, mk := range []func(*Manager) CC{
		func(m *Manager) CC { return &MSIA{M: m} },
		func(m *Manager) CC { return &MSSR{M: m} },
	} {
		s := vclock.NewSim()
		m := newTestManager(s)
		cc := mk(m)
		var captured int64
		inst := m.NewInstance(incrementTxn(&captured), nil)
		s.Run(func() {
			if err := cc.RunFinal(inst); err == nil {
				t.Errorf("%s: RunFinal before RunInitial succeeded", cc.Name())
			}
		})
	}
}

func TestDoubleInitialRejected(t *testing.T) {
	s := vclock.NewSim()
	m := newTestManager(s)
	cc := &MSIA{M: m}
	var captured int64
	inst := m.NewInstance(incrementTxn(&captured), nil)
	s.Run(func() {
		if err := cc.RunInitial(inst); err != nil {
			t.Fatalf("first RunInitial: %v", err)
		}
		if err := cc.RunInitial(inst); err == nil {
			t.Error("second RunInitial succeeded")
		}
	})
}

// runInitialWaitDie keeps restarting a transaction (fresh instance, fresh
// timestamp) until wait-die lets it through — the classic restart loop of
// timestamp-ordered deadlock prevention.
func runInitialWaitDie(s *vclock.Sim, m *Manager, cc CC, mk func() *Txn) *Instance {
	for {
		inst := m.NewInstance(mk(), nil)
		err := cc.RunInitial(inst)
		if err == nil {
			return inst
		}
		if !errors.Is(err, ErrAborted) {
			panic(err)
		}
		s.Sleep(5 * time.Millisecond)
	}
}

// TestMSSRPreventsLostUpdate reproduces the §4.2 example: two increment
// transactions whose initial sections read x and final sections write x+1.
// Under MS-SR the sections serialize back-to-back (wait-die restarts the
// younger transaction when needed), so x ends at exactly 2.
func TestMSSRPreventsLostUpdate(t *testing.T) {
	s := vclock.NewSim()
	m := newTestManager(s)
	cc := &MSSR{M: m, Policy: Wait}
	m.Store.Put("x", store.Int64Value(0))

	for i := 0; i < 2; i++ {
		s.Go(func() {
			var captured int64
			inst := runInitialWaitDie(s, m, cc, func() *Txn { return incrementTxn(&captured) })
			s.Sleep(100 * time.Millisecond) // the cloud round-trip
			if err := cc.RunFinal(inst); err != nil {
				t.Errorf("RunFinal: %v", err)
			}
		})
	}
	s.Wait()
	v, _ := m.Store.Get("x")
	if store.AsInt64(v) != 2 {
		t.Errorf("x = %d, want 2 (lost update under MS-SR)", store.AsInt64(v))
	}
}

// TestMSIAAllowsAnomalyThenApologyFixes shows the flip side: MS-IA permits
// the interleaving (both initial sections read 0), and the final sections'
// invariant check repairs the damage — apply-then-check.
func TestMSIAAllowsAnomalyThenApologyFixes(t *testing.T) {
	s := vclock.NewSim()
	m := newTestManager(s)
	cc := &MSIA{M: m}
	m.Store.Put("x", store.Int64Value(0))

	mkTxn := func() *Txn {
		var captured int64
		return &Txn{
			Name:      "increment-checked",
			InitialRW: RWSet{Reads: []string{"x"}},
			FinalRW:   RWSet{Reads: []string{"x"}, Writes: []string{"x"}},
			Initial: func(c *Ctx) error {
				v, _ := c.Get("x")
				captured = store.AsInt64(v)
				return nil
			},
			Final: func(c *Ctx) error {
				// Invariant-confluent merge: re-read under the final
				// section's lock instead of trusting the stale guess.
				v, _ := c.Get("x")
				cur := store.AsInt64(v)
				if cur != captured {
					c.Apologize(fmt.Sprintf("guess %d was stale, merged on %d", captured, cur))
				}
				c.Put("x", store.Int64Value(cur+1))
				return nil
			},
		}
	}

	barrier := s.NewGate()
	insts := make([]*Instance, 2)
	for i := 0; i < 2; i++ {
		i := i
		insts[i] = m.NewInstance(mkTxn(), nil)
		s.Go(func() {
			if err := cc.RunInitial(insts[i]); err != nil {
				t.Errorf("RunInitial: %v", err)
			}
			if i == 0 {
				barrier.Wait() // both initials run before any final
			} else {
				barrier.Fire()
			}
			s.Sleep(time.Duration(i+1) * 10 * time.Millisecond)
			if err := cc.RunFinal(insts[i]); err != nil {
				t.Errorf("RunFinal: %v", err)
			}
		})
	}
	s.Wait()
	v, _ := m.Store.Get("x")
	if store.AsInt64(v) != 2 {
		t.Errorf("x = %d, want 2 (merge function must repair the anomaly)", store.AsInt64(v))
	}
}

func TestMSSRNoWaitAborts(t *testing.T) {
	s := vclock.NewSim()
	m := newTestManager(s)
	cc := &MSSR{M: m, Policy: NoWait}
	body := &Txn{
		Name:      "w",
		InitialRW: RWSet{Writes: []string{"hot"}},
		FinalRW:   RWSet{},
		Initial:   func(c *Ctx) error { c.Put("hot", nil); return nil },
		Final:     func(c *Ctx) error { return nil },
	}
	first := m.NewInstance(body, nil)
	second := m.NewInstance(body, nil)
	s.Run(func() {
		if err := cc.RunInitial(first); err != nil {
			t.Fatalf("first RunInitial: %v", err)
		}
		// first still holds the lock (until its final commits).
		if err := cc.RunInitial(second); !errors.Is(err, ErrAborted) {
			t.Fatalf("second RunInitial = %v, want ErrAborted", err)
		}
		if second.State() != StateAborted {
			t.Errorf("second state = %v", second.State())
		}
		if err := cc.RunFinal(first); err != nil {
			t.Fatalf("first RunFinal: %v", err)
		}
		// Lock released: a third attempt succeeds.
		third := m.NewInstance(body, nil)
		if err := cc.RunInitial(third); err != nil {
			t.Fatalf("third RunInitial after release: %v", err)
		}
		if err := cc.RunFinal(third); err != nil {
			t.Fatalf("third RunFinal: %v", err)
		}
	})
	if st := m.Stats(); st.Aborts != 1 {
		t.Errorf("aborts = %d, want 1", st.Aborts)
	}
}

// TestMSSRFinalLocksAcquiredBeforeInitialCommit: under NoWait, a conflict on
// a key only the FINAL section uses must abort the initial section — the
// defining cost of Algorithm 1.
func TestMSSRFinalLocksAcquiredBeforeInitialCommit(t *testing.T) {
	s := vclock.NewSim()
	m := newTestManager(s)
	cc := &MSSR{M: m, Policy: NoWait}
	blocker := m.NewInstance(&Txn{
		Name:      "blocker",
		InitialRW: RWSet{Writes: []string{"finalkey"}},
		FinalRW:   RWSet{},
		Initial:   func(c *Ctx) error { return nil },
		Final:     func(c *Ctx) error { return nil },
	}, nil)
	victim := m.NewInstance(&Txn{
		Name:      "victim",
		InitialRW: RWSet{Reads: []string{"other"}},
		FinalRW:   RWSet{Writes: []string{"finalkey"}},
		Initial:   func(c *Ctx) error { return nil },
		Final:     func(c *Ctx) error { c.Put("finalkey", nil); return nil },
	}, nil)
	s.Run(func() {
		if err := cc.RunInitial(blocker); err != nil {
			t.Fatalf("blocker: %v", err)
		}
		if err := cc.RunInitial(victim); !errors.Is(err, ErrAborted) {
			t.Fatalf("victim = %v, want ErrAborted on final-section lock", err)
		}
	})
}

func TestMSSRUpgradeKeyInBothSections(t *testing.T) {
	// A key read by the initial section and written by the final section
	// must be locked exclusively from the start and released exactly once.
	s := vclock.NewSim()
	m := newTestManager(s)
	cc := &MSSR{M: m, Policy: NoWait}
	tx := &Txn{
		Name:      "upgrade",
		InitialRW: RWSet{Reads: []string{"k"}},
		FinalRW:   RWSet{Writes: []string{"k"}},
		Initial:   func(c *Ctx) error { c.Get("k"); return nil },
		Final:     func(c *Ctx) error { c.Put("k", nil); return nil },
	}
	s.Run(func() {
		for i := 0; i < 3; i++ {
			inst := m.NewInstance(tx, nil)
			if err := cc.RunInitial(inst); err != nil {
				t.Fatalf("iteration %d RunInitial: %v", i, err)
			}
			if err := cc.RunFinal(inst); err != nil {
				t.Fatalf("iteration %d RunFinal: %v", i, err)
			}
		}
	})
}

func TestInitialSectionErrorAborts(t *testing.T) {
	s := vclock.NewSim()
	m := newTestManager(s)
	boom := errors.New("boom")
	for _, cc := range []CC{&MSIA{M: m}, &MSSR{M: m, Policy: Wait}} {
		inst := m.NewInstance(&Txn{
			Name:      "failing",
			InitialRW: RWSet{Writes: []string{"k"}},
			FinalRW:   RWSet{},
			Initial:   func(c *Ctx) error { return boom },
			Final:     func(c *Ctx) error { return nil },
		}, nil)
		s.Run(func() {
			if err := cc.RunInitial(inst); !errors.Is(err, boom) {
				t.Errorf("%s: err = %v, want boom", cc.Name(), err)
			}
		})
		if inst.State() != StateAborted {
			t.Errorf("%s: state = %v", cc.Name(), inst.State())
		}
		// Locks must be free afterwards.
		if !m.Locks.TryAcquire(9999, "k", lock.Exclusive) {
			t.Errorf("%s: lock leaked after abort", cc.Name())
		}
		m.Locks.Release(9999, "k")
	}
}

func TestStrictRWSetEnforcement(t *testing.T) {
	s := vclock.NewSim()
	m := newTestManager(s)
	cc := &MSIA{M: m}
	inst := m.NewInstance(&Txn{
		Name:      "rogue",
		InitialRW: RWSet{Reads: []string{"a"}},
		FinalRW:   RWSet{},
		Initial:   func(c *Ctx) error { c.Put("undeclared", nil); return nil },
		Final:     func(c *Ctx) error { return nil },
	}, nil)
	s.Run(func() {
		defer func() {
			if recover() == nil {
				t.Error("undeclared write did not panic under Strict")
			}
		}()
		cc.RunInitial(inst)
	})
}

func TestWriteDeclaredKeyAllowsRead(t *testing.T) {
	// A key in Writes is implicitly readable (canRead falls through).
	s := vclock.NewSim()
	m := newTestManager(s)
	cc := &MSIA{M: m}
	inst := m.NewInstance(&Txn{
		Name:      "rw",
		InitialRW: RWSet{Writes: []string{"k"}},
		FinalRW:   RWSet{},
		Initial: func(c *Ctx) error {
			c.Get("k")
			c.Put("k", store.Int64Value(1))
			c.Delete("k")
			return nil
		},
		Final: func(c *Ctx) error { return nil },
	}, nil)
	s.Run(func() {
		if err := cc.RunInitial(inst); err != nil {
			t.Errorf("RunInitial: %v", err)
		}
	})
}

func TestHistoryOrdering(t *testing.T) {
	s := vclock.NewSim()
	m := newTestManager(s)
	cc := &MSSR{M: m, Policy: Wait}
	var firstID, secondID ID
	s.Go(func() {
		var captured int64
		inst := runInitialWaitDie(s, m, cc, func() *Txn { return incrementTxn(&captured) })
		firstID = inst.ID
		s.Sleep(50 * time.Millisecond)
		cc.RunFinal(inst)
	})
	s.Go(func() {
		s.Sleep(time.Millisecond) // the first transaction initial-commits first
		var captured int64
		inst := runInitialWaitDie(s, m, cc, func() *Txn { return incrementTxn(&captured) })
		secondID = inst.ID
		s.Sleep(50 * time.Millisecond)
		cc.RunFinal(inst)
	})
	s.Wait()
	// MS-SR on conflicting increments: the first transaction's final must
	// commit before the second's initial (guarantee (b): sf_k conflicts
	// with si_j ⇒ sf_k <h si_j). Wait-die restarts leave aborted initial
	// attempts out of the commit history.
	pos := map[string]int{}
	for i, e := range m.History() {
		pos[fmt.Sprintf("%d-%s", e.Txn, e.Stage)] = i
	}
	key := func(id ID, st Stage) string { return fmt.Sprintf("%d-%s", id, st) }
	if !(pos[key(firstID, StageInitial)] < pos[key(firstID, StageFinal)] &&
		pos[key(firstID, StageFinal)] < pos[key(secondID, StageInitial)] &&
		pos[key(secondID, StageInitial)] < pos[key(secondID, StageFinal)]) {
		t.Errorf("MS-SR ordering violated: first=%d second=%d history=%v", firstID, secondID, m.History())
	}
}
