package txn

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"croesus/internal/store"
	"croesus/internal/vclock"
	"croesus/internal/workload"
)

func opsTxn(name string, body []workload.Op) *Txn {
	var rw RWSet
	for _, op := range body {
		if op.Kind == workload.OpInsert {
			rw.Writes = append(rw.Writes, op.Key)
		} else {
			rw.Reads = append(rw.Reads, op.Key)
		}
	}
	run := func(c *Ctx) error {
		for _, op := range body {
			if op.Kind == workload.OpInsert {
				v, _ := c.Get(op.Key)
				c.Put(op.Key, store.Int64Value(store.AsInt64(v)+1))
			} else {
				c.Get(op.Key)
			}
		}
		return nil
	}
	return &Txn{Name: name, InitialRW: rw, FinalRW: RWSet{}, Initial: run, Final: func(c *Ctx) error { return nil }}
}

// opsTxnSlow is opsTxn with a little virtual execution time inside the
// section, so concurrently running conflicting transactions actually
// overlap in simulated time.
func opsTxnSlow(clk vclock.Clock, name string, body []workload.Op) *Txn {
	tx := opsTxn(name, body)
	inner := tx.Initial
	tx.Initial = func(c *Ctx) error {
		clk.Sleep(2 * time.Millisecond)
		return inner(c)
	}
	return tx
}

func TestWavesConflictFree(t *testing.T) {
	s := vclock.NewSim()
	m := newTestManager(s)
	rng := rand.New(rand.NewSource(5))
	var insts []*Instance
	for i := 0; i < 40; i++ {
		body := workload.UpdateOps(rng, "hot", 20, 5)
		insts = append(insts, m.NewInstance(opsTxn("t", body), nil))
	}
	waves := Waves(insts, StageInitial)
	total := 0
	for _, wave := range waves {
		total += len(wave)
		// Within a wave, no two instances conflict.
		for i := 0; i < len(wave); i++ {
			for j := i + 1; j < len(wave); j++ {
				a, b := footprintOf(wave[i], StageInitial), footprintOf(wave[j], StageInitial)
				if a.conflicts(b) {
					t.Fatalf("wave contains conflicting instances %d and %d", i, j)
				}
			}
		}
	}
	if total != len(insts) {
		t.Fatalf("waves cover %d of %d instances", total, len(insts))
	}
	if len(waves) < 2 {
		t.Errorf("expected multiple waves for a 20-key hot spot, got %d", len(waves))
	}
}

// TestSequencerZeroAbortsAndZeroWaits is the mechanism behind Figure 6(b)'s
// MS-IA line: a hot-spot batch run through the sequencer completes without
// aborts and — because conflicting transactions never overlap — without a
// single lock wait.
func TestSequencerZeroAbortsAndZeroWaits(t *testing.T) {
	s := vclock.NewSim()
	m := newTestManager(s)
	seq := &Sequencer{CC: &MSIA{M: m}, Clk: s}
	rng := rand.New(rand.NewSource(6))
	var insts []*Instance
	for i := 0; i < 50; i++ {
		body := workload.UpdateOps(rng, "hot", 100, 5)
		insts = append(insts, m.NewInstance(opsTxnSlow(s, "hot", body), nil))
	}
	var errs []error
	s.Run(func() {
		errs = seq.RunInitialBatch(insts)
	})
	for i, err := range errs {
		if err != nil {
			t.Errorf("instance %d: %v", i, err)
		}
	}
	if st := m.Stats(); st.Aborts != 0 {
		t.Errorf("aborts = %d, want 0 under the sequencer", st.Aborts)
	}
	if n, _ := m.Locks.WaitStats(); n != 0 {
		t.Errorf("lock waits = %d, want 0 (conflicting txns must not overlap)", n)
	}
}

// TestUnsequencedContentionWaits is the contrast case: the same hot-spot
// batch run fully concurrently does queue on locks.
func TestUnsequencedContentionWaits(t *testing.T) {
	s := vclock.NewSim()
	m := newTestManager(s)
	cc := &MSIA{M: m}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 50; i++ {
		body := workload.UpdateOps(rng, "hot", 20, 5)
		inst := m.NewInstance(opsTxnSlow(s, "hot", body), nil)
		s.Go(func() {
			if err := cc.RunInitial(inst); err != nil {
				t.Errorf("initial: %v", err)
			}
		})
	}
	s.Wait()
	if n, _ := m.Locks.WaitStats(); n == 0 {
		t.Error("expected lock waits under unsequenced hot-spot contention")
	}
	if st := m.Stats(); st.Aborts != 0 {
		t.Errorf("aborts = %d, want 0 (MS-IA blocks, never aborts)", st.Aborts)
	}
}

func TestSequencerPreservesEffects(t *testing.T) {
	// Sum of increments must equal total ops regardless of wave layout.
	s := vclock.NewSim()
	m := newTestManager(s)
	seq := &Sequencer{CC: &MSIA{M: m}, Clk: s}
	rng := rand.New(rand.NewSource(7))
	const n, opsPer = 30, 5
	var insts []*Instance
	for i := 0; i < n; i++ {
		body := workload.UpdateOps(rng, "k", 10, opsPer)
		insts = append(insts, m.NewInstance(opsTxn("inc", body), nil))
	}
	s.Run(func() {
		for _, err := range seq.RunInitialBatch(insts) {
			if err != nil {
				t.Errorf("unexpected error: %v", err)
			}
		}
	})
	var sum int64
	for _, k := range m.Store.Keys("k:") {
		v, _ := m.Store.Get(k)
		sum += store.AsInt64(v)
	}
	if sum != n*opsPer {
		t.Errorf("total increments = %d, want %d", sum, n*opsPer)
	}
}

func TestSequencerRunsFinals(t *testing.T) {
	s := vclock.NewSim()
	m := newTestManager(s)
	seq := &Sequencer{CC: &MSIA{M: m}, Clk: s}
	tx := &Txn{
		Name:      "two-stage",
		InitialRW: RWSet{Writes: []string{"a"}},
		FinalRW:   RWSet{Writes: []string{"a"}},
		Initial:   func(c *Ctx) error { c.Put("a", store.Int64Value(1)); return nil },
		Final:     func(c *Ctx) error { c.Put("a", store.Int64Value(2)); return nil },
	}
	insts := []*Instance{m.NewInstance(tx, nil), m.NewInstance(tx, nil)}
	s.Run(func() {
		for _, err := range seq.RunInitialBatch(insts) {
			if err != nil {
				t.Fatalf("initial: %v", err)
			}
		}
		for _, err := range seq.RunFinalBatch(insts) {
			if err != nil {
				t.Fatalf("final: %v", err)
			}
		}
	})
	for _, in := range insts {
		if in.State() != StateFinalCommitted {
			t.Errorf("state = %v", in.State())
		}
	}
	v, _ := m.Store.Get("a")
	if store.AsInt64(v) != 2 {
		t.Errorf("a = %d", store.AsInt64(v))
	}
}

func TestSequencerReportsBodyErrors(t *testing.T) {
	s := vclock.NewSim()
	m := newTestManager(s)
	seq := &Sequencer{CC: &MSIA{M: m}, Clk: s}
	boom := errors.New("boom")
	bad := m.NewInstance(&Txn{
		Name: "bad", InitialRW: RWSet{}, FinalRW: RWSet{},
		Initial: func(c *Ctx) error { return boom },
		Final:   func(c *Ctx) error { return nil },
	}, nil)
	good := m.NewInstance(&Txn{
		Name: "good", InitialRW: RWSet{}, FinalRW: RWSet{},
		Initial: func(c *Ctx) error { return nil },
		Final:   func(c *Ctx) error { return nil },
	}, nil)
	var errs []error
	s.Run(func() {
		errs = seq.RunInitialBatch([]*Instance{bad, good})
	})
	if !errors.Is(errs[0], boom) {
		t.Errorf("errs[0] = %v", errs[0])
	}
	if errs[1] != nil {
		t.Errorf("errs[1] = %v", errs[1])
	}
}

// Property: for any random batch, Waves partitions all instances and every
// wave is internally conflict-free.
func TestWavesPartitionProperty(t *testing.T) {
	s := vclock.NewSim()
	m := newTestManager(s)
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%40) + 1
		rng := rand.New(rand.NewSource(seed))
		var insts []*Instance
		for i := 0; i < n; i++ {
			body := workload.UpdateOps(rng, "p", 8, 3)
			insts = append(insts, m.NewInstance(opsTxn("p", body), nil))
		}
		waves := Waves(insts, StageInitial)
		seen := map[ID]bool{}
		for _, wave := range waves {
			for i := 0; i < len(wave); i++ {
				if seen[wave[i].ID] {
					return false
				}
				seen[wave[i].ID] = true
				for j := i + 1; j < len(wave); j++ {
					if footprintOf(wave[i], StageInitial).conflicts(footprintOf(wave[j], StageInitial)) {
						return false
					}
				}
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
