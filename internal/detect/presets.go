package detect

import (
	"fmt"
	"time"

	"croesus/internal/video"
)

// defaultConfusion lists plausible mislabels among the classes that appear
// in the evaluation videos.
var defaultConfusion = map[string][]string{
	"dog":      {"cat", "sheep"},
	"person":   {"mannequin", "statue"},
	"car":      {"truck", "van"},
	"truck":    {"car", "bus"},
	"bus":      {"truck", "car"},
	"bicycle":  {"motorbike"},
	"airplane": {"bird", "helicopter"},
	"backpack": {"handbag"},
}

// TinyYOLOSim returns the edge model: fast (≈200 ms on the reference
// machine, as the paper measures for Tiny YOLOv3 on a t3a.xlarge) but with
// difficulty-sensitive recall and a wide mislabel band. On an easy video
// (airport) it is nearly as good as the cloud model; on a hard one (mall)
// its F-score collapses — reproducing the v1..v4 spread in Table 1.
func TinyYOLOSim(seed int64) *SimModel {
	return NewSim(SimParams{
		ModelName:        "tiny-yolov3-sim",
		Seed:             seed,
		BaseLatency:      185 * time.Millisecond,
		PerObjectLatency: 3 * time.Millisecond,
		RecallBase:       1.02,
		RecallSlope:      0.80,
		MislabelBase:     0.04,
		MislabelSlope:    0.72,
		FalsePosPerFrame: 1.0,
		BoxJitter:        0.06,
		ConfCorrect:      ConfDist{Mean: 0.84, Std: 0.08},
		ConfWrong:        ConfDist{Mean: 0.55, Std: 0.06},
		ConfFalse:        ConfDist{Mean: 0.22, Std: 0.09},
		DifficultyDrag:   0.35,
		Confusion:        defaultConfusion,
	})
}

// YOLOSize selects one of the cloud model variants of Table 2.
type YOLOSize int

// Cloud model input resolutions evaluated in the paper.
const (
	YOLO320 YOLOSize = 320
	YOLO416 YOLOSize = 416
	YOLO608 YOLOSize = 608
)

// yoloLatency holds the detection latencies the paper reports in Table 2
// (0.70 s, 1.12 s, 2.34 s) for the reference cloud machine.
var yoloLatency = map[YOLOSize]time.Duration{
	YOLO320: 700 * time.Millisecond,
	YOLO416: 1120 * time.Millisecond,
	YOLO608: 2340 * time.Millisecond,
}

// YOLOv3Sim returns a cloud model. The paper treats YOLOv3 output as ground
// truth, so the cloud models are near-oracles whose main distinguishing
// property is inference latency; the smaller variants shave recall on the
// very hardest objects, which nudges the optimal thresholds around exactly
// as Table 2 observes.
func YOLOv3Sim(size YOLOSize, seed int64) *SimModel {
	lat, ok := yoloLatency[size]
	if !ok {
		panic(fmt.Sprintf("detect: unknown YOLOv3 size %d", size))
	}
	recallSlope := 0.0
	switch size {
	case YOLO320:
		recallSlope = 0.15
	case YOLO416:
		recallSlope = 0.05
	}
	return NewSim(SimParams{
		ModelName:        fmt.Sprintf("yolov3-%d-sim", size),
		Seed:             seed,
		BaseLatency:      lat,
		PerObjectLatency: 2 * time.Millisecond,
		RecallBase:       1.0,
		RecallSlope:      recallSlope,
		MislabelBase:     0,
		MislabelSlope:    0,
		FalsePosPerFrame: 0,
		BoxJitter:        0.01,
		ConfCorrect:      ConfDist{Mean: 0.93, Std: 0.04},
		DifficultyDrag:   0.05,
		Confusion:        defaultConfusion,
	})
}

// Oracle is a perfect, zero-latency detector — useful in tests.
type Oracle struct{}

// Name returns the model name.
func (Oracle) Name() string { return "oracle" }

// Detect reports every ground-truth object with confidence 1.
func (Oracle) Detect(f *video.Frame) Result {
	dets := make([]Detection, len(f.Objects))
	for i, o := range f.Objects {
		dets[i] = Detection{Label: o.Class, Confidence: 1, Box: o.Box, TrackID: o.TrackID}
	}
	return Result{Detections: dets}
}
