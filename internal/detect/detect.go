// Package detect provides the object-detection models used by Croesus.
//
// The paper runs Tiny YOLOv3 at the edge and YOLOv3-{320,416,608} at the
// cloud. This repository substitutes simulated models (no GPUs, no ONNX):
// a model turns a frame's ground-truth objects into detections through a
// per-object stochastic channel — miss, correct detection, or
// misclassification — plus background false positives, and assigns each
// detection a confidence drawn from an outcome-conditioned distribution.
// The joint (correctness, confidence) distribution is the property every
// Croesus experiment depends on: correct detections concentrate at high
// confidence, mislabels in the middle band, false positives at the bottom,
// which is exactly what makes the paper's (θL, θU) bandwidth thresholding
// meaningful.
//
// Detections are a pure function of (model seed, frame index, track ID), so
// different pipeline configurations observe identical detections for the
// same video — comparisons between baselines are exact, not sampled.
package detect

import (
	"math"
	"math/rand"
	"slices"
	"sort"
	"time"

	"croesus/internal/randsrc"
	"croesus/internal/video"
)

// Detection is one detected object.
type Detection struct {
	Label      string
	Confidence float64
	Box        video.Rect
	TrackID    int // 0 for false positives; otherwise ground-truth track hit
}

// Result is the outcome of running a model on one frame.
type Result struct {
	Detections []Detection
	// Latency is the model's inference time for this frame on a
	// reference (speed factor 1.0) machine. Nodes divide by their
	// machine speed before sleeping.
	Latency time.Duration
}

// Model is a detection model.
type Model interface {
	Name() string
	Detect(f *video.Frame) Result
}

// ConfDist is a truncated-normal confidence distribution.
type ConfDist struct {
	Mean, Std float64
}

func (c ConfDist) sample(rng *rand.Rand) float64 {
	v := c.Mean + rng.NormFloat64()*c.Std
	if v < 0.01 {
		v = 0.01
	}
	if v > 0.99 {
		v = 0.99
	}
	return v
}

// SimParams configures a simulated model.
type SimParams struct {
	ModelName string
	Seed      int64

	// Latency model: Base + PerObject * len(frame.Objects).
	BaseLatency      time.Duration
	PerObjectLatency time.Duration

	// Detection channel. An object of difficulty d is detected with
	// probability clamp(RecallBase - RecallSlope*d); a detected object is
	// mislabeled with probability clamp(MislabelBase + MislabelSlope*d).
	RecallBase    float64
	RecallSlope   float64
	MislabelBase  float64
	MislabelSlope float64

	// Mean number of spurious detections per frame (Poisson).
	FalsePosPerFrame float64

	// Box localization noise (fraction of box size).
	BoxJitter float64

	// Outcome-conditioned confidence. DifficultyDrag shifts correct-
	// detection confidence down as objects get harder, which couples
	// confidence with error probability.
	ConfCorrect    ConfDist
	ConfWrong      ConfDist
	ConfFalse      ConfDist
	DifficultyDrag float64

	// Confusion maps a true class to plausible wrong labels. When a class
	// is absent the model invents "background" mislabels.
	Confusion map[string][]string
}

// SimModel is a deterministic simulated detector.
type SimModel struct {
	p SimParams
	// fpLabels caches the sorted confusion keys randomLabel would rebuild
	// per false positive — the confusion map is fixed at construction.
	fpLabels []string
}

// NewSim returns a simulated model with the given parameters.
func NewSim(p SimParams) *SimModel {
	if p.ConfCorrect.Std == 0 {
		p.ConfCorrect = ConfDist{0.80, 0.10}
	}
	if p.ConfWrong.Std == 0 {
		p.ConfWrong = ConfDist{0.55, 0.07}
	}
	if p.ConfFalse.Std == 0 {
		p.ConfFalse = ConfDist{0.25, 0.10}
	}
	m := &SimModel{p: p}
	m.fpLabels = make([]string, 0, len(p.Confusion))
	for k := range p.Confusion {
		m.fpLabels = append(m.fpLabels, k)
	}
	sort.Strings(m.fpLabels)
	return m
}

// Name returns the model name.
func (m *SimModel) Name() string { return m.p.ModelName }

// Params returns a copy of the model's parameters.
func (m *SimModel) Params() SimParams { return m.p }

// frameRNG derives a deterministic RNG for (seed, frame index) using a
// splitmix64-style scramble, so detections don't depend on call order. The
// RNG is pooled and its seed expansion memoized (randsrc); the caller must
// Put it back when done.
func frameRNG(seed int64, frameIdx int) *randsrc.R {
	return randsrc.Get(int64(scramble(uint64(seed) ^ (uint64(frameIdx)+1)*0x9E3779B97F4A7C15)))
}

func scramble(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// trackUniform returns a uniform value in [0,1) that is stable for a
// (model, track) pair across frames. Real CNN confusions are persistent —
// a network that mistakes one particular dog for a cat keeps doing so —
// and this is what makes correction feedback (package smoothing)
// worthwhile, exactly as the paper's §2.1 footnote describes.
func trackUniform(seed int64, trackID int, salt uint64) float64 {
	z := scramble(uint64(seed)*0x9E3779B97F4A7C15 ^ uint64(trackID)*0xD1B54A32D192ED03 ^ salt)
	return float64(z>>11) / float64(1<<53)
}

// Detect runs the simulated model over one frame.
func (m *SimModel) Detect(f *video.Frame) Result {
	p := m.p
	fr := frameRNG(p.Seed, f.Index)
	defer fr.Put()
	rng := fr.Rand

	dets := make([]Detection, 0, len(f.Objects)+2)
	for _, obj := range f.Objects {
		recall := clamp01(p.RecallBase - p.RecallSlope*obj.Difficulty)
		if rng.Float64() >= recall {
			continue // miss
		}
		box := jitterBox(obj.Box, p.BoxJitter, rng)
		// The mislabel decision and the confused class are stable per
		// track: object-level confusions persist across frames.
		mis := clamp01(p.MislabelBase + p.MislabelSlope*obj.Difficulty)
		if trackUniform(p.Seed, obj.TrackID, 0x1) < mis {
			classR := randsrc.Get(int64(scramble(uint64(p.Seed) ^ uint64(obj.TrackID)*0xA24BAED4963EE407)))
			label := confuse(obj.Class, p.Confusion, classR.Rand)
			classR.Put()
			dets = append(dets, Detection{
				Label:      label,
				Confidence: p.ConfWrong.sample(rng),
				Box:        box,
				TrackID:    obj.TrackID,
			})
			continue
		}
		cd := p.ConfCorrect
		cd.Mean -= p.DifficultyDrag * obj.Difficulty
		dets = append(dets, Detection{
			Label:      obj.Class,
			Confidence: cd.sample(rng),
			Box:        box,
			TrackID:    obj.TrackID,
		})
	}

	// Background false positives.
	for n := poisson(rng, p.FalsePosPerFrame); n > 0; n-- {
		s := 0.03 + rng.Float64()*0.1
		dets = append(dets, Detection{
			Label:      pickLabel(m.fpLabels, rng),
			Confidence: p.ConfFalse.sample(rng),
			Box:        video.Rect{X: rng.Float64() * (1 - s), Y: rng.Float64() * (1 - s), W: s, H: s}.Clamp(),
		})
	}

	// Stable presentation order: by confidence descending, then box.
	slices.SortFunc(dets, func(a, b Detection) int {
		if a.Confidence != b.Confidence {
			if a.Confidence > b.Confidence {
				return -1
			}
			return 1
		}
		if a.Box.X != b.Box.X {
			if a.Box.X < b.Box.X {
				return -1
			}
			return 1
		}
		return 0
	})

	return Result{
		Detections: dets,
		Latency:    p.BaseLatency + time.Duration(len(f.Objects))*p.PerObjectLatency,
	}
}

func jitterBox(b video.Rect, frac float64, rng *rand.Rand) video.Rect {
	if frac <= 0 {
		return b
	}
	b.X += rng.NormFloat64() * frac * b.W
	b.Y += rng.NormFloat64() * frac * b.H
	b.W *= 1 + rng.NormFloat64()*frac
	b.H *= 1 + rng.NormFloat64()*frac
	if b.W < 0.005 {
		b.W = 0.005
	}
	if b.H < 0.005 {
		b.H = 0.005
	}
	return b.Clamp()
}

func confuse(class string, confusion map[string][]string, rng *rand.Rand) string {
	if alts, ok := confusion[class]; ok && len(alts) > 0 {
		return alts[rng.Intn(len(alts))]
	}
	return class + "-lookalike"
}

func randomLabel(confusion map[string][]string, rng *rand.Rand) string {
	keys := make([]string, 0, len(confusion))
	for k := range confusion {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return pickLabel(keys, rng)
}

// pickLabel draws a false-positive label from the pre-sorted confusion
// keys, consuming exactly the randomness randomLabel would.
func pickLabel(sortedKeys []string, rng *rand.Rand) string {
	if len(sortedKeys) == 0 {
		return "clutter"
	}
	return sortedKeys[rng.Intn(len(sortedKeys))]
}

func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	// Knuth's method; means here are small (< 3).
	l := 1.0
	limit := math.Exp(-mean)
	k := 0
	for {
		l *= rng.Float64()
		if l <= limit {
			return k
		}
		k++
		if k > 50 {
			return k
		}
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
