package detect

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"croesus/internal/video"
)

func testFrame(difficulty float64, n int) *video.Frame {
	objs := make([]video.Object, n)
	for i := range objs {
		objs[i] = video.Object{
			TrackID:    i + 1,
			Class:      "person",
			Box:        video.Rect{X: float64(i) * 0.1, Y: 0.2, W: 0.08, H: 0.15}.Clamp(),
			Difficulty: difficulty,
		}
	}
	return &video.Frame{Index: 1, Width: 1280, Height: 720, SizeBytes: 100 << 10, Objects: objs}
}

func TestSimModelDeterminism(t *testing.T) {
	m := TinyYOLOSim(99)
	f := testFrame(0.5, 6)
	a := m.Detect(f)
	b := m.Detect(f)
	if len(a.Detections) != len(b.Detections) {
		t.Fatalf("detection counts differ: %d vs %d", len(a.Detections), len(b.Detections))
	}
	for i := range a.Detections {
		if a.Detections[i] != b.Detections[i] {
			t.Fatalf("detection %d differs between identical calls", i)
		}
	}
}

func TestSimModelFrameIndependence(t *testing.T) {
	// Detections on frame 5 must not depend on whether frame 4 was
	// processed first.
	m := TinyYOLOSim(7)
	f4, f5 := testFrame(0.4, 4), testFrame(0.4, 4)
	f4.Index, f5.Index = 4, 5
	first := m.Detect(f5)
	m.Detect(f4)
	second := m.Detect(f5)
	if len(first.Detections) != len(second.Detections) {
		t.Fatal("frame 5 detections depend on call order")
	}
	for i := range first.Detections {
		if first.Detections[i] != second.Detections[i] {
			t.Fatal("frame 5 detections depend on call order")
		}
	}
}

func TestEasyObjectsDetectedAccurately(t *testing.T) {
	m := TinyYOLOSim(1)
	correct, total := 0, 0
	for idx := 0; idx < 200; idx++ {
		f := testFrame(0.05, 5)
		f.Index = idx
		for _, d := range m.Detect(f).Detections {
			if d.TrackID == 0 {
				continue
			}
			total++
			if d.Label == "person" {
				correct++
			}
		}
	}
	if total < 800 {
		t.Errorf("easy objects: detected %d of 1000, want near-complete recall", total)
	}
	if frac := float64(correct) / float64(total); frac < 0.9 {
		t.Errorf("easy objects: label accuracy %.2f, want > 0.9", frac)
	}
}

func TestHardObjectsDegraded(t *testing.T) {
	m := TinyYOLOSim(1)
	detected, correct := 0, 0
	const frames, perFrame = 200, 5
	for idx := 0; idx < frames; idx++ {
		f := testFrame(0.85, perFrame)
		f.Index = idx
		for _, d := range m.Detect(f).Detections {
			if d.TrackID == 0 {
				continue
			}
			detected++
			if d.Label == "person" {
				correct++
			}
		}
	}
	recall := float64(detected) / float64(frames*perFrame)
	if recall > 0.7 {
		t.Errorf("hard objects: recall %.2f, want degraded (< 0.7)", recall)
	}
	if detected > 0 {
		if acc := float64(correct) / float64(detected); acc > 0.85 {
			t.Errorf("hard objects: label accuracy %.2f, want degraded", acc)
		}
	}
}

func TestConfidenceSeparation(t *testing.T) {
	// Mean confidence must order: correct > mislabel > false positive.
	// This ordering is what makes (θL, θU) thresholding work at all.
	m := TinyYOLOSim(3)
	var sums [3]float64
	var ns [3]int
	for idx := 0; idx < 300; idx++ {
		f := testFrame(0.5, 5)
		f.Index = idx
		for _, d := range m.Detect(f).Detections {
			switch {
			case d.TrackID == 0:
				sums[2] += d.Confidence
				ns[2]++
			case d.Label == "person":
				sums[0] += d.Confidence
				ns[0]++
			default:
				sums[1] += d.Confidence
				ns[1]++
			}
		}
	}
	for i, n := range ns {
		if n == 0 {
			t.Fatalf("outcome class %d never observed", i)
		}
	}
	correct, wrong, fp := sums[0]/float64(ns[0]), sums[1]/float64(ns[1]), sums[2]/float64(ns[2])
	if !(correct > wrong && wrong > fp) {
		t.Errorf("confidence ordering violated: correct=%.2f wrong=%.2f fp=%.2f", correct, wrong, fp)
	}
	if correct-wrong < 0.05 || wrong-fp < 0.05 {
		t.Errorf("confidence bands too close: correct=%.2f wrong=%.2f fp=%.2f", correct, wrong, fp)
	}
}

func TestCloudModelNearOracle(t *testing.T) {
	m := YOLOv3Sim(YOLO416, 2)
	misses, mislabels, total := 0, 0, 0
	for idx := 0; idx < 100; idx++ {
		f := testFrame(0.6, 5)
		f.Index = idx
		found := map[int]bool{}
		for _, d := range m.Detect(f).Detections {
			if d.TrackID != 0 {
				found[d.TrackID] = true
				if d.Label != "person" {
					mislabels++
				}
			}
		}
		for _, o := range f.Objects {
			total++
			if !found[o.TrackID] {
				misses++
			}
		}
	}
	if float64(misses)/float64(total) > 0.05 {
		t.Errorf("cloud model missed %d/%d objects, want near-oracle", misses, total)
	}
	if mislabels != 0 {
		t.Errorf("cloud model mislabeled %d objects, want 0", mislabels)
	}
}

func TestCloudLatencyOrdering(t *testing.T) {
	f := testFrame(0.3, 3)
	l320 := YOLOv3Sim(YOLO320, 1).Detect(f).Latency
	l416 := YOLOv3Sim(YOLO416, 1).Detect(f).Latency
	l608 := YOLOv3Sim(YOLO608, 1).Detect(f).Latency
	if !(l320 < l416 && l416 < l608) {
		t.Errorf("latency ordering violated: %v %v %v", l320, l416, l608)
	}
	edge := TinyYOLOSim(1).Detect(f).Latency
	if edge >= l320 {
		t.Errorf("edge latency %v not below smallest cloud latency %v", edge, l320)
	}
	if l416 < time.Second || l416 > 1300*time.Millisecond {
		t.Errorf("YOLOv3-416 latency %v out of the paper's ballpark (~1.12s)", l416)
	}
}

func TestOracle(t *testing.T) {
	f := testFrame(0.9, 4)
	r := Oracle{}.Detect(f)
	if len(r.Detections) != 4 {
		t.Fatalf("oracle returned %d detections, want 4", len(r.Detections))
	}
	for i, d := range r.Detections {
		if d.Label != "person" || d.Confidence != 1 {
			t.Errorf("oracle detection %d = %+v", i, d)
		}
	}
	if r.Latency != 0 {
		t.Errorf("oracle latency = %v, want 0", r.Latency)
	}
}

func TestUnknownYOLOSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown YOLO size")
		}
	}()
	YOLOv3Sim(YOLOSize(999), 1)
}

// Property: confidences are always within (0,1), boxes stay in-frame, and
// detections are sorted by descending confidence.
func TestDetectionInvariantsProperty(t *testing.T) {
	m := TinyYOLOSim(5)
	f := func(idx uint16, diffRaw uint8, n uint8) bool {
		diff := float64(diffRaw) / 255
		frame := testFrame(diff, int(n%10)+1)
		frame.Index = int(idx)
		r := m.Detect(frame)
		prev := math.Inf(1)
		for _, d := range r.Detections {
			if d.Confidence <= 0 || d.Confidence >= 1 {
				return false
			}
			if d.Confidence > prev {
				return false
			}
			prev = d.Confidence
			b := d.Box
			if b.X < 0 || b.Y < 0 || b.X+b.W > 1.0001 || b.Y+b.H > 1.0001 || b.Area() <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPoisson(t *testing.T) {
	fr := frameRNG(1, 1)
	defer fr.Put()
	rng := fr.Rand
	var sum int
	const n = 5000
	for i := 0; i < n; i++ {
		sum += poisson(rng, 1.5)
	}
	mean := float64(sum) / n
	if math.Abs(mean-1.5) > 0.15 {
		t.Errorf("poisson mean = %.3f, want ≈ 1.5", mean)
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Error("poisson of non-positive mean must be 0")
	}
}
