// Package node is the shared fleet-node assembly layer: the storage and
// transaction stack every Croesus edge runs, whatever transport delivers
// its frames. Both deployments build on it — internal/cluster assembles
// its (simulated or loopback-TCP) edge nodes here, and internal/tcpnet its
// real multi-process TCP edge servers — so protocol selection and the
// store/locks/manager wiring exist exactly once instead of being
// duplicated per deployment.
package node

import (
	"fmt"

	"croesus/internal/lock"
	"croesus/internal/store"
	"croesus/internal/txn"
	"croesus/internal/vclock"
)

// Protocol selects the multi-stage concurrency-control protocol an edge
// node runs its transactions under. The zero value is MS-IA, the paper's
// default.
type Protocol int

// Multi-stage protocols.
const (
	// MSIA is multi-stage invariant confluence with apologies: each
	// section locks (and commits) its own set; erroneous initial commits
	// are repaired by retraction cascades and apologies.
	MSIA Protocol = iota
	// MSSR is multi-stage serializability: both sections' locks are held
	// from the initial commit to the final commit, across the cloud round
	// trip, with one atomic commitment at the final.
	MSSR
)

func (p Protocol) String() string {
	if p == MSSR {
		return "MS-SR"
	}
	return "MS-IA"
}

// ParseProtocol reads the command-line spelling: "ms-ia" or "ms-sr".
func ParseProtocol(s string) (Protocol, error) {
	switch s {
	case "", "ms-ia":
		return MSIA, nil
	case "ms-sr":
		return MSSR, nil
	default:
		return MSIA, fmt.Errorf("node: unknown protocol %q (want ms-ia or ms-sr)", s)
	}
}

// Assembly is one standalone edge node's data stack: its store, lock
// manager, transaction manager, and the protocol's concurrency control.
// Sharded fleets replace Mgr/CC with fleet-wide machinery (twopc) but keep
// the same Store and Locks underneath.
type Assembly struct {
	Store *store.Store
	Locks *lock.Manager
	Mgr   *txn.Manager
	CC    txn.CC
}

// New assembles a fresh edge node on clk.
func New(clk vclock.Clock, p Protocol) *Assembly {
	return NewOver(clk, store.New(), lock.NewManager(clk), p)
}

// NewOver assembles an edge node over an existing store and lock manager —
// how the cluster runtime reuses the stores it pre-provisioned per edge.
func NewOver(clk vclock.Clock, st *store.Store, locks *lock.Manager, p Protocol) *Assembly {
	mgr := txn.NewManager(clk, st, locks)
	var cc txn.CC
	if p == MSSR {
		cc = &txn.MSSR{M: mgr, Policy: txn.Wait}
	} else {
		cc = &txn.MSIA{M: mgr}
	}
	return &Assembly{Store: st, Locks: locks, Mgr: mgr, CC: cc}
}
