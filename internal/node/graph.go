package node

import (
	"fmt"
	"sort"
	"strings"

	"croesus/internal/core"
	"croesus/internal/detect"
	"croesus/internal/txn"
)

// This file is the declarative face of the inference graph: the spec both
// deployments (cluster and tcpnet) and the scenario schema assemble
// core.Graph from. Validation lives here — with position-specific errors —
// so a bad graph is rejected identically whether it arrived from JSON, a
// flag, or Go code.

// Model names a graph node accepts. The empty string takes the tier
// default: tiny-yolo on edge, yolo-320 on peer, yolo-416 on cloud.
const (
	ModelTinyYOLO = "tiny-yolo"
	ModelYOLO320  = "yolo-320"
	ModelYOLO416  = "yolo-416"
	ModelYOLO608  = "yolo-608"
)

// SwitchBranchSpec routes to a strictly-later node (or "done") when the
// routing confidence falls inside [Lo, Hi].
type SwitchBranchSpec struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
	To string  `json:"to"`
}

// GraphNodeSpec declares one graph node. Name defaults to "n<index>".
type GraphNodeSpec struct {
	Name  string `json:"name,omitempty"`
	Tier  string `json:"tier"`
	Model string `json:"model,omitempty"`
	// Speed divides the node model's inference latency; 0 takes the
	// hosting machine's speed (edge speed for edge/peer tiers, cloud
	// speed for cloud).
	Speed  float64            `json:"speed,omitempty"`
	Switch []SwitchBranchSpec `json:"switch,omitempty"`
}

// GraphSpec declares an inference graph: an ordered node list where node k
// owns transaction section k. Routing is Sequence (fall through) unless a
// node declares Switch branches.
type GraphSpec struct {
	Nodes []GraphNodeSpec `json:"nodes"`
}

// nodeName resolves the display name of node k.
func (g *GraphSpec) nodeName(k int) string {
	if g.Nodes[k].Name != "" {
		return g.Nodes[k].Name
	}
	return fmt.Sprintf("n%d", k)
}

func defaultModel(tier txn.Tier) string {
	switch tier {
	case txn.TierCloud:
		return ModelYOLO416
	case txn.TierPeer:
		return ModelYOLO320
	default:
		return ModelTinyYOLO
	}
}

func buildModel(name string, seed int64) (detect.Model, error) {
	switch name {
	case ModelTinyYOLO:
		return detect.TinyYOLOSim(seed), nil
	case ModelYOLO320:
		return detect.YOLOv3Sim(detect.YOLO320, seed), nil
	case ModelYOLO416:
		return detect.YOLOv3Sim(detect.YOLO416, seed), nil
	case ModelYOLO608:
		return detect.YOLOv3Sim(detect.YOLO608, seed), nil
	default:
		return nil, fmt.Errorf("unknown model %q (want %s, %s, %s, or %s)",
			name, ModelTinyYOLO, ModelYOLO320, ModelYOLO416, ModelYOLO608)
	}
}

// Validate checks the graph against the fleet shape (nEdges edge nodes),
// reporting the first problem with its position. It rejects unknown tiers,
// unknown models, duplicate node names, routing cycles (a switch target
// that is not strictly later), and switches whose branches don't cover
// [0, 1].
func (g *GraphSpec) Validate(nEdges int) error {
	if len(g.Nodes) == 0 {
		return fmt.Errorf("graph: needs at least one node")
	}
	byName := make(map[string]int, len(g.Nodes))
	tiers := make([]txn.Tier, len(g.Nodes))
	for k := range g.Nodes {
		ns := &g.Nodes[k]
		name := g.nodeName(k)
		tier, err := txn.ParseTier(ns.Tier)
		if err != nil {
			return fmt.Errorf("graph: node %d (%q): unknown tier %q (want edge, peer, or cloud)", k, name, ns.Tier)
		}
		tiers[k] = tier
		if k == 0 && tier != txn.TierEdge {
			return fmt.Errorf("graph: node 0 (%q): first node must be on the edge tier, got %q", name, ns.Tier)
		}
		if tier == txn.TierPeer && nEdges < 2 {
			return fmt.Errorf("graph: node %d (%q): peer tier needs at least 2 edges in the fleet, got %d", k, name, nEdges)
		}
		if first, dup := byName[name]; dup {
			return fmt.Errorf("graph: node %d: duplicate node name %q (first used by node %d)", k, name, first)
		}
		byName[name] = k
		if name == core.DoneTarget {
			return fmt.Errorf("graph: node %d: %q is reserved for switch termination and cannot name a node", k, name)
		}
		if ns.Speed < 0 {
			return fmt.Errorf("graph: node %d (%q): speed must be ≥ 0, got %g", k, name, ns.Speed)
		}
		model := ns.Model
		if model == "" {
			model = defaultModel(tier)
		}
		if _, err := buildModel(model, 1); err != nil {
			return fmt.Errorf("graph: node %d (%q): %v", k, name, err)
		}
	}
	for k := range g.Nodes {
		if err := g.validateSwitch(k, byName); err != nil {
			return err
		}
	}
	return nil
}

// validateSwitch checks node k's branches: targets must be strictly later
// (the graph is a DAG walked left to right, so an earlier or same target is
// a cycle) or "done", ranges must be sane, and their union must cover
// [0, 1] so every confidence has a route.
func (g *GraphSpec) validateSwitch(k int, byName map[string]int) error {
	branches := g.Nodes[k].Switch
	if len(branches) == 0 {
		return nil
	}
	name := g.nodeName(k)
	for b, br := range branches {
		if br.Lo > br.Hi {
			return fmt.Errorf("graph: node %d (%q): switch branch %d has lo %.2f > hi %.2f", k, name, b, br.Lo, br.Hi)
		}
		if br.Lo < 0 || br.Hi > 1 {
			return fmt.Errorf("graph: node %d (%q): switch branch %d range [%.2f, %.2f] must lie in [0, 1]", k, name, b, br.Lo, br.Hi)
		}
		if br.To == core.DoneTarget {
			continue
		}
		to, ok := byName[br.To]
		if !ok {
			return fmt.Errorf("graph: node %d (%q): switch branch %d routes to unknown node %q", k, name, b, br.To)
		}
		if to <= k {
			return fmt.Errorf("graph: node %d (%q): switch branch %d routes to %q (node %d), which is not a later node — cycles are not allowed", k, name, b, br.To, to)
		}
	}
	// Coverage: sort by Lo and sweep; any gap leaves a confidence with no
	// route.
	sorted := append([]SwitchBranchSpec(nil), branches...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Lo < sorted[j].Lo })
	covered := 0.0
	const eps = 1e-9
	for _, br := range sorted {
		if br.Lo > covered+eps {
			return fmt.Errorf("graph: node %d (%q): switch branches leave [%.2f, %.2f) of the confidence range uncovered", k, name, covered, br.Lo)
		}
		if br.Hi > covered {
			covered = br.Hi
		}
	}
	if covered < 1-eps {
		return fmt.Errorf("graph: node %d (%q): switch branches leave [%.2f, 1.00] of the confidence range uncovered", k, name, covered)
	}
	return nil
}

// Canonical2Stage reports whether the graph is exactly the classic
// two-stage pipeline — a default edge node falling through to a default
// cloud node. Deployments route canonical graphs to the original two-stage
// executor, which is how an explicit depth-2 graph scenario is guaranteed
// byte-identical to one with no graph at all.
func (g *GraphSpec) Canonical2Stage() bool {
	if len(g.Nodes) != 2 {
		return false
	}
	for k, wantTier := range []string{"edge", "cloud"} {
		ns := &g.Nodes[k]
		if ns.Tier != wantTier || ns.Speed != 0 || len(ns.Switch) != 0 {
			return false
		}
		tier, _ := txn.ParseTier(wantTier)
		if ns.Model != "" && ns.Model != defaultModel(tier) {
			return false
		}
	}
	return true
}

// Compile resolves the spec into the executable core graph, with models
// seeded like the fleet's detectors. Call Validate first; Compile repeats
// it defensively.
func (g *GraphSpec) Compile(nEdges int, seed int64) (*core.Graph, error) {
	if err := g.Validate(nEdges); err != nil {
		return nil, err
	}
	out := &core.Graph{Nodes: make([]core.GraphNode, len(g.Nodes))}
	for k := range g.Nodes {
		ns := &g.Nodes[k]
		tier, _ := txn.ParseTier(ns.Tier)
		modelName := ns.Model
		if modelName == "" {
			modelName = defaultModel(tier)
		}
		model, err := buildModel(modelName, seed)
		if err != nil {
			return nil, fmt.Errorf("graph: node %d (%q): %v", k, g.nodeName(k), err)
		}
		node := core.GraphNode{
			Name:  g.nodeName(k),
			Tier:  tier,
			Model: model,
			Speed: ns.Speed,
		}
		for _, br := range ns.Switch {
			node.Switch = append(node.Switch, core.SwitchBranch{Lo: br.Lo, Hi: br.Hi, To: br.To})
		}
		out.Nodes[k] = node
	}
	return out, nil
}

// Plan renders the resolved section plan — one line per node with its
// tier, model, and routing — for croesus-cluster -validate.
func (g *GraphSpec) Plan() string {
	var b strings.Builder
	for k := range g.Nodes {
		ns := &g.Nodes[k]
		tier, err := txn.ParseTier(ns.Tier)
		tierName := ns.Tier
		if err == nil {
			tierName = tier.String()
		}
		model := ns.Model
		if model == "" && err == nil {
			model = defaultModel(tier)
		}
		fmt.Fprintf(&b, "  section %d: %-12s tier=%-5s model=%s", k, g.nodeName(k), tierName, model)
		if ns.Speed > 0 {
			fmt.Fprintf(&b, " speed=%.2f", ns.Speed)
		}
		switch {
		case len(ns.Switch) > 0:
			parts := make([]string, 0, len(ns.Switch))
			for _, br := range ns.Switch {
				parts = append(parts, fmt.Sprintf("[%.2f,%.2f]→%s", br.Lo, br.Hi, br.To))
			}
			fmt.Fprintf(&b, "  switch{%s}", strings.Join(parts, " "))
		case k+1 < len(g.Nodes):
			fmt.Fprintf(&b, "  → %s", g.nodeName(k+1))
		default:
			b.WriteString("  → done")
		}
		b.WriteByte('\n')
	}
	return b.String()
}
