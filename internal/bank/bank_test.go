package bank

import (
	"testing"

	"croesus/internal/detect"
	"croesus/internal/txn"
	"croesus/internal/video"
)

func mkTxn(name string) Factory {
	return func(d detect.Detection, aux *AuxEvent) *txn.Txn {
		return &txn.Txn{Name: name}
	}
}

func det(class string, x, y float64) detect.Detection {
	return detect.Detection{Label: class, Confidence: 0.9, Box: video.Rect{X: x, Y: y, W: 0.1, H: 0.1}}
}

func TestLabelTriggerFiresPerMatchingLabel(t *testing.T) {
	b := New()
	b.Register(Registration{
		Name:    "building-info",
		Trigger: Trigger{Classes: []string{"building"}},
		Make:    mkTxn("tbldng"),
	})
	labels := []detect.Detection{det("building", 0.1, 0.1), det("building", 0.6, 0.6), det("car", 0.3, 0.3)}
	inv := b.Match(labels, nil)
	if len(inv) != 2 {
		t.Fatalf("invocations = %d, want 2", len(inv))
	}
	for _, iv := range inv {
		if iv.Txn.Name != "tbldng" || iv.Label.Label != "building" {
			t.Errorf("unexpected invocation %+v", iv)
		}
	}
}

func TestClassFiltering(t *testing.T) {
	b := New()
	b.Register(Registration{
		Name:    "building-info",
		Trigger: Trigger{Classes: []string{"building"}},
		Make:    mkTxn("tbldng"),
	})
	// "University Shuttle 42" must not trigger tbldng (§3.3 example).
	inv := b.Match([]detect.Detection{det("shuttle", 0.2, 0.2)}, nil)
	if len(inv) != 0 {
		t.Fatalf("shuttle label triggered %d invocations", len(inv))
	}
}

func TestAuxCoupledTriggerPicksCenterMost(t *testing.T) {
	b := New()
	b.Register(Registration{
		Name:    "reserve-room",
		Trigger: Trigger{Classes: []string{"building"}, Aux: "click"},
		Make:    mkTxn("trsrv"),
	})
	labels := []detect.Detection{
		det("building", 0.05, 0.05), // far corner
		det("building", 0.44, 0.44), // nearly centered
	}
	// No click: nothing fires.
	if inv := b.Match(labels, nil); len(inv) != 0 {
		t.Fatalf("trigger fired without aux event: %d", len(inv))
	}
	inv := b.Match(labels, []AuxEvent{{Kind: "click"}})
	if len(inv) != 1 {
		t.Fatalf("invocations = %d, want 1", len(inv))
	}
	if inv[0].Label.Box.X != 0.44 {
		t.Errorf("picked label at %v, want the center-most", inv[0].Label.Box)
	}
	if inv[0].Aux == nil || inv[0].Aux.Kind != "click" {
		t.Error("aux event not attached")
	}
}

func TestAuxCoupledNoMatchingLabel(t *testing.T) {
	b := New()
	b.Register(Registration{
		Name:    "reserve-room",
		Trigger: Trigger{Classes: []string{"building"}, Aux: "click"},
		Make:    mkTxn("trsrv"),
	})
	inv := b.Match([]detect.Detection{det("car", 0.4, 0.4)}, []AuxEvent{{Kind: "click"}})
	if len(inv) != 0 {
		t.Fatalf("fired with no matching label: %d", len(inv))
	}
}

func TestAuxOnlyTrigger(t *testing.T) {
	b := New()
	b.Register(Registration{
		Name:    "menu",
		Trigger: Trigger{Aux: "menu-click", AuxOnly: true},
		Make:    mkTxn("tmenu"),
	})
	inv := b.Match(nil, []AuxEvent{{Kind: "menu-click"}, {Kind: "other"}})
	if len(inv) != 1 {
		t.Fatalf("invocations = %d, want 1", len(inv))
	}
	if inv[0].Label.Label != "" {
		t.Error("aux-only invocation carries a label")
	}
}

func TestEmptyClassesMatchesAnyLabel(t *testing.T) {
	b := New()
	b.Register(Registration{Name: "log-all", Trigger: Trigger{}, Make: mkTxn("tlog")})
	inv := b.Match([]detect.Detection{det("a", 0, 0), det("b", 0.2, 0.2)}, nil)
	if len(inv) != 2 {
		t.Fatalf("invocations = %d, want 2", len(inv))
	}
}

func TestMultipleRegistrations(t *testing.T) {
	b := New()
	b.Register(Registration{Name: "r1", Trigger: Trigger{Classes: []string{"dog"}}, Make: mkTxn("t1")})
	b.Register(Registration{Name: "r2", Trigger: Trigger{Classes: []string{"dog", "cat"}}, Make: mkTxn("t2")})
	inv := b.Match([]detect.Detection{det("dog", 0.5, 0.5)}, nil)
	if len(inv) != 2 {
		t.Fatalf("invocations = %d, want 2 (both registrations)", len(inv))
	}
	if len(b.Registrations()) != 2 {
		t.Error("Registrations() wrong length")
	}
}
