// Package bank implements the transactions bank of §3.3: a registry mapping
// classes of labels (and optional auxiliary-device inputs) to the
// transactions they trigger. The edge node consults the bank for every
// processed frame to decide which transactions' initial sections to run.
package bank

import (
	"sync"

	"croesus/internal/detect"
	"croesus/internal/txn"
)

// AuxEvent is an input from an auxiliary device (e.g., a click on a V/AR
// controller), matched against the most recent frame's labels.
type AuxEvent struct {
	Kind    string // e.g. "click", "menu"
	Payload any
}

// Trigger describes when a registered transaction fires.
type Trigger struct {
	// Classes lists label names that fire the trigger. Empty means "any
	// label" (for Aux-only triggers, no label is required at all when
	// AuxOnly is set).
	Classes []string
	// Aux, when non-empty, requires an auxiliary event of this kind in
	// addition to (or, with AuxOnly, instead of) a matching label.
	Aux string
	// AuxOnly fires on the aux event alone, independent of labels (e.g.,
	// a menu click that shows general user information).
	AuxOnly bool
}

// Factory instantiates a transaction for a firing trigger. For label-driven
// triggers the detection is the triggering label; for AuxOnly triggers it is
// the zero Detection.
type Factory func(d detect.Detection, aux *AuxEvent) *txn.Txn

// Registration is one row of the transactions bank.
type Registration struct {
	Name    string
	Trigger Trigger
	Make    Factory
}

// Invocation is a transaction the bank decided to trigger.
type Invocation struct {
	Registration *Registration
	Txn          *txn.Txn
	Label        detect.Detection // zero for aux-only invocations
	Aux          *AuxEvent
}

// Bank is the transactions bank. It is safe for concurrent use.
type Bank struct {
	mu   sync.RWMutex
	regs []*Registration
}

// New returns an empty bank.
func New() *Bank { return &Bank{} }

// Register adds a row to the bank.
func (b *Bank) Register(r Registration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	reg := r
	b.regs = append(b.regs, &reg)
}

// Registrations returns the registered rows.
func (b *Bank) Registrations() []*Registration {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return append([]*Registration{}, b.regs...)
}

func (t Trigger) matchesClass(class string) bool {
	if len(t.Classes) == 0 {
		return true
	}
	for _, c := range t.Classes {
		if c == class {
			return true
		}
	}
	return false
}

// Match returns the invocations for a frame's labels and pending auxiliary
// events. Label triggers fire once per matching label; aux-coupled triggers
// fire once per (event, matching label) pair, picking the label closest to
// the frame center when several match — the paper's rule for task 2 ("the
// initial section picks the label that is closest to the center of the
// frame").
func (b *Bank) Match(labels []detect.Detection, aux []AuxEvent) []Invocation {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var out []Invocation
	for _, reg := range b.regs {
		switch {
		case reg.Trigger.AuxOnly:
			for i := range aux {
				if aux[i].Kind != reg.Trigger.Aux {
					continue
				}
				ev := aux[i]
				out = append(out, Invocation{
					Registration: reg,
					Txn:          reg.Make(detect.Detection{}, &ev),
					Aux:          &ev,
				})
			}
		case reg.Trigger.Aux != "":
			for i := range aux {
				if aux[i].Kind != reg.Trigger.Aux {
					continue
				}
				best, ok := centerMost(labels, reg.Trigger)
				if !ok {
					continue
				}
				ev := aux[i]
				out = append(out, Invocation{
					Registration: reg,
					Txn:          reg.Make(best, &ev),
					Label:        best,
					Aux:          &ev,
				})
			}
		default:
			for _, d := range labels {
				if !reg.Trigger.matchesClass(d.Label) {
					continue
				}
				out = append(out, Invocation{
					Registration: reg,
					Txn:          reg.Make(d, nil),
					Label:        d,
				})
			}
		}
	}
	return out
}

// centerMost returns the matching label whose box center is nearest the
// frame center.
func centerMost(labels []detect.Detection, t Trigger) (detect.Detection, bool) {
	best := detect.Detection{}
	bestDist := 10.0
	found := false
	for _, d := range labels {
		if !t.matchesClass(d.Label) {
			continue
		}
		cx := d.Box.X + d.Box.W/2 - 0.5
		cy := d.Box.Y + d.Box.H/2 - 0.5
		dist := cx*cx + cy*cy
		if dist < bestDist {
			bestDist = dist
			best = d
			found = true
		}
	}
	return best, found
}
