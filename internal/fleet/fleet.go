package fleet

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"croesus/internal/cluster"
	"croesus/internal/netsim"
	"croesus/internal/obs/collect"
	"croesus/internal/scenario"
	"croesus/internal/transport"
	"croesus/internal/wire"
)

// Options configures a fleet run.
type Options struct {
	// BinDir holds the croesus-edge / croesus-cloud / croesus-client
	// binaries (spawn mode).
	BinDir string
	// WorkDir holds WALs, ready files, logs, reports, and traces
	// (default: a fresh temp dir).
	WorkDir string
	// TimeScale compresses modeled time on every process's wall clock
	// (0 or 1: full fidelity). All processes run the same scale, so
	// their traces stay alignable.
	TimeScale float64
	// Shaped applies the sim's modeled link parameters (latency +
	// bandwidth token bucket) to each edge's client and cloud paths.
	Shaped bool
	// Trace collects per-process span streams and merges them into one
	// aligned distributed trace in the result (spawn mode).
	Trace bool
	// FrameTimeout bounds one frame's wall wait at the client (default
	// 30s).
	FrameTimeout time.Duration
	Logf         func(format string, args ...any)
	// Attach connects to a pre-launched fleet instead of spawning
	// processes: cameras run in-process, crash events are rejected.
	Attach *Attach
}

// Attach names a pre-launched fleet's control and data addresses.
type Attach struct {
	// CloudControl is the cloud's control address ("" : no cloud).
	CloudControl string
	Edges        []AttachEdge
}

// AttachEdge is one pre-launched edge, in topology order.
type AttachEdge struct {
	ID      string
	Addr    string // data-plane address clients dial
	Control string
}

// Result is a fleet run's full outcome: the merged ClusterReport plus the
// raw per-process reports and the collected distributed trace.
type Result struct {
	Report  *cluster.ClusterReport
	Clients []ClientReport
	Edges   []EdgeReport
	Cloud   *CloudReport

	// DurabilityOK aggregates the per-edge WAL verify: every edge alive
	// at the end of the run replays to exactly its live store.
	DurabilityOK bool

	// Trace is the aligned multi-process trace (spawn mode with
	// Options.Trace); PrunedSpans counts orphans dropped because a
	// SIGKILLed process lost its span tail; Incidents is the offline
	// watchdog's verdict over the merged stream.
	Trace       *collect.Merged
	PrunedSpans int
	Incidents   []collect.Incident
	TraceFiles  []string
	WorkDir     string
}

// ValidateForFleet checks that a scenario can run on the multi-process
// fleet: standalone edge processes share no keyspace, so sharded
// scenarios (cross-edge transactions, 2PC crash points, peer-link
// faults) and inference graphs need the in-process deployments. attach
// additionally rejects crash events — there is no process to kill.
func ValidateForFleet(s *scenario.Scenario, attach bool) error {
	if err := s.Validate(); err != nil {
		return err
	}
	t := s.Topology
	if t.Sharded || t.CrossEdgeFraction > 0 || t.ZipfSkew > 0 {
		return fmt.Errorf("fleet: sharded keyspaces need the in-process deployments (sim or tcp) — standalone edge processes share no database")
	}
	if t.Graph != nil {
		return fmt.Errorf("fleet: inference graphs need the in-process deployments (sim or tcp)")
	}
	for _, ev := range s.Timeline {
		switch ev.Do {
		case scenario.KindTwoPCCrash:
			return fmt.Errorf("fleet: twopc_crash needs the in-process sharded fleet")
		case scenario.KindLinkFault:
			if ev.B != "cloud" {
				return fmt.Errorf("fleet: edge↔edge link faults need the in-process sharded fleet; fault the cloud uplink with b: \"cloud\"")
			}
		case scenario.KindEdgeCrash:
			if attach {
				return fmt.Errorf("fleet: edge_crash needs spawn mode — an attached fleet's processes are not the orchestrator's to kill")
			}
		}
	}
	return nil
}

// fleetEdge is one edge process (or attached server) under orchestration.
type fleetEdge struct {
	id       string
	addr     string // fixed data address (respawns rebind it)
	ctl      *ControlClient
	p        *proc // nil in attach mode
	respawn  func(addr string) (*proc, *ReadyInfo, error)
	trace    string
	sameSite bool
	retired  bool
	dark     bool // crashed, not (yet) respawned
}

// camHandle abstracts a running camera: an in-process CamStream (attach
// mode) or a croesus-client process (spawn mode).
type camHandle interface {
	id() string
	rate(mult float64) error
	redial(addr string) error
	stop()
	// wait blocks for the stream's end and returns its report; ok=false
	// means the report could not be recovered.
	wait(timeout time.Duration) (ClientReport, bool)
	traceFile() string
}

// fleetRun is the orchestrator's mutable state for one run.
type fleetRun struct {
	s    *scenario.Scenario
	o    Options
	ts   float64
	dir  string
	logf func(string, ...any)

	mu      sync.Mutex
	edges   []*fleetEdge
	byID    map[string]*fleetEdge
	cloud   *ControlClient
	cloudP  *proc
	cloudA  string // cloud data address
	cams    map[string]camHandle
	camEdge map[string]string // camera id → edge id
	camIdx  map[string]int
	camAll  []scenario.Camera
	rrNext  int // round-robin placement cursor
	crashes []crashRecord
	dyn     cluster.DynamicReport
	wg      sync.WaitGroup // respawn/heal timers
	start   time.Time
}

// scaled converts a modeled duration to wall time under the run's scale.
func (f *fleetRun) scaled(d time.Duration) time.Duration {
	if f.ts > 0 && f.ts != 1 {
		return time.Duration(float64(d) * f.ts)
	}
	return d
}

// Run deploys the scenario on real processes (or an attached fleet),
// plays its timeline, and collects the merged report.
func Run(s *scenario.Scenario, o Options) (*Result, error) {
	attach := o.Attach != nil
	if err := ValidateForFleet(s, attach); err != nil {
		return nil, err
	}
	ts := o.TimeScale
	if ts <= 0 {
		ts = 1
	}
	dir := o.WorkDir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "croesus-fleet-"); err != nil {
			return nil, err
		}
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	f := &fleetRun{
		s: s, o: o, ts: ts, dir: dir, logf: logf,
		byID:    map[string]*fleetEdge{},
		cams:    map[string]camHandle{},
		camEdge: map[string]string{},
	}
	var err error
	f.camAll, f.camIdx, err = s.Cameras()
	if err != nil {
		return nil, err
	}
	if attach {
		err = f.attachFleet()
	} else {
		err = f.spawnFleet()
	}
	if err != nil {
		f.teardown()
		return nil, err
	}
	res := f.play()
	f.teardown()
	return res, nil
}

// attachFleet dials the pre-launched fleet's control channels.
func (f *fleetRun) attachFleet() error {
	a := f.o.Attach
	if len(a.Edges) == 0 {
		return fmt.Errorf("fleet: attach needs at least one edge")
	}
	for _, ae := range a.Edges {
		ctl, err := DialControl(ae.Control)
		if err != nil {
			return fmt.Errorf("fleet: attach edge %s: %w", ae.ID, err)
		}
		fe := &fleetEdge{id: ae.ID, addr: ae.Addr, ctl: ctl}
		f.edges = append(f.edges, fe)
		f.byID[ae.ID] = fe
	}
	if a.CloudControl != "" {
		ctl, err := DialControl(a.CloudControl)
		if err != nil {
			return fmt.Errorf("fleet: attach cloud: %w", err)
		}
		f.cloud = ctl
	}
	return nil
}

// spawnFleet launches the cloud, then every edge, discovering addresses
// through ready files.
func (f *fleetRun) spawnFleet() error {
	t := f.s.Topology
	seed := f.s.Seed
	if seed == 0 {
		seed = 42
	}

	// Cloud first: the edges dial it at startup.
	{
		args := []string{
			"-addr", "127.0.0.1:0",
			"-seed", strconv.FormatInt(seed, 10),
			"-timescale", fmt.Sprintf("%g", f.ts),
			"-control", "127.0.0.1:0",
			"-ready-file", filepath.Join(f.dir, "cloud.ready"),
		}
		if b := t.Batcher; b.MaxBatch > 0 {
			args = append(args, "-batch", strconv.Itoa(b.MaxBatch))
		}
		if b := t.Batcher; b.SLO > 0 {
			args = append(args, "-slo", time.Duration(b.SLO).String())
		}
		if b := t.Batcher; b.MaxPending > 0 {
			args = append(args, "-pending", strconv.Itoa(b.MaxPending))
		}
		if b := t.Batcher; b.CloudSpeed > 0 {
			args = append(args, "-cloud-speed", fmt.Sprintf("%g", b.CloudSpeed))
		}
		trace := ""
		if f.o.Trace {
			trace = filepath.Join(f.dir, "trace-cloud.jsonl")
			args = append(args, "-trace", trace)
		}
		p, err := startProc("cloud", filepath.Join(f.o.BinDir, "croesus-cloud"), args, filepath.Join(f.dir, "cloud.log"))
		if err != nil {
			return err
		}
		f.cloudP = p
		info, err := waitReady(filepath.Join(f.dir, "cloud.ready"), 15*time.Second, p.alive)
		if err != nil {
			return err
		}
		f.cloudA = info.Addr
		if f.cloud, err = DialControl(info.Control); err != nil {
			return fmt.Errorf("fleet: cloud control: %w", err)
		}
		f.logf("fleet: cloud on %s (control %s)", info.Addr, info.Control)
	}

	for i, e := range t.Edges {
		fe := &fleetEdge{id: e.ID, sameSite: e.SameSite}
		if f.o.Trace {
			fe.trace = filepath.Join(f.dir, "trace-edge-"+e.ID+".jsonl")
		}
		e := e
		i := i
		fe.respawn = func(addr string) (*proc, *ReadyInfo, error) {
			ready := filepath.Join(f.dir, fmt.Sprintf("edge-%s.ready", e.ID))
			os.Remove(ready)
			args := []string{
				"-addr", addr,
				"-id", e.ID,
				"-cloud", f.cloudA,
				"-seed", strconv.FormatInt(seed, 10),
				"-timescale", fmt.Sprintf("%g", f.ts),
				"-control", "127.0.0.1:0",
				"-ready-file", ready,
				"-wal", filepath.Join(f.dir, fmt.Sprintf("edge-%s.wal", e.ID)),
				"-wal-nosync",
			}
			if t.ThetaL > 0 {
				args = append(args, "-thetal", fmt.Sprintf("%g", t.ThetaL))
			}
			if t.ThetaU > 0 {
				args = append(args, "-thetau", fmt.Sprintf("%g", t.ThetaU))
			}
			if t.OverlapMin > 0 {
				args = append(args, "-overlap", fmt.Sprintf("%g", t.OverlapMin))
			}
			if t.Protocol != "" {
				args = append(args, "-protocol", t.Protocol)
			}
			if e.Slots > 0 {
				args = append(args, "-slots", strconv.Itoa(e.Slots))
			}
			if t.WorkloadKeys > 0 {
				args = append(args, "-keys", strconv.Itoa(t.WorkloadKeys))
			}
			if f.o.Shaped {
				client, cloud := edgeLinkSpecs(e.SameSite)
				args = append(args, "-shape-client", client, "-shape-cloud", cloud)
			}
			if fe.trace != "" {
				args = append(args, "-trace", fe.trace)
			}
			p, err := startProc("edge-"+e.ID, filepath.Join(f.o.BinDir, "croesus-edge"), args,
				filepath.Join(f.dir, fmt.Sprintf("edge-%s.log", e.ID)))
			if err != nil {
				return nil, nil, err
			}
			info, err := waitReady(ready, 15*time.Second, p.alive)
			if err != nil {
				p.kill()
				return nil, nil, err
			}
			return p, info, nil
		}
		p, info, err := fe.respawn("127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("fleet: edge %s: %w", e.ID, err)
		}
		fe.p, fe.addr = p, info.Addr
		if fe.ctl, err = DialControl(info.Control); err != nil {
			return fmt.Errorf("fleet: edge %s control: %w", e.ID, err)
		}
		f.edges = append(f.edges, fe)
		f.byID[e.ID] = fe
		f.logf("fleet: edge %s (#%d) on %s (control %s)", e.ID, i, info.Addr, info.Control)
	}
	return nil
}

// edgeLinkSpecs renders the sim's modeled link parameters for one edge as
// -shape-client / -shape-cloud flag values.
func edgeLinkSpecs(sameSite bool) (client, cloud string) {
	cl := netsim.ClientEdgeLink()
	ec := netsim.EdgeCloudCrossCountry()
	if sameSite {
		ec = netsim.EdgeCloudSameSite()
	}
	return transport.FormatLinkSpec(cl), transport.FormatLinkSpec(ec)
}

// placeCamera picks the camera's edge: its pinned one, or round-robin
// over edges still accepting placements.
func (f *fleetRun) placeCamera(cam scenario.Camera) *fleetEdge {
	if cam.Edge != "" {
		return f.byID[cam.Edge]
	}
	for range f.edges {
		fe := f.edges[f.rrNext%len(f.edges)]
		f.rrNext++
		if !fe.retired {
			return fe
		}
	}
	return f.edges[0]
}

// startCamera launches one camera stream on its edge.
func (f *fleetRun) startCamera(cam scenario.Camera) error {
	fe := f.placeCamera(cam)
	prof, err := scenario.ProfileFor(cam.Profile)
	if err != nil {
		return err
	}
	seed := f.s.CameraSeed(cam, f.camIdx[cam.ID])
	frames := cam.Frames
	if frames <= 0 {
		frames = 100
	}
	var h camHandle
	if f.o.Attach != nil {
		h = startInprocCam(CamConfig{
			Camera: cam.ID, Edge: fe.addr, Profile: prof, Seed: seed,
			Frames: frames, TimeScale: f.ts, FrameTimeout: f.o.FrameTimeout,
			Logf: f.logf,
		})
	} else {
		h, err = f.startProcCam(cam.ID, fe.addr, prof.Name, seed, frames)
		if err != nil {
			return err
		}
	}
	f.mu.Lock()
	f.cams[cam.ID] = h
	f.camEdge[cam.ID] = fe.id
	f.mu.Unlock()
	return nil
}

// play brings up the cameras, walks the timeline at scaled wall time,
// waits for the streams to drain, and collects everything.
func (f *fleetRun) play() *Result {
	f.start = time.Now()

	// Topology cameras start at time zero.
	for _, cam := range f.s.Topology.Cameras {
		if err := f.startCamera(cam); err != nil {
			f.logf("fleet: camera %s: %v", cam.ID, err)
		}
	}

	// Periodic WAL checkpointing, when the scenario asks for it.
	stopTick := make(chan struct{})
	if every := time.Duration(f.s.Topology.CheckpointEvery); every > 0 {
		tick := time.NewTicker(f.scaled(every))
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					f.checkpoint("")
				case <-stopTick:
					return
				}
			}
		}()
	}

	for _, ev := range f.s.SortedTimeline() {
		wake := f.start.Add(f.scaled(time.Duration(ev.At)))
		if d := time.Until(wake); d > 0 {
			time.Sleep(d)
		}
		f.logf("fleet: t=%s %s", time.Duration(ev.At), ev.Label())
		f.exec(ev)
	}

	// Wait for every camera stream to finish.
	f.mu.Lock()
	handles := make([]camHandle, 0, len(f.cams))
	for _, h := range f.cams {
		handles = append(handles, h)
	}
	f.mu.Unlock()
	timeout := f.camDeadline()
	var clients []ClientReport
	for _, h := range handles {
		left := time.Until(timeout)
		if left < time.Second {
			left = time.Second
		}
		rep, ok := h.wait(left)
		if !ok {
			f.logf("fleet: camera %s: report not recovered", h.id())
			rep.Camera = h.id()
		}
		clients = append(clients, rep)
	}
	close(stopTick)
	f.wg.Wait() // respawns and heals still in flight

	elapsed := time.Since(f.start)

	// Final collection: durability verdict and report per live edge,
	// then the cloud.
	var edges []EdgeReport
	durableOK := true
	for _, fe := range f.edges {
		f.mu.Lock()
		dark := fe.dark
		ctl := fe.ctl
		f.mu.Unlock()
		if dark || ctl == nil {
			edges = append(edges, EdgeReport{Edge: fe.id, DurableErr: "edge down at end of run (not verified)"})
			continue
		}
		var er EdgeReport
		if err := ctl.CallJSON(wire.Control{Op: OpReport}, 0, &er); err != nil {
			f.logf("fleet: edge %s report: %v", fe.id, err)
			er.Edge = fe.id
		}
		var v struct {
			Records int `json:"records"`
		}
		if err := ctl.CallJSON(wire.Control{Op: OpVerify}, 30*time.Second, &v); err != nil {
			er.DurableOK = false
			er.DurableErr = err.Error()
			durableOK = false
		} else {
			er.DurableOK = true
			er.DurableRecords = v.Records
		}
		edges = append(edges, er)
	}
	var cloud *CloudReport
	if f.cloud != nil {
		var cr CloudReport
		if err := f.cloud.CallJSON(wire.Control{Op: OpReport}, 0, &cr); err != nil {
			f.logf("fleet: cloud report: %v", err)
		} else {
			cloud = &cr
		}
	}

	f.mu.Lock()
	crashes := append([]crashRecord{}, f.crashes...)
	dyn := f.dyn
	f.mu.Unlock()

	res := &Result{
		Clients:      clients,
		Edges:        edges,
		Cloud:        cloud,
		DurabilityOK: durableOK,
		WorkDir:      f.dir,
	}
	res.Report = mergeReport(elapsed, f.ts, clients, edges, cloud, crashes, dyn)
	res.Report.Transport = &cluster.TransportReport{Name: "fleet"}

	// Trace collection needs the processes' SIGTERM flush first.
	if f.o.Attach == nil {
		f.stopProcs()
		if f.o.Trace {
			f.collectTrace(res)
		}
	}
	return res
}

// camDeadline estimates the latest wall instant any camera can still be
// streaming: the longest stream at its base rate, plus the frame timeout.
func (f *fleetRun) camDeadline() time.Time {
	var longest time.Duration
	for _, cam := range f.camAll {
		prof, err := scenario.ProfileFor(cam.Profile)
		if err != nil {
			continue
		}
		frames := cam.Frames
		if frames <= 0 {
			frames = 100
		}
		if d := time.Duration(frames) * prof.FrameInterval(); d > longest {
			longest = d
		}
	}
	timeout := f.o.FrameTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	return f.start.Add(f.scaled(longest) + timeout + 15*time.Second)
}

// exec applies one timeline event to the live fleet.
func (f *fleetRun) exec(ev scenario.Event) {
	switch ev.Do {
	case scenario.KindCameraJoin:
		if err := f.startCamera(*ev.Join); err != nil {
			f.logf("fleet: %s: %v", ev.Label(), err)
			return
		}
		f.mu.Lock()
		f.dyn.Joins++
		f.mu.Unlock()
	case scenario.KindCameraLeave:
		f.mu.Lock()
		h := f.cams[ev.Camera]
		f.dyn.Leaves++
		f.mu.Unlock()
		if h != nil {
			h.stop()
		}
	case scenario.KindMigrateCamera:
		f.migrate(ev.Camera, ev.To)
	case scenario.KindWorkloadShift:
		if ev.Rate == nil {
			return // cross-edge/zipf shifts were rejected by validation
		}
		f.mu.Lock()
		var targets []camHandle
		if ev.Camera != "" {
			if h := f.cams[ev.Camera]; h != nil {
				targets = append(targets, h)
			}
		} else {
			for _, h := range f.cams {
				targets = append(targets, h)
			}
		}
		f.dyn.WorkloadShifts++
		f.mu.Unlock()
		for _, h := range targets {
			if err := h.rate(*ev.Rate); err != nil {
				f.logf("fleet: %s: %v", ev.Label(), err)
			}
		}
	case scenario.KindEdgeCrash:
		f.crash(ev)
	case scenario.KindEdgeRetire:
		f.retire(ev.Edge)
	case scenario.KindLinkFault:
		f.linkFault(ev)
	case scenario.KindCheckpoint:
		f.checkpoint(ev.Edge)
	}
}

// migrate points a camera at a new edge.
func (f *fleetRun) migrate(camID, to string) {
	f.mu.Lock()
	h := f.cams[camID]
	fe := f.byID[to]
	f.mu.Unlock()
	if h == nil || fe == nil {
		return
	}
	if err := h.redial(fe.addr); err != nil {
		f.logf("fleet: migrate %s→%s: %v", camID, to, err)
		f.mu.Lock()
		f.dyn.MigrationsFailed++
		f.mu.Unlock()
		return
	}
	f.mu.Lock()
	f.camEdge[camID] = to
	f.dyn.Migrations++
	f.mu.Unlock()
}

// crash SIGKILLs an edge process and, with restart_after, respawns it on
// the same data address and WAL so clients reconnect and the store
// replays.
func (f *fleetRun) crash(ev scenario.Event) {
	fe := f.byID[ev.Edge]
	if fe == nil || fe.p == nil {
		return
	}
	f.mu.Lock()
	fe.dark = true
	ctl := fe.ctl
	fe.ctl = nil
	f.dyn.EdgeOutages++
	f.mu.Unlock()
	if ctl != nil {
		ctl.Close()
	}
	killedAt := time.Now()
	fe.p.kill()
	f.logf("fleet: edge %s killed (SIGKILL)", fe.id)
	if ev.RestartAfter <= 0 {
		f.mu.Lock()
		f.crashes = append(f.crashes, crashRecord{edge: fe.id})
		f.mu.Unlock()
		return
	}
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		time.Sleep(f.scaled(time.Duration(ev.RestartAfter)))
		p, info, err := fe.respawn(fe.addr)
		if err != nil {
			f.logf("fleet: edge %s respawn: %v", fe.id, err)
			f.mu.Lock()
			f.crashes = append(f.crashes, crashRecord{edge: fe.id})
			f.mu.Unlock()
			return
		}
		ctl, err := DialControl(info.Control)
		if err != nil {
			f.logf("fleet: edge %s respawn control: %v", fe.id, err)
			return
		}
		var er EdgeReport
		replayed := 0
		if err := ctl.CallJSON(wire.Control{Op: OpReport}, 0, &er); err == nil {
			replayed = er.WALReplayed
		}
		f.mu.Lock()
		fe.p = p
		fe.ctl = ctl
		fe.dark = false
		f.dyn.OutageRestores++
		f.crashes = append(f.crashes, crashRecord{
			edge: fe.id, downFor: time.Since(killedAt), replayed: replayed,
		})
		f.mu.Unlock()
		f.logf("fleet: edge %s respawned on %s, %d WAL records replayed", fe.id, info.Addr, replayed)
	}()
}

// retire drains an edge and migrates its cameras to the remaining edges
// in index order — the planned counterpart of a crash.
func (f *fleetRun) retire(edgeID string) {
	fe := f.byID[edgeID]
	if fe == nil {
		return
	}
	f.mu.Lock()
	fe.retired = true
	ctl := fe.ctl
	var moving []string
	for cam, eid := range f.camEdge {
		if eid == edgeID {
			moving = append(moving, cam)
		}
	}
	var dests []*fleetEdge
	for _, other := range f.edges {
		if !other.retired && !other.dark {
			dests = append(dests, other)
		}
	}
	f.dyn.Retired++
	f.mu.Unlock()
	if ctl != nil {
		if _, err := ctl.CallOK(wire.Control{Op: OpDrain}, 0); err != nil {
			f.logf("fleet: retire %s drain: %v", edgeID, err)
		}
	}
	for i, cam := range moving {
		if len(dests) == 0 {
			break
		}
		f.migrate(cam, dests[i%len(dests)].id)
	}
}

// linkFault blackholes an edge's modeled cloud path until heal.
func (f *fleetRun) linkFault(ev scenario.Event) {
	fe := f.byID[ev.A]
	if fe == nil {
		return
	}
	set := func(down bool) {
		f.mu.Lock()
		ctl := fe.ctl
		f.mu.Unlock()
		if ctl == nil {
			return
		}
		if _, err := ctl.CallOK(wire.Control{Op: OpLink, Path: "cloud", Down: down}, 0); err != nil {
			f.logf("fleet: link %s↔cloud down=%v: %v", ev.A, down, err)
		}
	}
	set(true)
	f.mu.Lock()
	f.dyn.CloudLinkOutages++
	f.mu.Unlock()
	if ev.Heal > ev.At {
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			time.Sleep(f.scaled(time.Duration(ev.Heal - ev.At)))
			set(false)
		}()
	}
}

// checkpoint compacts one edge's WAL (or every live edge's).
func (f *fleetRun) checkpoint(edgeID string) {
	for _, fe := range f.edges {
		if edgeID != "" && fe.id != edgeID {
			continue
		}
		f.mu.Lock()
		ctl := fe.ctl
		dark := fe.dark
		f.mu.Unlock()
		if dark || ctl == nil {
			continue
		}
		if _, err := ctl.CallOK(wire.Control{Op: OpCheckpoint}, 30*time.Second); err != nil {
			f.logf("fleet: checkpoint %s: %v", fe.id, err)
		}
	}
}

// stopProcs gracefully stops every spawned process (SIGTERM: reports and
// traces flush) — the clients first, then the edges, then the cloud.
func (f *fleetRun) stopProcs() {
	for _, fe := range f.edges {
		f.mu.Lock()
		p := fe.p
		dark := fe.dark
		f.mu.Unlock()
		if p == nil || dark {
			continue
		}
		if err := p.term(10 * time.Second); err != nil {
			f.logf("fleet: %v", err)
		}
	}
	if f.cloudP != nil {
		if err := f.cloudP.term(10 * time.Second); err != nil {
			f.logf("fleet: %v", err)
		}
	}
}

// collectTrace reads every process's span stream, aligns the clocks,
// prunes span tails lost to SIGKILL, and runs the offline watchdog.
func (f *fleetRun) collectTrace(res *Result) {
	var streams []collect.Stream
	var files []string
	add := func(path string) {
		if path == "" {
			return
		}
		st, err := collect.ReadFile(path)
		if err != nil {
			f.logf("fleet: trace %s: %v", filepath.Base(path), err)
			return
		}
		if len(st.Spans) == 0 {
			return
		}
		streams = append(streams, st)
		files = append(files, path)
	}
	add(filepath.Join(f.dir, "trace-cloud.jsonl"))
	for _, fe := range f.edges {
		add(fe.trace)
	}
	f.mu.Lock()
	handles := make([]camHandle, 0, len(f.cams))
	for _, h := range f.cams {
		handles = append(handles, h)
	}
	f.mu.Unlock()
	for _, h := range handles {
		add(h.traceFile())
	}
	res.TraceFiles = files
	if len(streams) == 0 {
		return
	}
	m, err := collect.Merge(streams, collect.Options{})
	if err != nil {
		f.logf("fleet: trace merge: %v", err)
		return
	}
	var pruned int
	m.Spans, pruned = collect.PruneOrphans(m.Spans)
	res.Trace = m
	res.PrunedSpans = pruned
	w := collect.NewWatchdog(collect.WatchdogConfig{Tolerance: m.Tolerance()})
	for _, sp := range m.Spans {
		w.Feed(sp)
	}
	res.Incidents = w.Finish()
}

// teardown closes control connections and, in spawn mode, makes sure no
// process outlives the orchestrator.
func (f *fleetRun) teardown() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, fe := range f.edges {
		if fe.ctl != nil {
			fe.ctl.Close()
			fe.ctl = nil
		}
		if fe.p != nil && fe.p.alive() {
			fe.p.kill()
		}
	}
	if f.cloud != nil {
		f.cloud.Close()
		f.cloud = nil
	}
	if f.cloudP != nil && f.cloudP.alive() {
		f.cloudP.kill()
	}
	for _, h := range f.cams {
		h.stop()
	}
}

// Runner adapts Run to the scenario.Runner signature so a main package
// can register the multi-process fleet as a transport:
//
//	scenario.RegisterRunner("fleet", fleet.Runner(fleet.Options{BinDir: ...}))
//
// The scenario options contribute the time scale and shaping; base
// carries the process-level settings.
func Runner(base Options) scenario.Runner {
	return func(s *scenario.Scenario, o scenario.Options) (*cluster.ClusterReport, error) {
		opts := base
		opts.TimeScale = o.TimeScale
		if o.Shaped {
			opts.Shaped = true
		}
		res, err := Run(s, opts)
		if err != nil {
			return nil, err
		}
		return res.Report, nil
	}
}
