package fleet

import (
	"path/filepath"
	"testing"
	"time"

	"croesus/internal/core"
	"croesus/internal/detect"
	"croesus/internal/scenario"
	"croesus/internal/tcpnet"
	"croesus/internal/wire"
)

// testScale compresses modeled time 50× so the attach-mode run finishes
// in well under a second of wall time.
const testScale = 0.02

// TestControlRoundTrip exercises the control protocol end to end: dial,
// dispatch, op-specific JSON, unknown-op errors.
func TestControlRoundTrip(t *testing.T) {
	h := NewHandler("edge")
	h.On("echo", func(c wire.Control) (any, error) {
		return map[string]string{"path": c.Path}, nil
	})
	srv, err := ServeControl("127.0.0.1:0", h)
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer srv.Close()

	ctl, err := DialControl(srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer ctl.Close()

	var ping struct {
		Role string `json:"role"`
	}
	if err := ctl.CallJSON(wire.Control{Op: OpPing}, 0, &ping); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if ping.Role != "edge" {
		t.Errorf("ping role = %q, want edge", ping.Role)
	}
	var echo struct {
		Path string `json:"path"`
	}
	if err := ctl.CallJSON(wire.Control{Op: "echo", Path: "cloud"}, 0, &echo); err != nil {
		t.Fatalf("echo: %v", err)
	}
	if echo.Path != "cloud" {
		t.Errorf("echo path = %q, want cloud", echo.Path)
	}
	r, err := ctl.Call(wire.Control{Op: "no-such-op"}, 0)
	if err != nil {
		t.Fatalf("unknown op transport error: %v", err)
	}
	if r.OK || r.Err == "" {
		t.Errorf("unknown op should fail with a remote error, got ok=%v err=%q", r.OK, r.Err)
	}
}

// startAttachFleet stands up a real cloud and two real edges (each with a
// WAL and a control server — exactly what the binaries run), and returns
// the Attach descriptor plus a cleanup.
func startAttachFleet(t *testing.T) (*Attach, func()) {
	t.Helper()
	dir := t.TempDir()

	cloud, err := tcpnet.NewCloudServerWith(tcpnet.CloudConfig{
		Model:     detect.YOLOv3Sim(detect.YOLO416, 42),
		TimeScale: testScale,
	})
	if err != nil {
		t.Fatalf("cloud: %v", err)
	}
	cloudAddr, err := cloud.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("cloud listen: %v", err)
	}
	cloudCtl, err := ServeControl("127.0.0.1:0", CloudHandlers(cloud, nil))
	if err != nil {
		t.Fatalf("cloud control: %v", err)
	}

	var cleanups []func()
	cleanups = append(cleanups, func() { cloudCtl.Close(); cloud.Close() })
	attach := &Attach{CloudControl: cloudCtl.Addr()}
	for _, id := range []string{"e0", "e1"} {
		edge, err := tcpnet.NewEdgeServer(tcpnet.EdgeConfig{
			EdgeModel: detect.TinyYOLOSim(42),
			CloudAddr: cloudAddr,
			TimeScale: testScale,
			ThetaL:    0.4,
			ThetaU:    0.6,
			Source:    core.NewWorkloadSource(500, 7),
			WALPath:   filepath.Join(dir, "edge-"+id+".wal"),
			WALNoSync: true,
		})
		if err != nil {
			t.Fatalf("edge %s: %v", id, err)
		}
		addr, err := edge.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatalf("edge %s listen: %v", id, err)
		}
		ctl, err := ServeControl("127.0.0.1:0", EdgeHandlers(id, edge, nil))
		if err != nil {
			t.Fatalf("edge %s control: %v", id, err)
		}
		e, c := edge, ctl
		cleanups = append(cleanups, func() { c.Close(); e.Close() })
		attach.Edges = append(attach.Edges, AttachEdge{ID: id, Addr: addr, Control: ctl.Addr()})
	}
	return attach, func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}
}

// rate returns a pointer — timeline literals need one.
func rate(v float64) *float64 { return &v }

// TestFleetAttachTimeline runs a full scenario — workload shift,
// migration, cloud-link fault with heal, WAL checkpoint, camera leave —
// against real tcpnet servers through the orchestrator's attach mode,
// and checks the merged report and the durability verdict.
func TestFleetAttachTimeline(t *testing.T) {
	attach, cleanup := startAttachFleet(t)
	defer cleanup()

	s := &scenario.Scenario{
		Name: "fleet-attach",
		Topology: scenario.Topology{
			Edges: []scenario.Edge{{ID: "e0"}, {ID: "e1"}},
			Cameras: []scenario.Camera{
				{ID: "a", Profile: "park-dog", Edge: "e0", Frames: 12},
				{ID: "b", Profile: "street-vehicles", Edge: "e0", Frames: 12},
			},
		},
		Timeline: []scenario.Event{
			{At: scenario.Duration(500 * time.Millisecond), Do: scenario.KindWorkloadShift, Camera: "a", Rate: rate(2)},
			{At: scenario.Duration(1 * time.Second), Do: scenario.KindMigrateCamera, Camera: "a", To: "e1"},
			{At: scenario.Duration(1500 * time.Millisecond), Do: scenario.KindLinkFault, A: "e0", B: "cloud",
				Heal: scenario.Duration(2500 * time.Millisecond)},
			{At: scenario.Duration(2 * time.Second), Do: scenario.KindCheckpoint},
			{At: scenario.Duration(3 * time.Second), Do: scenario.KindCameraLeave, Camera: "b"},
		},
	}
	res, err := Run(s, Options{
		TimeScale:    testScale,
		FrameTimeout: 10 * time.Second,
		Attach:       attach,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	r := res.Report
	if r == nil {
		t.Fatal("no merged report")
	}
	if len(r.Cameras) != 2 {
		t.Fatalf("report has %d cameras, want 2", len(r.Cameras))
	}
	if r.Frames == 0 {
		t.Fatal("no frames completed")
	}
	if r.FinalP50 <= 0 {
		t.Error("final p50 latency is zero")
	}
	if !res.DurabilityOK {
		t.Errorf("durability verdict not clean: %+v", res.Edges)
	}
	for _, er := range res.Edges {
		if !er.DurableOK {
			t.Errorf("edge %s durability: %s", er.Edge, er.DurableErr)
		}
	}
	if r.Dynamic == nil {
		t.Fatal("no dynamic report")
	}
	d := r.Dynamic
	if d.Migrations != 1 {
		t.Errorf("migrations = %d, want 1", d.Migrations)
	}
	if d.WorkloadShifts != 1 {
		t.Errorf("workload shifts = %d, want 1", d.WorkloadShifts)
	}
	if d.CloudLinkOutages != 1 {
		t.Errorf("cloud link outages = %d, want 1", d.CloudLinkOutages)
	}
	if d.Leaves != 1 {
		t.Errorf("leaves = %d, want 1", d.Leaves)
	}
	if r.Transport == nil || r.Transport.Name != "fleet" {
		t.Errorf("transport = %+v, want fleet", r.Transport)
	}
	// Camera a ends on e1 (the migration's destination).
	for _, cr := range res.Clients {
		if cr.Camera == "a" && cr.Redials == 0 {
			t.Errorf("camera a migrated but never redialed: %+v", cr)
		}
	}
	// The edges served traffic and the fleet validated frames at the
	// cloud through real sockets.
	var served int64
	for _, er := range res.Edges {
		served += er.Served
	}
	if served == 0 {
		t.Error("edges served no frames")
	}
	if r.Validated == 0 {
		t.Error("no frame was cloud-validated")
	}
}

// TestValidateForFleet rejects what standalone processes cannot run.
func TestValidateForFleet(t *testing.T) {
	base := func() *scenario.Scenario {
		return &scenario.Scenario{
			Topology: scenario.Topology{
				Edges:   []scenario.Edge{{ID: "e0"}, {ID: "e1"}},
				Cameras: []scenario.Camera{{ID: "a", Profile: "park-dog", Edge: "e0"}},
			},
		}
	}
	ok := base()
	if err := ValidateForFleet(ok, false); err != nil {
		t.Fatalf("plain scenario rejected: %v", err)
	}

	sharded := base()
	sharded.Topology.Sharded = true
	if err := ValidateForFleet(sharded, false); err == nil {
		t.Error("sharded scenario accepted")
	}

	crash := base()
	crash.Timeline = []scenario.Event{{At: 1, Do: scenario.KindEdgeCrash, Edge: "e0"}}
	if err := ValidateForFleet(crash, false); err != nil {
		t.Errorf("crash rejected in spawn mode: %v", err)
	}
	if err := ValidateForFleet(crash, true); err == nil {
		t.Error("crash accepted in attach mode")
	}

	peer := base()
	peer.Topology.Sharded = true
	peer.Timeline = []scenario.Event{{At: 1, Do: scenario.KindLinkFault, A: "e0", B: "e1"}}
	if err := ValidateForFleet(peer, false); err == nil {
		t.Error("edge↔edge link fault accepted")
	}
}
