package fleet

import (
	"fmt"

	"croesus/internal/tcpnet"
	"croesus/internal/wire"
)

// EdgeHandlers wires an edge server to the control protocol. quit, when
// non-nil, runs (in its own goroutine) after a quit op is acknowledged —
// the binary's graceful-shutdown trigger. The same handlers serve a
// spawned croesus-edge and an in-process attach-mode edge, so the
// orchestrator cannot tell them apart.
func EdgeHandlers(id string, srv *tcpnet.EdgeServer, quit func()) *Handler {
	h := NewHandler("edge")
	h.On(OpReport, func(wire.Control) (any, error) {
		return snapshotEdge(id, srv), nil
	})
	h.On(OpDrain, func(wire.Control) (any, error) {
		srv.SetDraining(true)
		return nil, nil
	})
	h.On(OpLink, func(c wire.Control) (any, error) {
		return nil, srv.SetPathDown(c.Path, c.Down)
	})
	h.On(OpCheckpoint, func(wire.Control) (any, error) {
		return nil, srv.CheckpointWAL()
	})
	h.On(OpVerify, func(wire.Control) (any, error) {
		n, err := srv.VerifyWAL()
		if err != nil {
			return nil, fmt.Errorf("durability (%d records): %w", n, err)
		}
		return map[string]int{"records": n}, nil
	})
	registerQuit(h, quit)
	return h
}

// snapshotEdge builds the edge's control-channel report.
func snapshotEdge(id string, srv *tcpnet.EdgeServer) EdgeReport {
	r := EdgeReport{
		Edge:        id,
		Served:      srv.Served(),
		Shed:        srv.Shed(),
		Dropped:     srv.Dropped(),
		WALReplayed: srv.WALReplayed(),
		Draining:    srv.Draining(),
		Txn:         srv.Manager().Stats(),
	}
	if st := srv.Manager().Store; st != nil {
		r.StoreKeys = st.Len()
	}
	return r
}

// CloudHandlers wires the cloud server to the control protocol.
func CloudHandlers(srv *tcpnet.CloudServer, quit func()) *Handler {
	h := NewHandler("cloud")
	h.On(OpReport, func(wire.Control) (any, error) {
		return CloudReport{
			Handled: srv.Handled(),
			Shed:    srv.Shed(),
			Batcher: srv.BatcherStats(),
		}, nil
	})
	registerQuit(h, quit)
	return h
}

// ClientHandlers wires a camera stream to the control protocol.
func ClientHandlers(cs *CamStream, quit func()) *Handler {
	h := NewHandler("client")
	h.On(OpReport, func(wire.Control) (any, error) {
		return cs.Report(), nil
	})
	h.On(OpRate, func(c wire.Control) (any, error) {
		if c.Rate <= 0 {
			return nil, fmt.Errorf("rate must be > 0, got %g", c.Rate)
		}
		cs.SetRate(c.Rate)
		return nil, nil
	})
	h.On(OpRedial, func(c wire.Control) (any, error) {
		if c.Addr == "" {
			return nil, fmt.Errorf("redial needs an addr")
		}
		cs.Redial(c.Addr)
		return nil, nil
	})
	registerQuit(h, func() {
		cs.Stop()
		if quit != nil {
			quit()
		}
	})
	return h
}

func registerQuit(h *Handler, quit func()) {
	h.On(OpQuit, func(wire.Control) (any, error) {
		if quit != nil {
			go quit()
		}
		return nil, nil
	})
}
