package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"time"
)

// ReadyInfo is the JSON a fleet binary writes to its -ready-file once its
// listeners are bound: the orchestrator's address-discovery handshake
// (every listener binds :0, so addresses are only known at runtime).
type ReadyInfo struct {
	Role    string `json:"role"`              // edge, cloud, client
	Addr    string `json:"addr,omitempty"`    // data-plane listen address
	Control string `json:"control,omitempty"` // control-channel address
	Debug   string `json:"debug,omitempty"`   // debug/metrics address
	PID     int    `json:"pid,omitempty"`
}

// WriteReady atomically publishes the ready file (write-then-rename, so a
// polling orchestrator never reads a torn write).
func WriteReady(path string, info ReadyInfo) error {
	if info.PID == 0 {
		info.PID = os.Getpid()
	}
	b, err := json.Marshal(info)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// waitReady polls for the ready file until it parses or the deadline hits.
func waitReady(path string, timeout time.Duration, alive func() bool) (*ReadyInfo, error) {
	deadline := time.Now().Add(timeout)
	for {
		b, err := os.ReadFile(path)
		if err == nil && len(b) > 0 {
			var info ReadyInfo
			if err := json.Unmarshal(b, &info); err == nil {
				return &info, nil
			}
		}
		if alive != nil && !alive() {
			return nil, fmt.Errorf("fleet: process exited before writing %s", filepath.Base(path))
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("fleet: timed out waiting for %s", path)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// proc is one spawned fleet process.
type proc struct {
	name string
	cmd  *exec.Cmd
	log  *os.File
	done chan struct{}
	err  error
}

// startProc launches bin with args, tee-ing output to logPath.
func startProc(name, bin string, args []string, logPath string) (*proc, error) {
	logf, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		logf.Close()
		return nil, fmt.Errorf("fleet: start %s: %w", name, err)
	}
	p := &proc{name: name, cmd: cmd, log: logf, done: make(chan struct{})}
	go func() {
		p.err = cmd.Wait()
		logf.Close()
		close(p.done)
	}()
	return p, nil
}

// alive reports whether the process is still running.
func (p *proc) alive() bool {
	select {
	case <-p.done:
		return false
	default:
		return true
	}
}

// kill fail-stops the process (SIGKILL): the fleet's edge_crash. No
// flush, no goodbye — exactly what the WAL must survive.
func (p *proc) kill() {
	if p.alive() {
		p.cmd.Process.Kill()
	}
	<-p.done
}

// term asks for a graceful shutdown (SIGTERM: report and trace flush) and
// waits, escalating to SIGKILL at the deadline.
func (p *proc) term(timeout time.Duration) error {
	if p.alive() {
		p.cmd.Process.Signal(syscall.SIGTERM)
	}
	select {
	case <-p.done:
		return p.err
	case <-time.After(timeout):
		p.cmd.Process.Kill()
		<-p.done
		return fmt.Errorf("fleet: %s did not stop on SIGTERM within %s", p.name, timeout)
	}
}

// waitExit blocks until the process exits on its own.
func (p *proc) waitExit(timeout time.Duration) error {
	select {
	case <-p.done:
		return p.err
	case <-time.After(timeout):
		return fmt.Errorf("fleet: %s still running after %s", p.name, timeout)
	}
}
