// Package fleet is the multi-process deployment of the Croesus
// reproduction: an orchestrator (cmd/croesus-fleet) that reads the same
// versioned scenario JSON as croesus-cluster, runs it against *real*
// croesus-edge / croesus-cloud / croesus-client processes, plays the
// timeline over a control channel on each process, and folds the
// per-process reports and trace streams into one cluster.ClusterReport.
//
// The package splits into four seams, each usable on its own:
//
//   - control.go — the control protocol: a tiny request/reply RPC carried
//     by wire.Control / wire.ControlReply envelopes over the same gob
//     framing as the data plane. Every fleet binary serves it; the
//     orchestrator drives it.
//   - camstream.go — the camera streaming loop shared by croesus-client
//     and the orchestrator's in-process (attach-mode) cameras: pacing,
//     reconnect across edge crashes, live rate shifts and redials.
//   - procs.go — process management: spawn with ready-file address
//     discovery, SIGKILL crashes, respawns, graceful SIGTERM stops.
//   - fleet.go — the orchestrator: scenario validation for the
//     multi-process fleet, timeline playback, report merge, trace
//     collection.
package fleet

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"croesus/internal/wire"
)

// Control ops. The operand fields of wire.Control each op reads are noted.
const (
	// OpPing answers with the process's role in Data ({"role": ...}).
	OpPing = "ping"
	// OpReport answers with the role-specific report JSON in Data
	// (EdgeReport, CloudReport, or ClientReport).
	OpReport = "report"
	// OpDrain (edge) makes the edge refuse new frames (Down=false heals).
	OpDrain = "drain"
	// OpLink (edge) blackholes or heals one modeled path: Path is
	// "client" or "cloud", Down the new state.
	OpLink = "link"
	// OpRate (client) scales the camera's capture rate by Rate.
	OpRate = "rate"
	// OpRedial (client) points the camera at a new edge: Addr.
	OpRedial = "redial"
	// OpCheckpoint (edge) compacts the WAL to a state snapshot.
	OpCheckpoint = "checkpoint"
	// OpVerify (edge) checks the durability invariant (WAL replay ==
	// live store); Data carries {"records": n}.
	OpVerify = "verify"
	// OpQuit asks the process to shut down gracefully after replying.
	OpQuit = "quit"
)

// OpFunc handles one control op. The returned value is JSON-encoded into
// the reply's Data (nil: empty Data).
type OpFunc func(c wire.Control) (any, error)

// Handler dispatches control ops to registered functions.
type Handler struct {
	mu  sync.Mutex
	ops map[string]OpFunc
}

// NewHandler returns an empty handler with a default ping.
func NewHandler(role string) *Handler {
	h := &Handler{ops: map[string]OpFunc{}}
	h.On(OpPing, func(wire.Control) (any, error) {
		return map[string]string{"role": role}, nil
	})
	return h
}

// On registers fn for op, replacing any previous registration.
func (h *Handler) On(op string, fn OpFunc) {
	h.mu.Lock()
	h.ops[op] = fn
	h.mu.Unlock()
}

// Handle runs one op and builds the reply envelope.
func (h *Handler) Handle(c wire.Control) wire.ControlReply {
	h.mu.Lock()
	fn, ok := h.ops[c.Op]
	h.mu.Unlock()
	r := wire.ControlReply{Seq: c.Seq}
	if !ok {
		r.Err = fmt.Sprintf("unknown control op %q", c.Op)
		return r
	}
	data, err := fn(c)
	if err != nil {
		r.Err = err.Error()
		return r
	}
	r.OK = true
	if data != nil {
		b, err := json.Marshal(data)
		if err != nil {
			return wire.ControlReply{Seq: c.Seq, Err: err.Error()}
		}
		r.Data = b
	}
	return r
}

// ControlServer accepts control connections and serves a Handler.
type ControlServer struct {
	ln net.Listener
	h  *Handler
	wg sync.WaitGroup

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]bool
}

// ServeControl listens on addr (host:0 allocates a port) and serves h on
// every connection. Returns the server; Addr() reports the bound address.
func ServeControl(addr string, h *Handler) (*ControlServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &ControlServer{ln: ln, h: h, conns: map[net.Conn]bool{}}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr is the bound listen address.
func (s *ControlServer) Addr() string { return s.ln.Addr().String() }

func (s *ControlServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serve(conn)
	}
}

func (s *ControlServer) serve(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	wc := wire.NewConn(conn)
	for {
		env, err := wc.Recv()
		if err != nil {
			return
		}
		switch env.Kind {
		case wire.KindControl:
			reply := s.h.Handle(*env.Control)
			if err := wc.Send(&wire.Envelope{Kind: wire.KindControlReply, ControlReply: &reply}); err != nil {
				return
			}
			// A quit that was acknowledged ends the connection: the
			// process is about to exit and the orchestrator should not
			// block on a dead socket.
			if env.Control.Op == OpQuit && reply.OK {
				return
			}
		case wire.KindBye:
			return
		}
	}
}

// Close stops accepting, severs live connections, and waits for the
// serving goroutines.
func (s *ControlServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

// ControlClient is the orchestrator's end of one process's control
// channel. Calls are serialized; each Call round-trips one op.
type ControlClient struct {
	mu   sync.Mutex
	conn *wire.Conn
	nc   net.Conn
	seq  uint64
}

// DialControl connects to a process's control address.
func DialControl(addr string) (*ControlClient, error) {
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return &ControlClient{conn: wire.NewConn(nc), nc: nc}, nil
}

// Call round-trips one control op with a deadline (0: 10s default). The
// returned reply is the remote verdict; err is a transport failure.
func (c *ControlClient) Call(ctl wire.Control, timeout time.Duration) (*wire.ControlReply, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	ctl.Seq = c.seq
	c.nc.SetDeadline(time.Now().Add(timeout))
	defer c.nc.SetDeadline(time.Time{})
	if err := c.conn.Send(&wire.Envelope{Kind: wire.KindControl, Control: &ctl}); err != nil {
		return nil, err
	}
	for {
		env, err := c.conn.Recv()
		if err != nil {
			return nil, err
		}
		if env.Kind != wire.KindControlReply || env.ControlReply == nil {
			continue
		}
		if env.ControlReply.Seq != ctl.Seq {
			continue // stale reply from an abandoned deadline
		}
		return env.ControlReply, nil
	}
}

// CallOK round-trips op and converts a remote error into a Go error.
func (c *ControlClient) CallOK(ctl wire.Control, timeout time.Duration) (*wire.ControlReply, error) {
	r, err := c.Call(ctl, timeout)
	if err != nil {
		return nil, err
	}
	if !r.OK {
		return r, fmt.Errorf("control %s: %s", ctl.Op, r.Err)
	}
	return r, nil
}

// CallJSON round-trips op and decodes the reply Data into out (which may
// be nil to ignore it).
func (c *ControlClient) CallJSON(ctl wire.Control, timeout time.Duration, out any) error {
	r, err := c.CallOK(ctl, timeout)
	if err != nil {
		return err
	}
	if out != nil && len(r.Data) > 0 {
		return json.Unmarshal(r.Data, out)
	}
	return nil
}

// Close sends a best-effort bye and closes the connection.
func (c *ControlClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nc.SetDeadline(time.Now().Add(time.Second))
	c.conn.Send(&wire.Envelope{Kind: wire.KindBye})
	return c.nc.Close()
}
