package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"croesus/internal/wire"
)

// inprocCam runs a CamStream in this process — attach mode's cameras.
// Control ops are direct method calls, so the orchestrator's event code
// is identical either way.
type inprocCam struct {
	cs   *CamStream
	name string
	done chan struct{}
	rep  ClientReport
}

func startInprocCam(cfg CamConfig) *inprocCam {
	c := &inprocCam{cs: NewCamStream(cfg), name: cfg.Camera, done: make(chan struct{})}
	go func() {
		c.rep = c.cs.Run()
		close(c.done)
	}()
	return c
}

func (c *inprocCam) id() string { return c.name }

func (c *inprocCam) rate(mult float64) error {
	c.cs.SetRate(mult)
	return nil
}

func (c *inprocCam) redial(addr string) error {
	c.cs.Redial(addr)
	return nil
}

func (c *inprocCam) stop() { c.cs.Stop() }

func (c *inprocCam) wait(timeout time.Duration) (ClientReport, bool) {
	select {
	case <-c.done:
		return c.rep, true
	case <-time.After(timeout):
		c.cs.Stop()
		select {
		case <-c.done:
			return c.rep, true
		case <-time.After(5 * time.Second):
			return c.cs.Report(), false
		}
	}
}

func (c *inprocCam) traceFile() string { return "" }

// procCam drives a spawned croesus-client over its control channel. The
// client writes its ClientReport JSON to reportPath at exit (normal end,
// quit op, or SIGTERM).
type procCam struct {
	name       string
	p          *proc
	ctl        *ControlClient
	reportPath string
	trace      string
}

// startProcCam spawns one croesus-client for a camera.
func (f *fleetRun) startProcCam(camID, edgeAddr, profile string, seed int64, frames int) (*procCam, error) {
	ready := filepath.Join(f.dir, "client-"+camID+".ready")
	os.Remove(ready)
	reportPath := filepath.Join(f.dir, "client-"+camID+".json")
	timeout := f.o.FrameTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	args := []string{
		"-edge", edgeAddr,
		"-video", profile,
		"-camera", camID,
		"-frames", strconv.Itoa(frames),
		"-seed", strconv.FormatInt(seed, 10),
		"-timescale", fmt.Sprintf("%g", f.ts),
		"-frame-timeout", timeout.String(),
		"-control", "127.0.0.1:0",
		"-ready-file", ready,
		"-report", reportPath,
		"-quiet",
	}
	trace := ""
	if f.o.Trace {
		trace = filepath.Join(f.dir, "trace-client-"+camID+".jsonl")
		args = append(args, "-trace", trace)
	}
	p, err := startProc("client-"+camID, filepath.Join(f.o.BinDir, "croesus-client"), args,
		filepath.Join(f.dir, "client-"+camID+".log"))
	if err != nil {
		return nil, err
	}
	info, err := waitReady(ready, 15*time.Second, p.alive)
	if err != nil {
		p.kill()
		return nil, err
	}
	ctl, err := DialControl(info.Control)
	if err != nil {
		p.kill()
		return nil, fmt.Errorf("fleet: client %s control: %w", camID, err)
	}
	return &procCam{name: camID, p: p, ctl: ctl, reportPath: reportPath, trace: trace}, nil
}

func (c *procCam) id() string { return c.name }

func (c *procCam) rate(mult float64) error {
	_, err := c.ctl.CallOK(wire.Control{Op: OpRate, Rate: mult}, 0)
	return err
}

func (c *procCam) redial(addr string) error {
	_, err := c.ctl.CallOK(wire.Control{Op: OpRedial, Addr: addr}, 0)
	return err
}

func (c *procCam) stop() {
	c.ctl.Call(wire.Control{Op: OpQuit}, 5*time.Second)
}

func (c *procCam) wait(timeout time.Duration) (ClientReport, bool) {
	if err := c.p.waitExit(timeout); err != nil {
		// Still running past the deadline: ask it to stop, then read
		// whatever report it flushes.
		c.stop()
		c.p.term(10 * time.Second)
	}
	c.ctl.Close()
	b, err := os.ReadFile(c.reportPath)
	if err != nil {
		return ClientReport{Camera: c.name}, false
	}
	var rep ClientReport
	if err := json.Unmarshal(b, &rep); err != nil {
		return ClientReport{Camera: c.name}, false
	}
	return rep, true
}

func (c *procCam) traceFile() string { return c.trace }
