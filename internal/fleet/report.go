package fleet

import (
	"time"

	"croesus/internal/cluster"
	"croesus/internal/faults"
	"croesus/internal/metrics"
	"croesus/internal/txn"
)

// FrameRecord is one frame's outcome as the camera saw it. Latencies are
// wall durations; the orchestrator normalizes them by the fleet's time
// scale when merging, so a scaled run reports modeled latencies.
type FrameRecord struct {
	Index          int           `json:"index"`
	InitialLatency time.Duration `json:"initial_latency"`
	FinalLatency   time.Duration `json:"final_latency"`
	SentToCloud    bool          `json:"sent_to_cloud,omitempty"`
	Shed           bool          `json:"shed,omitempty"`
	Corrections    int           `json:"corrections,omitempty"`
	Apologies      int           `json:"apologies,omitempty"`
	InitialLabels  int           `json:"initial_labels,omitempty"`
	FinalLabels    int           `json:"final_labels,omitempty"`
	// Dropped marks a frame that never completed: the edge was dark,
	// draining, or the wait timed out. Dropped frames carry no latencies.
	Dropped bool `json:"dropped,omitempty"`
}

// ClientReport is one camera process's run summary.
type ClientReport struct {
	Camera string `json:"camera"`
	Video  string `json:"video"`
	Edge   string `json:"edge"` // edge addr at end of run

	Frames    []FrameRecord `json:"frames"`
	Submitted int           `json:"submitted"`
	Answered  int           `json:"answered"`
	Dropped   int           `json:"dropped"`
	// Redials counts reconnections — crash recoveries and migrations.
	Redials int  `json:"redials"`
	Stopped bool `json:"stopped,omitempty"` // retired by camera_leave / SIGTERM
}

// EdgeReport is one edge process's run summary, fetched over the control
// channel (OpReport).
type EdgeReport struct {
	Edge        string    `json:"edge"`
	Served      int64     `json:"served"`
	Shed        int64     `json:"shed"`
	Dropped     int64     `json:"dropped"`
	WALReplayed int       `json:"wal_replayed"`
	Draining    bool      `json:"draining,omitempty"`
	Txn         txn.Stats `json:"txn"`
	StoreKeys   int       `json:"store_keys"`

	// Durability verdict from OpVerify: replaying the WAL must
	// reproduce the live store.
	DurableRecords int    `json:"durable_records,omitempty"`
	DurableOK      bool   `json:"durable_ok,omitempty"`
	DurableErr     string `json:"durable_err,omitempty"`
}

// CloudReport is the cloud process's run summary (OpReport).
type CloudReport struct {
	Handled int64                `json:"handled"`
	Shed    int64                `json:"shed"`
	Batcher cluster.BatcherStats `json:"batcher"`
}

// crashRecord is one crash/respawn cycle the orchestrator executed.
type crashRecord struct {
	edge     string
	downFor  time.Duration // wall, zero if never restarted
	replayed int
}

// mergeReport folds the per-process reports into the same ClusterReport
// shape the in-process deployments produce, so one scenario's sim, TCP,
// and fleet runs are comparable side by side. scale is the run's time
// scale: wall latencies divide by it to land in modeled time. Accuracy
// (F1) needs ground truth the orchestrator does not recompute, so
// Summary carries counts and latencies only.
func mergeReport(elapsed time.Duration, scale float64, clients []ClientReport,
	edges []EdgeReport, cloud *CloudReport, crashes []crashRecord, dyn cluster.DynamicReport) *cluster.ClusterReport {
	if scale <= 0 {
		scale = 1
	}
	norm := func(d time.Duration) time.Duration {
		return time.Duration(float64(d) / scale)
	}
	r := &cluster.ClusterReport{
		Policy:  "fleet",
		Elapsed: norm(elapsed),
	}
	var fleetInit, fleetFinal metrics.LatencyStats
	for _, cr := range clients {
		var init, final metrics.LatencyStats
		rep := cluster.CameraReport{Camera: cr.Camera, Edge: cr.Edge, Left: cr.Stopped, Dropped: cr.Dropped}
		rep.Summary.Video = cr.Video
		for _, f := range cr.Frames {
			if f.Dropped {
				continue
			}
			rep.Summary.Frames++
			init.Add(norm(f.InitialLatency))
			final.Add(norm(f.FinalLatency))
			fleetInit.Add(norm(f.InitialLatency))
			fleetFinal.Add(norm(f.FinalLatency))
			if f.SentToCloud {
				if f.Shed {
					rep.Summary.Shed++
				} else {
					rep.Summary.Validated++
				}
			}
			rep.Summary.Corrections += f.Corrections
			rep.Summary.Apologies += f.Apologies
		}
		if rep.Summary.Frames > 0 {
			rep.Summary.BU = float64(rep.Summary.Validated+rep.Summary.Shed) / float64(rep.Summary.Frames)
		}
		rep.InitialP50 = init.Percentile(50)
		rep.InitialP95 = init.Percentile(95)
		rep.InitialP99 = init.Percentile(99)
		rep.FinalP50 = final.Percentile(50)
		rep.FinalP95 = final.Percentile(95)
		rep.FinalP99 = final.Percentile(99)
		r.Cameras = append(r.Cameras, rep)
		r.Frames += rep.Summary.Frames
		r.Validated += rep.Summary.Validated
		r.Shed += rep.Summary.Shed
		r.Corrections += rep.Summary.Corrections
		r.Apologies += rep.Summary.Apologies
		dyn.FramesDropped += cr.Dropped
	}
	if r.Elapsed > 0 {
		r.ThroughputFPS = float64(r.Frames) / r.Elapsed.Seconds()
	}
	r.InitialP50 = fleetInit.Percentile(50)
	r.InitialP95 = fleetInit.Percentile(95)
	r.InitialP99 = fleetInit.Percentile(99)
	r.FinalP50 = fleetFinal.Percentile(50)
	r.FinalP95 = fleetFinal.Percentile(95)
	r.FinalP99 = fleetFinal.Percentile(99)
	for _, er := range edges {
		r.TxnsTriggered += int(er.Txn.InitialCommits)
		r.Lost += int(er.Dropped)
	}
	if cloud != nil {
		r.Batcher = cloud.Batcher
	}
	if len(crashes) > 0 || dyn.CloudLinkOutages > 0 {
		var rec metrics.LatencyStats
		f := &faults.Report{}
		f.LinkOutages = int64(dyn.CloudLinkOutages)
		for _, c := range crashes {
			f.Crashes++
			if c.downFor > 0 {
				f.Restarts++
				rec.Add(norm(c.downFor))
			}
			f.ReplayedRecords += int64(c.replayed)
		}
		f.RecoveryP50 = rec.Percentile(50)
		f.RecoveryP95 = rec.Percentile(95)
		f.RecoveryP99 = rec.Percentile(99)
		r.Faults = f
	}
	if dyn != (cluster.DynamicReport{}) {
		d := dyn
		r.Dynamic = &d
	}
	return r
}
