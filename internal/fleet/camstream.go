package fleet

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"croesus/internal/obs"
	"croesus/internal/tcpnet"
	"croesus/internal/vclock"
	"croesus/internal/video"
)

// CamConfig configures one camera stream.
type CamConfig struct {
	// Camera names the stream (trace identity, report key).
	Camera string
	// Edge is the initial edge address.
	Edge string
	// Profile is the synthetic scene; Seed its generator seed.
	Profile video.Profile
	Seed    int64
	// Frames is the stream length (default 100).
	Frames int
	// Padding adds payload bytes per frame (encoded size on the wire).
	Padding int
	// TimeScale compresses wall pacing: the capture interval sleeps
	// interval×TimeScale real time (0 or 1: full fidelity). Latencies in
	// the report stay wall durations; the orchestrator normalizes.
	TimeScale float64
	// FrameTimeout bounds one frame's wall wait before it counts as
	// dropped (default 30s).
	FrameTimeout time.Duration
	// Obs, when set, opens a distributed trace per frame.
	Obs  *obs.Obs
	Logf func(format string, args ...any)
	// OnFrame, when set, observes each completed frame (CLI printing).
	OnFrame func(FrameRecord)
}

// CamStream is the camera streaming loop shared by croesus-client and the
// orchestrator's in-process cameras: it paces frames at the profile's
// capture rate, survives edge restarts by redialing (frames submitted
// while the edge is dark are dropped, matching the in-process fleet's
// outage semantics), and takes live control ops — rate shifts
// (workload_shift), redials to a new edge (migrate_camera), and a
// graceful stop (camera_leave / SIGTERM).
type CamStream struct {
	cfg  CamConfig
	clk  vclock.Clock  // span clock: one epoch for the stream's whole life
	rate atomic.Uint64 // float64 bits; capture-rate multiplier
	stop chan struct{}
	once sync.Once

	mu                  sync.Mutex
	addr                string
	cl                  *tcpnet.Client
	retired             []*tcpnet.Client // replaced conns kept open for in-flight waits
	recs                []*FrameRecord
	submitted, answered int
	redials             int
	dials               int
	stopped             bool
}

// NewCamStream builds a stream; call Run once to play it.
func NewCamStream(cfg CamConfig) *CamStream {
	if cfg.Frames <= 0 {
		cfg.Frames = 100
	}
	if cfg.FrameTimeout <= 0 {
		cfg.FrameTimeout = 30 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	cs := &CamStream{cfg: cfg, stop: make(chan struct{}), addr: cfg.Edge}
	// One span clock for the stream's whole life, at the fleet's shared
	// scale: a per-dial clock would reset the epoch on every redial and
	// make the stream's spans unalignable with one per-process offset.
	cs.clk = vclock.NewReal()
	if ts := cfg.TimeScale; ts > 0 && ts != 1 {
		cs.clk = vclock.NewScaledReal(ts)
	}
	cs.rate.Store(math.Float64bits(1))
	return cs
}

// SetRate scales the capture rate by mult (>0): the workload_shift control.
func (cs *CamStream) SetRate(mult float64) {
	if mult > 0 {
		cs.rate.Store(math.Float64bits(mult))
	}
}

// Redial points the stream at a new edge address: the migrate_camera
// control. The current connection is retired (in-flight frames finish on
// it); the next frame dials the new address.
func (cs *CamStream) Redial(addr string) {
	cs.mu.Lock()
	cs.addr = addr
	if cs.cl != nil {
		cs.retired = append(cs.retired, cs.cl)
		cs.cl = nil
	}
	cs.mu.Unlock()
}

// Stop ends the stream early (camera_leave, SIGTERM): no more frames are
// submitted; in-flight waits drain briefly.
func (cs *CamStream) Stop() {
	cs.once.Do(func() {
		cs.mu.Lock()
		cs.stopped = true
		cs.mu.Unlock()
		close(cs.stop)
	})
}

func (cs *CamStream) halted() bool {
	select {
	case <-cs.stop:
		return true
	default:
		return false
	}
}

// client returns a live connection, dialing (or redialing) if needed. nil
// means the edge is unreachable right now — the caller drops the frame.
func (cs *CamStream) client() *tcpnet.Client {
	cs.mu.Lock()
	cl, addr := cs.cl, cs.addr
	cs.mu.Unlock()
	if cl != nil {
		return cl
	}
	cl, err := tcpnet.Dial(addr)
	if err != nil {
		return nil
	}
	if cs.cfg.Obs != nil {
		cl.EnableTrace(cs.cfg.Obs, cs.clk, cs.cfg.Camera)
	}
	cs.mu.Lock()
	cs.cl = cl
	cs.dials++
	if cs.dials > 1 {
		cs.redials++
	}
	cs.mu.Unlock()
	return cl
}

// dropClient retires a connection that errored so the next frame redials.
func (cs *CamStream) dropClient(cl *tcpnet.Client) {
	cs.mu.Lock()
	if cs.cl == cl {
		cs.cl = nil
		cs.retired = append(cs.retired, cl)
	}
	cs.mu.Unlock()
}

// pace sleeps one capture interval (scaled, rate-adjusted), cut short by
// Stop.
func (cs *CamStream) pace() {
	interval := cs.cfg.Profile.FrameInterval()
	if mult := math.Float64frombits(cs.rate.Load()); mult > 0 {
		interval = time.Duration(float64(interval) / mult)
	}
	if ts := cs.cfg.TimeScale; ts > 0 && ts != 1 {
		interval = time.Duration(float64(interval) * ts)
	}
	if interval <= 0 {
		return
	}
	t := time.NewTimer(interval)
	defer t.Stop()
	select {
	case <-t.C:
	case <-cs.stop:
	}
}

func (cs *CamStream) await(wg *sync.WaitGroup, cl *tcpnet.Client, idx int, rec *FrameRecord) {
	defer wg.Done()
	r, err := cl.WaitFrame(idx, cs.cfg.FrameTimeout)
	if err != nil {
		// A dead connection also fails every later frame on it; retire
		// it so the next submit redials. A plain timeout retires it too —
		// spurious at worst, since redialing a healthy edge is cheap.
		cs.dropClient(cl)
		cs.cfg.Logf("camera %s: frame %d dropped: %v", cs.cfg.Camera, idx, err)
		return
	}
	cs.mu.Lock()
	rec.InitialLatency = r.InitialLatency
	rec.FinalLatency = r.FinalLatency
	rec.SentToCloud = r.SentToCloud
	rec.Shed = r.Shed
	rec.Corrections = r.Corrections
	rec.Apologies = len(r.Apologies)
	rec.InitialLabels = len(r.Initial)
	rec.FinalLabels = len(r.Final)
	rec.Dropped = false
	cs.answered++
	out := *rec
	cs.mu.Unlock()
	if cs.cfg.OnFrame != nil {
		cs.cfg.OnFrame(out)
	}
}

// Run plays the stream to completion (or Stop) and returns the report.
// Call once.
func (cs *CamStream) Run() ClientReport {
	gen := video.NewGenerator(cs.cfg.Profile, cs.cfg.Seed)
	var wg sync.WaitGroup
	for i := 0; i < cs.cfg.Frames; i++ {
		if cs.halted() {
			break
		}
		f := gen.Next()
		rec := &FrameRecord{Index: f.Index, Dropped: true}
		cs.mu.Lock()
		cs.recs = append(cs.recs, rec)
		cs.mu.Unlock()
		if cl := cs.client(); cl != nil {
			if err := cl.Submit(f, cs.cfg.Padding); err != nil {
				cs.dropClient(cl)
			} else {
				cs.mu.Lock()
				cs.submitted++
				cs.mu.Unlock()
				wg.Add(1)
				go cs.await(&wg, cl, f.Index, rec)
			}
		}
		cs.pace()
	}
	// Drain in-flight waits; a stopped stream gets a short grace so a
	// SIGTERM flush does not hang on a dark edge.
	grace := cs.cfg.FrameTimeout + time.Second
	if cs.halted() {
		grace = 3 * time.Second
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(grace):
	}
	cs.mu.Lock()
	for _, old := range cs.retired {
		old.Close()
	}
	cs.retired = nil
	if cs.cl != nil {
		cs.cl.Close()
		cs.cl = nil
	}
	cs.mu.Unlock()
	return cs.Report()
}

// Report snapshots the stream's outcome; safe to call live (the control
// channel's OpReport) or after Run.
func (cs *CamStream) Report() ClientReport {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	r := ClientReport{
		Camera:    cs.cfg.Camera,
		Video:     cs.cfg.Profile.Name,
		Edge:      cs.addr,
		Submitted: cs.submitted,
		Answered:  cs.answered,
		Redials:   cs.redials,
		Stopped:   cs.stopped,
	}
	for _, rec := range cs.recs {
		r.Frames = append(r.Frames, *rec)
		if rec.Dropped {
			r.Dropped++
		}
	}
	return r
}
