package tcpnet

import (
	"bytes"
	"fmt"
	"os"
	"sync"

	"croesus/internal/store"
	"croesus/internal/wal"
)

// walBackend is the standalone edge's durable storage seam: a txn.Backend
// that journals every mutation write-ahead before applying it to the live
// store. It also owns the checkpoint/verify operations the orchestrator
// drives over the control channel — both quiesce writers on the same mutex
// the data path takes, which is the wal package's "externally quiesced"
// requirement.
type walBackend struct {
	st     *store.Store
	path   string
	nosync bool
	logf   func(format string, args ...any)

	mu  sync.Mutex
	log *wal.Log
}

// openWALBackend replays any existing log at path into st (data records in
// log order — a respawned edge recovers its committed state), then opens
// the log for appending. Returns the backend and the replayed record count.
func openWALBackend(path string, nosync bool, st *store.Store, logf func(string, ...any)) (*walBackend, int, error) {
	replayed := 0
	if _, err := os.Stat(path); err == nil {
		n, truncated, err := wal.Replay(path, func(r wal.Record) error {
			switch r.Op {
			case wal.OpPut:
				st.Put(r.Key, r.Value)
			case wal.OpDelete:
				st.Delete(r.Key)
			}
			return nil
		})
		if err != nil {
			return nil, 0, err
		}
		if truncated {
			logf("edge: wal %s had a truncated tail (dropped)", path)
		}
		replayed = n
	}
	log, err := wal.Open(path)
	if err != nil {
		return nil, 0, err
	}
	log.NoSync = nosync
	return &walBackend{st: st, path: path, nosync: nosync, logf: logf, log: log}, replayed, nil
}

// Get implements txn.Backend.
func (b *walBackend) Get(key string) (store.Value, bool) { return b.st.Get(key) }

// Put implements txn.Backend: journal, then apply.
func (b *walBackend) Put(key string, v store.Value) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.log.Append(wal.Record{Op: wal.OpPut, Key: key, Value: v}); err != nil {
		b.logf("edge: wal append: %v", err)
	}
	return b.st.Put(key, v)
}

// Delete implements txn.Backend: journal, then apply.
func (b *walBackend) Delete(key string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.log.Append(wal.Record{Op: wal.OpDelete, Key: key}); err != nil {
		b.logf("edge: wal append: %v", err)
	}
	return b.st.Delete(key)
}

// checkpoint compacts the log to a snapshot of current store state,
// bounding replay time. Writers are quiesced for the swap.
func (b *walBackend) checkpoint() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.log.Close(); err != nil {
		return err
	}
	cerr := wal.Checkpoint(b.st, b.path)
	log, err := wal.Open(b.path)
	if err != nil {
		return err
	}
	log.NoSync = b.nosync
	b.log = log
	return cerr
}

// verify replays the log into a fresh store and compares it with the live
// store — the durability invariant the fleet asserts after a run: what the
// WAL would recover is exactly what the edge is serving. Writers are
// quiesced for the comparison. Returns the replayed record count.
func (b *walBackend) verify() (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	fresh := store.New()
	n, truncated, err := wal.Replay(b.path, func(r wal.Record) error {
		switch r.Op {
		case wal.OpPut:
			fresh.Put(r.Key, r.Value)
		case wal.OpDelete:
			fresh.Delete(r.Key)
		}
		return nil
	})
	if err != nil {
		return n, err
	}
	if truncated {
		return n, fmt.Errorf("wal has a truncated tail")
	}
	want := b.st.Snapshot()
	got := fresh.Snapshot()
	if len(got) != len(want) {
		return n, fmt.Errorf("replay yields %d keys, live store has %d", len(got), len(want))
	}
	for k, v := range want {
		rv, ok := got[k]
		if !ok {
			return n, fmt.Errorf("key %q in live store missing from replay", k)
		}
		if !bytes.Equal(rv, v) {
			return n, fmt.Errorf("key %q differs between replay and live store", k)
		}
	}
	return n, nil
}

// close closes the log.
func (b *walBackend) close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.log.Close()
}

// WALReplayed reports how many WAL records were replayed at startup (0
// without a WAL or on a fresh path) — a respawned edge reports its
// recovery here.
func (s *EdgeServer) WALReplayed() int { return s.replayed }

// CheckpointWAL compacts the edge's WAL to a snapshot of current state.
func (s *EdgeServer) CheckpointWAL() error {
	if s.walB == nil {
		return fmt.Errorf("tcpnet: no WAL configured")
	}
	return s.walB.checkpoint()
}

// VerifyWAL checks the durability invariant: replaying the WAL must
// reproduce exactly the live store. Returns the replayed record count; a
// nil error is a clean verdict. Call at quiesce — writers are paused
// during the comparison, but frames mid-pipeline can land writes between
// two calls.
func (s *EdgeServer) VerifyWAL() (int, error) {
	if s.walB == nil {
		return 0, fmt.Errorf("tcpnet: no WAL configured")
	}
	return s.walB.verify()
}

// SetDraining makes the edge refuse new frames while in-flight ones finish
// (true) or accept again (false) — the fleet's edge_retire drain.
func (s *EdgeServer) SetDraining(d bool) {
	s.mu.Lock()
	s.draining = d
	s.mu.Unlock()
}

// Draining reports whether the edge is refusing new frames.
func (s *EdgeServer) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Dropped reports frames refused by drain or a severed client path.
func (s *EdgeServer) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// SetPathDown blackholes (down=true) or heals one of the edge's modeled
// paths: "client" (frames are dropped on ingest) or "cloud" (validations
// are lost and frames finalize with edge answers) — the orchestrator's
// per-path link fault.
func (s *EdgeServer) SetPathDown(path string, down bool) error {
	switch path {
	case "client":
		s.clientPath.SetShapedDown(down)
	case "cloud":
		s.cloudPath.SetShapedDown(down)
	default:
		return fmt.Errorf("tcpnet: unknown path %q (want client or cloud)", path)
	}
	return nil
}
