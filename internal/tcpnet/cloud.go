// Package tcpnet deploys the Croesus node logic over real TCP: a cloud
// server running the full model behind the fleet's SLO-aware validation
// batcher, edge servers running the shared fleet-node assembly (compact
// model, store, locks, MS-IA/MS-SR transactions) through the one core
// pipeline, and a client that streams frames. The node logic IS
// internal/core and internal/node — the same code the simulated and
// loopback-TCP fleets run — against wall-clock time and real sockets;
// TimeScale compresses the modeled inference latencies so integration
// tests finish quickly.
package tcpnet

import (
	"errors"
	"log"
	"net"
	"strconv"
	"sync"
	"time"

	"croesus/internal/cluster"
	"croesus/internal/core"
	"croesus/internal/detect"
	"croesus/internal/obs"
	"croesus/internal/vclock"
	"croesus/internal/wire"
)

// CloudConfig assembles a cloud server.
type CloudConfig struct {
	// Model is the full cloud model shared by every connected edge.
	Model detect.Model
	// TimeScale multiplies modeled inference latency before sleeping
	// (1.0 = full fidelity; tests use ~0.01).
	TimeScale float64
	// MaxBatch, SLO, MaxPending, Slots, and CloudSpeed configure the
	// shared validation batcher (cluster.Batcher) that every edge's
	// requests coalesce into — the same batched, shedding cloud the
	// simulated fleet runs. Zero values take the fleet defaults
	// (batch 8, 60ms SLO, 4×batch pending cap).
	MaxBatch   int
	SLO        time.Duration
	MaxPending int
	Slots      int
	CloudSpeed float64
	// Obs, when set, threads the observability layer through the batcher:
	// queue-depth/inflight gauges, a batches counter, and batch spans on
	// the wall clock — what -debug-addr serves.
	Obs *obs.Obs
}

// CloudServer serves detection requests with the full model behind the
// fleet's shared SLO-aware batcher: requests from every connected edge
// coalesce into batches, flush on the size cap or the SLO deadline, and
// under overload the lowest-confidence-margin requests are shed back to
// their edges — Croesus' degradation mode over real sockets.
type CloudServer struct {
	Logf func(format string, args ...any)

	cfg     CloudConfig
	clk     vclock.Clock
	batcher *cluster.Batcher

	mu      sync.Mutex
	ln      net.Listener
	conns   map[net.Conn]struct{}
	closed  bool
	handled int64
	shed    int64
	wg      sync.WaitGroup
}

// NewCloudServer returns a server for the model with default batching.
func NewCloudServer(model detect.Model, timeScale float64) *CloudServer {
	s, err := NewCloudServerWith(CloudConfig{Model: model, TimeScale: timeScale})
	if err != nil {
		// Only reachable with a nil model; preserved panic-free signature
		// for the default path.
		panic(err)
	}
	return s
}

// NewCloudServerWith returns a server on the full configuration.
func NewCloudServerWith(cfg CloudConfig) (*CloudServer, error) {
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	clk := vclock.NewScaledReal(cfg.TimeScale)
	batcher, err := cluster.NewBatcher(cluster.BatcherConfig{
		Clock:      clk,
		Model:      cfg.Model,
		MaxBatch:   cfg.MaxBatch,
		SLO:        cfg.SLO,
		MaxPending: cfg.MaxPending,
		Slots:      cfg.Slots,
		CloudSpeed: cfg.CloudSpeed,
		Obs:        cfg.Obs,
	})
	if err != nil {
		return nil, err
	}
	return &CloudServer{
		Logf:    func(string, ...any) {},
		cfg:     cfg,
		clk:     clk,
		batcher: batcher,
		conns:   make(map[net.Conn]struct{}),
	}, nil
}

// Listen starts accepting on addr (e.g. ":9402" or "127.0.0.1:0") and
// returns the bound address.
func (s *CloudServer) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *CloudServer) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serve(conn)
	}
}

func (s *CloudServer) serve(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	wc := wire.NewConn(conn)
	var sendMu sync.Mutex
	for {
		env, err := wc.Recv()
		if err != nil {
			return
		}
		switch env.Kind {
		case wire.KindBye:
			return
		case wire.KindCloudRequest:
			req := env.CloudRequest
			// Each request blocks in the shared batcher on its own
			// goroutine until its batch completes (or admission control
			// sheds it); replies serialize on the encoder.
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				start := time.Now()
				vreq := core.ValidationRequest{Frame: &req.Frame, Margin: req.Margin}
				// A traced request links this process into the frame's
				// trace: a cloud.request span child of the edge's
				// rpc.cloud span, and the batcher's queue/shed spans
				// hang off it in turn.
				var spanID uint64
				var t0 time.Duration
				o := s.cfg.Obs
				if o != nil && req.Trace != nil && req.Trace.Trace != 0 {
					spanID = obs.HashID("span", obs.U64(req.Trace.Trace), obs.SpanCloudRequest,
						obs.U64(uint64(req.FrameIndex)), obs.U64(uint64(req.Trace.Section)))
					vreq.Trace = obs.SpanContext{Trace: req.Trace.Trace, Span: spanID, Parent: req.Trace.Parent}
					t0 = s.clk.Now()
				}
				res := s.batcher.Validate(vreq)
				resp := &wire.CloudResponse{FrameIndex: req.FrameIndex, DetectTime: time.Since(start), Trace: req.Trace}
				if spanID != 0 {
					o.EmitSpan(obs.Span{
						Name: obs.SpanCloudRequest, Tags: obs.Tags("section", strconv.Itoa(req.Trace.Section)),
						Start: t0, End: s.clk.Now(),
						Trace: req.Trace.Trace, ID: spanID, Parent: req.Trace.Parent,
					})
				}
				if res.Status == core.Validated {
					resp.Labels = res.Cloud
					s.mu.Lock()
					s.handled++
					s.mu.Unlock()
				} else {
					resp.Shed = true
					s.mu.Lock()
					s.shed++
					s.mu.Unlock()
				}
				sendMu.Lock()
				defer sendMu.Unlock()
				if err := wc.Send(&wire.Envelope{Kind: wire.KindCloudResponse, CloudResponse: resp}); err != nil {
					s.Logf("cloud: send response: %v", err)
				}
			}()
		default:
			s.Logf("cloud: unexpected message kind %q", env.Kind)
			return
		}
	}
}

// Handled reports how many frames the server has detected (shed requests
// excluded — see Shed).
func (s *CloudServer) Handled() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.handled
}

// Shed reports how many requests admission control dropped.
func (s *CloudServer) Shed() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shed
}

// BatcherStats snapshots the shared validation batcher's counters —
// batches, mean/max batch size, shed count, flush waits.
func (s *CloudServer) BatcherStats() cluster.BatcherStats {
	return s.batcher.Stats()
}

// Close stops the listener and closes every connection.
func (s *CloudServer) Close() error {
	s.mu.Lock()
	s.closed = true
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	if err != nil && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}

// StdLogf returns a stderr logger for the deployment binaries.
func StdLogf(prefix string) func(string, ...any) {
	return func(format string, args ...any) {
		log.Printf(prefix+": "+format, args...)
	}
}
