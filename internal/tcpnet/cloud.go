// Package tcpnet deploys the Croesus pipeline over real TCP: a cloud
// server running the full model, an edge server running the compact model
// plus the multi-stage transaction machinery, and a client that streams
// frames. The node logic mirrors internal/core but against wall-clock time
// and real sockets; TimeScale compresses the simulated inference latencies
// so integration tests finish quickly.
package tcpnet

import (
	"errors"
	"log"
	"net"
	"sync"
	"time"

	"croesus/internal/detect"
	"croesus/internal/wire"
)

// CloudServer serves detection requests with the full model.
type CloudServer struct {
	Model detect.Model
	// TimeScale multiplies modeled inference latency before sleeping
	// (1.0 = full fidelity; tests use ~0.01).
	TimeScale float64
	Logf      func(format string, args ...any)

	mu      sync.Mutex
	ln      net.Listener
	conns   map[net.Conn]struct{}
	closed  bool
	handled int64
	wg      sync.WaitGroup
}

// NewCloudServer returns a server for the model.
func NewCloudServer(model detect.Model, timeScale float64) *CloudServer {
	if timeScale <= 0 {
		timeScale = 1
	}
	return &CloudServer{
		Model:     model,
		TimeScale: timeScale,
		Logf:      func(string, ...any) {},
		conns:     make(map[net.Conn]struct{}),
	}
}

// Listen starts accepting on addr (e.g. ":9402" or "127.0.0.1:0") and
// returns the bound address.
func (s *CloudServer) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *CloudServer) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serve(conn)
	}
}

func (s *CloudServer) serve(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	wc := wire.NewConn(conn)
	var sendMu sync.Mutex
	for {
		env, err := wc.Recv()
		if err != nil {
			return
		}
		switch env.Kind {
		case wire.KindBye:
			return
		case wire.KindCloudRequest:
			req := env.CloudRequest
			// Requests detect concurrently (the cloud machine has slots
			// to spare); replies serialize on the encoder.
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				start := time.Now()
				res := s.Model.Detect(&req.Frame)
				time.Sleep(time.Duration(float64(res.Latency) * s.TimeScale))
				s.mu.Lock()
				s.handled++
				s.mu.Unlock()
				sendMu.Lock()
				defer sendMu.Unlock()
				err := wc.Send(&wire.Envelope{
					Kind: wire.KindCloudResponse,
					CloudResponse: &wire.CloudResponse{
						FrameIndex: req.FrameIndex,
						Labels:     res.Detections,
						DetectTime: time.Since(start),
					},
				})
				if err != nil {
					s.Logf("cloud: send response: %v", err)
				}
			}()
		default:
			s.Logf("cloud: unexpected message kind %q", env.Kind)
			return
		}
	}
}

// Handled reports how many frames the server has detected.
func (s *CloudServer) Handled() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.handled
}

// Close stops the listener and closes every connection.
func (s *CloudServer) Close() error {
	s.mu.Lock()
	s.closed = true
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	if err != nil && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}

// discardLogf is a helper for binaries that want stderr logging.
func StdLogf(prefix string) func(string, ...any) {
	return func(format string, args ...any) {
		log.Printf(prefix+": "+format, args...)
	}
}
