package tcpnet

import (
	"testing"
	"time"

	"croesus/internal/core"
	"croesus/internal/detect"
	"croesus/internal/node"
	"croesus/internal/video"
)

// TestMSSROverTCP runs the real deployment under multi-stage
// serializability — fleet parity the old hardcoded-MS-IA edge lacked.
func TestMSSROverTCP(t *testing.T) {
	cloud := NewCloudServer(detect.YOLOv3Sim(detect.YOLO416, 42), testScale)
	cloudAddr, err := cloud.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cloud.Close()
	edge, err := NewEdgeServer(EdgeConfig{
		EdgeModel: detect.TinyYOLOSim(42),
		CloudAddr: cloudAddr,
		TimeScale: testScale,
		ThetaL:    0, ThetaU: 1,
		Protocol: node.MSSR,
		Source:   core.NewWorkloadSource(500, 7),
	})
	if err != nil {
		t.Fatal(err)
	}
	edgeAddr, err := edge.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()
	client, err := Dial(edgeAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	frames := video.NewGenerator(video.ParkDog(), 11).Generate(6)
	for _, f := range frames {
		if err := client.Submit(f, 0); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	for _, f := range frames {
		if _, err := client.WaitFrame(f.Index, 15*time.Second); err != nil {
			t.Fatalf("frame %d: %v", f.Index, err)
		}
	}
	st := edge.Manager().Stats()
	if st.InitialCommits == 0 || st.FinalCommits == 0 {
		t.Errorf("MS-SR committed nothing: %+v", st)
	}
	if got := edge.Served(); got != int64(len(frames)) {
		t.Errorf("served %d frames under MS-SR, want %d", got, len(frames))
	}
}

// TestCloudShedsUnderOverloadOverTCP provisions the cloud to overload
// (one-frame batches, a one-deep admission queue, a starved GPU) and
// floods it: some frames must come back shed, finalized with the edge
// answer — the fleet's degradation mode working over real sockets, with
// the shed accounted at the cloud, the edge, and the client.
func TestCloudShedsUnderOverloadOverTCP(t *testing.T) {
	cloud, err := NewCloudServerWith(CloudConfig{
		Model:      detect.YOLOv3Sim(detect.YOLO416, 42),
		TimeScale:  testScale,
		MaxBatch:   1,
		MaxPending: 1,
		CloudSpeed: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	cloudAddr, err := cloud.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cloud.Close()
	edge, err := NewEdgeServer(EdgeConfig{
		EdgeModel: detect.TinyYOLOSim(42),
		CloudAddr: cloudAddr,
		TimeScale: testScale,
		ThetaL:    0, ThetaU: 1, // validate everything visible
	})
	if err != nil {
		t.Fatal(err)
	}
	edgeAddr, err := edge.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()
	client, err := Dial(edgeAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	frames := video.NewGenerator(video.StreetVehicles(), 11).Generate(24)
	for _, f := range frames {
		if err := client.Submit(f, 0); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	shed, validatedLabels := 0, 0
	for _, f := range frames {
		r, err := client.WaitFrame(f.Index, 30*time.Second)
		if err != nil {
			t.Fatalf("frame %d: %v", f.Index, err)
		}
		if r.Shed {
			shed++
			if len(r.Final) != len(r.Initial) {
				t.Errorf("frame %d: shed but final labels differ from the edge answer", f.Index)
			}
		} else if r.SentToCloud {
			validatedLabels++
		}
	}
	if shed == 0 {
		t.Fatal("overloaded cloud shed nothing — admission control is not acting over TCP")
	}
	if validatedLabels == 0 {
		t.Fatal("every frame shed — the batcher validated nothing")
	}
	if cloud.Shed() == 0 || edge.Shed() == 0 {
		t.Errorf("shed accounting disagrees: cloud %d, edge %d, client %d", cloud.Shed(), edge.Shed(), shed)
	}
	if bs := cloud.BatcherStats(); bs.Shed == 0 || bs.Batches == 0 {
		t.Errorf("batcher stats unpopulated: %+v", bs)
	}
}

// TestMultiEdgeSharedCloud runs two edge servers against one cloud — the
// multi-edge parity point: both edges' requests coalesce in the one shared
// batcher.
func TestMultiEdgeSharedCloud(t *testing.T) {
	cloud := NewCloudServer(detect.YOLOv3Sim(detect.YOLO416, 42), testScale)
	cloudAddr, err := cloud.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cloud.Close()

	clients := make([]*Client, 2)
	for i := range clients {
		edge, err := NewEdgeServer(EdgeConfig{
			EdgeModel: detect.TinyYOLOSim(42),
			CloudAddr: cloudAddr,
			TimeScale: testScale,
			ThetaL:    0, ThetaU: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		addr, err := edge.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer edge.Close()
		if clients[i], err = Dial(addr); err != nil {
			t.Fatal(err)
		}
		defer clients[i].Close()
	}

	const perEdge = 5
	for i, cl := range clients {
		frames := video.NewGenerator(video.ParkDog(), int64(20+i)).Generate(perEdge)
		for _, f := range frames {
			if err := cl.Submit(f, 0); err != nil {
				t.Fatalf("edge %d submit: %v", i, err)
			}
		}
	}
	for i, cl := range clients {
		for idx := 0; idx < perEdge; idx++ {
			if _, err := cl.WaitFrame(idx, 15*time.Second); err != nil {
				t.Fatalf("edge %d frame %d: %v", i, idx, err)
			}
		}
	}
	if got := cloud.Handled() + cloud.Shed(); got == 0 {
		t.Fatal("the shared cloud saw no traffic from either edge")
	}
	if bs := cloud.BatcherStats(); bs.Frames == 0 {
		t.Errorf("shared batcher carried no frames: %+v", bs)
	}
}
