package tcpnet

import (
	"fmt"
	"net"
	"sync"
	"time"

	"croesus/internal/detect"
	"croesus/internal/obs"
	"croesus/internal/vclock"
	"croesus/internal/video"
	"croesus/internal/wire"
)

// FrameResult collects the two responses for one submitted frame.
type FrameResult struct {
	FrameIndex  int
	Initial     []detect.Detection
	Final       []detect.Detection
	SentToCloud bool
	Corrections int
	Apologies   []string
	// Shed reports that the cloud's admission control dropped this frame's
	// validation; the final labels are the edge's own.
	Shed           bool
	InitialLatency time.Duration // submit → initial reply received
	FinalLatency   time.Duration // submit → final reply received
}

// Client streams frames to an edge server and collects both commit
// responses per frame.
type Client struct {
	conn   *wire.Conn
	sendMu sync.Mutex

	mu      sync.Mutex
	started map[int]time.Time
	results map[int]*FrameResult
	done    map[int]chan struct{}
	readErr error

	// Tracing (EnableTrace): the client opens each frame's trace and
	// records a client.frame span covering submit → final reply.
	o      *obs.Obs
	oclk   vclock.Clock
	cam    string
	traceT map[int]time.Duration // trace-clock submit times
}

// Dial connects to the edge server.
func Dial(addr string) (*Client, error) {
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	cl := &Client{
		conn:    wire.NewConn(c),
		started: make(map[int]time.Time),
		results: make(map[int]*FrameResult),
		done:    make(map[int]chan struct{}),
	}
	go cl.readLoop()
	return cl, nil
}

// EnableTrace attaches an observability layer: every frame submitted
// afterwards opens a distributed trace whose ID is a deterministic hash
// of cam and the frame index, the frame's wire message carries the
// context so the edge (and through it the cloud) joins the same trace,
// and a client.frame root span covering submit → final reply is recorded
// on clk. Call before Submit; not concurrent-safe with in-flight frames.
func (c *Client) EnableTrace(o *obs.Obs, clk vclock.Clock, cam string) {
	c.mu.Lock()
	c.o, c.oclk, c.cam = o, clk, cam
	c.traceT = make(map[int]time.Duration)
	c.mu.Unlock()
}

// traceIDs derives the frame's trace and client-root span IDs.
func (c *Client) traceIDs(idx int) (trace, root uint64) {
	trace = obs.HashID("trace", c.cam, obs.U64(uint64(idx)))
	return trace, obs.HashID("span", obs.U64(trace), obs.SpanClientFrame)
}

func (c *Client) readLoop() {
	for {
		env, err := c.conn.Recv()
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			for _, ch := range c.done {
				select {
				case <-ch:
				default:
					close(ch)
				}
			}
			c.mu.Unlock()
			return
		}
		switch env.Kind {
		case wire.KindInitialReply:
			r := env.InitialReply
			c.mu.Lock()
			fr := c.result(r.FrameIndex)
			fr.Initial = r.Labels
			fr.SentToCloud = r.SentToCloud
			fr.InitialLatency = time.Since(c.started[r.FrameIndex])
			c.mu.Unlock()
		case wire.KindFinalReply:
			r := env.FinalReply
			c.mu.Lock()
			fr := c.result(r.FrameIndex)
			fr.Final = r.Labels
			fr.Corrections = r.Corrections
			fr.Apologies = r.Apologies
			fr.Shed = r.Shed
			fr.FinalLatency = time.Since(c.started[r.FrameIndex])
			if c.o != nil {
				if t0, ok := c.traceT[r.FrameIndex]; ok {
					delete(c.traceT, r.FrameIndex)
					trace, root := c.traceIDs(r.FrameIndex)
					c.o.EmitSpan(obs.Span{
						Name: obs.SpanClientFrame, Tags: obs.Tags("camera", c.cam),
						Start: t0, End: c.oclk.Now(),
						Trace: trace, ID: root,
					})
				}
			}
			if ch, ok := c.done[r.FrameIndex]; ok {
				close(ch)
			}
			c.mu.Unlock()
		}
	}
}

// result returns (creating if needed) the record for a frame. Callers hold
// c.mu.
func (c *Client) result(idx int) *FrameResult {
	fr, ok := c.results[idx]
	if !ok {
		fr = &FrameResult{FrameIndex: idx}
		c.results[idx] = fr
	}
	return fr
}

// Submit sends one frame; the result arrives asynchronously.
func (c *Client) Submit(f *video.Frame, padding int) error {
	ch := make(chan struct{})
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return err
	}
	c.started[f.Index] = time.Now()
	c.done[f.Index] = ch
	var tc *wire.TraceCtx
	if c.o != nil {
		trace, root := c.traceIDs(f.Index)
		c.traceT[f.Index] = c.oclk.Now()
		tc = &wire.TraceCtx{Trace: trace, Parent: root}
	}
	c.mu.Unlock()

	var pad []byte
	if padding > 0 {
		pad = make([]byte, padding)
	}
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	return c.conn.Send(&wire.Envelope{Kind: wire.KindFrame, Frame: &wire.Frame{Frame: *f, Padding: pad, Trace: tc}})
}

// WaitFrame blocks until the frame's final reply arrives (or the
// connection fails / the timeout expires) and returns its result.
func (c *Client) WaitFrame(idx int, timeout time.Duration) (*FrameResult, error) {
	c.mu.Lock()
	ch, ok := c.done[idx]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("tcpnet: frame %d was never submitted", idx)
	}
	select {
	case <-ch:
	case <-time.After(timeout):
		return nil, fmt.Errorf("tcpnet: frame %d timed out after %v", idx, timeout)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// A dead connection wakes every waiter; a frame whose final reply
	// never arrived (possibly never any reply — r is nil) reports the
	// connection error, not a partial result.
	r := c.results[idx]
	if c.readErr != nil && (r == nil || r.Final == nil) {
		return nil, c.readErr
	}
	if r == nil {
		return nil, fmt.Errorf("tcpnet: frame %d has no result", idx)
	}
	return r, nil
}

// Results returns a snapshot of all frame results.
func (c *Client) Results() []*FrameResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*FrameResult, 0, len(c.results))
	for _, r := range c.results {
		out = append(out, r)
	}
	return out
}

// Close says goodbye and closes the connection.
func (c *Client) Close() error {
	c.sendMu.Lock()
	c.conn.Send(&wire.Envelope{Kind: wire.KindBye})
	c.sendMu.Unlock()
	return c.conn.Close()
}
