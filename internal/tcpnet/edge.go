package tcpnet

import (
	"fmt"
	"net"
	"sync"
	"time"

	"croesus/internal/core"
	"croesus/internal/detect"
	"croesus/internal/netsim"
	"croesus/internal/node"
	"croesus/internal/obs"
	"croesus/internal/transport"
	"croesus/internal/txn"
	"croesus/internal/vclock"
	"croesus/internal/video"
	"croesus/internal/wire"
)

// EdgeConfig assembles an edge server.
type EdgeConfig struct {
	EdgeModel detect.Model
	CloudAddr string // cloud server address; empty disables validation
	// TimeScale compresses modeled inference latencies (1.0 = full
	// fidelity; tests use ~0.01). The server runs on a scaled wall clock,
	// so the one pipeline implementation drives it unchanged.
	TimeScale float64
	// Thresholds for bandwidth thresholding (§3.4).
	ThetaL, ThetaU float64
	MinConfidence  float64
	OverlapMin     float64
	// Protocol selects the multi-stage protocol: node.MSIA (default) or
	// node.MSSR — the same selection a fleet edge makes.
	Protocol node.Protocol
	// Graph, when set to a non-canonical spec, runs every client session
	// over the N-section inference graph instead of the two-stage
	// pipeline: edge-tier nodes run their models in this server's compute
	// pool, cloud-tier nodes ship the frame over the real cloud socket
	// (wire.CloudRequest.Section names the hop's section). A standalone
	// edge has no peer mesh, so peer-tier nodes are rejected.
	Graph *node.GraphSpec
	// Slots bounds concurrent edge inferences across every connected
	// client (default 4) — the server's compute pool.
	Slots int
	// Source supplies the per-detection transactions; nil runs the
	// detection pipeline without a database.
	Source core.TxnSource
	Logf   func(format string, args ...any)
	// Obs, when set, threads the observability layer through every client
	// session's pipeline and the transaction manager: per-stage spans on
	// the wall clock plus fleet counters, latency histograms, and the
	// inference-queue-depth gauge — what -debug-addr serves.
	Obs *obs.Obs
	// EdgeID tags this server's metrics and spans (default "edge").
	EdgeID string
	// WALPath, when set, makes the edge durable: every transactional write
	// is journaled write-ahead to this file, and on startup any existing
	// log is replayed into the store first — so a SIGKILLed edge respawned
	// on the same path recovers its committed state.
	WALPath string
	// WALNoSync skips the per-append fsync. Process-crash durability is
	// unaffected (the bytes are in the page cache); only a machine crash
	// could lose the tail.
	WALNoSync bool
	// ClientEdgeShape and EdgeCloudShape, when set, inject the modeled
	// link profiles into the real hops: every ingested frame pays the
	// client→edge link's time and every validation round trip the
	// edge→cloud link's, shaped on the server's scaled clock — so a
	// multi-process deployment's latency distribution is comparable
	// like-for-like with the sim's. Nil leaves the hops at socket speed.
	ClientEdgeShape *transport.Shaper
	EdgeCloudShape  *transport.Shaper
}

// EdgeServer is the edge node of the real multi-process deployment. It is
// assembled from the same pieces as a fleet edge: the shared node
// assembly (store, locks, transaction manager, MS-IA or MS-SR concurrency
// control) and the core pipeline — the one Figure-1 execution — driven
// per frame over real sockets. The client socket replaces the modeled
// client→edge path and a cloud connection replaces the modeled uplink
// (both transport.Null in the pipeline, so nothing is double-charged);
// the cloud side is the batched, shedding validator, so overload degrades
// to edge answers exactly as in the simulated fleet.
type EdgeServer struct {
	cfg        EdgeConfig
	clk        vclock.Clock
	asm        *node.Assembly
	graph      *core.Graph // non-nil when a non-canonical Graph is configured
	compute    *vclock.Semaphore
	queueDepth *obs.Gauge // shared across sessions: one compute pool, one gauge

	// clientPath and cloudPath are the server's modeled network seams,
	// shared across every session exactly as a fleet edge shares its
	// links: the pipeline charges ingest/return hops on clientPath, and
	// validation round trips ship over cloudPath. Unshaped they cost
	// nothing, but they remain the severing point for orchestrator-driven
	// per-path blackholes (the fleet's link_fault).
	clientPath *transport.ShapedPath
	cloudPath  *transport.ShapedPath

	walB     *walBackend // nil without WALPath
	replayed int         // WAL records replayed at startup

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	draining bool
	served   int64
	shed     int64
	dropped  int64 // frames refused by drain or a severed client path
	wg       sync.WaitGroup
}

// NewEdgeServer builds an edge server; the data stack is the shared
// fleet-node assembly on a scaled wall clock.
func NewEdgeServer(cfg EdgeConfig) (*EdgeServer, error) {
	if cfg.EdgeModel == nil {
		return nil, fmt.Errorf("tcpnet: EdgeModel is required")
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	if cfg.MinConfidence == 0 {
		cfg.MinConfidence = 0.05
	}
	if cfg.OverlapMin == 0 {
		cfg.OverlapMin = 0.10
	}
	if cfg.Slots == 0 {
		cfg.Slots = 4
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.EdgeID == "" {
		cfg.EdgeID = "edge"
	}
	clk := vclock.NewScaledReal(cfg.TimeScale)
	s := &EdgeServer{
		cfg:     cfg,
		clk:     clk,
		asm:     node.New(clk, cfg.Protocol),
		compute: vclock.NewSemaphore(clk, cfg.Slots),
		conns:   make(map[net.Conn]struct{}),
	}
	s.clientPath = transport.NewShapedPath(transport.Null{}, cfg.ClientEdgeShape, clk)
	s.cloudPath = transport.NewShapedPath(transport.Null{}, cfg.EdgeCloudShape, clk)
	if cfg.Obs != nil {
		s.queueDepth = cfg.Obs.Gauge(obs.MetricEdgeQueueDepth, obs.Tags("edge", cfg.EdgeID))
		s.asm.Mgr.Tracer = cfg.Obs.Tracer()
		s.asm.Mgr.TraceTags = obs.Tags("edge", cfg.EdgeID, "protocol", cfg.Protocol.String())
	}
	if cfg.WALPath != "" {
		b, replayed, err := openWALBackend(cfg.WALPath, cfg.WALNoSync, s.asm.Store, cfg.Logf)
		if err != nil {
			return nil, fmt.Errorf("tcpnet: wal: %w", err)
		}
		s.walB = b
		s.replayed = replayed
		// Every section write and every retraction restore journals
		// write-ahead; a respawned edge replays to committed state.
		s.asm.Mgr.DB = b
		s.asm.Mgr.RestoreDB = b
	}
	if cfg.Graph != nil && !cfg.Graph.Canonical2Stage() {
		// One standalone edge: the graph validates against a fleet of 1,
		// which rejects peer-tier nodes. Cloud-tier models compile but run
		// remotely; the fixed seed only feeds the extra edge-tier models.
		g, err := cfg.Graph.Compile(1, 42)
		if err != nil {
			return nil, fmt.Errorf("tcpnet: %w", err)
		}
		s.graph = g
		if ps, ok := cfg.Source.(interface{ SetPlan([]txn.SectionSpec) }); ok {
			ps.SetPlan(g.SectionPlan())
		}
	}
	return s, nil
}

// Manager exposes the transaction manager (for inspection in tests).
func (s *EdgeServer) Manager() *txn.Manager { return s.asm.Mgr }

// Listen starts accepting client connections and returns the bound address.
func (s *EdgeServer) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *EdgeServer) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveClient(conn)
	}
}

// cloudSession multiplexes cloud requests over one connection.
type cloudSession struct {
	conn    *wire.Conn
	sendMu  sync.Mutex
	mu      sync.Mutex
	pending map[int]chan *wire.CloudResponse
	err     error
}

func dialCloud(addr string) (*cloudSession, error) {
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	cs := &cloudSession{
		conn:    wire.NewConn(c),
		pending: make(map[int]chan *wire.CloudResponse),
	}
	go cs.readLoop()
	return cs, nil
}

func (cs *cloudSession) readLoop() {
	for {
		env, err := cs.conn.Recv()
		if err != nil {
			cs.mu.Lock()
			cs.err = err
			for _, ch := range cs.pending {
				close(ch)
			}
			cs.pending = make(map[int]chan *wire.CloudResponse)
			cs.mu.Unlock()
			return
		}
		if env.Kind != wire.KindCloudResponse {
			continue
		}
		cs.mu.Lock()
		ch, ok := cs.pending[env.CloudResponse.FrameIndex]
		if ok {
			delete(cs.pending, env.CloudResponse.FrameIndex)
		}
		cs.mu.Unlock()
		if ok {
			ch <- env.CloudResponse
			close(ch)
		}
	}
}

// validate sends the frame for cloud detection and waits for the reply.
func (cs *cloudSession) validate(req *wire.CloudRequest) (*wire.CloudResponse, error) {
	ch := make(chan *wire.CloudResponse, 1)
	cs.mu.Lock()
	if cs.err != nil {
		cs.mu.Unlock()
		return nil, cs.err
	}
	cs.pending[req.FrameIndex] = ch
	cs.mu.Unlock()

	cs.sendMu.Lock()
	err := cs.conn.Send(&wire.Envelope{Kind: wire.KindCloudRequest, CloudRequest: req})
	cs.sendMu.Unlock()
	if err != nil {
		return nil, err
	}
	resp, ok := <-ch
	if !ok {
		return nil, fmt.Errorf("tcpnet: cloud connection lost")
	}
	return resp, nil
}

func (cs *cloudSession) close() {
	cs.sendMu.Lock()
	cs.conn.Send(&wire.Envelope{Kind: wire.KindBye})
	cs.sendMu.Unlock()
	cs.conn.Close()
}

// session is one client connection: its own pipeline instance (bound to
// the server's shared assembly and compute pool) plus the reply plumbing.
// It implements core.Validator over the cloud connection, so the pipeline's
// validation step is a real socket round trip.
type session struct {
	srv    *EdgeServer
	wc     *wire.Conn
	sendMu sync.Mutex
	cloud  *cloudSession
	pipe   *core.Pipeline

	mu      sync.Mutex
	started map[int]time.Time
	padding map[int][]byte
	traces  map[int]*wire.TraceCtx // per-frame wire trace context (tracing only)
}

func (s *EdgeServer) serveClient(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	sess := &session{
		srv:     s,
		wc:      wire.NewConn(conn),
		started: make(map[int]time.Time),
		padding: make(map[int][]byte),
		traces:  make(map[int]*wire.TraceCtx),
	}
	if s.cfg.CloudAddr != "" {
		cloud, err := dialCloud(s.cfg.CloudAddr)
		if err != nil {
			s.cfg.Logf("edge: dial cloud %s: %v", s.cfg.CloudAddr, err)
			return
		}
		sess.cloud = cloud
		defer cloud.close()
	}
	pipe, err := s.buildPipeline(sess)
	if err != nil {
		s.cfg.Logf("edge: pipeline: %v", err)
		return
	}
	sess.pipe = pipe

	var frameWG sync.WaitGroup
	defer frameWG.Wait()
	for {
		env, err := sess.wc.Recv()
		if err != nil {
			return
		}
		switch env.Kind {
		case wire.KindBye:
			return
		case wire.KindFrame:
			f := env.Frame
			frameWG.Add(1)
			go func() {
				defer frameWG.Done()
				sess.handleFrame(f)
			}()
		default:
			s.cfg.Logf("edge: unexpected kind %q", env.Kind)
			return
		}
	}
}

// buildPipeline assembles the shared Figure-1 pipeline for one client
// connection. The client socket already delivered the frame and the cloud
// socket carries validation traffic, so the pipeline must not charge real
// links on top: ClientEdge is the server's shared shaped seam (zero-cost
// unshaped, the modeled link's time when shaping is on) and EdgeCloud is
// Null — the cloud hop is shaped inside the session's Validate, where the
// real round trip happens.
func (s *EdgeServer) buildPipeline(sess *session) (*core.Pipeline, error) {
	cfg := core.Config{
		Clock:         s.clk,
		Mode:          core.ModeCroesus,
		EdgeModel:     s.cfg.EdgeModel,
		EdgeCompute:   s.compute,
		ClientEdge:    s.clientPath,
		EdgeCloud:     transport.Null{},
		MinConfidence: s.cfg.MinConfidence,
		ThetaL:        s.cfg.ThetaL,
		ThetaU:        s.cfg.ThetaU,
		OverlapMin:    s.cfg.OverlapMin,
		Validator:     sess,
		OnInitial:     sess.onInitial,
		Obs:           s.cfg.Obs,
		TagKV:         []string{"edge", s.cfg.EdgeID, "protocol", s.cfg.Protocol.String()},
		QueueDepth:    s.queueDepth,
	}
	if s.cfg.Obs != nil {
		cfg.SpanCtx = sess.spanCtx
	}
	if s.cfg.Source != nil {
		cfg.Source = s.cfg.Source
		cfg.CC = s.asm.CC
		cfg.Mgr = s.asm.Mgr
	}
	if s.graph != nil {
		cfg.Graph = s.graph
		cfg.GraphValidate = sess.graphValidate
	}
	return core.New(cfg)
}

// spanCtx is the pipeline's per-frame trace hook: the frame joins the
// client's trace when the wire message carried one, otherwise the edge
// opens its own. The frame-root span ID is a deterministic hash, so the
// client's echoed replies and the cloud's child spans agree on it
// without coordination.
func (ss *session) spanCtx(f *video.Frame) obs.SpanContext {
	ss.mu.Lock()
	tc := ss.traces[f.Index]
	ss.mu.Unlock()
	if tc != nil && tc.Trace != 0 {
		return obs.SpanContext{
			Trace:  tc.Trace,
			Span:   obs.HashID("span", obs.U64(tc.Trace), obs.SpanFrameRoot),
			Parent: tc.Parent,
		}
	}
	trace := obs.HashID("trace", ss.srv.cfg.EdgeID, obs.U64(uint64(f.Index)))
	return obs.SpanContext{Trace: trace, Span: obs.HashID("span", obs.U64(trace), obs.SpanFrameRoot)}
}

// rpcSpanID names the edge-side rpc.cloud span for one frame's section-k
// cloud hop; the cloud's cloud.request span points at it as parent.
func rpcSpanID(trace uint64, frameIdx, section int) uint64 {
	return obs.HashID("span", obs.U64(trace), obs.SpanRPCCloud, obs.U64(uint64(frameIdx)), obs.U64(uint64(section)))
}

// echoCtx builds the trace context replies carry back to the client.
func (ss *session) echoCtx(f *video.Frame) *wire.TraceCtx {
	if ss.srv.cfg.Obs == nil {
		return nil
	}
	ctx := ss.spanCtx(f)
	return &wire.TraceCtx{Trace: ctx.Trace, Parent: ctx.Span}
}

// graphValidate runs a cloud-tier graph node over the real cloud socket:
// the frame crosses with its section index, the cloud's batcher detects
// (or sheds) it, and the labels come back. A lost connection or a shed
// request returns ok == false and the section commits with the labels
// assumed correct.
func (ss *session) graphValidate(f *video.Frame, section int) ([]detect.Detection, time.Duration, bool) {
	if ss.cloud == nil || ss.srv.cloudPath.IsDown() {
		return nil, 0, false
	}
	ss.mu.Lock()
	pad := ss.padding[f.Index]
	ss.mu.Unlock()
	var tc *wire.TraceCtx
	var ctx obs.SpanContext
	o := ss.srv.cfg.Obs
	if o != nil {
		ctx = ss.spanCtx(f)
		tc = &wire.TraceCtx{Trace: ctx.Trace, Parent: rpcSpanID(ctx.Trace, f.Index, section), Section: section}
	}
	t0 := ss.srv.clk.Now()
	ss.srv.cloudPath.Send(ss.srv.clk, f.SizeBytes) // modeled uplink (shaped runs only)
	resp, err := ss.cloud.validate(&wire.CloudRequest{
		FrameIndex: f.Index,
		Frame:      *f,
		Padding:    pad,
		Section:    section,
		Trace:      tc,
	})
	if err == nil {
		ss.srv.cloudPath.Send(ss.srv.clk, netsim.LabelReturnBytes) // modeled downlink
	}
	if tc != nil {
		o.EmitSpan(obs.Span{
			Name: obs.SpanRPCCloud, Tags: obs.Tags("edge", ss.srv.cfg.EdgeID),
			Start: t0, End: ss.srv.clk.Now(),
			Trace: ctx.Trace, ID: tc.Parent, Parent: ctx.Span,
		})
	}
	if err != nil {
		ss.srv.cfg.Logf("edge: graph section %d cloud hop failed, assuming labels: %v", section, err)
		return nil, 0, false
	}
	if resp.Shed {
		return nil, 0, false
	}
	return resp.Labels, resp.DetectTime, true
}

// handleFrame runs one frame through the pipeline. The initial reply is
// sent by the OnInitial hook at the initial commit; the final reply here.
func (ss *session) handleFrame(f *wire.Frame) {
	// A draining edge (edge_retire) or a severed client path (link fault)
	// refuses the frame: no replies leave, and the client accounts the
	// frame as dropped when its wait times out.
	srv := ss.srv
	srv.mu.Lock()
	refusing := srv.draining
	srv.mu.Unlock()
	if refusing || srv.clientPath.IsDown() {
		srv.mu.Lock()
		srv.dropped++
		srv.mu.Unlock()
		return
	}
	frame := f.Frame
	ss.mu.Lock()
	ss.started[frame.Index] = time.Now()
	ss.padding[frame.Index] = f.Padding
	ss.traces[frame.Index] = f.Trace
	ss.mu.Unlock()

	out := ss.pipe.ProcessFrame(&frame)

	echo := ss.echoCtx(&frame)
	ss.mu.Lock()
	start := ss.started[frame.Index]
	delete(ss.started, frame.Index)
	delete(ss.padding, frame.Index)
	delete(ss.traces, frame.Index)
	ss.mu.Unlock()

	apologies := make([]string, 0, len(out.Apologies))
	for _, a := range out.Apologies {
		apologies = append(apologies, a.Reason)
	}
	if err := ss.send(&wire.Envelope{Kind: wire.KindFinalReply, FinalReply: &wire.FinalReply{
		FrameIndex:  frame.Index,
		Labels:      out.FinalVisible,
		Corrections: out.Corrections,
		Apologies:   apologies,
		Shed:        out.Shed,
		EdgeElapsed: time.Since(start),
		Trace:       echo,
	}}); err != nil {
		ss.srv.cfg.Logf("edge: send final reply: %v", err)
	}

	ss.srv.mu.Lock()
	ss.srv.served++
	if out.Shed {
		ss.srv.shed++
	}
	ss.srv.mu.Unlock()
}

// onInitial is the pipeline's initial-commit hook: the initial reply
// leaves for the client the moment the initial sections commit, before any
// cloud round trip — the paper's low-latency answer.
func (ss *session) onInitial(f *video.Frame, out *core.FrameOutcome) {
	ss.mu.Lock()
	start := ss.started[f.Index]
	ss.mu.Unlock()
	if err := ss.send(&wire.Envelope{Kind: wire.KindInitialReply, InitialReply: &wire.InitialReply{
		FrameIndex:  f.Index,
		Labels:      out.InitialVisible,
		Triggered:   out.TxnsTriggered,
		Aborted:     out.InitialAborts,
		SentToCloud: out.SentToCloud && ss.cloud != nil,
		EdgeElapsed: time.Since(start),
		Trace:       ss.echoCtx(f),
	}}); err != nil {
		ss.srv.cfg.Logf("edge: send initial reply: %v", err)
	}
}

// Validate implements core.Validator over the real cloud connection: the
// frame crosses the socket, the cloud's shared batcher detects (or sheds)
// it, and the labels come back. No cloud configured — or a lost
// connection — finalizes locally, immediately: availability over
// freshness, with the initial commit already answered.
func (ss *session) Validate(req core.ValidationRequest) core.ValidationResult {
	if ss.cloud == nil || ss.srv.cloudPath.IsDown() {
		return core.ValidationResult{Status: core.ValidationLost}
	}
	ss.mu.Lock()
	pad := ss.padding[req.Frame.Index]
	ss.mu.Unlock()
	var tc *wire.TraceCtx
	o := ss.srv.cfg.Obs
	if o != nil && req.Trace.Valid() {
		tc = &wire.TraceCtx{Trace: req.Trace.Trace, Parent: rpcSpanID(req.Trace.Trace, req.Frame.Index, 0)}
	}
	start := time.Now()
	t0 := ss.srv.clk.Now()
	ss.srv.cloudPath.Send(ss.srv.clk, req.Frame.SizeBytes) // modeled uplink (shaped runs only)
	resp, err := ss.cloud.validate(&wire.CloudRequest{
		FrameIndex: req.Frame.Index,
		Frame:      *req.Frame,
		Padding:    pad,
		Margin:     req.Margin,
		Trace:      tc,
	})
	if err == nil {
		ss.srv.cloudPath.Send(ss.srv.clk, netsim.LabelReturnBytes) // modeled downlink
	}
	if tc != nil {
		o.EmitSpan(obs.Span{
			Name: obs.SpanRPCCloud, Tags: obs.Tags("edge", ss.srv.cfg.EdgeID),
			Start: t0, End: ss.srv.clk.Now(),
			Trace: req.Trace.Trace, ID: tc.Parent, Parent: req.Trace.Span,
		})
	}
	if err != nil {
		ss.srv.cfg.Logf("edge: cloud validation failed, finalizing locally: %v", err)
		return core.ValidationResult{Status: core.ValidationLost}
	}
	if resp.Shed {
		return core.ValidationResult{Status: core.ValidationShed, EdgeCloud: time.Since(start)}
	}
	ret := time.Since(start) - resp.DetectTime
	if ret < 0 {
		ret = 0
	}
	return core.ValidationResult{
		Status:      core.Validated,
		Cloud:       resp.Labels,
		CloudDetect: resp.DetectTime,
		CloudReturn: ret,
	}
}

func (ss *session) send(env *wire.Envelope) error {
	ss.sendMu.Lock()
	defer ss.sendMu.Unlock()
	return ss.wc.Send(env)
}

// Served reports how many frames have completed their final commit.
func (s *EdgeServer) Served() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

// Shed reports how many of the served frames lost their validation to the
// cloud's admission control and finalized with the edge answer.
func (s *EdgeServer) Shed() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shed
}

// Close stops the listener and all connections, then closes the WAL.
func (s *EdgeServer) Close() error {
	s.mu.Lock()
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	if s.walB != nil {
		return s.walB.close()
	}
	return nil
}
