package tcpnet

import (
	"fmt"
	"net"
	"sync"
	"time"

	"croesus/internal/core"
	"croesus/internal/detect"
	"croesus/internal/lock"
	"croesus/internal/store"
	"croesus/internal/txn"
	"croesus/internal/vclock"
	"croesus/internal/wire"
)

// EdgeConfig assembles an edge server.
type EdgeConfig struct {
	EdgeModel detect.Model
	CloudAddr string // cloud server address; empty disables validation
	TimeScale float64
	// Thresholds for bandwidth thresholding (§3.4).
	ThetaL, ThetaU float64
	MinConfidence  float64
	OverlapMin     float64
	// Source supplies the per-detection transactions; nil runs the
	// detection pipeline without a database.
	Source core.TxnSource
	Logf   func(format string, args ...any)
}

// EdgeServer is the edge node of the real deployment: compact model,
// datastore, lock manager, MS-IA transaction processing, and the cloud
// validation path.
type EdgeServer struct {
	cfg EdgeConfig
	clk vclock.Clock
	mgr *txn.Manager
	cc  txn.CC

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	served int64
	wg     sync.WaitGroup
}

// NewEdgeServer builds an edge server; the store and lock manager are
// created internally on a real clock.
func NewEdgeServer(cfg EdgeConfig) (*EdgeServer, error) {
	if cfg.EdgeModel == nil {
		return nil, fmt.Errorf("tcpnet: EdgeModel is required")
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	if cfg.MinConfidence == 0 {
		cfg.MinConfidence = 0.05
	}
	if cfg.OverlapMin == 0 {
		cfg.OverlapMin = 0.10
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	clk := vclock.NewReal()
	st := store.New()
	mgr := txn.NewManager(clk, st, lock.NewManager(clk))
	return &EdgeServer{
		cfg:   cfg,
		clk:   clk,
		mgr:   mgr,
		cc:    &txn.MSIA{M: mgr},
		conns: make(map[net.Conn]struct{}),
	}, nil
}

// Manager exposes the transaction manager (for inspection in tests).
func (s *EdgeServer) Manager() *txn.Manager { return s.mgr }

// Listen starts accepting client connections and returns the bound address.
func (s *EdgeServer) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *EdgeServer) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveClient(conn)
	}
}

// cloudSession multiplexes cloud requests over one connection.
type cloudSession struct {
	conn    *wire.Conn
	sendMu  sync.Mutex
	mu      sync.Mutex
	pending map[int]chan *wire.CloudResponse
	err     error
}

func dialCloud(addr string) (*cloudSession, error) {
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	cs := &cloudSession{
		conn:    wire.NewConn(c),
		pending: make(map[int]chan *wire.CloudResponse),
	}
	go cs.readLoop()
	return cs, nil
}

func (cs *cloudSession) readLoop() {
	for {
		env, err := cs.conn.Recv()
		if err != nil {
			cs.mu.Lock()
			cs.err = err
			for _, ch := range cs.pending {
				close(ch)
			}
			cs.pending = make(map[int]chan *wire.CloudResponse)
			cs.mu.Unlock()
			return
		}
		if env.Kind != wire.KindCloudResponse {
			continue
		}
		cs.mu.Lock()
		ch, ok := cs.pending[env.CloudResponse.FrameIndex]
		if ok {
			delete(cs.pending, env.CloudResponse.FrameIndex)
		}
		cs.mu.Unlock()
		if ok {
			ch <- env.CloudResponse
			close(ch)
		}
	}
}

// validate sends the frame for cloud detection and waits for the labels.
func (cs *cloudSession) validate(req *wire.CloudRequest) (*wire.CloudResponse, error) {
	ch := make(chan *wire.CloudResponse, 1)
	cs.mu.Lock()
	if cs.err != nil {
		cs.mu.Unlock()
		return nil, cs.err
	}
	cs.pending[req.FrameIndex] = ch
	cs.mu.Unlock()

	cs.sendMu.Lock()
	err := cs.conn.Send(&wire.Envelope{Kind: wire.KindCloudRequest, CloudRequest: req})
	cs.sendMu.Unlock()
	if err != nil {
		return nil, err
	}
	resp, ok := <-ch
	if !ok {
		return nil, fmt.Errorf("tcpnet: cloud connection lost")
	}
	return resp, nil
}

func (cs *cloudSession) close() {
	cs.sendMu.Lock()
	cs.conn.Send(&wire.Envelope{Kind: wire.KindBye})
	cs.sendMu.Unlock()
	cs.conn.Close()
}

func (s *EdgeServer) serveClient(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	wc := wire.NewConn(conn)
	var sendMu sync.Mutex

	var cloud *cloudSession
	if s.cfg.CloudAddr != "" {
		var err error
		cloud, err = dialCloud(s.cfg.CloudAddr)
		if err != nil {
			s.cfg.Logf("edge: dial cloud %s: %v", s.cfg.CloudAddr, err)
			return
		}
		defer cloud.close()
	}

	var frameWG sync.WaitGroup
	defer frameWG.Wait()
	for {
		env, err := wc.Recv()
		if err != nil {
			return
		}
		switch env.Kind {
		case wire.KindBye:
			return
		case wire.KindFrame:
			f := env.Frame
			frameWG.Add(1)
			go func() {
				defer frameWG.Done()
				s.handleFrame(f, cloud, wc, &sendMu)
			}()
		default:
			s.cfg.Logf("edge: unexpected kind %q", env.Kind)
			return
		}
	}
}

// handleFrame is the Figure 1 execution pattern over real sockets.
func (s *EdgeServer) handleFrame(f *wire.Frame, cloud *cloudSession, wc *wire.Conn, sendMu *sync.Mutex) {
	start := time.Now()
	res := s.cfg.EdgeModel.Detect(&f.Frame)
	time.Sleep(time.Duration(float64(res.Latency) * s.cfg.TimeScale))

	// Input processing: confidence filter + thresholding.
	var visible []detect.Detection
	validate := false
	for _, d := range res.Detections {
		if d.Confidence < s.cfg.MinConfidence || d.Confidence < s.cfg.ThetaL {
			continue
		}
		if d.Confidence <= s.cfg.ThetaU {
			validate = true
		}
		visible = append(visible, d)
	}

	// Initial sections.
	type pending struct {
		inst    *txn.Instance
		edgeIdx int
		trigger detect.Detection
	}
	var pend []pending
	aborted := 0
	if s.cfg.Source != nil {
		for i, d := range visible {
			t := s.cfg.Source.TxnFor(f.Frame.Index, d)
			if t == nil {
				continue
			}
			inst := s.mgr.NewInstance(t, core.InitialInput{FrameIndex: f.Frame.Index, Trigger: d, Labels: visible})
			if err := s.cc.RunInitial(inst); err != nil {
				aborted++
				continue
			}
			pend = append(pend, pending{inst: inst, edgeIdx: i, trigger: d})
		}
	}

	validate = validate && cloud != nil
	sendMu.Lock()
	err := wc.Send(&wire.Envelope{Kind: wire.KindInitialReply, InitialReply: &wire.InitialReply{
		FrameIndex:  f.Frame.Index,
		Labels:      visible,
		Triggered:   len(pend),
		Aborted:     aborted,
		SentToCloud: validate,
		EdgeElapsed: time.Since(start),
	}})
	sendMu.Unlock()
	if err != nil {
		s.cfg.Logf("edge: send initial reply: %v", err)
		return
	}

	finalLabels := visible
	matches := make([]core.LabelMatch, 0)
	if validate {
		resp, err := cloud.validate(&wire.CloudRequest{FrameIndex: f.Frame.Index, Frame: f.Frame, Padding: f.Padding})
		if err != nil {
			s.cfg.Logf("edge: cloud validation failed, finalizing locally: %v", err)
			matches = assumed(len(visible))
		} else {
			matches = core.MatchLabels(visible, resp.Labels, s.cfg.OverlapMin)
			finalLabels = resp.Labels
		}
	} else {
		matches = assumed(len(visible))
	}

	// Final sections.
	corrections := 0
	var apologies []string
	byEdge := map[int]core.LabelMatch{}
	for _, m := range matches {
		if m.EdgeIdx >= 0 {
			byEdge[m.EdgeIdx] = m
		}
	}
	for _, p := range pend {
		m, ok := byEdge[p.edgeIdx]
		if !ok {
			m = core.LabelMatch{Case: core.MatchAssumed, EdgeIdx: p.edgeIdx}
		}
		fin := core.FinalInput{FrameIndex: f.Frame.Index, Case: m.Case, Edge: p.trigger, Cloud: m.Cloud}
		if fin.Corrected() {
			corrections++
		}
		p.inst.FinalIn = fin
		if err := s.cc.RunFinal(p.inst); err != nil && err != txn.ErrRetracted {
			s.cfg.Logf("edge: final section: %v", err)
		}
		for _, a := range p.inst.Apologies() {
			apologies = append(apologies, a.Reason)
		}
	}
	for _, m := range matches {
		if m.Case != core.MatchNew || s.cfg.Source == nil {
			continue
		}
		t := s.cfg.Source.TxnFor(f.Frame.Index, m.Cloud)
		if t == nil {
			continue
		}
		inst := s.mgr.NewInstance(t, core.InitialInput{FrameIndex: f.Frame.Index, Trigger: m.Cloud})
		if err := s.cc.RunInitial(inst); err != nil {
			continue
		}
		corrections++
		inst.FinalIn = core.FinalInput{FrameIndex: f.Frame.Index, Case: core.MatchNew, Cloud: m.Cloud}
		if err := s.cc.RunFinal(inst); err != nil && err != txn.ErrRetracted {
			s.cfg.Logf("edge: final section (new label): %v", err)
		}
	}

	s.mu.Lock()
	s.served++
	s.mu.Unlock()

	sendMu.Lock()
	err = wc.Send(&wire.Envelope{Kind: wire.KindFinalReply, FinalReply: &wire.FinalReply{
		FrameIndex:  f.Frame.Index,
		Labels:      finalLabels,
		Corrections: corrections,
		Apologies:   apologies,
		EdgeElapsed: time.Since(start),
	}})
	sendMu.Unlock()
	if err != nil {
		s.cfg.Logf("edge: send final reply: %v", err)
	}
}

func assumed(n int) []core.LabelMatch {
	out := make([]core.LabelMatch, n)
	for i := range out {
		out[i] = core.LabelMatch{Case: core.MatchAssumed, EdgeIdx: i}
	}
	return out
}

// Served reports how many frames have completed their final commit.
func (s *EdgeServer) Served() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

// Close stops the listener and all connections.
func (s *EdgeServer) Close() error {
	s.mu.Lock()
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}
