package tcpnet

import (
	"testing"
	"time"

	"croesus/internal/core"
	"croesus/internal/detect"
	"croesus/internal/metrics"
	"croesus/internal/video"
)

const testScale = 0.01 // 1.12s cloud inference → 11ms in tests

// startStack brings up cloud + edge on loopback and returns a connected
// client plus a cleanup function.
func startStack(t *testing.T, thetaL, thetaU float64, withTxns bool) (*Client, *EdgeServer, *CloudServer, func()) {
	t.Helper()
	cloudModel := detect.YOLOv3Sim(detect.YOLO416, 42)
	cloud := NewCloudServer(cloudModel, testScale)
	cloudAddr, err := cloud.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("cloud listen: %v", err)
	}
	cfg := EdgeConfig{
		EdgeModel: detect.TinyYOLOSim(42),
		CloudAddr: cloudAddr,
		TimeScale: testScale,
		ThetaL:    thetaL,
		ThetaU:    thetaU,
	}
	if withTxns {
		cfg.Source = core.NewWorkloadSource(500, 7)
	}
	edge, err := NewEdgeServer(cfg)
	if err != nil {
		t.Fatalf("edge: %v", err)
	}
	edgeAddr, err := edge.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("edge listen: %v", err)
	}
	client, err := Dial(edgeAddr)
	if err != nil {
		t.Fatalf("dial edge: %v", err)
	}
	cleanup := func() {
		client.Close()
		edge.Close()
		cloud.Close()
	}
	return client, edge, cloud, cleanup
}

func TestEndToEndValidation(t *testing.T) {
	client, edge, cloud, cleanup := startStack(t, 0.0, 1.0, true) // validate everything
	defer cleanup()

	prof := video.ParkDog()
	frames := video.NewGenerator(prof, 11).Generate(8)
	for _, f := range frames {
		if err := client.Submit(f, 0); err != nil {
			t.Fatalf("submit %d: %v", f.Index, err)
		}
	}
	cloudModel := detect.YOLOv3Sim(detect.YOLO416, 42)
	var counts metrics.Counts
	for _, f := range frames {
		r, err := client.WaitFrame(f.Index, 10*time.Second)
		if err != nil {
			t.Fatalf("frame %d: %v", f.Index, err)
		}
		if r.FinalLatency < r.InitialLatency {
			t.Errorf("frame %d: final %v before initial %v", f.Index, r.FinalLatency, r.InitialLatency)
		}
		truth := cloudModel.Detect(f).Detections
		counts.Add(metrics.ScoreClass(r.Final, truth, prof.QueryClass, 0.1))
	}
	// Validated frames end at cloud truth; unvalidated ones have no
	// detections in (0,1) — nearly impossible — so F must be ≈ 1.
	if f1 := counts.F1(); f1 < 0.95 {
		t.Errorf("end-to-end F1 = %.3f, want ≈ 1 under full validation", f1)
	}
	if got := cloud.Handled(); got == 0 {
		t.Error("cloud handled no frames")
	}
	if got := edge.Served(); got != 8 {
		t.Errorf("edge served %d frames, want 8", got)
	}
	// Transactions ran: every initial commit is resolved, either by a
	// final commit or by a cascading retraction from a concurrent
	// erroneous transaction (the MS-IA apology path).
	st := edge.Manager().Stats()
	if st.InitialCommits == 0 {
		t.Error("no transactions committed")
	}
	if unresolved := st.InitialCommits - st.FinalCommits; unresolved < 0 || unresolved > st.Retractions {
		t.Errorf("unresolved transactions: %d initial, %d final, %d retractions",
			st.InitialCommits, st.FinalCommits, st.Retractions)
	}
}

func TestEdgeOnlyWhenIntervalEmpty(t *testing.T) {
	client, _, cloud, cleanup := startStack(t, 0.5, 0.5, false) // never validate
	defer cleanup()

	frames := video.NewGenerator(video.ParkDog(), 11).Generate(5)
	for _, f := range frames {
		if err := client.Submit(f, 0); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	for _, f := range frames {
		r, err := client.WaitFrame(f.Index, 10*time.Second)
		if err != nil {
			t.Fatalf("frame %d: %v", f.Index, err)
		}
		if r.SentToCloud {
			t.Errorf("frame %d validated despite empty interval", f.Index)
		}
	}
	if got := cloud.Handled(); got != 0 {
		t.Errorf("cloud handled %d frames, want 0", got)
	}
}

func TestPaddingCarriesWeight(t *testing.T) {
	client, _, _, cleanup := startStack(t, 0, 1, false)
	defer cleanup()
	f := video.NewGenerator(video.ParkDog(), 11).Next()
	if err := client.Submit(f, 64<<10); err != nil {
		t.Fatalf("submit with padding: %v", err)
	}
	if _, err := client.WaitFrame(f.Index, 10*time.Second); err != nil {
		t.Fatalf("wait: %v", err)
	}
}

func TestCloudUnavailableFallsBackToEdge(t *testing.T) {
	// Edge configured with no cloud: every frame finalizes locally.
	edge, err := NewEdgeServer(EdgeConfig{
		EdgeModel: detect.TinyYOLOSim(42),
		TimeScale: testScale,
		ThetaL:    0, ThetaU: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := edge.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	f := video.NewGenerator(video.ParkDog(), 11).Next()
	if err := client.Submit(f, 0); err != nil {
		t.Fatal(err)
	}
	r, err := client.WaitFrame(f.Index, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if r.SentToCloud {
		t.Error("frame marked as validated with no cloud configured")
	}
	if len(r.Final) != len(r.Initial) {
		t.Error("local finalization changed the label set")
	}
}

func TestConcurrentClients(t *testing.T) {
	cloudModel := detect.YOLOv3Sim(detect.YOLO416, 42)
	cloud := NewCloudServer(cloudModel, testScale)
	cloudAddr, _ := cloud.Listen("127.0.0.1:0")
	defer cloud.Close()
	edge, _ := NewEdgeServer(EdgeConfig{
		EdgeModel: detect.TinyYOLOSim(42),
		CloudAddr: cloudAddr,
		TimeScale: testScale,
		ThetaL:    0, ThetaU: 1,
		Source: core.NewWorkloadSource(500, 7),
	})
	edgeAddr, _ := edge.Listen("127.0.0.1:0")
	defer edge.Close()

	const clients, perClient = 3, 4
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		c := c
		go func() {
			client, err := Dial(edgeAddr)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			frames := video.NewGenerator(video.ParkDog(), int64(100+c)).Generate(perClient)
			for _, f := range frames {
				if err := client.Submit(f, 0); err != nil {
					errs <- err
					return
				}
			}
			for _, f := range frames {
				if _, err := client.WaitFrame(f.Index, 15*time.Second); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for c := 0; c < clients; c++ {
		if err := <-errs; err != nil {
			t.Fatalf("client failed: %v", err)
		}
	}
	if got := edge.Served(); got != clients*perClient {
		t.Errorf("edge served %d, want %d", got, clients*perClient)
	}
}

func TestWaitUnknownFrame(t *testing.T) {
	client, _, _, cleanup := startStack(t, 0, 1, false)
	defer cleanup()
	if _, err := client.WaitFrame(999, time.Second); err == nil {
		t.Error("WaitFrame on unsubmitted frame succeeded")
	}
}
