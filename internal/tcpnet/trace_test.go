package tcpnet

import (
	"testing"
	"time"

	"croesus/internal/core"
	"croesus/internal/detect"
	"croesus/internal/obs"
	"croesus/internal/obs/collect"
	"croesus/internal/vclock"
	"croesus/internal/video"
)

// traceTolerance is the causality slack for the loopback trace tests, in
// virtual time. testScale = 0.01 multiplies wall-clock jitter by 100 in
// span timestamps, so a 2s virtual tolerance tolerates 20ms of real
// scheduling asymmetry while still catching structural bugs (a wrong
// alignment sign or a swapped parent shows up as whole-span offsets).
const traceTolerance = 2 * time.Second

// TestDistributedTraceCausality is the PR's acceptance run in miniature:
// cloud, edge, and client each record spans against their own scaled wall
// clock (each with its own epoch), the collector aligns the three streams
// from the RPC pairs in the trace itself, and the watchdog must find no
// causality violation — every cross-process parent exists and no child
// starts before its parent after alignment.
func TestDistributedTraceCausality(t *testing.T) {
	oCloud, oEdge, oClient := obs.New(), obs.New(), obs.New()
	oCloud.Trace.SetProc("cloud")
	oEdge.Trace.SetProc("edge")
	oClient.Trace.SetProc("client")

	cloud, err := NewCloudServerWith(CloudConfig{
		Model:     detect.YOLOv3Sim(detect.YOLO416, 42),
		TimeScale: testScale,
		Obs:       oCloud,
	})
	if err != nil {
		t.Fatalf("cloud: %v", err)
	}
	cloudAddr, err := cloud.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("cloud listen: %v", err)
	}
	defer cloud.Close()

	edge, err := NewEdgeServer(EdgeConfig{
		EdgeModel: detect.TinyYOLOSim(42),
		CloudAddr: cloudAddr,
		TimeScale: testScale,
		ThetaL:    0, ThetaU: 1, // validate everything: every frame crosses all three processes
		Source: core.NewWorkloadSource(500, 7),
		Obs:    oEdge,
	})
	if err != nil {
		t.Fatalf("edge: %v", err)
	}
	edgeAddr, err := edge.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("edge listen: %v", err)
	}
	defer edge.Close()

	client, err := Dial(edgeAddr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()
	// The client's trace clock must run at the same scale as the servers'
	// — alignment corrects epochs, not rates.
	client.EnableTrace(oClient, vclock.NewScaledReal(testScale), "cam0")

	frames := video.NewGenerator(video.ParkDog(), 11).Generate(6)
	for _, f := range frames {
		if err := client.Submit(f, 0); err != nil {
			t.Fatalf("submit %d: %v", f.Index, err)
		}
	}
	for _, f := range frames {
		if _, err := client.WaitFrame(f.Index, 10*time.Second); err != nil {
			t.Fatalf("frame %d: %v", f.Index, err)
		}
	}

	streams := []collect.Stream{
		{Proc: "client", Spans: oClient.Trace.Spans()},
		{Proc: "edge", Spans: oEdge.Trace.Spans()},
		{Proc: "cloud", Spans: oCloud.Trace.Spans()},
	}
	for _, st := range streams {
		if len(st.Spans) == 0 {
			t.Fatalf("process %q recorded no spans", st.Proc)
		}
	}
	m, err := collect.Merge(streams, collect.Options{Tolerance: traceTolerance})
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if len(m.Unaligned) != 0 {
		t.Fatalf("unaligned processes %v (offsets %v, pairs %v)", m.Unaligned, m.Offsets, m.Pairs)
	}

	wd := collect.NewWatchdog(collect.WatchdogConfig{Tolerance: m.Tolerance()})
	for _, s := range m.Spans {
		wd.Feed(s)
	}
	for _, in := range wd.Finish() {
		if collect.CausalityKinds[in.Kind] {
			t.Errorf("causality incident %s (trace %d, proc %s): %s", in.Kind, in.Trace, in.Proc, in.Detail)
		}
	}

	// The merged tree must actually cross processes: a cloud.request span
	// whose parent is the edge's rpc.cloud span, and an edge frame.root
	// whose parent is the client's root.
	byID := make(map[uint64]obs.Span)
	for _, s := range m.Spans {
		if s.ID != 0 {
			byID[s.ID] = s
		}
	}
	links := map[string]int{} // childProc→parentProc hop counts
	for _, s := range m.Spans {
		if s.Parent == 0 {
			continue
		}
		if p, ok := byID[s.Parent]; ok && p.Proc != s.Proc {
			links[s.Proc+"→"+p.Proc]++
		}
	}
	if links["cloud→edge"] == 0 {
		t.Errorf("no cloud span linked under an edge span: %v", links)
	}
	if links["edge→client"] == 0 {
		t.Errorf("no edge span linked under a client span: %v", links)
	}
	// Every submitted frame keeps its client-side root in the merge.
	roots := 0
	for _, s := range m.Spans {
		if s.Name == obs.SpanClientFrame && s.Parent == 0 {
			roots++
		}
	}
	if roots != len(frames) {
		t.Errorf("merged trace has %d client.frame roots, want %d", roots, len(frames))
	}
}

// TestCriticalPathCrossProcess checks the merged decomposition attributes
// a non-zero network component to real cross-process traces: the RPC
// envelope spans (rpc.cloud, cloud.request) contribute their self time as
// the hop's wire + dispatch segment.
func TestCriticalPathCrossProcess(t *testing.T) {
	oEdge, oCloud := obs.New(), obs.New()
	oEdge.Trace.SetProc("edge")
	oCloud.Trace.SetProc("cloud")

	cloud, err := NewCloudServerWith(CloudConfig{
		Model:     detect.YOLOv3Sim(detect.YOLO416, 42),
		TimeScale: testScale,
		Obs:       oCloud,
	})
	if err != nil {
		t.Fatalf("cloud: %v", err)
	}
	cloudAddr, err := cloud.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("cloud listen: %v", err)
	}
	defer cloud.Close()
	edge, err := NewEdgeServer(EdgeConfig{
		EdgeModel: detect.TinyYOLOSim(42),
		CloudAddr: cloudAddr,
		TimeScale: testScale,
		ThetaL:    0, ThetaU: 1,
		Obs: oEdge,
	})
	if err != nil {
		t.Fatalf("edge: %v", err)
	}
	edgeAddr, err := edge.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("edge listen: %v", err)
	}
	defer edge.Close()
	client, err := Dial(edgeAddr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()

	frames := video.NewGenerator(video.ParkDog(), 11).Generate(4)
	for _, f := range frames {
		if err := client.Submit(f, 0); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	for _, f := range frames {
		if _, err := client.WaitFrame(f.Index, 10*time.Second); err != nil {
			t.Fatalf("frame %d: %v", f.Index, err)
		}
	}

	// No client tracing here: the edge self-generates trace IDs, so the
	// frame.root spans are the trace roots.
	m, err := collect.Merge([]collect.Stream{
		{Proc: "edge", Spans: oEdge.Trace.Spans()},
		{Proc: "cloud", Spans: oCloud.Trace.Spans()},
	}, collect.Options{Tolerance: traceTolerance})
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	paths := m.CriticalPaths()
	if len(paths) != len(frames) {
		t.Fatalf("got %d path breakdowns, want %d", len(paths), len(frames))
	}
	sum := collect.Summarize(paths)
	if sum.Components[collect.CompCompute] <= 0 {
		t.Errorf("no compute time attributed: %v", sum.Components)
	}
	if sum.Components[collect.CompNetwork] <= 0 {
		t.Errorf("no network time attributed across a real socket hop: %v", sum.Components)
	}
	for _, p := range paths {
		if p.Root != obs.SpanFrameRoot {
			t.Errorf("trace %d rooted at %q, want %q", p.Trace, p.Root, obs.SpanFrameRoot)
		}
		if p.Total <= 0 {
			t.Errorf("trace %d has non-positive total %v", p.Trace, p.Total)
		}
	}
}
