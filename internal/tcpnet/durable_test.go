package tcpnet

import (
	"path/filepath"
	"testing"
	"time"

	"croesus/internal/core"
	"croesus/internal/detect"
	"croesus/internal/video"
)

// startDurableEdge brings up an edge-only server journaling to walPath.
func startDurableEdge(t *testing.T, walPath string) (*Client, *EdgeServer, func()) {
	t.Helper()
	edge, err := NewEdgeServer(EdgeConfig{
		EdgeModel: detect.TinyYOLOSim(42),
		TimeScale: testScale,
		ThetaL:    0.4,
		ThetaU:    0.6,
		Source:    core.NewWorkloadSource(500, 7),
		WALPath:   walPath,
		WALNoSync: true,
	})
	if err != nil {
		t.Fatalf("edge: %v", err)
	}
	addr, err := edge.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("edge listen: %v", err)
	}
	client, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial edge: %v", err)
	}
	return client, edge, func() { client.Close(); edge.Close() }
}

// A durable edge journals its transactional writes; a restart on the same
// WAL path replays them to the identical store state — the respawn half of
// the fleet's crash/recover event.
func TestEdgeWALReplayAcrossRestart(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "edge.wal")
	client, edge, cleanup := startDurableEdge(t, walPath)

	frames := video.NewGenerator(video.ParkDog(), 11).Generate(6)
	for _, f := range frames {
		if err := client.Submit(f, 0); err != nil {
			t.Fatalf("submit %d: %v", f.Index, err)
		}
	}
	for _, f := range frames {
		if _, err := client.WaitFrame(f.Index, 10*time.Second); err != nil {
			t.Fatalf("frame %d: %v", f.Index, err)
		}
	}
	if edge.WALReplayed() != 0 {
		t.Errorf("fresh edge replayed %d records, want 0", edge.WALReplayed())
	}
	if n, err := edge.VerifyWAL(); err != nil {
		t.Fatalf("durability verify on live edge: %v (after %d records)", n, err)
	}
	before := edge.Manager().Store.Snapshot()
	if len(before) == 0 {
		t.Fatal("no transactional writes landed; the test exercises nothing")
	}
	cleanup()

	// Respawn on the same WAL path: the store must come back identical.
	edge2, err := NewEdgeServer(EdgeConfig{
		EdgeModel: detect.TinyYOLOSim(42),
		TimeScale: testScale,
		Source:    core.NewWorkloadSource(500, 7),
		WALPath:   walPath,
		WALNoSync: true,
	})
	if err != nil {
		t.Fatalf("respawn edge: %v", err)
	}
	defer edge2.Close()
	if edge2.WALReplayed() == 0 {
		t.Fatal("respawned edge replayed 0 records")
	}
	after := edge2.Manager().Store.Snapshot()
	if len(after) != len(before) {
		t.Fatalf("replayed store has %d keys, want %d", len(after), len(before))
	}
	for k, v := range before {
		rv, ok := after[k]
		if !ok || string(rv) != string(v) {
			t.Fatalf("key %q lost or changed across restart", k)
		}
	}
	if n, err := edge2.VerifyWAL(); err != nil {
		t.Fatalf("durability verify after replay (%d records): %v", n, err)
	}
}

// Checkpointing compacts the WAL to a state snapshot without changing what
// a replay recovers.
func TestEdgeWALCheckpoint(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "edge.wal")
	client, edge, cleanup := startDurableEdge(t, walPath)
	defer cleanup()

	frames := video.NewGenerator(video.ParkDog(), 11).Generate(4)
	for _, f := range frames {
		if err := client.Submit(f, 0); err != nil {
			t.Fatalf("submit %d: %v", f.Index, err)
		}
	}
	for _, f := range frames {
		if _, err := client.WaitFrame(f.Index, 10*time.Second); err != nil {
			t.Fatalf("frame %d: %v", f.Index, err)
		}
	}
	if err := edge.CheckpointWAL(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if _, err := edge.VerifyWAL(); err != nil {
		t.Fatalf("durability verify after checkpoint: %v", err)
	}
}

// The drain control (edge_retire) refuses new frames; the client's wait
// times out and the edge counts the refusal.
func TestEdgeDrainRefusesFrames(t *testing.T) {
	client, edge, cleanup := startDurableEdge(t, filepath.Join(t.TempDir(), "edge.wal"))
	defer cleanup()

	edge.SetDraining(true)
	f := video.NewGenerator(video.ParkDog(), 11).Generate(1)[0]
	if err := client.Submit(f, 0); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := client.WaitFrame(f.Index, 300*time.Millisecond); err == nil {
		t.Fatal("draining edge answered a frame")
	}
	deadline := time.Now().Add(5 * time.Second)
	for edge.Dropped() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if edge.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", edge.Dropped())
	}
	edge.SetDraining(false)
	f2 := video.NewGenerator(video.ParkDog(), 12).Generate(1)[0]
	if err := client.Submit(f2, 0); err != nil {
		t.Fatalf("submit after heal: %v", err)
	}
	if _, err := client.WaitFrame(f2.Index, 10*time.Second); err != nil {
		t.Fatalf("healed edge did not answer: %v", err)
	}
}
