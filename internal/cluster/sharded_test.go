package cluster

import (
	"reflect"
	"testing"
	"time"

	"croesus/internal/twopc"
	"croesus/internal/vclock"
	"croesus/internal/video"
	"croesus/internal/workload"
)

// shardedConfig builds the canonical sharded test fleet: four cameras
// over three edges, one database sharded three ways.
func shardedConfig(clk vclock.Clock, crossEdge float64, proto TxnProtocol) Config {
	return Config{
		Clock: clk,
		Cameras: []CameraSpec{
			{ID: "park", Profile: video.ParkDog(), Seed: 11, Frames: 40},
			{ID: "street", Profile: video.StreetVehicles(), Seed: 12, Frames: 40},
			{ID: "mall", Profile: video.MallSurveillance(), Seed: 13, Frames: 40},
			{ID: "airport", Profile: video.AirportRunway(), Seed: 14, Frames: 40},
		},
		Edges:             []EdgeSpec{{ID: "west"}, {ID: "mid"}, {ID: "east"}},
		Batcher:           BatcherConfig{MaxBatch: 4, SLO: 80 * time.Millisecond},
		Sharded:           true,
		CrossEdgeFraction: crossEdge,
		Protocol:          proto,
	}
}

// TestShardedCrossEdge runs a fleet whose workload crosses shards and
// checks that the 2PC machinery actually engaged: cross-edge commits,
// prepare/commit RPCs, peer-link traffic, and every key resting on the
// store of the shard that owns it.
func TestShardedCrossEdge(t *testing.T) {
	clk := vclock.NewSim()
	c, err := New(shardedConfig(clk, 0.4, TxnMSIA))
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Run()

	if rep.Frames != 160 {
		t.Fatalf("fleet frames = %d, want 160", rep.Frames)
	}
	if !rep.Sharded || rep.Protocol != "MS-IA" {
		t.Fatalf("report not marked sharded MS-IA: %+v", rep)
	}
	tp := rep.TwoPC
	if tp.CrossEdgeCommits == 0 || tp.TwoPCRounds == 0 {
		t.Fatalf("no cross-edge 2PC activity despite CrossEdgeFraction 0.4: %+v", tp)
	}
	if tp.PrepareRPCs < 2*tp.TwoPCRounds {
		t.Errorf("prepare RPCs %d below 2 per round (%d rounds): every round spans ≥2 partitions", tp.PrepareRPCs, tp.TwoPCRounds)
	}
	if tp.CommitRPCs == 0 || tp.LockRPCs == 0 {
		t.Errorf("no commit/lock RPCs crossed edges: %+v", tp)
	}
	if tp.LocalCommits == 0 {
		t.Errorf("no local commits — home-biased workload should keep most sections single-shard: %+v", tp)
	}

	// Cross-edge protocol traffic rode the peer links.
	var peerMsgs int64
	for _, e := range c.Edges() {
		for _, l := range e.Peers {
			if l == nil {
				continue
			}
			_, m := l.Traffic()
			peerMsgs += m
		}
	}
	if peerMsgs == 0 {
		t.Error("no messages on inter-edge links")
	}

	// Every key on every edge's store belongs to that edge's shard.
	for i, e := range c.Edges() {
		keys := e.Store.Keys("")
		if len(keys) == 0 {
			t.Errorf("edge %d store empty — sharding routed nothing here", i)
		}
		for _, k := range keys {
			if s, ok := workload.ShardOf(k); !ok || s != i {
				t.Fatalf("edge %d store holds foreign key %q", i, k)
			}
		}
	}

	// One fleet-wide manager, and the multi-stage guarantee holds on it.
	st := c.FleetManager().Stats()
	if st.InitialCommits == 0 {
		t.Fatal("fleet manager saw no commits")
	}
	if unresolved := st.InitialCommits - st.FinalCommits; unresolved < 0 || unresolved > st.Retractions {
		t.Errorf("multi-stage guarantee violated fleet-wide: %+v", st)
	}
}

// TestShardedHomeOnly: CrossEdgeFraction 0 keeps every transaction on its
// home shard — the sharded machinery runs but no 2PC and no peer traffic.
func TestShardedHomeOnly(t *testing.T) {
	clk := vclock.NewSim()
	c, err := New(shardedConfig(clk, 0, TxnMSIA))
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Run()
	tp := rep.TwoPC
	if tp.CrossEdgeCommits != 0 || tp.RemoteCommits != 0 || tp.TwoPCRounds != 0 || tp.PrepareRPCs != 0 || tp.LockRPCs != 0 {
		t.Fatalf("home-only workload produced distributed work: %+v", tp)
	}
	if tp.LocalCommits == 0 {
		t.Fatal("no local commits counted")
	}
	for _, e := range c.Edges() {
		for _, l := range e.Peers {
			if l == nil {
				continue
			}
			if _, m := l.Traffic(); m != 0 {
				t.Fatalf("peer link carried %d messages in a home-only fleet", m)
			}
		}
	}
}

// TestShardedDeterminism: two runs with the same seed and config must
// produce byte-identical reports, including every 2PC counter — the
// virtual-clock concurrency guard for the sharded fleet.
func TestShardedDeterminism(t *testing.T) {
	run := func(proto TxnProtocol) *ClusterReport {
		rep, err := Run(shardedConfig(vclock.NewSim(), 0.3, proto))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	for _, proto := range []TxnProtocol{TxnMSIA, TxnMSSR} {
		a, b := run(proto), run(proto)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: two identical sharded runs diverged:\n%s\nvs\n%s", proto, a.Format(), b.Format())
		}
		if a.Format() != b.Format() {
			t.Fatalf("%s: formatted reports differ", proto)
		}
	}
}

// TestUnshardedMSSR: the Protocol knob also applies to unsharded fleets —
// per-edge managers with local MS-SR (wait-die, locks held across the
// cloud round trip) must drain every frame without deadlock and with no
// distributed work counted.
func TestUnshardedMSSR(t *testing.T) {
	cfg := shardedConfig(vclock.NewSim(), 0, TxnMSSR)
	cfg.Sharded = false
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != 160 {
		t.Fatalf("fleet lost frames: %d of 160", rep.Frames)
	}
	if rep.Sharded {
		t.Fatal("report claims a sharded fleet")
	}
	if rep.TwoPC != (twopc.DistCounters{}) {
		t.Fatalf("unsharded fleet counted distributed work: %+v", rep.TwoPC)
	}
	if rep.TxnsTriggered == 0 {
		t.Fatal("no transactions ran under unsharded MS-SR")
	}
}

// TestShardedProtocolContrast: under the same cross-edge workload, MS-IA
// pays an atomic commitment at both section commits while MS-SR pays one
// at the final — so MS-IA runs strictly more 2PC rounds. Both must drain
// the fleet completely.
func TestShardedProtocolContrast(t *testing.T) {
	run := func(proto TxnProtocol) *ClusterReport {
		rep, err := Run(shardedConfig(vclock.NewSim(), 0.5, proto))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Frames != 160 {
			t.Fatalf("%s: fleet lost frames: %d of 160", proto, rep.Frames)
		}
		return rep
	}
	msia := run(TxnMSIA)
	mssr := run(TxnMSSR)
	if msia.TwoPC.TwoPCRounds <= mssr.TwoPC.TwoPCRounds {
		t.Errorf("MS-IA rounds %d not above MS-SR rounds %d (two commits vs one)",
			msia.TwoPC.TwoPCRounds, mssr.TwoPC.TwoPCRounds)
	}
	if mssr.TwoPC.CrossEdgeCommits == 0 {
		t.Error("MS-SR ran no cross-edge commits")
	}
}
