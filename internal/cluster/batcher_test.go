package cluster

import (
	"sync"
	"testing"
	"time"

	"croesus/internal/core"
	"croesus/internal/detect"
	"croesus/internal/vclock"
	"croesus/internal/video"
)

// fixedModel returns one detection per frame with a fixed latency —
// enough to observe batching arithmetic precisely.
type fixedModel struct {
	latency time.Duration
}

func (m fixedModel) Name() string { return "fixed" }

func (m fixedModel) Detect(f *video.Frame) detect.Result {
	return detect.Result{
		Detections: []detect.Detection{{Label: "obj", Confidence: 0.9, Box: video.Rect{X: 0.1, Y: 0.1, W: 0.2, H: 0.2}}},
		Latency:    m.latency,
	}
}

func frameAt(idx int) *video.Frame {
	return &video.Frame{Index: idx, SizeBytes: 1 << 16}
}

// submit runs n Validate calls as clock participants, returning results
// in submission order.
func submit(clk *vclock.Sim, b *Batcher, reqs []core.ValidationRequest, gap time.Duration) []core.ValidationResult {
	results := make([]core.ValidationResult, len(reqs))
	var mu sync.Mutex
	for i, req := range reqs {
		i, req := i, req
		clk.Go(func() {
			clk.Sleep(time.Duration(i) * gap)
			res := b.Validate(req)
			mu.Lock()
			results[i] = res
			mu.Unlock()
		})
	}
	clk.Wait()
	return results
}

// TestSizeFlush: MaxBatch simultaneous arrivals dispatch immediately as
// one batch, without waiting for the SLO.
func TestSizeFlush(t *testing.T) {
	clk := vclock.NewSim()
	b := mustBatcher(t, BatcherConfig{Clock: clk, Model: fixedModel{latency: 10 * time.Millisecond}, MaxBatch: 4, SLO: time.Hour})
	reqs := make([]core.ValidationRequest, 4)
	for i := range reqs {
		reqs[i] = core.ValidationRequest{Frame: frameAt(i), Margin: 0.5}
	}
	results := submit(clk, b, reqs, 0)
	for i, r := range results {
		if r.Status != core.Validated {
			t.Fatalf("request %d: status %v", i, r.Status)
		}
		if len(r.Cloud) != 1 {
			t.Fatalf("request %d: %d labels", i, len(r.Cloud))
		}
	}
	st := b.Stats()
	if st.Batches != 1 || st.Frames != 4 || st.MaxBatch != 4 {
		t.Fatalf("stats = %+v, want one batch of 4", st)
	}
	// With an hour-long SLO, dispatch must have been size-triggered:
	// nobody waited for the deadline, and each request completed in the
	// amortized batch time (10ms + 0.35·30ms with the default α).
	if st.MaxFlushWait != 0 {
		t.Fatalf("simultaneous arrivals waited %v for dispatch", st.MaxFlushWait)
	}
	for i, r := range results {
		if want := 20500 * time.Microsecond; r.CloudDetect != want {
			t.Fatalf("request %d: CloudDetect = %v, want amortized %v", i, r.CloudDetect, want)
		}
	}
}

// TestDeadlineFlush: a lone request dispatches at exactly the SLO.
func TestDeadlineFlush(t *testing.T) {
	clk := vclock.NewSim()
	slo := 50 * time.Millisecond
	b := mustBatcher(t, BatcherConfig{Clock: clk, Model: fixedModel{latency: 10 * time.Millisecond}, MaxBatch: 8, SLO: slo})
	results := submit(clk, b, []core.ValidationRequest{{Frame: frameAt(0), Margin: 0.5}}, 0)
	if results[0].Status != core.Validated {
		t.Fatalf("status %v", results[0].Status)
	}
	st := b.Stats()
	if st.MaxFlushWait != slo {
		t.Fatalf("lone request dispatched after %v, want the SLO deadline %v", st.MaxFlushWait, slo)
	}
	if st.SLOViolations != 0 {
		t.Fatalf("%d SLO violations", st.SLOViolations)
	}
	// The SLO wait lands in CloudQueue; CloudDetect is pure inference.
	if got, want := results[0].CloudQueue, slo; got != want {
		t.Fatalf("CloudQueue = %v, want the SLO wait %v", got, want)
	}
	if got, want := results[0].CloudDetect, 10*time.Millisecond; got != want {
		t.Fatalf("CloudDetect = %v, want %v", got, want)
	}
}

// TestStaggeredUnderSLO: arrivals trickling in under the deadline ride
// the first request's timer; every wait stays within the SLO.
func TestStaggeredUnderSLO(t *testing.T) {
	clk := vclock.NewSim()
	slo := 100 * time.Millisecond
	b := mustBatcher(t, BatcherConfig{Clock: clk, Model: fixedModel{latency: 5 * time.Millisecond}, MaxBatch: 100, SLO: slo})
	reqs := make([]core.ValidationRequest, 5)
	for i := range reqs {
		reqs[i] = core.ValidationRequest{Frame: frameAt(i), Margin: 0.5}
	}
	submit(clk, b, reqs, 20*time.Millisecond) // arrivals at 0,20,...,80ms
	st := b.Stats()
	if st.Batches != 1 || st.Frames != 5 {
		t.Fatalf("stats = %+v, want one batch of 5", st)
	}
	if st.MaxFlushWait != slo {
		t.Fatalf("oldest request waited %v, want exactly the SLO %v", st.MaxFlushWait, slo)
	}
	if st.SLOViolations != 0 {
		t.Fatalf("%d SLO violations", st.SLOViolations)
	}
}

// TestShedLowestMargin: over the pending cap, the lowest-margin request
// is the one dropped — whether it is queued or arriving. The first three
// arrivals fill one in-flight batch (the slow model keeps them in flight);
// the cap is then reached with one request queued and one arriving.
func TestShedLowestMargin(t *testing.T) {
	shedCfg := func(clk *vclock.Sim) BatcherConfig {
		return BatcherConfig{Clock: clk, Model: fixedModel{latency: 500 * time.Millisecond}, MaxBatch: 3, SLO: time.Second, MaxPending: 4}
	}

	// Margins 0.9, 0.8, 0.7 dispatch as a batch; 0.1 queues; 0.5 arrives
	// over the cap and the queued 0.1 must be the victim.
	clk := vclock.NewSim()
	b := mustBatcher(t, shedCfg(clk))
	reqs := []core.ValidationRequest{
		{Frame: frameAt(0), Margin: 0.9},
		{Frame: frameAt(1), Margin: 0.8},
		{Frame: frameAt(2), Margin: 0.7},
		{Frame: frameAt(3), Margin: 0.1},
		{Frame: frameAt(4), Margin: 0.5},
	}
	results := submit(clk, b, reqs, time.Millisecond)
	if results[3].Status != core.ValidationShed {
		t.Fatalf("queued low-margin request not shed: %v", results[3].Status)
	}
	for i, r := range results {
		if i != 3 && r.Status != core.Validated {
			t.Fatalf("request %d did not validate: %v", i, r.Status)
		}
	}
	if st := b.Stats(); st.Shed != 1 {
		t.Fatalf("shed count %d, want 1", st.Shed)
	}

	// Now an arriving request that is itself the weakest: 0.5 queued, 0.1
	// arriving → the arrival is shed.
	clk2 := vclock.NewSim()
	b2 := mustBatcher(t, shedCfg(clk2))
	reqs2 := []core.ValidationRequest{
		{Frame: frameAt(0), Margin: 0.9},
		{Frame: frameAt(1), Margin: 0.8},
		{Frame: frameAt(2), Margin: 0.7},
		{Frame: frameAt(3), Margin: 0.5},
		{Frame: frameAt(4), Margin: 0.1},
	}
	results2 := submit(clk2, b2, reqs2, time.Millisecond)
	if results2[4].Status != core.ValidationShed {
		t.Fatalf("weak arrival not shed: %v", results2[4].Status)
	}
	for i, r := range results2 {
		if i != 4 && r.Status != core.Validated {
			t.Fatalf("request %d did not validate: %v", i, r.Status)
		}
	}
}

// TestBatchAmortization: a batch of equal-latency frames costs
// max + α·(sum−max), not the serial sum.
func TestBatchAmortization(t *testing.T) {
	clk := vclock.NewSim()
	lat := 20 * time.Millisecond
	b := mustBatcher(t, BatcherConfig{Clock: clk, Model: fixedModel{latency: lat}, MaxBatch: 4, SLO: time.Hour, BatchAlpha: 0.25})
	reqs := make([]core.ValidationRequest, 4)
	for i := range reqs {
		reqs[i] = core.ValidationRequest{Frame: frameAt(i), Margin: 0.5}
	}
	results := submit(clk, b, reqs, 0)
	// 20ms + 0.25 · 60ms = 35ms for the whole batch, observed by every
	// member since all arrived at t=0.
	for i, r := range results {
		if want := 35 * time.Millisecond; r.CloudDetect != want {
			t.Fatalf("request %d finished after %v, want %v", i, r.CloudDetect, want)
		}
	}
}

// TestValidationMargin pins down the shedding priority: deepest-in-band
// detection wins, out-of-band detections are ignored.
func TestValidationMargin(t *testing.T) {
	dets := func(confs ...float64) []detect.Detection {
		out := make([]detect.Detection, len(confs))
		for i, c := range confs {
			out[i] = detect.Detection{Confidence: c}
		}
		return out
	}
	cases := []struct {
		confs []float64
		want  float64
	}{
		{[]float64{0.50}, 1.0},       // band center of [0.4, 0.6]
		{[]float64{0.40}, 0.0},       // on the lower edge
		{[]float64{0.42, 0.58}, 0.2}, // symmetric shallow pair
		{[]float64{0.10, 0.90}, 0.0}, // nothing in band
		{[]float64{0.45, 0.99}, 0.5}, // out-of-band ignored
	}
	for _, tc := range cases {
		got := core.ValidationMargin(dets(tc.confs...), 0.40, 0.60)
		if diff := got - tc.want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("margin(%v) = %v, want %v", tc.confs, got, tc.want)
		}
	}
}

// mustBatcher fails the test on config errors.
func mustBatcher(t *testing.T, cfg BatcherConfig) *Batcher {
	t.Helper()
	b, err := NewBatcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestNewBatcherValidation: missing Clock or Model, negative knobs, and a
// pending cap no batch could fill under are errors, not panics or silent
// misbehavior.
func TestNewBatcherValidation(t *testing.T) {
	if _, err := NewBatcher(BatcherConfig{Model: fixedModel{}}); err == nil {
		t.Error("missing Clock accepted")
	}
	if _, err := NewBatcher(BatcherConfig{Clock: vclock.NewSim()}); err == nil {
		t.Error("missing Model accepted")
	}
	clk := vclock.NewSim()
	base := BatcherConfig{Clock: clk, Model: fixedModel{}}
	bad := []struct {
		name string
		mut  func(*BatcherConfig)
	}{
		{"negative SLO", func(c *BatcherConfig) { c.SLO = -time.Millisecond }},
		{"negative MaxBatch", func(c *BatcherConfig) { c.MaxBatch = -1 }},
		{"negative MaxPending", func(c *BatcherConfig) { c.MaxPending = -1 }},
		{"negative Slots", func(c *BatcherConfig) { c.Slots = -1 }},
		{"negative BatchAlpha", func(c *BatcherConfig) { c.BatchAlpha = -0.5 }},
		{"negative CloudSpeed", func(c *BatcherConfig) { c.CloudSpeed = -1 }},
		{"pending below batch", func(c *BatcherConfig) { c.MaxBatch = 8; c.MaxPending = 4 }},
	}
	for _, tc := range bad {
		cfg := base
		tc.mut(&cfg)
		if _, err := NewBatcher(cfg); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
	// The boundary case is fine: a pending cap equal to the batch cap.
	if _, err := NewBatcher(BatcherConfig{Clock: clk, Model: fixedModel{}, MaxBatch: 4, MaxPending: 4}); err != nil {
		t.Errorf("MaxPending == MaxBatch rejected: %v", err)
	}
}
