//go:build race

package cluster

// raceEnabled: see race_off_test.go.
const raceEnabled = true
