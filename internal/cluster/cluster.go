// Package cluster is the deployment layer above the single-camera
// pipeline of internal/core: N camera streams placed across M edge nodes
// that share one cloud validator. Each edge node owns its store, locks,
// and transaction manager exactly like a standalone Croesus edge; the
// cloud side replaces the per-pipeline direct model call with an
// SLO-aware batcher (Batcher) that coalesces validate-interval frames
// from the whole fleet and sheds the lowest-confidence-margin frames
// under overload — shed frames keep their edge answer, which is exactly
// Croesus' degradation mode, so overload costs accuracy, never the SLO.
//
// The fleet is dynamic: cameras are driven by per-camera feeders, so a
// scenario (internal/scenario) can join, retire, migrate, or re-shape a
// camera mid-run, move its logical shard to another edge through the
// fleet's shard map, fail edges, and checkpoint write-ahead logs — all on
// the one vclock.Clock, so a sixteen-camera fleet under a full event
// timeline is as deterministic and as fast to simulate as a single
// pipeline.
package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"croesus/internal/core"
	"croesus/internal/detect"
	"croesus/internal/faults"
	"croesus/internal/lock"
	"croesus/internal/node"
	"croesus/internal/obs"
	"croesus/internal/store"
	"croesus/internal/transport"
	"croesus/internal/twopc"
	"croesus/internal/txn"
	"croesus/internal/vclock"
	"croesus/internal/video"
	"croesus/internal/wal"
	"croesus/internal/workload"
)

// TxnProtocol selects the multi-stage concurrency-control protocol the
// fleet's transactions run under. It is the shared fleet-node layer's
// protocol type (internal/node), so the cluster and the real TCP
// deployment select protocols identically. The zero value is MS-IA,
// matching the single-edge cluster default.
type TxnProtocol = node.Protocol

// Fleet transaction protocols.
const (
	// TxnMSIA is multi-stage invariant confluence with apologies: each
	// section locks (and, cross-edge, 2PC-commits) its own set.
	TxnMSIA = node.MSIA
	// TxnMSSR is multi-stage serializability: both sections' locks are
	// held from the initial commit to the final commit, with one atomic
	// commitment at the final — across the cloud round trip.
	TxnMSSR = node.MSSR
)

func distProtocol(p TxnProtocol) twopc.Protocol {
	if p == TxnMSSR {
		return twopc.MSSR
	}
	return twopc.MSIA
}

// CameraSpec declares one camera stream.
type CameraSpec struct {
	// ID names the camera in reports. Defaults to "cam<i>".
	ID string
	// Profile is the synthetic scene this camera captures.
	Profile video.Profile
	// Seed drives frame generation and the per-camera workload; distinct
	// seeds give distinct videos of the same profile.
	Seed int64
	// Frames is how many frames the camera captures.
	Frames int
	// Edge, when set, pins the camera to the named edge node instead of
	// consulting the Placement policy — how a scenario's declarative
	// topology fixes its layout.
	Edge string
	// Shard is the camera's logical shard in a fleet with an explicit
	// shard space (Config.Shards > 0); ignored otherwise, where each
	// camera draws from its edge's shard.
	Shard int
}

// EdgeSpec declares one edge node.
type EdgeSpec struct {
	// ID names the edge in reports. Defaults to "edge<i>".
	ID string
	// Speed is the machine speed factor (1.0 = reference; a t3a.small is
	// ≈ 0.45).
	Speed float64
	// Slots bounds concurrent edge inferences.
	Slots int
	// SameSite co-locates this edge with the cloud (short link) instead
	// of the default cross-country path.
	SameSite bool
}

// EdgeNode is one provisioned edge: the full standalone storage stack
// plus its links, shared by every camera placed on it.
type EdgeNode struct {
	Spec  EdgeSpec
	Model detect.Model
	Store *store.Store
	Locks *lock.Manager
	// Mgr is this edge's transaction manager. In a sharded fleet every
	// edge shares the one fleet-wide manager (undo log and dependency
	// index span edges); otherwise each edge has a private one.
	Mgr *txn.Manager
	// Partition is this edge's shard of the fleet keyspace (sharded
	// fleets only); it wraps Store and Locks.
	Partition *twopc.Partition
	// CC is the concurrency-control protocol this edge's cameras run
	// their transactions under.
	CC txn.CC
	// ClientEdge and EdgeCloud are this edge's network paths, provisioned
	// by the fleet's transport (netsim links on sim, real sockets on TCP);
	// Peers[i] is the one-way path to edge i (nil for itself), carrying
	// cross-edge lock and commit traffic in sharded fleets.
	ClientEdge transport.Path
	EdgeCloud  transport.Path
	Peers      []transport.Path
	// Compute is the edge's shared inference pool: every camera placed
	// here contends for these Spec.Slots slots.
	Compute *vclock.Semaphore
	// Cameras lists the IDs placed on this edge, in placement order.
	Cameras []string

	idx  int
	load float64
}

// Load reports the expected aggregate frame rate (frames/sec) of the
// cameras placed on this edge — what LeastLoaded balances.
func (e *EdgeNode) Load() float64 { return e.load }

// Config assembles a cluster. Zero-value fields take the documented
// defaults.
//
// Deprecated usage note: assembling fleets directly from a Config (and
// scheduling failures via Faults) still works but is the static subset of
// what a declarative scenario expresses; new callers should describe the
// fleet as a scenario.Scenario — topology plus event timeline — and let
// internal/scenario drive the cluster (see README "Scenarios" for the
// field-by-field mapping).
type Config struct {
	Clock   vclock.Clock
	Cameras []CameraSpec
	Edges   []EdgeSpec
	// Placement assigns cameras to edges (default round-robin) unless a
	// camera pins itself with CameraSpec.Edge.
	Placement Placement

	// Transport provisions the fleet's network paths — client→edge frame
	// delivery, edge→cloud validation traffic, inter-edge 2PC messages —
	// and applies network-level faults. Nil defaults to the simulated
	// transport (netsim links on the fleet clock, byte-deterministic).
	// Inject transport.NewTCP() — what croesus-cluster -transport tcp
	// does, together with a real Clock — to run the same fleet over
	// loopback TCP sockets. The cluster takes ownership and closes the
	// transport with Close.
	Transport transport.Transport

	// Batcher configures the shared cloud validator; its Clock and Model
	// are filled in from the cluster when unset.
	Batcher BatcherConfig

	// Seed seeds the detection models (default 42). CloudModel overrides
	// the default YOLOv3-416 simulator.
	Seed       int64
	CloudModel detect.Model

	// ThetaL and ThetaU are the fleet-wide bandwidth thresholds
	// (defaults 0.40 / 0.62, the paper's operating point).
	ThetaL, ThetaU float64
	// OverlapMin is the label-matching threshold (default 0.10).
	OverlapMin float64

	// WorkloadKeys sizes each camera's YCSB-A-style transaction source
	// (default 1000); OpCost charges clock time per database operation.
	WorkloadKeys int
	OpCost       time.Duration

	// Sharded makes the fleet's keyspace one database sharded across the
	// edge nodes: each edge hosts a twopc.Partition, every edge shares one
	// fleet-wide transaction manager, and cross-edge keys are locked
	// remotely and committed with 2PC (§4.5 at cluster scale). It is
	// implied by CrossEdgeFraction > 0.
	Sharded bool
	// CrossEdgeFraction is the probability that a workload key belongs to
	// another shard (in the default per-edge shard space: another edge) —
	// the multi-partition operation rate. 0 keeps every transaction on
	// its home shard (but still under the sharded machinery when Sharded
	// is set).
	CrossEdgeFraction float64
	// Protocol selects MS-IA (default) or MS-SR for the fleet's
	// transactions, in both sharded and unsharded fleets.
	Protocol TxnProtocol

	// Graph, when set, runs every camera over an N-node inference graph
	// instead of the two-stage pipeline: graph node k owns transaction
	// section k, placed on its tier (edge, peer mesh, or cloud). The
	// canonical two-stage graph — a default edge node falling through to a
	// default cloud node — routes to the classic executor, so declaring it
	// is byte-identical to leaving Graph nil.
	Graph *node.GraphSpec

	// ZipfSkew, when positive, replaces the uniform sharded key chooser
	// with a Zipf-skewed one of that exponent (values ≤ 1 are clamped just
	// above 1): every shard gets a hot head and cross-edge traffic
	// concentrates on remote hot keys. Sharded fleets only.
	ZipfSkew float64

	// Shards sizes an explicit logical shard space routed through a
	// mutable shard map (scenario fleets give every camera its own shard
	// so a migration moves exactly that camera's data). 0 — the default —
	// keeps the classic one-shard-per-edge identity layout. ShardOwners,
	// when set, is the initial shard→edge owner table (length Shards);
	// unset, shard i starts on edge i mod len(Edges).
	Shards      int
	ShardOwners []int

	// Faults schedules scripted failures — fail-stop edge crashes with
	// WAL-backed recovery, crashes at chosen 2PC points, inter-edge link
	// partitions — against the fleet (see internal/faults). Setting it
	// implies Sharded and Durable.
	Faults *faults.Plan
	// Durable gives every partition a write-ahead log (and the fleet a
	// fault injector, even with an empty plan) without scheduling any
	// failure — what checkpointing and scenario-driven crashes build on.
	// Implies Sharded.
	Durable bool
	// CheckpointEvery, when positive, checkpoints every partition's WAL
	// on that period, bounding crash-recovery replay time. Implies
	// Durable.
	CheckpointEvery time.Duration
	// WALDir is where durable partitions keep their logs (default: a
	// fresh temporary directory, removed when the run finishes).
	WALDir string

	// Obs, when set, threads the observability layer through the fleet:
	// every pipeline, the batcher, the sharded commit path, migrations,
	// and the fault injector emit spans to its tracer and mirror their
	// counters into its registry. Nil disables all instrumentation (the
	// default); enabling it does not perturb the virtual-time schedule.
	Obs *obs.Obs
}

func (c Config) defaults() Config {
	if c.Placement == nil {
		c.Placement = &RoundRobin{}
	}
	if c.Faults != nil && c.Faults.Empty() {
		c.Faults = nil // nothing scheduled: skip the fault machinery
	}
	if c.CheckpointEvery > 0 {
		c.Durable = true
	}
	if c.CrossEdgeFraction > 0 || c.Faults != nil || c.ZipfSkew > 0 || c.Durable || c.Shards > 0 {
		c.Sharded = true
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.ThetaL == 0 && c.ThetaU == 0 {
		c.ThetaL, c.ThetaU = 0.40, 0.62
	}
	if c.OverlapMin == 0 {
		c.OverlapMin = 0.10
	}
	if c.WorkloadKeys == 0 {
		c.WorkloadKeys = 1000
	}
	return c
}

// cameraRuntime binds one camera to its edge, pipeline, and frames. The
// mutable half (pacing, workload shape, placement) is guarded by mu: the
// feeder reads it per frame, timeline events rewrite it mid-run.
type cameraRuntime struct {
	spec  CameraSpec
	shard int // logical shard, or -1 in unsharded fleets
	src   *core.WorkloadSource

	mu       sync.Mutex
	edge     *EdgeNode
	pipe     *core.Pipeline
	frames   []*video.Frame
	outcomes []core.FrameOutcome
	done     []bool // outcome slot filled (vs dropped by an outage)
	fed      int    // frames scheduled so far (prefix of frames)
	dropped  int    // frames lost to an edge outage
	left     bool   // camera retired mid-run
	rate     float64
	nextAt   time.Duration
	interval time.Duration
	// migrateTo is a pending re-home: the feeder rebinds the pipeline to
	// that edge before the next frame, or MigrateCamera/feed apply it
	// directly when the feeder has already exited. -1 when none.
	migrateTo int
	// feeding marks a spawned feeder (guarded by Cluster.mu); feedDone
	// its exit (guarded by cam.mu).
	feeding   bool
	feedDone  bool
	crossFrac float64
	zipfSkew  float64
}

// Cluster is a constructed fleet, ready to Run (or to be driven event by
// event by a scenario runtime: Start, Schedule, StartCameras, Drain).
type Cluster struct {
	cfg        Config
	clk        vclock.Clock
	cloudModel detect.Model
	batcher    *Batcher
	transport  transport.Transport
	edges      []*EdgeNode
	cams       []*cameraRuntime
	nShards    int
	// graph is the compiled inference graph every camera pipeline runs
	// (nil for two-stage fleets and canonical two-stage graphs).
	graph *core.Graph

	// Sharded-keyspace state (nil/zero in unsharded fleets): the one
	// fleet-wide manager, the shared distributed-commit counters, and the
	// mutable shard map every route goes through.
	fleetMgr *txn.Manager
	dist     *twopc.DistStats
	shardMap *twopc.ShardMap

	// Fault-injection state (nil in fault-free fleets): the injector, the
	// WAL paths, and the temp WAL dir to remove after the run.
	injector *faults.Injector
	walTemp  string

	// Dynamic-fleet state: fleet-level mutations (membership, outages,
	// phase marks) serialize on mu; migrations additionally serialize on
	// migMu (they block on fleet locks and must not interleave — two
	// concurrent handoffs of one shard would each plan from a stale
	// owner and could strand the keys).
	mu        sync.Mutex
	migMu     sync.Mutex
	startAt   time.Duration
	edgeOut   []bool
	phases    []phaseMark
	dyn       DynamicReport
	dynActive bool
	migSeq    uint64
	started   bool
	// retired marks edges drained out of the fleet by RetireEdge: no
	// placement targets them again.
	retired []bool
	// pending counts live feeders and scheduled events; background
	// tickers exit when it drains so Clock.Wait can return.
	pending int
}

// New validates the configuration, provisions the edges and the shared
// batcher, and places every camera.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.defaults()
	if cfg.Clock == nil {
		return nil, fmt.Errorf("cluster: Config.Clock is required")
	}
	if len(cfg.Cameras) == 0 {
		return nil, fmt.Errorf("cluster: at least one camera is required")
	}
	if len(cfg.Edges) == 0 {
		return nil, fmt.Errorf("cluster: at least one edge is required")
	}
	if cfg.ThetaL > cfg.ThetaU {
		return nil, fmt.Errorf("cluster: thresholds must satisfy θL ≤ θU, got (%.2f, %.2f)", cfg.ThetaL, cfg.ThetaU)
	}
	if cfg.CrossEdgeFraction < 0 || cfg.CrossEdgeFraction > 1 {
		return nil, fmt.Errorf("cluster: CrossEdgeFraction must be in [0, 1], got %g", cfg.CrossEdgeFraction)
	}
	if cfg.ZipfSkew < 0 {
		return nil, fmt.Errorf("cluster: ZipfSkew must be ≥ 0, got %g", cfg.ZipfSkew)
	}
	if cfg.OpCost < 0 {
		return nil, fmt.Errorf("cluster: OpCost must be ≥ 0, got %s", cfg.OpCost)
	}
	if cfg.WorkloadKeys < 0 {
		return nil, fmt.Errorf("cluster: WorkloadKeys must be ≥ 0, got %d", cfg.WorkloadKeys)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("cluster: Shards must be ≥ 0, got %d", cfg.Shards)
	}
	if cfg.ShardOwners != nil && len(cfg.ShardOwners) != cfg.Shards {
		return nil, fmt.Errorf("cluster: %d ShardOwners for %d Shards", len(cfg.ShardOwners), cfg.Shards)
	}
	if cfg.CheckpointEvery < 0 {
		return nil, fmt.Errorf("cluster: CheckpointEvery must be ≥ 0, got %s", cfg.CheckpointEvery)
	}
	if cfg.Graph != nil {
		if err := cfg.Graph.Validate(len(cfg.Edges)); err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
	}

	cloudModel := cfg.CloudModel
	if cloudModel == nil {
		cloudModel = detect.YOLOv3Sim(detect.YOLO416, cfg.Seed)
	}
	bcfg := cfg.Batcher
	if bcfg.Clock == nil {
		bcfg.Clock = cfg.Clock
	}
	if bcfg.Model == nil {
		bcfg.Model = cloudModel
	}
	if bcfg.Obs == nil {
		bcfg.Obs = cfg.Obs
	}

	batcher, err := NewBatcher(bcfg)
	if err != nil {
		return nil, err
	}
	tr := cfg.Transport
	if tr == nil {
		tr = transport.NewSim()
	}
	c := &Cluster{cfg: cfg, clk: cfg.Clock, cloudModel: cloudModel, batcher: batcher, transport: tr}
	if cfg.Graph != nil && !cfg.Graph.Canonical2Stage() {
		g, err := cfg.Graph.Compile(len(cfg.Edges), cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		c.graph = g
	}
	if cfg.Obs != nil {
		// Traced transports (TCP) emit their own net.hop spans; the sim
		// transport ignores this and stays byte-identical.
		if oa, ok := tr.(transport.ObsAware); ok {
			oa.SetObs(cfg.Obs, cfg.Clock)
		}
		// The transport keeps its own lifetime counters; a pull collector
		// mirrors them into the registry at scrape time.
		ttags := obs.Tags("transport", tr.Name())
		msgs := cfg.Obs.Counter(obs.MetricTransportMsgs, ttags)
		bytes := cfg.Obs.Counter(obs.MetricTransportBytes, ttags)
		cfg.Obs.Registry().RegisterCollector(func(*obs.Registry) {
			st := tr.Stats()
			msgs.Add(st.Messages - msgs.Value())
			bytes.Add(st.Bytes - bytes.Value())
		})
	}

	// Edge IDs name reports, transport paths, and — under a fault plan —
	// the per-partition WAL files, so they must be unique (two edges
	// sharing one log would corrupt recovery) and free of path separators
	// (an ID like "../x" would escape WALDir).
	edgeIDs := make(map[string]bool, len(cfg.Edges))
	specs := make([]EdgeSpec, len(cfg.Edges))
	profiles := make([]transport.EdgeProfile, len(cfg.Edges))
	for i, es := range cfg.Edges {
		if es.ID == "" {
			es.ID = fmt.Sprintf("edge%d", i)
		}
		if strings.ContainsAny(es.ID, `/\`) || es.ID == "." || es.ID == ".." {
			return nil, fmt.Errorf("cluster: edge ID %q is not a valid file name", es.ID)
		}
		if edgeIDs[es.ID] {
			return nil, fmt.Errorf("cluster: duplicate edge ID %q", es.ID)
		}
		edgeIDs[es.ID] = true
		if es.Speed == 0 {
			es.Speed = 1
		}
		if es.Slots == 0 {
			es.Slots = 2
		}
		specs[i] = es
		profiles[i] = transport.EdgeProfile{ID: es.ID, SameSite: es.SameSite}
	}
	if err := tr.Provision(profiles); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	for i, es := range specs {
		c.edges = append(c.edges, &EdgeNode{
			Spec:       es,
			Model:      detect.TinyYOLOSim(cfg.Seed),
			Store:      store.New(),
			Locks:      lock.NewManager(cfg.Clock),
			ClientEdge: tr.ClientEdge(i),
			EdgeCloud:  tr.EdgeCloud(i),
			Compute:    vclock.NewSemaphore(cfg.Clock, es.Slots),
			idx:        i,
		})
	}
	c.edgeOut = make([]bool, len(c.edges))
	c.retired = make([]bool, len(c.edges))
	c.nShards = cfg.Shards
	if cfg.Sharded && c.nShards == 0 {
		c.nShards = len(c.edges)
	}

	if cfg.Sharded {
		if err := c.provisionShards(); err != nil {
			c.closeDurability()
			return nil, err
		}
	} else {
		// Unsharded edges are standalone nodes: the shared fleet-node
		// assembly (the same one the real TCP edge servers use) wires the
		// manager and protocol over each edge's private store and locks.
		for _, e := range c.edges {
			asm := node.NewOver(cfg.Clock, e.Store, e.Locks, cfg.Protocol)
			e.Mgr, e.CC = asm.Mgr, asm.CC
			if cfg.Obs != nil {
				e.Mgr.Tracer = cfg.Obs.Tracer()
				e.Mgr.TraceTags = obs.Tags("edge", e.Spec.ID, "protocol", cfg.Protocol.String())
			}
		}
	}

	camIDs := make(map[string]bool, len(cfg.Cameras))
	for i, cs := range cfg.Cameras {
		if cs.ID == "" {
			cs.ID = fmt.Sprintf("cam%d", i)
		}
		if camIDs[cs.ID] {
			c.closeDurability()
			return nil, fmt.Errorf("cluster: duplicate camera ID %q", cs.ID)
		}
		camIDs[cs.ID] = true
		if cs.Seed == 0 {
			cs.Seed = cfg.Seed + int64(i)
		}
		if cs.Frames == 0 {
			cs.Frames = 100
		}
		if cfg.Shards > 0 && (cs.Shard < 0 || cs.Shard >= cfg.Shards) {
			c.closeDurability()
			return nil, fmt.Errorf("cluster: camera %q shard %d outside [0, %d)", cs.ID, cs.Shard, cfg.Shards)
		}
		idx, err := c.placeCamera(cs)
		if err != nil {
			c.closeDurability()
			return nil, err
		}
		if _, err := c.buildCamera(cs, idx, 0); err != nil {
			c.closeDurability()
			return nil, err
		}
	}
	return c, nil
}

// placeCamera resolves a camera's edge: its pin when set, the placement
// policy otherwise. Retired edges are never placement targets: a pin to
// one is an error, and the policy only sees the live edges.
func (c *Cluster) placeCamera(cs CameraSpec) (int, error) {
	if cs.Edge != "" {
		for i, e := range c.edges {
			if e.Spec.ID == cs.Edge {
				if c.retired[i] {
					return 0, fmt.Errorf("cluster: camera %q pinned to retired edge %q", cs.ID, cs.Edge)
				}
				return i, nil
			}
		}
		return 0, fmt.Errorf("cluster: camera %q pinned to unknown edge %q", cs.ID, cs.Edge)
	}
	live := make([]*EdgeNode, 0, len(c.edges))
	back := make([]int, 0, len(c.edges))
	for i, e := range c.edges {
		if !c.retired[i] {
			live = append(live, e)
			back = append(back, i)
		}
	}
	if len(live) == 0 {
		return 0, fmt.Errorf("cluster: no live edge to place camera %q on (all retired)", cs.ID)
	}
	idx := c.cfg.Placement.Pick(cs, live)
	if idx < 0 || idx >= len(live) {
		return 0, fmt.Errorf("cluster: placement %q picked edge %d of %d for camera %q", c.cfg.Placement.Name(), idx, len(live), cs.ID)
	}
	return back[idx], nil
}

// chooser builds the sharded key chooser for one camera's current workload
// shape.
func (c *Cluster) chooser(home int, crossFrac, zipfSkew float64, seed int64) workload.KeyChooser {
	if zipfSkew > 0 {
		return workload.NewShardedZipf("item", home, c.nShards, c.cfg.WorkloadKeys, crossFrac, zipfSkew, seed)
	}
	return workload.ShardedUniform{
		Prefix:    "item",
		Home:      home,
		Shards:    c.nShards,
		N:         c.cfg.WorkloadKeys,
		CrossProb: crossFrac,
	}
}

// buildPipe assembles a camera's pipeline bound to one edge node — called
// at construction and again when a migration re-homes the camera.
func (c *Cluster) buildPipe(edge *EdgeNode, source core.TxnSource, camID string) (*core.Pipeline, error) {
	cfg := c.cfg
	// All cameras on one edge contend for the same inference pool, so they
	// share the edge's queue-depth gauge (the registry hands back the same
	// gauge for the same name+tags).
	var queueDepth *obs.Gauge
	if cfg.Obs != nil {
		queueDepth = cfg.Obs.Gauge(obs.MetricEdgeQueueDepth, obs.Tags("edge", edge.Spec.ID))
	}
	// Peer-tier graph nodes ride the inter-edge mesh: each edge ships to
	// its ring neighbour, the same paths sharded 2PC traffic uses.
	var peer transport.Path
	if c.graph != nil && len(c.edges) > 1 {
		peer = c.transport.Peer(edge.idx, (edge.idx+1)%len(c.edges))
	}
	return core.New(core.Config{
		Clock:       cfg.Clock,
		Mode:        core.ModeCroesus,
		EdgeModel:   edge.Model,
		CloudModel:  c.cloudModel,
		EdgeSpeed:   edge.Spec.Speed,
		EdgeSlots:   edge.Spec.Slots,
		EdgeCompute: edge.Compute,
		ClientEdge:  edge.ClientEdge,
		EdgeCloud:   edge.EdgeCloud,
		ThetaL:      cfg.ThetaL,
		ThetaU:      cfg.ThetaU,
		OverlapMin:  cfg.OverlapMin,
		Source:      source,
		CC:          edge.CC,
		Mgr:         edge.Mgr,
		Graph:       c.graph,
		PeerPath:    peer,
		Validator: &EdgeUplink{
			Uplink: core.Uplink{
				Clock:     cfg.Clock,
				Link:      edge.EdgeCloud,
				EdgeSpeed: edge.Spec.Speed,
			},
			Batcher: c.batcher,
		},
		Obs:        cfg.Obs,
		SpanCtx:    spanCtxHook(cfg.Obs, camID),
		TagKV:      []string{"edge", edge.Spec.ID, "camera", camID, "protocol", cfg.Protocol.String()},
		QueueDepth: queueDepth,
	})
}

// spanCtxHook derives each frame's trace identity from the camera name
// and frame index. The hash is deterministic, so a sim run re-derives the
// same IDs every time and two processes tracing the same frame agree on
// its trace without coordination. Nil when tracing is off, which keeps
// the untraced pipeline (and its wire bytes) untouched.
func spanCtxHook(o *obs.Obs, camID string) func(f *video.Frame) obs.SpanContext {
	if o == nil {
		return nil
	}
	return func(f *video.Frame) obs.SpanContext {
		trace := obs.HashID("trace", camID, obs.U64(uint64(f.Index)))
		return obs.SpanContext{
			Trace: trace,
			Span:  obs.HashID("span", obs.U64(trace), obs.SpanFrameRoot),
		}
	}
}

// buildCamera provisions one camera on the edge at idx, with its first
// frame due at startAt, and registers it with the fleet.
func (c *Cluster) buildCamera(cs CameraSpec, idx int, startAt time.Duration) (*cameraRuntime, error) {
	edge := c.edges[idx]
	shard := -1
	if c.cfg.Sharded {
		shard = idx
		if c.cfg.Shards > 0 {
			shard = cs.Shard
		}
	}
	source := core.NewWorkloadSource(c.cfg.WorkloadKeys, cs.Seed)
	if c.graph != nil {
		// Shape the camera's transactions to the graph: one section per
		// node, so node k's labels commit section k.
		source.SetPlan(c.graph.SectionPlan())
	}
	if c.cfg.Sharded {
		// The camera draws keys from the fleet-wide sharded keyspace,
		// home-biased: CrossEdgeFraction of them belong to another shard
		// and make the transaction multi-partition.
		source.Keys = c.chooser(shard, c.cfg.CrossEdgeFraction, c.cfg.ZipfSkew, cs.Seed)
	}
	if c.cfg.OpCost > 0 {
		source.Clk = c.cfg.Clock
		source.OpCost = c.cfg.OpCost
	}
	pipe, err := c.buildPipe(edge, source, cs.ID)
	if err != nil {
		return nil, fmt.Errorf("cluster: camera %q: %w", cs.ID, err)
	}
	frames := video.NewGenerator(cs.Profile, cs.Seed).Generate(cs.Frames)
	cam := &cameraRuntime{
		spec:      cs,
		shard:     shard,
		src:       source,
		edge:      edge,
		pipe:      pipe,
		frames:    frames,
		outcomes:  make([]core.FrameOutcome, len(frames)),
		done:      make([]bool, len(frames)),
		rate:      1,
		nextAt:    startAt,
		interval:  cs.Profile.FrameInterval(),
		migrateTo: -1,
		crossFrac: c.cfg.CrossEdgeFraction,
		zipfSkew:  c.cfg.ZipfSkew,
	}
	edge.Cameras = append(edge.Cameras, cs.ID)
	edge.load += cs.Profile.FPS
	c.cams = append(c.cams, cam)
	return cam, nil
}

// provisionShards converts the freshly built edges into one sharded
// database: each edge's store and locks become a twopc.Partition, a mesh of
// inter-edge links carries cross-edge lock and commit traffic, one
// fleet-wide txn.Manager (whose backend routes every key through the shard
// map) spans all edges, and each edge gets a ShardedCC bound to its home
// partition. A durable fleet (fault plan, Durable, or checkpointing)
// additionally gets per-partition write-ahead logs and a fault injector, so
// scripted crashes are survivable: committed state recovers from the log,
// retraction restores are journaled, and in-doubt 2PC blocks resolve
// against coordinator logs.
func (c *Cluster) provisionShards() error {
	n := len(c.edges)
	parts := make([]*twopc.Partition, n)
	for i, e := range c.edges {
		parts[i] = twopc.NewPartitionOver(i, e.Store, e.Locks)
		e.Partition = parts[i]
	}
	owners := c.cfg.ShardOwners
	if owners == nil {
		owners = make([]int, c.nShards)
		for s := range owners {
			owners[s] = s % n
		}
	}
	smap, err := twopc.NewShardMap(owners, n)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	c.shardMap = smap
	c.dist = &twopc.DistStats{}
	shardedStore := &twopc.ShardedStore{Parts: parts, Partitioner: smap.Lookup, Map: smap, Clk: c.cfg.Clock}
	c.fleetMgr = txn.NewManager(c.cfg.Clock, nil, nil)
	c.fleetMgr.DB = shardedStore
	proto := c.cfg.Protocol.String()
	if c.cfg.Obs != nil {
		c.dist.Bind(c.cfg.Obs, obs.Tags("protocol", proto))
		c.fleetMgr.Tracer = c.cfg.Obs.Tracer()
		c.fleetMgr.TraceTags = obs.Tags("protocol", proto)
	}
	for i, e := range c.edges {
		e.Peers = make([]transport.Path, n)
		for j := range c.edges {
			if j == i {
				continue
			}
			e.Peers[j] = c.transport.Peer(i, j)
		}
		e.Mgr = c.fleetMgr
		e.CC = &twopc.ShardedCC{
			Clk:         c.cfg.Clock,
			M:           c.fleetMgr,
			Home:        i,
			Parts:       parts,
			Links:       e.Peers,
			Partitioner: smap.Lookup,
			Map:         smap,
			Protocol:    distProtocol(c.cfg.Protocol),
			Stats:       c.dist,
		}
		if c.cfg.Obs != nil {
			cc := e.CC.(*twopc.ShardedCC)
			cc.Obs = c.cfg.Obs
			cc.Tags = obs.Tags("edge", e.Spec.ID, "protocol", proto)
			parts[i].WALAppends = c.cfg.Obs.Counter(obs.MetricWALAppends, obs.Tags("edge", e.Spec.ID))
		}
	}
	if c.cfg.Faults == nil && !c.cfg.Durable {
		return nil
	}

	dir := c.cfg.WALDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "croesus-wal-")
		if err != nil {
			return fmt.Errorf("cluster: wal dir: %w", err)
		}
		dir, c.walTemp = tmp, tmp
	}
	paths := make([]string, n)
	linkRows := make([][]transport.Path, n)
	for i, e := range c.edges {
		paths[i] = filepath.Join(dir, fmt.Sprintf("%s.wal", e.Spec.ID))
		// A fresh fleet starts from a fresh log: stale records from an
		// earlier run in the same WALDir would poison recovery.
		os.Remove(paths[i])
		log, err := wal.Open(paths[i])
		if err != nil {
			return fmt.Errorf("cluster: wal for edge %s: %w", e.Spec.ID, err)
		}
		// The log models durability inside one simulated process; skipping
		// fsync keeps big fleets fast without changing any outcome.
		log.NoSync = true
		parts[i].WAL = log
		linkRows[i] = e.Peers
	}
	// Retraction cascades re-install before-images through the journaling
	// backend so a recovered partition agrees with the live store.
	c.fleetMgr.RestoreDB = twopc.JournaledShardedStore{ShardedStore: shardedStore}
	plan := faults.Plan{}
	if c.cfg.Faults != nil {
		plan = *c.cfg.Faults
	}
	inj, err := faults.NewInjector(c.cfg.Clock, plan, parts, linkRows, paths)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	// Crashes and recoveries mirror to the transport: the TCP fleet tears
	// a crashed edge's connections down and blackholes its traffic until
	// restart; the sim transport ignores the hook (its fleet models
	// crashes above the network).
	inj.EdgeDown = c.transport.SetEdgeDown
	if c.cfg.Obs != nil {
		edgeTags := make([]string, n)
		for i, e := range c.edges {
			edgeTags[i] = obs.Tags("edge", e.Spec.ID)
		}
		inj.Bind(c.cfg.Obs, edgeTags)
	}
	c.injector = inj
	for _, e := range c.edges {
		e.CC.(*twopc.ShardedCC).Faults = inj
	}
	return nil
}

// closeDurability closes the partition logs, removes a temp WAL dir, and
// releases the transport (listeners and connections on TCP; a no-op on the
// simulated transport).
func (c *Cluster) closeDurability() {
	for _, e := range c.edges {
		if e.Partition != nil {
			e.Partition.CloseWAL()
		}
	}
	if c.walTemp != "" {
		os.RemoveAll(c.walTemp)
		c.walTemp = ""
	}
	if c.transport != nil {
		c.transport.Close()
	}
}

// Edges returns the provisioned edge nodes in declaration order.
func (c *Cluster) Edges() []*EdgeNode { return c.edges }

// FleetManager returns the fleet-wide transaction manager of a sharded
// cluster, or nil when each edge has a private one.
func (c *Cluster) FleetManager() *txn.Manager { return c.fleetMgr }

// ShardMap returns the sharded fleet's mutable shard→edge routing table,
// or nil in unsharded fleets.
func (c *Cluster) ShardMap() *twopc.ShardMap { return c.shardMap }

// DistStats returns a snapshot of the sharded fleet's distributed-commit
// counters (zero in unsharded fleets).
func (c *Cluster) DistStats() twopc.DistCounters {
	if c.dist == nil {
		return twopc.DistCounters{}
	}
	return c.dist.Snapshot()
}

// Injector returns the fleet's fault injector, or nil without a fault plan.
func (c *Cluster) Injector() *faults.Injector { return c.injector }

// Close releases the durability resources of a fault-injected fleet (the
// partition logs and any auto-created WAL directory). The one-call Run
// closes automatically; New+Run callers close when done — after any
// post-run log inspection such as Injector().VerifyDurability().
func (c *Cluster) Close() { c.closeDurability() }

// Outcomes returns the per-frame outcomes of one camera after Run, or
// nil if the camera is unknown. Frames are in capture order; a camera that
// left mid-run (or lost frames to an edge outage) reports only the frames
// it actually captured.
func (c *Cluster) Outcomes(cameraID string) []core.FrameOutcome {
	cam := c.findCam(cameraID)
	if cam == nil {
		return nil
	}
	cam.mu.Lock()
	defer cam.mu.Unlock()
	out := make([]core.FrameOutcome, 0, cam.fed)
	for i := 0; i < cam.fed; i++ {
		if cam.done[i] {
			out = append(out, cam.outcomes[i])
		}
	}
	return out
}

// Batcher returns the shared cloud validator.
func (c *Cluster) Batcher() *Batcher { return c.batcher }

// Start spawns the fleet's background machinery — the fault injector's
// scheduled events and the checkpoint ticker — on the clock. It runs first
// so the virtual-time tiebreak (and with it the whole run) is reproducible.
// Call exactly once, from the clock's driver, before Schedule and
// StartCameras; Run does all three.
func (c *Cluster) Start() {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		panic("cluster: Start called twice")
	}
	c.started = true
	c.startAt = c.clk.Now()
	c.mu.Unlock()
	if c.injector != nil {
		c.injector.Start()
		if every := c.cfg.CheckpointEvery; every > 0 {
			c.clk.Go(func() {
				for {
					c.clk.Sleep(every)
					c.mu.Lock()
					idle := c.pending == 0
					c.mu.Unlock()
					if idle {
						return // fleet drained: stop ticking so Wait can return
					}
					for e := range c.edges {
						c.injector.Checkpoint(e)
					}
				}
			})
		}
	}
}

// StartCameras spawns a feeder for every camera currently provisioned.
// Call once, after Start (and after any Schedule calls).
func (c *Cluster) StartCameras() {
	c.mu.Lock()
	cams := append([]*cameraRuntime{}, c.cams...)
	c.mu.Unlock()
	for _, cam := range cams {
		c.startFeeder(cam)
	}
}

// startFeeder is idempotent per camera: a camera joining at time zero could
// otherwise be fed both by its join event and by StartCameras.
func (c *Cluster) startFeeder(cam *cameraRuntime) {
	c.mu.Lock()
	if cam.feeding {
		c.mu.Unlock()
		return
	}
	cam.feeding = true
	c.pending++
	c.mu.Unlock()
	c.clk.Go(func() {
		defer c.workDone()
		c.feed(cam)
	})
}

func (c *Cluster) workAdd() {
	c.mu.Lock()
	c.pending++
	c.mu.Unlock()
}

func (c *Cluster) workDone() {
	c.mu.Lock()
	c.pending--
	c.mu.Unlock()
}

// feed drives one camera: each frame is scheduled at its due time (base
// interval over the camera's current rate scale), then processed on its own
// goroutine so captures overlap exactly as a continuously-capturing client.
// Between frames the feeder applies whatever the timeline changed —
// retirement, a pending migration's pipeline rebind, a new rate — and drops
// frames captured while the edge is in an (unsharded) outage.
func (c *Cluster) feed(cam *cameraRuntime) {
	clk := c.clk
	for i := range cam.frames {
		cam.mu.Lock()
		due := cam.nextAt
		left := cam.left
		cam.mu.Unlock()
		if left {
			break
		}
		if d := due - clk.Now(); d > 0 {
			clk.Sleep(d)
		}
		cam.mu.Lock()
		if cam.left {
			cam.mu.Unlock()
			break
		}
		if cam.migrateTo >= 0 {
			c.rebindLocked(cam)
		}
		rate := cam.rate
		if rate <= 0 {
			rate = 1
		}
		cam.nextAt = due + time.Duration(float64(cam.interval)/rate)
		pipe := cam.pipe
		edgeIdx := cam.edge.idx
		cam.fed = i + 1
		down := c.edgeOutage(edgeIdx)
		if down {
			cam.dropped++
			cam.mu.Unlock()
			c.mu.Lock()
			c.dyn.FramesDropped++
			c.mu.Unlock()
			continue
		}
		cam.mu.Unlock()
		f := cam.frames[i]
		f.At = due
		i := i
		clk.Go(func() {
			out := pipe.ProcessFrame(f)
			cam.mu.Lock()
			cam.outcomes[i] = out
			cam.done[i] = true
			cam.mu.Unlock()
		})
	}
	// A migration that raced the last frame (or arrives after it — see
	// MigrateCamera) must still re-home the bookkeeping so the report
	// places the camera on its destination edge.
	cam.mu.Lock()
	cam.feedDone = true
	if cam.migrateTo >= 0 {
		c.rebindLocked(cam)
	}
	cam.mu.Unlock()
}

// Drain blocks until every camera, frame, and scheduled event has finished,
// repairs the fleet (end-of-run recovery and in-doubt resolution), and
// scores the run. The caller must be the clock's driver.
func (c *Cluster) Drain() *ClusterReport {
	c.clk.Wait()
	// End-of-run repair: recover any edge still down and resolve every
	// outstanding in-doubt block, so the report describes a healed fleet.
	if c.injector != nil {
		c.injector.Finish()
	}
	// The makespan ends at the last frame's final commit, not at
	// clk.Now(): stale SLO timers may still run the clock forward after
	// the fleet has drained. It starts at Start's timestamp, not at
	// virtual-time zero — a caller-owned clock may have run before the
	// fleet did.
	end := c.startAt
	for _, cam := range c.cams {
		cam.mu.Lock()
		for i := 0; i < cam.fed; i++ {
			if !cam.done[i] {
				continue
			}
			if t := cam.outcomes[i].CapturedAt + cam.outcomes[i].FinalLatency; t > end {
				end = t
			}
		}
		cam.mu.Unlock()
	}
	return c.report(end-c.startAt, end)
}

// Run drives every camera's frames at their capture timestamps on the
// shared clock and blocks until the last final commit. The caller must
// be the clock's driver (outside the simulation). Run may be called
// once.
func (c *Cluster) Run() *ClusterReport {
	c.Start()
	c.StartCameras()
	return c.Drain()
}

// Run builds and runs a cluster in one call, releasing any durability
// resources when the run finishes.
func Run(cfg Config) (*ClusterReport, error) {
	c, err := New(cfg)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return c.Run(), nil
}
