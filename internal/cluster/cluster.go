// Package cluster is the deployment layer above the single-camera
// pipeline of internal/core: N camera streams placed across M edge nodes
// that share one cloud validator. Each edge node owns its store, locks,
// and transaction manager exactly like a standalone Croesus edge; the
// cloud side replaces the per-pipeline direct model call with an
// SLO-aware batcher (Batcher) that coalesces validate-interval frames
// from the whole fleet and sheds the lowest-confidence-margin frames
// under overload — shed frames keep their edge answer, which is exactly
// Croesus' degradation mode, so overload costs accuracy, never the SLO.
//
// Everything runs on one vclock.Clock, so a sixteen-camera fleet is as
// deterministic and as fast to simulate as a single pipeline.
package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"croesus/internal/core"
	"croesus/internal/detect"
	"croesus/internal/faults"
	"croesus/internal/lock"
	"croesus/internal/netsim"
	"croesus/internal/store"
	"croesus/internal/twopc"
	"croesus/internal/txn"
	"croesus/internal/vclock"
	"croesus/internal/video"
	"croesus/internal/wal"
	"croesus/internal/workload"
)

// TxnProtocol selects the multi-stage concurrency-control protocol the
// fleet's transactions run under. The zero value is MS-IA, matching the
// single-edge cluster default.
type TxnProtocol int

// Fleet transaction protocols.
const (
	// TxnMSIA is multi-stage invariant confluence with apologies: each
	// section locks (and, cross-edge, 2PC-commits) its own set.
	TxnMSIA TxnProtocol = iota
	// TxnMSSR is multi-stage serializability: both sections' locks are
	// held from the initial commit to the final commit, with one atomic
	// commitment at the final — across the cloud round trip.
	TxnMSSR
)

func (p TxnProtocol) String() string {
	if p == TxnMSSR {
		return "MS-SR"
	}
	return "MS-IA"
}

func (p TxnProtocol) dist() twopc.Protocol {
	if p == TxnMSSR {
		return twopc.MSSR
	}
	return twopc.MSIA
}

// CameraSpec declares one camera stream.
type CameraSpec struct {
	// ID names the camera in reports. Defaults to "cam<i>".
	ID string
	// Profile is the synthetic scene this camera captures.
	Profile video.Profile
	// Seed drives frame generation and the per-camera workload; distinct
	// seeds give distinct videos of the same profile.
	Seed int64
	// Frames is how many frames the camera captures.
	Frames int
}

// EdgeSpec declares one edge node.
type EdgeSpec struct {
	// ID names the edge in reports. Defaults to "edge<i>".
	ID string
	// Speed is the machine speed factor (1.0 = reference; a t3a.small is
	// ≈ 0.45).
	Speed float64
	// Slots bounds concurrent edge inferences.
	Slots int
	// SameSite co-locates this edge with the cloud (short link) instead
	// of the default cross-country path.
	SameSite bool
}

// EdgeNode is one provisioned edge: the full standalone storage stack
// plus its links, shared by every camera placed on it.
type EdgeNode struct {
	Spec  EdgeSpec
	Model detect.Model
	Store *store.Store
	Locks *lock.Manager
	// Mgr is this edge's transaction manager. In a sharded fleet every
	// edge shares the one fleet-wide manager (undo log and dependency
	// index span edges); otherwise each edge has a private one.
	Mgr *txn.Manager
	// Partition is this edge's shard of the fleet keyspace (sharded
	// fleets only); it wraps Store and Locks.
	Partition *twopc.Partition
	// CC is the concurrency-control protocol this edge's cameras run
	// their transactions under.
	CC txn.CC
	// ClientEdge and EdgeCloud are this edge's private network paths;
	// Peers[i] is the one-way link to edge i (nil for itself), carrying
	// cross-edge lock and commit traffic in sharded fleets.
	ClientEdge *netsim.Link
	EdgeCloud  *netsim.Link
	Peers      []*netsim.Link
	// Compute is the edge's shared inference pool: every camera placed
	// here contends for these Spec.Slots slots.
	Compute *vclock.Semaphore
	// Cameras lists the IDs placed on this edge, in placement order.
	Cameras []string

	load float64
}

// Load reports the expected aggregate frame rate (frames/sec) of the
// cameras placed on this edge — what LeastLoaded balances.
func (e *EdgeNode) Load() float64 { return e.load }

// Config assembles a cluster. Zero-value fields take the documented
// defaults.
type Config struct {
	Clock   vclock.Clock
	Cameras []CameraSpec
	Edges   []EdgeSpec
	// Placement assigns cameras to edges (default round-robin).
	Placement Placement

	// Batcher configures the shared cloud validator; its Clock and Model
	// are filled in from the cluster when unset.
	Batcher BatcherConfig

	// Seed seeds the detection models (default 42). CloudModel overrides
	// the default YOLOv3-416 simulator.
	Seed       int64
	CloudModel detect.Model

	// ThetaL and ThetaU are the fleet-wide bandwidth thresholds
	// (defaults 0.40 / 0.62, the paper's operating point).
	ThetaL, ThetaU float64
	// OverlapMin is the label-matching threshold (default 0.10).
	OverlapMin float64

	// WorkloadKeys sizes each camera's YCSB-A-style transaction source
	// (default 1000); OpCost charges clock time per database operation.
	WorkloadKeys int
	OpCost       time.Duration

	// Sharded makes the fleet's keyspace one database sharded across the
	// edge nodes: each edge hosts a twopc.Partition, every edge shares one
	// fleet-wide transaction manager, and cross-edge keys are locked
	// remotely and committed with 2PC (§4.5 at cluster scale). It is
	// implied by CrossEdgeFraction > 0.
	Sharded bool
	// CrossEdgeFraction is the probability that a workload key belongs to
	// another edge's shard — the multi-partition operation rate. 0 keeps
	// every transaction on its home shard (but still under the sharded
	// machinery when Sharded is set).
	CrossEdgeFraction float64
	// Protocol selects MS-IA (default) or MS-SR for the fleet's
	// transactions, in both sharded and unsharded fleets.
	Protocol TxnProtocol

	// ZipfSkew, when positive, replaces the uniform sharded key chooser
	// with a Zipf-skewed one of that exponent (values ≤ 1 are clamped just
	// above 1): every shard gets a hot head and cross-edge traffic
	// concentrates on remote hot keys. Sharded fleets only.
	ZipfSkew float64

	// Faults schedules scripted failures — fail-stop edge crashes with
	// WAL-backed recovery, crashes at chosen 2PC points, inter-edge link
	// partitions — against the fleet (see internal/faults). Setting it
	// implies Sharded and makes every partition durable: each edge logs
	// its committed state and 2PC decisions to a write-ahead log under
	// WALDir and recovers from it after a crash.
	Faults *faults.Plan
	// WALDir is where durable partitions keep their logs (default: a
	// fresh temporary directory, removed when the run finishes).
	WALDir string
}

func (c Config) defaults() Config {
	if c.Placement == nil {
		c.Placement = &RoundRobin{}
	}
	if c.Faults != nil && c.Faults.Empty() {
		c.Faults = nil // nothing scheduled: skip the durability machinery
	}
	if c.CrossEdgeFraction > 0 || c.Faults != nil || c.ZipfSkew > 0 {
		c.Sharded = true
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.ThetaL == 0 && c.ThetaU == 0 {
		c.ThetaL, c.ThetaU = 0.40, 0.62
	}
	if c.OverlapMin == 0 {
		c.OverlapMin = 0.10
	}
	if c.WorkloadKeys == 0 {
		c.WorkloadKeys = 1000
	}
	return c
}

// cameraRuntime binds one camera to its edge, pipeline, and frames.
type cameraRuntime struct {
	spec     CameraSpec
	edge     *EdgeNode
	pipe     *core.Pipeline
	frames   []*video.Frame
	outcomes []core.FrameOutcome
}

// Cluster is a constructed fleet, ready to Run.
type Cluster struct {
	cfg        Config
	clk        vclock.Clock
	cloudModel detect.Model
	batcher    *Batcher
	edges      []*EdgeNode
	cams       []*cameraRuntime

	// Sharded-keyspace state (nil/zero in unsharded fleets): the one
	// fleet-wide manager, the shared distributed-commit counters, and the
	// placement-aware partitioner.
	fleetMgr    *txn.Manager
	dist        *twopc.DistStats
	partitioner func(string) int

	// Fault-injection state (nil in fault-free fleets): the injector, the
	// per-partition logs, and the temp WAL dir to remove after the run.
	injector *faults.Injector
	walLogs  []*wal.Log
	walTemp  string
}

// shardPartitioner routes sharded workload keys by their shard tag and any
// untagged key by hash — the fleet's placement-aware partitioner.
func shardPartitioner(n int) func(string) int {
	hash := twopc.HashPartitioner(n)
	return func(key string) int {
		if s, ok := workload.ShardOf(key); ok && s < n {
			return s
		}
		return hash(key)
	}
}

// New validates the configuration, provisions the edges and the shared
// batcher, and places every camera.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.defaults()
	if cfg.Clock == nil {
		return nil, fmt.Errorf("cluster: Config.Clock is required")
	}
	if len(cfg.Cameras) == 0 {
		return nil, fmt.Errorf("cluster: at least one camera is required")
	}
	if len(cfg.Edges) == 0 {
		return nil, fmt.Errorf("cluster: at least one edge is required")
	}
	if cfg.ThetaL > cfg.ThetaU {
		return nil, fmt.Errorf("cluster: thresholds must satisfy θL ≤ θU, got (%.2f, %.2f)", cfg.ThetaL, cfg.ThetaU)
	}
	if cfg.CrossEdgeFraction < 0 || cfg.CrossEdgeFraction > 1 {
		return nil, fmt.Errorf("cluster: CrossEdgeFraction must be in [0, 1], got %g", cfg.CrossEdgeFraction)
	}
	if cfg.ZipfSkew < 0 {
		return nil, fmt.Errorf("cluster: ZipfSkew must be ≥ 0, got %g", cfg.ZipfSkew)
	}

	cloudModel := cfg.CloudModel
	if cloudModel == nil {
		cloudModel = detect.YOLOv3Sim(detect.YOLO416, cfg.Seed)
	}
	bcfg := cfg.Batcher
	if bcfg.Clock == nil {
		bcfg.Clock = cfg.Clock
	}
	if bcfg.Model == nil {
		bcfg.Model = cloudModel
	}

	batcher, err := NewBatcher(bcfg)
	if err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, clk: cfg.Clock, cloudModel: cloudModel, batcher: batcher}

	// Edge IDs name reports, peer links, and — under a fault plan — the
	// per-partition WAL files, so they must be unique (two edges sharing
	// one log would corrupt recovery) and free of path separators (an ID
	// like "../x" would escape WALDir).
	edgeIDs := make(map[string]bool, len(cfg.Edges))
	for i, es := range cfg.Edges {
		if es.ID == "" {
			es.ID = fmt.Sprintf("edge%d", i)
		}
		if strings.ContainsAny(es.ID, `/\`) || es.ID == "." || es.ID == ".." {
			return nil, fmt.Errorf("cluster: edge ID %q is not a valid file name", es.ID)
		}
		if edgeIDs[es.ID] {
			return nil, fmt.Errorf("cluster: duplicate edge ID %q", es.ID)
		}
		edgeIDs[es.ID] = true
		if es.Speed == 0 {
			es.Speed = 1
		}
		if es.Slots == 0 {
			es.Slots = 2
		}
		st := store.New()
		locks := lock.NewManager(cfg.Clock)
		edgeCloud := netsim.EdgeCloudCrossCountry()
		if es.SameSite {
			edgeCloud = netsim.EdgeCloudSameSite()
		}
		edgeCloud.Name = es.ID + "-cloud"
		clientEdge := netsim.ClientEdgeLink()
		clientEdge.Name = "client-" + es.ID
		c.edges = append(c.edges, &EdgeNode{
			Spec:       es,
			Model:      detect.TinyYOLOSim(cfg.Seed),
			Store:      st,
			Locks:      locks,
			ClientEdge: clientEdge,
			EdgeCloud:  edgeCloud,
			Compute:    vclock.NewSemaphore(cfg.Clock, es.Slots),
		})
	}

	if cfg.Sharded {
		if err := c.provisionShards(); err != nil {
			c.closeDurability()
			return nil, err
		}
	} else {
		for _, e := range c.edges {
			e.Mgr = txn.NewManager(cfg.Clock, e.Store, e.Locks)
			if cfg.Protocol == TxnMSSR {
				e.CC = &txn.MSSR{M: e.Mgr, Policy: txn.Wait}
			} else {
				e.CC = &txn.MSIA{M: e.Mgr}
			}
		}
	}

	for i, cs := range cfg.Cameras {
		if cs.ID == "" {
			cs.ID = fmt.Sprintf("cam%d", i)
		}
		if cs.Seed == 0 {
			cs.Seed = cfg.Seed + int64(i)
		}
		if cs.Frames == 0 {
			cs.Frames = 100
		}
		idx := cfg.Placement.Pick(cs, c.edges)
		if idx < 0 || idx >= len(c.edges) {
			c.closeDurability()
			return nil, fmt.Errorf("cluster: placement %q picked edge %d of %d for camera %q", cfg.Placement.Name(), idx, len(c.edges), cs.ID)
		}
		edge := c.edges[idx]
		edge.Cameras = append(edge.Cameras, cs.ID)
		edge.load += cs.Profile.FPS

		source := core.NewWorkloadSource(cfg.WorkloadKeys, cs.Seed)
		if cfg.Sharded {
			// The camera draws keys from the fleet-wide sharded keyspace,
			// home-biased: CrossEdgeFraction of them belong to another
			// edge's shard and make the transaction multi-partition.
			if cfg.ZipfSkew > 0 {
				source.Keys = workload.NewShardedZipf(
					"item", idx, len(c.edges), cfg.WorkloadKeys,
					cfg.CrossEdgeFraction, cfg.ZipfSkew, cs.Seed)
			} else {
				source.Keys = workload.ShardedUniform{
					Prefix:    "item",
					Home:      idx,
					Shards:    len(c.edges),
					N:         cfg.WorkloadKeys,
					CrossProb: cfg.CrossEdgeFraction,
				}
			}
		}
		if cfg.OpCost > 0 {
			source.Clk = cfg.Clock
			source.OpCost = cfg.OpCost
		}
		pipe, err := core.New(core.Config{
			Clock:       cfg.Clock,
			Mode:        core.ModeCroesus,
			EdgeModel:   edge.Model,
			CloudModel:  cloudModel,
			EdgeSpeed:   edge.Spec.Speed,
			EdgeSlots:   edge.Spec.Slots,
			EdgeCompute: edge.Compute,
			ClientEdge:  edge.ClientEdge,
			EdgeCloud:   edge.EdgeCloud,
			ThetaL:      cfg.ThetaL,
			ThetaU:      cfg.ThetaU,
			OverlapMin:  cfg.OverlapMin,
			Source:      source,
			CC:          edge.CC,
			Mgr:         edge.Mgr,
			Validator: &EdgeUplink{
				Uplink: core.Uplink{
					Clock:     cfg.Clock,
					Link:      edge.EdgeCloud,
					EdgeSpeed: edge.Spec.Speed,
				},
				Batcher: c.batcher,
			},
		})
		if err != nil {
			c.closeDurability()
			return nil, fmt.Errorf("cluster: camera %q: %w", cs.ID, err)
		}
		c.cams = append(c.cams, &cameraRuntime{
			spec:   cs,
			edge:   edge,
			pipe:   pipe,
			frames: video.NewGenerator(cs.Profile, cs.Seed).Generate(cs.Frames),
		})
	}
	return c, nil
}

// provisionShards converts the freshly built edges into one sharded
// database: each edge's store and locks become a twopc.Partition, a mesh of
// inter-edge links carries cross-edge lock and commit traffic, one
// fleet-wide txn.Manager (whose backend routes every key to its owning
// shard) spans all edges, and each edge gets a ShardedCC bound to its home
// partition. Under a fault plan every partition additionally gets a
// write-ahead log and the fleet a fault injector, so scripted crashes are
// survivable: committed state recovers from the log, retraction restores
// are journaled, and in-doubt 2PC blocks resolve against coordinator logs.
func (c *Cluster) provisionShards() error {
	n := len(c.edges)
	parts := make([]*twopc.Partition, n)
	for i, e := range c.edges {
		parts[i] = twopc.NewPartitionOver(i, e.Store, e.Locks)
		e.Partition = parts[i]
	}
	c.partitioner = shardPartitioner(n)
	c.dist = &twopc.DistStats{}
	shardedStore := &twopc.ShardedStore{Parts: parts, Partitioner: c.partitioner}
	c.fleetMgr = txn.NewManager(c.cfg.Clock, nil, nil)
	c.fleetMgr.DB = shardedStore
	for i, e := range c.edges {
		e.Peers = make([]*netsim.Link, n)
		for j := range c.edges {
			if j == i {
				continue
			}
			l := netsim.EdgeEdgeLink()
			l.Name = e.Spec.ID + "-" + c.edges[j].Spec.ID
			e.Peers[j] = l
		}
		e.Mgr = c.fleetMgr
		e.CC = &twopc.ShardedCC{
			Clk:         c.cfg.Clock,
			M:           c.fleetMgr,
			Home:        i,
			Parts:       parts,
			Links:       e.Peers,
			Partitioner: c.partitioner,
			Protocol:    c.cfg.Protocol.dist(),
			Stats:       c.dist,
		}
	}
	if c.cfg.Faults == nil {
		return nil
	}

	dir := c.cfg.WALDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "croesus-wal-")
		if err != nil {
			return fmt.Errorf("cluster: wal dir: %w", err)
		}
		dir, c.walTemp = tmp, tmp
	}
	paths := make([]string, n)
	linkRows := make([][]*netsim.Link, n)
	for i, e := range c.edges {
		paths[i] = filepath.Join(dir, fmt.Sprintf("%s.wal", e.Spec.ID))
		// A fresh fleet starts from a fresh log: stale records from an
		// earlier run in the same WALDir would poison recovery.
		os.Remove(paths[i])
		log, err := wal.Open(paths[i])
		if err != nil {
			return fmt.Errorf("cluster: wal for edge %s: %w", e.Spec.ID, err)
		}
		// The log models durability inside one simulated process; skipping
		// fsync keeps big fleets fast without changing any outcome.
		log.NoSync = true
		parts[i].WAL = log
		c.walLogs = append(c.walLogs, log)
		linkRows[i] = e.Peers
	}
	// Retraction cascades re-install before-images through the journaling
	// backend so a recovered partition agrees with the live store.
	c.fleetMgr.RestoreDB = twopc.JournaledShardedStore{ShardedStore: shardedStore}
	inj, err := faults.NewInjector(c.cfg.Clock, *c.cfg.Faults, parts, linkRows, paths)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	c.injector = inj
	for _, e := range c.edges {
		e.CC.(*twopc.ShardedCC).Faults = inj
	}
	return nil
}

// closeDurability closes the partition logs and removes a temp WAL dir.
func (c *Cluster) closeDurability() {
	for _, l := range c.walLogs {
		l.Close()
	}
	c.walLogs = nil
	if c.walTemp != "" {
		os.RemoveAll(c.walTemp)
		c.walTemp = ""
	}
}

// Edges returns the provisioned edge nodes in declaration order.
func (c *Cluster) Edges() []*EdgeNode { return c.edges }

// FleetManager returns the fleet-wide transaction manager of a sharded
// cluster, or nil when each edge has a private one.
func (c *Cluster) FleetManager() *txn.Manager { return c.fleetMgr }

// DistStats returns a snapshot of the sharded fleet's distributed-commit
// counters (zero in unsharded fleets).
func (c *Cluster) DistStats() twopc.DistCounters {
	if c.dist == nil {
		return twopc.DistCounters{}
	}
	return c.dist.Snapshot()
}

// Injector returns the fleet's fault injector, or nil without a fault plan.
func (c *Cluster) Injector() *faults.Injector { return c.injector }

// Close releases the durability resources of a fault-injected fleet (the
// partition logs and any auto-created WAL directory). The one-call Run
// closes automatically; New+Run callers close when done — after any
// post-run log inspection such as Injector().VerifyDurability().
func (c *Cluster) Close() { c.closeDurability() }

// Outcomes returns the per-frame outcomes of one camera after Run, or
// nil if the camera is unknown. Frames are in capture order.
func (c *Cluster) Outcomes(cameraID string) []core.FrameOutcome {
	for _, cam := range c.cams {
		if cam.spec.ID == cameraID {
			return cam.outcomes
		}
	}
	return nil
}

// Batcher returns the shared cloud validator.
func (c *Cluster) Batcher() *Batcher { return c.batcher }

// Run drives every camera's frames at their capture timestamps on the
// shared clock and blocks until the last final commit. The caller must
// be the clock's driver (outside the simulation). Run may be called
// once.
func (c *Cluster) Run() *ClusterReport {
	clk := c.clk
	start := clk.Now()
	// The injector's scheduled events spawn first so the virtual-time
	// tiebreak — and with it the whole faulty run — is reproducible.
	if c.injector != nil {
		c.injector.Start()
	}
	for _, cam := range c.cams {
		cam := cam
		cam.outcomes = make([]core.FrameOutcome, len(cam.frames))
		for i, f := range cam.frames {
			i, f := i, f
			clk.Go(func() {
				clk.Sleep(f.At - clk.Now())
				cam.outcomes[i] = cam.pipe.ProcessFrame(f)
			})
		}
	}
	clk.Wait()
	// End-of-run repair: recover any edge still down and resolve every
	// outstanding in-doubt block, so the report describes a healed fleet.
	if c.injector != nil {
		c.injector.Finish()
	}
	// The makespan ends at the last frame's final commit, not at
	// clk.Now(): stale SLO timers may still run the clock forward after
	// the fleet has drained.
	end := start
	for _, cam := range c.cams {
		for i := range cam.outcomes {
			if t := cam.outcomes[i].CapturedAt + cam.outcomes[i].FinalLatency; t > end {
				end = t
			}
		}
	}
	return c.report(end - start)
}

// Run builds and runs a cluster in one call, releasing any durability
// resources when the run finishes.
func Run(cfg Config) (*ClusterReport, error) {
	c, err := New(cfg)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return c.Run(), nil
}
