// Dynamic fleet operations: the primitives a scenario timeline drives.
// Cameras join, leave, migrate between edges (moving their logical shard
// through the fleet's shard map with a 2PC key handoff), and re-shape
// their workload mid-run; unsharded fleets take data-plane outages (frames
// dropped while an edge is dark) and cloud-uplink partitions; durable
// fleets checkpoint their write-ahead logs. Every operation runs on the
// fleet's virtual clock, so a scenario run is byte-deterministic.
package cluster

import (
	"fmt"
	"sort"
	"time"

	"croesus/internal/obs"
	"croesus/internal/twopc"
)

// migOwnerBase is the id range migrations allocate lock owners and WAL
// transaction ids from — above every real transaction, so wait-die treats a
// migration as the youngest actor and logs cannot collide.
const migOwnerBase = uint64(1) << 62

// DynamicReport tallies the dynamic-fleet activity of one run: membership
// churn, shard migrations, unsharded outages, and the frames they cost.
type DynamicReport struct {
	// Joins and Leaves count cameras that entered or retired mid-run.
	Joins, Leaves int
	// Migrations counts completed camera migrations; MigrationsFailed
	// ones that exhausted their retry budget (the camera stayed put);
	// MigratedKeys the shard keys handed over across all of them.
	Migrations, MigrationsFailed int
	MigratedKeys                 int
	// Retired counts edges gracefully drained out of the fleet
	// (RetireEdge: cameras — and their shards — migrated away, then the
	// edge permanently excluded from placement).
	Retired int
	// WorkloadShifts counts mid-run workload re-shapes (rate, skew, or
	// cross-edge fraction).
	WorkloadShifts int
	// EdgeOutages / OutageRestores count unsharded data-plane outages;
	// FramesDropped the frames lost to them. CloudLinkOutages counts
	// edge→cloud uplink partitions.
	EdgeOutages, OutageRestores int
	CloudLinkOutages            int
	FramesDropped               int
}

func (d DynamicReport) empty() bool { return d == DynamicReport{} }

// phaseMark is one timeline boundary: report slices split on these.
type phaseMark struct {
	at    time.Duration
	label string
}

// PhaseReport is one slice of the run between consecutive timeline events:
// the frames captured in the window and their outcome profile, so a report
// shows how the fleet behaved before, during, and after each event.
type PhaseReport struct {
	// Label names the event that opened this phase ("start" for the
	// implicit first phase); Start and End bound it in virtual time.
	Label      string
	Start, End time.Duration
	// Frames counts frames captured in the window (fleet-wide);
	// Validated and Shed their cloud outcomes.
	Frames    int
	Validated int
	Shed      int
	// FinalP50 and FinalP99 are final-commit latency percentiles over the
	// window's frames.
	FinalP50 time.Duration
	FinalP99 time.Duration
}

// MarkPhase records a timeline boundary at the current virtual time; the
// report slices per-phase metrics on these marks.
func (c *Cluster) MarkPhase(label string) {
	c.mu.Lock()
	c.phases = append(c.phases, phaseMark{at: c.clk.Now(), label: label})
	c.dynActive = true
	c.mu.Unlock()
}

// Schedule runs fn at virtual time at on the fleet's clock, marking a phase
// boundary named label first. Call between Start and StartCameras so the
// spawn order — and with it the whole run — stays deterministic. The
// scenario runtime turns every timeline event into one Schedule call.
func (c *Cluster) Schedule(at time.Duration, label string, fn func()) {
	c.workAdd()
	c.clk.Go(func() {
		defer c.workDone()
		if d := at - c.clk.Now(); d > 0 {
			c.clk.Sleep(d)
		}
		if label != "" {
			c.MarkPhase(label)
		}
		if fn != nil {
			fn()
		}
	})
}

// camByID looks a camera up without locking; callers outside New hold (or
// take) c.mu via findCam because joins append to cams concurrently.
func (c *Cluster) camByID(id string) *cameraRuntime {
	for _, cam := range c.cams {
		if cam.spec.ID == id {
			return cam
		}
	}
	return nil
}

func (c *Cluster) findCam(id string) *cameraRuntime {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.camByID(id)
}

func (c *Cluster) edgeByID(id string) (int, error) {
	for i, e := range c.edges {
		if e.Spec.ID == id {
			return i, nil
		}
	}
	return 0, fmt.Errorf("cluster: unknown edge %q", id)
}

// AddCamera provisions a camera mid-run (a CameraJoin event): the stream is
// placed (honoring its Edge pin), its first frame is captured now, and its
// feeder starts immediately. Before Start it simply extends the fleet.
func (c *Cluster) AddCamera(cs CameraSpec) error {
	c.mu.Lock()
	if cs.ID == "" {
		c.mu.Unlock()
		return fmt.Errorf("cluster: joining camera needs an ID")
	}
	if c.camByID(cs.ID) != nil {
		c.mu.Unlock()
		return fmt.Errorf("cluster: duplicate camera ID %q", cs.ID)
	}
	if cs.Seed == 0 {
		cs.Seed = c.cfg.Seed + int64(len(c.cams))
	}
	if cs.Frames == 0 {
		cs.Frames = 100
	}
	if c.cfg.Shards > 0 && (cs.Shard < 0 || cs.Shard >= c.cfg.Shards) {
		c.mu.Unlock()
		return fmt.Errorf("cluster: camera %q shard %d outside [0, %d)", cs.ID, cs.Shard, c.cfg.Shards)
	}
	idx, err := c.placeCamera(cs)
	if err != nil {
		c.mu.Unlock()
		return err
	}
	cam, err := c.buildCamera(cs, idx, c.clk.Now())
	if err != nil {
		c.mu.Unlock()
		return err
	}
	c.dyn.Joins++
	c.dynActive = true
	started := c.started
	c.mu.Unlock()
	if started {
		c.startFeeder(cam)
	}
	return nil
}

// StopCamera retires a camera (a CameraLeave event): its feeder stops at
// the next frame boundary; frames already in flight finish normally and the
// report covers only what it captured.
func (c *Cluster) StopCamera(id string) error {
	cam := c.findCam(id)
	if cam == nil {
		return fmt.Errorf("cluster: unknown camera %q", id)
	}
	cam.mu.Lock()
	already := cam.left
	cam.left = true
	cam.mu.Unlock()
	if !already {
		c.mu.Lock()
		c.dyn.Leaves++
		c.dynActive = true
		c.mu.Unlock()
	}
	return nil
}

// ShiftWorkload re-shapes a camera's workload mid-run (a WorkloadShift
// event). Nil fields keep their current value: rate scales the capture rate
// (1 = the profile's FPS), crossFrac moves the cross-shard fraction, and
// zipfSkew the key skew (0 back to uniform). An empty camera ID shifts
// every camera. Workload shape applies from the next triggered transaction;
// rate from the next frame.
func (c *Cluster) ShiftWorkload(cameraID string, rate, crossFrac, zipfSkew *float64) error {
	var cams []*cameraRuntime
	if cameraID == "" {
		c.mu.Lock()
		cams = append([]*cameraRuntime{}, c.cams...)
		c.mu.Unlock()
	} else {
		cam := c.findCam(cameraID)
		if cam == nil {
			return fmt.Errorf("cluster: unknown camera %q", cameraID)
		}
		cams = []*cameraRuntime{cam}
	}
	if crossFrac != nil && (*crossFrac < 0 || *crossFrac > 1) {
		return fmt.Errorf("cluster: cross-edge fraction %g outside [0, 1]", *crossFrac)
	}
	if rate != nil && *rate <= 0 {
		return fmt.Errorf("cluster: rate scale must be > 0, got %g", *rate)
	}
	if zipfSkew != nil && *zipfSkew < 0 {
		return fmt.Errorf("cluster: zipf skew must be ≥ 0, got %g", *zipfSkew)
	}
	if (crossFrac != nil || zipfSkew != nil) && !c.cfg.Sharded {
		return fmt.Errorf("cluster: workload shape shifts need a sharded fleet")
	}
	for _, cam := range cams {
		cam.mu.Lock()
		if rate != nil {
			cam.rate = *rate
		}
		if crossFrac != nil {
			cam.crossFrac = *crossFrac
		}
		if zipfSkew != nil {
			cam.zipfSkew = *zipfSkew
		}
		if crossFrac != nil || zipfSkew != nil {
			cam.src.SetKeys(c.chooser(cam.shard, cam.crossFrac, cam.zipfSkew, cam.spec.Seed))
		}
		cam.mu.Unlock()
	}
	c.mu.Lock()
	c.dyn.WorkloadShifts++
	c.dynActive = true
	c.mu.Unlock()
	return nil
}

// MigrateCamera moves a camera to another edge (a MigrateCamera event). On
// a sharded fleet the camera's logical shard moves first — a quiesce-and-
// cutover key handoff committed with 2PC through the shard map
// (twopc.ShardMigration), durable when the fleet is — then the stream
// re-homes: the feeder rebinds the pipeline to the destination edge before
// its next frame. In-flight cross-edge transactions either finish on the
// old epoch (the handoff waits out their shard intents) or wake to a moved
// map and retry on the new routes. On an unsharded fleet only the stream
// moves; each edge keeps its private database.
func (c *Cluster) MigrateCamera(cameraID, toEdge string) error {
	cam := c.findCam(cameraID)
	if cam == nil {
		return fmt.Errorf("cluster: unknown camera %q", cameraID)
	}
	to, err := c.edgeByID(toEdge)
	if err != nil {
		return err
	}
	c.mu.Lock()
	toRetired := c.retired[to]
	c.mu.Unlock()
	if toRetired {
		return fmt.Errorf("cluster: cannot migrate camera %q to retired edge %q", cameraID, toEdge)
	}
	// One handoff at a time: two concurrent migrations would each plan
	// from a stale shard owner (the second could quiesce and copy an
	// already-emptied partition, stranding the keys wherever the first
	// put them).
	c.migMu.Lock()
	defer c.migMu.Unlock()

	if c.shardMap != nil && cam.shard >= 0 {
		from := c.shardMap.Owner(cam.shard)
		if from != to {
			c.mu.Lock()
			c.migSeq++
			owner := migOwnerBase + c.migSeq
			c.mu.Unlock()
			mg := &twopc.ShardMigration{
				Clk:   c.clk,
				Map:   c.shardMap,
				Parts: c.parts(),
				Shard: cam.shard,
				From:  from,
				To:    to,
				Link:  c.edges[from].Peers[to],
				Owner: owner,
			}
			if c.injector != nil {
				mg.Faults = c.injector
			}
			if rev := c.edges[to].Peers; rev != nil {
				mg.Reverse = rev[from]
			}
			if c.cfg.Obs != nil {
				mg.Obs = c.cfg.Obs
				mg.Tags = obs.Tags("camera", cameraID,
					"from", c.edges[from].Spec.ID, "to", c.edges[to].Spec.ID)
			}
			if err := mg.Run(); err != nil {
				c.mu.Lock()
				c.dyn.MigrationsFailed++
				c.dynActive = true
				c.mu.Unlock()
				return err
			}
			c.mu.Lock()
			c.dyn.MigratedKeys += mg.Moved
			c.mu.Unlock()
			if c.cfg.Obs != nil {
				c.cfg.Obs.Counter(obs.MetricMigrations, "").Inc()
			}
		}
	}

	cam.mu.Lock()
	cam.migrateTo = to
	if cam.feedDone || !c.isFeeding(cam) {
		// The feeder already exited (stream finished or camera retired)
		// or never started: nothing will consume the pending rebind, so
		// re-home the bookkeeping now — the report must place the camera
		// on its destination edge.
		c.rebindLocked(cam)
	}
	cam.mu.Unlock()
	c.mu.Lock()
	c.dyn.Migrations++
	c.dynActive = true
	c.mu.Unlock()
	return nil
}

// RetireEdge gracefully drains an edge out of the fleet (an EdgeRetire
// event) — the planned counterpart of a crash. Every camera homed on the
// edge migrates away through the ordinary MigrateCamera path (on a sharded
// fleet that is the full shard-map handoff: quiesce, 2PC key transfer,
// epoch bump), destinations rotating over the remaining live edges in
// index order so the drain is deterministic and balanced. The edge is then
// permanently excluded from placement — no join, policy pick, or later
// migration may target it. A camera whose handoff exhausted its retry
// budget stays put and is counted in MigrationsFailed; the edge still
// retires (the drain is best-effort, like any operator drain against a
// faulty fleet), so the report shows exactly what the retirement achieved.
func (c *Cluster) RetireEdge(edgeID string) error {
	i, err := c.edgeByID(edgeID)
	if err != nil {
		return err
	}
	c.mu.Lock()
	if c.retired[i] {
		c.mu.Unlock()
		return fmt.Errorf("cluster: edge %q is already retired", edgeID)
	}
	var dests []int
	for j := range c.edges {
		if j != i && !c.retired[j] {
			dests = append(dests, j)
		}
	}
	if len(dests) == 0 {
		c.mu.Unlock()
		return fmt.Errorf("cluster: retiring edge %q would leave the fleet empty", edgeID)
	}
	// Retire before draining, in the same critical section as the camera
	// snapshot: the drain's migrations take clock time, and a join or
	// migration landing on the edge mid-drain would be stranded on a
	// "retired" edge forever. Exclusion first makes the invariant hold
	// from this instant.
	cams := append([]string{}, c.edges[i].Cameras...)
	c.retired[i] = true
	c.dyn.Retired++
	c.dynActive = true
	c.mu.Unlock()
	for k, camID := range cams {
		// A failed handoff (edges down past the migration retry budget) is
		// a modeled outcome, already counted; the drain moves on.
		_ = c.MigrateCamera(camID, c.edges[dests[k%len(dests)]].Spec.ID)
	}
	return nil
}

// isFeeding reports whether cam's feeder has been spawned. Callers may
// hold cam.mu (the lock order is cam.mu → c.mu throughout).
func (c *Cluster) isFeeding(cam *cameraRuntime) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cam.feeding
}

func (c *Cluster) parts() []*twopc.Partition {
	out := make([]*twopc.Partition, len(c.edges))
	for i, e := range c.edges {
		out[i] = e.Partition
	}
	return out
}

// rebindLocked re-homes a camera onto its pending destination edge: a fresh
// pipeline bound to that edge's model, compute pool, links, and protocol
// (the workload source — and with it the key stream — carries over).
// Caller holds cam.mu.
func (c *Cluster) rebindLocked(cam *cameraRuntime) {
	to := cam.migrateTo
	cam.migrateTo = -1
	if to == cam.edge.idx {
		return
	}
	dest := c.edges[to]
	pipe, err := c.buildPipe(dest, cam.src, cam.spec.ID)
	if err != nil {
		// The destination edge was validated at migration time; a build
		// failure here is a harness bug, not a modeled fault.
		panic(fmt.Sprintf("cluster: rebinding camera %q: %v", cam.spec.ID, err))
	}
	c.mu.Lock()
	old := cam.edge
	for i, id := range old.Cameras {
		if id == cam.spec.ID {
			old.Cameras = append(old.Cameras[:i], old.Cameras[i+1:]...)
			break
		}
	}
	old.load -= cam.spec.Profile.FPS
	dest.Cameras = append(dest.Cameras, cam.spec.ID)
	dest.load += cam.spec.Profile.FPS
	c.mu.Unlock()
	cam.edge = dest
	cam.pipe = pipe
}

// SetEdgeOutage darkens (or restores) an unsharded edge's data plane: while
// down, frames captured by its cameras are dropped and counted — the
// availability cost of a fail-stop without the durable-partition machinery.
// Sharded fleets crash edges through the fault injector instead, which
// models the transaction-level consequences. Either way the outage mirrors
// to the transport, so a TCP fleet's crash is a real connection teardown.
func (c *Cluster) SetEdgeOutage(edgeID string, down bool) error {
	i, err := c.edgeByID(edgeID)
	if err != nil {
		return err
	}
	c.mu.Lock()
	if c.edgeOut[i] == down {
		c.mu.Unlock()
		return nil
	}
	c.edgeOut[i] = down
	if down {
		c.dyn.EdgeOutages++
	} else {
		c.dyn.OutageRestores++
	}
	c.dynActive = true
	c.mu.Unlock()
	c.transport.SetEdgeDown(i, down)
	return nil
}

func (c *Cluster) edgeOutage(i int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.edgeOut[i]
}

// SetCloudLink partitions (or heals) one edge's cloud uplink: while down,
// its validate-interval frames are lost in transit and finalize locally
// with the edge answer — exactly the paper's timeout path.
func (c *Cluster) SetCloudLink(edgeID string, down bool) error {
	i, err := c.edgeByID(edgeID)
	if err != nil {
		return err
	}
	wasDown := c.edges[i].EdgeCloud.IsDown()
	c.edges[i].EdgeCloud.SetDown(down)
	if down && !wasDown {
		c.mu.Lock()
		c.dyn.CloudLinkOutages++
		c.dynActive = true
		c.mu.Unlock()
	}
	return nil
}

// CheckpointNow checkpoints one edge's write-ahead log (or every edge's,
// with an empty ID) — the Checkpoint timeline event. Requires a durable
// fleet.
func (c *Cluster) CheckpointNow(edgeID string) error {
	if c.injector == nil {
		return fmt.Errorf("cluster: checkpointing needs a durable fleet (Config.Durable or a fault plan)")
	}
	if edgeID == "" {
		for e := range c.edges {
			c.injector.Checkpoint(e)
		}
		return nil
	}
	i, err := c.edgeByID(edgeID)
	if err != nil {
		return err
	}
	c.injector.Checkpoint(i)
	return nil
}

// phaseReports slices the run's outcomes on the recorded phase marks.
func (c *Cluster) phaseReports(end time.Duration) []PhaseReport {
	c.mu.Lock()
	marks := append([]phaseMark{}, c.phases...)
	c.mu.Unlock()
	if len(marks) == 0 {
		return nil
	}
	sort.SliceStable(marks, func(i, j int) bool { return marks[i].at < marks[j].at })
	bounds := []phaseMark{{at: c.startAt, label: "start"}}
	for _, m := range marks {
		if m.at == bounds[len(bounds)-1].at {
			// Coincident events merge into one boundary.
			bounds[len(bounds)-1].label += "+" + m.label
			continue
		}
		bounds = append(bounds, m)
	}
	out := make([]PhaseReport, len(bounds))
	for i, b := range bounds {
		out[i] = PhaseReport{Label: b.label, Start: b.at, End: end}
		if i+1 < len(bounds) {
			out[i].End = bounds[i+1].at
		}
	}
	return out
}
