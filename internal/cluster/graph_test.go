package cluster

import (
	"testing"
	"time"

	"croesus/internal/faults"
	"croesus/internal/node"
	"croesus/internal/twopc"
	"croesus/internal/vclock"
)

// depth3Graph is the linear edge → peer → cloud graph the graph tests
// share: three sections, the middle one hopping the inter-edge mesh.
func depth3Graph() *node.GraphSpec {
	return &node.GraphSpec{Nodes: []node.GraphNodeSpec{
		{Name: "detect", Tier: "edge"},
		{Name: "classify", Tier: "peer"},
		{Name: "verify", Tier: "cloud"},
	}}
}

// TestGraphCanonicalEquivalence is the backward-compatibility proof at the
// fleet level: a config with no graph and one with the explicit canonical
// two-stage graph must produce byte-identical reports — the graph machinery
// routes the canonical shape through the classic executor untouched.
func TestGraphCanonicalEquivalence(t *testing.T) {
	run := func(g *node.GraphSpec) string {
		cfg := shardedConfig(vclock.NewSim(), 0.4, TxnMSIA)
		cfg.Graph = g
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		return c.Run().Format()
	}
	plain := run(nil)
	canonical := run(&node.GraphSpec{Nodes: []node.GraphNodeSpec{
		{Tier: "edge"}, {Tier: "cloud"},
	}})
	if plain != canonical {
		t.Errorf("explicit canonical two-stage graph diverged from no-graph run:\n--- no graph\n%s\n--- canonical graph\n%s", plain, canonical)
	}
}

// TestGraphDepth3EndToEnd runs the three-section graph on a sharded fleet
// under MS-IA: every frame must cross all three boundaries (per-section
// report rows present and ordered), the peer hop must charge real time,
// and the fleet's corrections prove later boundaries rewrote earlier ones.
func TestGraphDepth3EndToEnd(t *testing.T) {
	cfg := shardedConfig(vclock.NewSim(), 0.4, TxnMSIA)
	cfg.Graph = depth3Graph()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep := c.Run()

	if rep.Frames != 160 {
		t.Fatalf("frames = %d, want 160", rep.Frames)
	}
	if len(rep.Sections) != 3 {
		t.Fatalf("section rows = %d, want 3", len(rep.Sections))
	}
	for k, s := range rep.Sections {
		if s.Index != k {
			t.Errorf("section row %d has index %d", k, s.Index)
		}
		if s.LatencyP50 <= 0 {
			t.Errorf("section %d latency p50 = %s, want > 0", k, s.LatencyP50)
		}
		if k > 0 && s.LatencyP50 < rep.Sections[k-1].LatencyP50 {
			t.Errorf("section %d p50 %s below section %d p50 %s — boundaries are ordered in time",
				k, s.LatencyP50, k-1, rep.Sections[k-1].LatencyP50)
		}
	}
	if rep.Sections[1].MeanHop <= 0 {
		t.Error("peer section charged no mesh hop")
	}
	if rep.Sections[2].MeanHop <= 0 {
		t.Error("cloud section charged no uplink hop")
	}
	if rep.TxnsTriggered == 0 || rep.Corrections == 0 {
		t.Errorf("graph run triggered %d txns with %d corrections — later boundaries never rewrote earlier ones",
			rep.TxnsTriggered, rep.Corrections)
	}
	if rep.TwoPC.CrossEdgeCommits == 0 {
		t.Error("cross-edge workload produced no cross-edge commits through the graph")
	}
}

// TestGraphDeterminism: same seed, same graph, byte-identical report —
// the determinism contract extended to the N-section executor.
func TestGraphDeterminism(t *testing.T) {
	run := func() string {
		cfg := shardedConfig(vclock.NewSim(), 0.4, TxnMSIA)
		cfg.Graph = depth3Graph()
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		return c.Run().Format()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("graph fleet not deterministic:\n%s\nvs\n%s", a, b)
	}
}

// TestGraphCrossEdgeRetractionWithCrash is the satellite acceptance run:
// a three-section graph on a sharded fleet where cross-edge sections
// retract through twopc partitions, with a participant crash at the
// MIDDLE boundary's 2PC round and an edge crash between boundaries. The
// WAL must replay every (txn, round) record to a clean resolution:
// retractions recorded, no in-doubt leftovers, VerifyDurability clean, no
// leaked locks.
func TestGraphCrossEdgeRetractionWithCrash(t *testing.T) {
	cfg := shardedConfig(vclock.NewSim(), 0.4, TxnMSIA)
	cfg.Graph = depth3Graph()
	cfg.Faults = &faults.Plan{
		TwoPC: []faults.TwoPCCrash{
			// Round 1 is the middle section's boundary commit: the
			// participant dies after voting yes, between boundaries.
			{Edge: 2, Point: twopc.PointParticipantPrepared, Round: 1, RestartAfter: 600 * time.Millisecond},
		},
		Crashes: []faults.EdgeCrash{
			{Edge: 1, At: 4 * time.Second, RestartAfter: 1500 * time.Millisecond},
		},
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep := c.Run()

	if rep.Frames != 160 {
		t.Fatalf("frames = %d, want 160 (the fleet must finish through the faults)", rep.Frames)
	}
	st := c.FleetManager().Stats()
	if st.Retractions == 0 {
		t.Error("no retractions — the erroneous-label cascade never fired across the graph")
	}
	if st.SectionCommits == 0 {
		t.Error("no middle-boundary commits recorded")
	}
	f := rep.Faults
	if f == nil || f.Crashes < 2 || f.Restarts != f.Crashes {
		t.Fatalf("fault schedule did not run to a healed fleet: %+v", f)
	}
	if f.InDoubt != f.InDoubtCommitted+f.InDoubtAborted {
		t.Errorf("in-doubt accounting inconsistent: %+v", f)
	}
	if f.ReplayedRecords == 0 {
		t.Error("recovery replayed no WAL records")
	}
	if err := c.Injector().VerifyDurability(); err != nil {
		t.Errorf("durability violated: %v", err)
	}
	for _, e := range c.Edges() {
		if n := e.Locks.Outstanding(); n != 0 {
			t.Errorf("edge %s leaked %d locks", e.Spec.ID, n)
		}
	}
}

// TestGraphMSSRDepth3NoLeaks: MS-SR holds the union of every section's
// locks across the whole graph; the run must still end with zero
// outstanding locks and a deterministic report.
func TestGraphMSSRDepth3NoLeaks(t *testing.T) {
	cfg := shardedConfig(vclock.NewSim(), 0.4, TxnMSSR)
	cfg.Graph = depth3Graph()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep := c.Run()
	if rep.Frames != 160 {
		t.Fatalf("frames = %d, want 160", rep.Frames)
	}
	if len(rep.Sections) != 3 {
		t.Fatalf("section rows = %d, want 3", len(rep.Sections))
	}
	for _, e := range c.Edges() {
		if n := e.Locks.Outstanding(); n != 0 {
			t.Errorf("edge %s leaked %d locks", e.Spec.ID, n)
		}
	}
}
