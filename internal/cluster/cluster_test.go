package cluster

import (
	"math"
	"reflect"
	"testing"
	"time"

	"croesus/internal/core"
	"croesus/internal/detect"
	"croesus/internal/lock"
	"croesus/internal/store"
	"croesus/internal/txn"
	"croesus/internal/vclock"
	"croesus/internal/video"
)

// newTestManager builds a standalone storage stack, as NewSystem does in
// the public API.
func newTestManager(clk vclock.Clock) *txn.Manager {
	st := store.New()
	return txn.NewManager(clk, st, lock.NewManager(clk))
}

// fourCamTwoEdge is the canonical test fleet: four cameras with distinct
// profiles and seeds over two edges.
func fourCamTwoEdge(clk vclock.Clock, bcfg BatcherConfig) Config {
	return Config{
		Clock: clk,
		Cameras: []CameraSpec{
			{ID: "park", Profile: video.ParkDog(), Seed: 11, Frames: 60},
			{ID: "street", Profile: video.StreetVehicles(), Seed: 12, Frames: 60},
			{ID: "mall", Profile: video.MallSurveillance(), Seed: 13, Frames: 60},
			{ID: "airport", Profile: video.AirportRunway(), Seed: 14, Frames: 60},
		},
		Edges:   []EdgeSpec{{ID: "west"}, {ID: "east"}},
		Batcher: bcfg,
	}
}

// TestEndToEnd drives four cameras over two edges through one batched
// cloud validator and checks the report's structural invariants.
func TestEndToEnd(t *testing.T) {
	clk := vclock.NewSim()
	cfg := fourCamTwoEdge(clk, BatcherConfig{MaxBatch: 4, SLO: 80 * time.Millisecond})
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Run()

	if len(rep.Cameras) != 4 {
		t.Fatalf("got %d camera reports, want 4", len(rep.Cameras))
	}
	if rep.Frames != 240 {
		t.Fatalf("fleet frames = %d, want 240", rep.Frames)
	}
	// Round-robin over two edges: two cameras per edge.
	for _, e := range c.Edges() {
		if len(e.Cameras) != 2 {
			t.Fatalf("edge %s has %d cameras, want 2", e.Spec.ID, len(e.Cameras))
		}
	}

	// Per-camera metrics must sum to fleet totals.
	var frames, validated, shed, lost, txns, corrections, apologies int
	for _, cr := range rep.Cameras {
		s := cr.Summary
		frames += s.Frames
		validated += s.Validated
		shed += s.Shed
		lost += s.CloudLost
		txns += s.TxnsTriggered
		corrections += s.Corrections
		apologies += s.Apologies
	}
	if frames != rep.Frames || validated != rep.Validated || shed != rep.Shed || lost != rep.Lost {
		t.Errorf("per-camera sums (frames=%d validated=%d shed=%d lost=%d) != fleet totals (%d, %d, %d, %d)",
			frames, validated, shed, lost, rep.Frames, rep.Validated, rep.Shed, rep.Lost)
	}
	if txns != rep.TxnsTriggered || corrections != rep.Corrections || apologies != rep.Apologies {
		t.Errorf("per-camera txn sums (%d, %d, %d) != fleet totals (%d, %d, %d)",
			txns, corrections, apologies, rep.TxnsTriggered, rep.Corrections, rep.Apologies)
	}

	// Every validated frame went through the batcher, exactly once.
	if rep.Batcher.Frames != rep.Validated {
		t.Errorf("batcher carried %d frames, fleet validated %d", rep.Batcher.Frames, rep.Validated)
	}
	if rep.Validated == 0 {
		t.Error("no frames were validated; thresholds or profiles are degenerate")
	}

	// Batching must respect both caps.
	if rep.Batcher.MaxBatch > 4 {
		t.Errorf("batch of %d exceeds size cap 4", rep.Batcher.MaxBatch)
	}
	if rep.Batcher.SLOViolations != 0 {
		t.Errorf("%d SLO violations; max flush wait %v", rep.Batcher.SLOViolations, rep.Batcher.MaxFlushWait)
	}
	if rep.Batcher.MaxFlushWait > 80*time.Millisecond {
		t.Errorf("max flush wait %v exceeds SLO 80ms", rep.Batcher.MaxFlushWait)
	}
	if rep.Batcher.Batches > 1 && rep.Batcher.MeanBatch <= 1.0 {
		t.Errorf("mean batch size %.2f — the batcher never coalesced", rep.Batcher.MeanBatch)
	}
	if rep.ThroughputFPS <= 0 || rep.Elapsed <= 0 {
		t.Errorf("degenerate throughput %f over %v", rep.ThroughputFPS, rep.Elapsed)
	}
}

// TestDeterminism runs the same fleet twice and demands identical
// reports — the whole point of the virtual clock.
func TestDeterminism(t *testing.T) {
	run := func() *ClusterReport {
		rep, err := Run(fourCamTwoEdge(vclock.NewSim(), BatcherConfig{MaxBatch: 4, SLO: 80 * time.Millisecond}))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical runs diverged:\n%s\nvs\n%s", a.Format(), b.Format())
	}
}

// TestAccuracyMatchesSinglePipeline checks the acceptance criterion:
// with an uncontended batcher, each camera's accuracy equals the
// single-pipeline ModeCroesus result for the same profile and seed —
// batching changes latency, never labels.
func TestAccuracyMatchesSinglePipeline(t *testing.T) {
	specs := []CameraSpec{
		{ID: "park", Profile: video.ParkDog(), Seed: 11, Frames: 80},
		{ID: "street", Profile: video.StreetVehicles(), Seed: 12, Frames: 80},
		{ID: "mall", Profile: video.MallSurveillance(), Seed: 13, Frames: 80},
		{ID: "airport", Profile: video.AirportRunway(), Seed: 14, Frames: 80},
	}
	clk := vclock.NewSim()
	c, err := New(Config{
		Clock:   clk,
		Cameras: specs,
		Edges:   []EdgeSpec{{ID: "west"}, {ID: "east"}},
		// Generous pending cap: nothing is shed, so labels must match
		// the unbatched pipeline exactly.
		Batcher: BatcherConfig{MaxBatch: 8, SLO: 100 * time.Millisecond, MaxPending: 1024},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Run()
	if rep.Shed != 0 || rep.Lost != 0 {
		t.Fatalf("expected no degradation in the uncontended fleet, got shed=%d lost=%d", rep.Shed, rep.Lost)
	}

	for i, cr := range rep.Cameras {
		single := singlePipelineF1(t, specs[i])
		if math.Abs(cr.Summary.F1Final-single) > 1e-9 {
			t.Errorf("camera %s: cluster F1Final=%.6f, single-pipeline=%.6f", cr.Camera, cr.Summary.F1Final, single)
		}
		if cr.Summary.BU == 0 {
			t.Errorf("camera %s validated nothing; the comparison is vacuous", cr.Camera)
		}
	}
}

// singlePipelineF1 runs one camera through the classic single-edge
// ModeCroesus pipeline with the same models, seeds, and thresholds.
func singlePipelineF1(t *testing.T, cs CameraSpec) float64 {
	t.Helper()
	clk := vclock.NewSim()
	frames := video.NewGenerator(cs.Profile, cs.Seed).Generate(cs.Frames)
	cloud := detect.YOLOv3Sim(detect.YOLO416, 42)
	mgr := newTestManager(clk)
	p, err := core.New(core.Config{
		Clock:      clk,
		Mode:       core.ModeCroesus,
		EdgeModel:  detect.TinyYOLOSim(42),
		CloudModel: cloud,
		ThetaL:     0.40,
		ThetaU:     0.62,
		Source:     core.NewWorkloadSource(1000, cs.Seed),
		CC:         &txn.MSIA{M: mgr},
		Mgr:        mgr,
	})
	if err != nil {
		t.Fatal(err)
	}
	outs := p.ProcessVideo(frames)
	truth := core.TruthFromModel(cloud, frames)
	return core.Summarize(cs.Profile.Name, core.ModeCroesus, cs.Profile.QueryClass, outs, truth, 0.10).F1Final
}

// TestOverloadSheds pushes a six-camera fleet through a deliberately
// starved batcher and checks Croesus' degradation mode: frames are shed
// rather than the SLO violated, and every shed frame keeps its edge
// answer.
func TestOverloadSheds(t *testing.T) {
	clk := vclock.NewSim()
	cams := []CameraSpec{
		{ID: "c0", Profile: video.MallSurveillance(), Seed: 21, Frames: 50},
		{ID: "c1", Profile: video.MallSurveillance(), Seed: 22, Frames: 50},
		{ID: "c2", Profile: video.StreetPedestrians(), Seed: 23, Frames: 50},
		{ID: "c3", Profile: video.StreetPedestrians(), Seed: 24, Frames: 50},
		{ID: "c4", Profile: video.ParkDog(), Seed: 25, Frames: 50},
		{ID: "c5", Profile: video.ParkDog(), Seed: 26, Frames: 50},
	}
	c, err := New(Config{
		Clock:   clk,
		Cameras: cams,
		Edges:   []EdgeSpec{{ID: "west"}, {ID: "east"}},
		// A starved cloud: one slow slot, tiny queue. The fleet's
		// validate traffic cannot all fit.
		Batcher: BatcherConfig{MaxBatch: 2, SLO: 40 * time.Millisecond, MaxPending: 2, CloudSpeed: 0.10},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Run()

	if rep.Shed == 0 {
		t.Fatal("starved batcher shed nothing; overload path never exercised")
	}
	if rep.Batcher.SLOViolations != 0 {
		t.Errorf("overload caused %d SLO violations (max flush wait %v); shedding should have prevented them",
			rep.Batcher.SLOViolations, rep.Batcher.MaxFlushWait)
	}
	if rep.Batcher.Shed != rep.Shed {
		t.Errorf("batcher counted %d shed, fleet summaries %d", rep.Batcher.Shed, rep.Shed)
	}

	// Shed frames degrade to the edge answer: the final render is the
	// initial render, and the client still got both commits.
	sawShed := false
	for _, cs := range cams {
		for _, o := range c.Outcomes(cs.ID) {
			if !o.Shed {
				continue
			}
			sawShed = true
			if !reflect.DeepEqual(o.FinalVisible, o.InitialVisible) {
				t.Fatalf("shed frame %d of %s changed its labels", o.FrameIndex, cs.ID)
			}
			if o.FinalLatency < o.InitialLatency {
				t.Fatalf("shed frame %d of %s has final latency %v < initial %v", o.FrameIndex, cs.ID, o.FinalLatency, o.InitialLatency)
			}
		}
	}
	if !sawShed {
		t.Fatal("report counted shed frames but no outcome carries Shed")
	}
}

// TestLeastLoadedBalances checks that least-loaded placement spreads a
// lopsided camera set better than declaration order would.
func TestLeastLoadedBalances(t *testing.T) {
	clk := vclock.NewSim()
	// Six cameras, all the same rate, three times as many as edges.
	var cams []CameraSpec
	for i := 0; i < 6; i++ {
		cams = append(cams, CameraSpec{Profile: video.ParkDog(), Seed: int64(31 + i), Frames: 10})
	}
	c, err := New(Config{
		Clock:     clk,
		Cameras:   cams,
		Edges:     []EdgeSpec{{ID: "fast", Speed: 1.0}, {ID: "slow", Speed: 0.5}},
		Placement: LeastLoaded{},
	})
	if err != nil {
		t.Fatal(err)
	}
	fast, slow := c.Edges()[0], c.Edges()[1]
	// The speed-normalized load of the fast edge can absorb twice the
	// cameras of the slow one: 4 vs 2.
	if len(fast.Cameras) != 4 || len(slow.Cameras) != 2 {
		t.Fatalf("least-loaded placed %d/%d cameras on fast/slow, want 4/2", len(fast.Cameras), len(slow.Cameras))
	}
}

// TestConfigValidation exercises New's error paths.
func TestConfigValidation(t *testing.T) {
	clk := vclock.NewSim()
	cam := CameraSpec{Profile: video.ParkDog(), Frames: 1}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no clock", Config{Cameras: []CameraSpec{cam}, Edges: []EdgeSpec{{}}}},
		{"no cameras", Config{Clock: clk, Edges: []EdgeSpec{{}}}},
		{"no edges", Config{Clock: clk, Cameras: []CameraSpec{cam}}},
		{"bad thetas", Config{Clock: clk, Cameras: []CameraSpec{cam}, Edges: []EdgeSpec{{}}, ThetaL: 0.9, ThetaU: 0.2}},
		// Duplicate or path-unsafe edge IDs would alias or escape the
		// per-partition WAL files under a fault plan.
		{"duplicate edge IDs", Config{Clock: clk, Cameras: []CameraSpec{cam}, Edges: []EdgeSpec{{ID: "west"}, {ID: "west"}}}},
		{"edge ID with path separator", Config{Clock: clk, Cameras: []CameraSpec{cam}, Edges: []EdgeSpec{{ID: "../escape"}}}},
		// Negative knobs were silently ignored before; now they're errors.
		{"negative OpCost", Config{Clock: clk, Cameras: []CameraSpec{cam}, Edges: []EdgeSpec{{}}, OpCost: -time.Millisecond}},
		{"negative WorkloadKeys", Config{Clock: clk, Cameras: []CameraSpec{cam}, Edges: []EdgeSpec{{}}, WorkloadKeys: -1}},
		{"negative CheckpointEvery", Config{Clock: clk, Cameras: []CameraSpec{cam}, Edges: []EdgeSpec{{}}, CheckpointEvery: -time.Second}},
		// Duplicate camera IDs would alias report rows (edge IDs were
		// already checked; camera IDs were not).
		{"duplicate camera IDs", Config{Clock: clk, Cameras: []CameraSpec{{ID: "cam", Profile: video.ParkDog(), Frames: 1}, {ID: "cam", Profile: video.ParkDog(), Frames: 1}}, Edges: []EdgeSpec{{}}}},
		{"camera pinned to unknown edge", Config{Clock: clk, Cameras: []CameraSpec{{ID: "cam", Profile: video.ParkDog(), Frames: 1, Edge: "nowhere"}}, Edges: []EdgeSpec{{ID: "west"}}}},
		{"shard owners without shards", Config{Clock: clk, Cameras: []CameraSpec{cam}, Edges: []EdgeSpec{{}}, ShardOwners: []int{0}}},
		{"camera shard out of range", Config{Clock: clk, Cameras: []CameraSpec{{ID: "cam", Profile: video.ParkDog(), Frames: 1, Shard: 9}}, Edges: []EdgeSpec{{}}, Shards: 2}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: New accepted an invalid config", tc.name)
		}
	}
}
