//go:build !race

package cluster

// raceEnabled reports whether the race detector built this test binary.
// The byte-determinism assertions only run without it: vclock pins the
// order of all timer-driven events, but goroutines woken within a single
// virtual instant still interleave in real time, and the detector's
// instrumentation perturbs exactly those interleavings (e.g. wait-die
// outcomes between a lock releaser and the waiter it just woke).
const raceEnabled = false
