package cluster

import (
	"fmt"
	"strings"
	"time"

	"croesus/internal/core"
	"croesus/internal/faults"
	"croesus/internal/metrics"
	"croesus/internal/twopc"
	"croesus/internal/video"
)

// CameraReport summarizes one camera's run: the standard single-pipeline
// Summary plus latency percentiles.
type CameraReport struct {
	Camera string
	// Edge is the camera's edge at the end of the run (its destination,
	// if it migrated).
	Edge string

	Summary core.Summary

	// Dropped counts frames lost to an edge outage; Left reports a
	// camera that retired before its stream ended.
	Dropped int
	Left    bool

	InitialP50 time.Duration
	InitialP95 time.Duration
	InitialP99 time.Duration
	FinalP50   time.Duration
	FinalP95   time.Duration
	FinalP99   time.Duration
}

// ClusterReport aggregates a whole fleet run: per-camera reports plus
// fleet-wide throughput, latency percentiles, accuracy, and shedding.
type ClusterReport struct {
	Policy  string
	Cameras []CameraReport

	// Frames is the fleet total; Elapsed the virtual makespan; and
	// ThroughputFPS Frames/Elapsed.
	Frames        int
	Elapsed       time.Duration
	ThroughputFPS float64

	// Fleet latency percentiles over every frame of every camera.
	InitialP50 time.Duration
	InitialP95 time.Duration
	InitialP99 time.Duration
	FinalP50   time.Duration
	FinalP95   time.Duration
	FinalP99   time.Duration

	// CriticalPath decomposes the fleet's final latency into its
	// critical-path components, per core.Breakdown.CriticalPath — where
	// the time went, not just how much there was. The components are
	// per-frame sums over possibly-overlapping stages, so a component
	// percentile can exceed the corresponding final-latency percentile's
	// share; compare components against each other, not against FinalP99.
	CriticalPath CriticalPath

	// Sections is the per-section critical-path decomposition of a graph
	// fleet: one row per graph section, attributing each boundary's
	// latency to its hop, model, and transaction (lock wait vs commit)
	// shares. Nil for two-stage runs.
	Sections []SectionReport

	// MeanF1Final is the unweighted mean of per-camera final accuracy.
	MeanF1Final float64

	// Cloud traffic outcome counts, summed over cameras.
	Validated int
	Shed      int
	Lost      int

	// Transaction totals, summed over cameras.
	TxnsTriggered int
	Corrections   int
	Apologies     int

	Batcher BatcherStats

	// Sharded-keyspace counters: Sharded records whether the fleet ran as
	// one database sharded across edges, Protocol which multi-stage
	// protocol governed it, CrossEdgeFraction the workload's
	// multi-partition rate, and TwoPC the fleet-wide distributed-commit
	// activity (all zero in unsharded fleets).
	Sharded           bool
	Protocol          string
	CrossEdgeFraction float64
	TwoPC             twopc.DistCounters

	// Faults summarizes the injected failure schedule and its recovery
	// work — crashes, restarts, transactions failed by faults, in-doubt
	// resolutions, recovery-time percentiles. Nil without a fault plan.
	Faults *faults.Report

	// Dynamic tallies scenario-driven fleet churn — joins, leaves,
	// migrations, outages, dropped frames. Nil for a static run.
	Dynamic *DynamicReport
	// Phases slices the run on the timeline's event boundaries. Nil when
	// no phase was marked.
	Phases []PhaseReport

	// Transport describes the deployment transport when the fleet ran on
	// an injected non-simulated one (the loopback/real TCP fleet): traffic
	// actually carried over sockets, messages blackholed while a path was
	// severed, and connection teardowns. Nil on the default simulated
	// transport, whose traffic lives on the netsim links.
	Transport *TransportReport
}

// CriticalPath is the per-component decomposition of final latency at two
// percentiles: model compute (edge + cloud inference), queueing (inference
// pools, batcher), lock waits, 2PC rounds, and network transfer.
type CriticalPath struct {
	ComputeP50, ComputeP99 time.Duration
	QueueP50, QueueP99     time.Duration
	LockP50, LockP99       time.Duration
	TwoPCP50, TwoPCP99     time.Duration
	NetworkP50, NetworkP99 time.Duration
}

// SectionReport aggregates one graph section across the fleet: boundary
// latency percentiles plus the mean decomposition into network hop, model
// inference, and transaction time (with its lock-wait and 2PC shares).
type SectionReport struct {
	Index int
	Name  string
	Tier  string

	LatencyP50 time.Duration
	LatencyP99 time.Duration

	MeanHop      time.Duration
	MeanDetect   time.Duration
	MeanTxn      time.Duration
	MeanLockWait time.Duration
	MeanTwoPC    time.Duration
}

// TransportReport is the non-simulated transport's contribution to a fleet
// report.
type TransportReport struct {
	Name            string
	Bytes, Messages int64
	Drops           int64
	Severs          int64
}

// report scores every camera and aggregates the fleet. elapsed is the
// run's makespan; endAt the absolute virtual time it ended (phase windows
// are absolute).
func (c *Cluster) report(elapsed, endAt time.Duration) *ClusterReport {
	r := &ClusterReport{Policy: c.cfg.Placement.Name(), Elapsed: elapsed}
	phases := c.phaseReports(endAt)
	var fleetInit, fleetFinal metrics.LatencyStats
	// Component stats index: compute, queue, lock, 2PC, network — the
	// order CriticalPath() returns them in.
	var comp [5]metrics.LatencyStats
	var secLat []metrics.LatencyStats
	var secSum []core.SectionOutcome
	secFrames := 0
	phaseFinal := make([]metrics.LatencyStats, len(phases))
	for _, cam := range c.cams {
		// A camera that left mid-run (or lost frames to an outage) is
		// scored on the frames it actually captured.
		cam.mu.Lock()
		outs := make([]core.FrameOutcome, 0, cam.fed)
		frames := make([]*video.Frame, 0, cam.fed)
		for i := 0; i < cam.fed; i++ {
			if !cam.done[i] {
				continue
			}
			outs = append(outs, cam.outcomes[i])
			frames = append(frames, cam.frames[i])
		}
		dropped, left, edge := cam.dropped, cam.left && cam.fed < len(cam.frames), cam.edge
		cam.mu.Unlock()
		truth := core.TruthFromModel(c.cloudModel, frames)
		sum := core.Summarize(cam.spec.ID, core.ModeCroesus, cam.spec.Profile.QueryClass, outs, truth, c.cfg.OverlapMin)

		var init, final metrics.LatencyStats
		for i := range outs {
			init.Add(outs[i].InitialLatency)
			final.Add(outs[i].FinalLatency)
			fleetInit.Add(outs[i].InitialLatency)
			fleetFinal.Add(outs[i].FinalLatency)
			cc, cq, cl, ct, cn := outs[i].Breakdown.CriticalPath()
			comp[0].Add(cc)
			comp[1].Add(cq)
			comp[2].Add(cl)
			comp[3].Add(ct)
			comp[4].Add(cn)
			if secs := outs[i].Sections; len(secs) > 0 {
				// Every frame of a graph fleet runs the one fleet-wide
				// graph, so the section count is uniform.
				if len(secLat) == 0 {
					secLat = make([]metrics.LatencyStats, len(secs))
					secSum = make([]core.SectionOutcome, len(secs))
					for k := range secs {
						secSum[k] = core.SectionOutcome{Name: secs[k].Name, Tier: secs[k].Tier}
					}
				}
				secFrames++
				for k := range secs {
					if k >= len(secLat) {
						break
					}
					secLat[k].Add(secs[k].Latency)
					secSum[k].Hop += secs[k].Hop
					secSum[k].Detect += secs[k].Detect
					secSum[k].Txn += secs[k].Txn
					secSum[k].LockWait += secs[k].LockWait
					secSum[k].TwoPC += secs[k].TwoPC
				}
			}
			for pi := range phases {
				if outs[i].CapturedAt >= phases[pi].Start && (pi == len(phases)-1 || outs[i].CapturedAt < phases[pi].End) {
					phases[pi].Frames++
					if outs[i].SentToCloud {
						if outs[i].Shed {
							phases[pi].Shed++
						} else if !outs[i].CloudLost {
							phases[pi].Validated++
						}
					}
					phaseFinal[pi].Add(outs[i].FinalLatency)
				}
			}
		}
		r.Cameras = append(r.Cameras, CameraReport{
			Camera:     cam.spec.ID,
			Edge:       edge.Spec.ID,
			Summary:    sum,
			Dropped:    dropped,
			Left:       left,
			InitialP50: init.Percentile(50),
			InitialP95: init.Percentile(95),
			InitialP99: init.Percentile(99),
			FinalP50:   final.Percentile(50),
			FinalP95:   final.Percentile(95),
			FinalP99:   final.Percentile(99),
		})
		r.Frames += sum.Frames
		r.Validated += sum.Validated
		r.Shed += sum.Shed
		r.Lost += sum.CloudLost
		r.TxnsTriggered += sum.TxnsTriggered
		r.Corrections += sum.Corrections
		r.Apologies += sum.Apologies
		r.MeanF1Final += sum.F1Final
	}
	for pi := range phases {
		phases[pi].FinalP50 = phaseFinal[pi].Percentile(50)
		phases[pi].FinalP99 = phaseFinal[pi].Percentile(99)
	}
	if n := len(r.Cameras); n > 0 {
		r.MeanF1Final /= float64(n)
	}
	if elapsed > 0 {
		r.ThroughputFPS = float64(r.Frames) / elapsed.Seconds()
	}
	r.InitialP50 = fleetInit.Percentile(50)
	r.InitialP95 = fleetInit.Percentile(95)
	r.InitialP99 = fleetInit.Percentile(99)
	r.FinalP50 = fleetFinal.Percentile(50)
	r.FinalP95 = fleetFinal.Percentile(95)
	r.FinalP99 = fleetFinal.Percentile(99)
	r.CriticalPath = CriticalPath{
		ComputeP50: comp[0].Percentile(50), ComputeP99: comp[0].Percentile(99),
		QueueP50: comp[1].Percentile(50), QueueP99: comp[1].Percentile(99),
		LockP50: comp[2].Percentile(50), LockP99: comp[2].Percentile(99),
		TwoPCP50: comp[3].Percentile(50), TwoPCP99: comp[3].Percentile(99),
		NetworkP50: comp[4].Percentile(50), NetworkP99: comp[4].Percentile(99),
	}
	for k := range secLat {
		sr := SectionReport{
			Index:      k,
			Name:       secSum[k].Name,
			Tier:       secSum[k].Tier,
			LatencyP50: secLat[k].Percentile(50),
			LatencyP99: secLat[k].Percentile(99),
		}
		if secFrames > 0 {
			n := time.Duration(secFrames)
			sr.MeanHop = secSum[k].Hop / n
			sr.MeanDetect = secSum[k].Detect / n
			sr.MeanTxn = secSum[k].Txn / n
			sr.MeanLockWait = secSum[k].LockWait / n
			sr.MeanTwoPC = secSum[k].TwoPC / n
		}
		r.Sections = append(r.Sections, sr)
	}
	r.Batcher = c.batcher.Stats()
	r.Sharded = c.cfg.Sharded
	r.Protocol = c.cfg.Protocol.String()
	r.CrossEdgeFraction = c.cfg.CrossEdgeFraction
	r.TwoPC = c.DistStats()
	if c.injector != nil {
		r.Faults = c.injector.Report()
	}
	c.mu.Lock()
	if c.dynActive || !c.dyn.empty() {
		dyn := c.dyn
		r.Dynamic = &dyn
	}
	c.mu.Unlock()
	r.Phases = phases
	if c.transport != nil && c.transport.Name() != "sim" {
		st := c.transport.Stats()
		r.Transport = &TransportReport{
			Name:     c.transport.Name(),
			Bytes:    st.Bytes,
			Messages: st.Messages,
			Drops:    st.Drops,
			Severs:   st.Severs,
		}
	}
	return r
}

// Format renders the report as aligned text for terminals.
func (r *ClusterReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: %d cameras, placement=%s\n", len(r.Cameras), r.Policy)
	fmt.Fprintf(&b, "%-8s %-7s %7s %8s %9s %9s %9s %6s %5s %5s\n",
		"camera", "edge", "frames", "F1final", "BU", "init p50", "final p99", "valid", "shed", "lost")
	for _, cr := range r.Cameras {
		s := cr.Summary
		fmt.Fprintf(&b, "%-8s %-7s %7d %8.3f %8.1f%% %9s %9s %6d %5d %5d\n",
			cr.Camera, cr.Edge, s.Frames, s.F1Final, s.BU*100,
			cr.InitialP50.Round(time.Millisecond), cr.FinalP99.Round(time.Millisecond),
			s.Validated, s.Shed, s.CloudLost)
	}
	fmt.Fprintf(&b, "fleet: %d frames in %s (%.1f frames/s), F1=%.3f\n",
		r.Frames, r.Elapsed.Round(time.Millisecond), r.ThroughputFPS, r.MeanF1Final)
	fmt.Fprintf(&b, "fleet latency: initial p50/p95/p99 %s/%s/%s, final p50/p95/p99 %s/%s/%s\n",
		r.InitialP50.Round(time.Millisecond), r.InitialP95.Round(time.Millisecond), r.InitialP99.Round(time.Millisecond),
		r.FinalP50.Round(time.Millisecond), r.FinalP95.Round(time.Millisecond), r.FinalP99.Round(time.Millisecond))
	cp := r.CriticalPath
	fmt.Fprintf(&b, "critical path (p50/p99): compute %s/%s, queue %s/%s, lock %s/%s, 2pc %s/%s, network %s/%s\n",
		cp.ComputeP50.Round(time.Millisecond), cp.ComputeP99.Round(time.Millisecond),
		cp.QueueP50.Round(time.Millisecond), cp.QueueP99.Round(time.Millisecond),
		cp.LockP50.Round(time.Millisecond), cp.LockP99.Round(time.Millisecond),
		cp.TwoPCP50.Round(time.Millisecond), cp.TwoPCP99.Round(time.Millisecond),
		cp.NetworkP50.Round(time.Millisecond), cp.NetworkP99.Round(time.Millisecond))
	for _, sr := range r.Sections {
		fmt.Fprintf(&b, "section %d %-10s tier=%-5s latency p50/p99 %s/%s; mean hop %s, detect %s, txn %s (lock %s, 2pc %s)\n",
			sr.Index, sr.Name, sr.Tier,
			sr.LatencyP50.Round(time.Millisecond), sr.LatencyP99.Round(time.Millisecond),
			sr.MeanHop.Round(time.Millisecond), sr.MeanDetect.Round(time.Millisecond),
			sr.MeanTxn.Round(time.Millisecond),
			sr.MeanLockWait.Round(time.Millisecond), sr.MeanTwoPC.Round(time.Millisecond))
	}
	bs := r.Batcher
	fmt.Fprintf(&b, "cloud batcher: %d batches carrying %d frames (mean %.1f, max %d), shed %d, max flush wait %s, SLO violations %d\n",
		bs.Batches, bs.Frames, bs.MeanBatch, bs.MaxBatch, bs.Shed,
		bs.MaxFlushWait.Round(time.Millisecond), bs.SLOViolations)
	if r.Sharded {
		tp := r.TwoPC
		fmt.Fprintf(&b, "sharded keyspace (%s, cross-edge %.0f%%): %d cross-edge 2PC commits, %d remote, %d local; %d prepare / %d commit / %d lock RPCs, %d aborts\n",
			r.Protocol, r.CrossEdgeFraction*100,
			tp.CrossEdgeCommits, tp.RemoteCommits, tp.LocalCommits,
			tp.PrepareRPCs, tp.CommitRPCs, tp.LockRPCs, tp.Aborts)
	}
	if f := r.Faults; f != nil {
		fmt.Fprintf(&b, "faults: %d crashes / %d restarts, %d link outages; %d txns failed by faults; in-doubt %d (%d committed, %d presumed abort); %d WAL records replayed; %d checkpoints; recovery p50/p95/p99 %s/%s/%s\n",
			f.Crashes, f.Restarts, f.LinkOutages, f.TxnsFailed,
			f.InDoubt, f.InDoubtCommitted, f.InDoubtAborted, f.ReplayedRecords, f.Checkpoints,
			f.RecoveryP50.Round(time.Millisecond), f.RecoveryP95.Round(time.Millisecond), f.RecoveryP99.Round(time.Millisecond))
	}
	if d := r.Dynamic; d != nil {
		fmt.Fprintf(&b, "dynamic fleet: %d joins / %d leaves; %d migrations (%d failed, %d keys handed over, %d map retries); %d workload shifts; %d edge outages (%d restored, %d frames dropped); %d cloud-link outages\n",
			d.Joins, d.Leaves, d.Migrations, d.MigrationsFailed, d.MigratedKeys, r.TwoPC.MapRetries,
			d.WorkloadShifts, d.EdgeOutages, d.OutageRestores, d.FramesDropped, d.CloudLinkOutages)
		if d.Retired > 0 {
			fmt.Fprintf(&b, "retired edges: %d (gracefully drained: cameras and shards migrated, then excluded from placement)\n", d.Retired)
		}
	}
	if tr := r.Transport; tr != nil {
		fmt.Fprintf(&b, "transport %s: %d messages (%.1f KiB) carried over sockets, %d dropped while severed, %d teardowns\n",
			tr.Name, tr.Messages, float64(tr.Bytes)/1024, tr.Drops, tr.Severs)
	}
	for _, p := range r.Phases {
		fmt.Fprintf(&b, "phase %-28s [%8s → %8s] %5d frames, %4d validated, %3d shed, final p50/p99 %s/%s\n",
			p.Label, p.Start.Round(time.Millisecond), p.End.Round(time.Millisecond),
			p.Frames, p.Validated, p.Shed,
			p.FinalP50.Round(time.Millisecond), p.FinalP99.Round(time.Millisecond))
	}
	return b.String()
}
