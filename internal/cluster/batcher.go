package cluster

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"croesus/internal/core"
	"croesus/internal/detect"
	"croesus/internal/obs"
	"croesus/internal/vclock"
)

// BatcherConfig configures the cloud-side validation batcher.
type BatcherConfig struct {
	Clock vclock.Clock
	// Model is the full cloud model shared by the fleet.
	Model detect.Model
	// CloudSpeed divides inference latency (1.0 = reference machine).
	CloudSpeed float64
	// Slots bounds concurrent batch inferences (parallel workers on the
	// cloud node). The default matches the single-edge pipeline's cloud
	// concurrency, so a fleet's shared validator is provisioned like the
	// paper's cloud machine.
	Slots int
	// MaxBatch flushes a batch as soon as it reaches this many frames.
	MaxBatch int
	// SLO is the flush deadline: a batch is dispatched no later than SLO
	// after its oldest request arrived, however empty it still is.
	SLO time.Duration
	// MaxPending is the admission-control cap on outstanding work:
	// queued requests plus frames in dispatched-but-unfinished batches.
	// When a request arrives at the cap, the lowest-margin queued (or
	// arriving) request is shed: it immediately returns ValidationShed
	// and the edge keeps its own answer — Croesus' degradation mode
	// instead of an unbounded backlog behind the cloud GPU.
	MaxPending int
	// BatchAlpha is the marginal cost of each additional frame in a
	// batch as a fraction of its standalone inference latency; the
	// slowest frame is charged in full. GPU batching amortizes weight
	// loading and kernel launches, which is what makes a shared cloud
	// validator economical at all.
	BatchAlpha float64
	// Obs, when set, receives batch.queue/batch.run/batch.shed spans and
	// live queue-depth / inflight gauges plus a batches counter.
	Obs *obs.Obs
}

func (c BatcherConfig) defaults() BatcherConfig {
	if c.CloudSpeed == 0 {
		c.CloudSpeed = 1
	}
	if c.Slots == 0 {
		c.Slots = 8
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 8
	}
	if c.SLO == 0 {
		c.SLO = 60 * time.Millisecond
	}
	if c.MaxPending == 0 {
		c.MaxPending = 4 * c.MaxBatch
	}
	if c.BatchAlpha == 0 {
		c.BatchAlpha = 0.35
	}
	return c
}

// BatcherStats summarizes a batcher's lifetime activity.
type BatcherStats struct {
	// Batches is the number of batches dispatched; Frames the number of
	// frames they carried.
	Batches int
	Frames  int
	// Shed counts requests dropped by admission control.
	Shed int
	// MaxBatch is the largest batch dispatched; MeanBatch the average.
	MaxBatch  int
	MeanBatch float64
	// MaxFlushWait is the longest any request waited between arriving
	// and its batch being dispatched; the batcher guarantees
	// MaxFlushWait ≤ SLO.
	MaxFlushWait time.Duration
	// SLOViolations counts flush waits beyond the SLO (always 0 unless
	// the implementation regresses; tests assert on it).
	SLOViolations int
}

// Batcher is an SLO-aware cloud validation batcher: it implements
// core.Validator by coalescing validate-interval frames from every edge
// in the fleet into batches, flushing on a size cap or an SLO deadline,
// whichever comes first, and shedding the lowest-confidence-margin
// requests under overload.
//
// Concurrency model: Validate is called on each frame's own clock
// goroutine. A request that fills the batch dispatches it inline; a
// request that starts a fresh queue arms a one-shot SLO timer goroutine
// that dispatches whatever has accumulated when it fires. Timer
// goroutines always terminate, so a simulation drains cleanly.
type Batcher struct {
	cfg   BatcherConfig
	slots *vclock.Semaphore

	// Pre-resolved observability handles (nil no-ops without cfg.Obs).
	gDepth   *obs.Gauge
	gInfl    *obs.Gauge
	mBatches *obs.Counter

	mu       sync.Mutex
	queue    []*pendingReq
	inflight int    // frames in dispatched, not-yet-completed batches
	epoch    uint64 // incremented at every dispatch; stale timers no-op
	stats    BatcherStats
}

type pendingReq struct {
	req  core.ValidationRequest
	at   time.Duration // enqueue time
	gate vclock.Gate
	res  core.ValidationResult
}

// NewBatcher returns a batcher on the given configuration. Clock and
// Model are required; everything else defaults. Negative knobs are
// rejected, as is MaxPending < MaxBatch — such a queue hits admission
// control before a batch can ever fill, so the batcher would only flush on
// the SLO timer and silently shed the rest.
func NewBatcher(cfg BatcherConfig) (*Batcher, error) {
	if cfg.Clock == nil {
		return nil, fmt.Errorf("cluster: BatcherConfig.Clock is required")
	}
	if cfg.Model == nil {
		return nil, fmt.Errorf("cluster: BatcherConfig.Model is required")
	}
	if cfg.SLO < 0 {
		return nil, fmt.Errorf("cluster: BatcherConfig.SLO must be non-negative, got %v", cfg.SLO)
	}
	if cfg.MaxBatch < 0 || cfg.MaxPending < 0 || cfg.Slots < 0 {
		return nil, fmt.Errorf("cluster: BatcherConfig counts must be non-negative, got MaxBatch=%d MaxPending=%d Slots=%d",
			cfg.MaxBatch, cfg.MaxPending, cfg.Slots)
	}
	if cfg.BatchAlpha < 0 {
		return nil, fmt.Errorf("cluster: BatcherConfig.BatchAlpha must be non-negative, got %g", cfg.BatchAlpha)
	}
	if cfg.CloudSpeed < 0 {
		return nil, fmt.Errorf("cluster: BatcherConfig.CloudSpeed must be non-negative, got %g", cfg.CloudSpeed)
	}
	cfg = cfg.defaults()
	if cfg.MaxPending < cfg.MaxBatch {
		return nil, fmt.Errorf("cluster: BatcherConfig.MaxPending (%d) below MaxBatch (%d): a batch could never fill",
			cfg.MaxPending, cfg.MaxBatch)
	}
	return &Batcher{
		cfg:      cfg,
		slots:    vclock.NewSemaphore(cfg.Clock, cfg.Slots),
		gDepth:   cfg.Obs.Gauge(obs.MetricBatcherDepth, ""),
		gInfl:    cfg.Obs.Gauge(obs.MetricBatcherInfl, ""),
		mBatches: cfg.Obs.Counter(obs.MetricBatches, ""),
	}, nil
}

// Config returns the (defaulted) configuration.
func (b *Batcher) Config() BatcherConfig { return b.cfg }

// Stats returns a snapshot of the batcher's counters.
func (b *Batcher) Stats() BatcherStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.stats
	if s.Batches > 0 {
		s.MeanBatch = float64(s.Frames) / float64(s.Batches)
	}
	return s
}

// Validate implements core.Validator. It blocks in clock time until the
// request's batch completes, or returns immediately with ValidationShed
// if admission control drops it.
func (b *Batcher) Validate(req core.ValidationRequest) core.ValidationResult {
	clk := b.cfg.Clock
	pr := &pendingReq{req: req, at: clk.Now(), gate: clk.NewGate()}

	b.mu.Lock()
	// Admission control: over MaxPending outstanding frames, shed the
	// request with the lowest confidence margin — the frame whose edge
	// answer is most trustworthy loses its validation slot. Only queued
	// requests can be victims; frames already dispatched are past saving.
	// The victim's gate is fired under b.mu (Gate.Fire never blocks), so
	// the cap check and the eviction are atomic with the append below.
	if len(b.queue)+b.inflight >= b.cfg.MaxPending {
		victim := pr
		vi := -1
		for i, q := range b.queue {
			if q.req.Margin < victim.req.Margin {
				victim, vi = q, i
			}
		}
		b.stats.Shed++
		if victim == pr {
			b.mu.Unlock()
			b.cfg.Obs.SpanCtx(pr.req.Trace, obs.SpanBatchShed, "", pr.at, pr.at)
			return core.ValidationResult{Status: core.ValidationShed}
		}
		b.queue = append(b.queue[:vi], b.queue[vi+1:]...)
		victim.res = core.ValidationResult{Status: core.ValidationShed}
		b.cfg.Obs.SpanCtx(victim.req.Trace, obs.SpanBatchShed, "", victim.at, pr.at)
		victim.gate.Fire()
	}

	b.queue = append(b.queue, pr)
	b.gDepth.Set(int64(len(b.queue)))
	if len(b.queue) >= b.cfg.MaxBatch {
		batch := b.takeBatchLocked()
		b.mu.Unlock()
		b.runBatch(batch)
	} else {
		if len(b.queue) == 1 {
			// First request of a fresh queue: arm the SLO deadline.
			epoch := b.epoch
			b.mu.Unlock()
			clk.Go(func() {
				clk.Sleep(b.cfg.SLO)
				b.flushIfDue(epoch)
			})
		} else {
			b.mu.Unlock()
		}
	}

	pr.gate.Wait()
	return pr.res
}

// flushIfDue dispatches the pending queue if no dispatch has happened
// since the timer was armed.
func (b *Batcher) flushIfDue(epoch uint64) {
	b.mu.Lock()
	if b.epoch != epoch || len(b.queue) == 0 {
		b.mu.Unlock()
		return
	}
	batch := b.takeBatchLocked()
	b.mu.Unlock()
	b.runBatch(batch)
}

// takeBatchLocked removes the whole queue as one batch and accounts the
// flush waits against the SLO. Callers hold b.mu.
func (b *Batcher) takeBatchLocked() []*pendingReq {
	batch := b.queue
	b.queue = nil
	b.inflight += len(batch)
	b.epoch++
	b.stats.Batches++
	b.stats.Frames += len(batch)
	if len(batch) > b.stats.MaxBatch {
		b.stats.MaxBatch = len(batch)
	}
	b.gDepth.Set(0)
	b.gInfl.Set(int64(b.inflight))
	b.mBatches.Inc()
	now := b.cfg.Clock.Now()
	for _, pr := range batch {
		w := now - pr.at
		if w > b.stats.MaxFlushWait {
			b.stats.MaxFlushWait = w
		}
		if w > b.cfg.SLO {
			b.stats.SLOViolations++
		}
		b.cfg.Obs.SpanCtx(pr.req.Trace, obs.SpanBatchQueue, "", pr.at, now)
	}
	return batch
}

// runBatch executes one batch under the cloud compute slots and wakes
// every waiter with its labels.
func (b *Batcher) runBatch(batch []*pendingReq) {
	clk := b.cfg.Clock
	b.slots.Acquire()
	start := clk.Now()
	// Batched inference: the slowest frame is charged in full, every
	// additional frame at BatchAlpha of its standalone latency.
	var maxLat, sumLat time.Duration
	results := make([][]detect.Detection, len(batch))
	for i, pr := range batch {
		r := b.cfg.Model.Detect(pr.req.Frame)
		results[i] = r.Detections
		if r.Latency > maxLat {
			maxLat = r.Latency
		}
		sumLat += r.Latency
	}
	lat := maxLat + time.Duration(float64(sumLat-maxLat)*b.cfg.BatchAlpha)
	clk.Sleep(scaleDur(lat, b.cfg.CloudSpeed))
	b.slots.Release()
	end := clk.Now()
	b.cfg.Obs.Span(obs.SpanBatchRun, obs.Tags("frames", strconv.Itoa(len(batch))), start, end)
	b.mu.Lock()
	b.inflight -= len(batch)
	b.gInfl.Set(int64(b.inflight))
	b.mu.Unlock()
	for i, pr := range batch {
		pr.res = core.ValidationResult{
			Status: core.Validated,
			Cloud:  results[i],
			// Split the cloud side of this frame's life: everything up to
			// the compute slot (batch accumulation, SLO wait, slot wait) is
			// queueing; the batched inference itself is compute. The sum is
			// the whole enqueue→completion interval.
			CloudQueue:  start - pr.at,
			CloudDetect: end - start,
		}
		pr.gate.Fire()
	}
}

func scaleDur(d time.Duration, speed float64) time.Duration {
	if speed <= 0 {
		return d
	}
	return time.Duration(float64(d) / speed)
}
