package cluster

import (
	"testing"
	"time"

	"croesus/internal/faults"
	"croesus/internal/twopc"
	"croesus/internal/vclock"
	"croesus/internal/video"
)

// faultyConfig is the canonical fault-injection fleet: the sharded test
// fleet plus a scripted failure plan.
func faultyConfig(clk vclock.Clock, proto TxnProtocol, plan *faults.Plan) Config {
	cfg := shardedConfig(clk, 0.4, proto)
	cfg.Faults = plan
	return cfg
}

// crashPlan is the standard schedule: a participant fail-stops right after
// voting yes in its first 2PC round, an edge fail-stops mid-run and
// recovers, and a peer link partitions and heals.
func crashPlan() *faults.Plan {
	return &faults.Plan{
		TwoPC: []faults.TwoPCCrash{
			{Edge: 2, Point: twopc.PointParticipantPrepared, Round: 1, RestartAfter: 600 * time.Millisecond},
		},
		Crashes: []faults.EdgeCrash{
			{Edge: 1, At: 4 * time.Second, RestartAfter: 1500 * time.Millisecond},
		},
		Links: []faults.LinkFault{
			{A: 0, B: 2, At: 9 * time.Second, Heal: 10 * time.Second},
		},
	}
}

// The acceptance scenario: a scripted participant-edge crash mid-2PC must
// recover via the WAL with zero committed writes lost and zero leaked
// locks, and the fleet must keep running through the other faults.
func TestClusterFaultsParticipantCrashRecovery(t *testing.T) {
	clk := vclock.NewSim()
	c, err := New(faultyConfig(clk, TxnMSIA, crashPlan()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep := c.Run()

	if rep.Frames != 160 {
		t.Fatalf("fleet frames = %d, want 160", rep.Frames)
	}
	f := rep.Faults
	if f == nil {
		t.Fatal("no fault report despite a fault plan")
	}
	if f.Crashes < 2 {
		t.Errorf("crashes = %d, want the scripted participant crash and the edge crash", f.Crashes)
	}
	if f.Restarts != f.Crashes {
		t.Errorf("restarts = %d, crashes = %d — the run must end with a healed fleet", f.Restarts, f.Crashes)
	}
	if f.LinkOutages != 1 {
		t.Errorf("link outages = %d, want 1", f.LinkOutages)
	}
	if f.InDoubt == 0 {
		t.Error("the participant crash after its yes vote must leave an in-doubt block to resolve")
	}
	if f.InDoubt != f.InDoubtCommitted+f.InDoubtAborted {
		t.Errorf("in-doubt accounting inconsistent: %+v", f)
	}
	if f.ReplayedRecords == 0 {
		t.Error("recovery replayed no WAL records")
	}
	if f.RecoveryP50 <= 0 {
		t.Errorf("recovery p50 = %s, want > 0", f.RecoveryP50)
	}
	// Zero committed writes lost, zero uncommitted residue: every
	// partition's live store must equal what its log recovers to.
	if err := c.Injector().VerifyDurability(); err != nil {
		t.Errorf("durability violated: %v", err)
	}
	// Zero leaked locks anywhere in the fleet.
	for _, e := range c.Edges() {
		if n := e.Locks.Outstanding(); n != 0 {
			t.Errorf("edge %s leaked %d locks", e.Spec.ID, n)
		}
	}
}

// MS-SR holds locks across the cloud round trip; a crash in that window
// must retract the transaction and release everything — never leak the
// held locks or commit on lost state.
func TestClusterFaultsMSSRNoLeakedLocks(t *testing.T) {
	clk := vclock.NewSim()
	plan := &faults.Plan{
		Crashes: []faults.EdgeCrash{
			{Edge: 0, At: 3 * time.Second, RestartAfter: time.Second},
			{Edge: 2, At: 8 * time.Second, RestartAfter: 2 * time.Second},
		},
	}
	c, err := New(faultyConfig(clk, TxnMSSR, plan))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep := c.Run()

	if rep.Faults == nil || rep.Faults.Crashes != 2 {
		t.Fatalf("fault report = %+v, want 2 crashes", rep.Faults)
	}
	if rep.Faults.TxnsFailed == 0 {
		t.Error("two mid-run crashes under MS-SR failed no transactions")
	}
	for _, e := range c.Edges() {
		if n := e.Locks.Outstanding(); n != 0 {
			t.Errorf("edge %s leaked %d locks after crashes under MS-SR", e.Spec.ID, n)
		}
	}
	if err := c.Injector().VerifyDurability(); err != nil {
		t.Errorf("durability violated: %v", err)
	}
}

// Coordinator crash points: after-prepare must presume abort (no decision
// was durable), after-decision must commit (the decision was durable even
// though phase 2 never ran).
func TestClusterFaultsCoordinatorCrashPoints(t *testing.T) {
	for _, tc := range []struct {
		name  string
		point twopc.TwoPCPoint
	}{
		{"after-prepare", twopc.PointAfterPrepare},
		{"after-decision", twopc.PointAfterDecision},
	} {
		t.Run(tc.name, func(t *testing.T) {
			clk := vclock.NewSim()
			plan := &faults.Plan{
				TwoPC: []faults.TwoPCCrash{
					{Edge: 0, Point: tc.point, Round: 1, RestartAfter: time.Second},
				},
			}
			c, err := New(faultyConfig(clk, TxnMSIA, plan))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			rep := c.Run()
			f := rep.Faults
			if f.Crashes != 1 || f.Restarts != 1 {
				t.Fatalf("crashes/restarts = %d/%d, want 1/1", f.Crashes, f.Restarts)
			}
			if f.InDoubt == 0 {
				t.Fatal("a coordinator crash mid-round must leave participants in doubt")
			}
			switch tc.point {
			case twopc.PointAfterPrepare:
				if f.InDoubtAborted == 0 {
					t.Errorf("after-prepare crash: want presumed aborts, got %+v", f.Counters)
				}
				if f.TxnsFailed == 0 {
					t.Error("after-prepare crash failed no transaction")
				}
			case twopc.PointAfterDecision:
				if f.InDoubtCommitted == 0 {
					t.Errorf("after-decision crash: the durable decision must commit the in-doubt blocks, got %+v", f.Counters)
				}
			}
			if err := c.Injector().VerifyDurability(); err != nil {
				t.Errorf("durability violated: %v", err)
			}
			for _, e := range c.Edges() {
				if n := e.Locks.Outstanding(); n != 0 {
					t.Errorf("edge %s leaked %d locks", e.Spec.ID, n)
				}
			}
		})
	}
}

// Two fault-injected runs with the same seed and plan must be
// byte-identical — crashes, recoveries, and all. (Skipped under the race
// detector, whose instrumentation perturbs the only scheduling freedom
// the virtual clock leaves open: real-time interleavings of goroutines
// runnable within one virtual instant — see race_off_test.go.)
func TestClusterFaultsDeterministic(t *testing.T) {
	if raceEnabled {
		t.Skip("byte determinism is asserted on non-race builds only")
	}
	for _, proto := range []TxnProtocol{TxnMSIA, TxnMSSR} {
		t.Run(proto.String(), func(t *testing.T) {
			run := func() string {
				rep, err := Run(faultyConfig(vclock.NewSim(), proto, crashPlan()))
				if err != nil {
					t.Fatal(err)
				}
				return rep.Format()
			}
			a, b := run(), run()
			if a != b {
				t.Errorf("fault-injected runs diverged:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
			}
		})
	}
}

// A Zipf-skewed sharded workload must still run (hot shards under faults
// are the stress the ROADMAP asks for) and stay deterministic.
func TestClusterFaultsZipfWorkload(t *testing.T) {
	cfg := faultyConfig(vclock.NewSim(), TxnMSIA, crashPlan())
	cfg.ZipfSkew = 1.3
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != 160 || rep.TwoPC.CrossEdgeCommits == 0 {
		t.Fatalf("zipf fleet: frames=%d 2pc=%+v", rep.Frames, rep.TwoPC)
	}
}

// Overlapping events on one edge (a 2PC-point crash while a scheduled
// EdgeCrash also targets it) must not double-recover: whichever event
// crashes the edge owns the restart, and the run still ends healed.
func TestClusterFaultsOverlappingCrashEvents(t *testing.T) {
	plan := &faults.Plan{
		TwoPC: []faults.TwoPCCrash{
			{Edge: 1, Point: twopc.PointParticipantPrepared, Round: 1, RestartAfter: 3 * time.Second},
		},
		Crashes: []faults.EdgeCrash{
			{Edge: 1, At: time.Second, RestartAfter: 500 * time.Millisecond},
		},
	}
	clk := vclock.NewSim()
	c, err := New(faultyConfig(clk, TxnMSIA, plan))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep := c.Run()
	f := rep.Faults
	if f.Restarts != f.Crashes {
		t.Errorf("restarts %d != crashes %d under overlapping events", f.Restarts, f.Crashes)
	}
	if err := c.Injector().VerifyDurability(); err != nil {
		t.Errorf("durability: %v", err)
	}
	for _, e := range c.Edges() {
		if n := e.Locks.Outstanding(); n != 0 {
			t.Errorf("edge %s leaked %d locks", e.Spec.ID, n)
		}
	}
}

// An empty fault plan is a no-op: no durability machinery, no fault
// report, and no implied sharding.
func TestClusterFaultsEmptyPlanIgnored(t *testing.T) {
	rep, err := Run(Config{
		Clock: vclock.NewSim(),
		Cameras: []CameraSpec{
			{ID: "a", Profile: video.ParkDog(), Seed: 11, Frames: 20},
		},
		Edges:   []EdgeSpec{{ID: "west"}},
		Batcher: BatcherConfig{MaxBatch: 4, SLO: 80 * time.Millisecond},
		Faults:  &faults.Plan{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults != nil {
		t.Errorf("empty plan produced a fault report: %+v", rep.Faults)
	}
	if rep.Sharded {
		t.Error("empty plan implied sharding")
	}
}

// A participant whose recovery completes while its coordinator is still
// mid-round (restart faster than the link round trip) must stay in doubt
// rather than presume abort — presuming abort there would half-commit the
// transaction the live coordinator is about to decide. The block resolves
// at the round's own phase-2 delivery (or at Finish), and VerifyDurability's
// cross-partition decision check proves no commit/abort split happened.
func TestClusterFaultsFastRestartStaysInDoubt(t *testing.T) {
	plan := &faults.Plan{
		TwoPC: []faults.TwoPCCrash{
			{Edge: 2, Point: twopc.PointParticipantPrepared, Round: 1, RestartAfter: time.Millisecond},
		},
	}
	clk := vclock.NewSim()
	c, err := New(faultyConfig(clk, TxnMSIA, plan))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep := c.Run()
	if rep.Faults.Crashes != 1 || rep.Faults.Restarts != 1 {
		t.Fatalf("crashes/restarts = %d/%d", rep.Faults.Crashes, rep.Faults.Restarts)
	}
	if err := c.Injector().VerifyDurability(); err != nil {
		t.Errorf("atomicity/durability violated: %v", err)
	}
	for _, e := range c.Edges() {
		if n := e.Locks.Outstanding(); n != 0 {
			t.Errorf("edge %s leaked %d locks", e.Spec.ID, n)
		}
	}
}
