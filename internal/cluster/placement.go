package cluster

// Placement assigns camera streams to edge nodes. Policies are consulted
// once per camera, in declaration order, during cluster construction;
// they may inspect what is already assigned to each edge.
type Placement interface {
	Name() string
	// Pick returns the index of the edge node that should host cam.
	Pick(cam CameraSpec, edges []*EdgeNode) int
}

// RoundRobin cycles cameras across edges in declaration order.
type RoundRobin struct{ next int }

// Name returns "round-robin".
func (*RoundRobin) Name() string { return "round-robin" }

// Pick implements Placement.
func (r *RoundRobin) Pick(cam CameraSpec, edges []*EdgeNode) int {
	i := r.next % len(edges)
	r.next++
	return i
}

// LeastLoaded places each camera on the edge with the smallest expected
// frame rate, normalized by the edge's machine speed — a slow edge fills
// up sooner. Ties go to the lower index, so placement is deterministic.
type LeastLoaded struct{}

// Name returns "least-loaded".
func (LeastLoaded) Name() string { return "least-loaded" }

// Pick implements Placement.
func (LeastLoaded) Pick(cam CameraSpec, edges []*EdgeNode) int {
	best, bestLoad := 0, -1.0
	for i, e := range edges {
		load := e.Load() / e.Spec.Speed
		if bestLoad < 0 || load < bestLoad {
			best, bestLoad = i, load
		}
	}
	return best
}
