package cluster

import (
	"croesus/internal/core"
	"croesus/internal/netsim"
	"croesus/internal/transport"
	"croesus/internal/wire"
)

// EdgeUplink adapts one edge node's uplink to the fleet's shared cloud
// Batcher: it charges the edge→cloud hop (core.Uplink: preprocessing,
// transfer, loss injection) on the calling frame's goroutine, hands the
// request to the batcher, and charges the label-return transfer on the
// way back. It implements core.Validator, so a cluster pipeline differs
// from a single-edge one only by this injection.
type EdgeUplink struct {
	Uplink  core.Uplink
	Batcher *Batcher
}

// Validate implements core.Validator.
func (u *EdgeUplink) Validate(req core.ValidationRequest) core.ValidationResult {
	if u.Uplink.Link.IsDown() {
		// The edge→cloud uplink is partitioned (a scenario link fault):
		// the frame never reaches the batcher and the edge finalizes
		// locally after its timeout — the paper's loss path.
		return core.ValidationResult{Status: core.ValidationLost}
	}
	var tc *wire.TraceCtx
	if req.Trace.Valid() {
		tc = &wire.TraceCtx{Trace: req.Trace.Trace, Parent: req.Trace.Span}
	}
	edgeCloud, lost := u.Uplink.ShipCtx(req.Frame, tc)
	if lost {
		return core.ValidationResult{Status: core.ValidationLost, EdgeCloud: edgeCloud}
	}

	res := u.Batcher.Validate(req)
	res.EdgeCloud = edgeCloud
	if res.Status == core.Validated {
		clk := u.Uplink.Clock
		t2 := clk.Now()
		transport.SendCtx(u.Uplink.Link, clk, netsim.LabelReturnBytes, tc)
		res.CloudReturn = clk.Now() - t2
	}
	return res
}
