package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"croesus/internal/detect"
	"croesus/internal/video"
)

func det(class string, x, y, w, h float64) detect.Detection {
	return detect.Detection{Label: class, Confidence: 0.9, Box: video.Rect{X: x, Y: y, W: w, H: h}}
}

func TestCountsMath(t *testing.T) {
	c := Counts{TP: 8, FP: 2, FN: 2}
	if p := c.Precision(); math.Abs(p-0.8) > 1e-12 {
		t.Errorf("Precision = %g, want 0.8", p)
	}
	if r := c.Recall(); math.Abs(r-0.8) > 1e-12 {
		t.Errorf("Recall = %g, want 0.8", r)
	}
	if f := c.F1(); math.Abs(f-0.8) > 1e-12 {
		t.Errorf("F1 = %g, want 0.8", f)
	}
}

func TestCountsEmpty(t *testing.T) {
	var c Counts
	if c.Precision() != 1 || c.Recall() != 1 {
		t.Error("empty counts must score perfect precision/recall")
	}
	if c.F1() != 1 {
		t.Errorf("empty F1 = %g, want 1", c.F1())
	}
	c = Counts{FP: 3}
	if c.Precision() != 0 {
		t.Errorf("all-FP precision = %g, want 0", c.Precision())
	}
	c = Counts{FN: 3}
	if c.F1() != 0 {
		t.Errorf("all-FN F1 = %g, want 0", c.F1())
	}
}

func TestCountsAdd(t *testing.T) {
	a := Counts{TP: 1, FP: 2, FN: 3}
	a.Add(Counts{TP: 10, FP: 20, FN: 30})
	if a != (Counts{TP: 11, FP: 22, FN: 33}) {
		t.Errorf("Add = %+v", a)
	}
}

func TestMatchBoxesExact(t *testing.T) {
	preds := []detect.Detection{det("a", 0, 0, 0.2, 0.2), det("b", 0.5, 0.5, 0.2, 0.2)}
	refs := []detect.Detection{det("a", 0, 0, 0.2, 0.2), det("b", 0.5, 0.5, 0.2, 0.2)}
	m := MatchBoxes(preds, refs, 0.1)
	if len(m.Matches) != 2 || len(m.UnmatchedPred) != 0 || len(m.UnmatchedRef) != 0 {
		t.Fatalf("unexpected match result %+v", m)
	}
}

func TestMatchBoxesGreedyBestOverlap(t *testing.T) {
	// One prediction overlaps two references; it must take the larger one.
	preds := []detect.Detection{det("a", 0, 0, 0.2, 0.2)}
	refs := []detect.Detection{
		det("a", 0.1, 0.1, 0.2, 0.2),   // small overlap
		det("a", 0.02, 0.02, 0.2, 0.2), // large overlap
	}
	m := MatchBoxes(preds, refs, 0.05)
	if len(m.Matches) != 1 || m.Matches[0].Ref != 1 {
		t.Fatalf("greedy matching picked wrong reference: %+v", m)
	}
	if len(m.UnmatchedRef) != 1 || m.UnmatchedRef[0] != 0 {
		t.Fatalf("unmatched refs wrong: %+v", m)
	}
}

func TestMatchBoxesThreshold(t *testing.T) {
	preds := []detect.Detection{det("a", 0, 0, 0.2, 0.2)}
	refs := []detect.Detection{det("a", 0.19, 0.19, 0.2, 0.2)} // tiny sliver
	m := MatchBoxes(preds, refs, 0.1)
	if len(m.Matches) != 0 {
		t.Fatal("sliver overlap must not match at minIoU=0.1")
	}
}

func TestMatchBoxesOneToOne(t *testing.T) {
	// Two predictions on the same reference: only one can match.
	preds := []detect.Detection{det("a", 0, 0, 0.2, 0.2), det("a", 0.01, 0.01, 0.2, 0.2)}
	refs := []detect.Detection{det("a", 0, 0, 0.2, 0.2)}
	m := MatchBoxes(preds, refs, 0.1)
	if len(m.Matches) != 1 || len(m.UnmatchedPred) != 1 {
		t.Fatalf("one-to-one violated: %+v", m)
	}
}

func TestScoreClass(t *testing.T) {
	preds := []detect.Detection{
		det("person", 0, 0, 0.2, 0.2),     // TP
		det("person", 0.7, 0.7, 0.1, 0.1), // FP (no ref there)
		det("car", 0.4, 0.4, 0.2, 0.2),    // other class, ignored
	}
	refs := []detect.Detection{
		det("person", 0, 0, 0.2, 0.2),
		det("person", 0.3, 0.0, 0.1, 0.1), // FN
		det("car", 0.4, 0.4, 0.2, 0.2),
	}
	c := ScoreClass(preds, refs, "person", 0.1)
	if c != (Counts{TP: 1, FP: 1, FN: 1}) {
		t.Errorf("ScoreClass = %+v, want TP=1 FP=1 FN=1", c)
	}
}

// Property: matching never double-uses a prediction or a reference, and
// matched+unmatched partitions both sides exactly.
func TestMatchBoxesPartitionProperty(t *testing.T) {
	f := func(rawP, rawR []uint8) bool {
		preds := boxesFromBytes(rawP)
		refs := boxesFromBytes(rawR)
		m := MatchBoxes(preds, refs, 0.1)
		seenP := map[int]bool{}
		seenR := map[int]bool{}
		for _, match := range m.Matches {
			if seenP[match.Pred] || seenR[match.Ref] {
				return false
			}
			seenP[match.Pred] = true
			seenR[match.Ref] = true
			if match.IoU < 0.1 {
				return false
			}
		}
		for _, i := range m.UnmatchedPred {
			if seenP[i] {
				return false
			}
			seenP[i] = true
		}
		for _, j := range m.UnmatchedRef {
			if seenR[j] {
				return false
			}
			seenR[j] = true
		}
		return len(seenP) == len(preds) && len(seenR) == len(refs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func boxesFromBytes(raw []uint8) []detect.Detection {
	var out []detect.Detection
	for i := 0; i+1 < len(raw) && len(out) < 12; i += 2 {
		x := float64(raw[i]) / 300
		y := float64(raw[i+1]) / 300
		out = append(out, det("a", x, y, 0.15, 0.15))
	}
	return out
}

func TestLatencyStats(t *testing.T) {
	var s LatencyStats
	if s.Mean() != 0 || s.Percentile(50) != 0 || s.Min() != 0 {
		t.Error("empty stats must be zero")
	}
	for i := 1; i <= 10; i++ {
		s.Add(time.Duration(i) * time.Millisecond)
	}
	if s.N() != 10 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 5500*time.Microsecond {
		t.Errorf("Mean = %v, want 5.5ms", s.Mean())
	}
	if s.Percentile(50) != 5*time.Millisecond {
		t.Errorf("P50 = %v, want 5ms", s.Percentile(50))
	}
	if s.Max() != 10*time.Millisecond || s.Min() != time.Millisecond {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	// Adding after a percentile query must still work.
	s.Add(100 * time.Millisecond)
	if s.Max() != 100*time.Millisecond {
		t.Errorf("Max after re-add = %v", s.Max())
	}
}
