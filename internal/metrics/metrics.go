// Package metrics implements the evaluation machinery of the paper:
// bounding-box matching between detection sets, precision / recall /
// F-score, and latency statistics.
package metrics

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"time"

	"croesus/internal/detect"
)

// Counts accumulates confusion counts for detection evaluation.
type Counts struct {
	TP, FP, FN int
}

// Add merges another count set.
func (c *Counts) Add(o Counts) {
	c.TP += o.TP
	c.FP += o.FP
	c.FN += o.FN
}

// Precision returns TP / (TP + FP), or 1 when nothing was predicted.
func (c Counts) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP / (TP + FN), or 1 when there was nothing to find.
func (c Counts) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall (the paper's
// F-score: 2pr/(p+r)).
func (c Counts) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

func (c Counts) String() string {
	return fmt.Sprintf("TP=%d FP=%d FN=%d P=%.3f R=%.3f F1=%.3f", c.TP, c.FP, c.FN, c.Precision(), c.Recall(), c.F1())
}

// Match pairs one predicted detection with one reference detection.
type Match struct {
	Pred, Ref int     // indices into the input slices
	IoU       float64 // overlap of the pair
}

// MatchResult is the outcome of matching predictions against a reference.
type MatchResult struct {
	Matches       []Match
	UnmatchedPred []int
	UnmatchedRef  []int
}

// MatchBoxes greedily pairs predictions to reference detections by
// descending IoU, requiring overlap of at least minIoU (the paper uses 10%).
// Class labels are NOT considered: the caller decides whether a matched pair
// with differing labels is a correction (pipeline) or an error (scoring).
func MatchBoxes(preds, refs []detect.Detection, minIoU float64) MatchResult {
	type cand struct {
		p, r int
		iou  float64
	}
	// The matcher runs per frame in reports and in the pipeline's final
	// stage, over a handful of detections — keep the candidate list and
	// the used-sets off the heap in that regime (stack scratch + bitmask)
	// and size the result slices exactly.
	var candsBuf [24]cand
	cands := candsBuf[:0]
	for i, p := range preds {
		for j, r := range refs {
			if iou := p.Box.IoU(r.Box); iou >= minIoU {
				cands = append(cands, cand{i, j, iou})
			}
		}
	}
	slices.SortFunc(cands, func(a, b cand) int {
		if a.iou != b.iou {
			if a.iou > b.iou {
				return -1
			}
			return 1
		}
		if a.p != b.p {
			return a.p - b.p
		}
		return a.r - b.r
	})
	big := len(preds) > 64 || len(refs) > 64
	var maskP, maskR uint64
	var usedP, usedR []bool
	if big {
		usedP = make([]bool, len(preds))
		usedR = make([]bool, len(refs))
	}
	used := func(i, j int) bool {
		if big {
			return usedP[i] || usedR[j]
		}
		return maskP&(1<<uint(i)) != 0 || maskR&(1<<uint(j)) != 0
	}
	markUsed := func(i, j int) {
		if big {
			usedP[i], usedR[j] = true, true
		} else {
			maskP |= 1 << uint(i)
			maskR |= 1 << uint(j)
		}
	}
	var res MatchResult
	matched := 0
	for _, c := range cands {
		if used(c.p, c.r) {
			continue
		}
		markUsed(c.p, c.r)
		if res.Matches == nil {
			n := len(preds)
			if len(refs) < n {
				n = len(refs)
			}
			res.Matches = make([]Match, 0, n)
		}
		res.Matches = append(res.Matches, Match{Pred: c.p, Ref: c.r, IoU: c.iou})
		matched++
	}
	predUsed := func(i int) bool {
		if big {
			return usedP[i]
		}
		return maskP&(1<<uint(i)) != 0
	}
	refUsed := func(j int) bool {
		if big {
			return usedR[j]
		}
		return maskR&(1<<uint(j)) != 0
	}
	if n := len(preds) - matched; n > 0 {
		res.UnmatchedPred = make([]int, 0, n)
		for i := range preds {
			if !predUsed(i) {
				res.UnmatchedPred = append(res.UnmatchedPred, i)
			}
		}
	}
	if n := len(refs) - matched; n > 0 {
		res.UnmatchedRef = make([]int, 0, n)
		for j := range refs {
			if !refUsed(j) {
				res.UnmatchedRef = append(res.UnmatchedRef, j)
			}
		}
	}
	return res
}

// ScoreClass evaluates predictions against a reference for one query class,
// per the paper's evaluation: a prediction is correct when it overlaps a
// same-class reference detection by at least minIoU.
func ScoreClass(preds, refs []detect.Detection, class string, minIoU float64) Counts {
	// The filtered views only feed MatchBoxes (which retains nothing), so
	// small inputs filter into stack scratch instead of fresh slices.
	var pBuf, rBuf [32]detect.Detection
	p := filterClassInto(pBuf[:0], preds, class)
	r := filterClassInto(rBuf[:0], refs, class)
	m := MatchBoxes(p, r, minIoU)
	return Counts{
		TP: len(m.Matches),
		FP: len(m.UnmatchedPred),
		FN: len(m.UnmatchedRef),
	}
}

func filterClassInto(out, dets []detect.Detection, class string) []detect.Detection {
	for _, d := range dets {
		if d.Label == class {
			out = append(out, d)
		}
	}
	return out
}

// LatencyStats summarizes a sample of durations. It is not
// goroutine-safe: Add mutates the sample slice and the percentile
// readers sort it in place, so callers must confine a value to one
// goroutine or serialize access externally (the pipeline accumulates
// per-camera and merges at report time for exactly this reason).
type LatencyStats struct {
	samples []time.Duration
	sorted  bool
}

// Add records one sample.
func (s *LatencyStats) Add(d time.Duration) {
	s.samples = append(s.samples, d)
	s.sorted = false
}

// N reports the number of samples.
func (s *LatencyStats) N() int { return len(s.samples) }

// Mean returns the arithmetic mean (0 with no samples).
func (s *LatencyStats) Mean() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range s.samples {
		sum += d
	}
	return sum / time.Duration(len(s.samples))
}

// sortedView sorts the samples in place (once per batch of Adds) and
// returns them. Every order-statistic reader goes through this single
// helper so the lazy re-sort logic lives in exactly one place.
func (s *LatencyStats) sortedView() []time.Duration {
	if !s.sorted {
		sort.Slice(s.samples, func(i, j int) bool { return s.samples[i] < s.samples[j] })
		s.sorted = true
	}
	return s.samples
}

// Percentile returns the p-th percentile (0 < p <= 100) by
// nearest-rank; 0 with no samples.
func (s *LatencyStats) Percentile(p float64) time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	v := s.sortedView()
	rank := int(math.Ceil(p / 100 * float64(len(v))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(v) {
		rank = len(v)
	}
	return v[rank-1]
}

// Max returns the maximum sample.
func (s *LatencyStats) Max() time.Duration { return s.Percentile(100) }

// Min returns the minimum sample.
func (s *LatencyStats) Min() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	return s.sortedView()[0]
}
