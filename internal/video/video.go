// Package video generates synthetic videos for the Croesus pipeline.
//
// The paper evaluates on five real videos (street traffic querying vehicles,
// street traffic querying pedestrians, mall surveillance, an airport runway,
// and a park pet video). This package substitutes deterministic synthetic
// scenes: each video is a sequence of frames populated by tracked objects
// that enter, move, and leave, with a per-object *difficulty* in [0,1] that
// summarizes everything that makes detection hard (size, occlusion, blur,
// lighting). The detection simulator consumes difficulty; the profiles below
// are calibrated so the edge model's accuracy per video matches the paper's
// ordering (airport easy, mall hard, and so on).
package video

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Rect is an axis-aligned bounding box in normalized [0,1] frame
// coordinates.
type Rect struct {
	X, Y, W, H float64
}

// Area returns the box area (0 for degenerate boxes).
func (r Rect) Area() float64 {
	if r.W <= 0 || r.H <= 0 {
		return 0
	}
	return r.W * r.H
}

// Intersect returns the intersection of two boxes (possibly degenerate).
func (r Rect) Intersect(o Rect) Rect {
	x1 := math.Max(r.X, o.X)
	y1 := math.Max(r.Y, o.Y)
	x2 := math.Min(r.X+r.W, o.X+o.W)
	y2 := math.Min(r.Y+r.H, o.Y+o.H)
	if x2 <= x1 || y2 <= y1 {
		return Rect{}
	}
	return Rect{X: x1, Y: y1, W: x2 - x1, H: y2 - y1}
}

// IoU returns intersection-over-union, the overlap measure used when
// matching edge labels to cloud labels and predictions to ground truth.
func (r Rect) IoU(o Rect) float64 {
	inter := r.Intersect(o).Area()
	if inter == 0 {
		return 0
	}
	union := r.Area() + o.Area() - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// Clamp confines the box to the unit frame.
func (r Rect) Clamp() Rect {
	r.X = math.Max(0, math.Min(r.X, 1))
	r.Y = math.Max(0, math.Min(r.Y, 1))
	if r.X+r.W > 1 {
		r.W = 1 - r.X
	}
	if r.Y+r.H > 1 {
		r.H = 1 - r.Y
	}
	if r.W < 0 {
		r.W = 0
	}
	if r.H < 0 {
		r.H = 0
	}
	return r
}

// Object is a ground-truth object instance in one frame.
type Object struct {
	TrackID    int     // stable identity across frames
	Class      string  // label name, e.g. "person"
	Box        Rect    // position in the frame
	Difficulty float64 // 0 trivial … 1 nearly undetectable
}

// Frame is one video frame: ground truth plus transport metadata.
type Frame struct {
	Index     int
	At        time.Duration // capture timestamp at the configured FPS
	Width     int
	Height    int
	SizeBytes int // encoded size, drives link transfer time
	Objects   []Object
}

// ClassFreq gives the relative population of one object class in a scene.
type ClassFreq struct {
	Class string
	Freq  float64 // relative weight
}

// Profile describes a synthetic video workload.
type Profile struct {
	Name       string
	QueryClass string  // the class the application queries for
	FPS        float64 // capture rate
	Width      int
	Height     int

	// Scene population.
	Classes       []ClassFreq
	MeanObjects   float64 // average concurrent tracked objects
	MeanTrackLife int     // average frames an object stays in view
	ObjectSizeMin float64 // box side as a fraction of frame
	ObjectSizeMax float64
	Speed         float64 // mean per-frame displacement (fraction of frame)

	// Detection hardness of this scene for the *query* class.
	DifficultyMean float64
	DifficultyStd  float64
	// Hardness for background (non-query) classes.
	BackgroundDifficulty float64

	// Encoded frame size model: base plus per-object increment, jittered.
	FrameBytesBase      int
	FrameBytesPerObject int
}

func (p Profile) String() string {
	return fmt.Sprintf("%s (query=%q fps=%g)", p.Name, p.QueryClass, p.FPS)
}

// FrameInterval returns the capture interval implied by FPS.
func (p Profile) FrameInterval() time.Duration {
	if p.FPS <= 0 {
		return time.Second
	}
	return time.Duration(float64(time.Second) / p.FPS)
}

// track is the generator's internal moving object.
type track struct {
	obj       Object
	vx, vy    float64
	remaining int
}

// Generator produces the frames of a synthetic video deterministically from
// a seed. The same (Profile, seed) pair always yields the same video.
type Generator struct {
	prof     Profile
	rng      *rand.Rand
	tracks   []track
	nextID   int
	frameIdx int
}

// NewGenerator returns a generator for the given profile and seed.
func NewGenerator(p Profile, seed int64) *Generator {
	g := &Generator{prof: p, rng: rand.New(rand.NewSource(seed))}
	// Pre-populate the scene so frame 0 is not empty.
	initial := int(math.Round(p.MeanObjects))
	for i := 0; i < initial; i++ {
		g.spawn()
	}
	return g
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.prof }

func (g *Generator) pickClass() string {
	var total float64
	for _, c := range g.prof.Classes {
		total += c.Freq
	}
	r := g.rng.Float64() * total
	for _, c := range g.prof.Classes {
		if r < c.Freq {
			return c.Class
		}
		r -= c.Freq
	}
	return g.prof.Classes[len(g.prof.Classes)-1].Class
}

func (g *Generator) spawn() {
	p := g.prof
	class := g.pickClass()
	size := p.ObjectSizeMin + g.rng.Float64()*(p.ObjectSizeMax-p.ObjectSizeMin)
	diff := p.DifficultyMean
	if class != p.QueryClass {
		diff = p.BackgroundDifficulty
	}
	diff = clamp01(diff + g.rng.NormFloat64()*p.DifficultyStd)
	life := 1 + g.rng.Intn(2*maxInt(p.MeanTrackLife, 1))
	angle := g.rng.Float64() * 2 * math.Pi
	g.nextID++
	g.tracks = append(g.tracks, track{
		obj: Object{
			TrackID:    g.nextID,
			Class:      class,
			Box:        Rect{X: g.rng.Float64() * (1 - size), Y: g.rng.Float64() * (1 - size), W: size, H: size * (0.8 + 0.4*g.rng.Float64())}.Clamp(),
			Difficulty: diff,
		},
		vx:        math.Cos(angle) * p.Speed,
		vy:        math.Sin(angle) * p.Speed,
		remaining: life,
	})
}

// Next produces the next frame.
func (g *Generator) Next() *Frame {
	p := g.prof
	idx := g.frameIdx
	g.frameIdx++

	// Retire expired tracks, move the rest.
	alive := g.tracks[:0]
	for _, t := range g.tracks {
		t.remaining--
		if t.remaining <= 0 {
			continue
		}
		t.obj.Box.X += t.vx + g.rng.NormFloat64()*p.Speed*0.2
		t.obj.Box.Y += t.vy + g.rng.NormFloat64()*p.Speed*0.2
		t.obj.Box = t.obj.Box.Clamp()
		if t.obj.Box.Area() == 0 { // drifted out of view
			continue
		}
		// Difficulty wanders slightly frame to frame (lighting, pose).
		t.obj.Difficulty = clamp01(t.obj.Difficulty + g.rng.NormFloat64()*0.02)
		alive = append(alive, t)
	}
	g.tracks = alive

	// Births refill the population toward MeanObjects: the integer part of
	// the deficit is spawned immediately, the fractional part
	// stochastically, so the long-run mean tracks the target.
	deficit := p.MeanObjects - float64(len(g.tracks))
	births := 0
	if deficit > 0 {
		births = int(deficit)
		if g.rng.Float64() < deficit-float64(births) {
			births++
		}
	}
	for i := 0; i < births; i++ {
		g.spawn()
	}

	objs := make([]Object, len(g.tracks))
	for i, t := range g.tracks {
		objs[i] = t.obj
	}
	size := p.FrameBytesBase + p.FrameBytesPerObject*len(objs)
	size += int(g.rng.NormFloat64() * float64(size) * 0.05)
	if size < 1024 {
		size = 1024
	}
	return &Frame{
		Index:     idx,
		At:        time.Duration(float64(idx) * float64(p.FrameInterval())),
		Width:     p.Width,
		Height:    p.Height,
		SizeBytes: size,
		Objects:   objs,
	}
}

// Generate produces the next n frames.
func (g *Generator) Generate(n int) []*Frame {
	frames := make([]*Frame, n)
	for i := range frames {
		frames[i] = g.Next()
	}
	return frames
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
