package video

// The five evaluation workloads from the paper (§5.1). Difficulty values are
// calibrated against the simulated edge model so that edge-only F-scores
// reproduce the paper's ordering: airport (easy, edge ≈ 0.86) >> park ≈ 0.5
// > street vehicles ≈ 0.45 > mall ≈ 0.41.

// ParkDog models "home video of pet in the park querying for 'dog'" (v1).
func ParkDog() Profile {
	return Profile{
		Name:       "v1-park-dog",
		QueryClass: "dog",
		FPS:        2,
		Width:      1280, Height: 720,
		Classes: []ClassFreq{
			{Class: "dog", Freq: 0.55},
			{Class: "person", Freq: 0.35},
			{Class: "bicycle", Freq: 0.10},
		},
		MeanObjects:   3,
		MeanTrackLife: 40,
		ObjectSizeMin: 0.08, ObjectSizeMax: 0.25,
		Speed:          0.010,
		DifficultyMean: 0.60, DifficultyStd: 0.16,
		BackgroundDifficulty: 0.45,
		FrameBytesBase:       150 << 10,
		FrameBytesPerObject:  6 << 10,
	}
}

// StreetVehicles models "street traffic (vehicles)" (v2).
func StreetVehicles() Profile {
	return Profile{
		Name:       "v2-street-vehicles",
		QueryClass: "car",
		FPS:        2,
		Width:      1280, Height: 720,
		Classes: []ClassFreq{
			{Class: "car", Freq: 0.5},
			{Class: "truck", Freq: 0.2},
			{Class: "bus", Freq: 0.1},
			{Class: "person", Freq: 0.2},
		},
		MeanObjects:   6,
		MeanTrackLife: 25,
		ObjectSizeMin: 0.05, ObjectSizeMax: 0.20,
		Speed:          0.020,
		DifficultyMean: 0.60, DifficultyStd: 0.15,
		BackgroundDifficulty: 0.55,
		FrameBytesBase:       180 << 10,
		FrameBytesPerObject:  5 << 10,
	}
}

// AirportRunway models "airport runway querying for 'airplane'" (v3): large,
// slow, high-contrast objects that even the edge model detects confidently.
func AirportRunway() Profile {
	return Profile{
		Name:       "v3-airport-airplane",
		QueryClass: "airplane",
		FPS:        2,
		Width:      1280, Height: 720,
		Classes: []ClassFreq{
			{Class: "airplane", Freq: 0.8},
			{Class: "truck", Freq: 0.2},
		},
		MeanObjects:   2,
		MeanTrackLife: 80,
		ObjectSizeMin: 0.25, ObjectSizeMax: 0.50,
		Speed:          0.004,
		DifficultyMean: 0.05, DifficultyStd: 0.04,
		BackgroundDifficulty: 0.30,
		FrameBytesBase:       140 << 10,
		FrameBytesPerObject:  8 << 10,
	}
}

// MallSurveillance models "mall surveillance querying for 'person'" (v4):
// many small, occluded, low-contrast objects — the hardest for the edge.
func MallSurveillance() Profile {
	return Profile{
		Name:       "v4-mall-person",
		QueryClass: "person",
		FPS:        2,
		Width:      1280, Height: 720,
		Classes: []ClassFreq{
			{Class: "person", Freq: 0.85},
			{Class: "backpack", Freq: 0.15},
		},
		MeanObjects:   8,
		MeanTrackLife: 30,
		ObjectSizeMin: 0.03, ObjectSizeMax: 0.10,
		Speed:          0.012,
		DifficultyMean: 0.65, DifficultyStd: 0.14,
		BackgroundDifficulty: 0.65,
		FrameBytesBase:       200 << 10,
		FrameBytesPerObject:  3 << 10,
	}
}

// StreetPedestrians models "street traffic (pedestrians)" querying
// 'person' — used by the Figure 5(a) heatmap experiment.
func StreetPedestrians() Profile {
	return Profile{
		Name:       "v5-street-person",
		QueryClass: "person",
		FPS:        2,
		Width:      1280, Height: 720,
		Classes: []ClassFreq{
			{Class: "person", Freq: 0.6},
			{Class: "car", Freq: 0.3},
			{Class: "bicycle", Freq: 0.1},
		},
		MeanObjects:   5,
		MeanTrackLife: 25,
		ObjectSizeMin: 0.04, ObjectSizeMax: 0.14,
		Speed:          0.015,
		DifficultyMean: 0.55, DifficultyStd: 0.17,
		BackgroundDifficulty: 0.50,
		FrameBytesBase:       180 << 10,
		FrameBytesPerObject:  4 << 10,
	}
}

// AllProfiles returns the evaluation videos in paper order v1..v5.
func AllProfiles() []Profile {
	return []Profile{
		ParkDog(),
		StreetVehicles(),
		AirportRunway(),
		MallSurveillance(),
		StreetPedestrians(),
	}
}
