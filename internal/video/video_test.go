package video

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestRectArea(t *testing.T) {
	tests := []struct {
		r    Rect
		want float64
	}{
		{Rect{0, 0, 0.5, 0.5}, 0.25},
		{Rect{0, 0, 0, 1}, 0},
		{Rect{0, 0, -0.1, 1}, 0},
	}
	for _, tt := range tests {
		if got := tt.r.Area(); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Area(%v) = %g, want %g", tt.r, got, tt.want)
		}
	}
}

func TestRectIoU(t *testing.T) {
	a := Rect{0, 0, 0.5, 0.5}
	if got := a.IoU(a); math.Abs(got-1) > 1e-12 {
		t.Errorf("IoU(self) = %g, want 1", got)
	}
	b := Rect{0.5, 0.5, 0.5, 0.5}
	if got := a.IoU(b); got != 0 {
		t.Errorf("IoU(disjoint) = %g, want 0", got)
	}
	// Half-overlapping boxes: inter=0.125, union=0.375.
	c := Rect{0.25, 0, 0.5, 0.5}
	want := 0.125 / 0.375
	if got := a.IoU(c); math.Abs(got-want) > 1e-12 {
		t.Errorf("IoU = %g, want %g", got, want)
	}
}

func TestRectIoUSymmetryProperty(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		a := Rect{frac(ax), frac(ay), frac(aw), frac(ah)}
		b := Rect{frac(bx), frac(by), frac(bw), frac(bh)}
		iou1, iou2 := a.IoU(b), b.IoU(a)
		return math.Abs(iou1-iou2) < 1e-9 && iou1 >= 0 && iou1 <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func frac(v float64) float64 {
	v = math.Abs(v)
	v -= math.Floor(v)
	return v
}

func TestClamp(t *testing.T) {
	r := Rect{0.9, 0.9, 0.3, 0.3}.Clamp()
	if r.X+r.W > 1+1e-12 || r.Y+r.H > 1+1e-12 {
		t.Errorf("Clamp left box outside the frame: %+v", r)
	}
	r = Rect{-0.5, -0.5, 0.3, 0.3}.Clamp()
	if r.X < 0 || r.Y < 0 {
		t.Errorf("Clamp left negative origin: %+v", r)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p := StreetVehicles()
	a := NewGenerator(p, 7).Generate(50)
	b := NewGenerator(p, 7).Generate(50)
	for i := range a {
		if len(a[i].Objects) != len(b[i].Objects) {
			t.Fatalf("frame %d: object counts differ (%d vs %d)", i, len(a[i].Objects), len(b[i].Objects))
		}
		for j := range a[i].Objects {
			if a[i].Objects[j] != b[i].Objects[j] {
				t.Fatalf("frame %d object %d differs", i, j)
			}
		}
		if a[i].SizeBytes != b[i].SizeBytes {
			t.Fatalf("frame %d sizes differ", i)
		}
	}
	c := NewGenerator(p, 8).Generate(50)
	same := true
	for i := range a {
		if len(a[i].Objects) != len(c[i].Objects) {
			same = false
			break
		}
	}
	if same {
		t.Log("different seeds produced equal object counts for 50 frames (unlikely but not fatal)")
	}
}

func TestGeneratorPopulation(t *testing.T) {
	for _, p := range AllProfiles() {
		g := NewGenerator(p, 1)
		frames := g.Generate(300)
		var total float64
		queryFound := false
		for _, f := range frames {
			total += float64(len(f.Objects))
			for _, o := range f.Objects {
				if o.Class == p.QueryClass {
					queryFound = true
				}
				if o.Difficulty < 0 || o.Difficulty > 1 {
					t.Fatalf("%s: difficulty %g out of range", p.Name, o.Difficulty)
				}
				if o.Box.Area() <= 0 {
					t.Fatalf("%s: degenerate object box %+v", p.Name, o.Box)
				}
			}
		}
		mean := total / float64(len(frames))
		if mean < p.MeanObjects*0.5 || mean > p.MeanObjects*1.8 {
			t.Errorf("%s: mean population %.2f far from target %.2f", p.Name, mean, p.MeanObjects)
		}
		if !queryFound {
			t.Errorf("%s: query class %q never appeared", p.Name, p.QueryClass)
		}
	}
}

func TestGeneratorTimestampsAndSizes(t *testing.T) {
	p := ParkDog()
	g := NewGenerator(p, 3)
	frames := g.Generate(10)
	for i, f := range frames {
		if f.Index != i {
			t.Errorf("frame %d has Index %d", i, f.Index)
		}
		want := time.Duration(float64(i) * float64(p.FrameInterval()))
		if f.At != want {
			t.Errorf("frame %d At = %v, want %v", i, f.At, want)
		}
		if f.SizeBytes < 1024 {
			t.Errorf("frame %d suspiciously small: %d bytes", i, f.SizeBytes)
		}
	}
}

func TestTrackContinuity(t *testing.T) {
	// An object present in consecutive frames must not teleport.
	p := AirportRunway()
	g := NewGenerator(p, 5)
	prev := map[int]Rect{}
	for i := 0; i < 100; i++ {
		f := g.Next()
		for _, o := range f.Objects {
			if pb, ok := prev[o.TrackID]; ok {
				dx := math.Abs(o.Box.X - pb.X)
				dy := math.Abs(o.Box.Y - pb.Y)
				if dx > 0.2 || dy > 0.2 {
					t.Fatalf("track %d jumped by (%.3f, %.3f) in one frame", o.TrackID, dx, dy)
				}
			}
		}
		prev = map[int]Rect{}
		for _, o := range f.Objects {
			prev[o.TrackID] = o.Box
		}
	}
}

func TestProfileDifficultyOrdering(t *testing.T) {
	// The calibration that drives every accuracy result: airport must be
	// much easier than mall, with park/street in between.
	mean := func(p Profile) float64 {
		g := NewGenerator(p, 11)
		var sum float64
		var n int
		for _, f := range g.Generate(200) {
			for _, o := range f.Objects {
				if o.Class == p.QueryClass {
					sum += o.Difficulty
					n++
				}
			}
		}
		return sum / float64(n)
	}
	airport := mean(AirportRunway())
	mall := mean(MallSurveillance())
	park := mean(ParkDog())
	if !(airport < park && park < mall) {
		t.Errorf("difficulty ordering violated: airport=%.3f park=%.3f mall=%.3f", airport, park, mall)
	}
	if airport > 0.25 {
		t.Errorf("airport difficulty %.3f too high for an 'easy' video", airport)
	}
}

func TestFrameInterval(t *testing.T) {
	p := Profile{FPS: 4}
	if p.FrameInterval() != 250*time.Millisecond {
		t.Errorf("FrameInterval = %v, want 250ms", p.FrameInterval())
	}
	p.FPS = 0
	if p.FrameInterval() != time.Second {
		t.Errorf("zero-FPS FrameInterval = %v, want 1s fallback", p.FrameInterval())
	}
}
