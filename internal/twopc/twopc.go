// Package twopc implements the multi-partition operations of §4.5: a
// transaction whose sections touch keys owned by several edge partitions
// locks remote data by sending lock requests to the owning edge nodes and
// finishes each commit with a two-phase commit. Per the paper, atomic
// commitment runs at the end of the final section for MS-SR (locks are held
// across both sections anyway) and at the end of both the initial and the
// final sections for MS-IA.
package twopc

import (
	"errors"
	"fmt"
	"sync"

	"croesus/internal/lock"
	"croesus/internal/obs"
	"croesus/internal/store"
	"croesus/internal/transport"
	"croesus/internal/txn"
	"croesus/internal/vclock"
	"croesus/internal/wal"
)

// ErrAborted is returned when a participant votes no during prepare.
var ErrAborted = errors.New("twopc: aborted")

// ErrCrashed reports that an atomic-commitment round could not complete
// because an involved edge fail-stopped (or its link partitioned) — the
// section's commit did not happen and its eager writes must be undone.
var ErrCrashed = errors.New("twopc: edge crashed mid-commit")

// Partition is one edge node's shard of the database.
type Partition struct {
	ID    int
	Store *store.Store
	Locks *lock.Manager
	// Link is the coordinator→partition network path. The coordinator's
	// own partition uses a nil Link (local calls).
	Link transport.Path
	// WAL, when set, makes the partition durable: every section commit it
	// participates in is logged, and a crashed edge rebuilds the partition
	// from the log (see durable.go and internal/faults).
	WAL *wal.Log
	// WALAppends, when set, counts the records this partition logs — the
	// metrics registry's view of WAL traffic (nil: uncounted).
	WALAppends *obs.Counter

	mu       sync.Mutex
	staged   map[txn.ID][]stagedWrite
	prepared map[txn.ID]bool
	// walStaged and decisions are the durable-fleet protocol state:
	// prepared-but-undecided blocks and the commit/abort outcomes this
	// partition decided as a coordinator, keyed per commit round — a
	// multi-stage transaction's two rounds are independent 2PC instances.
	walStaged map[CommitRound]*walStage
	decisions map[CommitRound]bool
	// walDataSeq counts the data records this partition has logged and
	// walLastData remembers each key's latest; together they are the live
	// mirror of the last-writer-wins rule wal.Recover resolves by log
	// position, letting a deferred in-doubt resolution skip writes a
	// later record superseded. They survive CrashReset like the log does.
	walDataSeq  int64
	walLastData map[string]int64
	// FailPrepares makes the next n prepare requests vote no —
	// failure injection for tests and benches.
	FailPrepares int
}

type stagedWrite struct {
	key string
	val store.Value
	del bool
}

// NewPartition returns an empty partition.
func NewPartition(id int, clk vclock.Clock, link transport.Path) *Partition {
	return &Partition{
		ID:       id,
		Store:    store.New(),
		Locks:    lock.NewManager(clk),
		Link:     link,
		staged:   make(map[txn.ID][]stagedWrite),
		prepared: make(map[txn.ID]bool),
	}
}

// prepare stages the writes and votes.
func (p *Partition) prepare(id txn.ID, writes []stagedWrite) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.FailPrepares > 0 {
		p.FailPrepares--
		return false
	}
	p.staged[id] = writes
	p.prepared[id] = true
	return true
}

// commit applies the staged writes.
func (p *Partition) commit(id txn.ID) {
	p.mu.Lock()
	writes := p.staged[id]
	delete(p.staged, id)
	delete(p.prepared, id)
	p.mu.Unlock()
	for _, w := range writes {
		if w.del {
			p.Store.Delete(w.key)
		} else {
			p.Store.Put(w.key, w.val)
		}
	}
}

// abort drops the staged writes.
func (p *Partition) abort(id txn.ID) {
	p.mu.Lock()
	delete(p.staged, id)
	delete(p.prepared, id)
	p.mu.Unlock()
}

// Prepared reports whether the partition holds a staged state for id (for
// tests).
func (p *Partition) Prepared(id txn.ID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.prepared[id]
}

// Protocol selects which multi-stage protocol governs lock scope, matching
// txn.MSSR and txn.MSIA semantics.
type Protocol int

// Protocols.
const (
	MSSR Protocol = iota
	MSIA
)

func (p Protocol) String() string {
	if p == MSSR {
		return "MS-SR"
	}
	return "MS-IA"
}

// DistTxn is a distributed multi-stage transaction.
type DistTxn struct {
	Name      string
	InitialRW txn.RWSet
	FinalRW   txn.RWSet
	Initial   func(c *Ctx) error
	Final     func(c *Ctx) error
}

// Coordinator drives distributed transactions over a set of partitions.
// The coordinator is co-located with partition 0 (its local shard).
type Coordinator struct {
	Clk         vclock.Clock
	Parts       []*Partition
	Partitioner func(key string) int
	Protocol    Protocol

	mu     sync.Mutex
	nextID txn.ID
	stats  Stats
}

// Stats counts protocol events.
type Stats struct {
	Commits     int64
	Aborts      int64
	PrepareRPCs int64
	CommitRPCs  int64
	AbortRPCs   int64
	LockRPCs    int64
	TwoPCRounds int64
}

// HashPartitioner returns the default key→partition mapping: FNV-1a over
// the key, modulo n. Both the standalone coordinator and the cluster's
// placement-aware partitioner (for untagged keys) share it, so a key
// routes identically everywhere.
func HashPartitioner(n int) func(key string) int {
	return func(key string) int {
		h := uint32(2166136261)
		for i := 0; i < len(key); i++ {
			h = (h ^ uint32(key[i])) * 16777619
		}
		return int(h % uint32(n))
	}
}

// NewCoordinator returns a coordinator over the partitions with a
// hash-based default partitioner.
func NewCoordinator(clk vclock.Clock, parts []*Partition, proto Protocol) *Coordinator {
	return &Coordinator{Clk: clk, Parts: parts, Protocol: proto, Partitioner: HashPartitioner(len(parts))}
}

// Stats returns a snapshot of the counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Ctx is the distributed section execution context: reads go to the owning
// partition (paying the network hop), writes are buffered until 2PC. The
// write buffer is keyed by the partition's index in Coordinator.Parts (the
// partitioner's output), never by Partition.ID — the two need not agree.
type Ctx struct {
	co     *Coordinator
	id     txn.ID
	writes map[int][]stagedWrite // per partition slice index
	reads  int
}

// Get reads key from its owning partition.
func (c *Ctx) Get(key string) (store.Value, bool) {
	pi := c.co.Partitioner(key)
	p := c.co.Parts[pi]
	c.co.hop(p) // request
	// Buffered writes are visible to the transaction's own reads.
	for i := len(c.writes[pi]) - 1; i >= 0; i-- {
		if w := c.writes[pi][i]; w.key == key {
			if w.del {
				return nil, false
			}
			return w.val.Clone(), true
		}
	}
	v, ok := p.Store.Get(key)
	c.co.hop(p) // response
	c.reads++
	return v, ok
}

// Put buffers a write to key's owning partition.
func (c *Ctx) Put(key string, v store.Value) {
	pid := c.co.Partitioner(key)
	c.writes[pid] = append(c.writes[pid], stagedWrite{key: key, val: v.Clone()})
}

// Delete buffers a delete.
func (c *Ctx) Delete(key string) {
	pid := c.co.Partitioner(key)
	c.writes[pid] = append(c.writes[pid], stagedWrite{key: key, del: true})
}

// hop pays one one-way network delay to a remote partition.
func (c *Coordinator) hop(p *Partition) {
	if p.Link == nil {
		return
	}
	p.Link.Send(c.Clk, 256)
}

// partitionRequests groups lock requests by owning partition.
func (c *Coordinator) partitionRequests(reqs []lock.Request) map[int][]lock.Request {
	out := map[int][]lock.Request{}
	for _, r := range reqs {
		pid := c.Partitioner(r.Key)
		out[pid] = append(out[pid], r)
	}
	return out
}

// acquireLocks sends lock requests to every involved partition. Partitions
// are visited in ID order (global ordering prevents distributed deadlock).
func (c *Coordinator) acquireLocks(id txn.ID, reqs []lock.Request) {
	byPart := c.partitionRequests(reqs)
	for pid := 0; pid < len(c.Parts); pid++ {
		rs, ok := byPart[pid]
		if !ok {
			continue
		}
		p := c.Parts[pid]
		c.hop(p)
		p.Locks.AcquireAll(lock.Owner(id), rs)
		c.hop(p)
		c.mu.Lock()
		c.stats.LockRPCs++
		c.mu.Unlock()
	}
}

func (c *Coordinator) releaseLocks(id txn.ID, reqs []lock.Request) {
	for pid, rs := range c.partitionRequests(reqs) {
		p := c.Parts[pid]
		c.hop(p)
		p.Locks.ReleaseAll(lock.Owner(id), rs)
	}
}

// twoPhaseCommit runs prepare/commit over the partitions with buffered
// writes (plus the coordinator's own shard). Returns ErrAborted when any
// participant votes no; staged state is dropped everywhere. The counters
// reflect only work actually performed: a transaction with an empty write
// set commits without any round, RPC, or hop, and abort messages go only to
// participants that voted yes (a no-voter staged nothing and has nothing to
// drop).
func (c *Coordinator) twoPhaseCommit(id txn.ID, writes map[int][]stagedWrite) error {
	if len(writes) == 0 {
		return nil
	}
	c.mu.Lock()
	c.stats.TwoPCRounds++
	c.mu.Unlock()
	// Phase 1: prepare. staged tracks the yes-voters — the only partitions
	// holding state that a later abort would have to drop.
	staged := make([]int, 0, len(writes))
	allYes := true
	for pid := 0; pid < len(c.Parts); pid++ {
		ws, ok := writes[pid]
		if !ok {
			continue
		}
		p := c.Parts[pid]
		c.hop(p)
		ok = p.prepare(id, ws)
		c.hop(p)
		c.mu.Lock()
		c.stats.PrepareRPCs++
		c.mu.Unlock()
		if !ok {
			allYes = false
			break
		}
		staged = append(staged, pid)
	}
	// Phase 2: commit or abort.
	if !allYes {
		for _, pid := range staged {
			p := c.Parts[pid]
			c.hop(p)
			p.abort(id)
			c.mu.Lock()
			c.stats.AbortRPCs++
			c.mu.Unlock()
		}
		c.mu.Lock()
		c.stats.Aborts++
		c.mu.Unlock()
		return ErrAborted
	}
	for _, pid := range staged {
		p := c.Parts[pid]
		c.hop(p)
		p.commit(id)
		c.mu.Lock()
		c.stats.CommitRPCs++
		c.mu.Unlock()
	}
	c.mu.Lock()
	c.stats.Commits++
	c.mu.Unlock()
	return nil
}

// Run executes a distributed multi-stage transaction to completion:
// initial section, then final section, with lock scope and atomic
// commitment per the configured protocol. The final section runs
// immediately after the initial commit (callers model the cloud round trip
// with clock sleeps between sections via RunInitial/RunFinal).
func (c *Coordinator) Run(t *DistTxn) error {
	h, err := c.RunInitial(t)
	if err != nil {
		return err
	}
	return c.RunFinal(h)
}

// Handle tracks a distributed transaction between its sections.
type Handle struct {
	t       *DistTxn
	id      txn.ID
	allReqs []lock.Request
	// stagedInitial holds MS-SR initial-section writes until the final
	// commit's 2PC; the locks held across both sections make the
	// deferred visibility unobservable to other transactions.
	stagedInitial map[int][]stagedWrite
}

// RunInitial executes the initial section. For MS-SR it acquires both
// sections' locks (Algorithm 1) and defers atomic commitment to the final
// commit; for MS-IA it runs a full 2PC at the initial commit and releases
// the initial locks.
func (c *Coordinator) RunInitial(t *DistTxn) (*Handle, error) {
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	c.mu.Unlock()

	h := &Handle{t: t, id: id}
	ctx := &Ctx{co: c, id: id, writes: map[int][]stagedWrite{}}
	switch c.Protocol {
	case MSSR:
		h.allReqs = lock.Normalize(append(t.InitialRW.Requests(), t.FinalRW.Requests()...))
		c.acquireLocks(id, h.allReqs)
		if err := t.Initial(ctx); err != nil {
			c.releaseLocks(id, h.allReqs)
			return nil, err
		}
		// Writes stay staged at the coordinator until the final 2PC: the
		// locks guarantee nobody observes the gap. Stage them on the
		// handle by merging into the final section's context later.
		h.stagedInitial = ctx.writes
	case MSIA:
		reqs := t.InitialRW.Requests()
		c.acquireLocks(id, reqs)
		err := t.Initial(ctx)
		if err == nil {
			err = c.twoPhaseCommit(id, ctx.writes)
		}
		c.releaseLocks(id, reqs)
		if err != nil {
			return nil, err
		}
	}
	return h, nil
}

// RunFinal executes the final section and the concluding 2PC, releasing
// every remaining lock.
func (c *Coordinator) RunFinal(h *Handle) error {
	ctx := &Ctx{co: c, id: h.id, writes: map[int][]stagedWrite{}}
	switch c.Protocol {
	case MSSR:
		// Initial-section writes commit atomically with the final's.
		for pid, ws := range h.stagedInitial {
			ctx.writes[pid] = append(ctx.writes[pid], ws...)
		}
		err := h.t.Final(ctx)
		if err == nil {
			err = c.twoPhaseCommit(h.id, ctx.writes)
		}
		c.releaseLocks(h.id, h.allReqs)
		return err
	default:
		reqs := h.t.FinalRW.Requests()
		c.acquireLocks(h.id, reqs)
		err := h.t.Final(ctx)
		if err == nil {
			err = c.twoPhaseCommit(h.id, ctx.writes)
		}
		c.releaseLocks(h.id, reqs)
		return err
	}
}

func (h *Handle) String() string {
	return fmt.Sprintf("dist-txn %d (%s)", h.id, h.t.Name)
}
