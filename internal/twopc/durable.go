// Durable partitions: the write-ahead-log side of a sharded fleet. When a
// Partition carries a WAL, every section commit it participates in is
// logged — single-partition commits as a data batch closed by a commit
// marker, multi-partition commits as the participant's staged block (data
// records + prepare marker) followed by the coordinator's decision — so a
// crashed edge rebuilds exactly the committed state with wal.Recover and
// resolves prepared-but-undecided rounds against the coordinator's log
// (presumed abort: no durable commit decision for that round means abort).
//
// A multi-stage transaction runs up to two independent atomic-commitment
// rounds (MS-IA commits at both section boundaries), so all durable state
// here — markers, staged blocks, the decision cache — is keyed by
// CommitRound, never by transaction id alone: an in-doubt final-round
// block must not resolve from the initial round's commit marker.
package twopc

import (
	"fmt"
	"sort"

	"croesus/internal/store"
	"croesus/internal/txn"
	"croesus/internal/wal"
)

// The two atomic-commitment rounds of a multi-stage transaction. MS-IA
// runs RoundInitial at the initial commit and RoundFinal at the final;
// MS-SR runs a single RoundFinal covering both sections' writes.
const (
	RoundInitial uint8 = iota
	RoundFinal
)

// CommitRound identifies one atomic-commitment round of one transaction —
// the key every piece of durable 2PC state lives under.
type CommitRound struct {
	ID    txn.ID
	Round uint8
}

// TxnRound converts to the wal-level key.
func (cr CommitRound) TxnRound() wal.TxnRound {
	return wal.TxnRound{Txn: uint64(cr.ID), Round: cr.Round}
}

func (cr CommitRound) less(o CommitRound) bool {
	return cr.TxnRound().Less(o.TxnRound())
}

// walStage is a prepared-but-undecided commit-round block held by a
// participant between the prepare vote and the decision.
type walStage struct {
	coord int
	recs  []wal.Record
	// fromRecovery marks a block re-installed by crash recovery: its
	// writes are not in the rebuilt store and must be applied if the
	// decision turns out to be commit. A live block's writes were applied
	// eagerly under locks during section execution and need no re-apply.
	fromRecovery bool
	// stagedAt is the partition's data-record sequence at restage time:
	// a key that logged a newer data record while the block sat in doubt
	// (a retraction restore, a later transaction's commit — the crash
	// freed this block's locks) supersedes the staged write, exactly as
	// wal.Recover resolves by log position.
	stagedAt int64
}

// Durable reports whether this partition logs to a WAL.
func (p *Partition) Durable() bool { return p.WAL != nil }

// mustAppend logs records or panics: in the simulation a WAL write error is
// a harness bug (unwritable temp dir), not a modeled fault. Data records
// also advance the partition's live last-writer index, which deferred
// in-doubt resolutions consult. The partition lock is held across the
// append so a concurrent Checkpoint cannot swap the log out from under a
// half-written batch.
func (p *Partition) mustAppend(recs ...wal.Record) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.WAL == nil {
		return
	}
	for _, r := range recs {
		if r.Op == wal.OpPut || r.Op == wal.OpDelete {
			p.walDataSeq++
			if p.walLastData == nil {
				p.walLastData = make(map[string]int64)
			}
			p.walLastData[r.Key] = p.walDataSeq
		}
	}
	if err := p.WAL.AppendBatch(recs); err != nil {
		panic(fmt.Sprintf("twopc: partition %d wal append: %v", p.ID, err))
	}
	p.WALAppends.Add(int64(len(recs)))
}

// RedoRecords captures the redo batch for a section commit: each key's
// current store value, read under the section's still-held exclusive locks.
func (p *Partition) RedoRecords(cr CommitRound, keys []string) []wal.Record {
	sorted := append([]string{}, keys...)
	sort.Strings(sorted)
	recs := make([]wal.Record, 0, len(sorted))
	for _, k := range sorted {
		if v, ok := p.Store.Get(k); ok {
			recs = append(recs, wal.Record{Op: wal.OpPut, Txn: uint64(cr.ID), Round: cr.Round, Key: k, Value: v})
		} else {
			recs = append(recs, wal.Record{Op: wal.OpDelete, Txn: uint64(cr.ID), Round: cr.Round, Key: k})
		}
	}
	return recs
}

// LogLocalCommit durably commits a single-partition section: the data
// records and the commit marker land in one batch, so a torn tail can only
// lose the whole commit (presumed abort), never half of it.
func (p *Partition) LogLocalCommit(cr CommitRound, recs []wal.Record) {
	p.mustAppend(append(recs, wal.Record{Op: wal.OpCommit, Txn: uint64(cr.ID), Round: cr.Round})...)
}

// StagePrepare stages a participant's share of a multi-partition commit:
// data records plus the prepare marker (naming the coordinator) in one
// durable batch, and the block remembered in memory until the decision.
func (p *Partition) StagePrepare(cr CommitRound, coord int, recs []wal.Record) {
	p.mustAppend(append(recs, wal.Record{Op: wal.OpPrepare, Txn: uint64(cr.ID), Round: cr.Round, Coord: coord})...)
	p.mu.Lock()
	if p.walStaged == nil {
		p.walStaged = make(map[CommitRound]*walStage)
	}
	p.walStaged[cr] = &walStage{coord: coord, recs: recs}
	p.mu.Unlock()
}

// LogDecision records this partition's durable commit/abort decision as the
// coordinator of cr's atomic commitment. Participants in doubt inquire here.
func (p *Partition) LogDecision(cr CommitRound, commit bool) {
	op := wal.OpAbort
	if commit {
		op = wal.OpCommit
	}
	p.mustAppend(wal.Record{Op: op, Txn: uint64(cr.ID), Round: cr.Round})
	p.mu.Lock()
	if p.decisions == nil {
		p.decisions = make(map[CommitRound]bool)
	}
	p.decisions[cr] = commit
	p.mu.Unlock()
}

// Decision reports the outcome this partition decided (as coordinator) for
// exactly the round cr, and whether any decision is known. Unknown means
// presumed abort for an inquiring participant; the same transaction's other
// commit round never answers for this one.
func (p *Partition) Decision(cr CommitRound) (commit, known bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	commit, known = p.decisions[cr]
	return commit, known
}

// DeliverDecision completes a staged block: the decision marker is logged
// and the block cleared. A recovery-restaged commit applies its writes (the
// rebuilt store does not have them) — except writes whose key logged a
// newer data record while the block sat in doubt, which are superseded
// (last-writer-wins by log position, matching wal.Recover). A live block's
// writes were applied eagerly during the section, and an aborted live
// block was already undone by the coordinator's retraction.
func (p *Partition) DeliverDecision(cr CommitRound, commit bool) {
	p.mu.Lock()
	st := p.walStaged[cr]
	delete(p.walStaged, cr)
	var lastData map[string]int64
	if st != nil && commit && st.fromRecovery {
		lastData = make(map[string]int64, len(st.recs))
		for _, r := range st.recs {
			lastData[r.Key] = p.walLastData[r.Key]
		}
	}
	p.mu.Unlock()
	if st == nil {
		return
	}
	if commit && st.fromRecovery {
		for _, r := range st.recs {
			if lastData[r.Key] > st.stagedAt {
				continue // superseded while in doubt
			}
			switch r.Op {
			case wal.OpPut:
				p.Store.Put(r.Key, r.Value)
			case wal.OpDelete:
				p.Store.Delete(r.Key)
			}
		}
	}
	op := wal.OpAbort
	if commit {
		op = wal.OpCommit
	}
	p.mustAppend(wal.Record{Op: op, Txn: uint64(cr.ID), Round: cr.Round})
}

// Restage re-installs an in-doubt block found by crash recovery, to be
// resolved by DeliverDecision once the coordinator's outcome is known. The
// current data-record sequence is stamped so a resolution — possibly much
// later, deferred across a link partition — can tell which staged writes
// newer records superseded in the meantime.
func (p *Partition) Restage(cr CommitRound, coord int, recs []wal.Record) {
	p.mu.Lock()
	if p.walStaged == nil {
		p.walStaged = make(map[CommitRound]*walStage)
	}
	p.walStaged[cr] = &walStage{coord: coord, recs: recs, fromRecovery: true, stagedAt: p.walDataSeq}
	p.mu.Unlock()
}

// StagedBy lists the staged commit rounds coordinated by coord, ascending
// by (txn, round).
func (p *Partition) StagedBy(coord int) []CommitRound {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []CommitRound
	for cr, st := range p.walStaged {
		if st.coord == coord {
			out = append(out, cr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

// StagedCoords lists the distinct coordinators of every staged block,
// ascending — what an end-of-run sweep iterates to drain the fleet.
func (p *Partition) StagedCoords() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	seen := map[int]bool{}
	for _, st := range p.walStaged {
		seen[st.coord] = true
	}
	out := make([]int, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// RestoreDecisions replaces the in-memory decision cache with the set
// recovered from this partition's log.
func (p *Partition) RestoreDecisions(d map[wal.TxnRound]bool) {
	p.mu.Lock()
	p.decisions = make(map[CommitRound]bool, len(d))
	for k, c := range d {
		p.decisions[CommitRound{ID: txn.ID(k.Txn), Round: k.Round}] = c
	}
	p.mu.Unlock()
}

// Checkpoint rewrites this partition's write-ahead log as a compact
// equivalent — the full committed store snapshot as non-transactional puts,
// the durable decision cache (so in-doubt peers can still inquire here),
// and any recovery-restaged in-doubt blocks (data records plus prepare
// marker, minus writes newer records already superseded) — atomically
// replacing the old log. Recovery from the new log reaches exactly the
// state recovery from the old one would, but replays only the live records:
// this is what bounds replay time on a long-running fleet.
//
// A checkpoint is skipped (ok false) while a *live* 2PC block is staged:
// its eager writes are in the store but its pre-images are not, so a
// snapshot taken mid-round could not represent the abort outcome. The
// caller retries after the round's decision lands.
func (p *Partition) Checkpoint() (records int, ok bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.WAL == nil {
		return 0, false, nil
	}
	for _, st := range p.walStaged {
		if !st.fromRecovery {
			return 0, false, nil
		}
	}

	snap := p.Store.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	recs := make([]wal.Record, 0, len(keys)+len(p.decisions))
	for _, k := range keys {
		recs = append(recs, wal.Record{Op: wal.OpPut, Key: k, Value: snap[k]})
	}
	crs := make([]CommitRound, 0, len(p.decisions))
	for cr := range p.decisions {
		crs = append(crs, cr)
	}
	sort.Slice(crs, func(i, j int) bool { return crs[i].less(crs[j]) })
	for _, cr := range crs {
		op := wal.OpAbort
		if p.decisions[cr] {
			op = wal.OpCommit
		}
		recs = append(recs, wal.Record{Op: op, Txn: uint64(cr.ID), Round: cr.Round})
	}
	staged := make([]CommitRound, 0, len(p.walStaged))
	for cr := range p.walStaged {
		staged = append(staged, cr)
	}
	sort.Slice(staged, func(i, j int) bool { return staged[i].less(staged[j]) })
	// Per-block live write sets, superseded writes already dropped; the
	// blocks re-stage over the new log's positions below.
	liveRecs := make([][]wal.Record, len(staged))
	for i, cr := range staged {
		st := p.walStaged[cr]
		for _, r := range st.recs {
			if p.walLastData[r.Key] > st.stagedAt {
				continue
			}
			liveRecs[i] = append(liveRecs[i], r)
		}
		block := append(append([]wal.Record{}, liveRecs[i]...),
			wal.Record{Op: wal.OpPrepare, Txn: uint64(cr.ID), Round: cr.Round, Coord: st.coord})
		recs = append(recs, block...)
	}

	path := p.WAL.Path()
	noSync := p.WAL.NoSync
	if err := p.WAL.Close(); err != nil {
		return 0, false, err
	}
	if err := wal.Rewrite(path, recs, noSync); err != nil {
		return 0, false, err
	}
	log, err := wal.Open(path)
	if err != nil {
		return 0, false, err
	}
	log.NoSync = noSync
	p.WAL = log

	// Rebuild the last-writer index over the new log's positions and
	// re-stamp the restaged blocks, preserving log-order supersession.
	p.walDataSeq = 0
	p.walLastData = make(map[string]int64, len(keys))
	bump := func(rs []wal.Record) {
		for _, r := range rs {
			if r.Op == wal.OpPut || r.Op == wal.OpDelete {
				p.walDataSeq++
				p.walLastData[r.Key] = p.walDataSeq
			}
		}
	}
	for _, k := range keys {
		p.walDataSeq++
		p.walLastData[k] = p.walDataSeq
	}
	for i, cr := range staged {
		st := p.walStaged[cr]
		st.recs = liveRecs[i]
		bump(st.recs)
		st.stagedAt = p.walDataSeq
	}
	return len(recs), true, nil
}

// CloseWAL closes the partition's current log (checkpoints may have swapped
// it since provisioning), releasing the file handle.
func (p *Partition) CloseWAL() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.WAL == nil {
		return nil
	}
	return p.WAL.Close()
}

// CrashReset drops every piece of volatile protocol state — staged blocks,
// prepare votes, the decision cache — modeling the fail-stop loss of the
// edge process's memory. The WAL (and the store object, which recovery
// rebuilds in place) survive.
func (p *Partition) CrashReset() {
	p.mu.Lock()
	p.staged = make(map[txn.ID][]stagedWrite)
	p.prepared = make(map[txn.ID]bool)
	p.walStaged = nil
	p.decisions = nil
	p.mu.Unlock()
}

// JournaledShardedStore wraps a ShardedStore so every mutation is also
// appended to the owning partition's WAL as a non-transactional record. It
// is the RestoreDB of a durable fleet's transaction manager: retraction
// cascades re-install before-images through it, so a partition recovered
// from its log agrees with the live store even after a cascade crossed it.
type JournaledShardedStore struct {
	*ShardedStore
}

// Put journals then applies. The route is resolved once (behind the shard
// map's cutover barrier) so the journal record and the live write land on
// the same partition even while a migration rebinds the shard.
func (s JournaledShardedStore) Put(key string, v store.Value) uint64 {
	pi := s.route(key)
	s.Parts[pi].mustAppend(wal.Record{Op: wal.OpPut, Key: key, Value: v})
	return s.Parts[pi].Store.Put(key, v)
}

// Delete journals then applies.
func (s JournaledShardedStore) Delete(key string) bool {
	pi := s.route(key)
	s.Parts[pi].mustAppend(wal.Record{Op: wal.OpDelete, Key: key})
	return s.Parts[pi].Store.Delete(key)
}
