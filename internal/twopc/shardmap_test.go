package twopc

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"croesus/internal/lock"
	"croesus/internal/netsim"
	"croesus/internal/store"
	"croesus/internal/transport"
	"croesus/internal/txn"
	"croesus/internal/vclock"
	"croesus/internal/workload"
)

// mappedFleet builds a two-partition fleet routed through a shard map
// (shard 0 → partition 0, shard 1 → partition 1) with symmetric 5ms peer
// links, and one ShardedCC per home edge.
func mappedFleet(clk vclock.Clock) (*ShardMap, []*ShardedCC, []*Partition) {
	parts := []*Partition{
		NewPartitionOver(0, store.New(), lock.NewManager(clk)),
		NewPartitionOver(1, store.New(), lock.NewManager(clk)),
	}
	smap := IdentityShardMap(2)
	mgr := txn.NewManager(clk, nil, nil)
	mgr.DB = &ShardedStore{Parts: parts, Partitioner: smap.Lookup, Map: smap, Clk: clk}
	link01 := &netsim.Link{Name: "0-1", Propagation: 5 * time.Millisecond}
	link10 := &netsim.Link{Name: "1-0", Propagation: 5 * time.Millisecond}
	stats := &DistStats{}
	ccs := []*ShardedCC{
		{Clk: clk, M: mgr, Home: 0, Parts: parts, Links: []transport.Path{nil, link01}, Partitioner: smap.Lookup, Map: smap, Protocol: MSIA, Stats: stats},
		{Clk: clk, M: mgr, Home: 1, Parts: parts, Links: []transport.Path{link10, nil}, Partitioner: smap.Lookup, Map: smap, Protocol: MSIA, Stats: stats},
	}
	return smap, ccs, parts
}

func shardTxn(name string, keys ...string) *txn.Txn {
	body := func(c *txn.Ctx) error {
		for _, k := range keys {
			c.Put(k, store.StringValue(name))
		}
		return nil
	}
	return &txn.Txn{
		Name:      name,
		InitialRW: txn.RWSet{Writes: keys},
		FinalRW:   txn.RWSet{Writes: keys},
		Initial:   body,
		Final:     body,
	}
}

// TestShardMapLookupAndIntentOrdering pins the routing contract: tagged
// keys follow the owner table, untagged keys hash, and the shard intent key
// sorts before every data key of its shard so AcquireAll's sorted batches
// quiesce the shard before touching its data locks.
func TestShardMapLookupAndIntentOrdering(t *testing.T) {
	smap := IdentityShardMap(3)
	if got := smap.Lookup(workload.ShardKey(2, "item", 5)); got != 2 {
		t.Errorf("s2 key routed to %d", got)
	}
	if smap.Epoch() != 0 {
		t.Errorf("fresh map epoch = %d", smap.Epoch())
	}
	if k, dk := ShardIntentKey(1), workload.ShardKey(1, "item", 0); !(k < dk) {
		t.Errorf("intent key %q must sort before data key %q", k, dk)
	}
	if got := smap.Lookup(ShardIntentKey(1)); got != 1 {
		t.Errorf("intent key routed to %d, want its shard's home 1", got)
	}
}

// TestMigrateShardMovesEveryKey migrates a live shard while transactions
// from both edges keep writing it: afterwards every shard-0 key lives on
// the destination, none on the source, nothing is duplicated, and
// transactions that woke into the moved map retried rather than stranding
// writes — the no-key-lost / no-key-duplicated / one-epoch-at-a-time
// migration invariant at the protocol level.
func TestMigrateShardMovesEveryKey(t *testing.T) {
	clk := vclock.NewSim()
	smap, ccs, parts := mappedFleet(clk)

	written := make(map[string]bool)
	var wmu sync.Mutex
	writer := func(cc *ShardedCC, n int, shard int, delay time.Duration) func() {
		return func() {
			for i := 0; i < n; i++ {
				clk.Sleep(delay)
				k := workload.ShardKey(shard, "item", i)
				in := cc.M.NewInstance(shardTxn(fmt.Sprintf("w%d-%d", cc.Home, i), k), nil)
				if err := cc.RunInitial(in); err != nil {
					continue
				}
				clk.Sleep(2 * time.Millisecond) // a short "cloud" gap
				if err := cc.RunFinal(in); err != nil {
					continue
				}
				wmu.Lock()
				written[k] = true
				wmu.Unlock()
			}
		}
	}

	var migErr error
	mg := &ShardMigration{
		Clk:   clk,
		Map:   smap,
		Parts: parts,
		Shard: 0,
		From:  0,
		To:    1,
		Link:  ccs[0].Links[1],
	}
	mg.Reverse = ccs[1].Links[0]

	clk.Go(writer(ccs[0], 30, 0, 3*time.Millisecond))
	clk.Go(writer(ccs[1], 30, 0, 4*time.Millisecond))
	clk.Go(func() {
		clk.Sleep(40 * time.Millisecond) // land mid-traffic
		migErr = mg.Run()
	})
	clk.Wait()

	if migErr != nil {
		t.Fatalf("migration: %v", migErr)
	}
	if got := smap.Owner(0); got != 1 {
		t.Fatalf("shard 0 owned by %d after migration", got)
	}
	if smap.Epoch() == 0 {
		t.Fatal("epoch never advanced")
	}
	src, dst := parts[0].Store.Snapshot(), parts[1].Store.Snapshot()
	for k := range src {
		if s, ok := workload.ShardOf(k); ok && s == 0 {
			t.Errorf("shard-0 key %q still on the source partition", k)
		}
	}
	wmu.Lock()
	defer wmu.Unlock()
	if len(written) == 0 {
		t.Fatal("no transaction committed; the test is vacuous")
	}
	for k := range written {
		if _, ok := dst[k]; !ok {
			t.Errorf("committed key %q lost by the migration", k)
		}
	}
	if mg.Moved == 0 {
		t.Error("migration reports zero keys moved")
	}
}

// TestMigrateShardDeterministic replays the concurrent-migration schedule
// and demands identical stores and counters.
func TestMigrateShardDeterministic(t *testing.T) {
	run := func() (string, DistCounters) {
		clk := vclock.NewSim()
		smap, ccs, parts := mappedFleet(clk)
		mg := &ShardMigration{Clk: clk, Map: smap, Parts: parts, Shard: 0, From: 0, To: 1, Link: ccs[0].Links[1], Reverse: ccs[1].Links[0]}
		for e, cc := range ccs {
			e, cc := e, cc
			clk.Go(func() {
				for i := 0; i < 20; i++ {
					clk.Sleep(3 * time.Millisecond)
					k := workload.ShardKey(0, "item", i)
					k2 := workload.ShardKey(1, "item", i)
					in := cc.M.NewInstance(shardTxn(fmt.Sprintf("d%d-%d", e, i), k, k2), nil)
					if cc.RunInitial(in) == nil {
						clk.Sleep(time.Millisecond)
						cc.RunFinal(in)
					}
				}
			})
		}
		clk.Go(func() {
			clk.Sleep(25 * time.Millisecond)
			if err := mg.Run(); err != nil {
				t.Errorf("migration: %v", err)
			}
		})
		clk.Wait()
		return fmt.Sprintf("%v|%v", parts[0].Store.Snapshot(), parts[1].Store.Snapshot()), ccs[0].Stats.Snapshot()
	}
	s1, c1 := run()
	s2, c2 := run()
	if s1 != s2 || c1 != c2 {
		t.Fatalf("concurrent migration not deterministic:\n%s\n%+v\nvs\n%s\n%+v", s1, c1, s2, c2)
	}
}
