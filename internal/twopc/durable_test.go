package twopc

import (
	"path/filepath"
	"testing"

	"croesus/internal/lock"
	"croesus/internal/store"
	"croesus/internal/vclock"
	"croesus/internal/wal"
)

// A deferred in-doubt resolution must not clobber state that changed while
// the block sat staged (the crash freed its locks): DeliverDecision skips
// staged writes whose key logged a newer data record since restage, and
// the live store must agree with what the log recovers to.
func TestRestagedCommitSkipsSupersededWrites(t *testing.T) {
	clk := vclock.NewSim()
	p := NewPartitionOver(0, store.New(), lock.NewManager(clk))
	path := filepath.Join(t.TempDir(), "p.wal")
	l, err := wal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	p.WAL = l

	// The pre-crash participant staged this block durably (data records +
	// prepare marker), then the edge crashed and recovery restaged it.
	cr := CommitRound{ID: 9, Round: RoundFinal}
	recs := []wal.Record{
		{Op: wal.OpPut, Txn: uint64(cr.ID), Round: cr.Round, Key: "k", Value: store.Int64Value(1)},
		{Op: wal.OpPut, Txn: uint64(cr.ID), Round: cr.Round, Key: "j", Value: store.Int64Value(2)},
	}
	if err := l.AppendBatch(append(append([]wal.Record{}, recs...),
		wal.Record{Op: wal.OpPrepare, Txn: uint64(cr.ID), Round: cr.Round, Coord: 0})); err != nil {
		t.Fatal(err)
	}
	p.Restage(cr, 0, recs)

	// While the block is in doubt, a retraction restore overwrites k
	// through the journaling backend — a newer data record.
	js := JournaledShardedStore{ShardedStore: &ShardedStore{
		Parts:       []*Partition{p},
		Partitioner: func(string) int { return 0 },
	}}
	js.Put("k", store.Int64Value(7))

	// The deferred decision arrives: commit. k was superseded, j was not.
	p.DeliverDecision(cr, true)
	if v, _ := p.Store.Get("k"); store.AsInt64(v) != 7 {
		t.Errorf("k = %v, want the later journaled 7 (staged write superseded)", v)
	}
	if v, ok := p.Store.Get("j"); !ok || store.AsInt64(v) != 2 {
		t.Errorf("j = %v %v, want the unsuperseded staged 2", v, ok)
	}

	// Replay must reach the same state by its log-position rule.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := wal.Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InDoubt) != 0 {
		t.Fatalf("in-doubt after resolution: %+v", res.InDoubt)
	}
	for k, want := range map[string]int64{"k": 7, "j": 2} {
		if v, ok := res.Store.Get(k); !ok || store.AsInt64(v) != want {
			t.Errorf("recovered %s = %v %v, want %d", k, v, ok, want)
		}
	}
	if !res.Decisions[cr.TxnRound()] {
		t.Error("commit decision missing from the log")
	}
}
