package twopc

import (
	"errors"
	"testing"

	"croesus/internal/netsim"
	"croesus/internal/store"
	"croesus/internal/transport"
	"croesus/internal/txn"
	"croesus/internal/vclock"
)

func cluster(clk vclock.Clock, n int) []*Partition {
	parts := make([]*Partition, n)
	for i := range parts {
		var link transport.Path
		if i != 0 {
			link = netsim.EdgeCloudSameSite()
		}
		parts[i] = NewPartition(i, clk, link)
	}
	return parts
}

// crossTxn writes one key per partition so the transaction always spans
// every shard.
func crossTxn(c *Coordinator, name string, val int64) (*DistTxn, []string) {
	keys := make([]string, 0, len(c.Parts))
	seen := map[int]bool{}
	for i := 0; len(keys) < len(c.Parts); i++ {
		k := store.ItoaKey("k", i)
		pid := c.Partitioner(k)
		if !seen[pid] {
			seen[pid] = true
			keys = append(keys, k)
		}
	}
	var rw []string
	rw = append(rw, keys...)
	t := &DistTxn{
		Name:      name,
		InitialRW: rwSet(rw), FinalRW: rwSet(rw),
		Initial: func(ctx *Ctx) error {
			for _, k := range keys {
				ctx.Put(k, store.Int64Value(val))
			}
			return nil
		},
		Final: func(ctx *Ctx) error {
			for _, k := range keys {
				v, ok := ctx.Get(k)
				if !ok || store.AsInt64(v) != val {
					return errors.New("final section read inconsistent value")
				}
				ctx.Put(k, store.Int64Value(val*10))
			}
			return nil
		},
	}
	return t, keys
}

func rwSet(keys []string) txn.RWSet {
	return txn.RWSet{Writes: keys}
}

func TestMSIACommitAcrossPartitions(t *testing.T) {
	s := vclock.NewSim()
	parts := cluster(s, 3)
	co := NewCoordinator(s, parts, MSIA)
	tx, keys := crossTxn(co, "cross", 7)
	s.Run(func() {
		if err := co.Run(tx); err != nil {
			t.Errorf("Run: %v", err)
		}
	})
	for _, k := range keys {
		p := parts[co.Partitioner(k)]
		v, ok := p.Store.Get(k)
		if !ok || store.AsInt64(v) != 70 {
			t.Errorf("key %q = %v %v, want 70", k, store.AsInt64(v), ok)
		}
	}
	st := co.Stats()
	if st.Commits != 2 { // one 2PC per section under MS-IA
		t.Errorf("commits = %d, want 2", st.Commits)
	}
	if st.TwoPCRounds != 2 {
		t.Errorf("rounds = %d, want 2 (both commits atomic under MS-IA)", st.TwoPCRounds)
	}
}

func TestMSSRSingleAtomicCommit(t *testing.T) {
	s := vclock.NewSim()
	parts := cluster(s, 3)
	co := NewCoordinator(s, parts, MSSR)
	tx, keys := crossTxn(co, "cross", 3)
	s.Run(func() {
		if err := co.Run(tx); err != nil {
			t.Errorf("Run: %v", err)
		}
	})
	for _, k := range keys {
		p := parts[co.Partitioner(k)]
		if v, _ := p.Store.Get(k); store.AsInt64(v) != 30 {
			t.Errorf("key %q = %d, want 30", k, store.AsInt64(v))
		}
	}
	st := co.Stats()
	if st.TwoPCRounds != 1 {
		t.Errorf("rounds = %d, want 1 (MS-SR commits once, at the final)", st.TwoPCRounds)
	}
}

func TestMSIAInitialVisibleBeforeFinal(t *testing.T) {
	// Under MS-IA the initial section's writes are durable (and visible)
	// after the initial 2PC, before the final section runs.
	s := vclock.NewSim()
	parts := cluster(s, 2)
	co := NewCoordinator(s, parts, MSIA)
	tx, keys := crossTxn(co, "cross", 5)
	s.Run(func() {
		h, err := co.RunInitial(tx)
		if err != nil {
			t.Errorf("initial: %v", err)
			return
		}
		for _, k := range keys {
			p := parts[co.Partitioner(k)]
			if v, ok := p.Store.Get(k); !ok || store.AsInt64(v) != 5 {
				t.Errorf("key %q not visible after MS-IA initial commit", k)
			}
		}
		if err := co.RunFinal(h); err != nil {
			t.Errorf("final: %v", err)
		}
	})
}

func TestMSSRInitialInvisibleBeforeFinal(t *testing.T) {
	// Under MS-SR the initial writes are staged until the final 2PC.
	s := vclock.NewSim()
	parts := cluster(s, 2)
	co := NewCoordinator(s, parts, MSSR)
	tx, keys := crossTxn(co, "cross", 5)
	s.Run(func() {
		h, err := co.RunInitial(tx)
		if err != nil {
			t.Errorf("initial: %v", err)
			return
		}
		for _, k := range keys {
			p := parts[co.Partitioner(k)]
			if _, ok := p.Store.Get(k); ok {
				t.Errorf("key %q visible before MS-SR final commit", k)
			}
		}
		if err := co.RunFinal(h); err != nil {
			t.Errorf("final: %v", err)
		}
		for _, k := range keys {
			p := parts[co.Partitioner(k)]
			if v, _ := p.Store.Get(k); store.AsInt64(v) != 50 {
				t.Errorf("key %q = %d after final, want 50", k, store.AsInt64(v))
			}
		}
	})
}

func TestPrepareFailureAbortsEverywhere(t *testing.T) {
	s := vclock.NewSim()
	parts := cluster(s, 3)
	co := NewCoordinator(s, parts, MSIA)
	// Fail the prepare on whichever partition owns the second key group.
	parts[1].FailPrepares = 1
	tx, keys := crossTxn(co, "doomed", 9)
	var err error
	s.Run(func() {
		err = co.Run(tx)
	})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	// No partition may hold committed or staged state.
	for _, k := range keys {
		p := parts[co.Partitioner(k)]
		if _, ok := p.Store.Get(k); ok {
			t.Errorf("partition %d committed despite abort", p.ID)
		}
	}
	for _, p := range parts {
		p.mu.Lock()
		staged := len(p.staged)
		p.mu.Unlock()
		if staged != 0 {
			t.Errorf("partition %d left %d staged writes", p.ID, staged)
		}
	}
	if st := co.Stats(); st.Aborts != 1 {
		t.Errorf("aborts = %d, want 1", st.Aborts)
	}
}

func TestLocksReleasedAfterAbort(t *testing.T) {
	s := vclock.NewSim()
	parts := cluster(s, 2)
	co := NewCoordinator(s, parts, MSIA)
	parts[0].FailPrepares = 1
	tx, keys := crossTxn(co, "doomed", 1)
	s.Run(func() {
		co.Run(tx)
		// A fresh transaction over the same keys must proceed.
		tx2, _ := crossTxn(co, "retry", 2)
		if err := co.Run(tx2); err != nil {
			t.Errorf("retry after abort: %v", err)
		}
	})
	for _, k := range keys {
		p := parts[co.Partitioner(k)]
		if v, _ := p.Store.Get(k); store.AsInt64(v) != 20 {
			t.Errorf("key %q = %d, want 20", k, store.AsInt64(v))
		}
	}
}

func TestNetworkCostCharged(t *testing.T) {
	s := vclock.NewSim()
	parts := cluster(s, 3)
	co := NewCoordinator(s, parts, MSIA)
	tx, _ := crossTxn(co, "cross", 4)
	s.Run(func() {
		if err := co.Run(tx); err != nil {
			t.Fatal(err)
		}
	})
	if s.Now() == 0 {
		t.Error("distributed transaction consumed no network time")
	}
	var remoteMsgs int64
	for _, p := range parts[1:] {
		_, m := p.Link.Traffic()
		remoteMsgs += m
	}
	if remoteMsgs == 0 {
		t.Error("no messages sent to remote partitions")
	}
}

func TestBufferedReadsSeeOwnWrites(t *testing.T) {
	s := vclock.NewSim()
	parts := cluster(s, 2)
	co := NewCoordinator(s, parts, MSIA)
	tx := &DistTxn{
		Name:      "rmw",
		InitialRW: rwSet([]string{"k:0"}),
		FinalRW:   rwSet([]string{"k:0"}),
		Initial: func(ctx *Ctx) error {
			ctx.Put("k:0", store.Int64Value(1))
			v, ok := ctx.Get("k:0")
			if !ok || store.AsInt64(v) != 1 {
				return errors.New("own write invisible")
			}
			ctx.Delete("k:0")
			if _, ok := ctx.Get("k:0"); ok {
				return errors.New("own delete invisible")
			}
			ctx.Put("k:0", store.Int64Value(2))
			return nil
		},
		Final: func(ctx *Ctx) error { return nil },
	}
	s.Run(func() {
		if err := co.Run(tx); err != nil {
			t.Errorf("Run: %v", err)
		}
	})
	p := parts[co.Partitioner("k:0")]
	if v, _ := p.Store.Get("k:0"); store.AsInt64(v) != 2 {
		t.Errorf("k:0 = %d, want 2", store.AsInt64(v))
	}
}

func TestProtocolStrings(t *testing.T) {
	if MSSR.String() != "MS-SR" || MSIA.String() != "MS-IA" {
		t.Error("protocol strings wrong")
	}
}

// TestBufferedReadsNonIdentityIDs is the regression test for the write-
// buffer keying bug: Put/Delete key the buffer by partitioner index while
// Get used to scan writes[Partition.ID] — the two disagree as soon as
// Parts[i].ID != i, silently breaking read-your-writes.
func TestBufferedReadsNonIdentityIDs(t *testing.T) {
	s := vclock.NewSim()
	parts := cluster(s, 2)
	parts[0].ID, parts[1].ID = 10, 20 // IDs deliberately off the slice index
	co := NewCoordinator(s, parts, MSIA)
	tx := &DistTxn{
		Name:      "rmw-nonid",
		InitialRW: rwSet([]string{"k:0"}),
		FinalRW:   rwSet([]string{"k:0"}),
		Initial: func(ctx *Ctx) error {
			ctx.Put("k:0", store.Int64Value(7))
			v, ok := ctx.Get("k:0")
			if !ok || store.AsInt64(v) != 7 {
				return errors.New("own write invisible under non-identity partition IDs")
			}
			ctx.Delete("k:0")
			if _, ok := ctx.Get("k:0"); ok {
				return errors.New("own delete invisible under non-identity partition IDs")
			}
			ctx.Put("k:0", store.Int64Value(8))
			return nil
		},
		Final: func(ctx *Ctx) error { return nil },
	}
	s.Run(func() {
		if err := co.Run(tx); err != nil {
			t.Errorf("Run: %v", err)
		}
	})
	p := parts[co.Partitioner("k:0")]
	if v, _ := p.Store.Get("k:0"); store.AsInt64(v) != 8 {
		t.Errorf("k:0 = %d, want 8", store.AsInt64(v))
	}
}

// TestEmptyWriteSetCostsNothing: a read-only (or write-free) section must
// not count a 2PC round or a commit, and must pay no prepare/commit hops.
func TestEmptyWriteSetCostsNothing(t *testing.T) {
	s := vclock.NewSim()
	parts := cluster(s, 3)
	co := NewCoordinator(s, parts, MSIA)
	tx := &DistTxn{
		Name:      "read-only",
		InitialRW: txn.RWSet{Reads: []string{"k:0"}},
		FinalRW:   txn.RWSet{Reads: []string{"k:0"}},
		Initial:   func(ctx *Ctx) error { ctx.Get("k:0"); return nil },
		Final:     func(ctx *Ctx) error { return nil },
	}
	var before, after int64
	for _, p := range parts[1:] {
		_, m := p.Link.Traffic()
		before += m
	}
	s.Run(func() {
		if err := co.Run(tx); err != nil {
			t.Fatalf("Run: %v", err)
		}
	})
	st := co.Stats()
	if st.TwoPCRounds != 0 || st.Commits != 0 || st.PrepareRPCs != 0 || st.CommitRPCs != 0 {
		t.Errorf("empty write set still paid commit machinery: %+v", st)
	}
	for _, p := range parts[1:] {
		_, m := p.Link.Traffic()
		after += m
	}
	// The only remote messages allowed are lock/read/release traffic for
	// the partition owning k:0 — at most acquire (2) + read (2) +
	// release (1) per section — and nothing for prepare/commit.
	if msgs := after - before; msgs > 8 {
		t.Errorf("read-only transaction sent %d remote messages, want ≤ 8 (no prepare/commit traffic)", msgs)
	}
}

// TestAbortRPCsOnlyToStagedParticipants: a participant that votes no has
// staged nothing — abort messages go only to the yes-voters before it.
func TestAbortRPCsOnlyToStagedParticipants(t *testing.T) {
	s := vclock.NewSim()
	parts := cluster(s, 3)
	co := NewCoordinator(s, parts, MSIA)
	// The partition owning the second key group votes no; by then exactly
	// one participant (the first key group's) has staged.
	parts[1].FailPrepares = 1
	tx, _ := crossTxn(co, "doomed", 3)
	s.Run(func() {
		if err := co.Run(tx); !errors.Is(err, ErrAborted) {
			t.Fatalf("err = %v, want ErrAborted", err)
		}
	})
	st := co.Stats()
	if st.PrepareRPCs != 2 {
		t.Errorf("prepare RPCs = %d, want 2 (the third participant was never asked)", st.PrepareRPCs)
	}
	if st.AbortRPCs != 1 {
		t.Errorf("abort RPCs = %d, want 1 — only the yes-voter staged anything", st.AbortRPCs)
	}
	if st.CommitRPCs != 0 || st.Commits != 0 {
		t.Errorf("aborted transaction counted commits: %+v", st)
	}
}
