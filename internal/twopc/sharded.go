// Sharded fleet keyspace: the §4.5 multi-partition machinery wired into the
// pipeline-facing txn.CC seam. Each edge node of a cluster hosts one
// Partition of a single fleet-wide database; a per-edge ShardedCC routes
// every triggered transaction's declared RW-set through the owning
// partitions — local keys run exactly as on a standalone edge, cross-edge
// keys acquire remote locks over the inter-edge links in global partition
// order and commit with a two-phase commit at the section boundaries the
// multi-stage protocol dictates (MS-IA at both commits, MS-SR once at the
// final commit). Undo logging, dependency tracking, and retraction cascades
// live in the one fleet-wide txn.Manager, so a retraction started on one
// edge undoes dependent writes on every other edge it reached.
//
// When the fleet is durable (partitions carry WALs) and a FaultOracle is
// installed, the protocol additionally survives fail-stop crashes: every
// section commit is logged before it counts, prepare votes and commit
// decisions are durable, a transaction that loses a partition mid-flight
// aborts or retracts instead of committing on lost state, and a recovering
// edge resolves its in-doubt transactions against the coordinator's log
// (presumed abort). internal/faults drives the crashes and the recovery.
package twopc

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"croesus/internal/lock"
	"croesus/internal/obs"
	"croesus/internal/store"
	"croesus/internal/transport"
	"croesus/internal/txn"
	"croesus/internal/vclock"
	"croesus/internal/wire"
	"croesus/internal/workload"
)

// NewPartitionOver returns a partition wrapping an existing store and lock
// manager — the cluster runtime shards the fleet keyspace over the stores
// its edge nodes already own.
func NewPartitionOver(id int, st *store.Store, locks *lock.Manager) *Partition {
	return &Partition{
		ID:       id,
		Store:    st,
		Locks:    locks,
		staged:   make(map[txn.ID][]stagedWrite),
		prepared: make(map[txn.ID]bool),
	}
}

// ShardedStore routes key-value operations to the partition owning each key.
// It implements txn.Backend, which is what lets the fleet share one
// txn.Manager (and therefore one undo log and one dependency index) over
// stores that physically live on different edge nodes. The router itself
// charges no network time: ShardedCC accounts the cross-edge cost at lock
// acquisition (the lock-grant reply carries the remote reads) and at the
// prepare/commit rounds (prepare messages carry the remote writes), which is
// how a real coordinator batches data movement per partition rather than
// per operation.
type ShardedStore struct {
	Parts       []*Partition
	Partitioner func(key string) int
	// Map and Clk, when set, gate writes behind the shard map's cutover
	// barrier: a write to a shard mid-migration parks until the rebind so
	// it lands under the new route instead of racing the copy. The
	// Partitioner of a mapped fleet is Map.Lookup.
	Map *ShardMap
	Clk vclock.Clock
}

// route resolves a key's owning partition, waiting out a mid-cutover shard
// first so the write cannot land on the losing side of a migration.
func (s *ShardedStore) route(key string) int {
	if s.Map != nil && s.Clk != nil {
		s.Map.Barrier(s.Clk, key)
	}
	return s.Partitioner(key)
}

// Get implements txn.Backend.
func (s *ShardedStore) Get(key string) (store.Value, bool) {
	return s.Parts[s.Partitioner(key)].Store.Get(key)
}

// Put implements txn.Backend.
func (s *ShardedStore) Put(key string, v store.Value) uint64 {
	return s.Parts[s.route(key)].Store.Put(key, v)
}

// Delete implements txn.Backend.
func (s *ShardedStore) Delete(key string) bool {
	return s.Parts[s.route(key)].Store.Delete(key)
}

// TwoPCPoint names a scripted instant inside an atomic-commitment round —
// the places a fault plan can fail-stop an edge (internal/faults).
type TwoPCPoint int

// The scripted 2PC points.
const (
	// PointParticipantPrepared: a participant just voted yes (its staged
	// block is durable) and fail-stops before the decision reaches it.
	PointParticipantPrepared TwoPCPoint = iota
	// PointAfterPrepare: the coordinator collected every vote and
	// fail-stops before its decision is durable — participants are in
	// doubt and resolve by presumed abort.
	PointAfterPrepare
	// PointAfterDecision: the coordinator logged its commit decision and
	// fail-stops before delivering phase 2 — the transaction is committed,
	// and participants learn it from the coordinator's log.
	PointAfterDecision
)

func (p TwoPCPoint) String() string {
	switch p {
	case PointParticipantPrepared:
		return "participant-prepared"
	case PointAfterPrepare:
		return "after-prepare"
	default:
		return "after-decision"
	}
}

// FaultOracle is the seam the fault injector (internal/faults) plugs into
// the protocol: partition liveness, crash epochs (a changed epoch means the
// edge crashed and lost its volatile state — including lock grants — since
// the caller last talked to it), scripted 2PC-point crashes, and fault
// accounting. A nil oracle means a fault-free fleet.
type FaultOracle interface {
	// Down reports whether partition pi's edge is currently fail-stopped.
	Down(pi int) bool
	// Epoch returns pi's crash epoch (incremented at every crash).
	Epoch(pi int) int
	// At2PCPoint fires a scripted 2PC instant: coord is the coordinating
	// partition, part the acting one. It returns false when the acting
	// edge fail-stopped at this point and the caller cannot proceed there.
	At2PCPoint(coord, part int, point TwoPCPoint) bool
	// TxnFault records a transaction aborted or retracted by a fault.
	TxnFault()
}

// DistCounters counts fleet-wide distributed-commit events.
type DistCounters struct {
	// LocalCommits counts section commits whose write set stayed on the
	// executing edge's own partition — no 2PC, no network.
	LocalCommits int64
	// CrossEdgeCommits counts section commits whose write set spanned more
	// than one partition and therefore ran a 2PC round.
	CrossEdgeCommits int64
	// RemoteCommits counts single-partition commits whose one partition
	// was remote (one commit message, no 2PC round).
	RemoteCommits int64
	TwoPCRounds   int64
	PrepareRPCs   int64
	CommitRPCs    int64
	LockRPCs      int64
	Aborts        int64
	// MapRetries counts transactions that woke from lock acquisition to
	// find the shard map had moved a shard under them (a migration
	// completed while they waited) and re-planned on the new map.
	MapRetries int64
}

// DistStats is the concurrency-safe counter block shared by every edge's
// ShardedCC in a fleet. It stays the source of truth for the run report;
// Bind additionally mirrors every increment into a metrics registry so
// live scrapes see the same numbers without a second counting path.
type DistStats struct {
	mu     sync.Mutex
	c      DistCounters
	mirror *distMirror
}

// Snapshot returns the current counters.
func (s *DistStats) Snapshot() DistCounters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c
}

func (s *DistStats) add(f func(*DistCounters)) {
	s.mu.Lock()
	before := s.c
	f(&s.c)
	after := s.c
	m := s.mirror
	s.mu.Unlock()
	if m != nil {
		m.apply(before, after)
	}
}

// distMirror holds the registry handles DistStats feeds. add is the
// single mutation point for DistCounters, so mirroring the before/after
// delta there keeps registry and report byte-for-byte consistent.
type distMirror struct {
	local, cross, remote       *obs.Counter
	rounds, prepares, commits  *obs.Counter
	lockRPCs, aborts, mapRetry *obs.Counter
}

func (m *distMirror) apply(before, after DistCounters) {
	m.local.Add(after.LocalCommits - before.LocalCommits)
	m.cross.Add(after.CrossEdgeCommits - before.CrossEdgeCommits)
	m.remote.Add(after.RemoteCommits - before.RemoteCommits)
	m.rounds.Add(after.TwoPCRounds - before.TwoPCRounds)
	m.prepares.Add(after.PrepareRPCs - before.PrepareRPCs)
	m.commits.Add(after.CommitRPCs - before.CommitRPCs)
	m.lockRPCs.Add(after.LockRPCs - before.LockRPCs)
	m.aborts.Add(after.Aborts - before.Aborts)
	m.mapRetry.Add(after.MapRetries - before.MapRetries)
}

// Bind mirrors every future counter increment into o's registry under
// the given canonical tag string. Nil-safe (no-op when o is nil).
func (s *DistStats) Bind(o *obs.Obs, tags string) {
	if s == nil || o == nil {
		return
	}
	m := &distMirror{
		local:    o.Counter(obs.MetricCommitsLocal, tags),
		cross:    o.Counter(obs.MetricCommitsCross, tags),
		remote:   o.Counter(obs.MetricCommitsRemote, tags),
		rounds:   o.Counter(obs.MetricTwoPCRounds, tags),
		prepares: o.Counter(obs.MetricPrepareRPCs, tags),
		commits:  o.Counter(obs.MetricCommitRPCs, tags),
		lockRPCs: o.Counter(obs.MetricLockRPCs, tags),
		aborts:   o.Counter(obs.MetricTxnAborts, tags),
		mapRetry: o.Counter(obs.MetricMapRetries, tags),
	}
	s.mu.Lock()
	s.mirror = m
	s.mu.Unlock()
}

// lockMsgBytes sizes a lock / prepare / commit protocol message.
const lockMsgBytes = 256

// ShardedCC implements txn.CC over a sharded fleet keyspace. One instance
// serves one edge node (its Home partition is lock- and hop-free); all
// instances of a fleet share the Parts slice, the Manager, and the Stats
// block. Locks are acquired partition-by-partition in ascending partition
// index, with keys ordered inside each partition, so concurrent
// transactions from any number of edges follow one global acquisition order
// and cannot deadlock — the distributed generalization of the ordered
// acquisition the declared RW-sets ("get_rwsets") enable in Algorithm 1/2.
type ShardedCC struct {
	Clk vclock.Clock
	// M is the fleet-wide manager; M.DB must be the fleet's ShardedStore.
	M    *txn.Manager
	Home int
	// Parts lists the fleet's partitions; Links[i] is this edge's one-way
	// path to the edge hosting Parts[i] (nil for Home and for co-located
	// partitions).
	Parts       []*Partition
	Links       []transport.Path
	Partitioner func(key string) int
	// Map, when set, routes keys through the fleet's mutable shard map
	// instead of the static Partitioner, and enrolls every transaction in
	// the migration protocol: shared shard-intent locks alongside the
	// data locks, and a post-acquisition route re-check that retries the
	// transaction on the new map when a migration moved a shard it
	// touches while it waited.
	Map      *ShardMap
	Protocol Protocol
	Stats    *DistStats
	// Faults, when set, injects scripted failures and supplies the
	// liveness/epoch oracle the protocol consults before trusting a
	// partition (nil: fault-free fleet).
	Faults FaultOracle
	// Obs, when set, records lock-wait and 2PC spans for this edge's
	// transactions under the Tags tag string; per-instance timings are
	// additionally accumulated on the instance for the frame breakdown.
	Obs  *obs.Obs
	Tags string

	mu   sync.Mutex
	held map[txn.ID]heldState // MS-SR: locks held from initial to final commit
}

// heldState is what MS-SR remembers between the initial and the final
// commit: the held requests plus the crash epoch of every partition they
// live on — a changed epoch at final-commit time means that partition's
// lock table (and the eager initial writes) died with the edge.
type heldState struct {
	// byPart is the acquisition-time route snapshot: the final commit
	// and the release must target the partitions the locks were granted
	// on, never a re-derived live route.
	byPart map[int][]lock.Request
	epochs map[int]int
}

// maxMapRetries bounds how many times one transaction re-plans after waking
// into a moved shard map before giving up with a plain abort.
const maxMapRetries = 4

// Name returns the protocol name, e.g. "sharded-MS-IA".
func (c *ShardedCC) Name() string { return "sharded-" + c.Protocol.String() }

// hopTo pays one one-way message delay to the edge hosting partition pi,
// carrying the transaction's trace context when the transport is traced.
func (c *ShardedCC) hopTo(pi int, tc *wire.TraceCtx) {
	if l := c.Links[pi]; l != nil {
		transport.SendCtx(l, c.Clk, lockMsgBytes, tc)
	}
}

// wireCtx returns the wire trace context for an instance's lock and 2PC
// messages — nil when the instance carries no trace, the zero-cost path.
func wireCtx(in *txn.Instance) *wire.TraceCtx {
	if in == nil || !in.Trace.Valid() {
		return nil
	}
	return &wire.TraceCtx{Trace: in.Trace.Trace, Parent: in.Trace.Span}
}

func (c *ShardedCC) partDown(pi int) bool { return c.Faults != nil && c.Faults.Down(pi) }

func (c *ShardedCC) linkDown(pi int) bool {
	return c.Links[pi] != nil && c.Links[pi].IsDown()
}

// reachable reports whether partition pi can currently serve this edge:
// its edge is up and the peer link is not partitioned.
func (c *ShardedCC) reachable(pi int) bool { return !c.partDown(pi) && !c.linkDown(pi) }

// snapshotEpochs records the crash epoch of every partition in byPart at
// lock-acquisition time; nil when no fault oracle is installed.
func (c *ShardedCC) snapshotEpochs(byPart map[int][]lock.Request) map[int]int {
	if c.Faults == nil {
		return nil
	}
	out := make(map[int]int, len(byPart))
	for pi := range byPart {
		out[pi] = c.Faults.Epoch(pi)
	}
	return out
}

// epochsBroken reports whether any recorded partition crashed (or is down)
// since its epoch was snapshotted — its locks and eager writes are gone.
func (c *ShardedCC) epochsBroken(epochs map[int]int) bool {
	if c.Faults == nil {
		return false
	}
	for pi, e := range epochs {
		if c.Faults.Down(pi) || c.Faults.Epoch(pi) != e {
			return true
		}
	}
	return false
}

// at2PC fires a scripted 2PC point; true means the acting edge survived.
func (c *ShardedCC) at2PC(part int, point TwoPCPoint) bool {
	if c.Faults == nil {
		return true
	}
	return c.Faults.At2PCPoint(c.Home, part, point)
}

func (c *ShardedCC) noteFault() {
	if c.Faults != nil {
		c.Faults.TxnFault()
	}
}

// routeKey resolves a key's owning partition under the live map (or the
// static partitioner of an unmapped fleet).
func (c *ShardedCC) routeKey(key string) int {
	if c.Map != nil {
		return c.Map.Lookup(key)
	}
	return c.Partitioner(key)
}

func (c *ShardedCC) mapEpoch() int64 {
	if c.Map == nil {
		return 0
	}
	return c.Map.Epoch()
}

// withIntents appends the shared shard-intent request for every distinct
// logical shard among reqs — the locks that serialize this transaction
// against a migration of any shard it touches. No-op on unmapped fleets.
func (c *ShardedCC) withIntents(reqs []lock.Request) []lock.Request {
	if c.Map == nil {
		return reqs
	}
	seen := map[int]bool{}
	out := reqs
	for _, r := range reqs {
		if s, ok := workload.ShardOf(r.Key); ok && !seen[s] {
			seen[s] = true
			out = append(out, lock.Request{Key: ShardIntentKey(s), Mode: lock.Shared})
		}
	}
	return out
}

// byPartition groups lock requests by owning partition index under the
// current route. The grouping is the transaction's route snapshot: every
// later step (stale check, commit) compares against or reuses it.
func (c *ShardedCC) byPartition(reqs []lock.Request) map[int][]lock.Request {
	out := map[int][]lock.Request{}
	for _, r := range reqs {
		pi := c.routeKey(r.Key)
		out[pi] = append(out[pi], r)
	}
	return out
}

// routeOf flattens a route snapshot into a key→partition map, the form
// commitSection consumes.
func routeOf(byPart map[int][]lock.Request) map[string]int {
	out := make(map[string]int)
	for pi, rs := range byPart {
		for _, r := range rs {
			out[r.Key] = pi
		}
	}
	return out
}

// routeStale reports whether a migration moved any of the snapshot's keys
// since epoch — the locks just acquired may sit on partitions that no
// longer own the data, so the caller must release and re-plan.
func (c *ShardedCC) routeStale(epoch int64, byPart map[int][]lock.Request) bool {
	if c.Map == nil || c.Map.Epoch() == epoch {
		return false
	}
	for pi, rs := range byPart {
		for _, r := range rs {
			if c.Map.Lookup(r.Key) != pi {
				return true
			}
		}
	}
	return false
}

// acquire takes every request, visiting partitions in ascending index
// (remote ones over the edge link). The lock-grant reply doubles as the
// remote read fetch, so section bodies read remote keys without further
// hops. It reports false — releasing everything taken — when a partition
// is unreachable (its edge crashed or the link is partitioned).
func (c *ShardedCC) acquire(owner lock.Owner, byPart map[int][]lock.Request, tc *wire.TraceCtx) bool {
	got := make([]int, 0, len(c.Parts))
	for pi := 0; pi < len(c.Parts); pi++ {
		rs, ok := byPart[pi]
		if !ok {
			continue
		}
		if !c.reachable(pi) {
			for _, gi := range got {
				c.hopTo(gi, tc)
				c.Parts[gi].Locks.ReleaseAll(owner, byPart[gi])
			}
			return false
		}
		c.hopTo(pi, tc)
		c.Parts[pi].Locks.AcquireAll(owner, rs)
		c.hopTo(pi, tc)
		if c.Links[pi] != nil {
			c.Stats.add(func(d *DistCounters) { d.LockRPCs++ })
		}
		got = append(got, pi)
	}
	return true
}

// acquireWaitDie is the MS-SR variant: because MS-SR holds every lock from
// the initial commit across the cloud round trip to the final commit (and a
// frame triggers its transactions one after another on one goroutine),
// plain blocking acquisition could wait on a lock the caller itself will
// only release later. Wait-die breaks that: at each partition the
// transaction may wait only while older than every holder, otherwise it
// dies — everything taken so far, on every partition, is released and false
// is returned. Fleet-wide monotonic IDs make the age comparison valid
// across edges. fault reports whether the failure was an unreachable
// partition rather than a wait-die death.
func (c *ShardedCC) acquireWaitDie(owner lock.Owner, byPart map[int][]lock.Request, tc *wire.TraceCtx) (ok, fault bool) {
	got := make([]int, 0, len(c.Parts))
	bail := func(fault bool) (bool, bool) {
		for _, gi := range got {
			c.hopTo(gi, tc)
			c.Parts[gi].Locks.ReleaseAll(owner, byPart[gi])
		}
		return false, fault
	}
	for pi := 0; pi < len(c.Parts); pi++ {
		rs, ok := byPart[pi]
		if !ok {
			continue
		}
		if !c.reachable(pi) {
			return bail(true)
		}
		c.hopTo(pi, tc)
		ok = c.Parts[pi].Locks.AcquireAllWaitDie(owner, rs)
		c.hopTo(pi, tc)
		if c.Links[pi] != nil {
			c.Stats.add(func(d *DistCounters) { d.LockRPCs++ })
		}
		if !ok {
			return bail(false)
		}
		got = append(got, pi)
	}
	return true, false
}

func (c *ShardedCC) release(owner lock.Owner, byPart map[int][]lock.Request, tc *wire.TraceCtx) {
	for pi := 0; pi < len(c.Parts); pi++ {
		rs, ok := byPart[pi]
		if !ok {
			continue
		}
		c.hopTo(pi, tc)
		c.Parts[pi].Locks.ReleaseAll(owner, rs)
	}
}

// commitSection runs the atomic-commitment round for one section commit
// over the partitions its write set touched. A write set confined to one
// partition needs no 2PC: the commit is local (free) or a single remote
// commit message. A multi-partition write set pays a prepare/commit round
// over every involved partition; the fan-out is parallel — each phase
// charges every involved link and sleeps once for the slowest round trip,
// not the sum of sequential visits. The writes themselves were applied
// through the fleet ShardedStore as the section executed (locks make the
// early application unobservable), so the round here is the protocol's
// message cost, the WAL logging that makes the commit durable, and the
// scripted crash points of the fault plan. ErrCrashed means the commit did
// not happen — the caller must undo the section's eager writes. round
// (RoundInitial or RoundFinal) disambiguates the up-to-two independent
// rounds one transaction runs, so each round's WAL markers, staged blocks,
// and decisions stand alone. route is the acquisition-time route snapshot:
// the commit must land where the locks (and the eager writes) are, even if
// the live map has since moved an *unrelated* shard — the held shard
// intents guarantee the transaction's own shards cannot have moved.
func (c *ShardedCC) commitSection(id txn.ID, round uint8, writes []lock.Request, epochs map[int]int, route map[string]int, tc *wire.TraceCtx) error {
	cr := CommitRound{ID: id, Round: round}
	keysByPart := map[int][]string{}
	involved := make([]int, 0, len(c.Parts))
	for _, r := range writes {
		if r.Mode != lock.Exclusive {
			continue
		}
		pi, ok := route[r.Key]
		if !ok {
			pi = c.routeKey(r.Key)
		}
		if _, ok := keysByPart[pi]; !ok {
			involved = append(involved, pi)
		}
		keysByPart[pi] = append(keysByPart[pi], r.Key)
	}
	if len(involved) == 0 {
		return nil // read-only section: nothing to commit
	}
	// Every involved partition must still be the one we locked at: a
	// crashed (or unreachable) partition lost our locks and eager writes.
	sort.Ints(involved)
	for _, pi := range involved {
		if !c.reachable(pi) {
			return ErrCrashed
		}
		if epochs != nil && c.Faults.Epoch(pi) != epochs[pi] {
			return ErrCrashed
		}
	}

	if len(involved) == 1 {
		pi := involved[0]
		p := c.Parts[pi]
		if p.Durable() {
			p.LogLocalCommit(cr, p.RedoRecords(cr, keysByPart[pi]))
		}
		if c.Links[pi] == nil {
			c.Stats.add(func(d *DistCounters) { d.LocalCommits++ })
			return nil
		}
		c.hopTo(pi, tc)
		c.Stats.add(func(d *DistCounters) { d.RemoteCommits++; d.CommitRPCs++ })
		return nil
	}

	// The coordinator's own crash epoch, snapshotted before the round: if
	// the coordinating edge fail-stops and restarts while the prepare
	// round trip is in flight, this goroutine survives (it is simulation
	// machinery, not the edge process) but the round died with the edge —
	// the restart sweep presume-aborts its staged blocks, so continuing
	// to a commit decision here would split the round's outcome.
	homeEpoch := 0
	if c.Faults != nil {
		homeEpoch = c.Faults.Epoch(c.Home)
	}

	// Phase 1: parallel prepare fan-out. Each participant stages its share
	// durably (data records + prepare marker) and votes; the round costs
	// the slowest participant's round trip. The link charges run on their
	// own goroutines so a transport that delivers synchronously (TCP)
	// also pays max-of-RTT, not sum — on the sim, Charge is pure
	// accounting and the goroutines finish without touching the clock, so
	// replay stays byte-identical.
	maxRTT := chargeFanOut(c.Links, involved, 2, tc, func() {
		c.Stats.add(func(d *DistCounters) { d.PrepareRPCs++ })
	})
	for _, pi := range involved {
		p := c.Parts[pi]
		if p.Durable() {
			p.StagePrepare(cr, c.Home, p.RedoRecords(cr, keysByPart[pi]))
		}
		// A scripted participant crash lands here: the yes vote is already
		// durable, so the round proceeds and the participant resolves the
		// transaction from the coordinator's log when it recovers.
		c.at2PC(pi, PointParticipantPrepared)
	}
	c.Clk.Sleep(maxRTT)

	if c.Faults != nil && (c.Faults.Down(c.Home) || c.Faults.Epoch(c.Home) != homeEpoch) {
		// The coordinating edge crashed during the prepare round trip: no
		// decision was durable, so the round is dead (presumed abort) even
		// if the edge has already restarted.
		return ErrCrashed
	}
	if !c.at2PC(c.Home, PointAfterPrepare) {
		// The coordinator fail-stopped before its decision became durable:
		// the transaction did not commit; prepared participants are in
		// doubt and resolve by presumed abort.
		return ErrCrashed
	}
	if c.Parts[c.Home].Durable() {
		c.Parts[c.Home].LogDecision(cr, true)
	}
	delivered := c.at2PC(c.Home, PointAfterDecision)

	// Phase 2: parallel commit delivery, skipped entirely when the
	// coordinator fail-stopped right after logging the decision (the
	// transaction is committed either way — that is what the durable
	// decision means; participants learn it from the coordinator's log).
	if delivered {
		live := make([]int, 0, len(involved))
		for _, pi := range involved {
			if !c.reachable(pi) {
				continue // resolves from the coordinator's log at recovery
			}
			c.Parts[pi].DeliverDecision(cr, true)
			live = append(live, pi)
		}
		maxOne := chargeFanOut(c.Links, live, 1, tc, func() {
			c.Stats.add(func(d *DistCounters) { d.CommitRPCs++ })
		})
		c.Clk.Sleep(maxOne)
	}
	c.Stats.add(func(d *DistCounters) { d.TwoPCRounds++; d.CrossEdgeCommits++ })
	return nil
}

// chargeFanOut charges msgs protocol messages on every listed partition's
// link concurrently and returns the slowest per-link total — the modeled
// cost of a parallel round. onEach runs once per listed partition (link
// or not), mirroring the per-RPC counters. The goroutines never touch the
// clock: on the sim, Charge is pure accounting, so replay stays
// byte-identical; on a synchronous transport (TCP) they make the fan-out
// pay max-of-RTT instead of a sum of sequential round trips.
func chargeFanOut(links []transport.Path, parts []int, msgs int, tc *wire.TraceCtx, onEach func()) time.Duration {
	var (
		mu  sync.Mutex
		max time.Duration
		wg  sync.WaitGroup
	)
	for _, pi := range parts {
		onEach()
		l := links[pi]
		if l == nil {
			continue
		}
		wg.Add(1)
		go func(l transport.Path) {
			defer wg.Done()
			var t time.Duration
			for i := 0; i < msgs; i++ {
				t += transport.ChargeCtx(l, lockMsgBytes, tc)
			}
			mu.Lock()
			if t > max {
				max = t
			}
			mu.Unlock()
		}(l)
	}
	wg.Wait()
	return max
}

// abortTxn retracts a transaction whose commit was interrupted by a fault:
// the section's eager writes (and any dependents') are undone through the
// manager's undo log, and the abort is counted.
func (c *ShardedCC) abortTxn(in *txn.Instance, reason string) {
	c.M.Retract(in, reason)
	c.Stats.add(func(d *DistCounters) { d.Aborts++ })
	c.noteFault()
}

// acquireRouted plans the transaction's routes under the live map, acquires
// the locks, and re-plans when it wakes into a moved map (a migration
// completed while it waited): the stale locks are released and the
// acquisition retried on the new routes, at most maxMapRetries times.
// Returns the route snapshot the locks were granted under, the pre-wait
// crash epochs, and — on failure — whether the failure was a fault
// (unreachable partition) rather than a wait-die death or map churn.
func (c *ShardedCC) acquireRouted(owner lock.Owner, reqs []lock.Request, tc *wire.TraceCtx) (byPart map[int][]lock.Request, epochs map[int]int, ok, fault bool) {
	for attempt := 0; ; attempt++ {
		mapEpoch := c.mapEpoch()
		byPart = c.byPartition(reqs)
		// Epochs are snapshotted BEFORE acquisition: a partition that
		// crashes and even recovers while this transaction waits for a
		// contended lock must still be detected (its lock table and any
		// state the wait spanned died with it), so the checks downstream
		// compare against the pre-wait world.
		epochs = c.snapshotEpochs(byPart)
		if c.Protocol == MSSR {
			ok, fault = c.acquireWaitDie(owner, byPart, tc)
		} else {
			ok, fault = c.acquire(owner, byPart, tc), true
		}
		if !ok {
			return byPart, epochs, false, fault
		}
		if !c.routeStale(mapEpoch, byPart) {
			return byPart, epochs, true, false
		}
		c.release(owner, byPart, tc)
		if attempt >= maxMapRetries {
			return byPart, epochs, false, false
		}
		c.Stats.add(func(d *DistCounters) { d.MapRetries++ })
	}
}

// timedAcquire wraps acquireRouted, charging the wait to the instance's
// breakdown accumulator and emitting a lock.wait (or lock.abort) span.
func (c *ShardedCC) timedAcquire(in *txn.Instance, owner lock.Owner, reqs []lock.Request) (byPart map[int][]lock.Request, epochs map[int]int, ok, fault bool) {
	t0 := c.Clk.Now()
	byPart, epochs, ok, fault = c.acquireRouted(owner, reqs, wireCtx(in))
	t1 := c.Clk.Now()
	in.AddLockWait(t1 - t0)
	if t1 > t0 {
		name := obs.SpanLockWait
		if !ok {
			name = obs.SpanLockAbort
		}
		c.Obs.SpanCtx(in.Trace, name, c.Tags, t0, t1)
	}
	return byPart, epochs, ok, fault
}

// timedCommit wraps commitSection, charging the round to the instance
// and emitting a twopc.commit span when the commit left the home edge
// (purely local commits run no 2PC and get no span).
func (c *ShardedCC) timedCommit(in *txn.Instance, round uint8, writes []lock.Request, epochs map[int]int, route map[string]int) error {
	t0 := c.Clk.Now()
	err := c.commitSection(in.ID, round, writes, epochs, route, wireCtx(in))
	t1 := c.Clk.Now()
	in.AddTwoPC(t1 - t0)
	if c.Obs != nil {
		for _, pi := range route {
			if pi != c.Home {
				c.Obs.SpanCtx(in.Trace, obs.SpanTwoPC, c.Tags, t0, t1)
				break
			}
		}
	}
	return err
}

// RunInitial implements txn.CC. MS-IA locks and commits the initial
// section's own set; MS-SR acquires the union of every section's locks and
// holds them (writes commit atomically with the last section's). On a
// mapped fleet both also take the shard intents that fence migrations.
func (c *ShardedCC) RunInitial(in *txn.Instance) error { return c.RunSection(in, 0) }

// RunSection implements txn.CC over the fleet for one boundary of an
// N-section transaction: section 0 follows RunInitial's discipline, the
// last section RunFinal's, and middle sections commit one boundary each —
// under the section-0 locks for MS-SR (no 2PC until the last boundary), or
// with their own locks and their own atomic-commitment round (round = the
// section index, so each boundary's WAL markers stand alone) for MS-IA.
func (c *ShardedCC) RunSection(in *txn.Instance, k int) error {
	last := in.T.LastSection()
	if k == 0 {
		return c.runFirstSection(in, last)
	}
	if c.Protocol == MSSR {
		return c.runHeldSection(in, k, last)
	}
	return c.runOwnSection(in, k, last)
}

// runFirstSection is section 0 on the fleet: acquire (everything for
// MS-SR, the section's own set for MS-IA), execute, commit the boundary —
// deferred for an MS-SR transaction with later sections, immediate
// otherwise.
func (c *ShardedCC) runFirstSection(in *txn.Instance, last int) error {
	if s := in.State(); s != txn.StatePending {
		return fmt.Errorf("txn %d: RunInitial in state %s", in.ID, s)
	}
	owner := lock.Owner(in.ID)
	var reqs []lock.Request
	if c.Protocol == MSSR {
		reqs = in.T.AllRW().Requests()
	} else {
		reqs = in.T.SectionAt(0).RW.Requests()
	}
	reqs = c.withIntents(reqs)
	byPart, epochs, ok, fault := c.timedAcquire(in, owner, reqs)
	if !ok {
		c.M.MarkAborted(in)
		c.Stats.add(func(d *DistCounters) { d.Aborts++ })
		if fault {
			c.noteFault()
		}
		return txn.ErrAborted
	}
	if c.epochsBroken(epochs) {
		// A partition crashed while we waited for its locks: nothing was
		// written yet, so this is a plain abort, not a retraction.
		c.release(owner, byPart, wireCtx(in))
		c.M.MarkAborted(in)
		c.Stats.add(func(d *DistCounters) { d.Aborts++ })
		c.noteFault()
		return txn.ErrAborted
	}

	if err := c.M.ExecSection(in, txn.StageInitial); err != nil {
		c.release(owner, byPart, wireCtx(in))
		c.M.MarkAborted(in)
		c.Stats.add(func(d *DistCounters) { d.Aborts++ })
		return err
	}

	if c.Protocol == MSSR && last > 0 {
		// Atomic commitment is deferred to the last commit; the held
		// locks make the earlier writes unobservable until then.
		c.mu.Lock()
		if c.held == nil {
			c.held = make(map[txn.ID]heldState)
		}
		c.held[in.ID] = heldState{byPart: byPart, epochs: epochs}
		c.mu.Unlock()
		c.M.MarkInitialCommitted(in)
		return nil
	}
	writes := in.T.SectionAt(0).RW.Requests()
	if c.Protocol == MSSR {
		writes = in.T.AllRW().Requests() // single-section MS-SR: the one round covers it all
	}
	if err := c.timedCommit(in, RoundInitial, writes, epochs, routeOf(byPart)); err != nil {
		// The initial commit could not complete (a partition crashed
		// mid-round): undo the section's eager writes and abort.
		c.abortTxn(in, "initial commit interrupted by edge failure")
		c.release(owner, byPart, wireCtx(in))
		return txn.ErrAborted
	}
	retracted := c.M.MarkSectionCommitted(in, 0)
	c.release(owner, byPart, wireCtx(in))
	if retracted {
		return txn.ErrRetracted
	}
	return nil
}

// RunFinal implements txn.CC: final section, concluding atomic commitment,
// release of every remaining lock. A transaction that lost a partition to a
// crash between its commits is retracted — never half-committed — and the
// crash can leak no locks: MS-SR's held requests are always released here,
// whether the final commit succeeded, retracted, or died with an edge.
func (c *ShardedCC) RunFinal(in *txn.Instance) error { return c.RunSection(in, in.T.LastSection()) }

// runHeldSection is an MS-SR boundary after section 0: the body runs under
// the locks held since the first acquisition; only the last boundary runs
// the one atomic-commitment round (covering every section's writes) and
// surrenders the held state.
func (c *ShardedCC) runHeldSection(in *txn.Instance, k, last int) error {
	owner := lock.Owner(in.ID)
	switch s := in.State(); s {
	case txn.StateInitialCommitted, txn.StateRetracted:
	default:
		return fmt.Errorf("txn %d: RunSection(%d) in state %s", in.ID, k, s)
	}
	c.mu.Lock()
	hs := c.held[in.ID]
	if k == last {
		delete(c.held, in.ID)
	}
	c.mu.Unlock()
	heldBy := hs.byPart
	// drop surrenders the held state on a terminal exit before the last
	// boundary (a cascade or crash retracted the transaction) so the
	// remaining boundaries find nothing to release twice.
	drop := func() {
		if k != last {
			c.mu.Lock()
			delete(c.held, in.ID)
			c.mu.Unlock()
		}
		c.release(owner, heldBy, wireCtx(in))
	}
	if in.State() == txn.StateRetracted {
		drop() // a cascade got here first
		return txn.ErrRetracted
	}
	if c.epochsBroken(hs.epochs) {
		// A partition holding our locks crashed during the round trip:
		// the locks and the eager earlier writes there are gone. The only
		// safe outcome is retraction.
		c.abortTxn(in, "edge crashed while MS-SR locks were held")
		drop()
		return txn.ErrRetracted
	}
	err := c.M.ExecSection(in, txn.Stage(k))
	if err == nil && k == last {
		// One 2PC covers every section's writes (Algorithm 1).
		if cerr := c.timedCommit(in, uint8(last), in.T.AllRW().Requests(), hs.epochs, routeOf(heldBy)); cerr != nil {
			c.abortTxn(in, "final commit interrupted by edge failure")
			c.release(owner, heldBy, wireCtx(in))
			return txn.ErrRetracted
		}
	}
	retracted := c.M.MarkSectionCommitted(in, k)
	if k == last {
		c.release(owner, heldBy, wireCtx(in))
	} else if retracted {
		drop() // the body retracted its own transaction mid-graph
	}
	if err == nil && retracted {
		return txn.ErrRetracted
	}
	return err
}

// runOwnSection is an MS-IA boundary after section 0: acquire the
// section's own locks, execute, run the boundary's atomic-commitment round
// (round = section index), release. Any failure here breaks the
// multi-stage guarantee (first commit ⇒ every later commit), so the
// transaction — including every earlier boundary's visible effects — is
// retracted, cascades included.
func (c *ShardedCC) runOwnSection(in *txn.Instance, k, last int) error {
	owner := lock.Owner(in.ID)
	switch s := in.State(); s {
	case txn.StateInitialCommitted:
	case txn.StateRetracted:
		return txn.ErrRetracted
	default:
		return fmt.Errorf("txn %d: RunSection(%d) in state %s", in.ID, k, s)
	}
	secName := "the final section"
	if k != last {
		secName = fmt.Sprintf("section %d", k)
	}
	reqs := c.withIntents(in.T.SectionAt(k).RW.Requests())
	byPart, epochs, ok, _ := c.timedAcquire(in, owner, reqs)
	if !ok {
		// The section cannot reach its partitions (or the shard map
		// churned past the retry budget); the multi-stage guarantee
		// (initial commit ⇒ every later commit) is broken, so the earlier
		// sections' effects are retracted.
		c.abortTxn(in, "edge crashed before "+secName)
		return txn.ErrRetracted
	}
	if c.epochsBroken(epochs) {
		c.abortTxn(in, "edge crashed while "+secName+" waited for locks")
		c.release(owner, byPart, wireCtx(in))
		return txn.ErrRetracted
	}
	err := c.M.ExecSection(in, txn.Stage(k))
	if err == nil {
		if cerr := c.timedCommit(in, uint8(k), in.T.SectionAt(k).RW.Requests(), epochs, routeOf(byPart)); cerr != nil {
			c.abortTxn(in, "commit of "+secName+" interrupted by edge failure")
			c.release(owner, byPart, wireCtx(in))
			return txn.ErrRetracted
		}
	}
	retracted := c.M.MarkSectionCommitted(in, k)
	c.release(owner, byPart, wireCtx(in))
	if err == nil && retracted {
		return txn.ErrRetracted
	}
	return err
}
