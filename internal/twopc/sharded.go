// Sharded fleet keyspace: the §4.5 multi-partition machinery wired into the
// pipeline-facing txn.CC seam. Each edge node of a cluster hosts one
// Partition of a single fleet-wide database; a per-edge ShardedCC routes
// every triggered transaction's declared RW-set through the owning
// partitions — local keys run exactly as on a standalone edge, cross-edge
// keys acquire remote locks over the inter-edge links in global partition
// order and commit with a two-phase commit at the section boundaries the
// multi-stage protocol dictates (MS-IA at both commits, MS-SR once at the
// final commit). Undo logging, dependency tracking, and retraction cascades
// live in the one fleet-wide txn.Manager, so a retraction started on one
// edge undoes dependent writes on every other edge it reached.
package twopc

import (
	"fmt"
	"sort"
	"sync"

	"croesus/internal/lock"
	"croesus/internal/netsim"
	"croesus/internal/store"
	"croesus/internal/txn"
	"croesus/internal/vclock"
)

// NewPartitionOver returns a partition wrapping an existing store and lock
// manager — the cluster runtime shards the fleet keyspace over the stores
// its edge nodes already own.
func NewPartitionOver(id int, st *store.Store, locks *lock.Manager) *Partition {
	return &Partition{
		ID:       id,
		Store:    st,
		Locks:    locks,
		staged:   make(map[txn.ID][]stagedWrite),
		prepared: make(map[txn.ID]bool),
	}
}

// ShardedStore routes key-value operations to the partition owning each key.
// It implements txn.Backend, which is what lets the fleet share one
// txn.Manager (and therefore one undo log and one dependency index) over
// stores that physically live on different edge nodes. The router itself
// charges no network time: ShardedCC accounts the cross-edge cost at lock
// acquisition (the lock-grant reply carries the remote reads) and at the
// prepare/commit rounds (prepare messages carry the remote writes), which is
// how a real coordinator batches data movement per partition rather than
// per operation.
type ShardedStore struct {
	Parts       []*Partition
	Partitioner func(key string) int
}

// Get implements txn.Backend.
func (s *ShardedStore) Get(key string) (store.Value, bool) {
	return s.Parts[s.Partitioner(key)].Store.Get(key)
}

// Put implements txn.Backend.
func (s *ShardedStore) Put(key string, v store.Value) uint64 {
	return s.Parts[s.Partitioner(key)].Store.Put(key, v)
}

// Delete implements txn.Backend.
func (s *ShardedStore) Delete(key string) bool {
	return s.Parts[s.Partitioner(key)].Store.Delete(key)
}

// DistCounters counts fleet-wide distributed-commit events.
type DistCounters struct {
	// LocalCommits counts section commits whose write set stayed on the
	// executing edge's own partition — no 2PC, no network.
	LocalCommits int64
	// CrossEdgeCommits counts section commits whose write set spanned more
	// than one partition and therefore ran a 2PC round.
	CrossEdgeCommits int64
	// RemoteCommits counts single-partition commits whose one partition
	// was remote (one commit message, no 2PC round).
	RemoteCommits int64
	TwoPCRounds   int64
	PrepareRPCs   int64
	CommitRPCs    int64
	LockRPCs      int64
	Aborts        int64
}

// DistStats is the concurrency-safe counter block shared by every edge's
// ShardedCC in a fleet.
type DistStats struct {
	mu sync.Mutex
	c  DistCounters
}

// Snapshot returns the current counters.
func (s *DistStats) Snapshot() DistCounters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c
}

func (s *DistStats) add(f func(*DistCounters)) {
	s.mu.Lock()
	f(&s.c)
	s.mu.Unlock()
}

// lockMsgBytes sizes a lock / prepare / commit protocol message.
const lockMsgBytes = 256

// ShardedCC implements txn.CC over a sharded fleet keyspace. One instance
// serves one edge node (its Home partition is lock- and hop-free); all
// instances of a fleet share the Parts slice, the Manager, and the Stats
// block. Locks are acquired partition-by-partition in ascending partition
// index, with keys ordered inside each partition, so concurrent
// transactions from any number of edges follow one global acquisition order
// and cannot deadlock — the distributed generalization of the ordered
// acquisition the declared RW-sets ("get_rwsets") enable in Algorithm 1/2.
type ShardedCC struct {
	Clk vclock.Clock
	// M is the fleet-wide manager; M.DB must be the fleet's ShardedStore.
	M    *txn.Manager
	Home int
	// Parts lists the fleet's partitions; Links[i] is this edge's one-way
	// link to the edge hosting Parts[i] (nil for Home and for co-located
	// partitions).
	Parts       []*Partition
	Links       []*netsim.Link
	Partitioner func(key string) int
	Protocol    Protocol
	Stats       *DistStats

	mu   sync.Mutex
	held map[txn.ID][]lock.Request // MS-SR: locks held from initial to final commit
}

// Name returns the protocol name, e.g. "sharded-MS-IA".
func (c *ShardedCC) Name() string { return "sharded-" + c.Protocol.String() }

// hopTo pays one one-way message delay to the edge hosting partition pi.
func (c *ShardedCC) hopTo(pi int) {
	if l := c.Links[pi]; l != nil {
		l.Send(c.Clk, lockMsgBytes)
	}
}

// byPartition groups lock requests by owning partition index.
func (c *ShardedCC) byPartition(reqs []lock.Request) map[int][]lock.Request {
	out := map[int][]lock.Request{}
	for _, r := range reqs {
		pi := c.Partitioner(r.Key)
		out[pi] = append(out[pi], r)
	}
	return out
}

// acquire takes every request, visiting partitions in ascending index
// (remote ones over the edge link). The lock-grant reply doubles as the
// remote read fetch, so section bodies read remote keys without further
// hops.
func (c *ShardedCC) acquire(owner lock.Owner, byPart map[int][]lock.Request) {
	for pi := 0; pi < len(c.Parts); pi++ {
		rs, ok := byPart[pi]
		if !ok {
			continue
		}
		c.hopTo(pi)
		c.Parts[pi].Locks.AcquireAll(owner, rs)
		c.hopTo(pi)
		if c.Links[pi] != nil {
			c.Stats.add(func(d *DistCounters) { d.LockRPCs++ })
		}
	}
}

// acquireWaitDie is the MS-SR variant: because MS-SR holds every lock from
// the initial commit across the cloud round trip to the final commit (and a
// frame triggers its transactions one after another on one goroutine),
// plain blocking acquisition could wait on a lock the caller itself will
// only release later. Wait-die breaks that: at each partition the
// transaction may wait only while older than every holder, otherwise it
// dies — everything taken so far, on every partition, is released and false
// is returned. Fleet-wide monotonic IDs make the age comparison valid
// across edges.
func (c *ShardedCC) acquireWaitDie(owner lock.Owner, byPart map[int][]lock.Request) bool {
	got := make([]int, 0, len(c.Parts))
	for pi := 0; pi < len(c.Parts); pi++ {
		rs, ok := byPart[pi]
		if !ok {
			continue
		}
		c.hopTo(pi)
		ok = c.Parts[pi].Locks.AcquireAllWaitDie(owner, rs)
		c.hopTo(pi)
		if c.Links[pi] != nil {
			c.Stats.add(func(d *DistCounters) { d.LockRPCs++ })
		}
		if !ok {
			for _, gi := range got {
				c.hopTo(gi)
				c.Parts[gi].Locks.ReleaseAll(owner, byPart[gi])
			}
			return false
		}
		got = append(got, pi)
	}
	return true
}

func (c *ShardedCC) release(owner lock.Owner, byPart map[int][]lock.Request) {
	for pi := 0; pi < len(c.Parts); pi++ {
		rs, ok := byPart[pi]
		if !ok {
			continue
		}
		c.hopTo(pi)
		c.Parts[pi].Locks.ReleaseAll(owner, rs)
	}
}

// commitSection runs the atomic-commitment round for one section commit
// over the partitions its write set touched. A write set confined to one
// partition needs no 2PC: the commit is local (free) or a single remote
// commit message. A multi-partition write set pays a full prepare/commit
// round over every involved partition, in ascending partition order. The
// writes themselves were applied through the fleet ShardedStore as the
// section executed (locks make the early application unobservable), so the
// round here is the protocol's message cost and bookkeeping.
func (c *ShardedCC) commitSection(writes []lock.Request) {
	involved := make([]int, 0, len(c.Parts))
	seen := make(map[int]bool, len(c.Parts))
	for _, r := range writes {
		if r.Mode != lock.Exclusive {
			continue
		}
		if pi := c.Partitioner(r.Key); !seen[pi] {
			seen[pi] = true
			involved = append(involved, pi)
		}
	}
	switch len(involved) {
	case 0:
		return // read-only section: nothing to commit
	case 1:
		pi := involved[0]
		if c.Links[pi] == nil {
			c.Stats.add(func(d *DistCounters) { d.LocalCommits++ })
			return
		}
		c.hopTo(pi)
		c.Stats.add(func(d *DistCounters) { d.RemoteCommits++; d.CommitRPCs++ })
		return
	}
	// Ascending partition order, like every other protocol round.
	sort.Ints(involved)
	for _, pi := range involved { // phase 1: prepare
		c.hopTo(pi)
		c.hopTo(pi)
		c.Stats.add(func(d *DistCounters) { d.PrepareRPCs++ })
	}
	for _, pi := range involved { // phase 2: commit
		c.hopTo(pi)
		c.Stats.add(func(d *DistCounters) { d.CommitRPCs++ })
	}
	c.Stats.add(func(d *DistCounters) { d.TwoPCRounds++; d.CrossEdgeCommits++ })
}

// RunInitial implements txn.CC. MS-IA locks and commits the initial
// section's own set; MS-SR acquires the union of both sections' locks and
// holds them (writes commit atomically with the final section's).
func (c *ShardedCC) RunInitial(in *txn.Instance) error {
	if s := in.State(); s != txn.StatePending {
		return fmt.Errorf("txn %d: RunInitial in state %s", in.ID, s)
	}
	owner := lock.Owner(in.ID)
	var reqs []lock.Request
	if c.Protocol == MSSR {
		reqs = lock.Normalize(append(in.T.InitialRW.Requests(), in.T.FinalRW.Requests()...))
	} else {
		reqs = in.T.InitialRW.Requests()
	}
	byPart := c.byPartition(reqs)
	if c.Protocol == MSSR {
		if !c.acquireWaitDie(owner, byPart) {
			c.M.MarkAborted(in)
			c.Stats.add(func(d *DistCounters) { d.Aborts++ })
			return txn.ErrAborted
		}
	} else {
		c.acquire(owner, byPart)
	}

	if err := c.M.ExecSection(in, txn.StageInitial); err != nil {
		c.release(owner, byPart)
		c.M.MarkAborted(in)
		c.Stats.add(func(d *DistCounters) { d.Aborts++ })
		return err
	}

	if c.Protocol == MSSR {
		// Atomic commitment is deferred to the final commit; the held
		// locks make the initial writes unobservable until then.
		c.mu.Lock()
		if c.held == nil {
			c.held = make(map[txn.ID][]lock.Request)
		}
		c.held[in.ID] = reqs
		c.mu.Unlock()
		c.M.MarkInitialCommitted(in)
		return nil
	}
	c.commitSection(in.T.InitialRW.Requests())
	c.M.MarkInitialCommitted(in)
	c.release(owner, byPart)
	return nil
}

// RunFinal implements txn.CC: final section, concluding atomic commitment,
// release of every remaining lock.
func (c *ShardedCC) RunFinal(in *txn.Instance) error {
	owner := lock.Owner(in.ID)
	if c.Protocol == MSSR {
		switch s := in.State(); s {
		case txn.StateInitialCommitted, txn.StateRetracted:
		default:
			return fmt.Errorf("txn %d: RunFinal in state %s", in.ID, s)
		}
		c.mu.Lock()
		heldReqs := c.held[in.ID]
		delete(c.held, in.ID)
		c.mu.Unlock()
		heldBy := c.byPartition(heldReqs)
		if in.State() == txn.StateRetracted {
			c.release(owner, heldBy) // a cascade got here first
			return txn.ErrRetracted
		}
		err := c.M.ExecSection(in, txn.StageFinal)
		if err == nil {
			// One 2PC covers both sections' writes (Algorithm 1).
			c.commitSection(lock.Normalize(append(in.T.InitialRW.Requests(), in.T.FinalRW.Requests()...)))
		}
		retracted := c.M.MarkFinalCommitted(in)
		c.release(owner, heldBy)
		if err == nil && retracted {
			return txn.ErrRetracted
		}
		return err
	}

	switch s := in.State(); s {
	case txn.StateInitialCommitted:
	case txn.StateRetracted:
		return txn.ErrRetracted
	default:
		return fmt.Errorf("txn %d: RunFinal in state %s", in.ID, s)
	}
	reqs := in.T.FinalRW.Requests()
	byPart := c.byPartition(reqs)
	c.acquire(owner, byPart)
	err := c.M.ExecSection(in, txn.StageFinal)
	if err == nil {
		c.commitSection(reqs)
	}
	retracted := c.M.MarkFinalCommitted(in)
	c.release(owner, byPart)
	if err == nil && retracted {
		return txn.ErrRetracted
	}
	return err
}
