package twopc

import (
	"path/filepath"
	"testing"
	"time"

	"croesus/internal/lock"
	"croesus/internal/netsim"
	"croesus/internal/store"
	"croesus/internal/transport"
	"croesus/internal/txn"
	"croesus/internal/vclock"
	"croesus/internal/wal"
)

// prefixPartitioner routes "1..." to partition 1, "2..." to 2, rest to 0.
func prefixPartitioner(key string) int {
	switch key[0] {
	case '1':
		return 1
	case '2':
		return 2
	default:
		return 0
	}
}

// testFleet builds a three-partition fleet whose home edge 0 reaches
// partition 1 over a 10ms link and partition 2 over a 30ms link (infinite
// bandwidth, so transfer time is pure propagation).
func testFleet(clk vclock.Clock) (*ShardedCC, []*Partition) {
	parts := make([]*Partition, 3)
	for i := range parts {
		parts[i] = NewPartitionOver(i, store.New(), lock.NewManager(clk))
	}
	links := []transport.Path{
		nil,
		&netsim.Link{Name: "0-1", Propagation: 10 * time.Millisecond},
		&netsim.Link{Name: "0-2", Propagation: 30 * time.Millisecond},
	}
	mgr := txn.NewManager(clk, nil, nil)
	mgr.DB = &ShardedStore{Parts: parts, Partitioner: prefixPartitioner}
	cc := &ShardedCC{
		Clk:         clk,
		M:           mgr,
		Home:        0,
		Parts:       parts,
		Links:       links,
		Partitioner: prefixPartitioner,
		Protocol:    MSIA,
		Stats:       &DistStats{},
	}
	return cc, parts
}

func shardedCrossTxn() *txn.Txn {
	body := func(c *txn.Ctx) error {
		c.Put("1a", store.Int64Value(1))
		c.Put("2b", store.Int64Value(2))
		return nil
	}
	return &txn.Txn{
		Name:      "cross",
		InitialRW: txn.RWSet{Writes: []string{"1a", "2b"}},
		FinalRW:   txn.RWSet{Writes: []string{"1a", "2b"}},
		Initial:   body,
		Final:     body,
	}
}

// The 2PC prepare/commit fan-out is parallel: each phase charges every
// involved link but costs only the slowest round trip, not the sum of
// sequential partition visits. With 10ms and 30ms links, one initial
// commit breaks down as
//
//	lock round (ordered, sequential):  2×10 + 2×30 = 80ms
//	prepare fan-out (parallel):        max(2×10, 2×30) = 60ms
//	commit fan-out (parallel):         max(10, 30)     = 30ms
//	release round (one-way each):      10 + 30         = 40ms
//
// for 210ms total; the old sequential rounds cost 80+80+40+40 = 240ms.
func TestCommitFanOutChargesMaxNotSum(t *testing.T) {
	clk := vclock.NewSim()
	cc, _ := testFleet(clk)
	var elapsed time.Duration
	clk.Run(func() {
		start := clk.Now()
		in := cc.M.NewInstance(shardedCrossTxn(), nil)
		if err := cc.RunInitial(in); err != nil {
			t.Errorf("RunInitial: %v", err)
		}
		elapsed = clk.Now() - start
	})
	if want := 210 * time.Millisecond; elapsed != want {
		t.Errorf("initial commit took %s, want %s (parallel fan-out charges the max per phase)", elapsed, want)
	}
	st := cc.Stats.Snapshot()
	if st.TwoPCRounds != 1 || st.CrossEdgeCommits != 1 {
		t.Errorf("rounds/cross = %d/%d, want 1/1", st.TwoPCRounds, st.CrossEdgeCommits)
	}
	if st.PrepareRPCs != 2 || st.CommitRPCs != 2 {
		t.Errorf("prepare/commit RPCs = %d/%d, want 2/2 — the fan-out must still message every participant", st.PrepareRPCs, st.CommitRPCs)
	}
	if st.LockRPCs != 2 {
		t.Errorf("lock RPCs = %d, want 2", st.LockRPCs)
	}
}

// A durable fleet logs every section commit: single-partition commits as a
// closed data batch, multi-partition commits as staged blocks plus the
// coordinator's decision — and each partition's log recovers to exactly
// its live store, with nothing left staged.
func TestDurableCommitLifecycle(t *testing.T) {
	clk := vclock.NewSim()
	cc, parts := testFleet(clk)
	dir := t.TempDir()
	paths := make([]string, len(parts))
	for i, p := range parts {
		paths[i] = filepath.Join(dir, "p.wal"+string(rune('0'+i)))
		l, err := wal.Open(paths[i])
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		p.WAL = l
	}

	clk.Run(func() {
		in := cc.M.NewInstance(shardedCrossTxn(), nil)
		if err := cc.RunInitial(in); err != nil {
			t.Errorf("RunInitial: %v", err)
			return
		}
		if err := cc.RunFinal(in); err != nil {
			t.Errorf("RunFinal: %v", err)
		}
		// A home-only transaction exercises the local durable commit.
		local := &txn.Txn{
			Name:      "local",
			InitialRW: txn.RWSet{Writes: []string{"0c"}},
			FinalRW:   txn.RWSet{},
			Initial: func(c *txn.Ctx) error {
				c.Put("0c", store.Int64Value(3))
				return nil
			},
			Final: func(c *txn.Ctx) error { return nil },
		}
		lin := cc.M.NewInstance(local, nil)
		if err := cc.RunInitial(lin); err != nil {
			t.Errorf("local RunInitial: %v", err)
		}
		if err := cc.RunFinal(lin); err != nil {
			t.Errorf("local RunFinal: %v", err)
		}
	})

	for i, p := range parts {
		res, err := wal.Recover(paths[i])
		if err != nil {
			t.Fatalf("recover partition %d: %v", i, err)
		}
		if len(res.InDoubt) != 0 {
			t.Errorf("partition %d: %d in-doubt blocks after clean commits", i, len(res.InDoubt))
		}
		live := p.Store.Snapshot()
		rec := res.Store.Snapshot()
		if len(live) != len(rec) {
			t.Errorf("partition %d: live %d keys, recovered %d", i, len(live), len(rec))
		}
		for k, v := range live {
			if rv, ok := rec[k]; !ok || string(rv) != string(v) {
				t.Errorf("partition %d key %q: live %q recovered %q", i, k, v, rv)
			}
		}
		if ids := p.StagedBy(0); len(ids) != 0 {
			t.Errorf("partition %d still stages %v", i, ids)
		}
	}
}
