// Shard map: the mutable routing table of a sharded fleet. The static
// partitioner of the original sharded keyspace hard-wired logical shard i to
// partition i; a ShardMap makes that binding explicit state — logical shards
// route to partitions through an epoch-versioned owner table — which is what
// lets the fleet move a shard between edges while transactions are in
// flight. MigrateShard is the movement itself: a quiesce-and-cutover key
// handoff run as a two-phase commit across the source and destination
// partitions, durable when the partitions carry WALs, so a crash schedule
// can land anywhere around a migration without losing, duplicating, or
// half-moving a key.
//
// Concurrency contract. Every transaction routed through a ShardedCC whose
// Map is set takes a shared "shard intent" lock (a synthetic key per logical
// shard, owned by the shard's home partition) alongside its data locks; a
// migration takes the same intent exclusively at both the old and the new
// home. The exclusive acquisition therefore waits out every in-flight
// transaction touching the shard — including ones about to insert keys the
// source store has never seen — and blocks new ones until the cutover is
// done: in-flight transactions finish on the old epoch, blocked ones wake,
// notice their routes went stale (ShardedCC re-checks after acquisition),
// and retry on the new map.
package twopc

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"croesus/internal/lock"
	"croesus/internal/obs"
	"croesus/internal/store"
	"croesus/internal/transport"
	"croesus/internal/txn"
	"croesus/internal/vclock"
	"croesus/internal/wal"
	"croesus/internal/workload"
)

// ShardIntentKey is the synthetic lock key serializing transactions against
// migrations of one logical shard. It parses as a key of that shard (so it
// routes to the shard's home partition) and sorts before every data key of
// the shard ('!' < any alphanumeric), which keeps AcquireAll's per-partition
// sorted batches acquiring the intent before the shard's data keys.
func ShardIntentKey(shard int) string {
	return "s" + strconv.Itoa(shard) + "/!intent"
}

// ShardMap routes keys to partitions: a tagged key ("s<k>/...") goes to the
// partition currently owning logical shard k, an untagged key hashes. The
// owner table is mutable — MigrateShard rebinds a shard to a new partition
// and bumps the epoch, the signal in-flight transactions use to detect that
// a route they planned under no longer holds.
type ShardMap struct {
	mu     sync.Mutex
	owner  []int
	epoch  int64
	frozen map[int][]vclock.Gate // mid-cutover shards; gates wake blocked routers
	hash   func(string) int
}

// NewShardMap returns a map of len(owners) logical shards over nParts
// partitions; owners[k] is shard k's initial home. Untagged keys hash over
// the partitions.
func NewShardMap(owners []int, nParts int) (*ShardMap, error) {
	if nParts <= 0 {
		return nil, fmt.Errorf("twopc: shard map needs at least one partition")
	}
	own := append([]int{}, owners...)
	for s, p := range own {
		if p < 0 || p >= nParts {
			return nil, fmt.Errorf("twopc: shard %d owned by unknown partition %d", s, p)
		}
	}
	return &ShardMap{owner: own, frozen: make(map[int][]vclock.Gate), hash: HashPartitioner(nParts)}, nil
}

// IdentityShardMap returns the classic one-shard-per-partition map: logical
// shard i lives on partition i.
func IdentityShardMap(n int) *ShardMap {
	owners := make([]int, n)
	for i := range owners {
		owners[i] = i
	}
	m, _ := NewShardMap(owners, n)
	return m
}

// Shards returns the number of logical shards.
func (m *ShardMap) Shards() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.owner)
}

// Epoch returns the current map epoch; it advances on every rebind.
func (m *ShardMap) Epoch() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// Owner returns the partition currently owning a logical shard.
func (m *ShardMap) Owner(shard int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.owner[shard]
}

// Lookup routes a key to its owning partition under the current map.
func (m *ShardMap) Lookup(key string) int {
	if s, ok := workload.ShardOf(key); ok {
		m.mu.Lock()
		if s < len(m.owner) {
			p := m.owner[s]
			m.mu.Unlock()
			return p
		}
		m.mu.Unlock()
	}
	return m.hash(key)
}

// Barrier blocks while key's shard is mid-cutover. Lock-protected paths
// never hit it (the shard intent quiesces them); it exists for the lock-free
// writers — retraction restores journaled through the sharded store — whose
// writes must land under the post-cutover route rather than race the copy.
func (m *ShardMap) Barrier(clk vclock.Clock, key string) {
	s, ok := workload.ShardOf(key)
	if !ok {
		return
	}
	for {
		m.mu.Lock()
		if _, fr := m.frozen[s]; !fr {
			m.mu.Unlock()
			return
		}
		g := clk.NewGate()
		m.frozen[s] = append(m.frozen[s], g)
		m.mu.Unlock()
		g.Wait()
	}
}

// freeze marks a shard mid-cutover; unfreeze rebinds it (when to ≥ 0),
// bumps the epoch, and wakes every blocked router.
func (m *ShardMap) freeze(shard int) {
	m.mu.Lock()
	if _, ok := m.frozen[shard]; !ok {
		m.frozen[shard] = nil
	}
	m.mu.Unlock()
}

func (m *ShardMap) unfreeze(shard, to int) {
	m.mu.Lock()
	gates := m.frozen[shard]
	delete(m.frozen, shard)
	if to >= 0 {
		m.owner[shard] = to
		m.epoch++
	}
	m.mu.Unlock()
	for _, g := range gates {
		g.Fire()
	}
}

// migMsgBytes sizes one migration protocol message; key payloads are
// charged at their real size.
const migMsgBytes = 256

// ShardMigration moves one logical shard between partitions: quiesce the
// shard (exclusive intent at both homes), copy its keys to the destination
// and delete them at the source as one atomic commitment (WAL-staged on
// durable partitions, coordinated by the destination), rebind the map, and
// release. Construct, then call Run from a clock participant.
type ShardMigration struct {
	Clk   vclock.Clock
	Map   *ShardMap
	Parts []*Partition
	// Shard moves From → To (partition indexes).
	Shard, From, To int
	// Link is the From→To path the key payload crosses; Reverse carries
	// the protocol round trips back. Nil models co-located partitions.
	Link, Reverse transport.Path
	// Faults, when set, is consulted for liveness: a migration never
	// reads or writes a fail-stopped partition, it retries instead.
	Faults FaultOracle
	// Owner is the migration's lock owner and WAL transaction id. It must
	// be fleet-unique and outside the transaction-id space (the cluster
	// allocates from a high range) so wait-die treats the migration as
	// younger than every transaction and logs can't collide.
	Owner uint64
	// RetryEvery and MaxAttempts pace retries when an involved edge is
	// down or crashes mid-handoff (defaults 250ms / 20).
	RetryEvery  time.Duration
	MaxAttempts int
	// Obs, when set, records migrate.quiesce / migrate.cutover spans
	// under the Tags tag string.
	Obs  *obs.Obs
	Tags string

	// Moved reports how many keys the completed migration carried.
	Moved int
}

func (g *ShardMigration) defaults() {
	if g.RetryEvery == 0 {
		g.RetryEvery = 250 * time.Millisecond
	}
	if g.MaxAttempts == 0 {
		g.MaxAttempts = 20
	}
}

// ErrMigrationFailed reports a migration that exhausted its retry budget
// (the involved edges never stayed up long enough to hand the shard over).
var ErrMigrationFailed = fmt.Errorf("twopc: shard migration failed")

// Run performs the migration, retrying around edge outages. The caller must
// be a clock participant. On success the map routes the shard to To and the
// source partition holds none of its keys.
func (g *ShardMigration) Run() error {
	g.defaults()
	if g.From == g.To {
		return nil
	}
	for attempt := 1; ; attempt++ {
		err := g.attempt()
		if err == nil {
			return nil
		}
		if attempt >= g.MaxAttempts {
			return fmt.Errorf("%w: shard %d %d→%d after %d attempts: %v",
				ErrMigrationFailed, g.Shard, g.From, g.To, attempt, err)
		}
		g.Clk.Sleep(g.RetryEvery)
	}
}

func (g *ShardMigration) down(pi int) bool { return g.Faults != nil && g.Faults.Down(pi) }

func (g *ShardMigration) epoch(pi int) int {
	if g.Faults == nil {
		return 0
	}
	return g.Faults.Epoch(pi)
}

func (g *ShardMigration) reachable() bool {
	if g.down(g.From) || g.down(g.To) {
		return false
	}
	if g.Link != nil && g.Link.IsDown() {
		return false
	}
	if g.Reverse != nil && g.Reverse.IsDown() {
		return false
	}
	return true
}

// shardKeys returns the shard's keys currently at the source, sorted.
func (g *ShardMigration) shardKeys() []string {
	snap := g.Parts[g.From].Store.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		if s, ok := workload.ShardOf(k); ok && s == g.Shard {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

func (g *ShardMigration) attempt() error {
	if !g.reachable() {
		return ErrCrashed
	}
	fromEpoch, toEpoch := g.epoch(g.From), g.epoch(g.To)

	// Transfer cost, charged from a pre-quiesce sizing pass: the payload
	// streams while the shard still serves (as production migrations do),
	// and only the cutover below is instantaneous. The protocol itself
	// costs a prepare and a commit round trip on the reverse path.
	var bytes int
	for _, k := range g.shardKeys() {
		if v, ok := g.Parts[g.From].Store.Get(k); ok {
			bytes += len(k) + len(v)
		}
	}
	var wait time.Duration
	if g.Link != nil {
		wait += g.Link.Charge(bytes + migMsgBytes)
	}
	if g.Reverse != nil {
		wait += g.Reverse.Charge(migMsgBytes) + g.Reverse.Charge(migMsgBytes)
	}
	if wait > 0 {
		g.Clk.Sleep(wait)
	}
	if !g.reachable() || g.epoch(g.From) != fromEpoch || g.epoch(g.To) != toEpoch {
		return ErrCrashed
	}

	// Quiesce: the exclusive shard intents wait out every in-flight
	// transaction touching the shard and block new ones at either home.
	owner := lock.Owner(g.Owner)
	intent := []lock.Request{{Key: ShardIntentKey(g.Shard), Mode: lock.Exclusive}}
	first, second := g.From, g.To
	if second < first {
		first, second = second, first
	}
	tQuiesce := g.Clk.Now()
	g.Parts[first].Locks.AcquireAll(owner, intent)
	g.Parts[second].Locks.AcquireAll(owner, intent)
	g.Obs.Span(obs.SpanQuiesce, g.Tags, tQuiesce, g.Clk.Now())
	release := func() {
		g.Parts[second].Locks.ReleaseAll(owner, intent)
		g.Parts[first].Locks.ReleaseAll(owner, intent)
	}
	// The waits above may have spanned crashes: a partition that crashed
	// since the sizing pass lost volatile state (including these locks).
	if !g.reachable() || g.epoch(g.From) != fromEpoch || g.epoch(g.To) != toEpoch {
		release()
		return ErrCrashed
	}

	// Cutover: no virtual time passes from here to the release. The
	// freeze parks lock-free writers (retraction restores) so nothing can
	// land on the source between the copy and the rebind.
	tCutover := g.Clk.Now()
	g.Map.freeze(g.Shard)
	keys := g.shardKeys()
	cr := CommitRound{ID: txn.ID(g.Owner), Round: RoundInitial}
	src, dst := g.Parts[g.From], g.Parts[g.To]
	puts := make([]wal.Record, 0, len(keys))
	dels := make([]wal.Record, 0, len(keys))
	vals := make([]storeVal, 0, len(keys))
	for _, k := range keys {
		v, ok := src.Store.Get(k)
		if !ok {
			continue
		}
		puts = append(puts, wal.Record{Op: wal.OpPut, Txn: g.Owner, Round: cr.Round, Key: k, Value: v})
		dels = append(dels, wal.Record{Op: wal.OpDelete, Txn: g.Owner, Round: cr.Round, Key: k})
		vals = append(vals, storeVal{key: k, val: v})
	}
	// Atomic commitment of the handoff, coordinated by the destination:
	// both sides stage durably, the destination's decision is the commit
	// point, and recovery semantics are exactly a 2PC round's — a crash
	// before the decision presume-aborts the move (keys stay at the
	// source), one after it completes the move from the logs.
	dst.StagePrepare(cr, g.To, puts)
	src.StagePrepare(cr, g.To, dels)
	dst.LogDecision(cr, true)
	dst.DeliverDecision(cr, true)
	src.DeliverDecision(cr, true)
	for _, kv := range vals {
		dst.Store.Put(kv.key, kv.val)
		src.Store.Delete(kv.key)
	}
	g.Moved = len(vals)
	g.Map.unfreeze(g.Shard, g.To)
	release()
	g.Obs.Span(obs.SpanCutover, g.Tags, tCutover, g.Clk.Now())
	return nil
}

type storeVal struct {
	key string
	val store.Value
}
