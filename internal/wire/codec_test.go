package wire

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"net"
	"reflect"
	"testing"
	"time"

	"croesus/internal/detect"
	"croesus/internal/video"
)

// hotEnvelopes is one representative envelope per hand-encoded kind, with
// edge cases (empty slices, zero values, present and absent trace) mixed
// in across the set.
func hotEnvelopes() []*Envelope {
	tc := &TraceCtx{Trace: 0xDEADBEEFCAFE, Parent: 7, Section: 2}
	dets := []detect.Detection{
		{Label: "dog", Confidence: 0.875, Box: video.Rect{X: 0.1, Y: 0.2, W: 0.3, H: 0.4}, TrackID: 3},
		{Label: "", Confidence: 0, Box: video.Rect{}, TrackID: -1},
	}
	return []*Envelope{
		{Kind: KindFrame, Frame: &Frame{Frame: sampleFrame(), Padding: []byte{1, 2, 3}, Trace: tc}},
		{Kind: KindFrame, Frame: &Frame{Frame: video.Frame{Index: -1, At: -time.Second}}},
		{Kind: KindInitialReply, InitialReply: &InitialReply{FrameIndex: 9, Labels: dets, Triggered: 4, Aborted: 1, SentToCloud: true, EdgeElapsed: 250 * time.Millisecond, Trace: tc}},
		{Kind: KindInitialReply, InitialReply: &InitialReply{}},
		{Kind: KindFinalReply, FinalReply: &FinalReply{FrameIndex: 9, Labels: dets, Corrections: 2, Apologies: []string{"label corrected to \"dog\"", ""}, Shed: true, EdgeElapsed: time.Hour}},
		{Kind: KindCloudRequest, CloudRequest: &CloudRequest{FrameIndex: 5, Frame: sampleFrame(), Padding: bytes.Repeat([]byte{0xAB}, 1024), Margin: -0.25, Section: 3, Trace: tc}},
		{Kind: KindCloudResponse, CloudResponse: &CloudResponse{FrameIndex: 5, Labels: dets[:1], DetectTime: 42 * time.Millisecond, Shed: true}},
		{Kind: KindPayload, Payload: &Payload{Path: "edge-a-cloud", Seq: 1 << 40, Padding: bytes.Repeat([]byte{7}, 333), Trace: tc}},
		{Kind: KindPayload, Payload: &Payload{Path: "", Seq: 0}},
		{Kind: KindAck, Ack: &Ack{Seq: 12345, Trace: tc}},
		{Kind: KindAck, Ack: &Ack{}},
		{Kind: KindBye},
	}
}

// gobTrip round-trips an envelope through plain gob — the reference
// semantics the binary codec must reproduce field-for-field.
func gobTrip(t *testing.T, e *Envelope) *Envelope {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		t.Fatalf("gob encode: %v", err)
	}
	var out Envelope
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("gob decode: %v", err)
	}
	return &out
}

// TestCodecMatchesGob cross-checks every hot kind: the binary codec's
// round trip must land on exactly the struct gob's round trip lands on
// (including nil-vs-empty slice conventions), so swapping the codec under
// the deployment binaries cannot change observable message content.
func TestCodecMatchesGob(t *testing.T) {
	for i, env := range hotEnvelopes() {
		a, b := pair()
		if err := a.Send(env); err != nil {
			t.Fatalf("#%d (%s) Send: %v", i, env.Kind, err)
		}
		got, err := b.Recv()
		if err != nil {
			t.Fatalf("#%d (%s) Recv: %v", i, env.Kind, err)
		}
		want := gobTrip(t, env)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("#%d (%s):\n codec = %+v\n gob   = %+v", i, env.Kind, got, want)
		}
	}
}

// TestRecvOwnsData pins down Recv's ownership contract: everything a Recv
// returns must survive later receives on the same connection, even though
// the codec decodes out of a shared per-connection buffer.
func TestRecvOwnsData(t *testing.T) {
	a, b := pair()
	first := &Envelope{Kind: KindPayload, Payload: &Payload{Path: "keep", Seq: 1, Padding: bytes.Repeat([]byte{0x5A}, 2048)}}
	if err := a.Send(first); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	keep := got.Payload
	// Hammer the same connection with different payloads; if Recv aliased
	// the read buffer, these would scribble over the retained message.
	for i := 0; i < 8; i++ {
		pad := bytes.Repeat([]byte{byte(i)}, 4096)
		if err := a.Send(&Envelope{Kind: KindPayload, Payload: &Payload{Path: fmt.Sprintf("other-%d", i), Seq: uint64(i + 2), Padding: pad}}); err != nil {
			t.Fatalf("Send #%d: %v", i, err)
		}
		if _, err := b.Recv(); err != nil {
			t.Fatalf("Recv #%d: %v", i, err)
		}
	}
	if keep.Path != "keep" || keep.Seq != 1 || len(keep.Padding) != 2048 {
		t.Fatalf("retained payload mutated: path=%q seq=%d pad=%d", keep.Path, keep.Seq, len(keep.Padding))
	}
	for i, v := range keep.Padding {
		if v != 0x5A {
			t.Fatalf("retained padding byte %d overwritten: %#x", i, v)
		}
	}
}

// TestConcurrentSend exercises the documented guarantee that Send is safe
// for concurrent writers: several goroutines share one connection and the
// single reader must see every message whole and uninterleaved. Run under
// -race this also proves the encode-buffer pool and sendMu discipline.
func TestConcurrentSend(t *testing.T) {
	c1, c2 := net.Pipe()
	sender, receiver := NewConn(c1), NewConn(c2)
	defer sender.Close()
	defer receiver.Close()

	const writers, perWriter = 4, 64
	errc := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			pad := bytes.Repeat([]byte{byte(w)}, 512+w)
			for i := 0; i < perWriter; i++ {
				seq := uint64(w)<<32 | uint64(i)
				e := &Envelope{Kind: KindPayload, Payload: &Payload{Path: fmt.Sprintf("writer-%d", w), Seq: seq, Padding: pad}}
				if err := sender.Send(e); err != nil {
					errc <- fmt.Errorf("writer %d send %d: %v", w, i, err)
					return
				}
			}
			errc <- nil
		}(w)
	}

	next := make([]uint64, writers)
	for n := 0; n < writers*perWriter; n++ {
		got, err := receiver.Recv()
		if err != nil {
			t.Fatalf("Recv #%d: %v", n, err)
		}
		p := got.Payload
		w := int(p.Seq >> 32)
		if w < 0 || w >= writers {
			t.Fatalf("mangled seq %#x", p.Seq)
		}
		if i := p.Seq & 0xFFFFFFFF; i != next[w] {
			t.Fatalf("writer %d out of order: got %d, want %d", w, i, next[w])
		}
		next[w]++
		if p.Path != fmt.Sprintf("writer-%d", w) || len(p.Padding) != 512+w {
			t.Fatalf("interleaved frame from writer %d: path=%q pad=%d", w, p.Path, len(p.Padding))
		}
		for _, v := range p.Padding {
			if v != byte(w) {
				t.Fatalf("writer %d padding corrupted", w)
			}
		}
	}
	for w := 0; w < writers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzDecode feeds raw frames into the receive path: any input must either
// decode or fail with an error — never panic, never allocate unboundedly —
// and whatever decodes must re-encode to a byte-identical frame when sent
// again (the codec is canonical).
func FuzzDecode(f *testing.F) {
	for _, env := range hotEnvelopes() {
		var buf bytes.Buffer
		c := NewConn(pipeRWC{Reader: &bytes.Buffer{}, Writer: &buf})
		if err := c.Send(env); err != nil {
			f.Fatalf("seed Send(%s): %v", env.Kind, err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{tagBye, 0})
	f.Add([]byte{tagPayload, 3, 0, 0, 0})
	f.Add([]byte{0xFF, 1, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewConn(pipeRWC{Reader: bytes.NewReader(data), Writer: &bytes.Buffer{}})
		env, err := c.Recv()
		if err != nil {
			return
		}
		// Canonical re-encode: send the decoded envelope and decode again.
		var buf bytes.Buffer
		out := NewConn(pipeRWC{Reader: &bytes.Buffer{}, Writer: &buf})
		if err := out.Send(env); err != nil {
			t.Fatalf("re-encode of decoded %s failed: %v", env.Kind, err)
		}
		back := NewConn(pipeRWC{Reader: &buf, Writer: &bytes.Buffer{}})
		env2, err := back.Recv()
		if err != nil {
			t.Fatalf("re-decode of %s failed: %v", env.Kind, err)
		}
		if !reflect.DeepEqual(env, env2) {
			t.Fatalf("round trip not stable:\n first = %+v\n again = %+v", env, env2)
		}
	})
}

func BenchmarkCodec(b *testing.B) {
	bench := func(name string, env *Envelope) {
		b.Run(name, func(b *testing.B) {
			var buf bytes.Buffer
			c := NewConn(pipeRWC{Reader: &buf, Writer: &buf})
			var e Envelope
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Send(env); err != nil {
					b.Fatal(err)
				}
				if err := c.RecvReuse(&e); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	bench("payload-32KiB", &Envelope{Kind: KindPayload, Payload: &Payload{Path: "client-edge-a", Seq: 9, Padding: make([]byte, 32<<10)}})
	bench("ack", &Envelope{Kind: KindAck, Ack: &Ack{Seq: 9}})
}
