// Package wire defines the message protocol spoken between the real
// TCP deployment binaries (croesus-client, croesus-edge, croesus-cloud).
// Every connection carries a stream of Envelopes; the Kind field selects
// the payload, keeping decoding trivial and version drift visible. The
// framing and per-kind encoding live in codec.go: a length-prefixed binary
// codec for the hot kinds, gob only for the control channel.
package wire

import (
	"fmt"
	"time"

	"croesus/internal/detect"
	"croesus/internal/video"
)

// Kind discriminates envelope payloads.
type Kind string

// Message kinds.
const (
	KindFrame         Kind = "frame"          // client → edge
	KindInitialReply  Kind = "initial-reply"  // edge → client
	KindFinalReply    Kind = "final-reply"    // edge → client
	KindCloudRequest  Kind = "cloud-request"  // edge → cloud
	KindCloudResponse Kind = "cloud-response" // cloud → edge
	KindPayload       Kind = "payload"        // fleet transport: opaque path traffic
	KindAck           Kind = "ack"            // fleet transport: delivery acknowledgement
	KindBye           Kind = "bye"            // either direction: drain and close
	KindControl       Kind = "control"        // orchestrator → node: control-channel command
	KindControlReply  Kind = "control-reply"  // node → orchestrator: command result
)

// TraceCtx is the compact trace context a wire message carries so spans
// emitted on opposite ends of a socket link into one tree. Trace is the
// 64-bit trace ID minted by the originating process (client or edge);
// Parent is the span on the sending side that causally encloses the
// receiver's work; Section is the inference-graph section index the hop
// serves (0 on the classic two-stage path). Messages from untraced
// processes leave the pointer nil — the codec spends one flag byte on the
// absent case, so the untraced wire cost is unchanged.
type TraceCtx struct {
	Trace   uint64
	Parent  uint64
	Section int
}

// Frame is a client-submitted video frame. Padding (optional) carries
// synthetic payload bytes so the wire cost resembles a real encoded frame.
type Frame struct {
	Frame   video.Frame
	Padding []byte
	Trace   *TraceCtx
}

// InitialReply is the initial-commit response for one frame.
type InitialReply struct {
	FrameIndex  int
	Labels      []detect.Detection
	Triggered   int // transactions triggered
	Aborted     int
	SentToCloud bool
	EdgeElapsed time.Duration // edge receive → initial commit
	Trace       *TraceCtx     // echo of the frame's context (Parent = edge root span)
}

// FinalReply is the final-commit response for one frame. Shed reports that
// the cloud batcher dropped this frame's validation under overload, so the
// final labels are the edge's own.
type FinalReply struct {
	FrameIndex  int
	Labels      []detect.Detection
	Corrections int
	Apologies   []string
	Shed        bool
	EdgeElapsed time.Duration // edge receive → final commit
	Trace       *TraceCtx     // echo of the frame's context (Parent = edge root span)
}

// CloudRequest asks the cloud node to detect one frame. Margin is the
// frame's shedding priority (core.ValidationMargin): under overload the
// cloud batcher sheds the lowest-margin frames first. Section, when the
// edge runs an inference graph, is the index of the graph section this
// hop serves (0 on the classic two-stage path, where the only cloud hop
// is the final validation).
type CloudRequest struct {
	FrameIndex int
	Frame      video.Frame
	Padding    []byte
	Margin     float64
	Section    int
	Trace      *TraceCtx // Parent = the edge's rpc.cloud span for this hop
}

// CloudResponse returns the cloud labels for one frame. Shed means the
// cloud's admission control dropped the request before the model ran; the
// edge finalizes with its own labels — Croesus' degradation mode over real
// sockets.
type CloudResponse struct {
	FrameIndex int
	Labels     []detect.Detection
	DetectTime time.Duration
	Shed       bool
	Trace      *TraceCtx // echo of the request's context
}

// Payload is one opaque fleet-transport message: the TCP transport ships
// every modeled fleet hop (client→edge frames, edge→cloud validation
// traffic, inter-edge 2PC messages) as a Payload whose Padding carries the
// modeled byte count, so the wire cost is paid for real. Path names the
// fleet path for debugging; Seq matches the switch's Ack.
type Payload struct {
	Path    string
	Seq     uint64
	Padding []byte
	Trace   *TraceCtx
}

// Ack acknowledges delivery of the Payload with the same Seq.
type Ack struct {
	Seq   uint64
	Trace *TraceCtx // echo of the payload's context
}

// Control is one orchestrator command on a node's control channel
// (croesus-fleet → croesus-edge/-cloud/-client). Op selects the command;
// the remaining fields are its operands — unused ones stay zero. The
// defined ops:
//
//	ping        liveness probe; Data echoes the node role
//	report      Data returns the node's progress report as JSON
//	drain       edge: finish in-flight frames, refuse new ones (edge_retire)
//	link        edge: blackhole (Down=true) or heal the named Path
//	            ("cloud" or "client") — a per-path link fault
//	rate        client: multiply the capture rate by Rate (workload_shift)
//	redial      client: reconnect to the edge at Addr (migrate_camera)
//	checkpoint  edge: compact the WAL to a snapshot of current state
//	verify      edge: replay the WAL into a fresh store and compare with
//	            the live store — the fleet's VerifyDurability
//	quit        shut down gracefully (flush traces and reports first)
type Control struct {
	Seq  uint64
	Op   string
	Path string
	Addr string
	Down bool
	Rate float64
}

// ControlReply answers the Control with the same Seq. Data carries the
// op-specific result as JSON (reports, verification verdicts).
type ControlReply struct {
	Seq  uint64
	OK   bool
	Err  string
	Data []byte
}

// Envelope is the single on-wire message type.
type Envelope struct {
	Kind          Kind
	Frame         *Frame
	InitialReply  *InitialReply
	FinalReply    *FinalReply
	CloudRequest  *CloudRequest
	CloudResponse *CloudResponse
	Payload       *Payload
	Ack           *Ack
	Control       *Control
	ControlReply  *ControlReply
}

// Validate checks that the payload matches the kind.
func (e *Envelope) Validate() error {
	var ok bool
	switch e.Kind {
	case KindFrame:
		ok = e.Frame != nil
	case KindInitialReply:
		ok = e.InitialReply != nil
	case KindFinalReply:
		ok = e.FinalReply != nil
	case KindCloudRequest:
		ok = e.CloudRequest != nil
	case KindCloudResponse:
		ok = e.CloudResponse != nil
	case KindPayload:
		ok = e.Payload != nil
	case KindAck:
		ok = e.Ack != nil
	case KindControl:
		ok = e.Control != nil
	case KindControlReply:
		ok = e.ControlReply != nil
	case KindBye:
		ok = true
	default:
		return fmt.Errorf("wire: unknown kind %q", e.Kind)
	}
	if !ok {
		return fmt.Errorf("wire: kind %q with missing payload", e.Kind)
	}
	return nil
}
