package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"croesus/internal/detect"
	"croesus/internal/video"
)

// pipeRWC adapts an in-memory duplex pipe to io.ReadWriteCloser.
type pipeRWC struct {
	io.Reader
	io.Writer
}

func (pipeRWC) Close() error { return nil }

func pair() (*Conn, *Conn) {
	aToB := &bytes.Buffer{}
	bToA := &bytes.Buffer{}
	a := NewConn(pipeRWC{Reader: bToA, Writer: aToB})
	b := NewConn(pipeRWC{Reader: aToB, Writer: bToA})
	return a, b
}

func sampleFrame() video.Frame {
	return video.Frame{
		Index: 7, At: 3 * time.Second, Width: 1280, Height: 720, SizeBytes: 123456,
		Objects: []video.Object{{TrackID: 1, Class: "dog", Box: video.Rect{X: 0.1, Y: 0.2, W: 0.3, H: 0.4}, Difficulty: 0.5}},
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	a, b := pair()
	want := &Envelope{Kind: KindFrame, Frame: &Frame{Frame: sampleFrame(), Padding: []byte{1, 2, 3}}}
	if err := a.Send(want); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if got.Kind != KindFrame || got.Frame == nil {
		t.Fatalf("got %+v", got)
	}
	if got.Frame.Frame.Index != 7 || len(got.Frame.Frame.Objects) != 1 || len(got.Frame.Padding) != 3 {
		t.Errorf("frame fields lost: %+v", got.Frame)
	}
}

// allKinds is the protocol's complete kind set; the round-trip table below
// must cover every entry, so adding a kind without wire-test coverage
// fails here.
var allKinds = []Kind{
	KindFrame, KindInitialReply, KindFinalReply,
	KindCloudRequest, KindCloudResponse,
	KindPayload, KindAck, KindBye,
	KindControl, KindControlReply,
}

// TestAllKindsRoundTrip sends one envelope of every message type —
// including the fleet-transport Payload/Ack pair and the batched-cloud
// fields (Margin, Shed) the TCP deployment added — and checks each
// payload's fields survive the trip intact.
func TestAllKindsRoundTrip(t *testing.T) {
	d := detect.Detection{Label: "dog", Confidence: 0.9, Box: video.Rect{X: 0.1, Y: 0.1, W: 0.2, H: 0.2}, TrackID: 4}
	cases := []struct {
		env   *Envelope
		check func(t *testing.T, got *Envelope)
	}{
		{
			env: &Envelope{Kind: KindFrame, Frame: &Frame{Frame: sampleFrame(), Padding: []byte{9}}},
			check: func(t *testing.T, got *Envelope) {
				if got.Frame.Frame.Index != 7 || len(got.Frame.Padding) != 1 {
					t.Errorf("frame fields lost: %+v", got.Frame)
				}
			},
		},
		{
			env: &Envelope{Kind: KindInitialReply, InitialReply: &InitialReply{FrameIndex: 1, Labels: []detect.Detection{d}, Triggered: 2, Aborted: 1, SentToCloud: true, EdgeElapsed: time.Second}},
			check: func(t *testing.T, got *Envelope) {
				r := got.InitialReply
				if r.FrameIndex != 1 || len(r.Labels) != 1 || r.Triggered != 2 || r.Aborted != 1 || !r.SentToCloud || r.EdgeElapsed != time.Second {
					t.Errorf("initial reply fields lost: %+v", r)
				}
			},
		},
		{
			env: &Envelope{Kind: KindFinalReply, FinalReply: &FinalReply{FrameIndex: 1, Labels: []detect.Detection{d}, Corrections: 1, Apologies: []string{"sorry"}, Shed: true}},
			check: func(t *testing.T, got *Envelope) {
				r := got.FinalReply
				if r.Corrections != 1 || len(r.Apologies) != 1 || !r.Shed {
					t.Errorf("final reply fields lost: %+v", r)
				}
			},
		},
		{
			env: &Envelope{Kind: KindCloudRequest, CloudRequest: &CloudRequest{FrameIndex: 2, Frame: sampleFrame(), Padding: []byte{1, 2}, Margin: 0.42}},
			check: func(t *testing.T, got *Envelope) {
				r := got.CloudRequest
				if r.FrameIndex != 2 || r.Margin != 0.42 || len(r.Padding) != 2 {
					t.Errorf("cloud request fields lost: %+v", r)
				}
			},
		},
		{
			env: &Envelope{Kind: KindCloudResponse, CloudResponse: &CloudResponse{FrameIndex: 2, Labels: []detect.Detection{d}, DetectTime: time.Second, Shed: true}},
			check: func(t *testing.T, got *Envelope) {
				r := got.CloudResponse
				if r.FrameIndex != 2 || !r.Shed || r.DetectTime != time.Second {
					t.Errorf("cloud response fields lost: %+v", r)
				}
			},
		},
		{
			env: &Envelope{Kind: KindPayload, Payload: &Payload{Path: "west-cloud", Seq: 99, Padding: make([]byte, 1<<10), Trace: &TraceCtx{Trace: 0xabc, Parent: 0xdef, Section: 1}}},
			check: func(t *testing.T, got *Envelope) {
				p := got.Payload
				if p.Path != "west-cloud" || p.Seq != 99 || len(p.Padding) != 1<<10 {
					t.Errorf("payload fields lost: path=%q seq=%d pad=%d", p.Path, p.Seq, len(p.Padding))
				}
				if p.Trace == nil || p.Trace.Trace != 0xabc || p.Trace.Parent != 0xdef || p.Trace.Section != 1 {
					t.Errorf("payload trace ctx lost: %+v", p.Trace)
				}
			},
		},
		{
			env: &Envelope{Kind: KindAck, Ack: &Ack{Seq: 99}},
			check: func(t *testing.T, got *Envelope) {
				if got.Ack.Seq != 99 {
					t.Errorf("ack seq lost: %+v", got.Ack)
				}
			},
		},
		{
			env: &Envelope{Kind: KindControl, Control: &Control{Seq: 7, Op: "link", Path: "cloud", Addr: "127.0.0.1:9", Down: true, Rate: 1.5}},
			check: func(t *testing.T, got *Envelope) {
				c := got.Control
				if c.Seq != 7 || c.Op != "link" || c.Path != "cloud" || c.Addr != "127.0.0.1:9" || !c.Down || c.Rate != 1.5 {
					t.Errorf("control fields lost: %+v", c)
				}
			},
		},
		{
			env: &Envelope{Kind: KindControlReply, ControlReply: &ControlReply{Seq: 7, OK: true, Err: "e", Data: []byte(`{"x":1}`)}},
			check: func(t *testing.T, got *Envelope) {
				r := got.ControlReply
				if r.Seq != 7 || !r.OK || r.Err != "e" || string(r.Data) != `{"x":1}` {
					t.Errorf("control reply fields lost: %+v", r)
				}
			},
		},
		{
			env:   &Envelope{Kind: KindBye},
			check: func(t *testing.T, got *Envelope) {},
		},
	}

	covered := map[Kind]bool{}
	a, b := pair()
	for _, tc := range cases {
		covered[tc.env.Kind] = true
		if err := a.Send(tc.env); err != nil {
			t.Fatalf("Send(%s): %v", tc.env.Kind, err)
		}
		got, err := b.Recv()
		if err != nil {
			t.Fatalf("Recv(%s): %v", tc.env.Kind, err)
		}
		if got.Kind != tc.env.Kind {
			t.Fatalf("kind = %s, want %s", got.Kind, tc.env.Kind)
		}
		tc.check(t, got)
	}
	for _, k := range allKinds {
		if !covered[k] {
			t.Errorf("message kind %q has no round-trip coverage", k)
		}
	}
}

// TestTraceCtxRoundTrip checks every message type that can carry a trace
// context preserves it, and that an absent context stays nil — the
// untraced wire format must be unchanged.
func TestTraceCtxRoundTrip(t *testing.T) {
	tc := &TraceCtx{Trace: 1234567890123456789, Parent: 42, Section: 2}
	a, b := pair()
	envs := []*Envelope{
		{Kind: KindFrame, Frame: &Frame{Frame: sampleFrame(), Trace: tc}},
		{Kind: KindInitialReply, InitialReply: &InitialReply{FrameIndex: 1, Trace: tc}},
		{Kind: KindFinalReply, FinalReply: &FinalReply{FrameIndex: 1, Trace: tc}},
		{Kind: KindCloudRequest, CloudRequest: &CloudRequest{FrameIndex: 2, Frame: sampleFrame(), Trace: tc}},
		{Kind: KindCloudResponse, CloudResponse: &CloudResponse{FrameIndex: 2, Trace: tc}},
		{Kind: KindPayload, Payload: &Payload{Path: "p", Seq: 1, Trace: tc}},
		{Kind: KindAck, Ack: &Ack{Seq: 1, Trace: tc}},
	}
	extract := func(e *Envelope) *TraceCtx {
		switch e.Kind {
		case KindFrame:
			return e.Frame.Trace
		case KindInitialReply:
			return e.InitialReply.Trace
		case KindFinalReply:
			return e.FinalReply.Trace
		case KindCloudRequest:
			return e.CloudRequest.Trace
		case KindCloudResponse:
			return e.CloudResponse.Trace
		case KindPayload:
			return e.Payload.Trace
		case KindAck:
			return e.Ack.Trace
		}
		return nil
	}
	for _, env := range envs {
		if err := a.Send(env); err != nil {
			t.Fatalf("Send(%s): %v", env.Kind, err)
		}
		got, err := b.Recv()
		if err != nil {
			t.Fatalf("Recv(%s): %v", env.Kind, err)
		}
		g := extract(got)
		if g == nil || *g != *tc {
			t.Errorf("%s: trace ctx = %+v, want %+v", env.Kind, g, tc)
		}
	}
	// Untraced messages arrive with a nil context.
	if err := a.Send(&Envelope{Kind: KindAck, Ack: &Ack{Seq: 7}}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if got.Ack.Trace != nil {
		t.Errorf("untraced ack grew a context: %+v", got.Ack.Trace)
	}
}

func TestValidateRejectsMismatches(t *testing.T) {
	bad := []*Envelope{
		{Kind: KindFrame},                          // missing payload
		{Kind: KindInitialReply},                   // missing payload
		{Kind: Kind("nonsense")},                   // unknown kind
		{Kind: KindCloudResponse, Frame: &Frame{}}, // wrong payload
		{Kind: KindPayload},                        // missing transport payload
		{Kind: KindAck},                            // missing ack
		{Kind: KindPayload, Ack: &Ack{Seq: 1}},     // wrong payload for kind
	}
	for _, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", e)
		}
	}
	// Every non-bye kind must reject an empty envelope of its kind.
	for _, k := range allKinds {
		if k == KindBye {
			continue
		}
		if err := (&Envelope{Kind: k}).Validate(); err == nil {
			t.Errorf("empty %q envelope accepted", k)
		}
	}
	if err := (&Envelope{Kind: KindBye}).Validate(); err != nil {
		t.Errorf("bye rejected: %v", err)
	}
}

func TestSendRejectsInvalid(t *testing.T) {
	a, _ := pair()
	if err := a.Send(&Envelope{Kind: KindFrame}); err == nil {
		t.Error("Send accepted an invalid envelope")
	}
}

func TestRecvRejectsCorruptStream(t *testing.T) {
	buf := bytes.NewBufferString("this is not gob")
	c := NewConn(pipeRWC{Reader: buf, Writer: &bytes.Buffer{}})
	if _, err := c.Recv(); err == nil {
		t.Error("Recv decoded garbage")
	}
}

func TestRecvEOF(t *testing.T) {
	c := NewConn(pipeRWC{Reader: &bytes.Buffer{}, Writer: &bytes.Buffer{}})
	if _, err := c.Recv(); !errors.Is(err, io.EOF) {
		t.Errorf("Recv on empty stream = %v, want EOF", err)
	}
}

// RecvReuse must decode a mixed payload stream correctly while reusing the
// envelope and padding buffer, with no state leaking between messages.
func TestRecvReuse(t *testing.T) {
	a, b := pair()
	sent := []*Envelope{
		{Kind: KindPayload, Payload: &Payload{Path: "p1", Seq: 1, Padding: make([]byte, 1<<10), Trace: &TraceCtx{Trace: 9, Parent: 8}}},
		{Kind: KindPayload, Payload: &Payload{Path: "p2", Seq: 2, Padding: make([]byte, 64)}},
		{Kind: KindPayload, Payload: &Payload{Path: "p3", Seq: 3}},
		{Kind: KindControl, Control: &Control{Seq: 4, Op: "ping"}},
		{Kind: KindBye},
	}
	for _, e := range sent {
		if err := a.Send(e); err != nil {
			t.Fatalf("Send(%s): %v", e.Kind, err)
		}
	}
	var env Envelope
	var firstPad []byte
	for i, want := range sent {
		if err := b.RecvReuse(&env); err != nil {
			t.Fatalf("RecvReuse #%d: %v", i, err)
		}
		if env.Kind != want.Kind {
			t.Fatalf("#%d kind = %s, want %s", i, env.Kind, want.Kind)
		}
		if want.Kind != KindPayload {
			continue
		}
		p := env.Payload
		if p.Path != want.Payload.Path || p.Seq != want.Payload.Seq || len(p.Padding) != len(want.Payload.Padding) {
			t.Fatalf("#%d payload = path %q seq %d pad %d, want %+v", i, p.Path, p.Seq, len(p.Padding), want.Payload)
		}
		if i == 0 {
			firstPad = p.Padding[:cap(p.Padding)]
			if p.Trace == nil || p.Trace.Trace != 9 {
				t.Fatalf("#%d trace lost: %+v", i, p.Trace)
			}
		} else {
			if p.Trace != nil {
				t.Fatalf("#%d stale trace leaked: %+v", i, p.Trace)
			}
			if len(p.Padding) > 0 && &p.Padding[0] != &firstPad[0] {
				t.Errorf("#%d padding buffer not reused", i)
			}
		}
	}
}
