package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"croesus/internal/detect"
	"croesus/internal/video"
)

// pipeRWC adapts an in-memory duplex pipe to io.ReadWriteCloser.
type pipeRWC struct {
	io.Reader
	io.Writer
}

func (pipeRWC) Close() error { return nil }

func pair() (*Conn, *Conn) {
	aToB := &bytes.Buffer{}
	bToA := &bytes.Buffer{}
	a := NewConn(pipeRWC{Reader: bToA, Writer: aToB})
	b := NewConn(pipeRWC{Reader: aToB, Writer: bToA})
	return a, b
}

func sampleFrame() video.Frame {
	return video.Frame{
		Index: 7, At: 3 * time.Second, Width: 1280, Height: 720, SizeBytes: 123456,
		Objects: []video.Object{{TrackID: 1, Class: "dog", Box: video.Rect{X: 0.1, Y: 0.2, W: 0.3, H: 0.4}, Difficulty: 0.5}},
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	a, b := pair()
	want := &Envelope{Kind: KindFrame, Frame: &Frame{Frame: sampleFrame(), Padding: []byte{1, 2, 3}}}
	if err := a.Send(want); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if got.Kind != KindFrame || got.Frame == nil {
		t.Fatalf("got %+v", got)
	}
	if got.Frame.Frame.Index != 7 || len(got.Frame.Frame.Objects) != 1 || len(got.Frame.Padding) != 3 {
		t.Errorf("frame fields lost: %+v", got.Frame)
	}
}

func TestAllKindsRoundTrip(t *testing.T) {
	a, b := pair()
	d := detect.Detection{Label: "dog", Confidence: 0.9, Box: video.Rect{X: 0.1, Y: 0.1, W: 0.2, H: 0.2}, TrackID: 4}
	envs := []*Envelope{
		{Kind: KindFrame, Frame: &Frame{Frame: sampleFrame()}},
		{Kind: KindInitialReply, InitialReply: &InitialReply{FrameIndex: 1, Labels: []detect.Detection{d}, Triggered: 2, SentToCloud: true, EdgeElapsed: time.Second}},
		{Kind: KindFinalReply, FinalReply: &FinalReply{FrameIndex: 1, Labels: []detect.Detection{d}, Corrections: 1, Apologies: []string{"sorry"}}},
		{Kind: KindCloudRequest, CloudRequest: &CloudRequest{FrameIndex: 2, Frame: sampleFrame()}},
		{Kind: KindCloudResponse, CloudResponse: &CloudResponse{FrameIndex: 2, Labels: []detect.Detection{d}, DetectTime: time.Second}},
		{Kind: KindBye},
	}
	for _, e := range envs {
		if err := a.Send(e); err != nil {
			t.Fatalf("Send(%s): %v", e.Kind, err)
		}
	}
	for _, want := range envs {
		got, err := b.Recv()
		if err != nil {
			t.Fatalf("Recv(%s): %v", want.Kind, err)
		}
		if got.Kind != want.Kind {
			t.Errorf("kind = %s, want %s", got.Kind, want.Kind)
		}
	}
}

func TestValidateRejectsMismatches(t *testing.T) {
	bad := []*Envelope{
		{Kind: KindFrame},                          // missing payload
		{Kind: KindInitialReply},                   // missing payload
		{Kind: Kind("nonsense")},                   // unknown kind
		{Kind: KindCloudResponse, Frame: &Frame{}}, // wrong payload
	}
	for _, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", e)
		}
	}
	if err := (&Envelope{Kind: KindBye}).Validate(); err != nil {
		t.Errorf("bye rejected: %v", err)
	}
}

func TestSendRejectsInvalid(t *testing.T) {
	a, _ := pair()
	if err := a.Send(&Envelope{Kind: KindFrame}); err == nil {
		t.Error("Send accepted an invalid envelope")
	}
}

func TestRecvRejectsCorruptStream(t *testing.T) {
	buf := bytes.NewBufferString("this is not gob")
	c := NewConn(pipeRWC{Reader: buf, Writer: &bytes.Buffer{}})
	if _, err := c.Recv(); err == nil {
		t.Error("Recv decoded garbage")
	}
}

func TestRecvEOF(t *testing.T) {
	c := NewConn(pipeRWC{Reader: &bytes.Buffer{}, Writer: &bytes.Buffer{}})
	if _, err := c.Recv(); !errors.Is(err, io.EOF) {
		t.Errorf("Recv on empty stream = %v, want EOF", err)
	}
}
