// Binary codec for the wire protocol.
//
// Every message is framed as [1-byte tag][uvarint body length][body]. The
// hot kinds — Payload, Ack, Frame, InitialReply, FinalReply, CloudRequest,
// CloudResponse — are hand-encoded: varints for integers, 8-byte
// little-endian for floats, length-prefixed bytes for strings and padding,
// one flag byte for the optional trace context. Bye is a bare tag with an
// empty body. Only the low-rate control channel (Control, ControlReply)
// still rides gob, encoded standalone inside the body so the stream framing
// stays self-describing.
//
// Encode buffers are pooled and written with a single Write per message;
// the receive side reads each body into a per-connection buffer, so a
// steady-state Payload/Ack exchange allocates nothing. gob's per-connection
// type dictionaries, reflection walks, and decode-side allocations — which
// dominated the TCP transport's bytes/op — are gone from the hot path.
package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"croesus/internal/detect"
	"croesus/internal/video"
)

// Wire tags (the 1-byte kind discriminator). Append-only: renumbering is a
// protocol break between binaries.
const (
	tagFrame byte = iota + 1
	tagInitialReply
	tagFinalReply
	tagCloudRequest
	tagCloudResponse
	tagPayload
	tagAck
	tagBye
	tagControl
	tagControlReply
)

// maxBody bounds one message body (256 MiB) so a corrupt length prefix
// cannot drive an unbounded allocation.
const maxBody = 1 << 28

// maxHeader is the widest possible frame header: tag + uvarint length.
const maxHeader = 1 + binary.MaxVarintLen64

func tagOf(k Kind) (byte, bool) {
	switch k {
	case KindFrame:
		return tagFrame, true
	case KindInitialReply:
		return tagInitialReply, true
	case KindFinalReply:
		return tagFinalReply, true
	case KindCloudRequest:
		return tagCloudRequest, true
	case KindCloudResponse:
		return tagCloudResponse, true
	case KindPayload:
		return tagPayload, true
	case KindAck:
		return tagAck, true
	case KindBye:
		return tagBye, true
	case KindControl:
		return tagControl, true
	case KindControlReply:
		return tagControlReply, true
	}
	return 0, false
}

// encPool holds encode buffers; each Send borrows one, appends header+body,
// writes once, and returns it.
var encPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}

// Conn frames Envelopes over a stream using the binary codec. Send is safe
// for concurrent use — an internal mutex serializes writers, so every
// producer on a shared socket (edge reply writers, transport paths) gets a
// whole-message write without its own lock. Recv/RecvReuse remain
// single-reader: exactly one goroutine may receive.
type Conn struct {
	sendMu sync.Mutex // serializes whole-message writes
	w      io.Writer
	br     *bufio.Reader
	rwc    io.ReadWriteCloser

	// readBuf holds the current message body; valid until the next receive.
	readBuf []byte
	// lastPath interns the previous Payload.Path so a homogeneous payload
	// stream does not re-allocate the string per message.
	lastPath string
}

// NewConn wraps rwc.
func NewConn(rwc io.ReadWriteCloser) *Conn {
	return &Conn{
		w:   rwc,
		br:  bufio.NewReaderSize(rwc, 32<<10),
		rwc: rwc,
	}
}

// Send validates, encodes, and writes one envelope as a single Write.
func (c *Conn) Send(e *Envelope) error {
	if err := e.Validate(); err != nil {
		return err
	}
	tag, _ := tagOf(e.Kind) // Validate rejected unknown kinds
	bp := encPool.Get().(*[]byte)
	b, err := appendBody((*bp)[:maxHeader], e)
	if err != nil {
		*bp = b[:0]
		encPool.Put(bp)
		return err
	}
	// Lay the header down directly before the body so one Write ships the
	// whole frame.
	var hdr [maxHeader]byte
	hdr[0] = tag
	n := binary.PutUvarint(hdr[1:], uint64(len(b)-maxHeader))
	start := maxHeader - 1 - n
	copy(b[start:], hdr[:1+n])

	c.sendMu.Lock()
	_, werr := c.w.Write(b[start:])
	c.sendMu.Unlock()

	*bp = b[:0]
	encPool.Put(bp)
	return werr
}

// Recv reads and validates one envelope. All returned data is owned by the
// caller: strings, padding, and labels are copied out of the connection's
// read buffer.
func (c *Conn) Recv() (*Envelope, error) {
	var e Envelope
	if err := c.recv(&e, false); err != nil {
		return nil, err
	}
	return &e, nil
}

// RecvReuse reads and validates one envelope into e, reusing e.Payload, its
// Padding backing array, and e.Ack across calls — a receive loop over
// homogeneous payload or ack traffic allocates nothing per message. Only
// for callers that do NOT retain the envelope or its padding beyond one
// iteration (the transport switch and ack reader); anything that keeps
// frame payloads must use Recv.
func (c *Conn) RecvReuse(e *Envelope) error {
	return c.recv(e, true)
}

func (c *Conn) recv(e *Envelope, reuse bool) error {
	tag, body, err := c.readMessage()
	if err != nil {
		return err
	}
	pay, ack := e.Payload, e.Ack
	*e = Envelope{}
	if reuse {
		e.Payload, e.Ack = pay, ack
	}
	if err := decodeBody(c, e, tag, body, reuse); err != nil {
		return err
	}
	return e.Validate()
}

// readMessage reads one frame header and its body into the connection
// buffer. The returned slice is valid until the next readMessage.
func (c *Conn) readMessage() (byte, []byte, error) {
	tag, err := c.br.ReadByte()
	if err != nil {
		return 0, nil, err // io.EOF at a frame boundary is a clean close
	}
	n, err := binary.ReadUvarint(c.br)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	if n > maxBody {
		return 0, nil, fmt.Errorf("wire: message body %d exceeds limit", n)
	}
	if uint64(cap(c.readBuf)) < n {
		c.readBuf = make([]byte, n)
	}
	body := c.readBuf[:n]
	if _, err := io.ReadFull(c.br, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return tag, body, nil
}

// Close closes the underlying stream.
func (c *Conn) Close() error { return c.rwc.Close() }

// ---------------------------------------------------------------------------
// Encoding

func appendBody(b []byte, e *Envelope) ([]byte, error) {
	switch e.Kind {
	case KindFrame:
		f := e.Frame
		b = appendVideoFrame(b, &f.Frame)
		b = appendByteSlice(b, f.Padding)
		return appendTrace(b, f.Trace), nil
	case KindInitialReply:
		r := e.InitialReply
		b = binary.AppendVarint(b, int64(r.FrameIndex))
		b = appendDetections(b, r.Labels)
		b = binary.AppendVarint(b, int64(r.Triggered))
		b = binary.AppendVarint(b, int64(r.Aborted))
		b = appendBool(b, r.SentToCloud)
		b = binary.AppendVarint(b, int64(r.EdgeElapsed))
		return appendTrace(b, r.Trace), nil
	case KindFinalReply:
		r := e.FinalReply
		b = binary.AppendVarint(b, int64(r.FrameIndex))
		b = appendDetections(b, r.Labels)
		b = binary.AppendVarint(b, int64(r.Corrections))
		b = binary.AppendUvarint(b, uint64(len(r.Apologies)))
		for _, s := range r.Apologies {
			b = appendString(b, s)
		}
		b = appendBool(b, r.Shed)
		b = binary.AppendVarint(b, int64(r.EdgeElapsed))
		return appendTrace(b, r.Trace), nil
	case KindCloudRequest:
		r := e.CloudRequest
		b = binary.AppendVarint(b, int64(r.FrameIndex))
		b = appendVideoFrame(b, &r.Frame)
		b = appendByteSlice(b, r.Padding)
		b = appendF64(b, r.Margin)
		b = binary.AppendVarint(b, int64(r.Section))
		return appendTrace(b, r.Trace), nil
	case KindCloudResponse:
		r := e.CloudResponse
		b = binary.AppendVarint(b, int64(r.FrameIndex))
		b = appendDetections(b, r.Labels)
		b = binary.AppendVarint(b, int64(r.DetectTime))
		b = appendBool(b, r.Shed)
		return appendTrace(b, r.Trace), nil
	case KindPayload:
		p := e.Payload
		b = appendString(b, p.Path)
		b = binary.AppendUvarint(b, p.Seq)
		b = appendByteSlice(b, p.Padding)
		return appendTrace(b, p.Trace), nil
	case KindAck:
		b = binary.AppendUvarint(b, e.Ack.Seq)
		return appendTrace(b, e.Ack.Trace), nil
	case KindBye:
		return b, nil
	case KindControl:
		return appendGob(b, e.Control)
	case KindControlReply:
		return appendGob(b, e.ControlReply)
	}
	return b, fmt.Errorf("wire: unknown kind %q", e.Kind)
}

func appendVideoFrame(b []byte, f *video.Frame) []byte {
	b = binary.AppendVarint(b, int64(f.Index))
	b = binary.AppendVarint(b, int64(f.At))
	b = binary.AppendVarint(b, int64(f.Width))
	b = binary.AppendVarint(b, int64(f.Height))
	b = binary.AppendVarint(b, int64(f.SizeBytes))
	b = binary.AppendUvarint(b, uint64(len(f.Objects)))
	for i := range f.Objects {
		o := &f.Objects[i]
		b = binary.AppendVarint(b, int64(o.TrackID))
		b = appendString(b, o.Class)
		b = appendRect(b, o.Box)
		b = appendF64(b, o.Difficulty)
	}
	return b
}

func appendDetections(b []byte, dets []detect.Detection) []byte {
	b = binary.AppendUvarint(b, uint64(len(dets)))
	for i := range dets {
		d := &dets[i]
		b = appendString(b, d.Label)
		b = appendF64(b, d.Confidence)
		b = appendRect(b, d.Box)
		b = binary.AppendVarint(b, int64(d.TrackID))
	}
	return b
}

func appendRect(b []byte, r video.Rect) []byte {
	b = appendF64(b, r.X)
	b = appendF64(b, r.Y)
	b = appendF64(b, r.W)
	return appendF64(b, r.H)
}

func appendTrace(b []byte, t *TraceCtx) []byte {
	if t == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	b = binary.AppendUvarint(b, t.Trace)
	b = binary.AppendUvarint(b, t.Parent)
	return binary.AppendVarint(b, int64(t.Section))
}

func appendF64(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendByteSlice(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendGob(b []byte, v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return b, err
	}
	return append(b, buf.Bytes()...), nil
}

// ---------------------------------------------------------------------------
// Decoding

var errTruncated = errors.New("wire: truncated message body")

// dec is a cursor over one message body. Every read checks bounds and
// latches the first error, so corrupt input degrades to an error return —
// never a panic or an oversized allocation.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = errTruncated
	}
}

func (d *dec) take(n int) []byte {
	if d.err != nil || n < 0 || n > len(d.b) {
		d.fail()
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

// count reads a slice length and bounds it by the bytes remaining (every
// element costs at least one byte), so a corrupt count cannot drive a huge
// make.
func (d *dec) count() int {
	n := d.uvarint()
	if n > uint64(len(d.b)) {
		d.fail()
		return 0
	}
	return int(n)
}

func (d *dec) f64() float64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func (d *dec) str() string {
	b := d.take(int(d.uvarint()))
	if len(b) == 0 {
		return ""
	}
	return string(b)
}

func (d *dec) bool() bool {
	b := d.take(1)
	return len(b) == 1 && b[0] != 0
}

func (d *dec) trace() *TraceCtx {
	b := d.take(1)
	if len(b) != 1 || b[0] == 0 {
		return nil
	}
	t := &TraceCtx{Trace: d.uvarint(), Parent: d.uvarint(), Section: int(d.varint())}
	if d.err != nil {
		return nil
	}
	return t
}

func (d *dec) videoFrame(f *video.Frame) {
	f.Index = int(d.varint())
	f.At = time.Duration(d.varint())
	f.Width = int(d.varint())
	f.Height = int(d.varint())
	f.SizeBytes = int(d.varint())
	if n := d.count(); n > 0 {
		f.Objects = make([]video.Object, n)
		for i := range f.Objects {
			o := &f.Objects[i]
			o.TrackID = int(d.varint())
			o.Class = d.str()
			o.Box = d.rect()
			o.Difficulty = d.f64()
		}
	}
}

func (d *dec) detections() []detect.Detection {
	n := d.count()
	if n == 0 {
		return nil
	}
	dets := make([]detect.Detection, n)
	for i := range dets {
		dt := &dets[i]
		dt.Label = d.str()
		dt.Confidence = d.f64()
		dt.Box = d.rect()
		dt.TrackID = int(d.varint())
	}
	return dets
}

func (d *dec) rect() video.Rect {
	return video.Rect{X: d.f64(), Y: d.f64(), W: d.f64(), H: d.f64()}
}

// byteSlice copies the payload bytes out of the read buffer (Recv: the
// caller owns the result).
func (d *dec) byteSlice() []byte {
	b := d.take(int(d.uvarint()))
	if len(b) == 0 {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// byteSliceInto copies the payload bytes into dst's backing array
// (RecvReuse: the buffer is reused across messages).
func (d *dec) byteSliceInto(dst []byte) []byte {
	b := d.take(int(d.uvarint()))
	if len(b) == 0 {
		if dst != nil {
			return dst[:0]
		}
		return nil
	}
	return append(dst[:0], b...)
}

func decodeBody(c *Conn, e *Envelope, tag byte, body []byte, reuse bool) error {
	d := dec{b: body}
	switch tag {
	case tagFrame:
		f := &Frame{}
		d.videoFrame(&f.Frame)
		f.Padding = d.byteSlice()
		f.Trace = d.trace()
		e.Kind, e.Frame = KindFrame, f
	case tagInitialReply:
		r := &InitialReply{}
		r.FrameIndex = int(d.varint())
		r.Labels = d.detections()
		r.Triggered = int(d.varint())
		r.Aborted = int(d.varint())
		r.SentToCloud = d.bool()
		r.EdgeElapsed = time.Duration(d.varint())
		r.Trace = d.trace()
		e.Kind, e.InitialReply = KindInitialReply, r
	case tagFinalReply:
		r := &FinalReply{}
		r.FrameIndex = int(d.varint())
		r.Labels = d.detections()
		r.Corrections = int(d.varint())
		if n := d.count(); n > 0 {
			r.Apologies = make([]string, n)
			for i := range r.Apologies {
				r.Apologies[i] = d.str()
			}
		}
		r.Shed = d.bool()
		r.EdgeElapsed = time.Duration(d.varint())
		r.Trace = d.trace()
		e.Kind, e.FinalReply = KindFinalReply, r
	case tagCloudRequest:
		r := &CloudRequest{}
		r.FrameIndex = int(d.varint())
		d.videoFrame(&r.Frame)
		r.Padding = d.byteSlice()
		r.Margin = d.f64()
		r.Section = int(d.varint())
		r.Trace = d.trace()
		e.Kind, e.CloudRequest = KindCloudRequest, r
	case tagCloudResponse:
		r := &CloudResponse{}
		r.FrameIndex = int(d.varint())
		r.Labels = d.detections()
		r.DetectTime = time.Duration(d.varint())
		r.Shed = d.bool()
		r.Trace = d.trace()
		e.Kind, e.CloudResponse = KindCloudResponse, r
	case tagPayload:
		p := e.Payload
		if !reuse || p == nil {
			p = &Payload{}
		}
		pad := p.Padding
		*p = Payload{}
		p.Path = c.internPath(d.take(int(d.uvarint())))
		p.Seq = d.uvarint()
		if reuse {
			p.Padding = d.byteSliceInto(pad)
		} else {
			p.Padding = d.byteSlice()
		}
		p.Trace = d.trace()
		e.Kind, e.Payload = KindPayload, p
	case tagAck:
		a := e.Ack
		if !reuse || a == nil {
			a = &Ack{}
		}
		*a = Ack{}
		a.Seq = d.uvarint()
		a.Trace = d.trace()
		e.Kind, e.Ack = KindAck, a
	case tagBye:
		e.Kind = KindBye
	case tagControl:
		ctl := &Control{}
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(ctl); err != nil {
			return err
		}
		e.Kind, e.Control = KindControl, ctl
		return nil
	case tagControlReply:
		r := &ControlReply{}
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(r); err != nil {
			return err
		}
		e.Kind, e.ControlReply = KindControlReply, r
		return nil
	default:
		return fmt.Errorf("wire: unknown tag %d", tag)
	}
	return d.err
}

// internPath turns the on-wire path bytes into a string, reusing the
// previous message's string when it matches — payload streams are
// per-path, so this is a hit on every message after the first.
func (c *Conn) internPath(b []byte) string {
	if string(b) == c.lastPath { // compiler avoids the alloc in this compare
		return c.lastPath
	}
	c.lastPath = string(b)
	return c.lastPath
}
