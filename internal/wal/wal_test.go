package wal

import (
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"croesus/internal/store"
)

func tmpLog(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "partition.wal")
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := tmpLog(t)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{Op: OpPut, Key: "a", Value: store.StringValue("1")},
		{Op: OpPut, Key: "b", Value: store.StringValue("two")},
		{Op: OpDelete, Key: "a"},
		{Op: OpPut, Key: "c", Value: nil},
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got []Record
	n, truncated, err := Replay(path, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Error("clean log reported truncation")
	}
	if n != len(want) {
		t.Fatalf("replayed %d records, want %d", n, len(want))
	}
	for i := range want {
		if got[i].Op != want[i].Op || got[i].Key != want[i].Key || string(got[i].Value) != string(want[i].Value) {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestRecoverRebuildsStore(t *testing.T) {
	path := tmpLog(t)
	l, _ := Open(path)
	l.AppendBatch([]Record{
		{Op: OpPut, Key: "x", Value: store.Int64Value(1)},
		{Op: OpPut, Key: "y", Value: store.Int64Value(2)},
		{Op: OpPut, Key: "x", Value: store.Int64Value(10)}, // overwrite
		{Op: OpDelete, Key: "y"},
	})
	l.Close()

	res, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 4 || res.Truncated {
		t.Errorf("n=%d truncated=%v", res.Records, res.Truncated)
	}
	if v, _ := res.Store.Get("x"); store.AsInt64(v) != 10 {
		t.Errorf("x = %d", store.AsInt64(v))
	}
	if _, ok := res.Store.Get("y"); ok {
		t.Error("deleted key y survived recovery")
	}
}

func TestRecoverMissingFile(t *testing.T) {
	res, err := Recover(filepath.Join(t.TempDir(), "never-created.wal"))
	if err != nil || res.Records != 0 || res.Truncated {
		t.Fatalf("missing log: %+v err=%v", res, err)
	}
	if res.Store.Len() != 0 {
		t.Error("store not empty")
	}
}

func TestTornTailTruncatedAndRecoverable(t *testing.T) {
	path := tmpLog(t)
	l, _ := Open(path)
	l.Append(Record{Op: OpPut, Key: "keep", Value: store.StringValue("v")})
	l.Append(Record{Op: OpPut, Key: "keep2", Value: store.StringValue("v2")})
	l.Close()
	intact, _ := os.Stat(path)

	// Crash mid-append: half a record lands on disk.
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	f.Write([]byte{9, 0, 0, 0, 0xde, 0xad}) // partial header+garbage
	f.Close()

	res, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 2 || !res.Truncated {
		t.Fatalf("n=%d truncated=%v, want 2 records and a truncation", res.Records, res.Truncated)
	}
	if _, ok := res.Store.Get("keep"); !ok {
		t.Error("intact record lost")
	}
	// The file must be back to its intact size and appendable.
	after, _ := os.Stat(path)
	if after.Size() != intact.Size() {
		t.Errorf("size after truncation %d, want %d", after.Size(), intact.Size())
	}
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append(Record{Op: OpPut, Key: "new", Value: nil}); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	res2, _ := Recover(path)
	if res2.Records != 3 || res2.Truncated {
		t.Errorf("after re-append: n=%d truncated=%v", res2.Records, res2.Truncated)
	}
}

func TestCorruptedMiddleDetected(t *testing.T) {
	path := tmpLog(t)
	l, _ := Open(path)
	l.Append(Record{Op: OpPut, Key: "aaaa", Value: store.StringValue("11111111")})
	l.Append(Record{Op: OpPut, Key: "bbbb", Value: store.StringValue("22222222")})
	l.Close()

	// Flip a payload byte inside the FIRST record: its CRC fails. Replay
	// treats it as a torn tail at offset 0 and truncates everything —
	// lost data is reported via the truncation offset.
	data, _ := os.ReadFile(path)
	data[10] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	n, truncated, err := Replay(path, func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("replayed %d records from a log with a corrupt head", n)
	}
	if !truncated {
		t.Error("corrupt head not reported as truncation")
	}
}

func TestLoggedStoreWritesThrough(t *testing.T) {
	path := tmpLog(t)
	l, _ := Open(path)
	ls := NewLoggedStore(store.New(), l)
	if _, err := ls.Put("k", store.StringValue("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := ls.Delete("nope"); err != nil {
		t.Fatal(err)
	}
	if v, _ := ls.Get("k"); store.AsString(v) != "v" {
		t.Error("live store missing write")
	}
	l.Close()
	res, err := Recover(path)
	if err != nil || res.Records != 2 {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if v, _ := res.Store.Get("k"); store.AsString(v) != "v" {
		t.Error("recovered store missing write")
	}
}

func TestCheckpointCompactsLog(t *testing.T) {
	path := tmpLog(t)
	l, _ := Open(path)
	st := store.New()
	ls := NewLoggedStore(st, l)
	// Many overwrites of few keys: the log grows, the state stays small.
	for i := 0; i < 200; i++ {
		ls.Put(store.ItoaKey("k", i%4), store.Int64Value(int64(i)))
	}
	bigSize := l.Size()
	l.Close()

	if err := Checkpoint(st, path); err != nil {
		t.Fatal(err)
	}
	fi, _ := os.Stat(path)
	if fi.Size() >= bigSize/10 {
		t.Errorf("checkpoint did not compact: %d vs %d", fi.Size(), bigSize)
	}
	res, err := Recover(path)
	if err != nil || res.Truncated {
		t.Fatalf("recover after checkpoint: %+v err=%v", res, err)
	}
	if res.Records != 4 {
		t.Errorf("checkpoint has %d records, want 4", res.Records)
	}
	for i := 0; i < 4; i++ {
		want, _ := st.Get(store.ItoaKey("k", i))
		got, _ := res.Store.Get(store.ItoaKey("k", i))
		if store.AsInt64(want) != store.AsInt64(got) {
			t.Errorf("k:%d = %d, want %d", i, store.AsInt64(got), store.AsInt64(want))
		}
	}
}

// Property: any sequence of put/delete operations recovers to exactly the
// state of an in-memory store receiving the same sequence.
func TestRecoveryEquivalenceProperty(t *testing.T) {
	type op struct {
		Del bool
		Key uint8
		Val int64
	}
	f := func(ops []op) bool {
		dir := t.TempDir()
		path := filepath.Join(dir, "p.wal")
		l, err := Open(path)
		if err != nil {
			return false
		}
		ref := store.New()
		ls := NewLoggedStore(store.New(), l)
		for _, o := range ops {
			k := store.ItoaKey("k", int(o.Key%16))
			if o.Del {
				ref.Delete(k)
				if _, err := ls.Delete(k); err != nil {
					return false
				}
			} else {
				ref.Put(k, store.Int64Value(o.Val))
				if _, err := ls.Put(k, store.Int64Value(o.Val)); err != nil {
					return false
				}
			}
		}
		l.Close()
		res, err := Recover(path)
		if err != nil || res.Truncated {
			return false
		}
		rec := res.Store
		if rec.Len() != ref.Len() {
			return false
		}
		for _, k := range ref.Keys("") {
			rv, _ := ref.Get(k)
			gv, ok := rec.Get(k)
			if !ok || store.AsInt64(rv) != store.AsInt64(gv) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRecoverTxnBlocks(t *testing.T) {
	path := tmpLog(t)
	l, _ := Open(path)
	// Txn 7: staged, prepared, committed — must apply.
	l.AppendBatch([]Record{
		{Op: OpPut, Txn: 7, Key: "a", Value: store.Int64Value(1)},
		{Op: OpPut, Txn: 7, Key: "b", Value: store.Int64Value(2)},
		{Op: OpPrepare, Txn: 7, Coord: 2},
	})
	l.Append(Record{Op: OpCommit, Txn: 7})
	// Txn 8: staged, prepared, aborted — must drop.
	l.AppendBatch([]Record{
		{Op: OpPut, Txn: 8, Key: "c", Value: store.Int64Value(3)},
		{Op: OpPrepare, Txn: 8, Coord: 0},
	})
	l.Append(Record{Op: OpAbort, Txn: 8})
	// Txn 9: staged and prepared, no decision — in-doubt.
	l.AppendBatch([]Record{
		{Op: OpDelete, Txn: 9, Key: "a"},
		{Op: OpPrepare, Txn: 9, Coord: 1},
	})
	l.Close()

	res, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Store.Get("a"); store.AsInt64(v) != 1 {
		t.Errorf("committed a = %v (the in-doubt delete must not apply)", v)
	}
	if v, _ := res.Store.Get("b"); store.AsInt64(v) != 2 {
		t.Errorf("committed b = %v", v)
	}
	if _, ok := res.Store.Get("c"); ok {
		t.Error("aborted txn 8's write survived recovery")
	}
	if len(res.InDoubt) != 1 || res.InDoubt[0].Txn != 9 || res.InDoubt[0].Coord != 1 {
		t.Fatalf("in-doubt = %+v, want txn 9 coordinated by partition 1", res.InDoubt)
	}
	if len(res.InDoubt[0].Writes) != 1 || res.InDoubt[0].Writes[0].Op != OpDelete {
		t.Errorf("in-doubt writes = %+v", res.InDoubt[0].Writes)
	}
	if c, ok := res.Decisions[TxnRound{Txn: 7}]; !ok || !c {
		t.Error("commit decision for txn 7 not recovered")
	}
	if c, ok := res.Decisions[TxnRound{Txn: 8}]; !ok || c {
		t.Error("abort decision for txn 8 not recovered")
	}
}

// One multi-stage transaction runs two independent commit rounds. A
// committed initial round must never answer for an in-doubt final round:
// recovery keys blocks and decisions by (txn, round), so the final-round
// block stays in doubt (and its writes stay unapplied) even though the
// same transaction id carries a commit marker from round 0.
func TestRecoverRoundsAreIndependent(t *testing.T) {
	path := tmpLog(t)
	l, _ := Open(path)
	// Round 0 (initial commit): prepared and committed.
	l.AppendBatch([]Record{
		{Op: OpPut, Txn: 5, Round: 0, Key: "a", Value: store.Int64Value(1)},
		{Op: OpPrepare, Txn: 5, Round: 0, Coord: 2},
	})
	l.Append(Record{Op: OpCommit, Txn: 5, Round: 0})
	// Round 1 (final commit): prepared, no decision — the coordinator
	// crashed before deciding.
	l.AppendBatch([]Record{
		{Op: OpPut, Txn: 5, Round: 1, Key: "a", Value: store.Int64Value(2)},
		{Op: OpPrepare, Txn: 5, Round: 1, Coord: 2},
	})
	l.Close()

	res, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Store.Get("a"); store.AsInt64(v) != 1 {
		t.Errorf("a = %v, want round 0's committed value 1 (round 1 is undecided)", v)
	}
	if len(res.InDoubt) != 1 || res.InDoubt[0].Txn != 5 || res.InDoubt[0].Round != 1 {
		t.Fatalf("in-doubt = %+v, want txn 5 round 1", res.InDoubt)
	}
	if c, ok := res.Decisions[TxnRound{Txn: 5, Round: 0}]; !ok || !c {
		t.Error("round 0's commit decision not recovered")
	}
	if _, ok := res.Decisions[TxnRound{Txn: 5, Round: 1}]; ok {
		t.Error("round 1 has a decision despite the coordinator never deciding it")
	}
	// The decision scan an inquiring participant runs must make the same
	// distinction.
	d, err := Decisions(path)
	if err != nil {
		t.Fatal(err)
	}
	if !d[TxnRound{Txn: 5, Round: 0}] {
		t.Error("Decisions lost round 0's commit")
	}
	if _, ok := d[TxnRound{Txn: 5, Round: 1}]; ok {
		t.Error("Decisions resolved round 1 from round 0's marker")
	}
}

// A journal record written after a block staged (a retraction's restore,
// compensating while the block was in doubt) supersedes the staged write:
// a late commit marker must not re-apply it, and the in-doubt report must
// omit it — otherwise a deferred resolution resurrects compensated state.
func TestSupersededStagedWritesDoNotResurface(t *testing.T) {
	path := tmpLog(t)
	l, _ := Open(path)
	// Txn 1: staged k=1 and other=5, then a journal delete of k landed
	// (retraction restore), then the commit marker (deferred resolution).
	l.AppendBatch([]Record{
		{Op: OpPut, Txn: 1, Key: "k", Value: store.Int64Value(1)},
		{Op: OpPut, Txn: 1, Key: "other", Value: store.Int64Value(5)},
		{Op: OpPrepare, Txn: 1, Coord: 0},
	})
	l.Append(Record{Op: OpDelete, Key: "k"}) // journaled compensation
	l.Append(Record{Op: OpCommit, Txn: 1})
	// Txn 2: staged j=2, journal overwrote j, still in doubt.
	l.AppendBatch([]Record{
		{Op: OpPut, Txn: 2, Key: "j", Value: store.Int64Value(2)},
		{Op: OpPut, Txn: 2, Key: "keep", Value: store.Int64Value(7)},
		{Op: OpPrepare, Txn: 2, Coord: 1},
	})
	l.Append(Record{Op: OpPut, Key: "j", Value: store.Int64Value(9)})
	l.Close()

	res, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Store.Get("k"); ok {
		t.Error("committed block resurrected k over the later journal delete")
	}
	if v, _ := res.Store.Get("other"); store.AsInt64(v) != 5 {
		t.Errorf("other = %v, want the unsuperseded staged write 5", v)
	}
	if v, _ := res.Store.Get("j"); store.AsInt64(v) != 9 {
		t.Errorf("j = %v, want the journal's 9 (txn 2 undecided)", v)
	}
	if len(res.InDoubt) != 1 || res.InDoubt[0].Txn != 2 {
		t.Fatalf("in-doubt = %+v, want txn 2", res.InDoubt)
	}
	// The in-doubt block's reported writes drop the superseded j, keep
	// the untouched key — so a later commit delivery agrees with replay.
	ws := res.InDoubt[0].Writes
	if len(ws) != 1 || ws[0].Key != "keep" {
		t.Errorf("in-doubt writes = %+v, want only the unsuperseded %q", ws, "keep")
	}
}

// A crash mid-commit leaves data records without their prepare/commit
// marker on the tail; recovery must drop them — presumed abort.
func TestTornTailMidCommitPresumedAbort(t *testing.T) {
	path := tmpLog(t)
	l, _ := Open(path)
	l.AppendBatch([]Record{
		{Op: OpPut, Txn: 3, Key: "x", Value: store.Int64Value(1)},
		{Op: OpPrepare, Txn: 3, Coord: 0},
		{Op: OpCommit, Txn: 3},
	})
	// Txn 4's batch was being appended when the machine died: its data
	// records landed, the commit marker did not.
	l.AppendBatch([]Record{
		{Op: OpPut, Txn: 4, Key: "x", Value: store.Int64Value(99)},
		{Op: OpPut, Txn: 4, Key: "y", Value: store.Int64Value(100)},
	})
	l.Close()

	res, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Incomplete != 1 {
		t.Errorf("incomplete = %d, want 1 presumed-abort block", res.Incomplete)
	}
	if len(res.InDoubt) != 0 {
		t.Errorf("unprepared block reported in-doubt: %+v", res.InDoubt)
	}
	if v, _ := res.Store.Get("x"); store.AsInt64(v) != 1 {
		t.Errorf("x = %v, want txn 3's committed value 1", v)
	}
	if _, ok := res.Store.Get("y"); ok {
		t.Error("uncommitted y applied")
	}
}

func TestDecisionsScan(t *testing.T) {
	path := tmpLog(t)
	l, _ := Open(path)
	l.Append(Record{Op: OpPut, Key: "noise", Value: store.Int64Value(0)})
	l.Append(Record{Op: OpCommit, Txn: 11})
	l.Append(Record{Op: OpAbort, Txn: 12})
	l.Close()
	d, err := Decisions(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 2 || !d[TxnRound{Txn: 11}] || d[TxnRound{Txn: 12}] {
		t.Errorf("decisions = %v", d)
	}
	if _, ok := d[TxnRound{Txn: 13}]; ok {
		t.Error("unknown txn has a decision")
	}
}

func TestProbeSizesRecovery(t *testing.T) {
	path := tmpLog(t)
	l, _ := Open(path)
	l.Append(Record{Op: OpPut, Key: "plain", Value: store.Int64Value(0)})
	l.AppendBatch([]Record{ // committed block: not in doubt
		{Op: OpPut, Txn: 5, Key: "a", Value: store.Int64Value(1)},
		{Op: OpPrepare, Txn: 5, Coord: 2},
		{Op: OpCommit, Txn: 5},
	})
	l.AppendBatch([]Record{ // prepared, undecided: in doubt, coord 1
		{Op: OpPut, Txn: 6, Key: "b", Value: store.Int64Value(2)},
		{Op: OpPrepare, Txn: 6, Coord: 1},
	})
	l.AppendBatch([]Record{ // data without prepare: incomplete, not in doubt
		{Op: OpPut, Txn: 7, Key: "c", Value: store.Int64Value(3)},
	})
	l.Close()

	records, coords, err := Probe(path)
	if err != nil {
		t.Fatal(err)
	}
	if records != 7 {
		t.Errorf("records = %d, want 7", records)
	}
	if len(coords) != 1 || coords[0] != 1 {
		t.Errorf("in-doubt coords = %v, want [1]", coords)
	}
	// Probe must agree with Recover on what is in doubt.
	res, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InDoubt) != len(coords) {
		t.Errorf("Probe found %d in-doubt, Recover %d", len(coords), len(res.InDoubt))
	}
}
