package wal

import (
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"croesus/internal/store"
)

func tmpLog(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "partition.wal")
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := tmpLog(t)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{Op: OpPut, Key: "a", Value: store.StringValue("1")},
		{Op: OpPut, Key: "b", Value: store.StringValue("two")},
		{Op: OpDelete, Key: "a"},
		{Op: OpPut, Key: "c", Value: nil},
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got []Record
	n, truncated, err := Replay(path, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Error("clean log reported truncation")
	}
	if n != len(want) {
		t.Fatalf("replayed %d records, want %d", n, len(want))
	}
	for i := range want {
		if got[i].Op != want[i].Op || got[i].Key != want[i].Key || string(got[i].Value) != string(want[i].Value) {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestRecoverRebuildsStore(t *testing.T) {
	path := tmpLog(t)
	l, _ := Open(path)
	l.AppendBatch([]Record{
		{Op: OpPut, Key: "x", Value: store.Int64Value(1)},
		{Op: OpPut, Key: "y", Value: store.Int64Value(2)},
		{Op: OpPut, Key: "x", Value: store.Int64Value(10)}, // overwrite
		{Op: OpDelete, Key: "y"},
	})
	l.Close()

	st, n, truncated, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 || truncated {
		t.Errorf("n=%d truncated=%v", n, truncated)
	}
	if v, _ := st.Get("x"); store.AsInt64(v) != 10 {
		t.Errorf("x = %d", store.AsInt64(v))
	}
	if _, ok := st.Get("y"); ok {
		t.Error("deleted key y survived recovery")
	}
}

func TestRecoverMissingFile(t *testing.T) {
	st, n, truncated, err := Recover(filepath.Join(t.TempDir(), "never-created.wal"))
	if err != nil || n != 0 || truncated {
		t.Fatalf("missing log: n=%d truncated=%v err=%v", n, truncated, err)
	}
	if st.Len() != 0 {
		t.Error("store not empty")
	}
}

func TestTornTailTruncatedAndRecoverable(t *testing.T) {
	path := tmpLog(t)
	l, _ := Open(path)
	l.Append(Record{Op: OpPut, Key: "keep", Value: store.StringValue("v")})
	l.Append(Record{Op: OpPut, Key: "keep2", Value: store.StringValue("v2")})
	l.Close()
	intact, _ := os.Stat(path)

	// Crash mid-append: half a record lands on disk.
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	f.Write([]byte{9, 0, 0, 0, 0xde, 0xad}) // partial header+garbage
	f.Close()

	st, n, truncated, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || !truncated {
		t.Fatalf("n=%d truncated=%v, want 2 records and a truncation", n, truncated)
	}
	if _, ok := st.Get("keep"); !ok {
		t.Error("intact record lost")
	}
	// The file must be back to its intact size and appendable.
	after, _ := os.Stat(path)
	if after.Size() != intact.Size() {
		t.Errorf("size after truncation %d, want %d", after.Size(), intact.Size())
	}
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append(Record{Op: OpPut, Key: "new", Value: nil}); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	_, n2, truncated2, _ := Recover(path)
	if n2 != 3 || truncated2 {
		t.Errorf("after re-append: n=%d truncated=%v", n2, truncated2)
	}
}

func TestCorruptedMiddleDetected(t *testing.T) {
	path := tmpLog(t)
	l, _ := Open(path)
	l.Append(Record{Op: OpPut, Key: "aaaa", Value: store.StringValue("11111111")})
	l.Append(Record{Op: OpPut, Key: "bbbb", Value: store.StringValue("22222222")})
	l.Close()

	// Flip a payload byte inside the FIRST record: its CRC fails. Replay
	// treats it as a torn tail at offset 0 and truncates everything —
	// lost data is reported via the truncation offset.
	data, _ := os.ReadFile(path)
	data[10] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	n, truncated, err := Replay(path, func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("replayed %d records from a log with a corrupt head", n)
	}
	if !truncated {
		t.Error("corrupt head not reported as truncation")
	}
}

func TestLoggedStoreWritesThrough(t *testing.T) {
	path := tmpLog(t)
	l, _ := Open(path)
	ls := NewLoggedStore(store.New(), l)
	if _, err := ls.Put("k", store.StringValue("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := ls.Delete("nope"); err != nil {
		t.Fatal(err)
	}
	if v, _ := ls.Get("k"); store.AsString(v) != "v" {
		t.Error("live store missing write")
	}
	l.Close()
	st, n, _, err := Recover(path)
	if err != nil || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if v, _ := st.Get("k"); store.AsString(v) != "v" {
		t.Error("recovered store missing write")
	}
}

func TestCheckpointCompactsLog(t *testing.T) {
	path := tmpLog(t)
	l, _ := Open(path)
	st := store.New()
	ls := NewLoggedStore(st, l)
	// Many overwrites of few keys: the log grows, the state stays small.
	for i := 0; i < 200; i++ {
		ls.Put(store.ItoaKey("k", i%4), store.Int64Value(int64(i)))
	}
	bigSize := l.Size()
	l.Close()

	if err := Checkpoint(st, path); err != nil {
		t.Fatal(err)
	}
	fi, _ := os.Stat(path)
	if fi.Size() >= bigSize/10 {
		t.Errorf("checkpoint did not compact: %d vs %d", fi.Size(), bigSize)
	}
	rec, n, truncated, err := Recover(path)
	if err != nil || truncated {
		t.Fatalf("recover after checkpoint: n=%d err=%v", n, err)
	}
	if n != 4 {
		t.Errorf("checkpoint has %d records, want 4", n)
	}
	for i := 0; i < 4; i++ {
		want, _ := st.Get(store.ItoaKey("k", i))
		got, _ := rec.Get(store.ItoaKey("k", i))
		if store.AsInt64(want) != store.AsInt64(got) {
			t.Errorf("k:%d = %d, want %d", i, store.AsInt64(got), store.AsInt64(want))
		}
	}
}

// Property: any sequence of put/delete operations recovers to exactly the
// state of an in-memory store receiving the same sequence.
func TestRecoveryEquivalenceProperty(t *testing.T) {
	type op struct {
		Del bool
		Key uint8
		Val int64
	}
	f := func(ops []op) bool {
		dir := t.TempDir()
		path := filepath.Join(dir, "p.wal")
		l, err := Open(path)
		if err != nil {
			return false
		}
		ref := store.New()
		ls := NewLoggedStore(store.New(), l)
		for _, o := range ops {
			k := store.ItoaKey("k", int(o.Key%16))
			if o.Del {
				ref.Delete(k)
				if _, err := ls.Delete(k); err != nil {
					return false
				}
			} else {
				ref.Put(k, store.Int64Value(o.Val))
				if _, err := ls.Put(k, store.Int64Value(o.Val)); err != nil {
					return false
				}
			}
		}
		l.Close()
		rec, _, truncated, err := Recover(path)
		if err != nil || truncated {
			return false
		}
		if rec.Len() != ref.Len() {
			return false
		}
		for _, k := range ref.Keys("") {
			rv, _ := ref.Get(k)
			gv, ok := rec.Get(k)
			if !ok || store.AsInt64(rv) != store.AsInt64(gv) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
