// Package wal provides a write-ahead log for the edge node's data store,
// so an edge machine can crash and recover its partition without losing
// committed state. The paper's system model places "the main copy of its
// partition's data" on the edge node; a production deployment of that
// design needs exactly this durability layer.
//
// Format: each record is
//
//	[4-byte little-endian payload length][4-byte CRC32 (IEEE) of payload][payload]
//
// where the payload is op (1 byte: 1=put, 2=delete), key length (4 bytes),
// key, and — for puts — the value. Replay stops cleanly at a torn tail
// (partial record or CRC mismatch from a crash mid-write) and truncates it,
// which is the standard recovery contract.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"croesus/internal/store"
)

// Op is a logged operation kind.
type Op byte

// Logged operation kinds.
const (
	OpPut    Op = 1
	OpDelete Op = 2
)

// Record is one logged mutation.
type Record struct {
	Op    Op
	Key   string
	Value store.Value
}

// ErrCorrupt reports a damaged (non-tail) log.
var ErrCorrupt = errors.New("wal: corrupt record")

// Log is an append-only write-ahead log. Appends are serialized and
// fsynced per batch.
type Log struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	path string
	size int64
}

// Open opens (creating if needed) the log at path, ready for appends.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &Log{f: f, w: bufio.NewWriter(f), path: path, size: st.Size()}, nil
}

// Append logs one record durably (buffered write + flush + fsync).
func (l *Log) Append(rec Record) error {
	return l.AppendBatch([]Record{rec})
}

// AppendBatch logs several records with a single flush and fsync — the
// natural unit is a transaction section's write set.
func (l *Log) AppendBatch(recs []Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, rec := range recs {
		payload := encodePayload(rec)
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		if _, err := l.w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := l.w.Write(payload); err != nil {
			return err
		}
		l.size += int64(8 + len(payload))
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	return l.f.Sync()
}

// Size returns the log's current byte size.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

func encodePayload(rec Record) []byte {
	n := 1 + 4 + len(rec.Key)
	if rec.Op == OpPut {
		n += len(rec.Value)
	}
	buf := make([]byte, 0, n)
	buf = append(buf, byte(rec.Op))
	var klen [4]byte
	binary.LittleEndian.PutUint32(klen[:], uint32(len(rec.Key)))
	buf = append(buf, klen[:]...)
	buf = append(buf, rec.Key...)
	if rec.Op == OpPut {
		buf = append(buf, rec.Value...)
	}
	return buf
}

func decodePayload(payload []byte) (Record, error) {
	if len(payload) < 5 {
		return Record{}, ErrCorrupt
	}
	op := Op(payload[0])
	if op != OpPut && op != OpDelete {
		return Record{}, fmt.Errorf("%w: bad op %d", ErrCorrupt, op)
	}
	klen := int(binary.LittleEndian.Uint32(payload[1:5]))
	if klen < 0 || 5+klen > len(payload) {
		return Record{}, fmt.Errorf("%w: bad key length %d", ErrCorrupt, klen)
	}
	rec := Record{Op: op, Key: string(payload[5 : 5+klen])}
	if op == OpPut {
		rec.Value = store.Value(payload[5+klen:]).Clone()
	} else if 5+klen != len(payload) {
		return Record{}, fmt.Errorf("%w: trailing bytes on delete", ErrCorrupt)
	}
	return rec, nil
}

// Replay reads every intact record from the log at path, invoking fn in
// order. A torn tail (a partial record or CRC mismatch from a crash
// mid-append) is detected, reported via truncated, and removed so
// subsequent appends start clean. A record that decodes to an invalid
// structure despite a matching CRC returns ErrCorrupt.
func Replay(path string, fn func(Record) error) (records int, truncated bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, false, nil
		}
		return 0, false, err
	}

	r := bufio.NewReader(f)
	var offset int64
	tornTail := func() (int, bool, error) {
		f.Close()
		return records, true, os.Truncate(path, offset)
	}
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				f.Close()
				return records, false, nil // clean end
			}
			return tornTail() // partial header
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length > 64<<20 {
			return tornTail()
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return tornTail()
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return tornTail()
		}
		rec, err := decodePayload(payload)
		if err != nil {
			f.Close()
			return records, false, err
		}
		if err := fn(rec); err != nil {
			f.Close()
			return records, false, err
		}
		records++
		offset += int64(8 + len(payload))
	}
}

// Recover rebuilds a store from the log at path, returning the store, the
// number of records applied, and whether a torn tail was truncated.
func Recover(path string) (*store.Store, int, bool, error) {
	st := store.New()
	n, truncated, err := Replay(path, func(rec Record) error {
		switch rec.Op {
		case OpPut:
			st.Put(rec.Key, rec.Value)
		case OpDelete:
			st.Delete(rec.Key)
		}
		return nil
	})
	if err != nil {
		return nil, n, false, err
	}
	return st, n, truncated, nil
}

// LoggedStore wraps a store so every mutation is WAL-logged before it is
// applied — write-ahead in the strict sense.
type LoggedStore struct {
	*store.Store
	log *Log
}

// NewLoggedStore wraps st with the log.
func NewLoggedStore(st *store.Store, log *Log) *LoggedStore {
	return &LoggedStore{Store: st, log: log}
}

// Put logs then applies.
func (s *LoggedStore) Put(key string, v store.Value) (uint64, error) {
	if err := s.log.Append(Record{Op: OpPut, Key: key, Value: v}); err != nil {
		return 0, err
	}
	return s.Store.Put(key, v), nil
}

// Delete logs then applies.
func (s *LoggedStore) Delete(key string) (bool, error) {
	if err := s.log.Append(Record{Op: OpDelete, Key: key}); err != nil {
		return false, err
	}
	return s.Store.Delete(key), nil
}

// Checkpoint writes the store's full current state as a fresh log at
// path.tmp and atomically renames it over the old log, bounding replay
// time. The log must be externally quiesced during a checkpoint.
func Checkpoint(st *store.Store, path string) error {
	tmp := path + ".tmp"
	l, err := Open(tmp)
	if err != nil {
		return err
	}
	snap := st.Snapshot()
	recs := make([]Record, 0, len(snap))
	for k, v := range snap {
		recs = append(recs, Record{Op: OpPut, Key: k, Value: v})
	}
	if err := l.AppendBatch(recs); err != nil {
		l.Close()
		os.Remove(tmp)
		return err
	}
	if err := l.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
