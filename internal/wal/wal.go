// Package wal provides a write-ahead log for the edge node's data store,
// so an edge machine can crash and recover its partition without losing
// committed state. The paper's system model places "the main copy of its
// partition's data" on the edge node; a production deployment of that
// design needs exactly this durability layer.
//
// Format: each record is
//
//	[4-byte little-endian payload length][4-byte CRC32 (IEEE) of payload][payload]
//
// where the payload is op (1 byte), the owning transaction id (8 bytes,
// 0 for non-transactional records), the coordinating partition (4 bytes,
// meaningful on prepare records), key length (4 bytes), key, and — for
// puts — the value. Replay stops cleanly at a torn tail (partial record or
// CRC mismatch from a crash mid-write) and truncates it, which is the
// standard recovery contract.
//
// Beyond plain put/delete, the log carries the two-phase-commit life cycle
// of the sharded fleet (internal/twopc): a participant stages a
// transaction's writes as data records followed by an OpPrepare marker; the
// decision lands as an OpCommit or OpAbort marker (on the coordinator's own
// log the OpCommit doubles as the durable commit decision). Recovery applies
// only decided transactions; a prepared-but-undecided block is reported as
// in-doubt for the caller to resolve against the coordinator's log, and a
// data block with neither prepare nor decision (a torn tail mid-commit) is
// dropped — presumed abort.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"

	"croesus/internal/store"
)

// Op is a logged operation kind.
type Op byte

// Logged operation kinds. OpPut and OpDelete are data records; OpPrepare,
// OpCommit, and OpAbort are two-phase-commit markers carrying only a
// transaction id (and, for OpPrepare, the coordinating partition).
const (
	OpPut     Op = 1
	OpDelete  Op = 2
	OpPrepare Op = 3
	OpCommit  Op = 4
	OpAbort   Op = 5
)

// Record is one logged entry.
type Record struct {
	Op Op
	// Txn is the owning transaction. Data records with Txn 0 are
	// non-transactional: recovery applies them immediately in log order.
	Txn uint64
	// Coord is the partition coordinating the transaction's atomic
	// commitment; it is written on OpPrepare records so recovery knows
	// whose log to inquire for an in-doubt transaction.
	Coord int
	Key   string
	Value store.Value
}

// ErrCorrupt reports a damaged (non-tail) log.
var ErrCorrupt = errors.New("wal: corrupt record")

// Log is an append-only write-ahead log. Appends are serialized and
// fsynced per batch.
type Log struct {
	// NoSync skips the per-batch fsync — for simulations, where the log's
	// job is crash modeling inside one process, not surviving a real power
	// cut. Set before first use.
	NoSync bool

	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	path string
	size int64
}

// Open opens (creating if needed) the log at path, ready for appends.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &Log{f: f, w: bufio.NewWriter(f), path: path, size: st.Size()}, nil
}

// Append logs one record durably (buffered write + flush + fsync).
func (l *Log) Append(rec Record) error {
	return l.AppendBatch([]Record{rec})
}

// AppendBatch logs several records with a single flush and fsync — the
// natural unit is a transaction section's write set.
func (l *Log) AppendBatch(recs []Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, rec := range recs {
		payload := encodePayload(rec)
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		if _, err := l.w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := l.w.Write(payload); err != nil {
			return err
		}
		l.size += int64(8 + len(payload))
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	if l.NoSync {
		return nil
	}
	return l.f.Sync()
}

// Size returns the log's current byte size.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Path returns the file the log appends to.
func (l *Log) Path() string { return l.path }

// Close flushes and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// payload layout: op(1) txn(8) coord(4) klen(4) key value.
const payloadHeader = 1 + 8 + 4 + 4

func encodePayload(rec Record) []byte {
	n := payloadHeader + len(rec.Key)
	if rec.Op == OpPut {
		n += len(rec.Value)
	}
	buf := make([]byte, 0, n)
	buf = append(buf, byte(rec.Op))
	var num [8]byte
	binary.LittleEndian.PutUint64(num[:], rec.Txn)
	buf = append(buf, num[:]...)
	binary.LittleEndian.PutUint32(num[:4], uint32(rec.Coord))
	buf = append(buf, num[:4]...)
	binary.LittleEndian.PutUint32(num[:4], uint32(len(rec.Key)))
	buf = append(buf, num[:4]...)
	buf = append(buf, rec.Key...)
	if rec.Op == OpPut {
		buf = append(buf, rec.Value...)
	}
	return buf
}

func decodePayload(payload []byte) (Record, error) {
	if len(payload) < payloadHeader {
		return Record{}, ErrCorrupt
	}
	op := Op(payload[0])
	if op < OpPut || op > OpAbort {
		return Record{}, fmt.Errorf("%w: bad op %d", ErrCorrupt, op)
	}
	rec := Record{
		Op:    op,
		Txn:   binary.LittleEndian.Uint64(payload[1:9]),
		Coord: int(binary.LittleEndian.Uint32(payload[9:13])),
	}
	klen := int(binary.LittleEndian.Uint32(payload[13:17]))
	if klen < 0 || payloadHeader+klen > len(payload) {
		return Record{}, fmt.Errorf("%w: bad key length %d", ErrCorrupt, klen)
	}
	rec.Key = string(payload[payloadHeader : payloadHeader+klen])
	if op == OpPut {
		rec.Value = store.Value(payload[payloadHeader+klen:]).Clone()
	} else if payloadHeader+klen != len(payload) {
		return Record{}, fmt.Errorf("%w: trailing bytes on %d record", ErrCorrupt, op)
	}
	return rec, nil
}

// Replay reads every intact record from the log at path, invoking fn in
// order. A torn tail (a partial record or CRC mismatch from a crash
// mid-append) is detected, reported via truncated, and removed so
// subsequent appends start clean. A record that decodes to an invalid
// structure despite a matching CRC returns ErrCorrupt.
func Replay(path string, fn func(Record) error) (records int, truncated bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, false, nil
		}
		return 0, false, err
	}

	r := bufio.NewReader(f)
	var offset int64
	tornTail := func() (int, bool, error) {
		f.Close()
		return records, true, os.Truncate(path, offset)
	}
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				f.Close()
				return records, false, nil // clean end
			}
			return tornTail() // partial header
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length > 64<<20 {
			return tornTail()
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return tornTail()
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return tornTail()
		}
		rec, err := decodePayload(payload)
		if err != nil {
			f.Close()
			return records, false, err
		}
		if err := fn(rec); err != nil {
			f.Close()
			return records, false, err
		}
		records++
		offset += int64(8 + len(payload))
	}
}

// InDoubt is a prepared-but-undecided transaction found during recovery:
// the participant voted yes and crashed (or its coordinator did) before the
// decision reached its log. The caller resolves it against the
// coordinator's log — presumed abort when no commit decision exists there.
type InDoubt struct {
	Txn    uint64
	Coord  int
	Writes []Record // the staged data records, in log order
}

// RecoverResult is everything recovery learns from one partition's log.
type RecoverResult struct {
	// Store holds the recovered committed state.
	Store *store.Store
	// Records is the number of intact records replayed.
	Records int
	// Truncated reports that a torn tail was removed.
	Truncated bool
	// InDoubt lists prepared-but-undecided transactions, ascending by id.
	InDoubt []InDoubt
	// Incomplete counts transactions whose data records reached the log
	// but whose prepare/commit marker did not (a crash mid-commit). Their
	// writes are dropped: presumed abort.
	Incomplete int
	// Decisions maps transaction ids to their logged outcome (true =
	// commit). On a coordinator's log these are the durable decisions an
	// in-doubt participant inquires about.
	Decisions map[uint64]bool
}

// Recover rebuilds a partition from the log at path. Non-transactional data
// records (Txn 0) apply in log order; transactional blocks apply only when
// their commit marker was logged, are dropped on an abort marker or a
// missing prepare, and are reported in-doubt when prepared but undecided.
func Recover(path string) (*RecoverResult, error) {
	type block struct {
		writes   []Record
		prepared bool
		coord    int
	}
	res := &RecoverResult{Store: store.New(), Decisions: make(map[uint64]bool)}
	pending := make(map[uint64]*block)
	apply := func(rec Record) {
		switch rec.Op {
		case OpPut:
			res.Store.Put(rec.Key, rec.Value)
		case OpDelete:
			res.Store.Delete(rec.Key)
		}
	}
	n, truncated, err := Replay(path, func(rec Record) error {
		switch rec.Op {
		case OpPut, OpDelete:
			if rec.Txn == 0 {
				apply(rec)
				return nil
			}
			b := pending[rec.Txn]
			if b == nil {
				b = &block{}
				pending[rec.Txn] = b
			}
			b.writes = append(b.writes, rec)
		case OpPrepare:
			b := pending[rec.Txn]
			if b == nil {
				b = &block{}
				pending[rec.Txn] = b
			}
			b.prepared = true
			b.coord = rec.Coord
		case OpCommit:
			res.Decisions[rec.Txn] = true
			if b := pending[rec.Txn]; b != nil {
				for _, w := range b.writes {
					apply(w)
				}
				delete(pending, rec.Txn)
			}
		case OpAbort:
			res.Decisions[rec.Txn] = false
			delete(pending, rec.Txn)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Records, res.Truncated = n, truncated
	for id, b := range pending {
		if !b.prepared {
			res.Incomplete++ // lost its commit marker to the crash: presumed abort
			continue
		}
		res.InDoubt = append(res.InDoubt, InDoubt{Txn: id, Coord: b.coord, Writes: b.writes})
	}
	sort.Slice(res.InDoubt, func(i, j int) bool { return res.InDoubt[i].Txn < res.InDoubt[j].Txn })
	return res, nil
}

// Probe sizes a recovery without materializing any state: the intact
// record count (what replay will cost) and the coordinators of
// prepared-but-undecided transactions (one inquiry round trip each), in
// ascending transaction order. Like Recover it truncates a torn tail.
func Probe(path string) (records int, inDoubtCoords []int, err error) {
	type pend struct {
		coord    int
		prepared bool
	}
	pending := make(map[uint64]*pend)
	records, _, err = Replay(path, func(rec Record) error {
		switch rec.Op {
		case OpPut, OpDelete:
			if rec.Txn != 0 && pending[rec.Txn] == nil {
				pending[rec.Txn] = &pend{}
			}
		case OpPrepare:
			p := pending[rec.Txn]
			if p == nil {
				p = &pend{}
				pending[rec.Txn] = p
			}
			p.prepared, p.coord = true, rec.Coord
		case OpCommit, OpAbort:
			delete(pending, rec.Txn)
		}
		return nil
	})
	if err != nil {
		return 0, nil, err
	}
	ids := make([]uint64, 0, len(pending))
	for id, p := range pending {
		if p.prepared {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		inDoubtCoords = append(inDoubtCoords, pending[id].coord)
	}
	return records, inDoubtCoords, nil
}

// Decisions scans the log at path for decision markers only — the inquiry
// a recovering participant makes against its coordinator's log to resolve
// an in-doubt transaction. Absence of an entry means presumed abort.
func Decisions(path string) (map[uint64]bool, error) {
	out := make(map[uint64]bool)
	_, _, err := Replay(path, func(rec Record) error {
		switch rec.Op {
		case OpCommit:
			out[rec.Txn] = true
		case OpAbort:
			out[rec.Txn] = false
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// LoggedStore wraps a store so every mutation is WAL-logged before it is
// applied — write-ahead in the strict sense.
type LoggedStore struct {
	*store.Store
	log *Log
}

// NewLoggedStore wraps st with the log.
func NewLoggedStore(st *store.Store, log *Log) *LoggedStore {
	return &LoggedStore{Store: st, log: log}
}

// Put logs then applies.
func (s *LoggedStore) Put(key string, v store.Value) (uint64, error) {
	if err := s.log.Append(Record{Op: OpPut, Key: key, Value: v}); err != nil {
		return 0, err
	}
	return s.Store.Put(key, v), nil
}

// Delete logs then applies.
func (s *LoggedStore) Delete(key string) (bool, error) {
	if err := s.log.Append(Record{Op: OpDelete, Key: key}); err != nil {
		return false, err
	}
	return s.Store.Delete(key), nil
}

// Checkpoint writes the store's full current state as a fresh log at
// path.tmp and atomically renames it over the old log, bounding replay
// time. The log must be externally quiesced during a checkpoint.
func Checkpoint(st *store.Store, path string) error {
	tmp := path + ".tmp"
	l, err := Open(tmp)
	if err != nil {
		return err
	}
	snap := st.Snapshot()
	recs := make([]Record, 0, len(snap))
	for k, v := range snap {
		recs = append(recs, Record{Op: OpPut, Key: k, Value: v})
	}
	if err := l.AppendBatch(recs); err != nil {
		l.Close()
		os.Remove(tmp)
		return err
	}
	if err := l.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
