// Package wal provides a write-ahead log for the edge node's data store,
// so an edge machine can crash and recover its partition without losing
// committed state. The paper's system model places "the main copy of its
// partition's data" on the edge node; a production deployment of that
// design needs exactly this durability layer.
//
// Format: each record is
//
//	[4-byte little-endian payload length][4-byte CRC32 (IEEE) of payload][payload]
//
// where the payload is op (1 byte), the owning transaction id (8 bytes,
// 0 for non-transactional records), the commit round (1 byte), the
// coordinating partition (4 bytes, meaningful on prepare records), key
// length (4 bytes), key, and — for puts — the value. Replay stops cleanly
// at a torn tail (partial record or CRC mismatch from a crash mid-write)
// and truncates it, which is the standard recovery contract.
//
// Beyond plain put/delete, the log carries the two-phase-commit life cycle
// of the sharded fleet (internal/twopc): a participant stages a
// transaction's writes as data records followed by an OpPrepare marker; the
// decision lands as an OpCommit or OpAbort marker (on the coordinator's own
// log the OpCommit doubles as the durable commit decision). One multi-stage
// transaction runs up to two independent atomic-commitment rounds (the
// initial and the final commit), so every transactional record also names
// its round, and recovery tracks blocks and decisions by (txn, round) —
// a final-round block must never resolve from the initial round's marker.
// Recovery applies only decided rounds; a prepared-but-undecided block is
// reported as in-doubt for the caller to resolve against the coordinator's
// log, and a data block with neither prepare nor decision (a torn tail
// mid-commit) is dropped — presumed abort.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"

	"croesus/internal/store"
)

// Op is a logged operation kind.
type Op byte

// Logged operation kinds. OpPut and OpDelete are data records; OpPrepare,
// OpCommit, and OpAbort are two-phase-commit markers carrying only a
// transaction id (and, for OpPrepare, the coordinating partition).
const (
	OpPut     Op = 1
	OpDelete  Op = 2
	OpPrepare Op = 3
	OpCommit  Op = 4
	OpAbort   Op = 5
)

// Record is one logged entry.
type Record struct {
	Op Op
	// Txn is the owning transaction. Data records with Txn 0 are
	// non-transactional: recovery applies them immediately in log order.
	Txn uint64
	// Round is the transaction's atomic-commitment round this record
	// belongs to. A multi-stage transaction commits up to twice (initial
	// and final section), and the rounds are independent 2PC instances:
	// blocks and decisions are tracked per (Txn, Round).
	Round uint8
	// Coord is the partition coordinating the transaction's atomic
	// commitment; it is written on OpPrepare records so recovery knows
	// whose log to inquire for an in-doubt transaction.
	Coord int
	Key   string
	Value store.Value
}

// TxnRound identifies one atomic-commitment round of one transaction —
// the unit blocks and decisions are keyed by throughout recovery.
type TxnRound struct {
	Txn   uint64
	Round uint8
}

// TxnRound returns the record's (txn, round) key.
func (r Record) TxnRound() TxnRound { return TxnRound{Txn: r.Txn, Round: r.Round} }

// Less orders keys by transaction id, then round.
func (k TxnRound) Less(o TxnRound) bool {
	if k.Txn != o.Txn {
		return k.Txn < o.Txn
	}
	return k.Round < o.Round
}

// ErrCorrupt reports a damaged (non-tail) log.
var ErrCorrupt = errors.New("wal: corrupt record")

// Log is an append-only write-ahead log. Appends are serialized and
// fsynced per batch.
type Log struct {
	// NoSync skips the per-batch fsync — for simulations, where the log's
	// job is crash modeling inside one process, not surviving a real power
	// cut. Set before first use.
	NoSync bool

	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	path string
	size int64
}

// Open opens (creating if needed) the log at path, ready for appends.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &Log{f: f, w: bufio.NewWriter(f), path: path, size: st.Size()}, nil
}

// Append logs one record durably (buffered write + flush + fsync).
func (l *Log) Append(rec Record) error {
	return l.AppendBatch([]Record{rec})
}

// AppendBatch logs several records with a single flush and fsync — the
// natural unit is a transaction section's write set.
func (l *Log) AppendBatch(recs []Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, rec := range recs {
		payload := encodePayload(rec)
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		if _, err := l.w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := l.w.Write(payload); err != nil {
			return err
		}
		l.size += int64(8 + len(payload))
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	if l.NoSync {
		return nil
	}
	return l.f.Sync()
}

// Size returns the log's current byte size.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Path returns the file the log appends to.
func (l *Log) Path() string { return l.path }

// Close flushes and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// payload layout: op(1) txn(8) round(1) coord(4) klen(4) key value.
const payloadHeader = 1 + 8 + 1 + 4 + 4

func encodePayload(rec Record) []byte {
	n := payloadHeader + len(rec.Key)
	if rec.Op == OpPut {
		n += len(rec.Value)
	}
	buf := make([]byte, 0, n)
	buf = append(buf, byte(rec.Op))
	var num [8]byte
	binary.LittleEndian.PutUint64(num[:], rec.Txn)
	buf = append(buf, num[:]...)
	buf = append(buf, rec.Round)
	binary.LittleEndian.PutUint32(num[:4], uint32(rec.Coord))
	buf = append(buf, num[:4]...)
	binary.LittleEndian.PutUint32(num[:4], uint32(len(rec.Key)))
	buf = append(buf, num[:4]...)
	buf = append(buf, rec.Key...)
	if rec.Op == OpPut {
		buf = append(buf, rec.Value...)
	}
	return buf
}

func decodePayload(payload []byte) (Record, error) {
	if len(payload) < payloadHeader {
		return Record{}, ErrCorrupt
	}
	op := Op(payload[0])
	if op < OpPut || op > OpAbort {
		return Record{}, fmt.Errorf("%w: bad op %d", ErrCorrupt, op)
	}
	rec := Record{
		Op:    op,
		Txn:   binary.LittleEndian.Uint64(payload[1:9]),
		Round: payload[9],
		Coord: int(binary.LittleEndian.Uint32(payload[10:14])),
	}
	klen := int(binary.LittleEndian.Uint32(payload[14:18]))
	if klen < 0 || payloadHeader+klen > len(payload) {
		return Record{}, fmt.Errorf("%w: bad key length %d", ErrCorrupt, klen)
	}
	rec.Key = string(payload[payloadHeader : payloadHeader+klen])
	if op == OpPut {
		rec.Value = store.Value(payload[payloadHeader+klen:]).Clone()
	} else if payloadHeader+klen != len(payload) {
		return Record{}, fmt.Errorf("%w: trailing bytes on %d record", ErrCorrupt, op)
	}
	return rec, nil
}

// Replay reads every intact record from the log at path, invoking fn in
// order. A torn tail (a partial record or CRC mismatch from a crash
// mid-append) is detected, reported via truncated, and removed so
// subsequent appends start clean. A record that decodes to an invalid
// structure despite a matching CRC returns ErrCorrupt.
func Replay(path string, fn func(Record) error) (records int, truncated bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, false, nil
		}
		return 0, false, err
	}

	r := bufio.NewReader(f)
	var offset int64
	tornTail := func() (int, bool, error) {
		f.Close()
		return records, true, os.Truncate(path, offset)
	}
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				f.Close()
				return records, false, nil // clean end
			}
			return tornTail() // partial header
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length > 64<<20 {
			return tornTail()
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return tornTail()
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return tornTail()
		}
		rec, err := decodePayload(payload)
		if err != nil {
			f.Close()
			return records, false, err
		}
		if err := fn(rec); err != nil {
			f.Close()
			return records, false, err
		}
		records++
		offset += int64(8 + len(payload))
	}
}

// InDoubt is a prepared-but-undecided commit round found during recovery:
// the participant voted yes and crashed (or its coordinator did) before the
// decision reached its log. The caller resolves it against the
// coordinator's log — presumed abort when no commit decision exists there
// for this exact (txn, round); a decision the same transaction logged in
// its other commit round does not count.
type InDoubt struct {
	Txn   uint64
	Round uint8
	Coord int
	// Writes are the staged data records still live, in log order: a
	// write whose key a later log record overwrote (a retraction restore
	// journaled while the block was undecided) is superseded and omitted,
	// so committing the block cannot resurrect compensated state.
	Writes []Record
}

// RecoverResult is everything recovery learns from one partition's log.
type RecoverResult struct {
	// Store holds the recovered committed state.
	Store *store.Store
	// Records is the number of intact records replayed.
	Records int
	// Truncated reports that a torn tail was removed.
	Truncated bool
	// InDoubt lists prepared-but-undecided commit rounds, ascending by
	// (txn, round).
	InDoubt []InDoubt
	// Incomplete counts commit rounds whose data records reached the log
	// but whose prepare/commit marker did not (a crash mid-commit). Their
	// writes are dropped: presumed abort.
	Incomplete int
	// Decisions maps (txn, round) to the logged outcome (true = commit).
	// On a coordinator's log these are the durable decisions an in-doubt
	// participant inquires about.
	Decisions map[TxnRound]bool
}

// Recover rebuilds a partition from the log at path. Non-transactional data
// records (Txn 0) apply in log order; transactional blocks apply only when
// their round's commit marker was logged, are dropped on an abort marker or
// a missing prepare, and are reported in-doubt when prepared but undecided.
//
// A staged write's logical position is its DATA record (the value was read
// under the section's locks at staging time; the decision marker only
// validates it), so last-writer-wins is resolved by data-record order, not
// marker order: a write whose key a later record already overwrote — e.g.
// a retraction's restore, journaled while the block was undecided — is
// superseded. It neither applies at the (tail-positioned) commit marker
// nor appears in the block's reported InDoubt writes, so a deferred
// resolution can't resurrect state a retraction already compensated.
func Recover(path string) (*RecoverResult, error) {
	type block struct {
		writes   []Record
		seqs     []int // log position of each staged data record
		prepared bool
		coord    int
	}
	res := &RecoverResult{Store: store.New(), Decisions: make(map[TxnRound]bool)}
	pending := make(map[TxnRound]*block)
	seq := 0
	lastApplied := map[string]int{} // key → log position of the write that set it
	apply := func(rec Record, at int) {
		lastApplied[rec.Key] = at
		switch rec.Op {
		case OpPut:
			res.Store.Put(rec.Key, rec.Value)
		case OpDelete:
			res.Store.Delete(rec.Key)
		}
	}
	n, truncated, err := Replay(path, func(rec Record) error {
		seq++
		k := rec.TxnRound()
		switch rec.Op {
		case OpPut, OpDelete:
			if rec.Txn == 0 {
				apply(rec, seq)
				return nil
			}
			b := pending[k]
			if b == nil {
				b = &block{}
				pending[k] = b
			}
			b.writes = append(b.writes, rec)
			b.seqs = append(b.seqs, seq)
		case OpPrepare:
			b := pending[k]
			if b == nil {
				b = &block{}
				pending[k] = b
			}
			b.prepared = true
			b.coord = rec.Coord
		case OpCommit:
			res.Decisions[k] = true
			if b := pending[k]; b != nil {
				for i, w := range b.writes {
					if lastApplied[w.Key] < b.seqs[i] {
						apply(w, b.seqs[i])
					}
				}
				delete(pending, k)
			}
		case OpAbort:
			res.Decisions[k] = false
			delete(pending, k)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Records, res.Truncated = n, truncated
	for k, b := range pending {
		if !b.prepared {
			res.Incomplete++ // lost its commit marker to the crash: presumed abort
			continue
		}
		live := make([]Record, 0, len(b.writes))
		for i, w := range b.writes {
			if lastApplied[w.Key] < b.seqs[i] {
				live = append(live, w)
			}
		}
		res.InDoubt = append(res.InDoubt, InDoubt{Txn: k.Txn, Round: k.Round, Coord: b.coord, Writes: live})
	}
	sort.Slice(res.InDoubt, func(i, j int) bool {
		a, b := res.InDoubt[i], res.InDoubt[j]
		return TxnRound{Txn: a.Txn, Round: a.Round}.Less(TxnRound{Txn: b.Txn, Round: b.Round})
	})
	return res, nil
}

// Probe sizes a recovery without materializing any state: the intact
// record count (what replay will cost) and the coordinators of
// prepared-but-undecided commit rounds (one inquiry round trip each), in
// ascending (txn, round) order. Like Recover it truncates a torn tail.
func Probe(path string) (records int, inDoubtCoords []int, err error) {
	type pend struct {
		coord    int
		prepared bool
	}
	pending := make(map[TxnRound]*pend)
	records, _, err = Replay(path, func(rec Record) error {
		k := rec.TxnRound()
		switch rec.Op {
		case OpPut, OpDelete:
			if rec.Txn != 0 && pending[k] == nil {
				pending[k] = &pend{}
			}
		case OpPrepare:
			p := pending[k]
			if p == nil {
				p = &pend{}
				pending[k] = p
			}
			p.prepared, p.coord = true, rec.Coord
		case OpCommit, OpAbort:
			delete(pending, k)
		}
		return nil
	})
	if err != nil {
		return 0, nil, err
	}
	keys := make([]TxnRound, 0, len(pending))
	for k, p := range pending {
		if p.prepared {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	for _, k := range keys {
		inDoubtCoords = append(inDoubtCoords, pending[k].coord)
	}
	return records, inDoubtCoords, nil
}

// Decisions scans the log at path for decision markers only — the inquiry
// a recovering participant makes against its coordinator's log to resolve
// an in-doubt commit round. Absence of an entry for the exact (txn, round)
// means presumed abort.
func Decisions(path string) (map[TxnRound]bool, error) {
	out := make(map[TxnRound]bool)
	_, _, err := Replay(path, func(rec Record) error {
		switch rec.Op {
		case OpCommit:
			out[rec.TxnRound()] = true
		case OpAbort:
			out[rec.TxnRound()] = false
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// LoggedStore wraps a store so every mutation is WAL-logged before it is
// applied — write-ahead in the strict sense.
type LoggedStore struct {
	*store.Store
	log *Log
}

// NewLoggedStore wraps st with the log.
func NewLoggedStore(st *store.Store, log *Log) *LoggedStore {
	return &LoggedStore{Store: st, log: log}
}

// Put logs then applies.
func (s *LoggedStore) Put(key string, v store.Value) (uint64, error) {
	if err := s.log.Append(Record{Op: OpPut, Key: key, Value: v}); err != nil {
		return 0, err
	}
	return s.Store.Put(key, v), nil
}

// Delete logs then applies.
func (s *LoggedStore) Delete(key string) (bool, error) {
	if err := s.log.Append(Record{Op: OpDelete, Key: key}); err != nil {
		return false, err
	}
	return s.Store.Delete(key), nil
}

// Rewrite atomically replaces the log at path with one containing exactly
// recs (written at path.tmp, then renamed over): the checkpoint primitive.
// Any open Log on the old path must be closed first and reopened after —
// appends through a stale handle would land on the orphaned inode. The log
// must be externally quiesced for the swap.
func Rewrite(path string, recs []Record, noSync bool) error {
	tmp := path + ".tmp"
	l, err := Open(tmp)
	if err != nil {
		return err
	}
	l.NoSync = noSync
	if err := l.AppendBatch(recs); err != nil {
		l.Close()
		os.Remove(tmp)
		return err
	}
	if err := l.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Checkpoint writes the store's full current state (in sorted key order,
// so checkpoints of equal states are byte-identical) as a fresh log at
// path, bounding replay time. The log must be externally quiesced during a
// checkpoint. Partitions with two-phase-commit state checkpoint through
// twopc.Partition.Checkpoint instead, which also carries the decision
// cache and in-doubt blocks forward.
func Checkpoint(st *store.Store, path string) error {
	snap := st.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	recs := make([]Record, 0, len(keys))
	for _, k := range keys {
		recs = append(recs, Record{Op: OpPut, Key: k, Value: snap[k]})
	}
	return Rewrite(path, recs, false)
}
