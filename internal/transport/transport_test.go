package transport

import (
	"testing"
	"time"

	"croesus/internal/vclock"
)

func profiles(n int) []EdgeProfile {
	out := make([]EdgeProfile, n)
	names := []string{"a", "b", "c", "d"}
	for i := range out {
		out[i] = EdgeProfile{ID: names[i%len(names)]}
	}
	return out
}

// TestSimMatchesNetsimTopology pins the Sim transport to the standard
// fleet links: client paths are short, cloud uplinks long (unless
// same-site), and the peer mesh has no diagonal.
func TestSimMatchesNetsimTopology(t *testing.T) {
	s := NewSim()
	if err := s.Provision([]EdgeProfile{{ID: "west"}, {ID: "east", SameSite: true}}); err != nil {
		t.Fatal(err)
	}
	n := 32 << 10
	if ce, ec := s.ClientEdge(0).TransferTime(n), s.EdgeCloud(0).TransferTime(n); ce >= ec {
		t.Errorf("client-edge %v not shorter than cross-country uplink %v", ce, ec)
	}
	if far, near := s.EdgeCloud(0).TransferTime(n), s.EdgeCloud(1).TransferTime(n); near >= far {
		t.Errorf("same-site uplink %v not shorter than cross-country %v", near, far)
	}
	if s.Peer(0, 0) != nil || s.Peer(1, 1) != nil {
		t.Error("peer mesh has a diagonal")
	}
	if s.Peer(0, 1) == nil || s.Peer(1, 0) == nil {
		t.Error("peer mesh missing an off-diagonal path")
	}

	clk := vclock.NewSim()
	clk.Run(func() { s.ClientEdge(0).Send(clk, 1000) })
	if b, m := s.ClientEdge(0).Traffic(); b != 1000 || m != 1 {
		t.Errorf("traffic = (%d, %d), want (1000, 1)", b, m)
	}
	if st := s.Stats(); st.Bytes != 1000 || st.Messages != 1 || st.Drops != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestTCPDeliversAndCounts sends real loopback traffic through every path
// class and checks delivery accounting.
func TestTCPDeliversAndCounts(t *testing.T) {
	tr := NewTCP()
	if err := tr.Provision(profiles(2)); err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	clk := vclock.NewReal()
	tr.ClientEdge(0).Send(clk, 4<<10)
	tr.EdgeCloud(1).Send(clk, 1<<10)
	if d := tr.Peer(0, 1).Charge(256); d != 0 {
		t.Errorf("TCP Charge returned %v, want 0 (delivery is synchronous)", d)
	}
	if tr.Peer(0, 0) != nil {
		t.Error("TCP peer mesh has a diagonal")
	}
	st := tr.Stats()
	if st.Messages != 3 || st.Bytes != int64(4<<10+1<<10+256) {
		t.Errorf("stats = %+v, want 3 messages / %d bytes", st, 4<<10+1<<10+256)
	}
	if st.Drops != 0 || st.Severs != 0 {
		t.Errorf("unexpected faults in clean run: %+v", st)
	}
}

// TestTCPSeverTearsDownAndBlackholes is the transport-layer fault
// demonstration: severing a path closes its connection, messages sent
// while severed are dropped (not delivered), and healing redials.
func TestTCPSeverTearsDownAndBlackholes(t *testing.T) {
	tr := NewTCP()
	if err := tr.Provision(profiles(1)); err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	clk := vclock.NewReal()
	p := tr.EdgeCloud(0)

	p.Send(clk, 100)
	p.SetDown(true)
	if !p.IsDown() {
		t.Fatal("path not down after SetDown(true)")
	}
	p.Send(clk, 100) // blackholed
	p.Send(clk, 100) // blackholed
	if _, m := p.Traffic(); m != 1 {
		t.Errorf("delivered %d messages, want 1 (sends while severed must drop)", m)
	}
	st := tr.Stats()
	if st.Drops != 2 || st.Severs != 1 {
		t.Errorf("stats = %+v, want 2 drops / 1 sever", st)
	}

	p.SetDown(false)
	p.Send(clk, 100) // heals via redial
	if _, m := p.Traffic(); m != 2 {
		t.Errorf("delivered %d messages after heal, want 2", m)
	}
}

// TestTCPSetEdgeDownSeversEveryPath checks that an edge going dark severs
// its client path, its uplink, and both peer directions — and that an edge
// restart does not heal an independent link fault.
func TestTCPSetEdgeDownSeversEveryPath(t *testing.T) {
	tr := NewTCP()
	if err := tr.Provision(profiles(2)); err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	tr.Peer(0, 1).SetDown(true) // an overlapping link fault
	tr.SetEdgeDown(0, true)
	for name, p := range map[string]Path{
		"client-edge": tr.ClientEdge(0),
		"edge-cloud":  tr.EdgeCloud(0),
		"peer-out":    tr.Peer(0, 1),
		"peer-in":     tr.Peer(1, 0),
	} {
		if !p.IsDown() {
			t.Errorf("%s not severed by SetEdgeDown", name)
		}
	}
	if tr.ClientEdge(1).IsDown() || tr.EdgeCloud(1).IsDown() {
		t.Error("SetEdgeDown(0) severed edge 1's own paths")
	}

	tr.SetEdgeDown(0, false)
	if tr.ClientEdge(0).IsDown() {
		t.Error("edge restart did not restore the client path")
	}
	if !tr.Peer(0, 1).IsDown() {
		t.Error("edge restart healed an independent link fault")
	}
	tr.Peer(0, 1).SetDown(false)
	if tr.Peer(0, 1).IsDown() {
		t.Error("link heal did not restore the path")
	}
}

// TestTCPConcurrentSends exercises many concurrent sends per path (frames
// overlap in the real fleet) and checks nothing is lost or double-counted.
func TestTCPConcurrentSends(t *testing.T) {
	tr := NewTCP()
	if err := tr.Provision(profiles(2)); err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	clk := vclock.NewReal()
	const workers, each = 8, 25
	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func() {
			for i := 0; i < each; i++ {
				tr.ClientEdge(0).Send(clk, 512)
			}
			done <- struct{}{}
		}()
	}
	for w := 0; w < workers; w++ {
		select {
		case <-done:
		case <-time.After(20 * time.Second):
			t.Fatal("concurrent sends wedged")
		}
	}
	if b, m := tr.ClientEdge(0).Traffic(); m != workers*each || b != int64(workers*each*512) {
		t.Errorf("traffic = (%d, %d), want (%d, %d)", b, m, workers*each*512, workers*each)
	}
}

// TestTCPCloseDropsLateSends: a closed transport loses traffic instead of
// hanging the caller.
func TestTCPCloseDropsLateSends(t *testing.T) {
	tr := NewTCP()
	if err := tr.Provision(profiles(1)); err != nil {
		t.Fatal(err)
	}
	tr.Close()
	tr.ClientEdge(0).Send(vclock.NewReal(), 64)
	if st := tr.Stats(); st.Messages != 0 || st.Drops != 1 {
		t.Errorf("stats after close = %+v, want 0 delivered / 1 drop", st)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}
