package transport

import (
	"fmt"

	"croesus/internal/netsim"
)

// Sim is the simulated transport: every path is a netsim.Link with the
// standard fleet topology (clients adjacent to their edge, a cross-country
// — or same-site — cloud uplink per edge, a metro peer mesh), charging
// modeled transfer time on the fleet's clock. It is the default transport
// and reproduces the pre-seam cluster byte for byte.
type Sim struct {
	clientEdge []*netsim.Link
	edgeCloud  []*netsim.Link
	peers      [][]*netsim.Link
}

// NewSim returns an unprovisioned simulated transport.
func NewSim() *Sim { return &Sim{} }

// Name returns "sim".
func (s *Sim) Name() string { return "sim" }

// Provision builds the fleet's links.
func (s *Sim) Provision(edges []EdgeProfile) error {
	if len(edges) == 0 {
		return fmt.Errorf("transport: no edges to provision")
	}
	n := len(edges)
	s.clientEdge = make([]*netsim.Link, n)
	s.edgeCloud = make([]*netsim.Link, n)
	s.peers = make([][]*netsim.Link, n)
	for i, e := range edges {
		ce := netsim.ClientEdgeLink()
		ce.Name = "client-" + e.ID
		s.clientEdge[i] = ce
		ec := netsim.EdgeCloudCrossCountry()
		if e.SameSite {
			ec = netsim.EdgeCloudSameSite()
		}
		ec.Name = e.ID + "-cloud"
		s.edgeCloud[i] = ec
		s.peers[i] = make([]*netsim.Link, n)
		for j := range edges {
			if j == i {
				continue
			}
			l := netsim.EdgeEdgeLink()
			l.Name = e.ID + "-" + edges[j].ID
			s.peers[i][j] = l
		}
	}
	return nil
}

// ClientEdge returns edge i's client→edge link.
func (s *Sim) ClientEdge(i int) Path { return s.clientEdge[i] }

// EdgeCloud returns edge i's cloud uplink.
func (s *Sim) EdgeCloud(i int) Path { return s.edgeCloud[i] }

// Peer returns edge from's one-way link to edge to (nil on the diagonal).
func (s *Sim) Peer(from, to int) Path {
	if l := s.peers[from][to]; l != nil {
		return l
	}
	return nil
}

// SetEdgeDown is a no-op: the simulated fleet models edge crashes above
// the network (see Transport.SetEdgeDown).
func (s *Sim) SetEdgeDown(int, bool) {}

// Stats aggregates link traffic; drops stay zero (the sim models loss
// above the transport) and severs count link outages.
func (s *Sim) Stats() Stats {
	var st Stats
	add := func(l *netsim.Link) {
		if l == nil {
			return
		}
		b, m := l.Traffic()
		st.Bytes += b
		st.Messages += m
		st.Severs += l.Outages()
	}
	for i := range s.clientEdge {
		add(s.clientEdge[i])
		add(s.edgeCloud[i])
		for _, l := range s.peers[i] {
			add(l)
		}
	}
	return st
}

// Close is a no-op.
func (s *Sim) Close() error { return nil }
