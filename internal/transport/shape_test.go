package transport

import (
	"sort"
	"testing"
	"time"

	"croesus/internal/netsim"
	"croesus/internal/vclock"
)

// The token bucket is deterministic given a sequence of (now, n) arrivals:
// an uncontended message pays exactly propagation + transmission, and
// messages arriving faster than the link drains queue behind each other.
func TestShaperDeterministicDelays(t *testing.T) {
	// 10ms propagation, 1 MB/s → 1ms per 1000 bytes.
	s := NewShaper(10*time.Millisecond, 1e6)

	if d := s.Delay(0, 1000); d != 11*time.Millisecond {
		t.Fatalf("first message: got %v, want 11ms (10ms prop + 1ms tx)", d)
	}
	// Arrives while the first is still serializing (link free at t=1ms):
	// waits 1ms, transmits 2ms, plus propagation.
	if d := s.Delay(0, 2000); d != 13*time.Millisecond {
		t.Fatalf("queued message: got %v, want 13ms (1ms wait + 2ms tx + 10ms prop)", d)
	}
	// Arrives after the link drained (free at t=3ms): uncontended again.
	if d := s.Delay(20*time.Millisecond, 1000); d != 11*time.Millisecond {
		t.Fatalf("late message: got %v, want 11ms", d)
	}
}

func TestShaperBurstQueuesSequentially(t *testing.T) {
	s := NewShaper(0, 1e6) // no propagation: delays are pure serialization
	// Five 1000-byte messages all arriving at t=0 drain at 1ms spacing.
	for i := 0; i < 5; i++ {
		want := time.Duration(i+1) * time.Millisecond
		if d := s.Delay(0, 1000); d != want {
			t.Fatalf("burst message %d: got %v, want %v", i, d, want)
		}
	}
}

func TestShaperInfiniteBandwidth(t *testing.T) {
	s := NewShaper(7*time.Millisecond, 0)
	for i := 0; i < 3; i++ {
		if d := s.Delay(0, 1<<20); d != 7*time.Millisecond {
			t.Fatalf("message %d: got %v, want pure propagation 7ms", i, d)
		}
	}
}

// At low utilization the shaper's delay is exactly the modeled link's
// transfer time — the property that makes shaped-TCP comparable to sim.
func TestShaperMatchesLinkTransferTime(t *testing.T) {
	for _, l := range []*netsim.Link{
		netsim.ClientEdgeLink(),
		netsim.EdgeCloudCrossCountry(),
		netsim.EdgeCloudSameSite(),
		netsim.EdgeEdgeLink(),
	} {
		for _, n := range []int{0, 1000, 32 << 10, 1 << 20} {
			s := ShaperFromLink(l) // fresh: no queued state
			if got, want := s.TransferTime(n), l.TransferTime(n); got != want {
				t.Errorf("%s TransferTime(%d): shaper %v, link %v", l.Name, n, got, want)
			}
			if got, want := s.Delay(0, n), l.TransferTime(n); got != want {
				t.Errorf("%s Delay(uncontended, %d): shaper %v, link %v", l.Name, n, got, want)
			}
		}
	}
}

func TestParseLinkSpec(t *testing.T) {
	s, err := ParseLinkSpec("60ms:2.5e6")
	if err != nil {
		t.Fatal(err)
	}
	if s.propagation != 60*time.Millisecond || s.bandwidth != 2.5e6 {
		t.Fatalf("got prop=%v bw=%g", s.propagation, s.bandwidth)
	}
	if s, err := ParseLinkSpec(""); err != nil || s != nil {
		t.Fatalf("empty spec: got %v, %v; want nil, nil", s, err)
	}
	if spec := FormatLinkSpec(netsim.EdgeCloudCrossCountry()); spec == "" {
		t.Fatal("empty formatted spec")
	} else if rt, err := ParseLinkSpec(spec); err != nil || rt == nil {
		t.Fatalf("round trip %q: %v", spec, err)
	}
	for _, bad := range []string{"60ms", "x:1e6", "60ms:x", "-1ms:5"} {
		if _, err := ParseLinkSpec(bad); err == nil {
			t.Errorf("spec %q: want error", bad)
		}
	}
}

// A shaped path over the Null inner path (the multi-process node's
// pipeline seam) injects the full modeled delay.
func TestShapedPathOverNull(t *testing.T) {
	clk := vclock.NewReal()
	p := NewShapedPath(Null{}, NewShaper(20*time.Millisecond, 0), clk)
	t0 := clk.Now()
	p.Send(clk, 1000)
	if got := clk.Now() - t0; got < 18*time.Millisecond {
		t.Fatalf("shaped send took %v, want ≥ ~20ms", got)
	}
	if b, m := p.Traffic(); b != 1000 || m != 1 {
		t.Fatalf("traffic: %d bytes, %d messages", b, m)
	}
	// Severing the wrapper blackholes without touching the inner path.
	p.SetShapedDown(true)
	p.Send(clk, 1000)
	if p.Drops() != 1 {
		t.Fatalf("drops: %d, want 1", p.Drops())
	}
	p.SetShapedDown(false)
	if p.IsDown() {
		t.Fatal("path still down after heal")
	}
}

// Loopback tolerance test (satellite): shaped sends over real sockets land
// within tolerance of the modeled netsim.Link transfer time. Sequential
// sends keep the serializer uncontended, so the model predicts exactly
// TransferTime; the socket round trip and sleep granularity add a little.
func TestShapedTCPLatencyWithinTolerance(t *testing.T) {
	clk := vclock.NewReal()
	tr := NewShapedTCP(clk)
	if err := tr.Provision([]EdgeProfile{{ID: "e0"}}); err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	const n = 32 << 10
	link := netsim.ClientEdgeLink()
	want := link.TransferTime(n)
	path := tr.ClientEdge(0)
	if got := path.TransferTime(n); got != want {
		t.Fatalf("shaped TransferTime %v, want modeled %v", got, want)
	}

	samples := make([]time.Duration, 0, 30)
	for i := 0; i < 30; i++ {
		t0 := clk.Now()
		path.Send(clk, n)
		samples = append(samples, clk.Now()-t0)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	p50 := samples[len(samples)/2]
	p99 := samples[len(samples)-1]

	// The shaped send can never be meaningfully faster than the model, and
	// scheduling overhead should stay small on loopback.
	lo, hi := want-time.Millisecond, want+15*time.Millisecond
	if p50 < lo || p50 > hi {
		t.Errorf("p50 %v outside [%v, %v] of modeled %v", p50, lo, hi, want)
	}
	if p99 > want+40*time.Millisecond {
		t.Errorf("p99 %v beyond modeled %v + 40ms", p99, want)
	}

	if b, _ := path.Traffic(); b != int64(30*n) {
		t.Errorf("shaped path bytes %d, want %d", b, 30*n)
	}
	if st := tr.Stats(); st.Bytes != int64(30*n) {
		t.Errorf("transport bytes %d, want %d (real sockets carried the traffic)", st.Bytes, 30*n)
	}
}
