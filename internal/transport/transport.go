// Package transport is the network seam between the fleet runtime and its
// deployment. The cluster runtime (internal/cluster, driven by
// internal/scenario) speaks to the network only through the Path and
// Transport interfaces defined here: every client→edge frame delivery,
// every edge→cloud validation transfer, and every inter-edge 2PC message
// crosses a Path, and every fault that the network can express — a severed
// link, a dark edge — is applied through the Transport.
//
// Two implementations ship:
//
//   - Sim wraps the netsim links of the simulated deployment. Paths charge
//     modeled propagation + bandwidth time on the fleet's virtual clock,
//     exactly as the fleet always has — a scenario replay over Sim is
//     byte-identical to the pre-seam runtime.
//   - TCP ships every path's traffic as real bytes over loopback TCP
//     connections framed with wire.Envelope (KindPayload/KindAck). Faults
//     act at the transport: severing a path tears its connection down and
//     blackholes messages until healed.
//
// One fleet runtime, two transports: the same scenario JSON runs on either.
package transport

import (
	"time"

	"croesus/internal/netsim"
	"croesus/internal/vclock"
	"croesus/internal/wire"
)

// Path is one directed network path of the fleet (client→edge, edge→cloud,
// or edge→edge peer). *netsim.Link implements it natively; the TCP
// transport implements it over a real socket. Implementations must be safe
// for concurrent use — frames overlap.
type Path interface {
	// Send carries an n-byte message across the path, blocking the caller
	// in clock time until delivery (modeled transfer time on sim, the real
	// socket round trip on TCP). A message sent while the path is severed
	// is lost; callers that need to know check IsDown.
	Send(clk vclock.Clock, n int)
	// Charge accounts an n-byte message and returns the time the caller
	// should sleep for it — the modeled transfer time on sim (callers
	// fanning a round out in parallel charge every path and sleep once for
	// the maximum), zero on TCP, where Charge delivers synchronously.
	Charge(n int) time.Duration
	// TransferTime returns the modeled one-way transfer time for n bytes
	// without sending anything (zero on TCP).
	TransferTime(n int) time.Duration
	// SetDown severs (true) or heals (false) the path. On TCP this tears
	// the underlying connection down; messages are blackholed until healed.
	SetDown(down bool)
	// IsDown reports whether the path is currently severed.
	IsDown() bool
	// Traffic reports cumulative delivered bytes and message count.
	Traffic() (bytes, messages int64)
}

// *netsim.Link is the simulated Path.
var _ Path = (*netsim.Link)(nil)

// TracedPath is an optional Path extension: a path that can carry a trace
// context with each message (stamped on the wire.Payload) and emit a
// net.hop span per delivery. The sim's netsim.Link deliberately does NOT
// implement it — modeled links have no real socket time to trace, and the
// simulated deployment's bytes must stay identical with tracing enabled.
type TracedPath interface {
	// SendTraced is Send with a trace context attached to the message.
	SendTraced(clk vclock.Clock, n int, tc *wire.TraceCtx)
	// ChargeTraced is Charge with a trace context attached.
	ChargeTraced(n int, tc *wire.TraceCtx) time.Duration
}

// SendCtx sends n bytes across p, attaching tc when the path supports
// tracing. A nil tc or an untraced path degrades to the plain Send — the
// zero-cost path the simulator always takes.
func SendCtx(p Path, clk vclock.Clock, n int, tc *wire.TraceCtx) {
	if tc != nil {
		if tp, ok := p.(TracedPath); ok {
			tp.SendTraced(clk, n, tc)
			return
		}
	}
	p.Send(clk, n)
}

// ChargeCtx charges n bytes on p, attaching tc when the path supports
// tracing; otherwise it degrades to the plain Charge.
func ChargeCtx(p Path, n int, tc *wire.TraceCtx) time.Duration {
	if tc != nil {
		if tp, ok := p.(TracedPath); ok {
			return tp.ChargeTraced(n, tc)
		}
	}
	return p.Charge(n)
}

// EdgeProfile is what a Transport needs to know about one edge to
// provision its paths.
type EdgeProfile struct {
	// ID names the edge's paths.
	ID string
	// SameSite co-locates the edge with the cloud (short modeled uplink on
	// sim; no effect on TCP, where the loopback is the loopback).
	SameSite bool
}

// Stats summarizes a transport's lifetime activity.
type Stats struct {
	// Bytes and Messages count traffic delivered across all paths.
	Bytes, Messages int64
	// Drops counts messages lost because their path was severed (or its
	// connection died mid-flight) — TCP only; the sim models loss above
	// the transport.
	Drops int64
	// Severs counts path teardown transitions (SetDown(true) and
	// SetEdgeDown edges going dark).
	Severs int64
}

// Transport provisions and owns every network path of one fleet: a
// client→edge and an edge→cloud path per edge, plus the full inter-edge
// peer mesh. Provision is called exactly once, before any path is used.
type Transport interface {
	// Name identifies the transport in reports: "sim" or "tcp".
	Name() string
	// Provision builds the paths for a fleet of the given edges.
	Provision(edges []EdgeProfile) error
	// ClientEdge returns the client→edge path of edge i.
	ClientEdge(i int) Path
	// EdgeCloud returns the edge→cloud path of edge i.
	EdgeCloud(i int) Path
	// Peer returns edge from's one-way path to edge to, or nil when
	// from == to (a partition's home needs no hop).
	Peer(from, to int) Path
	// SetEdgeDown severs (true) or restores (false) every path touching
	// edge i — what an edge crash looks like from the network. On TCP this
	// tears the edge's connections down; the sim is a no-op, because the
	// simulated fleet models crashes above the network (dropped frames,
	// fault-injector epochs) and its links must stay byte-identical.
	SetEdgeDown(i int, down bool)
	// Stats reports lifetime traffic and fault activity.
	Stats() Stats
	// Close releases the transport's resources (listeners, connections).
	// Paths must not be used after Close.
	Close() error
}

// Null is a zero-cost Path for hops some outer layer already paid for: the
// real TCP deployment's per-node pipeline uses it where the node's own
// socket carried the bytes, so nothing is double-charged.
type Null struct{}

// Send is a no-op.
func (Null) Send(vclock.Clock, int) {}

// Charge reports zero cost.
func (Null) Charge(int) time.Duration { return 0 }

// TransferTime reports zero cost.
func (Null) TransferTime(int) time.Duration { return 0 }

// SetDown is a no-op: a Null path cannot be severed.
func (Null) SetDown(bool) {}

// IsDown reports false.
func (Null) IsDown() bool { return false }

// Traffic reports nothing: the outer layer accounts the real bytes.
func (Null) Traffic() (int64, int64) { return 0, 0 }
