package transport

import (
	"fmt"
	"net"
	"sync"
	"time"

	"croesus/internal/obs"
	"croesus/internal/vclock"
	"croesus/internal/wire"
)

// ackTimeout bounds how long a send waits for its delivery acknowledgement.
// The switch is in-process, so the bound only matters if something is badly
// wedged; a timed-out message counts as dropped instead of hanging a run.
const ackTimeout = 30 * time.Second

// TCP is the real transport: one in-process loopback "switch" listener,
// one TCP connection per fleet path, and every modeled hop shipped as a
// wire.Payload envelope whose padding carries the modeled byte count. A
// send blocks until the switch acknowledges the fully-received message, so
// path traffic pays the real socket cost. Faults act at the transport:
// SetDown tears the path's connection down and blackholes messages until
// the path heals (a lazy redial); SetEdgeDown severs every path touching
// an edge the same way.
//
// TCP runs the fleet over real sockets inside one process — the
// single-binary deployment croesus-cluster -transport tcp exercises. The
// genuinely multi-process deployment (croesus-edge / croesus-cloud /
// croesus-client) shares the same node logic via internal/tcpnet.
type TCP struct {
	mu     sync.Mutex
	ln     net.Listener
	addr   string
	closed bool
	wg     sync.WaitGroup

	o    *obs.Obs
	oclk vclock.Clock

	clientEdge []*tcpPath
	edgeCloud  []*tcpPath
	peers      [][]*tcpPath
	all        []*tcpPath
}

// NewTCP returns an unprovisioned TCP transport.
func NewTCP() *TCP { return &TCP{} }

// ObsAware is implemented by transports that can emit their own spans
// (net.hop per traced delivery). The cluster runtime type-asserts for it
// after building its Obs, so the sim transport — which must stay
// byte-identical — never sees the hook.
type ObsAware interface {
	SetObs(o *obs.Obs, clk vclock.Clock)
}

// SetObs hands the transport the run's observability bundle and clock.
// Once set, every traced send emits a sender-side net.hop span covering
// the socket round trip.
func (t *TCP) SetObs(o *obs.Obs, clk vclock.Clock) {
	t.mu.Lock()
	t.o, t.oclk = o, clk
	t.mu.Unlock()
}

func (t *TCP) obsClock() (*obs.Obs, vclock.Clock) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.o, t.oclk
}

// Name returns "tcp".
func (t *TCP) Name() string { return "tcp" }

// Provision starts the loopback switch and creates the fleet's paths.
func (t *TCP) Provision(edges []EdgeProfile) error {
	if len(edges) == 0 {
		return fmt.Errorf("transport: no edges to provision")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("transport: loopback switch: %w", err)
	}
	t.mu.Lock()
	t.ln = ln
	t.addr = ln.Addr().String()
	t.mu.Unlock()
	t.wg.Add(1)
	go t.acceptLoop(ln)

	n := len(edges)
	t.clientEdge = make([]*tcpPath, n)
	t.edgeCloud = make([]*tcpPath, n)
	t.peers = make([][]*tcpPath, n)
	mk := func(name string) *tcpPath {
		p := &tcpPath{name: name, tr: t, pending: make(map[uint64]*ackWaiter)}
		t.all = append(t.all, p)
		return p
	}
	for i, e := range edges {
		t.clientEdge[i] = mk("client-" + e.ID)
		t.edgeCloud[i] = mk(e.ID + "-cloud")
		t.peers[i] = make([]*tcpPath, n)
		for j := range edges {
			if j != i {
				t.peers[i][j] = mk(e.ID + "-" + edges[j].ID)
			}
		}
	}
	return nil
}

// acceptLoop serves switch connections: each Payload is acknowledged once
// fully received, which is what makes a Send a real round trip.
func (t *TCP) acceptLoop(ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		t.wg.Add(1)
		go t.serve(conn)
	}
}

func (t *TCP) serve(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	wc := wire.NewConn(conn)
	// The switch never retains a payload beyond one iteration, so the
	// envelope, its padding buffer, and the ack are all reused — the
	// receive half of the zero-garbage hop.
	var env wire.Envelope
	ack := wire.Envelope{Kind: wire.KindAck, Ack: &wire.Ack{}}
	for {
		if err := wc.RecvReuse(&env); err != nil {
			return
		}
		switch env.Kind {
		case wire.KindPayload:
			ack.Ack.Seq = env.Payload.Seq
			if err := wc.Send(&ack); err != nil {
				return
			}
		case wire.KindBye:
			return
		default:
			return
		}
	}
}

// ClientEdge returns edge i's client→edge path.
func (t *TCP) ClientEdge(i int) Path { return t.clientEdge[i] }

// EdgeCloud returns edge i's cloud uplink path.
func (t *TCP) EdgeCloud(i int) Path { return t.edgeCloud[i] }

// Peer returns edge from's one-way path to edge to (nil on the diagonal).
func (t *TCP) Peer(from, to int) Path {
	if p := t.peers[from][to]; p != nil {
		return p
	}
	return nil
}

// SetEdgeDown severs (or restores) every path touching edge i: its client
// path, its cloud uplink, and both directions of every peer pair — the
// network face of an edge crash, implemented as connection teardown.
func (t *TCP) SetEdgeDown(i int, down bool) {
	t.clientEdge[i].setEdgeDown(down)
	t.edgeCloud[i].setEdgeDown(down)
	for j := range t.peers {
		if p := t.peers[i][j]; p != nil {
			p.setEdgeDown(down)
		}
		if p := t.peers[j][i]; p != nil {
			p.setEdgeDown(down)
		}
	}
}

// Stats aggregates every path's delivery and fault counters.
func (t *TCP) Stats() Stats {
	var st Stats
	for _, p := range t.all {
		p.mu.Lock()
		st.Bytes += p.bytes
		st.Messages += p.messages
		st.Drops += p.drops
		st.Severs += p.severs
		p.mu.Unlock()
	}
	return st
}

// Close shuts the switch down, closes every path connection, and waits for
// the switch goroutines to drain. Idempotent.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	ln := t.ln
	t.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, p := range t.all {
		p.teardown(nil)
	}
	t.wg.Wait()
	return nil
}

func (t *TCP) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

func (t *TCP) switchAddr() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.addr
}

// ackWaiter is one in-flight message awaiting its switch acknowledgement.
// Waiters are pooled: the channel is 1-buffered and release sends a token
// instead of closing, so a waiter is reusable once its token has been
// consumed. Ownership discipline replaces the old sync.Once — release is
// only ever called by the goroutine that removed the waiter from the
// path's pending map (under p.mu), so it runs at most once per flight.
type ackWaiter struct {
	ch chan struct{}
	ok bool // set before the token is sent when the ack arrived
	on *wire.Conn
}

func (w *ackWaiter) release(ok bool) {
	w.ok = ok
	w.ch <- struct{}{} // buffered: never blocks
}

var waiterPool = sync.Pool{New: func() any {
	return &ackWaiter{ch: make(chan struct{}, 1)}
}}

// ackTimers pools the per-send timeout timer; a pooled timer is always
// stopped and drained.
var ackTimers = sync.Pool{New: func() any {
	t := time.NewTimer(time.Hour)
	if !t.Stop() {
		<-t.C
	}
	return t
}}

// tcpPath is one directed fleet path over its own switch connection,
// dialed lazily and torn down by faults. linkDown (SetDown — a link fault)
// and edgeDown (SetEdgeDown — a crashed endpoint) sever independently, so
// an edge restart cannot accidentally heal an overlapping link fault.
type tcpPath struct {
	name string
	tr   *TCP

	sendMu sync.Mutex // serializes envelope writes on the connection
	// Send-side reuse, guarded by sendMu: the envelope, payload, and
	// padding buffer live for the path's lifetime instead of being
	// reallocated per message. gob encodes synchronously inside Send and
	// nothing downstream retains them.
	sendEnv wire.Envelope
	sendPay wire.Payload
	padBuf  []byte

	mu       sync.Mutex
	conn     *wire.Conn
	raw      net.Conn
	pending  map[uint64]*ackWaiter
	seq      uint64
	linkDown bool
	edgeDown bool
	bytes    int64
	messages int64
	drops    int64
	severs   int64
}

// Send implements Path: the real socket round trip is the transfer time.
func (p *tcpPath) Send(_ vclock.Clock, n int) { p.carry(n, nil) }

// Charge implements Path: TCP delivers synchronously, so the caller has
// nothing left to sleep for.
func (p *tcpPath) Charge(n int) time.Duration {
	p.carry(n, nil)
	return 0
}

// SendTraced implements TracedPath: the message carries tc on the wire and
// the delivery is recorded as a net.hop span when the transport has obs.
func (p *tcpPath) SendTraced(_ vclock.Clock, n int, tc *wire.TraceCtx) { p.carry(n, tc) }

// ChargeTraced implements TracedPath.
func (p *tcpPath) ChargeTraced(n int, tc *wire.TraceCtx) time.Duration {
	p.carry(n, tc)
	return 0
}

// TransferTime implements Path (no modeled time on a real socket).
func (p *tcpPath) TransferTime(int) time.Duration { return 0 }

// SetDown implements Path: severing tears the connection down (a link
// fault made visible at the transport); healing lets the next send redial.
func (p *tcpPath) SetDown(down bool) { p.sever(down, false) }

func (p *tcpPath) setEdgeDown(down bool) { p.sever(down, true) }

func (p *tcpPath) sever(down, edge bool) {
	p.mu.Lock()
	wasDown := p.linkDown || p.edgeDown
	if edge {
		p.edgeDown = down
	} else {
		p.linkDown = down
	}
	nowDown := p.linkDown || p.edgeDown
	if nowDown && !wasDown {
		p.severs++
	}
	var raw net.Conn
	if nowDown {
		raw, p.raw, p.conn = p.raw, nil, nil
	}
	p.mu.Unlock()
	if raw != nil {
		raw.Close() // teardown: the read loop drains in-flight waiters as drops
	}
}

// IsDown implements Path.
func (p *tcpPath) IsDown() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.linkDown || p.edgeDown
}

// Traffic implements Path.
func (p *tcpPath) Traffic() (int64, int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.bytes, p.messages
}

// drop counts one lost message.
func (p *tcpPath) drop() {
	p.mu.Lock()
	p.drops++
	p.mu.Unlock()
}

// carry ships one n-byte message and waits for the switch's ack. It
// reports whether the message was delivered; a severed, closed, or
// mid-teardown path loses the message (counted in drops). A non-nil tc is
// stamped on the wire payload, and when the transport has an obs bundle
// the delivered round trip is recorded as a net.hop span parented to the
// sender's enclosing span.
func (p *tcpPath) carry(n int, tc *wire.TraceCtx) bool {
	if p.tr.isClosed() {
		p.drop()
		return false
	}
	p.mu.Lock()
	if p.linkDown || p.edgeDown {
		p.mu.Unlock()
		p.drop()
		return false
	}
	conn := p.conn
	p.mu.Unlock()
	if conn == nil {
		if conn = p.dial(); conn == nil {
			p.drop()
			return false
		}
	}

	w := waiterPool.Get().(*ackWaiter)
	w.ok, w.on = false, conn
	p.mu.Lock()
	p.seq++
	seq := p.seq
	p.pending[seq] = w
	p.mu.Unlock()

	if n < 0 {
		n = 0
	}
	o, oclk := p.tr.obsClock()
	var t0 time.Duration
	if o != nil && oclk != nil && tc != nil {
		t0 = oclk.Now()
	}
	p.sendMu.Lock()
	if cap(p.padBuf) < n {
		p.padBuf = make([]byte, n)
	}
	p.sendPay = wire.Payload{Path: p.name, Seq: seq, Padding: p.padBuf[:n], Trace: tc}
	p.sendEnv = wire.Envelope{Kind: wire.KindPayload, Payload: &p.sendPay}
	err := conn.Send(&p.sendEnv)
	p.sendMu.Unlock()
	if err != nil {
		p.abandon(seq, w)
		p.teardown(conn)
		p.drop()
		return false
	}

	tm := ackTimers.Get().(*time.Timer)
	tm.Reset(ackTimeout)
	select {
	case <-w.ch:
		if !tm.Stop() {
			<-tm.C
		}
		ackTimers.Put(tm)
	case <-tm.C:
		ackTimers.Put(tm)
		p.abandon(seq, w)
		p.drop()
		return false
	}
	delivered := w.ok
	waiterPool.Put(w)
	if !delivered {
		p.drop()
		return false
	}
	p.mu.Lock()
	p.bytes += int64(n)
	p.messages++
	p.mu.Unlock()
	if o != nil && oclk != nil && tc != nil && tc.Trace != 0 {
		o.EmitSpan(obs.Span{
			Name:   obs.SpanNetHop,
			Tags:   obs.Tags("path", p.name),
			Start:  t0,
			End:    oclk.Now(),
			Trace:  tc.Trace,
			ID:     obs.HashID("span", obs.U64(tc.Trace), obs.SpanNetHop, p.name, obs.U64(seq)),
			Parent: tc.Parent,
		})
	}
	return true
}

// abandon removes an in-flight waiter after a local failure (send error,
// ack timeout) and returns it to the pool. If the ack reader removed it
// first, a release token is in flight or already buffered — consume it so
// the waiter is pooled clean.
func (p *tcpPath) abandon(seq uint64, w *ackWaiter) {
	p.mu.Lock()
	_, present := p.pending[seq]
	if present {
		delete(p.pending, seq)
	}
	p.mu.Unlock()
	if !present {
		<-w.ch
	}
	waiterPool.Put(w)
}

// dial connects the path to the switch and starts its ack reader. Returns
// nil if the path went down (or the transport closed) while dialing.
func (p *tcpPath) dial() *wire.Conn {
	raw, err := net.DialTimeout("tcp", p.tr.switchAddr(), 2*time.Second)
	if err != nil {
		return nil
	}
	wc := wire.NewConn(raw)
	p.mu.Lock()
	// Lock order is p.mu → tr.mu here; nothing takes p.mu under tr.mu.
	if p.linkDown || p.edgeDown || p.tr.isClosed() {
		p.mu.Unlock()
		raw.Close()
		return nil
	}
	if p.conn != nil { // a concurrent dialer won
		existing := p.conn
		p.mu.Unlock()
		raw.Close()
		return existing
	}
	p.conn, p.raw = wc, raw
	p.mu.Unlock()
	go p.readLoop(wc)
	return wc
}

// readLoop matches switch acks to waiting sends. On connection error the
// path's in-flight messages on this connection are drained as lost. The
// envelope and its Ack are reused across iterations (RecvReuse), so the
// ack stream allocates nothing per message.
func (p *tcpPath) readLoop(wc *wire.Conn) {
	var env wire.Envelope
	for {
		err := wc.RecvReuse(&env)
		if err != nil {
			p.mu.Lock()
			if p.conn == wc {
				p.conn, p.raw = nil, nil
			}
			for seq, w := range p.pending {
				if w.on == wc {
					delete(p.pending, seq)
					w.release(false)
				}
			}
			p.mu.Unlock()
			return
		}
		if env.Kind != wire.KindAck {
			continue
		}
		p.mu.Lock()
		w, ok := p.pending[env.Ack.Seq]
		if ok {
			delete(p.pending, env.Ack.Seq)
		}
		p.mu.Unlock()
		if ok {
			w.release(true)
		}
	}
}

// teardown closes the given connection if it is still the path's current
// one (nil closes whatever is current).
func (p *tcpPath) teardown(wc *wire.Conn) {
	p.mu.Lock()
	var raw net.Conn
	if wc == nil || p.conn == wc {
		raw, p.raw, p.conn = p.raw, nil, nil
	}
	p.mu.Unlock()
	if raw != nil {
		raw.Close()
	}
}
