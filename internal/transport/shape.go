package transport

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"croesus/internal/netsim"
	"croesus/internal/vclock"
	"croesus/internal/wire"
)

// Shaper injects a modeled link's latency/bandwidth profile into a real
// path: a token-bucket serializer in modeled (virtual-clock) time. Each
// message pays its transmission time n/Bandwidth on a single serializer —
// messages queue behind each other when they arrive faster than the link
// drains — plus the one-way propagation delay. At low utilization the
// serializer is always free and the delay reduces to exactly
// netsim.Link.TransferTime (propagation + n/bandwidth); under contention
// the shaper also models the queueing that the sim's infinitely-parallel
// links deliberately ignore.
//
// The Shaper is deterministic given a sequence of (now, n) arrivals, which
// is what the unit tests exercise.
type Shaper struct {
	mu          sync.Mutex
	propagation time.Duration
	bandwidth   float64       // bytes per second; 0 means infinite
	nextFree    time.Duration // modeled time the serializer frees up
}

// NewShaper builds a shaper with the given one-way propagation delay and
// bandwidth in bytes per second (0 = infinite).
func NewShaper(propagation time.Duration, bandwidth float64) *Shaper {
	return &Shaper{propagation: propagation, bandwidth: bandwidth}
}

// ShaperFromLink mirrors a modeled link's parameters.
func ShaperFromLink(l *netsim.Link) *Shaper {
	return NewShaper(l.Propagation, l.Bandwidth)
}

// transmission returns n's serialization time on the link.
func (s *Shaper) transmission(n int) time.Duration {
	if s.bandwidth <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / s.bandwidth * float64(time.Second))
}

// Delay accounts an n-byte message arriving at modeled time now and
// returns the total modeled delay the message experiences: queue wait
// behind earlier messages, its own transmission time, and propagation.
func (s *Shaper) Delay(now time.Duration, n int) time.Duration {
	tx := s.transmission(n)
	s.mu.Lock()
	start := now
	if s.nextFree > start {
		start = s.nextFree
	}
	s.nextFree = start + tx
	s.mu.Unlock()
	return (start - now) + tx + s.propagation
}

// TransferTime returns the uncontended modeled transfer time for n bytes —
// identical to netsim.Link.TransferTime for the same parameters.
func (s *Shaper) TransferTime(n int) time.Duration {
	return s.propagation + s.transmission(n)
}

// ParseLinkSpec parses a "propagation:bandwidth" link spec, e.g.
// "60ms:2500000" (60 ms one-way, 2.5 MB/s). A bandwidth of 0 means
// infinite. The empty string yields a nil shaper (no shaping).
func ParseLinkSpec(spec string) (*Shaper, error) {
	if spec == "" {
		return nil, nil
	}
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("transport: link spec %q: want propagation:bandwidth", spec)
	}
	prop, err := time.ParseDuration(parts[0])
	if err != nil {
		return nil, fmt.Errorf("transport: link spec %q: %v", spec, err)
	}
	var bw float64
	if _, err := fmt.Sscanf(parts[1], "%g", &bw); err != nil {
		return nil, fmt.Errorf("transport: link spec %q: bandwidth: %v", spec, err)
	}
	if prop < 0 || bw < 0 {
		return nil, fmt.Errorf("transport: link spec %q: negative parameter", spec)
	}
	return NewShaper(prop, bw), nil
}

// FormatLinkSpec renders a modeled link as a ParseLinkSpec-compatible spec.
func FormatLinkSpec(l *netsim.Link) string {
	return fmt.Sprintf("%s:%g", l.Propagation, l.Bandwidth)
}

// ShapedPath wraps a real Path with a Shaper so its deliveries take the
// modeled link's time even though the real socket (or in-process hop) is
// nearly free. A Send measures the real cost on the clock, runs the inner
// delivery, and sleeps for whatever the model still owes; a Charge returns
// the remainder for the caller to sleep (the fan-out contract). The wrapper
// carries its own severed flag so an orchestrator can blackhole one path
// without tearing the inner transport down.
type ShapedPath struct {
	inner  Path
	shaper *Shaper
	clk    vclock.Clock

	mu       sync.Mutex
	down     bool
	bytes    int64
	messages int64
	drops    int64
	severs   int64
}

// NewShapedPath wraps inner with the shaper, reading modeled time from clk.
// A nil shaper passes through unshaped (still countable and severable).
func NewShapedPath(inner Path, shaper *Shaper, clk vclock.Clock) *ShapedPath {
	return &ShapedPath{inner: inner, shaper: shaper, clk: clk}
}

// delay accounts n bytes on the shaper at the current modeled time.
func (p *ShapedPath) delay(n int) time.Duration {
	if p.shaper == nil {
		return 0
	}
	return p.shaper.Delay(p.clk.Now(), n)
}

func (p *ShapedPath) account(n int) {
	p.mu.Lock()
	p.bytes += int64(n)
	p.messages++
	p.mu.Unlock()
}

func (p *ShapedPath) drop() {
	p.mu.Lock()
	p.drops++
	p.mu.Unlock()
}

// Send implements Path: real delivery plus the modeled remainder.
func (p *ShapedPath) Send(clk vclock.Clock, n int) {
	p.sendCtx(clk, n, nil)
}

// SendTraced implements TracedPath.
func (p *ShapedPath) SendTraced(clk vclock.Clock, n int, tc *wire.TraceCtx) {
	p.sendCtx(clk, n, tc)
}

func (p *ShapedPath) sendCtx(clk vclock.Clock, n int, tc *wire.TraceCtx) {
	if p.IsDown() {
		p.drop()
		return
	}
	d := p.delay(n)
	t0 := clk.Now()
	SendCtx(p.inner, clk, n, tc)
	if rem := d - (clk.Now() - t0); rem > 0 {
		clk.Sleep(rem)
	}
	p.account(n)
}

// Charge implements Path: the inner path delivers (synchronously on TCP),
// and the modeled remainder is returned for the caller to sleep.
func (p *ShapedPath) Charge(n int) time.Duration {
	return p.chargeCtx(n, nil)
}

// ChargeTraced implements TracedPath.
func (p *ShapedPath) ChargeTraced(n int, tc *wire.TraceCtx) time.Duration {
	return p.chargeCtx(n, tc)
}

func (p *ShapedPath) chargeCtx(n int, tc *wire.TraceCtx) time.Duration {
	if p.IsDown() {
		p.drop()
		return 0
	}
	d := p.delay(n)
	t0 := p.clk.Now()
	innerRem := ChargeCtx(p.inner, n, tc)
	p.account(n)
	rem := d - (p.clk.Now() - t0)
	if innerRem > rem {
		return innerRem
	}
	if rem > 0 {
		return rem
	}
	return 0
}

// TransferTime implements Path: the uncontended modeled transfer time.
func (p *ShapedPath) TransferTime(n int) time.Duration {
	if p.shaper == nil {
		return p.inner.TransferTime(n)
	}
	return p.shaper.TransferTime(n)
}

// SetDown implements Path. The severed flag lives on the wrapper AND is
// forwarded to the inner path, so a loopback-TCP link fault still tears the
// real connection down.
func (p *ShapedPath) SetDown(down bool) {
	p.mu.Lock()
	if down && !p.down {
		p.severs++
	}
	p.down = down
	p.mu.Unlock()
	p.inner.SetDown(down)
}

// SetShapedDown severs (or heals) only the wrapper — the orchestrator's
// per-path blackhole, which must not disturb the inner transport's own
// link/edge fault state.
func (p *ShapedPath) SetShapedDown(down bool) {
	p.mu.Lock()
	if down && !p.down {
		p.severs++
	}
	p.down = down
	p.mu.Unlock()
}

// IsDown implements Path: severed if either the wrapper or the inner path is.
func (p *ShapedPath) IsDown() bool {
	p.mu.Lock()
	down := p.down
	p.mu.Unlock()
	return down || p.inner.IsDown()
}

// Traffic implements Path, reporting the wrapper's own counters (the inner
// Null path of a multi-process node counts nothing).
func (p *ShapedPath) Traffic() (int64, int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.bytes, p.messages
}

// Drops reports messages blackholed by the wrapper's severed flag.
func (p *ShapedPath) Drops() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.drops
}

var (
	_ Path       = (*ShapedPath)(nil)
	_ TracedPath = (*ShapedPath)(nil)
)

// ShapedTCP is the loopback TCP transport with every path wrapped in the
// modeled link profile the sim transport would have provisioned — same
// topology (client→edge, edge→cloud cross-country or same-site, inter-edge
// mesh), same parameters, so sim and shaped-TCP latency distributions are
// comparable like-for-like. Real bytes still cross real sockets; the shaper
// sleeps only for what the model still owes after the socket round trip.
type ShapedTCP struct {
	*TCP
	clk vclock.Clock

	shapedClientEdge []*ShapedPath
	shapedEdgeCloud  []*ShapedPath
	shapedPeers      [][]*ShapedPath
}

// NewShapedTCP returns an unprovisioned shaped TCP transport reading
// modeled time from clk (the run's clock, so -timescale scales the injected
// delays along with everything else).
func NewShapedTCP(clk vclock.Clock) *ShapedTCP {
	return &ShapedTCP{TCP: NewTCP(), clk: clk}
}

// Name returns "tcp+shaped".
func (t *ShapedTCP) Name() string { return "tcp+shaped" }

// Provision builds the TCP paths, then wraps each in its modeled profile.
func (t *ShapedTCP) Provision(edges []EdgeProfile) error {
	if err := t.TCP.Provision(edges); err != nil {
		return err
	}
	n := len(edges)
	t.shapedClientEdge = make([]*ShapedPath, n)
	t.shapedEdgeCloud = make([]*ShapedPath, n)
	t.shapedPeers = make([][]*ShapedPath, n)
	for i, e := range edges {
		t.shapedClientEdge[i] = NewShapedPath(t.TCP.ClientEdge(i), ShaperFromLink(netsim.ClientEdgeLink()), t.clk)
		up := netsim.EdgeCloudCrossCountry()
		if e.SameSite {
			up = netsim.EdgeCloudSameSite()
		}
		t.shapedEdgeCloud[i] = NewShapedPath(t.TCP.EdgeCloud(i), ShaperFromLink(up), t.clk)
		t.shapedPeers[i] = make([]*ShapedPath, n)
		for j := range edges {
			if j != i {
				t.shapedPeers[i][j] = NewShapedPath(t.TCP.Peer(i, j), ShaperFromLink(netsim.EdgeEdgeLink()), t.clk)
			}
		}
	}
	return nil
}

// ClientEdge returns edge i's shaped client→edge path.
func (t *ShapedTCP) ClientEdge(i int) Path { return t.shapedClientEdge[i] }

// EdgeCloud returns edge i's shaped cloud uplink.
func (t *ShapedTCP) EdgeCloud(i int) Path { return t.shapedEdgeCloud[i] }

// Peer returns edge from's shaped path to edge to (nil on the diagonal).
func (t *ShapedTCP) Peer(from, to int) Path {
	if p := t.shapedPeers[from][to]; p != nil {
		return p
	}
	return nil
}

var _ Transport = (*ShapedTCP)(nil)
