package core

import (
	"testing"

	"croesus/internal/detect"
	"croesus/internal/video"
)

func d(class string, conf, x, y float64) detect.Detection {
	return detect.Detection{Label: class, Confidence: conf, Box: video.Rect{X: x, Y: y, W: 0.15, H: 0.15}}
}

func TestMatchLabelsThreeCases(t *testing.T) {
	edge := []detect.Detection{
		d("dog", 0.8, 0.1, 0.1), // case 2: same name overlap
		d("cat", 0.6, 0.5, 0.5), // case 3: overlap, different name
		d("dog", 0.4, 0.8, 0.1), // case 1: no overlap — erroneous
	}
	cloud := []detect.Detection{
		d("dog", 0.95, 0.11, 0.11),
		d("dog", 0.95, 0.51, 0.51),
		d("dog", 0.95, 0.1, 0.8), // new: edge missed it
	}
	ms := MatchLabels(edge, cloud, 0.1)
	if len(ms) != 4 {
		t.Fatalf("matches = %d, want 4 (3 edge + 1 new)", len(ms))
	}
	if ms[0].Case != MatchCorrect || ms[0].Cloud.Label != "dog" {
		t.Errorf("edge[0] = %v %q, want correct", ms[0].Case, ms[0].Cloud.Label)
	}
	if ms[1].Case != MatchCorrected || ms[1].Cloud.Label != "dog" {
		t.Errorf("edge[1] = %v, want corrected", ms[1].Case)
	}
	if ms[2].Case != MatchErroneous {
		t.Errorf("edge[2] = %v, want erroneous", ms[2].Case)
	}
	if ms[3].Case != MatchNew || ms[3].EdgeIdx != -1 {
		t.Errorf("ms[3] = %+v, want new-from-cloud", ms[3])
	}
}

func TestMatchLabelsBiggestOverlapWins(t *testing.T) {
	edge := []detect.Detection{d("dog", 0.8, 0.10, 0.10)}
	cloud := []detect.Detection{
		d("cat", 0.9, 0.20, 0.20), // small overlap
		d("dog", 0.9, 0.11, 0.11), // large overlap
	}
	ms := MatchLabels(edge, cloud, 0.01)
	if ms[0].Case != MatchCorrect {
		t.Errorf("case = %v, want correct (largest overlap is same-name)", ms[0].Case)
	}
	// The small-overlap cat becomes a new label.
	if len(ms) != 2 || ms[1].Case != MatchNew || ms[1].Cloud.Label != "cat" {
		t.Errorf("ms = %+v", ms)
	}
}

func TestMatchLabelsEmptySides(t *testing.T) {
	if ms := MatchLabels(nil, nil, 0.1); len(ms) != 0 {
		t.Errorf("empty match = %v", ms)
	}
	edgeOnly := MatchLabels([]detect.Detection{d("a", 0.5, 0.1, 0.1)}, nil, 0.1)
	if len(edgeOnly) != 1 || edgeOnly[0].Case != MatchErroneous {
		t.Errorf("edge-only = %+v, want erroneous", edgeOnly)
	}
	cloudOnly := MatchLabels(nil, []detect.Detection{d("a", 0.5, 0.1, 0.1)}, 0.1)
	if len(cloudOnly) != 1 || cloudOnly[0].Case != MatchNew {
		t.Errorf("cloud-only = %+v, want new", cloudOnly)
	}
}

func TestFinalInputCorrected(t *testing.T) {
	for _, tt := range []struct {
		c    MatchCase
		want bool
	}{
		{MatchCorrect, false},
		{MatchAssumed, false},
		{MatchCorrected, true},
		{MatchErroneous, true},
		{MatchNew, true},
	} {
		if got := (FinalInput{Case: tt.c}).Corrected(); got != tt.want {
			t.Errorf("Corrected(%v) = %v, want %v", tt.c, got, tt.want)
		}
	}
}

func TestMatchCaseStrings(t *testing.T) {
	cases := []MatchCase{MatchCorrect, MatchCorrected, MatchErroneous, MatchNew, MatchAssumed, MatchCase(99)}
	want := []string{"correct", "corrected", "erroneous", "new-from-cloud", "assumed-correct", "unknown"}
	for i, c := range cases {
		if c.String() != want[i] {
			t.Errorf("String(%d) = %q, want %q", i, c.String(), want[i])
		}
	}
}
