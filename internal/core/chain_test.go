package core

import (
	"testing"
	"time"

	"croesus/internal/detect"
	"croesus/internal/metrics"
	"croesus/internal/netsim"
	"croesus/internal/vclock"
	"croesus/internal/video"
)

func TestNewChainValidation(t *testing.T) {
	clk := vclock.NewSim()
	edge := detect.TinyYOLOSim(1)
	cloud := detect.YOLOv3Sim(detect.YOLO416, 1)
	if _, err := NewChain(nil, nil, nil); err == nil {
		t.Error("nil clock accepted")
	}
	if _, err := NewChain(clk, nil, []ChainStage{{Model: edge}}); err == nil {
		t.Error("single-stage chain accepted")
	}
	if _, err := NewChain(clk, nil, []ChainStage{{Model: edge}, {Model: nil, Link: netsim.EdgeCloudSameSite()}}); err == nil {
		t.Error("missing stage model accepted")
	}
	if _, err := NewChain(clk, nil, []ChainStage{{Model: edge}, {Model: cloud}}); err == nil {
		t.Error("missing inter-stage link accepted")
	}
	ch, err := NewChain(clk, nil, []ChainStage{
		{Model: edge, Speed: 1},
		{Model: cloud, Speed: 1, Link: netsim.EdgeCloudSameSite()},
	})
	if err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
	if ch.ClientLink == nil {
		t.Error("nil client link not defaulted")
	}
}

func TestChainEarlyStop(t *testing.T) {
	// Empty validate interval at stage 0: every frame stops there.
	clk := vclock.NewSim()
	ch, err := NewChain(clk, nil, []ChainStage{
		{Name: "edge", Model: detect.TinyYOLOSim(1), Speed: 1, ThetaL: 0.5, ThetaU: 0.5},
		{Name: "cloud", Model: detect.YOLOv3Sim(detect.YOLO416, 1), Speed: 1, Link: netsim.EdgeCloudCrossCountry()},
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := video.NewGenerator(video.ParkDog(), 3).Generate(10)
	outs := ch.ProcessVideo(frames)
	for _, o := range outs {
		if o.StagesRun != 1 {
			t.Fatalf("frame %d ran %d stages, want 1", o.FrameIndex, o.StagesRun)
		}
		if len(o.CommitLatency) != 1 {
			t.Fatalf("frame %d has %d commits", o.FrameIndex, len(o.CommitLatency))
		}
	}
}

func TestChainFullForwarding(t *testing.T) {
	clk := vclock.NewSim()
	cloud := detect.YOLOv3Sim(detect.YOLO416, 1)
	ch, err := NewChain(clk, nil, []ChainStage{
		{Name: "edge", Model: detect.TinyYOLOSim(1), Speed: 1, ThetaL: 0, ThetaU: 1},
		{Name: "cloud", Model: cloud, Speed: 1, Link: netsim.EdgeCloudCrossCountry()},
	})
	if err != nil {
		t.Fatal(err)
	}
	prof := video.ParkDog()
	frames := video.NewGenerator(prof, 3).Generate(12)
	outs := ch.ProcessVideo(frames)
	truth := TruthFromModel(cloud, frames)
	var agg metrics.Counts
	forwarded := 0
	for _, o := range outs {
		if o.StagesRun == 2 {
			forwarded++
		}
		// Commit latencies must be strictly increasing per stage.
		for i := 1; i < len(o.CommitLatency); i++ {
			if o.CommitLatency[i] <= o.CommitLatency[i-1] {
				t.Fatalf("frame %d: stage %d commit %v not after stage %d commit %v",
					o.FrameIndex, i, o.CommitLatency[i], i-1, o.CommitLatency[i-1])
			}
		}
		agg.Add(metrics.ScoreClass(o.Final(), truth(o.FrameIndex), prof.QueryClass, 0.1))
	}
	if forwarded < len(frames)*3/4 {
		t.Errorf("only %d/%d frames reached the cloud at (0,1) thresholds", forwarded, len(frames))
	}
	if agg.F1() < 0.9 {
		t.Errorf("chain final F1 = %.3f, want near-perfect with full forwarding", agg.F1())
	}
}

func TestChainThreeStagesMonotoneAccuracy(t *testing.T) {
	// With progressively better models, the mean per-stage accuracy of
	// reached labels must not degrade along the chain.
	clk := vclock.NewSim()
	final := detect.YOLOv3Sim(detect.YOLO608, 1)
	ch, err := NewChain(clk, nil, []ChainStage{
		{Name: "edge", Model: detect.TinyYOLOSim(1), Speed: 1, ThetaL: 0, ThetaU: 1},
		{Name: "regional", Model: detect.YOLOv3Sim(detect.YOLO320, 1), Speed: 1, Link: netsim.EdgeCloudSameSite(), ThetaL: 0, ThetaU: 1},
		{Name: "cloud", Model: final, Speed: 1, Link: netsim.EdgeCloudCrossCountry()},
	})
	if err != nil {
		t.Fatal(err)
	}
	prof := video.MallSurveillance()
	frames := video.NewGenerator(prof, 3).Generate(15)
	outs := ch.ProcessVideo(frames)
	truth := TruthFromModel(final, frames)
	var stageCounts [3]metrics.Counts
	for _, o := range outs {
		for s := 0; s < o.StagesRun; s++ {
			stageCounts[s].Add(metrics.ScoreClass(o.Labels[s], truth(o.FrameIndex), prof.QueryClass, 0.1))
		}
	}
	f0, f1, f2 := stageCounts[0].F1(), stageCounts[1].F1(), stageCounts[2].F1()
	if !(f0 <= f1+0.05 && f1 <= f2+0.05) {
		t.Errorf("per-stage F not improving: %.3f %.3f %.3f", f0, f1, f2)
	}
	if f2 < 0.95 {
		t.Errorf("final stage F = %.3f, want ≈ 1 (it defines truth)", f2)
	}
}

func TestChainOutcomeFinalEmpty(t *testing.T) {
	var o ChainOutcome
	if o.Final() != nil {
		t.Error("empty outcome Final() != nil")
	}
}

func TestChainLatencyDominatedByReachedStages(t *testing.T) {
	clk := vclock.NewSim()
	ch, err := NewChain(clk, nil, []ChainStage{
		{Name: "edge", Model: detect.TinyYOLOSim(1), Speed: 1, ThetaL: 0, ThetaU: 1},
		{Name: "cloud", Model: detect.YOLOv3Sim(detect.YOLO608, 1), Speed: 1, Link: netsim.EdgeCloudCrossCountry()},
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := video.NewGenerator(video.ParkDog(), 3).Generate(6)
	outs := ch.ProcessVideo(frames)
	for _, o := range outs {
		if o.StagesRun != 2 {
			continue
		}
		if last := o.CommitLatency[1]; last < 2*time.Second {
			t.Errorf("frame %d final commit %v too fast for a YOLO-608 stage", o.FrameIndex, last)
		}
		if first := o.CommitLatency[0]; first > time.Second {
			t.Errorf("frame %d initial commit %v too slow for an edge stage", o.FrameIndex, first)
		}
	}
}
