package core

import (
	"strconv"
	"sync"
	"time"

	"croesus/internal/detect"
	"croesus/internal/randsrc"
	"croesus/internal/store"
	"croesus/internal/txn"
	"croesus/internal/vclock"
	"croesus/internal/workload"
)

// correctedReason builds the apology text without fmt (one allocation —
// the string itself); output is byte-identical to
// fmt.Sprintf("label corrected to %q", label).
func correctedReason(label string) string {
	var buf [64]byte
	b := append(buf[:0], "label corrected to "...)
	b = strconv.AppendQuote(b, label)
	return string(b)
}

// chargeOp models the CPU cost of one database operation.
func (s *WorkloadSource) chargeOp() {
	if s.Clk != nil && s.OpCost > 0 {
		s.Clk.Sleep(s.OpCost)
	}
}

// WorkloadSource builds the paper's evaluation transactions: each detection
// triggers a transaction with NumOps operations, half inserting data items
// and half reading previously added items ("This mimics a write-heavy
// workload of YCSB (Workload A)", §5.1). The final section terminates when
// the label was correct, overwrites with the corrected label (plus an
// apology) when the cloud disagrees, and retracts the initial writes when
// the detection was erroneous.
type WorkloadSource struct {
	Keys   workload.KeyChooser
	NumOps int
	Seed   int64
	// Clk and OpCost, when both set, charge OpCost of clock time per
	// database operation, modelling section execution cost. This is what
	// gives MS-IA its milliseconds-scale lock hold times in the
	// Figure 6(a) experiment.
	Clk    vclock.Clock
	OpCost time.Duration

	mu   sync.Mutex
	plan []txn.SectionSpec
}

// NewWorkloadSource returns a source over nKeys uniform keys with the
// paper's 6-operation bodies.
func NewWorkloadSource(nKeys int, seed int64) *WorkloadSource {
	return &WorkloadSource{
		Keys:   workload.Uniform{Prefix: "item", N: nKeys},
		NumOps: 6,
		Seed:   seed,
	}
}

// SetPlan shapes the source's transactions to an inference graph: with a
// non-empty plan (Graph.SectionPlan()), TxnFor emits one section per plan
// entry — section 0 runs the insert/read body, every later section the
// corrective body — instead of the classic Initial/Final pair. All
// sections share one read/write set, so MS-SR's up-front union
// acquisition covers the whole graph. Safe against concurrent TxnFor
// calls; an empty plan restores the two-stage shape.
func (s *WorkloadSource) SetPlan(plan []txn.SectionSpec) {
	s.mu.Lock()
	s.plan = plan
	s.mu.Unlock()
}

// SetKeys swaps the source's key chooser mid-run — the mechanism behind a
// scenario's workload shifts (skew or cross-edge fraction changing under a
// live fleet). Safe against concurrent TxnFor calls.
func (s *WorkloadSource) SetKeys(k workload.KeyChooser) {
	s.mu.Lock()
	s.Keys = k
	s.mu.Unlock()
}

// TxnFor builds the per-detection transaction. Keys are drawn
// deterministically from (seed, frame, trigger box), so repeated runs and
// different pipeline modes observe identical workloads.
func (s *WorkloadSource) TxnFor(frameIndex int, d detect.Detection) *txn.Txn {
	s.mu.Lock()
	r := randsrc.Get(s.Seed ^ int64(frameIndex)*1_000_003 ^ int64(d.Box.X*8191)<<16 ^ int64(d.Box.Y*131071))
	ops := workload.DetectionOps(r.Rand, s.Keys, s.NumOps)
	r.Put()
	plan := s.plan
	s.mu.Unlock()

	nW := 0
	for _, op := range ops {
		if op.Kind == workload.OpInsert {
			nW++
		}
	}
	// One backing array carries both halves of the declared set.
	keys := make([]string, 0, len(ops))
	for _, op := range ops {
		if op.Kind == workload.OpInsert {
			keys = append(keys, op.Key)
		}
	}
	for _, op := range ops {
		if op.Kind != workload.OpInsert {
			keys = append(keys, op.Key)
		}
	}
	var rw txn.RWSet
	rw.Writes = keys[:nW:nW]
	rw.Reads = keys[nW:]
	rw.Precompute()
	initial := func(c *txn.Ctx) error {
		in, _ := c.In().(InitialInput)
		v := store.StringValue(in.Trigger.Label)
		for _, op := range ops {
			s.chargeOp()
			if op.Kind == workload.OpInsert {
				c.Put(op.Key, v)
			} else {
				c.Get(op.Key)
			}
		}
		return nil
	}
	corrective := func(c *txn.Ctx) error {
		fin, _ := c.In().(FinalInput)
		switch fin.Case {
		case MatchCorrected, MatchNew:
			// Overwrite the inserted items with the corrected label
			// and apologize to the client.
			v := store.StringValue(fin.Cloud.Label)
			for _, op := range ops {
				if op.Kind == workload.OpInsert {
					s.chargeOp()
					c.Put(op.Key, v)
				}
			}
			c.Apologize(correctedReason(fin.Cloud.Label))
		case MatchErroneous:
			// False detection: retract the work of every committed
			// section — a cascading retraction at this boundary.
			c.Retract("erroneous detection removed by cloud validation")
		default:
			// MatchCorrect / MatchAssumed: the guess held; terminate
			// (the §2.1 task-1 behaviour).
		}
		return nil
	}
	t := &txn.Txn{
		Name:      "detect-" + d.Label + "-f" + strconv.Itoa(frameIndex),
		InitialRW: rw,
		FinalRW:   rw,
		Initial:   initial,
		Final:     corrective,
	}
	if len(plan) > 0 {
		secs := make([]txn.SectionSpec, len(plan))
		for k := range plan {
			body := corrective
			if k == 0 {
				body = initial
			}
			secs[k] = txn.SectionSpec{Name: plan[k].Name, Tier: plan[k].Tier, RW: rw, Body: body}
		}
		t.Sections = secs
	}
	return t
}
