package core

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"croesus/internal/detect"
	"croesus/internal/store"
	"croesus/internal/txn"
	"croesus/internal/vclock"
	"croesus/internal/workload"
)

// chargeOp models the CPU cost of one database operation.
func (s *WorkloadSource) chargeOp() {
	if s.Clk != nil && s.OpCost > 0 {
		s.Clk.Sleep(s.OpCost)
	}
}

// WorkloadSource builds the paper's evaluation transactions: each detection
// triggers a transaction with NumOps operations, half inserting data items
// and half reading previously added items ("This mimics a write-heavy
// workload of YCSB (Workload A)", §5.1). The final section terminates when
// the label was correct, overwrites with the corrected label (plus an
// apology) when the cloud disagrees, and retracts the initial writes when
// the detection was erroneous.
type WorkloadSource struct {
	Keys   workload.KeyChooser
	NumOps int
	Seed   int64
	// Clk and OpCost, when both set, charge OpCost of clock time per
	// database operation, modelling section execution cost. This is what
	// gives MS-IA its milliseconds-scale lock hold times in the
	// Figure 6(a) experiment.
	Clk    vclock.Clock
	OpCost time.Duration

	mu   sync.Mutex
	plan []txn.SectionSpec
}

// NewWorkloadSource returns a source over nKeys uniform keys with the
// paper's 6-operation bodies.
func NewWorkloadSource(nKeys int, seed int64) *WorkloadSource {
	return &WorkloadSource{
		Keys:   workload.Uniform{Prefix: "item", N: nKeys},
		NumOps: 6,
		Seed:   seed,
	}
}

// SetPlan shapes the source's transactions to an inference graph: with a
// non-empty plan (Graph.SectionPlan()), TxnFor emits one section per plan
// entry — section 0 runs the insert/read body, every later section the
// corrective body — instead of the classic Initial/Final pair. All
// sections share one read/write set, so MS-SR's up-front union
// acquisition covers the whole graph. Safe against concurrent TxnFor
// calls; an empty plan restores the two-stage shape.
func (s *WorkloadSource) SetPlan(plan []txn.SectionSpec) {
	s.mu.Lock()
	s.plan = plan
	s.mu.Unlock()
}

// SetKeys swaps the source's key chooser mid-run — the mechanism behind a
// scenario's workload shifts (skew or cross-edge fraction changing under a
// live fleet). Safe against concurrent TxnFor calls.
func (s *WorkloadSource) SetKeys(k workload.KeyChooser) {
	s.mu.Lock()
	s.Keys = k
	s.mu.Unlock()
}

// TxnFor builds the per-detection transaction. Keys are drawn
// deterministically from (seed, frame, trigger box), so repeated runs and
// different pipeline modes observe identical workloads.
func (s *WorkloadSource) TxnFor(frameIndex int, d detect.Detection) *txn.Txn {
	s.mu.Lock()
	rng := rand.New(rand.NewSource(s.Seed ^ int64(frameIndex)*1_000_003 ^ int64(d.Box.X*8191)<<16 ^ int64(d.Box.Y*131071)))
	ops := workload.DetectionOps(rng, s.Keys, s.NumOps)
	plan := s.plan
	s.mu.Unlock()

	var rw txn.RWSet
	for _, op := range ops {
		if op.Kind == workload.OpInsert {
			rw.Writes = append(rw.Writes, op.Key)
		} else {
			rw.Reads = append(rw.Reads, op.Key)
		}
	}
	initial := func(c *txn.Ctx) error {
		in, _ := c.In().(InitialInput)
		for _, op := range ops {
			s.chargeOp()
			if op.Kind == workload.OpInsert {
				c.Put(op.Key, store.StringValue(in.Trigger.Label))
			} else {
				c.Get(op.Key)
			}
		}
		return nil
	}
	corrective := func(c *txn.Ctx) error {
		fin, _ := c.In().(FinalInput)
		switch fin.Case {
		case MatchCorrected, MatchNew:
			// Overwrite the inserted items with the corrected label
			// and apologize to the client.
			for _, op := range ops {
				if op.Kind == workload.OpInsert {
					s.chargeOp()
					c.Put(op.Key, store.StringValue(fin.Cloud.Label))
				}
			}
			c.Apologize(fmt.Sprintf("label corrected to %q", fin.Cloud.Label))
		case MatchErroneous:
			// False detection: retract the work of every committed
			// section — a cascading retraction at this boundary.
			c.Retract("erroneous detection removed by cloud validation")
		default:
			// MatchCorrect / MatchAssumed: the guess held; terminate
			// (the §2.1 task-1 behaviour).
		}
		return nil
	}
	t := &txn.Txn{
		Name:      fmt.Sprintf("detect-%s-f%d", d.Label, frameIndex),
		InitialRW: rw,
		FinalRW:   rw,
		Initial:   initial,
		Final:     corrective,
	}
	if len(plan) > 0 {
		secs := make([]txn.SectionSpec, len(plan))
		for k := range plan {
			body := corrective
			if k == 0 {
				body = initial
			}
			secs[k] = txn.SectionSpec{Name: plan[k].Name, Tier: plan[k].Tier, RW: rw, Body: body}
		}
		t.Sections = secs
	}
	return t
}
