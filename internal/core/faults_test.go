package core

import (
	"testing"
	"time"

	"croesus/internal/detect"
	"croesus/internal/lock"
	"croesus/internal/store"
	"croesus/internal/txn"
	"croesus/internal/vclock"
)

func buildLossy(t *testing.T, lossProb float64) (*Pipeline, *txn.Manager) {
	t.Helper()
	s := vclock.NewSim()
	mgr := txn.NewManager(s, store.New(), lock.NewManager(s))
	p, err := New(Config{
		Clock:         s,
		EdgeModel:     detect.TinyYOLOSim(42),
		CloudModel:    detect.YOLOv3Sim(detect.YOLO416, 42),
		ThetaL:        0.0,
		ThetaU:        1.0, // validate everything: maximum cloud exposure
		Source:        NewWorkloadSource(500, 7),
		CC:            &txn.MSIA{M: mgr},
		Mgr:           mgr,
		CloudLossProb: lossProb,
		CloudTimeout:  2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, mgr
}

func TestCloudLossFallsBackLocally(t *testing.T) {
	p, mgr := buildLossy(t, 0.5)
	frames := parkFrames(30)
	outs := p.ProcessVideo(frames)

	lost, delivered := 0, 0
	for _, o := range outs {
		if !o.SentToCloud {
			continue
		}
		if o.CloudLost {
			lost++
			// A lost frame finalizes with the edge labels and pays the
			// timeout instead of the cloud leg.
			if len(o.FinalVisible) != len(o.InitialVisible) {
				t.Errorf("frame %d: lost frame changed its label set", o.FrameIndex)
			}
			if o.Breakdown.CloudDetect != 0 {
				t.Errorf("frame %d: lost frame has cloud detect time", o.FrameIndex)
			}
			if o.FinalLatency < 2*time.Second {
				t.Errorf("frame %d: lost frame final %v below the timeout", o.FrameIndex, o.FinalLatency)
			}
		} else {
			delivered++
		}
	}
	if lost == 0 || delivered == 0 {
		t.Fatalf("loss injection inert: lost=%d delivered=%d", lost, delivered)
	}

	// Liveness: every initially-committed transaction resolved.
	st := mgr.Stats()
	if unresolved := st.InitialCommits - st.FinalCommits; unresolved < 0 || unresolved > st.Retractions {
		t.Errorf("transactions left unresolved: %+v", st)
	}
}

func TestCloudLossDeterministic(t *testing.T) {
	run := func() []bool {
		p, _ := buildLossy(t, 0.3)
		outs := p.ProcessVideo(parkFrames(20))
		lost := make([]bool, len(outs))
		for i, o := range outs {
			lost[i] = o.CloudLost
		}
		return lost
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("frame %d loss differs across identical runs", i)
		}
	}
}

func TestZeroLossIsNoop(t *testing.T) {
	p, _ := buildLossy(t, 0)
	outs := p.ProcessVideo(parkFrames(10))
	for _, o := range outs {
		if o.CloudLost {
			t.Fatal("frame lost with zero loss probability")
		}
	}
}

func TestFullLossStillAnswersEveryFrame(t *testing.T) {
	p, _ := buildLossy(t, 1.0)
	outs := p.ProcessVideo(parkFrames(10))
	for _, o := range outs {
		if o.SentToCloud && !o.CloudLost {
			t.Fatal("frame claims cloud delivery under total loss")
		}
		if o.FinalLatency == 0 {
			t.Fatalf("frame %d never finalized", o.FrameIndex)
		}
	}
}
