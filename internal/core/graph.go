package core

import (
	"time"

	"croesus/internal/detect"
	"croesus/internal/netsim"
	"croesus/internal/obs"
	"croesus/internal/transport"
	"croesus/internal/txn"
	"croesus/internal/vclock"
	"croesus/internal/video"
)

// This file is the inference-graph executor: the N-section generalization
// of the two-stage pipeline. A Graph is an ordered list of model nodes,
// each pinned to a placement tier; node k's labels trigger section k of
// every transaction the frame opened, so each node is one boundary commit.
// Routing between nodes is Sequence (fall through to the next node) or a
// confidence-threshold Switch; whichever nodes the route skips still
// commit their sections locally with the labels assumed correct, so an
// initially-committed transaction always reaches its last boundary — the
// multi-stage guarantee of §4, unchanged.

// DoneTarget is the Switch destination that ends the route early.
const DoneTarget = "done"

// SwitchBranch routes to a strictly-later node (or DoneTarget) when the
// frame's routing confidence falls inside [Lo, Hi]. Branches of one node
// must cover [0, 1]; the first matching branch wins.
type SwitchBranch struct {
	Lo, Hi float64
	To     string
}

// GraphNode is one model in the graph, pinned to a tier. The frame ships
// to the node over the tier's transport path (nothing for edge — the node
// is co-located with the hub; the peer mesh for peer; the uplink for
// cloud), the model refines the labels, and the matching transaction
// section commits.
type GraphNode struct {
	Name string
	Tier txn.Tier
	// Model is the node's detector. Node 0 defaults to Config.EdgeModel;
	// every later node must set it.
	Model detect.Model
	// Speed divides the model's inference latency; 0 takes the tier
	// default (Config.EdgeSpeed for edge and peer, CloudSpeed for cloud).
	Speed float64
	// Switch, when non-empty, routes by confidence after this node runs.
	// Empty means Sequence: fall through to the next node in order.
	Switch []SwitchBranch
}

// Graph is an ordered inference graph; node k owns transaction section k.
// Node 0 must be an edge node (the client's immediate answer).
type Graph struct {
	Nodes []GraphNode
}

// SectionPlan returns the name and tier of each node as transaction
// section prototypes — what a TxnSource needs to shape its transactions to
// the graph (WorkloadSource.SetPlan).
func (g *Graph) SectionPlan() []txn.SectionSpec {
	plan := make([]txn.SectionSpec, len(g.Nodes))
	for i := range g.Nodes {
		plan[i] = txn.SectionSpec{Name: g.Nodes[i].Name, Tier: g.Nodes[i].Tier}
	}
	return plan
}

// index returns the position of the named node, or -1.
func (g *Graph) index(name string) int {
	for i := range g.Nodes {
		if g.Nodes[i].Name == name {
			return i
		}
	}
	return -1
}

// next returns the node the route visits after node k at the given
// routing confidence, or -1 when the route ends.
func (g *Graph) next(k int, conf float64) int {
	nd := &g.Nodes[k]
	if len(nd.Switch) == 0 {
		if k+1 < len(g.Nodes) {
			return k + 1
		}
		return -1
	}
	for _, br := range nd.Switch {
		if conf < br.Lo || conf > br.Hi {
			continue
		}
		if br.To == DoneTarget {
			return -1
		}
		return g.index(br.To)
	}
	return -1
}

// routeConfidence is the confidence the Switch branches test: the least
// confident visible detection (1.0 when nothing is visible — a clean
// frame needs no deeper model).
func routeConfidence(dets []detect.Detection) float64 {
	conf := 1.0
	for _, d := range dets {
		if d.Confidence < conf {
			conf = d.Confidence
		}
	}
	return conf
}

// processGraph executes the frame over the configured inference graph —
// the N-section generalization of processCroesus. Section 0 mirrors the
// classic initial phase (client send, edge model, θL discard, boundary
// commit, client answer); each later node charges its tier's path, runs
// its model, matches the labels against the frame's reference set, and
// commits its section; route-skipped sections commit locally in order.
func (p *Pipeline) processGraph(f *video.Frame, ctx obs.SpanContext) FrameOutcome {
	cfg := p.cfg
	clk := cfg.Clock
	g := cfg.Graph
	n := len(g.Nodes)
	out := FrameOutcome{FrameIndex: f.Index, CapturedAt: f.At}
	out.Sections = make([]SectionOutcome, n)
	for k := range out.Sections {
		out.Sections[k].Name = g.Nodes[k].Name
		out.Sections[k].Tier = g.Nodes[k].Tier.String()
	}

	// Node 0: the client ships the frame to the edge hub.
	t0 := clk.Now()
	transport.SendCtx(cfg.ClientEdge, clk, f.SizeBytes, traceCtx(ctx, 0))
	tIngest := clk.Now()
	out.Breakdown.ClientEdge = tIngest - t0
	cfg.Obs.SpanCtx(ctx, obs.SpanFrameIngest, p.tags, t0, tIngest)

	dets, poolWait, edgeLat := p.detectNode(f, 0, ctx)
	out.Breakdown.ComputeWait = poolWait
	out.Breakdown.EdgeDetect = edgeLat
	if cfg.Smoother != nil {
		dets = cfg.Smoother.Apply(f.Index, dets)
	}
	dets = filterConfidence(dets, cfg.MinConfidence)
	out.EdgeDetections = dets

	// Bandwidth thresholding still guards what becomes visible: below θL
	// is discarded. Forwarding is the graph's business, not θU's.
	visible := make([]detect.Detection, 0, len(dets))
	for _, d := range dets {
		if d.Confidence < cfg.ThetaL {
			out.DiscardedDetections++
			continue
		}
		visible = append(visible, d)
	}
	out.InitialVisible = visible

	// Section 0: the boundary commit behind the client's immediate answer.
	pending := p.runGraphInitials(f, ctx, visible, &out)
	transport.SendCtx(cfg.ClientEdge, clk, netsim.LabelReturnBytes, traceCtx(ctx, 0))
	out.InitialLatency = clk.Now() - f.At
	out.Sections[0].Latency = out.InitialLatency
	if cfg.OnInitial != nil {
		cfg.OnInitial(f, &out)
	}

	// Walk the route. ref is the reference label set pending transactions
	// index into; it grows by one entry per MatchNew transaction so later
	// nodes re-match against everything already known. current is what the
	// client renders after the latest boundary.
	ref := visible
	current := visible
	at := 0
	next := g.next(0, routeConfidence(visible))
	for next >= 0 {
		// Boundaries the route jumped over commit locally, in order —
		// section k+1 cannot run before section k.
		for s := at + 1; s < next; s++ {
			pending, ref = p.runGraphSection(f, ctx, s, pending, ref, nil, &out)
			out.Sections[s].Latency = clk.Now() - f.At
		}
		k := next
		nd := &g.Nodes[k]
		sec := &out.Sections[k]

		// Ship the frame to the node's tier and run its model.
		hop := p.hopTo(f, k, ctx)
		sec.Hop = hop
		out.Breakdown.EdgeCloud += hop
		if nd.Tier == txn.TierCloud {
			out.SentToCloud = true
		}
		nodeDets, slotWait, detLat, ok := p.graphDetect(f, k, ctx)
		sec.Detect = detLat
		out.Breakdown.CloudQueue += slotWait
		out.Breakdown.CloudDetect += detLat

		// The refined labels correct the reference set and commit the
		// node's section. A lost or shed remote node (GraphValidate only)
		// commits with the labels assumed correct instead.
		var matches []LabelMatch
		if ok {
			nodeDets = filterConfidence(nodeDets, cfg.MinConfidence)
			matches = MatchLabels(ref, nodeDets, cfg.OverlapMin)
			if cfg.Smoother != nil && nd.Tier == txn.TierCloud {
				cfg.Smoother.Learn(f.Index, matches, ref)
			}
			current = nodeDets
		}
		pending, ref = p.runGraphSection(f, ctx, k, pending, ref, matches, &out)

		// Boundary commit: the refreshed labels reach the client.
		transport.SendCtx(cfg.ClientEdge, clk, netsim.LabelReturnBytes, traceCtx(ctx, k))
		sec.Latency = clk.Now() - f.At

		at = k
		next = g.next(k, routeConfidence(current))
	}

	// The route ended early: remaining sections commit locally with the
	// labels assumed correct — the §3.5 early stop, once per boundary.
	for s := at + 1; s < n; s++ {
		pending, ref = p.runGraphSection(f, ctx, s, pending, ref, nil, &out)
		out.Sections[s].Latency = clk.Now() - f.At
	}
	_ = pending

	out.FinalVisible = current
	out.FinalLatency = clk.Now() - f.At
	return out
}

// graphDetect produces node k's detections: the in-pipeline model under
// the tier's compute slots, or — for cloud-tier nodes with a
// GraphValidate hook — a real remote round trip. ok is false only when
// the remote node was lost or shed the request.
func (p *Pipeline) graphDetect(f *video.Frame, k int, ctx obs.SpanContext) ([]detect.Detection, time.Duration, time.Duration, bool) {
	cfg := p.cfg
	if cfg.Graph.Nodes[k].Tier == txn.TierCloud && cfg.GraphValidate != nil {
		clk := cfg.Clock
		start := clk.Now()
		dets, detLat, ok := cfg.GraphValidate(f, k)
		end := clk.Now()
		if ok {
			cfg.Obs.SpanCtx(ctx, obs.SpanNodeDetect, p.secTag(k), start, end)
		}
		return dets, 0, detLat, ok
	}
	dets, wait, lat := p.detectNode(f, k, ctx)
	return dets, wait, lat, true
}

// detectNode runs node k's model under its tier's compute slots: the edge
// pool for edge nodes, the cloud slots for cloud nodes, uncontended for
// peer nodes (the peer edge's own machine). Returns detections, slot
// wait, and inference time.
func (p *Pipeline) detectNode(f *video.Frame, k int, ctx obs.SpanContext) ([]detect.Detection, time.Duration, time.Duration) {
	cfg := p.cfg
	clk := cfg.Clock
	nd := &cfg.Graph.Nodes[k]
	model := nd.Model
	if model == nil {
		model = cfg.EdgeModel
	}
	speed := nd.Speed
	if speed <= 0 {
		if nd.Tier == txn.TierCloud {
			speed = cfg.CloudSpeed
		} else {
			speed = cfg.EdgeSpeed
		}
	}
	var sem *vclock.Semaphore
	switch nd.Tier {
	case txn.TierEdge:
		sem = p.edgeSlots
	case txn.TierCloud:
		sem = p.cloudSlot
	}
	tw := clk.Now()
	if sem == p.edgeSlots {
		p.queueDepth.Add(1)
	}
	if sem != nil {
		sem.Acquire()
	}
	if sem == p.edgeSlots {
		p.queueDepth.Add(-1)
	}
	start := clk.Now()
	res := model.Detect(f)
	clk.Sleep(scale(res.Latency, speed))
	if sem != nil {
		sem.Release()
	}
	end := clk.Now()
	if start > tw {
		cfg.Obs.SpanCtx(ctx, obs.SpanPoolWait, p.tags, tw, start)
	}
	cfg.Obs.SpanCtx(ctx, obs.SpanNodeDetect, p.secTag(k), start, end)
	return res.Detections, start - tw, end - start
}

// hopTo charges shipping the frame from the edge hub into node k's tier:
// nothing for edge nodes, the peer mesh for peer nodes, the uplink for
// cloud nodes. Preprocessing applies on every off-hub hop.
func (p *Pipeline) hopTo(f *video.Frame, k int, ctx obs.SpanContext) time.Duration {
	cfg := p.cfg
	clk := cfg.Clock
	var path transport.Path
	switch cfg.Graph.Nodes[k].Tier {
	case txn.TierCloud:
		path = cfg.EdgeCloud
	case txn.TierPeer:
		path = cfg.PeerPath
		if path == nil {
			path = cfg.EdgeCloud
		}
	default:
		return 0
	}
	t0 := clk.Now()
	bytes, prepCost := cfg.Preproc.Process(f.SizeBytes)
	clk.Sleep(scale(prepCost, cfg.EdgeSpeed))
	transport.SendCtx(path, clk, bytes, traceCtx(ctx, k))
	end := clk.Now()
	cfg.Obs.SpanCtx(ctx, obs.SpanUplink, p.secTag(k), t0, end)
	return end - t0
}

// runGraphInitials triggers and runs section 0 for the visible detections
// — runInitials reshaped for the graph path, recording into Sections[0].
func (p *Pipeline) runGraphInitials(f *video.Frame, ctx obs.SpanContext, dets []detect.Detection, out *FrameOutcome) []pendingTxn {
	if p.cfg.Source == nil {
		return nil
	}
	clk := p.cfg.Clock
	sec := &out.Sections[0]
	start := clk.Now()
	var pending []pendingTxn
	for i, d := range dets {
		t := p.cfg.Source.TxnFor(f.Index, d)
		if t == nil {
			continue
		}
		inst := p.cfg.Mgr.NewInstance(t, InitialInput{FrameIndex: f.Index, Trigger: d, Labels: dets})
		inst.Trace = ctx
		err := p.cfg.CC.RunSection(inst, 0)
		p.harvestSection(inst, out, sec)
		if err != nil {
			out.InitialAborts++
			continue
		}
		pending = append(pending, pendingTxn{inst: inst, trigger: d, edgeIdx: i})
	}
	out.TxnsTriggered += len(pending)
	end := clk.Now()
	sec.Txn = end - start
	out.Breakdown.InitialTxn = end - start
	if len(dets) > 0 {
		p.cfg.Obs.SpanCtx(ctx, obs.SpanSectionTxn, p.secTag(0), start, end)
	}
	p.secCommit(0, int64(len(pending)))
	return pending
}

// runGraphSection runs section k (k ≥ 1) of every pending transaction with
// the node's matches (nil matches ⇒ labels assumed correct), plus a full
// catch-up run — sections 0..k — for labels first seen at this node
// (MatchNew). Fresh transactions join pending and their trigger joins the
// reference set, so later nodes match against them instead of re-raising
// them. Returns the updated pending and reference sets.
func (p *Pipeline) runGraphSection(f *video.Frame, ctx obs.SpanContext, k int, pending []pendingTxn, ref []detect.Detection, matches []LabelMatch, out *FrameOutcome) ([]pendingTxn, []detect.Detection) {
	if p.cfg.Source == nil {
		return pending, ref
	}
	clk := p.cfg.Clock
	sec := &out.Sections[k]
	last := len(p.cfg.Graph.Nodes) - 1
	start := clk.Now()
	byEdgeIdx := make(map[int]LabelMatch, len(matches))
	for _, m := range matches {
		if m.EdgeIdx >= 0 {
			byEdgeIdx[m.EdgeIdx] = m
		}
	}
	committed := int64(0)
	for _, pt := range pending {
		m, ok := byEdgeIdx[pt.edgeIdx]
		if !ok {
			m = LabelMatch{Case: MatchAssumed, EdgeIdx: pt.edgeIdx}
		}
		fin := FinalInput{FrameIndex: f.Index, Case: m.Case, Edge: pt.trigger, Cloud: m.Cloud}
		if fin.Corrected() {
			out.Corrections++
		}
		pt.inst.SetSectionIn(k, fin)
		if err := p.cfg.CC.RunSection(pt.inst, k); err != nil && err != txn.ErrRetracted {
			out.FinalErrors++
		} else if err == nil {
			committed++
		}
		p.harvestSection(pt.inst, out, sec)
		if k == last {
			out.Apologies = append(out.Apologies, pt.inst.Apologies()...)
		}
	}
	// Labels every earlier node missed: trigger now and catch up through
	// section k, so the transaction is level with the rest of the frame.
	for _, m := range matches {
		if m.Case != MatchNew {
			continue
		}
		t := p.cfg.Source.TxnFor(f.Index, m.Cloud)
		if t == nil {
			continue
		}
		inst := p.cfg.Mgr.NewInstance(t, InitialInput{FrameIndex: f.Index, Trigger: m.Cloud})
		inst.Trace = ctx
		err := p.cfg.CC.RunSection(inst, 0)
		p.harvestSection(inst, out, sec)
		if err != nil {
			out.InitialAborts++
			continue
		}
		out.TxnsTriggered++
		out.Corrections++
		for j := 1; j < k; j++ {
			inst.SetSectionIn(j, FinalInput{FrameIndex: f.Index, Case: MatchAssumed})
			if err := p.cfg.CC.RunSection(inst, j); err != nil && err != txn.ErrRetracted {
				out.FinalErrors++
			}
			p.harvestSection(inst, out, sec)
		}
		inst.SetSectionIn(k, FinalInput{FrameIndex: f.Index, Case: MatchNew, Cloud: m.Cloud})
		if err := p.cfg.CC.RunSection(inst, k); err != nil && err != txn.ErrRetracted {
			out.FinalErrors++
		} else if err == nil {
			committed++
		}
		p.harvestSection(inst, out, sec)
		if k == last {
			out.Apologies = append(out.Apologies, inst.Apologies()...)
		}
		ref = append(ref, m.Cloud)
		pending = append(pending, pendingTxn{inst: inst, trigger: m.Cloud, edgeIdx: len(ref) - 1})
	}
	end := clk.Now()
	sec.Txn += end - start
	out.Breakdown.FinalTxn += end - start
	if len(pending) > 0 || len(matches) > 0 {
		p.cfg.Obs.SpanCtx(ctx, obs.SpanSectionTxn, p.secTag(k), start, end)
	}
	p.secCommit(k, committed)
	return pending, ref
}

// harvestSection folds an instance's instrumented lock-wait and 2PC time
// into both the frame breakdown and the section's own decomposition.
func (p *Pipeline) harvestSection(inst *txn.Instance, out *FrameOutcome, sec *SectionOutcome) {
	lw, tp := inst.TakeTiming()
	out.Breakdown.LockWait += lw
	out.Breakdown.TwoPC += tp
	sec.LockWait += lw
	sec.TwoPC += tp
}

// secTag returns the pre-resolved tag string for section k (p.tags plus
// the section tag).
func (p *Pipeline) secTag(k int) string {
	if k < len(p.secTags) {
		return p.secTags[k]
	}
	return p.tags
}

// secCommit bumps section k's boundary-commit counter.
func (p *Pipeline) secCommit(k int, n int64) {
	if n > 0 && k < len(p.mSecCommits) {
		p.mSecCommits[k].Add(n)
	}
}
