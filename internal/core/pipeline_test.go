package core

import (
	"testing"
	"time"

	"croesus/internal/detect"
	"croesus/internal/lock"
	"croesus/internal/netsim"
	"croesus/internal/store"
	"croesus/internal/txn"
	"croesus/internal/vclock"
	"croesus/internal/video"
)

// buildPipeline wires a full Croesus stack over a fresh Sim clock.
func buildPipeline(t *testing.T, mode Mode, thetaL, thetaU float64) (*Pipeline, *vclock.Sim, *txn.Manager) {
	t.Helper()
	s := vclock.NewSim()
	st := store.New()
	locks := lock.NewManager(s)
	mgr := txn.NewManager(s, st, locks)
	p, err := New(Config{
		Clock:      s,
		Mode:       mode,
		EdgeModel:  detect.TinyYOLOSim(42),
		CloudModel: detect.YOLOv3Sim(detect.YOLO416, 42),
		ThetaL:     thetaL,
		ThetaU:     thetaU,
		Source:     NewWorkloadSource(1000, 7),
		CC:         &txn.MSIA{M: mgr},
		Mgr:        mgr,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return p, s, mgr
}

func parkFrames(n int) []*video.Frame {
	return video.NewGenerator(video.ParkDog(), 11).Generate(n)
}

func TestConfigValidation(t *testing.T) {
	s := vclock.NewSim()
	if _, err := New(Config{}); err == nil {
		t.Error("missing clock accepted")
	}
	if _, err := New(Config{Clock: s, Mode: ModeCroesus, EdgeModel: detect.Oracle{}, CloudModel: detect.Oracle{}, ThetaL: 0.9, ThetaU: 0.2}); err == nil {
		t.Error("inverted thresholds accepted")
	}
	if _, err := New(Config{Clock: s, Mode: ModeEdgeOnly}); err == nil {
		t.Error("edge-only without edge model accepted")
	}
	if _, err := New(Config{Clock: s, Mode: ModeCloudOnly}); err == nil {
		t.Error("cloud-only without cloud model accepted")
	}
	mgr := txn.NewManager(s, store.New(), lock.NewManager(s))
	if _, err := New(Config{Clock: s, Mode: ModeEdgeOnly, EdgeModel: detect.Oracle{}, Mgr: mgr}); err == nil {
		t.Error("partial txn wiring accepted")
	}
}

func TestEdgeOnlyPipeline(t *testing.T) {
	p, _, mgr := buildPipeline(t, ModeEdgeOnly, 0, 0)
	frames := parkFrames(20)
	outs := p.ProcessVideo(frames)
	if len(outs) != 20 {
		t.Fatalf("outcomes = %d", len(outs))
	}
	for _, o := range outs {
		if o.SentToCloud {
			t.Fatal("edge-only sent a frame to the cloud")
		}
		if o.FinalLatency != o.InitialLatency {
			t.Fatal("edge-only final latency must equal initial")
		}
		// Edge-only latency ≈ transfer + ~200ms detection + txns. It must
		// stay well under the cloud detection scale.
		if o.InitialLatency > 700*time.Millisecond {
			t.Errorf("frame %d edge-only latency %v too high", o.FrameIndex, o.InitialLatency)
		}
		if o.InitialLatency < 100*time.Millisecond {
			t.Errorf("frame %d edge-only latency %v implausibly low", o.FrameIndex, o.InitialLatency)
		}
	}
	if st := mgr.Stats(); st.InitialCommits == 0 || st.InitialCommits != st.FinalCommits {
		t.Errorf("stats = %+v: every initial must finally commit", st)
	}
}

func TestCloudOnlyPipeline(t *testing.T) {
	p, _, _ := buildPipeline(t, ModeCloudOnly, 0, 0)
	frames := parkFrames(15)
	outs := p.ProcessVideo(frames)
	truth := TruthFromModel(p.Config().CloudModel, frames)
	sum := Summarize("park", ModeCloudOnly, "dog", outs, truth, 0.1)
	if sum.F1Final < 0.999 {
		t.Errorf("cloud-only F1 = %.3f, want 1.0 (cloud defines truth)", sum.F1Final)
	}
	if sum.BU != 1.0 {
		t.Errorf("cloud-only BU = %.2f, want 1.0", sum.BU)
	}
	// Cloud-only latency is dominated by ~1.12s detection plus transfers.
	if sum.MeanFinalLatency < time.Second {
		t.Errorf("cloud-only mean latency %v implausibly low", sum.MeanFinalLatency)
	}
}

func TestCroesusFullValidation(t *testing.T) {
	// θL=0, θU=1: every frame validates — Croesus converges to cloud
	// accuracy with initial commits at edge speed.
	p, _, _ := buildPipeline(t, ModeCroesus, 0.0, 1.0)
	frames := parkFrames(15)
	outs := p.ProcessVideo(frames)
	truth := TruthFromModel(p.Config().CloudModel, frames)
	sum := Summarize("park", ModeCroesus, "dog", outs, truth, 0.1)
	// Frames with zero edge detections cannot enter the validate interval,
	// so BU saturates slightly below 1.0.
	if sum.BU < 0.85 {
		t.Errorf("BU = %.2f, want ≈ 1.0 at (0,1) thresholds", sum.BU)
	}
	// Frames where the edge model detects nothing are never validated, so
	// the ceiling sits slightly below 1.0.
	if sum.F1Final < 0.94 {
		t.Errorf("F1Final = %.3f, want ≈ 1.0 under full validation", sum.F1Final)
	}
	if sum.MeanInitialLatency >= sum.MeanFinalLatency {
		t.Errorf("initial %v must beat final %v", sum.MeanInitialLatency, sum.MeanFinalLatency)
	}
	if sum.MeanInitialLatency > 800*time.Millisecond {
		t.Errorf("initial latency %v should stay near edge speed", sum.MeanInitialLatency)
	}
}

func TestCroesusZeroValidation(t *testing.T) {
	// θL=θU=0.5: no validate interval — BU must be 0 and final == initial
	// latency (no cloud leg).
	p, _, _ := buildPipeline(t, ModeCroesus, 0.5, 0.5)
	frames := parkFrames(15)
	outs := p.ProcessVideo(frames)
	for _, o := range outs {
		if o.SentToCloud {
			t.Fatal("frame sent to cloud despite empty validate interval")
		}
	}
	truth := TruthFromModel(p.Config().CloudModel, frames)
	sum := Summarize("park", ModeCroesus, "dog", outs, truth, 0.1)
	if sum.BU != 0 {
		t.Errorf("BU = %.2f, want 0", sum.BU)
	}
}

func TestCroesusDiscardsBelowThetaL(t *testing.T) {
	p, _, _ := buildPipeline(t, ModeCroesus, 0.45, 0.45)
	frames := parkFrames(25)
	outs := p.ProcessVideo(frames)
	discarded := 0
	for _, o := range outs {
		discarded += o.DiscardedDetections
		for _, v := range o.InitialVisible {
			if v.Confidence < 0.45 {
				t.Fatalf("rendered detection below θL: %.2f", v.Confidence)
			}
		}
	}
	if discarded == 0 {
		t.Error("no detections discarded — θL filter inert")
	}
}

func TestCroesusAccuracyBetweenBaselines(t *testing.T) {
	frames := parkFrames(40)

	run := func(mode Mode, tl, tu float64) Summary {
		p, _, _ := buildPipeline(t, mode, tl, tu)
		outs := p.ProcessVideo(frames)
		truth := TruthFromModel(p.Config().CloudModel, frames)
		return Summarize("park", mode, "dog", outs, truth, 0.1)
	}
	// The validate band (0.40, 0.62) covers the edge model's high-error
	// confidence region while keeping BU partial (see cmd/croesus-calibrate).
	edge := run(ModeEdgeOnly, 0, 0)
	croesus := run(ModeCroesus, 0.40, 0.62)
	cloud := run(ModeCloudOnly, 0, 0)

	if !(edge.F1Final < croesus.F1Final && croesus.F1Final <= cloud.F1Final+1e-9) {
		t.Errorf("accuracy ordering violated: edge=%.3f croesus=%.3f cloud=%.3f",
			edge.F1Final, croesus.F1Final, cloud.F1Final)
	}
	if !(edge.MeanFinalLatency < croesus.MeanFinalLatency && croesus.MeanFinalLatency < cloud.MeanFinalLatency) {
		t.Errorf("latency ordering violated: edge=%v croesus=%v cloud=%v",
			edge.MeanFinalLatency, croesus.MeanFinalLatency, cloud.MeanFinalLatency)
	}
	if croesus.MeanInitialLatency > edge.MeanFinalLatency*3/2 {
		t.Errorf("croesus initial commit %v should be comparable to edge-only %v",
			croesus.MeanInitialLatency, edge.MeanFinalLatency)
	}
	if croesus.BU <= 0 || croesus.BU >= 1 {
		t.Errorf("BU = %.2f, want partial validation", croesus.BU)
	}
}

func TestValidatedFramesReachCloudTruth(t *testing.T) {
	p, _, _ := buildPipeline(t, ModeCroesus, 0.2, 0.9)
	frames := parkFrames(20)
	outs := p.ProcessVideo(frames)
	cloudTruth := TruthFromModel(p.Config().CloudModel, frames)
	for _, o := range outs {
		if !o.SentToCloud {
			continue
		}
		want := cloudTruth(o.FrameIndex)
		if len(o.FinalVisible) != len(want) {
			t.Fatalf("frame %d: final visible %d labels, cloud truth %d",
				o.FrameIndex, len(o.FinalVisible), len(want))
		}
	}
}

func TestApologiesIssuedForCorrections(t *testing.T) {
	p, _, _ := buildPipeline(t, ModeCroesus, 0.0, 1.0) // validate everything
	frames := parkFrames(30)
	outs := p.ProcessVideo(frames)
	var corrections, apologies int
	for _, o := range outs {
		corrections += o.Corrections
		apologies += len(o.Apologies)
	}
	if corrections == 0 {
		t.Fatal("tiny model made no errors across 30 frames — implausible")
	}
	if apologies == 0 {
		t.Fatal("corrections issued no apologies")
	}
}

func TestCloudTrafficAccounting(t *testing.T) {
	p, _, _ := buildPipeline(t, ModeCroesus, 0.0, 1.0)
	frames := parkFrames(10)
	p.ProcessVideo(frames)
	bytes, msgs := p.Config().EdgeCloud.Traffic()
	if msgs < 10 {
		t.Errorf("edge-cloud messages = %d, want ≥ 10", msgs)
	}
	if bytes < 10*100<<10 {
		t.Errorf("edge-cloud bytes = %d — frames not accounted", bytes)
	}
}

func TestCompressionReducesTraffic(t *testing.T) {
	run := func(pre netsim.Preprocessor) int64 {
		s := vclock.NewSim()
		st := store.New()
		mgr := txn.NewManager(s, st, lock.NewManager(s))
		p, err := New(Config{
			Clock: s, Mode: ModeCroesus,
			EdgeModel:  detect.TinyYOLOSim(42),
			CloudModel: detect.YOLOv3Sim(detect.YOLO416, 42),
			ThetaL:     0, ThetaU: 1,
			Preproc: pre,
			Source:  NewWorkloadSource(1000, 7),
			CC:      &txn.MSIA{M: mgr},
			Mgr:     mgr,
		})
		if err != nil {
			t.Fatal(err)
		}
		p.ProcessVideo(parkFrames(10))
		b, _ := p.Config().EdgeCloud.Traffic()
		return b
	}
	raw := run(netsim.Identity{})
	comp := run(netsim.DefaultCompression())
	if comp >= raw {
		t.Errorf("compression did not reduce traffic: %d vs %d", comp, raw)
	}
}

// slowFinalPipeline builds a pipeline whose final sections burn real clock
// time, exposing where each mode measures its latencies.
func slowFinalPipeline(t *testing.T, mode Mode, finalCost time.Duration) *Pipeline {
	t.Helper()
	s := vclock.NewSim()
	st := store.New()
	mgr := txn.NewManager(s, st, lock.NewManager(s))
	source := TxnSourceFunc(func(frameIndex int, d detect.Detection) *txn.Txn {
		key := store.ItoaKey("k", frameIndex%16)
		return &txn.Txn{
			Name:      "slow-final",
			InitialRW: txn.RWSet{Writes: []string{key}},
			FinalRW:   txn.RWSet{Writes: []string{key}},
			Initial: func(c *txn.Ctx) error {
				c.Put(key, store.Int64Value(1))
				return nil
			},
			Final: func(c *txn.Ctx) error {
				s.Sleep(finalCost)
				c.Put(key, store.Int64Value(2))
				return nil
			},
		}
	})
	p, err := New(Config{
		Clock:      s,
		Mode:       mode,
		EdgeModel:  detect.TinyYOLOSim(42),
		CloudModel: detect.YOLOv3Sim(detect.YOLO416, 42),
		ThetaL:     0, ThetaU: 0,
		Source: source,
		CC:     &txn.MSIA{M: mgr},
		Mgr:    mgr,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return p
}

// TestEdgeOnlyFinalLatencyIncludesFinals is the regression test for the
// edge-only latency accounting: the final sections run after the initial
// commit and burn clock time, so FinalLatency must exceed InitialLatency —
// the old code copied InitialLatency into FinalLatency unconditionally.
func TestEdgeOnlyFinalLatencyIncludesFinals(t *testing.T) {
	const cost = 40 * time.Millisecond
	p := slowFinalPipeline(t, ModeEdgeOnly, cost)
	outs := p.ProcessVideo(parkFrames(12))
	sawTxn := false
	for _, o := range outs {
		if o.TxnsTriggered == 0 {
			continue
		}
		sawTxn = true
		if gap := o.FinalLatency - o.InitialLatency; gap < cost {
			t.Fatalf("frame %d: final latency %v only %v past initial %v — final sections not accounted",
				o.FrameIndex, o.FinalLatency, gap, o.InitialLatency)
		}
	}
	if !sawTxn {
		t.Fatal("no frame triggered a transaction; the test is vacuous")
	}
}

// TestCloudOnlyInitialLatencyExcludesFinals is the cloud-only counterpart:
// the initial commit happens before the final sections, so InitialLatency
// must be measured there — the old code measured it only after runFinals.
func TestCloudOnlyInitialLatencyExcludesFinals(t *testing.T) {
	const cost = 40 * time.Millisecond
	p := slowFinalPipeline(t, ModeCloudOnly, cost)
	outs := p.ProcessVideo(parkFrames(10))
	sawTxn := false
	for _, o := range outs {
		if o.TxnsTriggered == 0 {
			continue
		}
		sawTxn = true
		if gap := o.FinalLatency - o.InitialLatency; gap < cost {
			t.Fatalf("frame %d: initial latency %v absorbed the final sections (final %v, gap %v)",
				o.FrameIndex, o.InitialLatency, o.FinalLatency, gap)
		}
	}
	if !sawTxn {
		t.Fatal("no frame triggered a transaction; the test is vacuous")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	frames := parkFrames(12)
	run := func() Summary {
		p, _, _ := buildPipeline(t, ModeCroesus, 0.3, 0.7)
		outs := p.ProcessVideo(frames)
		truth := TruthFromModel(p.Config().CloudModel, frames)
		return Summarize("park", ModeCroesus, "dog", outs, truth, 0.1)
	}
	a, b := run(), run()
	if a.BU != b.BU || a.F1Final != b.F1Final || a.MeanFinalLatency != b.MeanFinalLatency {
		t.Errorf("non-deterministic summaries:\n%+v\n%+v", a, b)
	}
}
