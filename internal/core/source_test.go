package core

import (
	"testing"

	"croesus/internal/detect"
	"croesus/internal/lock"
	"croesus/internal/store"
	"croesus/internal/txn"
	"croesus/internal/vclock"
	"croesus/internal/video"
)

func sourceDet(conf float64) detect.Detection {
	return detect.Detection{Label: "dog", Confidence: conf, Box: video.Rect{X: 0.2, Y: 0.2, W: 0.1, H: 0.1}}
}

func TestWorkloadSourceShape(t *testing.T) {
	s := NewWorkloadSource(100, 7)
	tx := s.TxnFor(3, sourceDet(0.8))
	if tx == nil {
		t.Fatal("nil txn")
	}
	if got := len(tx.InitialRW.Reads) + len(tx.InitialRW.Writes); got != 6 {
		t.Errorf("declared ops = %d, want 6 (paper's workload)", got)
	}
	if len(tx.InitialRW.Writes) != 3 || len(tx.InitialRW.Reads) != 3 {
		t.Errorf("write/read split = %d/%d, want 3/3",
			len(tx.InitialRW.Writes), len(tx.InitialRW.Reads))
	}
}

func TestWorkloadSourceDeterministicKeys(t *testing.T) {
	s1 := NewWorkloadSource(100, 7)
	s2 := NewWorkloadSource(100, 7)
	a := s1.TxnFor(3, sourceDet(0.8))
	b := s2.TxnFor(3, sourceDet(0.8))
	for i := range a.InitialRW.Writes {
		if a.InitialRW.Writes[i] != b.InitialRW.Writes[i] {
			t.Fatal("write sets differ across identical sources")
		}
	}
	c := s1.TxnFor(4, sourceDet(0.8))
	same := true
	for i := range a.InitialRW.Writes {
		if a.InitialRW.Writes[i] != c.InitialRW.Writes[i] {
			same = false
		}
	}
	if same {
		t.Error("different frames drew identical key sets (suspicious)")
	}
}

// runSourceTxn pushes one generated transaction through a full
// initial+final cycle with the given final input case.
func runSourceTxn(t *testing.T, cas MatchCase) (*txn.Manager, *txn.Instance) {
	t.Helper()
	clk := vclock.NewSim()
	m := txn.NewManager(clk, store.New(), lock.NewManager(clk))
	cc := &txn.MSIA{M: m}
	s := NewWorkloadSource(100, 7)
	d := sourceDet(0.8)
	tx := s.TxnFor(1, d)
	inst := m.NewInstance(tx, InitialInput{FrameIndex: 1, Trigger: d})
	clk.Run(func() {
		if err := cc.RunInitial(inst); err != nil {
			t.Fatalf("initial: %v", err)
		}
		corrected := d
		corrected.Label = "cat"
		inst.FinalIn = FinalInput{FrameIndex: 1, Case: cas, Edge: d, Cloud: corrected}
		if err := cc.RunFinal(inst); err != nil && err != txn.ErrRetracted {
			t.Fatalf("final: %v", err)
		}
	})
	return m, inst
}

func TestWorkloadSourceCorrectCaseTerminates(t *testing.T) {
	m, inst := runSourceTxn(t, MatchCorrect)
	if inst.State() != txn.StateFinalCommitted {
		t.Errorf("state = %v", inst.State())
	}
	if st := m.Stats(); st.Apologies != 0 {
		t.Errorf("apologies = %d on a correct detection", st.Apologies)
	}
	// Inserted items carry the original label.
	for _, k := range m.Store.Keys("item:") {
		if v, _ := m.Store.Get(k); store.AsString(v) != "dog" {
			t.Errorf("key %s = %q, want dog", k, v)
		}
	}
}

func TestWorkloadSourceCorrectedCaseOverwrites(t *testing.T) {
	m, inst := runSourceTxn(t, MatchCorrected)
	if inst.State() != txn.StateFinalCommitted {
		t.Errorf("state = %v", inst.State())
	}
	if st := m.Stats(); st.Apologies != 1 {
		t.Errorf("apologies = %d, want 1", st.Apologies)
	}
	for _, k := range m.Store.Keys("item:") {
		if v, _ := m.Store.Get(k); store.AsString(v) != "cat" {
			t.Errorf("key %s = %q, want corrected label", k, v)
		}
	}
}

func TestWorkloadSourceErroneousCaseRetracts(t *testing.T) {
	m, inst := runSourceTxn(t, MatchErroneous)
	if inst.State() != txn.StateRetracted {
		t.Errorf("state = %v, want retracted", inst.State())
	}
	if n := len(m.Store.Keys("item:")); n != 0 {
		t.Errorf("%d inserted items survived retraction", n)
	}
	if st := m.Stats(); st.Retractions != 1 {
		t.Errorf("retractions = %d", st.Retractions)
	}
}

func TestWorkloadSourceOpCostConsumesTime(t *testing.T) {
	clk := vclock.NewSim()
	m := txn.NewManager(clk, store.New(), lock.NewManager(clk))
	cc := &txn.MSIA{M: m}
	s := NewWorkloadSource(100, 7)
	s.Clk = clk
	s.OpCost = 1000000 // 1ms per op
	d := sourceDet(0.8)
	inst := m.NewInstance(s.TxnFor(1, d), InitialInput{Trigger: d})
	clk.Run(func() {
		if err := cc.RunInitial(inst); err != nil {
			t.Fatal(err)
		}
	})
	if clk.Now() < 6000000 { // 6 ops × 1ms
		t.Errorf("elapsed %v, want ≥ 6ms of op cost", clk.Now())
	}
}
