package core

import (
	"math"
	"time"

	"croesus/internal/detect"
	"croesus/internal/netsim"
	"croesus/internal/obs"
	"croesus/internal/transport"
	"croesus/internal/vclock"
	"croesus/internal/video"
	"croesus/internal/wire"
)

// ValidationStatus classifies how a cloud validation request concluded.
type ValidationStatus int

const (
	// Validated means the cloud labels arrived and the final sections run
	// with real corrections.
	Validated ValidationStatus = iota
	// ValidationShed means admission control dropped the request before
	// the cloud model ran; the edge finalizes with its own labels assumed
	// correct — Croesus' degradation mode.
	ValidationShed
	// ValidationLost means the request (or its reply) was lost in
	// transit; the edge times out and finalizes locally.
	ValidationLost
)

func (s ValidationStatus) String() string {
	switch s {
	case Validated:
		return "validated"
	case ValidationShed:
		return "shed"
	case ValidationLost:
		return "lost"
	default:
		return "unknown"
	}
}

// ValidationRequest carries one validate-interval frame from the edge to
// the cloud-side validator.
type ValidationRequest struct {
	// Frame is the captured frame to validate.
	Frame *video.Frame
	// Edge holds the visible edge labels (post-threshold), for validators
	// that want them (e.g. to prioritize by disagreement potential).
	Edge []detect.Detection
	// Margin is the shedding priority under overload: how deep inside
	// the validate interval [θL, θU] the frame's most ambiguous detection
	// sits, normalized to [0, 1] by the interval half-width. A low margin
	// means every in-band detection is near an interval edge — the edge
	// answer is likely right either way — so low-margin frames are shed
	// first.
	Margin float64
	// Trace is the frame's span context, carried so the validator's queue
	// and shed spans — and the wire messages it sends — stay causally
	// linked to the frame. Zero when tracing is off.
	Trace obs.SpanContext
}

// ValidationResult is the validator's reply for one frame. The latency
// components slot into the frame's Breakdown.
type ValidationResult struct {
	Status ValidationStatus
	// Cloud holds the full-model labels (Validated only).
	Cloud []detect.Detection
	// EdgeCloud is preprocessing plus the edge→cloud transfer.
	EdgeCloud time.Duration
	// CloudQueue is the wait between arrival at the validator and cloud
	// compute starting — slot wait for the direct path, enqueue→dispatch
	// for a batched validator.
	CloudQueue time.Duration
	// CloudDetect is the pure cloud compute time once a slot (or batch)
	// starts running.
	CloudDetect time.Duration
	// CloudReturn is the label-return transfer back to the edge.
	CloudReturn time.Duration
}

// Validator performs cloud-side full-model validation of one frame. The
// pipeline calls Validate on the frame's own goroutine; implementations
// block in clock time until labels return (or the request is shed or
// lost) and must be safe for concurrent use — frames overlap.
//
// The in-pipeline direct model call of the paper's single-edge deployment
// is the trivial implementation (DirectValidator); internal/cluster
// provides an SLO-aware batching implementation shared by a fleet of
// edges.
type Validator interface {
	Validate(req ValidationRequest) ValidationResult
}

// DefaultCloudTimeout bounds how long an edge waits for cloud labels
// before finalizing locally.
const DefaultCloudTimeout = 3 * time.Second

// Uplink models the edge→cloud hop every validator implementation
// shares: frame preprocessing, the link transfer, deterministic transit
// loss, and the loss timeout. Keeping it in one place guarantees the
// single-edge and fleet simulations cross the hop identically.
type Uplink struct {
	Clock   vclock.Clock
	Link    transport.Path
	Preproc netsim.Preprocessor
	// EdgeSpeed scales preprocessing cost.
	EdgeSpeed float64
	// LossProb injects deterministic per-frame transit loss; Timeout is
	// how long the edge waits before declaring the frame lost (default
	// DefaultCloudTimeout).
	LossProb float64
	Timeout  time.Duration
}

// Ship carries one frame across the hop, sleeping out the transfer (and,
// on loss, the timeout). It returns the transfer time and whether the
// frame was lost.
func (u Uplink) Ship(f *video.Frame) (edgeCloud time.Duration, lost bool) {
	return u.ShipCtx(f, nil)
}

// ShipCtx is Ship with a trace context attached to the link send, so the
// hop joins the frame's trace on traced transports.
func (u Uplink) ShipCtx(f *video.Frame, tc *wire.TraceCtx) (edgeCloud time.Duration, lost bool) {
	clk := u.Clock
	preproc := u.Preproc
	if preproc == nil {
		preproc = netsim.Identity{}
	}
	t0 := clk.Now()
	bytes, prepCost := preproc.Process(f.SizeBytes)
	clk.Sleep(scale(prepCost, u.EdgeSpeed))
	transport.SendCtx(u.Link, clk, bytes, tc)
	edgeCloud = clk.Now() - t0
	if LostInTransit(u.LossProb, f.Index) {
		timeout := u.Timeout
		if timeout == 0 {
			timeout = DefaultCloudTimeout
		}
		clk.Sleep(timeout)
		return edgeCloud, true
	}
	return edgeCloud, false
}

// DirectValidator is the unbatched validation path: preprocess, cross the
// edge→cloud link, run the full model under the cloud compute slots, and
// return the labels. It reproduces exactly the paper's single-edge cloud
// stage.
type DirectValidator struct {
	Clock   vclock.Clock
	Link    transport.Path
	Preproc netsim.Preprocessor
	Model   detect.Model
	Slots   *vclock.Semaphore
	// EdgeSpeed scales preprocessing cost; CloudSpeed scales inference.
	EdgeSpeed  float64
	CloudSpeed float64
	// LossProb injects deterministic per-frame transit loss; Timeout is
	// how long the edge waits before declaring the frame lost.
	LossProb float64
	Timeout  time.Duration
}

// Validate implements Validator.
func (v *DirectValidator) Validate(req ValidationRequest) ValidationResult {
	clk := v.Clock
	var res ValidationResult

	up := Uplink{Clock: clk, Link: v.Link, Preproc: v.Preproc, EdgeSpeed: v.EdgeSpeed, LossProb: v.LossProb, Timeout: v.Timeout}
	edgeCloud, lost := up.ShipCtx(req.Frame, traceCtx(req.Trace, 0))
	res.EdgeCloud = edgeCloud
	if lost {
		res.Status = ValidationLost
		return res
	}

	tq := clk.Now()
	v.Slots.Acquire()
	t1 := clk.Now()
	r := v.Model.Detect(req.Frame)
	clk.Sleep(scale(r.Latency, v.CloudSpeed))
	v.Slots.Release()
	res.CloudQueue = t1 - tq
	res.CloudDetect = clk.Now() - t1

	t2 := clk.Now()
	transport.SendCtx(v.Link, clk, netsim.LabelReturnBytes, traceCtx(req.Trace, 0))
	res.CloudReturn = clk.Now() - t2

	res.Cloud = r.Detections
	res.Status = Validated
	return res
}

// ValidationMargin scores how much a frame stands to gain from cloud
// validation: the depth of its most ambiguous detection inside the
// validate interval, normalized to [0, 1]. See ValidationRequest.Margin.
func ValidationMargin(dets []detect.Detection, thetaL, thetaU float64) float64 {
	half := (thetaU - thetaL) / 2
	best := 0.0
	for _, d := range dets {
		if d.Confidence < thetaL || d.Confidence > thetaU {
			continue
		}
		m := math.Min(d.Confidence-thetaL, thetaU-d.Confidence)
		if half > 0 {
			m /= half
		} else {
			m = 1
		}
		if m > best {
			best = m
		}
	}
	return best
}

// LostInTransit decides frame loss deterministically from the frame
// index, so failure-injection runs are reproducible across modes and
// validator implementations.
func LostInTransit(prob float64, frameIdx int) bool {
	if prob <= 0 {
		return false
	}
	z := uint64(frameIdx+1) * 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z ^= z >> 31
	return float64(z>>11)/float64(1<<53) < prob
}
