package core

import (
	"croesus/internal/detect"
	"croesus/internal/metrics"
)

// MatchCase classifies how an edge label relates to the cloud labels when
// the final stage runs — the three cases of §3.3 plus the two pipeline
// outcomes that bypass matching.
type MatchCase int

// Match cases.
const (
	// MatchCorrect: an overlapping cloud label exists with the same name
	// (case 2). The final section is called with the same label.
	MatchCorrect MatchCase = iota
	// MatchCorrected: an overlapping cloud label exists with a different
	// name (case 3). The final section is called with the cloud label.
	MatchCorrected
	// MatchErroneous: no overlapping cloud label (case 1). The final
	// section is called with an empty label.
	MatchErroneous
	// MatchNew: a cloud label with no overlapping edge label; the edge
	// missed it, so an initial+final pair is triggered for it.
	MatchNew
	// MatchAssumed: the frame was not validated at the cloud (bandwidth
	// thresholding kept it local); the final section runs with the edge
	// label assumed correct.
	MatchAssumed
)

func (c MatchCase) String() string {
	switch c {
	case MatchCorrect:
		return "correct"
	case MatchCorrected:
		return "corrected"
	case MatchErroneous:
		return "erroneous"
	case MatchNew:
		return "new-from-cloud"
	case MatchAssumed:
		return "assumed-correct"
	default:
		return "unknown"
	}
}

// LabelMatch pairs one edge label with its cloud correction.
type LabelMatch struct {
	Case MatchCase
	// EdgeIdx indexes the edge detections (-1 for MatchNew).
	EdgeIdx int
	// Cloud is the corrected label. Zero value for MatchErroneous and
	// MatchAssumed.
	Cloud detect.Detection
}

// MatchLabels classifies every edge label against the cloud labels using
// bounding-box overlap of at least minIoU, returning one entry per edge
// label followed by one MatchNew entry per unmatched cloud label. When
// multiple cloud labels overlap one edge label, the largest overlap wins
// (the metrics matcher is greedy by IoU).
func MatchLabels(edge, cloud []detect.Detection, minIoU float64) []LabelMatch {
	m := metrics.MatchBoxes(edge, cloud, minIoU)
	out := make([]LabelMatch, len(edge), len(edge)+len(m.UnmatchedRef))
	for i := range out {
		out[i] = LabelMatch{Case: MatchErroneous, EdgeIdx: i}
	}
	for _, pair := range m.Matches {
		c := cloud[pair.Ref]
		mc := MatchCorrect
		if edge[pair.Pred].Label != c.Label {
			mc = MatchCorrected
		}
		out[pair.Pred] = LabelMatch{Case: mc, EdgeIdx: pair.Pred, Cloud: c}
	}
	for _, j := range m.UnmatchedRef {
		out = append(out, LabelMatch{Case: MatchNew, EdgeIdx: -1, Cloud: cloud[j]})
	}
	return out
}

// InitialInput is the input to an initial section: the triggering label and
// the frame's full edge label set.
type InitialInput struct {
	FrameIndex int
	Trigger    detect.Detection
	Labels     []detect.Detection
	Aux        any
}

// FinalInput is the input to a final section: the original edge trigger
// plus the corrected cloud label and how they relate.
type FinalInput struct {
	FrameIndex int
	Case       MatchCase
	Edge       detect.Detection // zero for MatchNew
	Cloud      detect.Detection // zero for MatchErroneous / MatchAssumed
}

// Corrected reports whether the final stage changed the client-visible
// outcome for this transaction.
func (f FinalInput) Corrected() bool {
	return f.Case == MatchCorrected || f.Case == MatchErroneous || f.Case == MatchNew
}
