package core

import (
	"time"

	"croesus/internal/detect"
	"croesus/internal/metrics"
	"croesus/internal/txn"
	"croesus/internal/video"
)

// Breakdown decomposes a frame's end-to-end latency into the components the
// paper's Figure 2 stacks: client→edge transfer, edge detection, initial
// transaction, edge→cloud transfer, cloud detection, label return, final
// transaction — plus the contended-resource components (pool wait, batcher
// queue, lock wait, 2PC fan-out) that attribute where a slow frame lost
// its time. ComputeWait precedes EdgeDetect; CloudQueue precedes
// CloudDetect (which is pure batch compute); LockWait and TwoPC are the
// transactional shares of InitialTxn+FinalTxn.
type Breakdown struct {
	ClientEdge  time.Duration
	ComputeWait time.Duration // waiting for an edge inference slot
	EdgeDetect  time.Duration
	InitialTxn  time.Duration
	EdgeCloud   time.Duration
	CloudQueue  time.Duration // batcher/validator queue before cloud compute
	CloudDetect time.Duration
	CloudReturn time.Duration
	FinalTxn    time.Duration
	LockWait    time.Duration // lock acquisition inside the txn sections
	TwoPC       time.Duration // prepare/commit fan-out inside the txn sections
}

// CriticalPath buckets the breakdown into the five components of the
// report's critical-path view. Lock and 2PC time are carved out of the
// transaction sections; queue is everything spent waiting for a
// contended compute resource; network is pure transfer.
func (b Breakdown) CriticalPath() (compute, queue, lock, twopc, network time.Duration) {
	compute = b.EdgeDetect + b.CloudDetect
	queue = b.ComputeWait + b.CloudQueue
	lock = b.LockWait
	twopc = b.TwoPC
	network = b.ClientEdge + b.EdgeCloud + b.CloudReturn
	return
}

func (b *Breakdown) add(o Breakdown) {
	b.ClientEdge += o.ClientEdge
	b.ComputeWait += o.ComputeWait
	b.EdgeDetect += o.EdgeDetect
	b.InitialTxn += o.InitialTxn
	b.EdgeCloud += o.EdgeCloud
	b.CloudQueue += o.CloudQueue
	b.CloudDetect += o.CloudDetect
	b.CloudReturn += o.CloudReturn
	b.FinalTxn += o.FinalTxn
	b.LockWait += o.LockWait
	b.TwoPC += o.TwoPC
}

func (b *Breakdown) div(n int) {
	if n == 0 {
		return
	}
	d := time.Duration(n)
	b.ClientEdge /= d
	b.ComputeWait /= d
	b.EdgeDetect /= d
	b.InitialTxn /= d
	b.EdgeCloud /= d
	b.CloudQueue /= d
	b.CloudDetect /= d
	b.CloudReturn /= d
	b.FinalTxn /= d
	b.LockWait /= d
	b.TwoPC /= d
}

// SectionOutcome decomposes one graph section's share of a frame — the
// per-section analogue of Breakdown, produced only by the graph executor
// (Config.Graph set). Section k's boundary commit belongs to graph node k.
type SectionOutcome struct {
	Name string
	Tier string
	// Hop is the network time shipping the frame into the node's tier
	// (zero for edge-tier nodes, which are co-located with the hub).
	Hop time.Duration
	// Detect is the node model's inference time (zero when the route
	// skipped the node and its section committed locally).
	Detect time.Duration
	// Txn is the wall time inside this section's transaction executions;
	// LockWait and TwoPC are its transactional shares.
	Txn      time.Duration
	LockWait time.Duration
	TwoPC    time.Duration
	// Latency is capture → this section's boundary commit at the client.
	Latency time.Duration
}

func (s *SectionOutcome) add(o SectionOutcome) {
	s.Hop += o.Hop
	s.Detect += o.Detect
	s.Txn += o.Txn
	s.LockWait += o.LockWait
	s.TwoPC += o.TwoPC
	s.Latency += o.Latency
}

func (s *SectionOutcome) div(n int) {
	if n == 0 {
		return
	}
	d := time.Duration(n)
	s.Hop /= d
	s.Detect /= d
	s.Txn /= d
	s.LockWait /= d
	s.TwoPC /= d
	s.Latency /= d
}

// FrameOutcome is the client-observable result of one frame.
type FrameOutcome struct {
	FrameIndex int
	CapturedAt time.Duration

	// EdgeDetections are the post-filter edge labels (empty in
	// cloud-only mode).
	EdgeDetections []detect.Detection
	// InitialVisible is what the client renders at the initial commit.
	InitialVisible []detect.Detection
	// FinalVisible is what the client renders after the final commit
	// (corrections applied).
	FinalVisible []detect.Detection

	SentToCloud bool
	// CloudLost marks a validated frame whose cloud reply never arrived
	// (failure injection); the edge finalized locally after its timeout.
	CloudLost bool
	// Shed marks a frame dropped by the validator's admission control
	// (overload); the edge finalized locally with its own labels — the
	// client keeps the edge answer instead of the SLO being violated.
	Shed                bool
	DiscardedDetections int
	TxnsTriggered       int
	InitialAborts       int
	FinalErrors         int
	Corrections         int
	Apologies           []txn.Apology

	// InitialLatency and FinalLatency measure capture → client render.
	InitialLatency time.Duration
	FinalLatency   time.Duration
	Breakdown      Breakdown

	// Sections is the per-section decomposition, one entry per graph node.
	// Nil on the classic two-stage path (no Config.Graph).
	Sections []SectionOutcome
}

// Summary aggregates a run for one video.
type Summary struct {
	Video  string
	Mode   Mode
	Frames int

	// BU is bandwidth utilization: the fraction of frames sent to the
	// cloud (the paper's δ).
	BU float64
	// F1Initial scores the initial-commit render against the cloud
	// ground truth for the query class; F1Final scores the corrected
	// render — the paper's client-perspective accuracy.
	F1Initial float64
	F1Final   float64

	MeanInitialLatency time.Duration
	MeanFinalLatency   time.Duration
	MeanBreakdown      Breakdown
	// MeanSections is the mean per-section decomposition, one entry per
	// graph node. Nil for classic two-stage runs.
	MeanSections []SectionOutcome

	TxnsTriggered int
	Corrections   int
	Apologies     int
	InitialAborts int

	// Validated counts frames that received cloud labels; Shed and
	// CloudLost count the two degradation paths (admission control and
	// transit loss), both of which keep the edge answer.
	Validated int
	Shed      int
	CloudLost int
}

// Summarize scores outcomes against ground truth. truth returns the
// reference detections for a frame index (by convention, the configured
// cloud model's output, as in the paper's evaluation); queryClass is the
// video's object query.
func Summarize(videoName string, mode Mode, queryClass string, outcomes []FrameOutcome, truth func(int) []detect.Detection, overlapMin float64) Summary {
	s := Summary{Video: videoName, Mode: mode, Frames: len(outcomes)}
	var initCounts, finalCounts metrics.Counts
	var sent int
	var sumInit, sumFinal time.Duration
	for i := range outcomes {
		o := &outcomes[i]
		ref := truth(o.FrameIndex)
		initCounts.Add(metrics.ScoreClass(o.InitialVisible, ref, queryClass, overlapMin))
		finalCounts.Add(metrics.ScoreClass(o.FinalVisible, ref, queryClass, overlapMin))
		if o.SentToCloud {
			sent++
			switch {
			case o.Shed:
				s.Shed++
			case o.CloudLost:
				s.CloudLost++
			default:
				s.Validated++
			}
		}
		sumInit += o.InitialLatency
		sumFinal += o.FinalLatency
		s.MeanBreakdown.add(o.Breakdown)
		if len(o.Sections) > 0 {
			if s.MeanSections == nil {
				s.MeanSections = make([]SectionOutcome, len(o.Sections))
				for k := range o.Sections {
					s.MeanSections[k].Name = o.Sections[k].Name
					s.MeanSections[k].Tier = o.Sections[k].Tier
				}
			}
			for k := range o.Sections {
				if k < len(s.MeanSections) {
					s.MeanSections[k].add(o.Sections[k])
				}
			}
		}
		s.TxnsTriggered += o.TxnsTriggered
		s.Corrections += o.Corrections
		s.Apologies += len(o.Apologies)
		s.InitialAborts += o.InitialAborts
	}
	n := len(outcomes)
	if n > 0 {
		s.BU = float64(sent) / float64(n)
		s.MeanInitialLatency = sumInit / time.Duration(n)
		s.MeanFinalLatency = sumFinal / time.Duration(n)
		s.MeanBreakdown.div(n)
		for k := range s.MeanSections {
			s.MeanSections[k].div(n)
		}
	}
	s.F1Initial = initCounts.F1()
	s.F1Final = finalCounts.F1()
	return s
}

// TruthFromModel precomputes per-frame ground truth using the given model
// (pure detection, no latency), returning a lookup by frame index.
func TruthFromModel(m detect.Model, frames []*video.Frame) func(int) []detect.Detection {
	byIdx := make(map[int][]detect.Detection, len(frames))
	for _, f := range frames {
		byIdx[f.Index] = m.Detect(f).Detections
	}
	return func(i int) []detect.Detection { return byIdx[i] }
}
