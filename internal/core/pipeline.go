// Package core implements the Croesus multi-stage edge-cloud pipeline —
// the paper's primary contribution (§3). An edge node runs a small, fast
// model and the initial sections of triggered transactions, answering the
// client immediately; frames whose edge confidence falls inside the
// validate interval [θL, θU] are forwarded to a cloud node running the full
// model, whose labels trigger the final (corrective) sections.
//
// The pipeline runs against a vclock.Clock, so the same code drives both
// deterministic virtual-time experiments and real-time deployments.
package core

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"croesus/internal/detect"
	"croesus/internal/netsim"
	"croesus/internal/obs"
	"croesus/internal/transport"
	"croesus/internal/txn"
	"croesus/internal/vclock"
	"croesus/internal/video"
	"croesus/internal/wire"
)

// Mode selects the system under evaluation.
type Mode int

// Evaluation modes.
const (
	// ModeCroesus is the full multi-stage pipeline with bandwidth
	// thresholding.
	ModeCroesus Mode = iota
	// ModeEdgeOnly is the performance-centric baseline: the compact model
	// on the edge, no cloud correction.
	ModeEdgeOnly
	// ModeCloudOnly is the accuracy-centric baseline: every frame is
	// detected by the full model at the cloud.
	ModeCloudOnly
)

func (m Mode) String() string {
	switch m {
	case ModeCroesus:
		return "croesus"
	case ModeEdgeOnly:
		return "edge-only"
	case ModeCloudOnly:
		return "cloud-only"
	default:
		return "unknown"
	}
}

// TxnSource supplies the transaction triggered by each detection — the
// pipeline-facing face of the transactions bank. Implementations must be
// safe for concurrent use.
type TxnSource interface {
	// TxnFor returns the transaction template instance for one triggering
	// detection of one frame, or nil if no transaction is registered for
	// it.
	TxnFor(frameIndex int, d detect.Detection) *txn.Txn
}

// TxnSourceFunc adapts a function to TxnSource.
type TxnSourceFunc func(frameIndex int, d detect.Detection) *txn.Txn

// TxnFor calls f.
func (f TxnSourceFunc) TxnFor(frameIndex int, d detect.Detection) *txn.Txn {
	return f(frameIndex, d)
}

// Smoother feeds cloud corrections back into the edge path — the paper's
// footnote-1 heuristic. Apply rewrites the edge detections before input
// processing; Learn ingests the label matches of every validated frame.
// Implementations must be safe for concurrent use (frames overlap).
type Smoother interface {
	Apply(frameIndex int, dets []detect.Detection) []detect.Detection
	Learn(frameIndex int, matches []LabelMatch, edge []detect.Detection)
}

// Config assembles a pipeline. Zero-value fields take the documented
// defaults via Defaults.
type Config struct {
	Clock vclock.Clock
	Mode  Mode

	EdgeModel  detect.Model
	CloudModel detect.Model
	// EdgeSpeed and CloudSpeed divide model inference latency: 1.0 is the
	// reference machine (t3a.xlarge in the paper); a t3a.small edge is
	// ≈ 0.45.
	EdgeSpeed  float64
	CloudSpeed float64
	// EdgeSlots and CloudSlots bound concurrent inferences per node.
	EdgeSlots  int
	CloudSlots int
	// EdgeCompute, when set, is a shared edge compute pool used instead
	// of a private EdgeSlots semaphore — the cluster runtime shares one
	// per edge node across all cameras placed on it, so co-located
	// streams contend for the same machine.
	EdgeCompute *vclock.Semaphore

	// ClientEdge and EdgeCloud are the node's network paths. The defaults
	// are the simulated deployment's netsim links; the fleet runtime
	// injects whatever its transport provisioned (a real TCP path on the
	// loopback deployment, transport.Null where the node's own socket
	// already carried the bytes).
	ClientEdge transport.Path
	EdgeCloud  transport.Path
	// Preproc optionally shrinks frames before the edge→cloud hop
	// (compression / difference communication).
	Preproc netsim.Preprocessor

	// MinConfidence drops hopeless detections at input processing.
	MinConfidence float64
	// ThetaL and ThetaU are the bandwidth thresholds of §3.4: detections
	// below ThetaL are discarded, above ThetaU kept; anything in between
	// sends the frame to the cloud for validation.
	ThetaL, ThetaU float64
	// OverlapMin is the label-matching overlap threshold (the paper uses
	// 10%).
	OverlapMin float64

	Source TxnSource
	CC     txn.CC
	Mgr    *txn.Manager

	// Graph, when set, replaces the two-stage croesus flow with the
	// N-section inference-graph executor (ModeCroesus only): node k's
	// labels commit transaction section k, so the frame makes one
	// boundary commit per node instead of exactly initial+final. The
	// TxnSource must then produce transactions with one section per node
	// (WorkloadSource.SetPlan(Graph.SectionPlan())). Nil keeps the classic
	// two-stage path byte-identical.
	Graph *Graph
	// PeerPath carries frames to peer-tier graph nodes (the inter-edge
	// mesh). Defaults to netsim's edge-edge link; the fleet runtime
	// injects its transport's peer path.
	PeerPath transport.Path
	// GraphValidate, when set, runs cloud-tier graph nodes remotely
	// instead of through their in-pipeline model: the tcpnet edge server
	// ships the frame over its real cloud socket (wire.CloudRequest with
	// the section index) and the cloud's model answers. Returning ok ==
	// false (connection lost, request shed) commits the section with the
	// labels assumed correct — availability over freshness, per boundary.
	GraphValidate func(f *video.Frame, section int) (dets []detect.Detection, detectTime time.Duration, ok bool)

	// Smoother, when set, applies cloud-correction feedback to edge
	// detections (ModeCroesus only).
	Smoother Smoother

	// Validator, when set, replaces the in-pipeline direct cloud model
	// call for validate-interval frames (ModeCroesus only). This is the
	// seam the cluster runtime uses to share one SLO-aware batched cloud
	// validator across many edges. When nil, a DirectValidator over
	// CloudModel, EdgeCloud, and Preproc is built — the paper's
	// single-edge behavior, unchanged.
	Validator Validator

	// OnInitial, when set, is called at every frame's initial commit —
	// after the initial sections committed and the client-facing answer
	// exists, before any cloud validation. The real TCP deployment sends
	// its initial reply from this hook, so both deployments run the one
	// Figure-1 execution in this package instead of duplicating it. The
	// outcome is mid-flight: only the initial-stage fields are filled.
	OnInitial func(f *video.Frame, out *FrameOutcome)

	// CloudLossProb injects edge→cloud failures: each validated frame is
	// lost with this probability (deterministically per frame index), in
	// which case the edge waits CloudTimeout and finalizes locally with
	// the edge labels assumed correct — availability over freshness.
	CloudLossProb float64
	// CloudTimeout bounds the wait for cloud labels (default 3 s).
	CloudTimeout time.Duration

	// Obs, when set, enables span tracing and metrics for this pipeline.
	// TagKV is the alternating key/value tag list ({edge, camera,
	// protocol}) stamped on its spans and metrics. Instrumentation only
	// reads the clock and touches obs-internal state, so enabling it
	// never perturbs the virtual-time schedule.
	Obs   *obs.Obs
	TagKV []string
	// SpanCtx, when set alongside Obs, resolves each frame's span context:
	// the trace ID and root span ID its spans attach to. The pipeline then
	// emits a frame.root span covering the whole frame, parents every
	// stage span to it, stamps the context on transaction instances and
	// validation requests, and attaches it to traced transport sends — the
	// cross-process causality chain. Nil keeps the PR-6 flat spans.
	SpanCtx func(f *video.Frame) obs.SpanContext
	// QueueDepth, when set, is the per-edge inference-queue gauge this
	// pipeline adjusts while waiting for an edge compute slot. The
	// cluster runtime resolves one gauge per edge and shares it across
	// the cameras placed there, mirroring the shared EdgeCompute pool.
	QueueDepth *obs.Gauge
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.EdgeSpeed == 0 {
		c.EdgeSpeed = 1
	}
	if c.CloudSpeed == 0 {
		c.CloudSpeed = 1
	}
	if c.EdgeSlots == 0 {
		c.EdgeSlots = 2
	}
	if c.CloudSlots == 0 {
		c.CloudSlots = 8
	}
	if c.ClientEdge == nil {
		c.ClientEdge = netsim.ClientEdgeLink()
	}
	if c.EdgeCloud == nil {
		c.EdgeCloud = netsim.EdgeCloudCrossCountry()
	}
	if c.Preproc == nil {
		c.Preproc = netsim.Identity{}
	}
	if c.PeerPath == nil && c.Graph != nil {
		c.PeerPath = netsim.EdgeEdgeLink()
	}
	if c.MinConfidence == 0 {
		c.MinConfidence = 0.05
	}
	if c.OverlapMin == 0 {
		c.OverlapMin = 0.10
	}
	if c.CloudTimeout == 0 {
		c.CloudTimeout = DefaultCloudTimeout
	}
	return c
}

// Pipeline executes frames through the configured system.
type Pipeline struct {
	cfg       Config
	validator Validator
	edgeSlots *vclock.Semaphore
	cloudSlot *vclock.Semaphore

	// Pre-resolved observability handles (all nil-safe no-ops when
	// Config.Obs is unset), so the hot path never does registry lookups.
	tags       string
	queueDepth *obs.Gauge
	mFrames    *obs.Counter
	mShed      *obs.Counter
	mLost      *obs.Counter
	mValidated *obs.Counter
	mTxns      *obs.Counter
	mApologies *obs.Counter
	mInitial   *obs.Histogram
	mFinal     *obs.Histogram
	mComponent [5]*obs.Histogram // compute, queue, lock, twopc, network

	// Per-section handles, one per graph node (graph executor only).
	secTags     []string
	mSection    []*obs.Histogram
	mSecCommits []*obs.Counter

	mu       sync.Mutex
	outcomes []FrameOutcome
}

// New validates the configuration and builds a pipeline.
func New(cfg Config) (*Pipeline, error) {
	cfg = cfg.Defaults()
	if cfg.Clock == nil {
		return nil, fmt.Errorf("core: Config.Clock is required")
	}
	if cfg.EdgeModel == nil && cfg.Mode != ModeCloudOnly {
		return nil, fmt.Errorf("core: Config.EdgeModel is required for %v", cfg.Mode)
	}
	if cfg.CloudModel == nil && cfg.Mode != ModeEdgeOnly && !(cfg.Mode == ModeCroesus && cfg.Validator != nil) {
		return nil, fmt.Errorf("core: Config.CloudModel is required for %v", cfg.Mode)
	}
	if cfg.Mode == ModeCroesus && !(cfg.ThetaL <= cfg.ThetaU) {
		return nil, fmt.Errorf("core: thresholds must satisfy θL ≤ θU, got (%.2f, %.2f)", cfg.ThetaL, cfg.ThetaU)
	}
	if (cfg.Source == nil) != (cfg.CC == nil) || (cfg.CC == nil) != (cfg.Mgr == nil) {
		return nil, fmt.Errorf("core: Source, CC, and Mgr must be provided together")
	}
	if g := cfg.Graph; g != nil {
		if cfg.Mode != ModeCroesus {
			return nil, fmt.Errorf("core: Config.Graph requires ModeCroesus, got %v", cfg.Mode)
		}
		if len(g.Nodes) == 0 {
			return nil, fmt.Errorf("core: Config.Graph needs at least one node")
		}
		if g.Nodes[0].Tier != txn.TierEdge {
			return nil, fmt.Errorf("core: graph node 0 (%q) must be on the edge tier, got %q", g.Nodes[0].Name, g.Nodes[0].Tier)
		}
		for i := 1; i < len(g.Nodes); i++ {
			if g.Nodes[i].Model == nil {
				return nil, fmt.Errorf("core: graph node %d (%q) has no model", i, g.Nodes[i].Name)
			}
		}
	}
	edgeSlots := cfg.EdgeCompute
	if edgeSlots == nil {
		edgeSlots = vclock.NewSemaphore(cfg.Clock, cfg.EdgeSlots)
	}
	p := &Pipeline{
		cfg:       cfg,
		edgeSlots: edgeSlots,
		cloudSlot: vclock.NewSemaphore(cfg.Clock, cfg.CloudSlots),
	}
	p.tags = obs.Tags(cfg.TagKV...)
	p.queueDepth = cfg.QueueDepth
	if o := cfg.Obs; o != nil {
		p.mFrames = o.Counter(obs.MetricFrames, p.tags)
		p.mShed = o.Counter(obs.MetricFramesShed, p.tags)
		p.mLost = o.Counter(obs.MetricFramesLost, p.tags)
		p.mValidated = o.Counter(obs.MetricFramesValid, p.tags)
		p.mTxns = o.Counter(obs.MetricTxns, p.tags)
		p.mApologies = o.Counter(obs.MetricApologies, p.tags)
		p.mInitial = o.Histogram(obs.MetricInitialLatency, p.tags)
		p.mFinal = o.Histogram(obs.MetricFinalLatency, p.tags)
		for i, comp := range [5]string{"compute", "queue", "lock", "twopc", "network"} {
			p.mComponent[i] = o.Histogram(obs.MetricComponent, obs.Tags(append([]string{"component", comp}, cfg.TagKV...)...))
		}
	}
	if g := cfg.Graph; g != nil {
		p.secTags = make([]string, len(g.Nodes))
		p.mSection = make([]*obs.Histogram, len(g.Nodes))
		p.mSecCommits = make([]*obs.Counter, len(g.Nodes))
		for k := range g.Nodes {
			p.secTags[k] = obs.Tags(append([]string{"section", strconv.Itoa(k)}, cfg.TagKV...)...)
			if cfg.Obs != nil {
				p.mSection[k] = cfg.Obs.Histogram(obs.MetricSectionLatency, p.secTags[k])
				p.mSecCommits[k] = cfg.Obs.Counter(obs.MetricSectionCommit, p.secTags[k])
			}
		}
	}
	p.validator = cfg.Validator
	if p.validator == nil && cfg.CloudModel != nil {
		p.validator = &DirectValidator{
			Clock:      cfg.Clock,
			Link:       cfg.EdgeCloud,
			Preproc:    cfg.Preproc,
			Model:      cfg.CloudModel,
			Slots:      p.cloudSlot,
			EdgeSpeed:  cfg.EdgeSpeed,
			CloudSpeed: cfg.CloudSpeed,
			LossProb:   cfg.CloudLossProb,
			Timeout:    cfg.CloudTimeout,
		}
	}
	return p, nil
}

// Config returns the (defaulted) configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// ProcessVideo runs every frame through the pipeline on the configured
// clock. Frames are injected at their capture timestamps and processed
// concurrently, as a continuously-capturing client would. The caller must
// be the clock's driver (outside the simulation); ProcessVideo blocks until
// the last frame's final commit and returns per-frame outcomes in frame
// order.
func (p *Pipeline) ProcessVideo(frames []*video.Frame) []FrameOutcome {
	p.mu.Lock()
	p.outcomes = make([]FrameOutcome, len(frames))
	p.mu.Unlock()
	clk := p.cfg.Clock
	for i, f := range frames {
		i, f := i, f
		clk.Go(func() {
			clk.Sleep(f.At - clk.Now()) // wait for capture time
			out := p.processFrame(f)
			p.mu.Lock()
			p.outcomes[i] = out
			p.mu.Unlock()
		})
	}
	clk.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.outcomes
}

// ProcessFrame runs one frame through the pipeline synchronously and
// returns its outcome. The caller must be a participant goroutine of the
// configured clock (started with Clock.Go); most callers want
// ProcessVideo, which handles capture timing. The cluster runtime uses
// ProcessFrame directly so many cameras can share one clock and one
// Wait.
func (p *Pipeline) ProcessFrame(f *video.Frame) FrameOutcome {
	return p.processFrame(f)
}

// processFrame is the per-frame execution pattern of Figure 1.
func (p *Pipeline) processFrame(f *video.Frame) FrameOutcome {
	ctx := p.spanCtx(f)
	t0 := p.cfg.Clock.Now()
	var out FrameOutcome
	switch {
	case p.cfg.Mode == ModeEdgeOnly:
		out = p.processEdgeOnly(f, ctx)
	case p.cfg.Mode == ModeCloudOnly:
		out = p.processCloudOnly(f, ctx)
	case p.cfg.Graph != nil:
		out = p.processGraph(f, ctx)
	default:
		out = p.processCroesus(f, ctx)
	}
	if p.cfg.Obs != nil && ctx.Valid() {
		p.cfg.Obs.EmitSpan(obs.Span{
			Name: obs.SpanFrameRoot, Tags: p.tags,
			Start: t0, End: p.cfg.Clock.Now(),
			Trace: ctx.Trace, ID: ctx.Span, Parent: ctx.Parent,
		})
	}
	p.observe(&out)
	return out
}

// spanCtx resolves the frame's span context via the configured hook (the
// zero context when tracing is off).
func (p *Pipeline) spanCtx(f *video.Frame) obs.SpanContext {
	if p.cfg.SpanCtx == nil {
		return obs.SpanContext{}
	}
	return p.cfg.SpanCtx(f)
}

// traceCtx converts a span context to its wire form for a traced
// transport send (nil when tracing is off — the zero-cost path).
func traceCtx(ctx obs.SpanContext, section int) *wire.TraceCtx {
	if !ctx.Valid() {
		return nil
	}
	return &wire.TraceCtx{Trace: ctx.Trace, Parent: ctx.Span, Section: section}
}

// observe feeds the finished frame into the metrics registry. No-op when
// observability is disabled (every handle is a nil-safe no-op).
func (p *Pipeline) observe(out *FrameOutcome) {
	if p.cfg.Obs == nil {
		return
	}
	p.mFrames.Inc()
	switch {
	case out.Shed:
		p.mShed.Inc()
	case out.CloudLost:
		p.mLost.Inc()
	case out.SentToCloud:
		p.mValidated.Inc()
	}
	p.mTxns.Add(int64(out.TxnsTriggered))
	p.mApologies.Add(int64(len(out.Apologies)))
	p.mInitial.Observe(out.InitialLatency)
	p.mFinal.Observe(out.FinalLatency)
	compute, queue, lock, twopc, network := out.Breakdown.CriticalPath()
	for i, d := range [5]time.Duration{compute, queue, lock, twopc, network} {
		p.mComponent[i].Observe(d)
	}
	for k := range out.Sections {
		if k < len(p.mSection) {
			p.mSection[k].Observe(out.Sections[k].Latency)
		}
	}
}

func (p *Pipeline) processCroesus(f *video.Frame, ctx obs.SpanContext) FrameOutcome {
	cfg := p.cfg
	clk := cfg.Clock
	out := FrameOutcome{FrameIndex: f.Index, CapturedAt: f.At}

	// Step 1: the client sends the frame to the edge node.
	t0 := clk.Now()
	transport.SendCtx(cfg.ClientEdge, clk, f.SizeBytes, traceCtx(ctx, 0))
	tIngest := clk.Now()
	out.Breakdown.ClientEdge = tIngest - t0
	cfg.Obs.SpanCtx(ctx, obs.SpanFrameIngest, p.tags, t0, tIngest)

	// Step 2: the edge model processes the frame.
	dets, poolWait, edgeLat := p.detectEdge(f, ctx)
	out.Breakdown.ComputeWait = poolWait
	out.Breakdown.EdgeDetect = edgeLat
	if cfg.Smoother != nil {
		dets = cfg.Smoother.Apply(f.Index, dets)
	}
	dets = filterConfidence(dets, cfg.MinConfidence)
	out.EdgeDetections = dets

	// Bandwidth thresholding (§3.4): discard below θL, keep above θU,
	// validate in between.
	visible := make([]detect.Detection, 0, len(dets))
	validate := false
	for _, d := range dets {
		if d.Confidence < cfg.ThetaL {
			out.DiscardedDetections++
			continue
		}
		if d.Confidence <= cfg.ThetaU {
			validate = true
		}
		visible = append(visible, d)
	}
	out.InitialVisible = visible

	// Initial transaction sections, triggered by the edge labels.
	pending := p.runInitials(f, ctx, visible, &out)

	// Initial commit: the response is rendered at the client.
	transport.SendCtx(cfg.ClientEdge, clk, netsim.LabelReturnBytes, traceCtx(ctx, 0))
	out.InitialLatency = clk.Now() - f.At
	out.SentToCloud = validate
	if cfg.OnInitial != nil {
		cfg.OnInitial(f, &out)
	}

	if !validate {
		// The frame is not validated: final sections run locally with
		// the edge labels assumed correct (§3.5's early stop).
		p.runFinals(f, ctx, pending, assumedMatches(visible), &out)
		out.FinalVisible = visible
		out.FinalLatency = clk.Now() - f.At
		return out
	}

	// Step 3: the frame travels to the cloud for full detection. The
	// validator owns the edge→cloud hop and the model call; a shed or
	// lost request degrades to local finalization — the initial commit
	// already answered the client, so availability is preserved at the
	// cost of uncorrected labels.
	tValidate := clk.Now()
	res := p.validator.Validate(ValidationRequest{
		Frame:  f,
		Edge:   visible,
		Margin: ValidationMargin(visible, cfg.ThetaL, cfg.ThetaU),
		Trace:  ctx,
	})
	out.Breakdown.EdgeCloud = res.EdgeCloud
	out.Breakdown.CloudQueue = res.CloudQueue
	out.Breakdown.CloudDetect = res.CloudDetect
	out.Breakdown.CloudReturn = res.CloudReturn
	cfg.Obs.SpanCtx(ctx, obs.SpanUplink, p.tags, tValidate, tValidate+res.EdgeCloud)
	cfg.Obs.SpanCtx(ctx, obs.SpanCloudValidate, p.tags, tValidate, clk.Now())
	if res.Status != Validated {
		switch res.Status {
		case ValidationShed:
			out.Shed = true
		case ValidationLost:
			out.CloudLost = true
		}
		p.runFinals(f, ctx, pending, assumedMatches(visible), &out)
		out.FinalVisible = visible
		transport.SendCtx(cfg.ClientEdge, clk, netsim.LabelReturnBytes, traceCtx(ctx, 0))
		out.FinalLatency = clk.Now() - f.At
		return out
	}
	cloudDets := res.Cloud

	// Step 4: the corrected labels trigger the final sections.
	matches := MatchLabels(visible, cloudDets, cfg.OverlapMin)
	if cfg.Smoother != nil {
		cfg.Smoother.Learn(f.Index, matches, visible)
	}
	p.runFinals(f, ctx, pending, matches, &out)
	out.FinalVisible = cloudDets
	transport.SendCtx(cfg.ClientEdge, clk, netsim.LabelReturnBytes, traceCtx(ctx, 0))
	out.FinalLatency = clk.Now() - f.At
	return out
}

func (p *Pipeline) processEdgeOnly(f *video.Frame, ctx obs.SpanContext) FrameOutcome {
	cfg := p.cfg
	clk := cfg.Clock
	out := FrameOutcome{FrameIndex: f.Index, CapturedAt: f.At}

	t0 := clk.Now()
	transport.SendCtx(cfg.ClientEdge, clk, f.SizeBytes, traceCtx(ctx, 0))
	out.Breakdown.ClientEdge = clk.Now() - t0

	dets, poolWait, edgeLat := p.detectEdge(f, ctx)
	out.Breakdown.ComputeWait = poolWait
	out.Breakdown.EdgeDetect = edgeLat
	dets = filterConfidence(dets, cfg.MinConfidence)
	out.EdgeDetections = dets
	out.InitialVisible = dets

	pending := p.runInitials(f, ctx, dets, &out)
	transport.SendCtx(cfg.ClientEdge, clk, netsim.LabelReturnBytes, traceCtx(ctx, 0))
	out.InitialLatency = clk.Now() - f.At
	if cfg.OnInitial != nil {
		cfg.OnInitial(f, &out)
	}

	// Single-stage system: the edge result is final. The final sections
	// still burn clock time (their section bodies run here), so final
	// latency is measured after them, not copied from the initial commit.
	p.runFinals(f, ctx, pending, assumedMatches(dets), &out)
	out.FinalVisible = dets
	out.FinalLatency = clk.Now() - f.At
	return out
}

func (p *Pipeline) processCloudOnly(f *video.Frame, ctx obs.SpanContext) FrameOutcome {
	cfg := p.cfg
	clk := cfg.Clock
	out := FrameOutcome{FrameIndex: f.Index, CapturedAt: f.At, SentToCloud: true}

	t0 := clk.Now()
	transport.SendCtx(cfg.ClientEdge, clk, f.SizeBytes, traceCtx(ctx, 0))
	out.Breakdown.ClientEdge = clk.Now() - t0

	tSend := clk.Now()
	bytes, prepCost := cfg.Preproc.Process(f.SizeBytes)
	clk.Sleep(scale(prepCost, cfg.EdgeSpeed))
	transport.SendCtx(cfg.EdgeCloud, clk, bytes, traceCtx(ctx, 0))
	out.Breakdown.EdgeCloud = clk.Now() - tSend

	cloudDets, cloudLat := p.detectCloud(f)
	out.Breakdown.CloudDetect = cloudLat

	tBack := clk.Now()
	transport.SendCtx(cfg.EdgeCloud, clk, netsim.LabelReturnBytes, traceCtx(ctx, 0))
	out.Breakdown.CloudReturn = clk.Now() - tBack

	out.EdgeDetections = nil
	out.InitialVisible = cloudDets
	pending := p.runInitials(f, ctx, cloudDets, &out)
	// Initial latency is measured at the initial commit — before the final
	// sections run — so the mode comparison charges each commit point the
	// same way processCroesus does.
	transport.SendCtx(cfg.ClientEdge, clk, netsim.LabelReturnBytes, traceCtx(ctx, 0))
	out.InitialLatency = clk.Now() - f.At
	if cfg.OnInitial != nil {
		cfg.OnInitial(f, &out)
	}
	p.runFinals(f, ctx, pending, assumedMatches(cloudDets), &out)
	out.FinalVisible = cloudDets
	out.FinalLatency = clk.Now() - f.At
	return out
}

// detectEdge runs the edge model under the edge compute slots. It
// returns the detections, the time spent waiting for a slot, and the
// inference time itself.
func (p *Pipeline) detectEdge(f *video.Frame, ctx obs.SpanContext) ([]detect.Detection, time.Duration, time.Duration) {
	clk := p.cfg.Clock
	tw := clk.Now()
	p.queueDepth.Add(1)
	p.edgeSlots.Acquire()
	p.queueDepth.Add(-1)
	start := clk.Now()
	res := p.cfg.EdgeModel.Detect(f)
	clk.Sleep(scale(res.Latency, p.cfg.EdgeSpeed))
	p.edgeSlots.Release()
	end := clk.Now()
	if start > tw {
		p.cfg.Obs.SpanCtx(ctx, obs.SpanPoolWait, p.tags, tw, start)
	}
	p.cfg.Obs.SpanCtx(ctx, obs.SpanEdgeDetect, p.tags, start, end)
	return res.Detections, start - tw, end - start
}

// detectCloud runs the cloud model under the cloud compute slots.
func (p *Pipeline) detectCloud(f *video.Frame) ([]detect.Detection, time.Duration) {
	clk := p.cfg.Clock
	p.cloudSlot.Acquire()
	start := clk.Now()
	res := p.cfg.CloudModel.Detect(f)
	clk.Sleep(scale(res.Latency, p.cfg.CloudSpeed))
	p.cloudSlot.Release()
	return res.Detections, clk.Now() - start
}

// pendingTxn tracks a triggered transaction awaiting its final section.
type pendingTxn struct {
	inst    *txn.Instance
	trigger detect.Detection
	edgeIdx int
}

// runInitials triggers and executes the initial sections for the visible
// detections, recording latency and aborts on the outcome.
func (p *Pipeline) runInitials(f *video.Frame, ctx obs.SpanContext, dets []detect.Detection, out *FrameOutcome) []pendingTxn {
	if p.cfg.Source == nil {
		return nil
	}
	clk := p.cfg.Clock
	start := clk.Now()
	pending := make([]pendingTxn, 0, len(dets))
	for i, d := range dets {
		t := p.cfg.Source.TxnFor(f.Index, d)
		if t == nil {
			continue
		}
		inst := p.cfg.Mgr.NewInstance(t, InitialInput{FrameIndex: f.Index, Trigger: d, Labels: dets})
		inst.Trace = ctx
		err := p.cfg.CC.RunInitial(inst)
		p.harvestTiming(inst, out)
		if err != nil {
			out.InitialAborts++
			continue
		}
		pending = append(pending, pendingTxn{inst: inst, trigger: d, edgeIdx: i})
	}
	out.TxnsTriggered += len(pending)
	end := clk.Now()
	out.Breakdown.InitialTxn = end - start
	if len(dets) > 0 {
		p.cfg.Obs.SpanCtx(ctx, obs.SpanInitialTxn, p.tags, start, end)
	}
	return pending
}

// harvestTiming folds an instance's instrumented lock-wait and 2PC time
// (accumulated by the CC protocol while its sections ran on this frame's
// goroutine) into the frame's breakdown.
func (p *Pipeline) harvestTiming(inst *txn.Instance, out *FrameOutcome) {
	lw, tp := inst.TakeTiming()
	out.Breakdown.LockWait += lw
	out.Breakdown.TwoPC += tp
}

// runFinals executes the final sections with the matched cloud labels, plus
// fresh initial+final pairs for labels only the cloud found (MatchNew).
func (p *Pipeline) runFinals(f *video.Frame, ctx obs.SpanContext, pending []pendingTxn, matches []LabelMatch, out *FrameOutcome) {
	if p.cfg.Source == nil {
		return
	}
	clk := p.cfg.Clock
	start := clk.Now()
	// Matches are few per frame, so a backward scan (preserving the
	// previous map's last-entry-wins semantics) beats building a map.
	matchFor := func(idx int) (LabelMatch, bool) {
		for i := len(matches) - 1; i >= 0; i-- {
			if matches[i].EdgeIdx == idx {
				return matches[i], true
			}
		}
		return LabelMatch{}, false
	}
	for _, pt := range pending {
		m, ok := matchFor(pt.edgeIdx)
		if !ok {
			m = LabelMatch{Case: MatchAssumed, EdgeIdx: pt.edgeIdx}
		}
		fin := FinalInput{FrameIndex: f.Index, Case: m.Case, Edge: pt.trigger, Cloud: m.Cloud}
		if fin.Corrected() {
			out.Corrections++
		}
		pt.inst.FinalIn = fin
		if err := p.cfg.CC.RunFinal(pt.inst); err != nil && err != txn.ErrRetracted {
			out.FinalErrors++
		}
		p.harvestTiming(pt.inst, out)
		out.Apologies = append(out.Apologies, pt.inst.TakeApologies()...)
	}
	// Labels the edge missed entirely: trigger initial+final now (§3.3).
	for _, m := range matches {
		if m.Case != MatchNew {
			continue
		}
		t := p.cfg.Source.TxnFor(f.Index, m.Cloud)
		if t == nil {
			continue
		}
		inst := p.cfg.Mgr.NewInstance(t, InitialInput{FrameIndex: f.Index, Trigger: m.Cloud})
		inst.Trace = ctx
		err := p.cfg.CC.RunInitial(inst)
		p.harvestTiming(inst, out)
		if err != nil {
			out.InitialAborts++
			continue
		}
		out.TxnsTriggered++
		out.Corrections++
		inst.FinalIn = FinalInput{FrameIndex: f.Index, Case: MatchNew, Cloud: m.Cloud}
		if err := p.cfg.CC.RunFinal(inst); err != nil && err != txn.ErrRetracted {
			out.FinalErrors++
		}
		p.harvestTiming(inst, out)
		out.Apologies = append(out.Apologies, inst.TakeApologies()...)
	}
	end := clk.Now()
	out.Breakdown.FinalTxn = end - start
	if len(pending) > 0 || len(matches) > 0 {
		p.cfg.Obs.SpanCtx(ctx, obs.SpanFinalTxn, p.tags, start, end)
	}
}

// assumedMatches builds MatchAssumed entries for all edge labels.
func assumedMatches(dets []detect.Detection) []LabelMatch {
	out := make([]LabelMatch, len(dets))
	for i := range dets {
		out[i] = LabelMatch{Case: MatchAssumed, EdgeIdx: i}
	}
	return out
}

func filterConfidence(dets []detect.Detection, min float64) []detect.Detection {
	// Fast path: nothing filtered (MinConfidence 0 is the common config) —
	// return the input without copying.
	keep := 0
	for keep < len(dets) && dets[keep].Confidence >= min {
		keep++
	}
	if keep == len(dets) {
		return dets
	}
	out := make([]detect.Detection, 0, len(dets))
	out = append(out, dets[:keep]...)
	for _, d := range dets[keep:] {
		if d.Confidence >= min {
			out = append(out, d)
		}
	}
	return out
}

func scale(d time.Duration, speed float64) time.Duration {
	if speed <= 0 {
		return d
	}
	return time.Duration(float64(d) / speed)
}
