package core

import (
	"testing"
	"time"

	"croesus/internal/detect"
	"croesus/internal/video"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize("v", ModeCroesus, "dog", nil, func(int) []detect.Detection { return nil }, 0.1)
	if s.Frames != 0 || s.BU != 0 || s.MeanFinalLatency != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	// No predictions and no truth: perfect score by convention.
	if s.F1Final != 1 {
		t.Errorf("empty F1 = %v", s.F1Final)
	}
}

func TestSummarizeAggregates(t *testing.T) {
	d := detect.Detection{Label: "dog", Confidence: 0.9, Box: video.Rect{X: 0.1, Y: 0.1, W: 0.2, H: 0.2}}
	miss := detect.Detection{Label: "dog", Confidence: 0.9, Box: video.Rect{X: 0.7, Y: 0.7, W: 0.2, H: 0.2}}
	outs := []FrameOutcome{
		{
			FrameIndex:     0,
			InitialVisible: []detect.Detection{d},
			FinalVisible:   []detect.Detection{d},
			SentToCloud:    true,
			InitialLatency: 100 * time.Millisecond,
			FinalLatency:   300 * time.Millisecond,
			Breakdown:      Breakdown{EdgeDetect: 80 * time.Millisecond},
			TxnsTriggered:  2,
			Corrections:    1,
		},
		{
			FrameIndex:     1,
			InitialVisible: []detect.Detection{miss}, // wrong place: FP + FN
			FinalVisible:   []detect.Detection{d},    // corrected
			InitialLatency: 100 * time.Millisecond,
			FinalLatency:   100 * time.Millisecond,
			Breakdown:      Breakdown{EdgeDetect: 120 * time.Millisecond},
			TxnsTriggered:  1,
		},
	}
	truth := func(int) []detect.Detection { return []detect.Detection{d} }
	s := Summarize("v", ModeCroesus, "dog", outs, truth, 0.1)
	if s.Frames != 2 {
		t.Fatalf("frames = %d", s.Frames)
	}
	if s.BU != 0.5 {
		t.Errorf("BU = %v, want 0.5", s.BU)
	}
	if s.MeanInitialLatency != 100*time.Millisecond {
		t.Errorf("mean initial = %v", s.MeanInitialLatency)
	}
	if s.MeanFinalLatency != 200*time.Millisecond {
		t.Errorf("mean final = %v", s.MeanFinalLatency)
	}
	if s.MeanBreakdown.EdgeDetect != 100*time.Millisecond {
		t.Errorf("mean edge detect = %v", s.MeanBreakdown.EdgeDetect)
	}
	// Initial: frame0 TP, frame1 FP+FN → P=1/2, R=1/2, F=1/2.
	if s.F1Initial != 0.5 {
		t.Errorf("F1Initial = %v, want 0.5", s.F1Initial)
	}
	if s.F1Final != 1 {
		t.Errorf("F1Final = %v, want 1 (both frames corrected)", s.F1Final)
	}
	if s.TxnsTriggered != 3 || s.Corrections != 1 {
		t.Errorf("txns=%d corrections=%d", s.TxnsTriggered, s.Corrections)
	}
}

func TestTruthFromModelIndexesByFrame(t *testing.T) {
	frames := video.NewGenerator(video.ParkDog(), 11).Generate(5)
	truth := TruthFromModel(detect.Oracle{}, frames)
	for _, f := range frames {
		if got := truth(f.Index); len(got) != len(f.Objects) {
			t.Errorf("frame %d: truth %d, objects %d", f.Index, len(got), len(f.Objects))
		}
	}
	if got := truth(999); got != nil {
		t.Errorf("unknown frame returned %v", got)
	}
}

func TestBreakdownDivByZero(t *testing.T) {
	b := Breakdown{EdgeDetect: time.Second}
	b.div(0) // must not panic
	if b.EdgeDetect != time.Second {
		t.Error("div(0) mutated the breakdown")
	}
}

func TestModeStrings(t *testing.T) {
	if ModeCroesus.String() != "croesus" || ModeEdgeOnly.String() != "edge-only" ||
		ModeCloudOnly.String() != "cloud-only" || Mode(9).String() != "unknown" {
		t.Error("mode strings wrong")
	}
}
