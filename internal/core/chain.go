package core

import (
	"fmt"
	"time"

	"croesus/internal/detect"
	"croesus/internal/netsim"
	"croesus/internal/vclock"
	"croesus/internal/video"
)

// This file implements the generalized multi-stage processing model of
// §3.5: m stages s0..s(m-1), each with a detection model better (and
// slower) than the previous, connected by links. A frame starts at s0 and
// is forwarded stage to stage; per-stage bandwidth thresholding can stop
// the sequence early, at which point the remaining corrections never
// happen and the current labels stand.
//
// Transactions remain two-section even under an m-stage chain — the paper
// reaches the same conclusion ("our analysis with the general design turned
// out to add additional overhead without providing a significant benefit"):
// the first stage triggers the initial section and whichever stage
// terminates the sequence triggers the final section.

// ChainStage is one stage of a generalized pipeline.
type ChainStage struct {
	Name  string
	Model detect.Model
	// Speed divides the model's inference latency (machine capability).
	Speed float64
	// Link is the hop from the previous stage (nil for s0, which is
	// reached via the client link).
	Link *netsim.Link
	// ThetaL and ThetaU decide whether the frame continues to the NEXT
	// stage: it is forwarded when any current detection's confidence
	// falls inside [ThetaL, ThetaU]. The last stage's thresholds are
	// ignored.
	ThetaL, ThetaU float64
}

// Chain is a generalized m-stage pipeline.
type Chain struct {
	Clock         vclock.Clock
	ClientLink    *netsim.Link
	Stages        []ChainStage
	MinConfidence float64
	OverlapMin    float64
}

// NewChain validates and returns a chain.
func NewChain(clk vclock.Clock, client *netsim.Link, stages []ChainStage) (*Chain, error) {
	if clk == nil {
		return nil, fmt.Errorf("core: chain clock is required")
	}
	if len(stages) < 2 {
		return nil, fmt.Errorf("core: a chain needs at least 2 stages, got %d", len(stages))
	}
	for i, s := range stages {
		if s.Model == nil {
			return nil, fmt.Errorf("core: stage %d has no model", i)
		}
		if i > 0 && s.Link == nil {
			return nil, fmt.Errorf("core: stage %d has no link from stage %d", i, i-1)
		}
	}
	if client == nil {
		client = netsim.ClientEdgeLink()
	}
	return &Chain{
		Clock:         clk,
		ClientLink:    client,
		Stages:        stages,
		MinConfidence: 0.05,
		OverlapMin:    0.10,
	}, nil
}

// ChainOutcome records the progress of one frame through the chain.
type ChainOutcome struct {
	FrameIndex int
	// StagesRun is how many stages processed the frame (≥ 1).
	StagesRun int
	// Labels holds each reached stage's detections.
	Labels [][]detect.Detection
	// CommitLatency holds the capture→client latency of each reached
	// stage's commit (stage 0 is the initial commit; the last reached
	// stage is the final commit).
	CommitLatency []time.Duration
}

// Final returns the last reached stage's labels.
func (o ChainOutcome) Final() []detect.Detection {
	if len(o.Labels) == 0 {
		return nil
	}
	return o.Labels[len(o.Labels)-1]
}

// ProcessFrame pushes one frame through the chain on the clock. The caller
// must be a clock participant.
func (c *Chain) ProcessFrame(f *video.Frame) ChainOutcome {
	clk := c.Clock
	out := ChainOutcome{FrameIndex: f.Index}
	c.ClientLink.Send(clk, f.SizeBytes)
	for i := range c.Stages {
		st := &c.Stages[i]
		if i > 0 {
			st.Link.Send(clk, f.SizeBytes)
		}
		res := st.Model.Detect(f)
		clk.Sleep(scale(res.Latency, st.Speed))
		dets := filterConfidence(res.Detections, c.MinConfidence)
		out.StagesRun = i + 1
		out.Labels = append(out.Labels, dets)
		// Commit of this stage: labels travel back to the client (via
		// the reverse path, charged as one client-link hop).
		c.ClientLink.Send(clk, netsim.LabelReturnBytes)
		out.CommitLatency = append(out.CommitLatency, clk.Now()-f.At)

		if i == len(c.Stages)-1 {
			break
		}
		// Per-stage thresholding: stop when no detection needs the next
		// stage's validation.
		forward := false
		for _, d := range dets {
			if d.Confidence >= st.ThetaL && d.Confidence <= st.ThetaU {
				forward = true
				break
			}
		}
		if !forward {
			break
		}
	}
	return out
}

// ProcessVideo runs all frames at their capture times; the caller must be
// the clock's driver.
func (c *Chain) ProcessVideo(frames []*video.Frame) []ChainOutcome {
	outs := make([]ChainOutcome, len(frames))
	for i, f := range frames {
		i, f := i, f
		c.Clock.Go(func() {
			c.Clock.Sleep(f.At - c.Clock.Now())
			outs[i] = c.ProcessFrame(f)
		})
	}
	c.Clock.Wait()
	return outs
}
