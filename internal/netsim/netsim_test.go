package netsim

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"croesus/internal/vclock"
)

func TestTransferTime(t *testing.T) {
	l := &Link{Propagation: 10 * time.Millisecond, Bandwidth: 1 << 20} // 1 MiB/s
	got := l.TransferTime(1 << 20)
	want := 10*time.Millisecond + time.Second
	if got != want {
		t.Errorf("TransferTime = %v, want %v", got, want)
	}
	l.Bandwidth = 0 // infinite
	if l.TransferTime(1<<30) != 10*time.Millisecond {
		t.Error("infinite bandwidth must cost only propagation")
	}
}

func TestSendAdvancesClockAndAccounts(t *testing.T) {
	s := vclock.NewSim()
	l := &Link{Propagation: 50 * time.Millisecond, Bandwidth: 10 << 20}
	s.Run(func() {
		l.Send(s, 5<<20)
	})
	want := 50*time.Millisecond + 500*time.Millisecond
	if s.Now() != want {
		t.Errorf("clock = %v, want %v", s.Now(), want)
	}
	b, msgs := l.Traffic()
	if b != 5<<20 || msgs != 1 {
		t.Errorf("Traffic = %d bytes, %d msgs", b, msgs)
	}
	l.ResetTraffic()
	if b, msgs := l.Traffic(); b != 0 || msgs != 0 {
		t.Error("ResetTraffic did not clear")
	}
}

func TestCostUSD(t *testing.T) {
	l := &Link{}
	s := vclock.NewSim()
	s.Run(func() { l.Send(s, 1<<30) })
	if cost := l.CostUSD(0.09); math.Abs(cost-0.09) > 1e-9 {
		t.Errorf("CostUSD = %v, want 0.09", cost)
	}
}

func TestPresetOrdering(t *testing.T) {
	cross := EdgeCloudCrossCountry()
	same := EdgeCloudSameSite()
	n := 200 << 10
	if cross.TransferTime(n) <= same.TransferTime(n) {
		t.Error("cross-country link must be slower than same-site")
	}
	if ClientEdgeLink().TransferTime(n) >= cross.TransferTime(n) {
		t.Error("client-edge must be faster than cross-country")
	}
}

func TestPreprocessors(t *testing.T) {
	comp := DefaultCompression()
	n, cost := comp.Process(100 << 10)
	if n >= 100<<10 || n <= 0 {
		t.Errorf("compression output %d not shrunk", n)
	}
	if cost <= 0 {
		t.Error("compression must cost CPU time")
	}
	chain := Chain{DefaultCompression(), DefaultDiffComm()}
	n2, cost2 := chain.Process(100 << 10)
	if n2 >= n {
		t.Errorf("chain output %d not smaller than compression alone %d", n2, n)
	}
	if cost2 <= cost {
		t.Error("chain cost must exceed single stage")
	}
	if chain.Name() != "compression+difference" {
		t.Errorf("chain name = %q", chain.Name())
	}
	if (Chain{}).Name() != "identity" {
		t.Errorf("empty chain name = %q", Chain{}.Name())
	}
	if n3, c3 := (Identity{}).Process(42); n3 != 42 || c3 != 0 {
		t.Error("identity must be a no-op")
	}
}

// Property: transfer time is monotone in payload size.
func TestTransferMonotoneProperty(t *testing.T) {
	l := EdgeCloudCrossCountry()
	f := func(a, b uint32) bool {
		x, y := int(a%(64<<20)), int(b%(64<<20))
		if x > y {
			x, y = y, x
		}
		return l.TransferTime(x) <= l.TransferTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: chain output size is the product of ratios (within rounding).
func TestChainRatioProperty(t *testing.T) {
	f := func(raw uint32) bool {
		n := int(raw%(8<<20)) + 1024
		chain := Chain{Compression{Ratio: 0.5}, DiffComm{Ratio: 0.5}}
		out, _ := chain.Process(n)
		want := int(float64(int(float64(n)*0.5)) * 0.5)
		return out == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
