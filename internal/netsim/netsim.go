// Package netsim models the network paths of the Croesus deployment:
// client↔edge and edge↔cloud links with propagation delay and bandwidth,
// cumulative traffic/cost accounting, and the frame preprocessors
// (compression, difference communication) of the hybrid edge-cloud
// techniques compared in Figure 6(c).
package netsim

import (
	"sync"
	"time"

	"croesus/internal/vclock"
)

// Link is a one-way network path. Transfer time for a payload of n bytes is
// Propagation + n/Bandwidth.
type Link struct {
	Name        string
	Propagation time.Duration // one-way propagation delay
	Bandwidth   float64       // bytes per second; 0 means infinite

	mu       sync.Mutex
	bytes    int64
	messages int64
	down     bool
	outages  int64
}

// TransferTime returns the modeled one-way transfer time for n bytes.
func (l *Link) TransferTime(n int) time.Duration {
	d := l.Propagation
	if l.Bandwidth > 0 {
		d += time.Duration(float64(n) / l.Bandwidth * float64(time.Second))
	}
	return d
}

// Send sleeps for the transfer time of n bytes on clk and records traffic.
func (l *Link) Send(clk vclock.Clock, n int) {
	clk.Sleep(l.Charge(n))
}

// Charge records the traffic of an n-byte message and returns its transfer
// time without sleeping. Callers that fan a round of messages out in
// parallel charge each link and sleep once for the maximum.
func (l *Link) Charge(n int) time.Duration {
	l.mu.Lock()
	l.bytes += int64(n)
	l.messages++
	l.mu.Unlock()
	return l.TransferTime(n)
}

// SetDown partitions (true) or heals (false) the link. The link itself
// keeps accounting; callers decide what an unreachable peer means (the
// sharded fleet fails the transaction touching it).
func (l *Link) SetDown(down bool) {
	l.mu.Lock()
	if down && !l.down {
		l.outages++
	}
	l.down = down
	l.mu.Unlock()
}

// IsDown reports whether the link is currently partitioned.
func (l *Link) IsDown() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.down
}

// Outages reports how many times the link transitioned to down.
func (l *Link) Outages() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.outages
}

// Traffic reports cumulative bytes and message count.
func (l *Link) Traffic() (bytes, messages int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes, l.messages
}

// ResetTraffic clears the accounting counters.
func (l *Link) ResetTraffic() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.bytes, l.messages = 0, 0
}

// CostUSD estimates the monetary cost of the traffic sent over this link at
// the given $/GiB rate — the paper motivates thresholding partly by cloud
// egress pricing.
func (l *Link) CostUSD(perGiB float64) float64 {
	b, _ := l.Traffic()
	return float64(b) / (1 << 30) * perGiB
}

// The default topology mirrors the paper's setup: edge machines in
// California, cloud in Virginia (~60 ms one-way), clients adjacent to the
// edge (~5 ms).

// ClientEdgeLink returns the client→edge path.
func ClientEdgeLink() *Link {
	return &Link{Name: "client-edge", Propagation: 5 * time.Millisecond, Bandwidth: 50 << 20}
}

// EdgeCloudCrossCountry returns the California→Virginia edge→cloud path.
// The bandwidth reflects a typical edge uplink (~20 Mbps), which is what
// makes frame compression worthwhile in Figure 6(c).
func EdgeCloudCrossCountry() *Link {
	return &Link{Name: "edge-cloud-ca-va", Propagation: 60 * time.Millisecond, Bandwidth: 2_500_000}
}

// EdgeCloudSameSite returns an edge→cloud path within one location.
func EdgeCloudSameSite() *Link {
	return &Link{Name: "edge-cloud-same", Propagation: 1 * time.Millisecond, Bandwidth: 100 << 20}
}

// EdgeEdgeLink returns the inter-edge peer path cross-edge transactions
// travel: edge nodes share a metro (~8 ms one-way) over a provisioned
// 100 Mbps peering, far cheaper than the cross-country cloud hop but never
// free — which is exactly the trade-off the sharded-keyspace experiments
// measure.
func EdgeEdgeLink() *Link {
	return &Link{Name: "edge-edge", Propagation: 8 * time.Millisecond, Bandwidth: (100 << 20) / 8}
}

// LabelReturnBytes is the size of a label set reply; label messages are tiny
// compared to frames.
const LabelReturnBytes = 2 << 10

// Preprocessor transforms a frame payload before it crosses the edge→cloud
// link, trading CPU time for bytes. This models the hybrid edge-cloud
// techniques (compression, difference communication) of Figure 6(c).
type Preprocessor interface {
	Name() string
	// Process returns the transmitted size for a frame of rawBytes and
	// the CPU time spent producing it on a speed-1.0 machine.
	Process(rawBytes int) (sentBytes int, cost time.Duration)
}

// Identity sends frames unchanged.
type Identity struct{}

// Name returns "identity".
func (Identity) Name() string { return "identity" }

// Process returns the input unchanged at zero cost.
func (Identity) Process(rawBytes int) (int, time.Duration) { return rawBytes, 0 }

// Compression re-encodes the frame at a lower size.
type Compression struct {
	Ratio float64       // output/input size, e.g. 0.55
	Cost  time.Duration // CPU time per frame
}

// Name returns "compression".
func (Compression) Name() string { return "compression" }

// Process shrinks the payload by Ratio.
func (c Compression) Process(rawBytes int) (int, time.Duration) {
	return int(float64(rawBytes) * c.Ratio), c.Cost
}

// DiffComm sends only the difference against a reference frame.
type DiffComm struct {
	Ratio float64 // additional shrink on top of the incoming size
	Cost  time.Duration
}

// Name returns "difference".
func (DiffComm) Name() string { return "difference" }

// Process shrinks the payload by Ratio.
func (d DiffComm) Process(rawBytes int) (int, time.Duration) {
	return int(float64(rawBytes) * d.Ratio), d.Cost
}

// Chain composes preprocessors left to right.
type Chain []Preprocessor

// Name joins the component names.
func (c Chain) Name() string {
	if len(c) == 0 {
		return "identity"
	}
	name := c[0].Name()
	for _, p := range c[1:] {
		name += "+" + p.Name()
	}
	return name
}

// Process applies every stage, summing costs.
func (c Chain) Process(rawBytes int) (int, time.Duration) {
	var total time.Duration
	n := rawBytes
	for _, p := range c {
		var cost time.Duration
		n, cost = p.Process(n)
		total += cost
	}
	return n, total
}

// DefaultCompression matches typical JPEG re-encoding gains.
func DefaultCompression() Compression {
	return Compression{Ratio: 0.55, Cost: 12 * time.Millisecond}
}

// DefaultDiffComm matches frame differencing on mostly static scenes.
func DefaultDiffComm() DiffComm {
	return DiffComm{Ratio: 0.45, Cost: 8 * time.Millisecond}
}
