// Package lock implements the lock manager used by the multi-stage
// concurrency-control protocols: shared/exclusive key locks with FIFO
// queuing, a no-wait acquisition mode (the abort policy of Two Stage 2PL in
// the paper's Algorithm 1), deadlock-free ordered multi-key acquisition, and
// per-key hold-time accounting for the Figure 6(a) experiment.
//
// Blocking waiters park on vclock gates, so the same manager works under
// both simulated and real time.
//
// The manager sits on the per-frame hot path (every detection transaction
// acquires and releases its whole read/write set), so the bookkeeping is
// allocation-conscious: per-key state uses small slices instead of maps,
// key-lock records are pooled across keys, and promotion fires gates in
// place — Gate.Fire never blocks — rather than collecting them.
package lock

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"croesus/internal/vclock"
)

// Mode is the lock mode.
type Mode int

// Lock modes.
const (
	Shared Mode = iota
	Exclusive
)

func (m Mode) String() string {
	if m == Shared {
		return "S"
	}
	return "X"
}

// Owner identifies a lock holder (a transaction instance).
type Owner uint64

// Request names one key and the mode it must be locked in.
type Request struct {
	Key  string
	Mode Mode
}

type waiter struct {
	owner Owner
	mode  Mode
	gate  vclock.Gate
}

// holder records one current holder of a key lock; at is when it acquired
// the lock, for hold-time accounting. Holders are kept in a small slice —
// the common case is exactly one — and order is not significant.
type holder struct {
	owner Owner
	mode  Mode
	at    time.Duration
}

type keyLock struct {
	holders []holder
	queue   []waiter
}

// klPool recycles keyLock records (and their holder/queue backing arrays)
// across keys: a detection transaction locks and fully unlocks ~6 keys, so
// without pooling every transaction allocates a fresh record per key.
var klPool = sync.Pool{New: func() any { return new(keyLock) }}

func (kl *keyLock) findHolder(owner Owner) int {
	for i := range kl.holders {
		if kl.holders[i].owner == owner {
			return i
		}
	}
	return -1
}

// Manager is a table of key locks.
type Manager struct {
	clk vclock.Clock

	mu    sync.Mutex
	locks map[string]*keyLock

	holdMu    sync.Mutex
	holdTotal time.Duration
	holdCount int64
	waitTotal time.Duration
	waitCount int64
}

// NewManager returns a lock manager using clk for blocking and accounting.
func NewManager(clk vclock.Clock) *Manager {
	return &Manager{clk: clk, locks: make(map[string]*keyLock)}
}

func (m *Manager) keyLock(key string) *keyLock {
	kl, ok := m.locks[key]
	if !ok {
		kl = klPool.Get().(*keyLock)
		m.locks[key] = kl
	}
	return kl
}

// compatible reports whether owner may take the lock in mode given current
// holders. Re-entrant: a holder may re-take its own lock (upgrades from S to
// X require being the only holder).
func (kl *keyLock) compatible(owner Owner, mode Mode) bool {
	for i := range kl.holders {
		h := &kl.holders[i]
		if h.owner == owner {
			if mode == Exclusive && h.mode == Shared && len(kl.holders) > 1 {
				return false // upgrade blocked by other sharers
			}
			continue
		}
		if mode == Exclusive || h.mode == Exclusive {
			return false
		}
	}
	return true
}

// grantLocked records the grant. Callers hold m.mu.
func (m *Manager) grantLocked(kl *keyLock, owner Owner, mode Mode) {
	if i := kl.findHolder(owner); i >= 0 {
		if kl.holders[i].mode == Shared && mode == Exclusive {
			kl.holders[i].mode = Exclusive
		}
		return
	}
	kl.holders = append(kl.holders, holder{owner: owner, mode: mode, at: m.clk.Now()})
}

// TryAcquire attempts to lock key in mode without waiting; it reports
// whether the lock was granted. Waiters queued ahead block new grants (no
// barging), matching FIFO fairness.
func (m *Manager) TryAcquire(owner Owner, key string, mode Mode) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	kl := m.keyLock(key)
	if len(kl.queue) > 0 || !kl.compatible(owner, mode) {
		if len(kl.holders) == 0 && len(kl.queue) == 0 {
			m.dropLocked(key, kl)
		}
		return false
	}
	m.grantLocked(kl, owner, mode)
	return true
}

// Acquire locks key in mode, blocking (in clock time) until granted.
func (m *Manager) Acquire(owner Owner, key string, mode Mode) {
	m.mu.Lock()
	kl := m.keyLock(key)
	if len(kl.queue) == 0 && kl.compatible(owner, mode) {
		m.grantLocked(kl, owner, mode)
		m.mu.Unlock()
		return
	}
	g := m.clk.NewGate()
	kl.queue = append(kl.queue, waiter{owner: owner, mode: mode, gate: g})
	m.mu.Unlock()
	start := m.clk.Now()
	g.Wait()
	m.recordWait(m.clk.Now() - start)
}

// dropLocked removes an empty key lock from the table and recycles the
// record. Callers hold m.mu; kl must have no holders and no waiters.
func (m *Manager) dropLocked(key string, kl *keyLock) {
	delete(m.locks, key)
	kl.holders = kl.holders[:0]
	kl.queue = kl.queue[:0]
	klPool.Put(kl)
}

// Release unlocks key for owner and hands the lock to eligible waiters.
func (m *Manager) Release(owner Owner, key string) {
	m.mu.Lock()
	kl, ok := m.locks[key]
	if !ok {
		m.mu.Unlock()
		panic(fmt.Sprintf("lock: release of unheld key %q by owner %d", key, owner))
	}
	i := kl.findHolder(owner)
	if i < 0 {
		m.mu.Unlock()
		panic(fmt.Sprintf("lock: release of unheld key %q by owner %d", key, owner))
	}
	start := kl.holders[i].at
	last := len(kl.holders) - 1
	kl.holders[i] = kl.holders[last]
	kl.holders = kl.holders[:last]
	m.promoteLocked(kl)
	if len(kl.holders) == 0 && len(kl.queue) == 0 {
		m.dropLocked(key, kl)
	}
	m.mu.Unlock()

	m.recordHold(m.clk.Now() - start)
}

// promoteLocked grants queued waiters in FIFO order as long as they are
// compatible, firing their gates in place (Fire never blocks, so holding
// m.mu across it is safe and avoids collecting the gates). Callers hold
// m.mu.
func (m *Manager) promoteLocked(kl *keyLock) {
	n := 0
	for n < len(kl.queue) {
		w := kl.queue[n]
		if !kl.compatible(w.owner, w.mode) {
			break
		}
		m.grantLocked(kl, w.owner, w.mode)
		n++
		w.gate.Fire()
	}
	if n > 0 {
		kl.queue = kl.queue[:copy(kl.queue, kl.queue[n:])]
	}
}

// AcquireAll locks every request, blocking as needed. Requests are sorted by
// key (duplicates merged, Exclusive winning), so concurrent AcquireAll calls
// cannot deadlock — the classic ordered-acquisition discipline enabled by
// the declared read/write sets of the paper's algorithms ("get_rwsets").
// Callers must not hold other locks across the call (protocols that do,
// like MS-SR holding locks until the final commit, use AcquireAllWaitDie).
func (m *Manager) AcquireAll(owner Owner, reqs []Request) {
	for _, r := range normalized(reqs) {
		m.Acquire(owner, r.Key, r.Mode)
	}
}

// normalized returns reqs when it is already in Normalize's canonical form
// (keys strictly ascending — the txn layer caches normalized sets, so this
// is the hot case and allocates nothing) and a normalized copy otherwise.
func normalized(reqs []Request) []Request {
	for i := 1; i < len(reqs); i++ {
		if reqs[i-1].Key >= reqs[i].Key {
			return Normalize(reqs)
		}
	}
	return reqs
}

// AcquireAllWaitDie acquires every request under the wait-die discipline:
// a requester may block only when it is older (smaller Owner id — ids are
// assigned monotonically) than every current holder and queued waiter of
// the key; otherwise it "dies" — everything acquired so far is released
// and false is returned, and the caller is expected to abort. Because every
// wait edge points from an older transaction to a younger one, no cycle can
// form even when callers hold locks across calls, which is exactly the
// MS-SR situation (locks held from the initial commit to the final commit
// while new transactions keep arriving).
func (m *Manager) AcquireAllWaitDie(owner Owner, reqs []Request) bool {
	norm := normalized(reqs)
	for i, r := range norm {
		if !m.acquireWaitDie(owner, r.Key, r.Mode) {
			for j := 0; j < i; j++ {
				m.Release(owner, norm[j].Key)
			}
			return false
		}
	}
	return true
}

// acquireWaitDie takes one lock, blocking only when the wait-die age rule
// permits.
func (m *Manager) acquireWaitDie(owner Owner, key string, mode Mode) bool {
	m.mu.Lock()
	kl := m.keyLock(key)
	if len(kl.queue) == 0 && kl.compatible(owner, mode) {
		m.grantLocked(kl, owner, mode)
		m.mu.Unlock()
		return true
	}
	// The requester would wait for the current holders and everyone
	// queued ahead; it may only do so if it is older than all of them.
	for i := range kl.holders {
		h := kl.holders[i].owner
		if h != owner && h <= owner {
			m.mu.Unlock()
			return false
		}
	}
	for _, w := range kl.queue {
		if w.owner <= owner {
			m.mu.Unlock()
			return false
		}
	}
	g := m.clk.NewGate()
	kl.queue = append(kl.queue, waiter{owner: owner, mode: mode, gate: g})
	m.mu.Unlock()
	start := m.clk.Now()
	g.Wait()
	m.recordWait(m.clk.Now() - start)
	return true
}

// TryAcquireAll attempts to lock every request without waiting. On failure
// it releases everything it acquired and reports false — the no-wait abort
// policy of Algorithm 1.
func (m *Manager) TryAcquireAll(owner Owner, reqs []Request) bool {
	norm := normalized(reqs)
	for i, r := range norm {
		if !m.TryAcquire(owner, r.Key, r.Mode) {
			for j := 0; j < i; j++ {
				m.Release(owner, norm[j].Key)
			}
			return false
		}
	}
	return true
}

// ReleaseAll releases the given requests' keys (deduplicated).
func (m *Manager) ReleaseAll(owner Owner, reqs []Request) {
	for _, r := range normalized(reqs) {
		m.Release(owner, r.Key)
	}
}

// HoldStats reports the cumulative number of lock holds and their mean
// duration (the Figure 6(a) metric).
func (m *Manager) HoldStats() (count int64, mean time.Duration) {
	m.holdMu.Lock()
	defer m.holdMu.Unlock()
	if m.holdCount == 0 {
		return 0, 0
	}
	return m.holdCount, m.holdTotal / time.Duration(m.holdCount)
}

// ResetHoldStats clears hold-time accounting.
func (m *Manager) ResetHoldStats() {
	m.holdMu.Lock()
	defer m.holdMu.Unlock()
	m.holdTotal, m.holdCount = 0, 0
}

func (m *Manager) recordHold(d time.Duration) {
	m.holdMu.Lock()
	m.holdTotal += d
	m.holdCount++
	m.holdMu.Unlock()
}

// WaitStats reports how many Acquire calls had to queue and their mean
// queuing time. A workload scheduled so that conflicting transactions never
// overlap (the MS-IA sequencer) shows a zero wait count.
func (m *Manager) WaitStats() (count int64, mean time.Duration) {
	m.holdMu.Lock()
	defer m.holdMu.Unlock()
	if m.waitCount == 0 {
		return 0, 0
	}
	return m.waitCount, m.waitTotal / time.Duration(m.waitCount)
}

func (m *Manager) recordWait(d time.Duration) {
	m.holdMu.Lock()
	m.waitTotal += d
	m.waitCount++
	m.holdMu.Unlock()
}

// Outstanding reports how many keys currently have holders or waiters —
// zero after a clean run, which is how the fault tests prove a crash did
// not leak MS-SR locks.
func (m *Manager) Outstanding() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.locks)
}

// Held reports whether owner currently holds key (any mode) — for tests.
func (m *Manager) Held(owner Owner, key string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	kl, ok := m.locks[key]
	if !ok {
		return false
	}
	return kl.findHolder(owner) >= 0
}

// Normalize sorts requests by key and merges duplicates; a key requested in
// both modes is kept Exclusive. The input is not modified.
func Normalize(reqs []Request) []Request {
	if len(reqs) == 0 {
		return nil
	}
	out := make([]Request, len(reqs))
	copy(out, reqs)
	return NormalizeInPlace(out)
}

// NormalizeInPlace is Normalize without the defensive copy: it sorts and
// dedupes reqs in its own backing array and returns the shortened slice.
// Hot callers that own their request slice (the txn layer's cached
// read/write sets) use this to avoid one allocation per transaction.
func NormalizeInPlace(reqs []Request) []Request {
	if len(reqs) == 0 {
		return nil
	}
	// Sort by key; within a key, Exclusive before Shared so the dedupe
	// pass below (keep-first) merges duplicate keys to Exclusive.
	slices.SortFunc(reqs, func(a, b Request) int {
		if a.Key != b.Key {
			if a.Key < b.Key {
				return -1
			}
			return 1
		}
		return int(b.Mode) - int(a.Mode)
	})
	w := 1
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Key == reqs[w-1].Key {
			continue
		}
		reqs[w] = reqs[i]
		w++
	}
	return reqs[:w]
}
