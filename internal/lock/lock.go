// Package lock implements the lock manager used by the multi-stage
// concurrency-control protocols: shared/exclusive key locks with FIFO
// queuing, a no-wait acquisition mode (the abort policy of Two Stage 2PL in
// the paper's Algorithm 1), deadlock-free ordered multi-key acquisition, and
// per-key hold-time accounting for the Figure 6(a) experiment.
//
// Blocking waiters park on vclock gates, so the same manager works under
// both simulated and real time.
package lock

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"croesus/internal/vclock"
)

// Mode is the lock mode.
type Mode int

// Lock modes.
const (
	Shared Mode = iota
	Exclusive
)

func (m Mode) String() string {
	if m == Shared {
		return "S"
	}
	return "X"
}

// Owner identifies a lock holder (a transaction instance).
type Owner uint64

// Request names one key and the mode it must be locked in.
type Request struct {
	Key  string
	Mode Mode
}

type waiter struct {
	owner Owner
	mode  Mode
	gate  vclock.Gate
}

type keyLock struct {
	holders map[Owner]Mode
	queue   []waiter
	// acquiredAt records when each current holder got the lock, for
	// hold-time accounting.
	acquiredAt map[Owner]time.Duration
}

// Manager is a table of key locks.
type Manager struct {
	clk vclock.Clock

	mu    sync.Mutex
	locks map[string]*keyLock

	holdMu    sync.Mutex
	holdTotal time.Duration
	holdCount int64
	waitTotal time.Duration
	waitCount int64
}

// NewManager returns a lock manager using clk for blocking and accounting.
func NewManager(clk vclock.Clock) *Manager {
	return &Manager{clk: clk, locks: make(map[string]*keyLock)}
}

func (m *Manager) keyLock(key string) *keyLock {
	kl, ok := m.locks[key]
	if !ok {
		kl = &keyLock{holders: make(map[Owner]Mode), acquiredAt: make(map[Owner]time.Duration)}
		m.locks[key] = kl
	}
	return kl
}

// compatible reports whether owner may take the lock in mode given current
// holders. Re-entrant: a holder may re-take its own lock (upgrades from S to
// X require being the only holder).
func (kl *keyLock) compatible(owner Owner, mode Mode) bool {
	for o, held := range kl.holders {
		if o == owner {
			if mode == Exclusive && held == Shared && len(kl.holders) > 1 {
				return false // upgrade blocked by other sharers
			}
			continue
		}
		if mode == Exclusive || held == Exclusive {
			return false
		}
	}
	return true
}

// grantLocked records the grant. Callers hold m.mu.
func (m *Manager) grantLocked(kl *keyLock, owner Owner, mode Mode) {
	if held, ok := kl.holders[owner]; !ok || (held == Shared && mode == Exclusive) {
		kl.holders[owner] = mode
	}
	if _, ok := kl.acquiredAt[owner]; !ok {
		kl.acquiredAt[owner] = m.clk.Now()
	}
}

// TryAcquire attempts to lock key in mode without waiting; it reports
// whether the lock was granted. Waiters queued ahead block new grants (no
// barging), matching FIFO fairness.
func (m *Manager) TryAcquire(owner Owner, key string, mode Mode) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	kl := m.keyLock(key)
	if len(kl.queue) > 0 || !kl.compatible(owner, mode) {
		return false
	}
	m.grantLocked(kl, owner, mode)
	return true
}

// Acquire locks key in mode, blocking (in clock time) until granted.
func (m *Manager) Acquire(owner Owner, key string, mode Mode) {
	m.mu.Lock()
	kl := m.keyLock(key)
	if len(kl.queue) == 0 && kl.compatible(owner, mode) {
		m.grantLocked(kl, owner, mode)
		m.mu.Unlock()
		return
	}
	g := m.clk.NewGate()
	kl.queue = append(kl.queue, waiter{owner: owner, mode: mode, gate: g})
	m.mu.Unlock()
	start := m.clk.Now()
	g.Wait()
	m.recordWait(m.clk.Now() - start)
}

// Release unlocks key for owner and hands the lock to eligible waiters.
func (m *Manager) Release(owner Owner, key string) {
	m.mu.Lock()
	kl, ok := m.locks[key]
	if !ok {
		m.mu.Unlock()
		panic(fmt.Sprintf("lock: release of unheld key %q by owner %d", key, owner))
	}
	if _, held := kl.holders[owner]; !held {
		m.mu.Unlock()
		panic(fmt.Sprintf("lock: release of unheld key %q by owner %d", key, owner))
	}
	start := kl.acquiredAt[owner]
	delete(kl.holders, owner)
	delete(kl.acquiredAt, owner)
	granted := m.promoteLocked(kl)
	if len(kl.holders) == 0 && len(kl.queue) == 0 {
		delete(m.locks, key)
	}
	m.mu.Unlock()

	m.recordHold(m.clk.Now() - start)
	for _, g := range granted {
		g.Fire()
	}
}

// promoteLocked grants queued waiters in FIFO order as long as they are
// compatible; it returns the gates to fire. Callers hold m.mu.
func (m *Manager) promoteLocked(kl *keyLock) []vclock.Gate {
	var fired []vclock.Gate
	for len(kl.queue) > 0 {
		w := kl.queue[0]
		if !kl.compatible(w.owner, w.mode) {
			break
		}
		m.grantLocked(kl, w.owner, w.mode)
		kl.queue = kl.queue[1:]
		fired = append(fired, w.gate)
	}
	return fired
}

// AcquireAll locks every request, blocking as needed. Requests are sorted by
// key (duplicates merged, Exclusive winning), so concurrent AcquireAll calls
// cannot deadlock — the classic ordered-acquisition discipline enabled by
// the declared read/write sets of the paper's algorithms ("get_rwsets").
// Callers must not hold other locks across the call (protocols that do,
// like MS-SR holding locks until the final commit, use AcquireAllWaitDie).
func (m *Manager) AcquireAll(owner Owner, reqs []Request) {
	for _, r := range Normalize(reqs) {
		m.Acquire(owner, r.Key, r.Mode)
	}
}

// AcquireAllWaitDie acquires every request under the wait-die discipline:
// a requester may block only when it is older (smaller Owner id — ids are
// assigned monotonically) than every current holder and queued waiter of
// the key; otherwise it "dies" — everything acquired so far is released
// and false is returned, and the caller is expected to abort. Because every
// wait edge points from an older transaction to a younger one, no cycle can
// form even when callers hold locks across calls, which is exactly the
// MS-SR situation (locks held from the initial commit to the final commit
// while new transactions keep arriving).
func (m *Manager) AcquireAllWaitDie(owner Owner, reqs []Request) bool {
	norm := Normalize(reqs)
	for i, r := range norm {
		if !m.acquireWaitDie(owner, r.Key, r.Mode) {
			for j := 0; j < i; j++ {
				m.Release(owner, norm[j].Key)
			}
			return false
		}
	}
	return true
}

// acquireWaitDie takes one lock, blocking only when the wait-die age rule
// permits.
func (m *Manager) acquireWaitDie(owner Owner, key string, mode Mode) bool {
	m.mu.Lock()
	kl := m.keyLock(key)
	if len(kl.queue) == 0 && kl.compatible(owner, mode) {
		m.grantLocked(kl, owner, mode)
		m.mu.Unlock()
		return true
	}
	// The requester would wait for the current holders and everyone
	// queued ahead; it may only do so if it is older than all of them.
	for h := range kl.holders {
		if h != owner && h <= owner {
			m.mu.Unlock()
			return false
		}
	}
	for _, w := range kl.queue {
		if w.owner <= owner {
			m.mu.Unlock()
			return false
		}
	}
	g := m.clk.NewGate()
	kl.queue = append(kl.queue, waiter{owner: owner, mode: mode, gate: g})
	m.mu.Unlock()
	start := m.clk.Now()
	g.Wait()
	m.recordWait(m.clk.Now() - start)
	return true
}

// TryAcquireAll attempts to lock every request without waiting. On failure
// it releases everything it acquired and reports false — the no-wait abort
// policy of Algorithm 1.
func (m *Manager) TryAcquireAll(owner Owner, reqs []Request) bool {
	norm := Normalize(reqs)
	for i, r := range norm {
		if !m.TryAcquire(owner, r.Key, r.Mode) {
			for j := 0; j < i; j++ {
				m.Release(owner, norm[j].Key)
			}
			return false
		}
	}
	return true
}

// ReleaseAll releases the given requests' keys (deduplicated).
func (m *Manager) ReleaseAll(owner Owner, reqs []Request) {
	for _, r := range Normalize(reqs) {
		m.Release(owner, r.Key)
	}
}

// HoldStats reports the cumulative number of lock holds and their mean
// duration (the Figure 6(a) metric).
func (m *Manager) HoldStats() (count int64, mean time.Duration) {
	m.holdMu.Lock()
	defer m.holdMu.Unlock()
	if m.holdCount == 0 {
		return 0, 0
	}
	return m.holdCount, m.holdTotal / time.Duration(m.holdCount)
}

// ResetHoldStats clears hold-time accounting.
func (m *Manager) ResetHoldStats() {
	m.holdMu.Lock()
	defer m.holdMu.Unlock()
	m.holdTotal, m.holdCount = 0, 0
}

func (m *Manager) recordHold(d time.Duration) {
	m.holdMu.Lock()
	m.holdTotal += d
	m.holdCount++
	m.holdMu.Unlock()
}

// WaitStats reports how many Acquire calls had to queue and their mean
// queuing time. A workload scheduled so that conflicting transactions never
// overlap (the MS-IA sequencer) shows a zero wait count.
func (m *Manager) WaitStats() (count int64, mean time.Duration) {
	m.holdMu.Lock()
	defer m.holdMu.Unlock()
	if m.waitCount == 0 {
		return 0, 0
	}
	return m.waitCount, m.waitTotal / time.Duration(m.waitCount)
}

func (m *Manager) recordWait(d time.Duration) {
	m.holdMu.Lock()
	m.waitTotal += d
	m.waitCount++
	m.holdMu.Unlock()
}

// Outstanding reports how many keys currently have holders or waiters —
// zero after a clean run, which is how the fault tests prove a crash did
// not leak MS-SR locks.
func (m *Manager) Outstanding() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.locks)
}

// Held reports whether owner currently holds key (any mode) — for tests.
func (m *Manager) Held(owner Owner, key string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	kl, ok := m.locks[key]
	if !ok {
		return false
	}
	_, held := kl.holders[owner]
	return held
}

// Normalize sorts requests by key and merges duplicates; a key requested in
// both modes is kept Exclusive.
func Normalize(reqs []Request) []Request {
	if len(reqs) == 0 {
		return nil
	}
	byKey := make(map[string]Mode, len(reqs))
	for _, r := range reqs {
		if cur, ok := byKey[r.Key]; !ok || (cur == Shared && r.Mode == Exclusive) {
			byKey[r.Key] = r.Mode
		}
	}
	out := make([]Request, 0, len(byKey))
	for k, mode := range byKey {
		out = append(out, Request{Key: k, Mode: mode})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
