package lock

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"croesus/internal/vclock"
)

func TestSharedCompatibility(t *testing.T) {
	m := NewManager(vclock.NewReal())
	if !m.TryAcquire(1, "k", Shared) {
		t.Fatal("first shared acquire failed")
	}
	if !m.TryAcquire(2, "k", Shared) {
		t.Fatal("second shared acquire failed")
	}
	if m.TryAcquire(3, "k", Exclusive) {
		t.Fatal("exclusive granted over shared holders")
	}
	m.Release(1, "k")
	m.Release(2, "k")
	if !m.TryAcquire(3, "k", Exclusive) {
		t.Fatal("exclusive acquire failed on free lock")
	}
	if m.TryAcquire(4, "k", Shared) {
		t.Fatal("shared granted over exclusive holder")
	}
	m.Release(3, "k")
}

func TestReentrantAndUpgrade(t *testing.T) {
	m := NewManager(vclock.NewReal())
	if !m.TryAcquire(1, "k", Shared) || !m.TryAcquire(1, "k", Shared) {
		t.Fatal("re-entrant shared failed")
	}
	if !m.TryAcquire(1, "k", Exclusive) {
		t.Fatal("sole-holder upgrade failed")
	}
	if m.TryAcquire(2, "k", Shared) {
		t.Fatal("shared granted over upgraded exclusive")
	}
	m.Release(1, "k")

	// Upgrade blocked when another sharer exists.
	m.TryAcquire(1, "k", Shared)
	m.TryAcquire(2, "k", Shared)
	if m.TryAcquire(1, "k", Exclusive) {
		t.Fatal("upgrade granted despite second sharer")
	}
	m.Release(1, "k")
	m.Release(2, "k")
}

func TestBlockingAcquireFIFO(t *testing.T) {
	s := vclock.NewSim()
	m := NewManager(s)
	var mu sync.Mutex
	var order []int
	s.Go(func() {
		m.Acquire(100, "k", Exclusive)
		s.Sleep(10 * time.Second)
		m.Release(100, "k")
	})
	for i := 0; i < 4; i++ {
		i := i
		s.Go(func() {
			s.Sleep(time.Duration(i+1) * time.Second) // arrive in order
			m.Acquire(Owner(i), "k", Exclusive)
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			s.Sleep(time.Second)
			m.Release(Owner(i), "k")
		})
	}
	s.Wait()
	for i, v := range order {
		if v != i {
			t.Fatalf("grant order %v not FIFO", order)
		}
	}
}

func TestNoBargingPastWaiters(t *testing.T) {
	// A shared TryAcquire must fail while an exclusive waiter is queued,
	// or writers would starve.
	s := vclock.NewSim()
	m := NewManager(s)
	var grabbed bool
	s.Go(func() {
		m.Acquire(1, "k", Shared)
		s.Sleep(5 * time.Second)
		m.Release(1, "k")
	})
	s.Go(func() {
		s.Sleep(time.Second)
		m.Acquire(2, "k", Exclusive) // queues behind owner 1
		m.Release(2, "k")
	})
	s.Go(func() {
		s.Sleep(2 * time.Second)
		grabbed = m.TryAcquire(3, "k", Shared)
		if grabbed {
			m.Release(3, "k")
		}
	})
	s.Wait()
	if grabbed {
		t.Fatal("shared TryAcquire barged past a queued exclusive waiter")
	}
}

func TestTryAcquireAllAtomicity(t *testing.T) {
	m := NewManager(vclock.NewReal())
	m.TryAcquire(9, "b", Exclusive)
	ok := m.TryAcquireAll(1, []Request{{"a", Exclusive}, {"b", Exclusive}, {"c", Exclusive}})
	if ok {
		t.Fatal("TryAcquireAll succeeded despite conflict on b")
	}
	// Nothing may remain held by owner 1.
	for _, k := range []string{"a", "b", "c"} {
		if m.Held(1, k) {
			t.Errorf("owner 1 still holds %q after failed TryAcquireAll", k)
		}
	}
	m.Release(9, "b")
	if !m.TryAcquireAll(1, []Request{{"a", Exclusive}, {"b", Shared}}) {
		t.Fatal("TryAcquireAll failed on free keys")
	}
	m.ReleaseAll(1, []Request{{"a", Exclusive}, {"b", Shared}})
}

func TestNormalize(t *testing.T) {
	got := Normalize([]Request{
		{"b", Shared}, {"a", Exclusive}, {"b", Exclusive}, {"a", Shared}, {"b", Shared},
	})
	want := []Request{{"a", Exclusive}, {"b", Exclusive}}
	if len(got) != len(want) {
		t.Fatalf("Normalize = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Normalize = %v, want %v", got, want)
		}
	}
	if Normalize(nil) != nil {
		t.Error("Normalize(nil) != nil")
	}
}

// Property: Normalize output is sorted, duplicate-free, and covers exactly
// the input key set with Exclusive dominating.
func TestNormalizeProperty(t *testing.T) {
	f := func(keys []uint8, modes []bool) bool {
		var reqs []Request
		for i, k := range keys {
			mode := Shared
			if i < len(modes) && modes[i] {
				mode = Exclusive
			}
			reqs = append(reqs, Request{Key: string(rune('a' + k%16)), Mode: mode})
		}
		norm := Normalize(reqs)
		seen := map[string]Mode{}
		prev := ""
		for _, r := range norm {
			if r.Key <= prev && prev != "" {
				return false
			}
			prev = r.Key
			seen[r.Key] = r.Mode
		}
		wantX := map[string]bool{}
		wantAll := map[string]bool{}
		for _, r := range reqs {
			wantAll[r.Key] = true
			if r.Mode == Exclusive {
				wantX[r.Key] = true
			}
		}
		if len(seen) != len(wantAll) {
			return false
		}
		for k := range wantAll {
			mode, ok := seen[k]
			if !ok {
				return false
			}
			if wantX[k] && mode != Exclusive {
				return false
			}
			if !wantX[k] && mode != Shared {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOrderedAcquisitionNoDeadlock(t *testing.T) {
	// Two owners acquiring overlapping sets in opposite declaration order
	// must not deadlock thanks to Normalize. Under the Sim clock a
	// deadlock panics, so plain completion is the assertion.
	s := vclock.NewSim()
	m := NewManager(s)
	for i := 0; i < 20; i++ {
		i := i
		s.Go(func() {
			reqs := []Request{{"x", Exclusive}, {"y", Exclusive}}
			if i%2 == 0 {
				reqs[0], reqs[1] = reqs[1], reqs[0]
			}
			m.AcquireAll(Owner(i), reqs)
			s.Sleep(time.Millisecond)
			m.ReleaseAll(Owner(i), reqs)
		})
	}
	s.Wait()
}

func TestHoldStats(t *testing.T) {
	s := vclock.NewSim()
	m := NewManager(s)
	s.Run(func() {
		m.Acquire(1, "k", Exclusive)
		s.Sleep(100 * time.Millisecond)
		m.Release(1, "k")
		m.Acquire(1, "j", Exclusive)
		s.Sleep(300 * time.Millisecond)
		m.Release(1, "j")
	})
	n, mean := m.HoldStats()
	if n != 2 {
		t.Fatalf("hold count = %d, want 2", n)
	}
	if mean != 200*time.Millisecond {
		t.Fatalf("mean hold = %v, want 200ms", mean)
	}
	m.ResetHoldStats()
	if n, _ := m.HoldStats(); n != 0 {
		t.Error("ResetHoldStats did not clear")
	}
}

func TestReleaseUnheldPanics(t *testing.T) {
	m := NewManager(vclock.NewReal())
	defer func() {
		if recover() == nil {
			t.Error("expected panic on releasing unheld lock")
		}
	}()
	m.Release(1, "nope")
}

func TestConcurrentMutualExclusion(t *testing.T) {
	// Race-detector stress: exclusive locks protect a plain counter.
	m := NewManager(vclock.NewReal())
	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(o Owner) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.Acquire(o, "ctr", Exclusive)
				counter++
				m.Release(o, "ctr")
			}
		}(Owner(i))
	}
	wg.Wait()
	if counter != 800 {
		t.Fatalf("counter = %d, want 800 (mutual exclusion broken)", counter)
	}
}
