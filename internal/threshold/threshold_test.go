package threshold

import (
	"math"
	"testing"
	"testing/quick"

	"croesus/internal/detect"
	"croesus/internal/video"
)

func parkEvaluator(n int) *Evaluator {
	prof := video.ParkDog()
	frames := video.NewGenerator(prof, 11).Generate(n)
	return NewEvaluator(frames, detect.TinyYOLOSim(42), detect.YOLOv3Sim(detect.YOLO416, 42), prof.QueryClass, 0.1)
}

func TestEvaluateExtremes(t *testing.T) {
	e := parkEvaluator(100)
	// Validate everything: near-perfect accuracy, near-full bandwidth.
	// (Frames where the edge model detects nothing at all have no
	// confidence in the validate interval and are never sent — the only
	// residual error source.)
	f1, bu := e.Evaluate(0, 1)
	if f1 < 0.94 {
		t.Errorf("full validation F1 = %.3f, want ≈ 1.0", f1)
	}
	if bu < 0.95 {
		t.Errorf("full validation BU = %.3f, want ≈ 1.0", bu)
	}
	// Empty validate interval at 0: keep everything, send nothing.
	f1, bu = e.Evaluate(0, 0)
	if bu > 0.05 {
		t.Errorf("empty interval BU = %.3f, want ≈ 0", bu)
	}
	if f1 > 0.9 {
		t.Errorf("edge-only F1 = %.3f, should be well below 1 on the park video", f1)
	}
}

func TestEvaluateMonotoneBandwidth(t *testing.T) {
	// Widening the validate interval can only send more frames.
	e := parkEvaluator(100)
	_, narrow := e.Evaluate(0.45, 0.55)
	_, wide := e.Evaluate(0.35, 0.75)
	if wide < narrow {
		t.Errorf("BU not monotone in interval width: narrow=%.3f wide=%.3f", narrow, wide)
	}
}

func TestDiscardIntervalRemovesFalsePositives(t *testing.T) {
	// Raising θL=θU (no validation) from 0 to 0.45 should IMPROVE
	// accuracy: the discard interval removes the low-confidence false
	// positives (precision gain outweighs recall loss).
	e := parkEvaluator(150)
	f0, _ := e.Evaluate(0, 0)
	f45, _ := e.Evaluate(0.45, 0.45)
	if f45 <= f0 {
		t.Errorf("discarding low-confidence detections did not help: F(0)=%.3f F(0.45)=%.3f", f0, f45)
	}
}

func TestBruteForceRespectsConstraint(t *testing.T) {
	e := parkEvaluator(150)
	res := BruteForce(e, 0.8, 0.05)
	if !res.Feasible {
		t.Fatalf("µ=0.8 infeasible on park video: %v", res)
	}
	if res.F1 < 0.8 {
		t.Errorf("F1 = %.3f < µ", res.F1)
	}
	// The optimum must beat both naive corner points on bandwidth.
	if res.BU >= 1 {
		t.Errorf("optimal BU = %.3f, want < 1", res.BU)
	}
	if res.ThetaL > res.ThetaU {
		t.Errorf("inverted thresholds: %v", res)
	}
}

func TestBruteForceIsGridOptimal(t *testing.T) {
	// No grid point may beat the returned point under the ordering.
	e := parkEvaluator(80)
	const mu, step = 0.8, 0.1
	res := BruteForce(e, mu, step)
	for l := 0.0; l < 1.0+1e-9; l += step {
		for u := l; u < 1.0+1e-9; u += step {
			f1, bu := e.Evaluate(l, u)
			if f1 >= mu && res.Feasible && bu < res.BU-1e-12 {
				t.Fatalf("grid point (%.2f,%.2f) F=%.3f BU=%.3f beats %v", l, u, f1, bu, res)
			}
		}
	}
}

func TestGradientCheaperThanBruteForce(t *testing.T) {
	e := parkEvaluator(120)
	bf := BruteForce(e, 0.8, 0.05)
	gd := GradientStep(e, 0.8)
	if gd.Evals >= bf.Evals {
		t.Errorf("gradient used %d evals, brute force %d — no speedup", gd.Evals, bf.Evals)
	}
	speedup := float64(bf.Evals) / float64(gd.Evals)
	if speedup < 1.5 {
		t.Errorf("speedup = %.1fx, want ≥ 1.5x (paper reports 2.2x)", speedup)
	}
	if !gd.Feasible {
		t.Errorf("gradient result infeasible: %v", gd)
	}
	// Gradient must land reasonably close to the brute-force optimum.
	if gd.BU > bf.BU+0.25 {
		t.Errorf("gradient BU %.3f much worse than brute force %.3f", gd.BU, bf.BU)
	}
}

func TestInfeasibleMuPrioritizesAccuracy(t *testing.T) {
	e := parkEvaluator(60)
	res := BruteForce(e, 1.1, 0.1) // impossible constraint
	if res.Feasible {
		t.Fatal("µ=1.1 reported feasible")
	}
	// The best-F point is (near-)full validation.
	if res.F1 < 0.94 {
		t.Errorf("infeasible fallback F1 = %.3f, want max-accuracy point", res.F1)
	}
}

func TestHeatmapShape(t *testing.T) {
	e := parkEvaluator(60)
	cells := Heatmap(e, 0.1)
	// 11 diagonal levels: 11+10+...+1 = 66 cells.
	if len(cells) != 66 {
		t.Fatalf("heatmap cells = %d, want 66", len(cells))
	}
	for _, c := range cells {
		if c.ThetaL > c.ThetaU {
			t.Fatalf("invalid cell %+v", c)
		}
		if c.BU < 0 || c.BU > 1 || c.F1 < 0 || c.F1 > 1 {
			t.Fatalf("out-of-range cell %+v", c)
		}
	}
}

func TestEvalCounter(t *testing.T) {
	e := parkEvaluator(10)
	e.Evaluate(0.2, 0.4)
	e.Evaluate(0.2, 0.5)
	if e.Evals() != 2 {
		t.Errorf("Evals = %d, want 2", e.Evals())
	}
	e.ResetEvals()
	if e.Evals() != 0 {
		t.Error("ResetEvals did not clear")
	}
}

func TestEmptyEvaluator(t *testing.T) {
	e := &Evaluator{queryClass: "x", overlapMin: 0.1}
	f1, bu := e.Evaluate(0.3, 0.6)
	if f1 != 1 || bu != 0 {
		t.Errorf("empty evaluator = %.2f/%.2f, want 1/0", f1, bu)
	}
}

// Property: for any thresholds, outputs are valid probabilities and the
// pair ordering (θL ≤ θU) holds for solver outputs.
func TestEvaluateRangeProperty(t *testing.T) {
	e := parkEvaluator(40)
	f := func(a, b uint8) bool {
		l := float64(a%101) / 100
		u := float64(b%101) / 100
		if l > u {
			l, u = u, l
		}
		f1, bu := e.Evaluate(l, u)
		return f1 >= 0 && f1 <= 1 && bu >= 0 && bu <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: better() is asymmetric (a strict order) for distinct points.
func TestBetterAsymmetryProperty(t *testing.T) {
	f := func(f1a, bua, f1b, bub uint8) bool {
		a := Result{F1: float64(f1a%101) / 100, BU: float64(bua%101) / 100}
		b := Result{F1: float64(f1b%101) / 100, BU: float64(bub%101) / 100}
		if a.F1 == b.F1 && a.BU == b.BU {
			return !better(a, b, 0.8) && !better(b, a, 0.8)
		}
		return !(better(a, b, 0.8) && better(b, a, 0.8))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResultString(t *testing.T) {
	s := Result{ThetaL: 0.4, ThetaU: 0.5, F1: 0.86, BU: 0.44, Evals: 40, Feasible: true}.String()
	if s == "" || math.IsNaN(0) {
		t.Error("empty string")
	}
}
